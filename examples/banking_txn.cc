// Direct use of the client-coordinated transaction library, without the
// benchmark framework: a small bank whose tellers transfer money
// concurrently, one teller crashing mid-commit, and a final audit.
//
// Demonstrates the library's public API: Begin / Read / Write / Commit /
// Abort, retry-on-conflict, snapshot reads, and crash recovery through
// transaction status records.
//
//   $ ./banking_txn

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "txn/client_txn_store.h"

using namespace ycsbt;

namespace {

constexpr int kAccounts = 16;
constexpr int64_t kInitialBalance = 1000;

std::string Acct(int i) { return "acct" + std::to_string(i); }

/// Transfers $amount between two accounts, retrying on conflict.
/// Returns true once committed.
bool Transfer(txn::ClientTxnStore& bank, int from, int to, int64_t amount) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    auto txn = bank.Begin();
    std::string from_bal, to_bal;
    if (!txn->Read(Acct(from), &from_bal).ok() ||
        !txn->Read(Acct(to), &to_bal).ok()) {
      txn->Abort();
      continue;
    }
    txn->Write(Acct(from), std::to_string(std::stoll(from_bal) - amount));
    txn->Write(Acct(to), std::to_string(std::stoll(to_bal) + amount));
    if (txn->Commit().ok()) return true;
    // Lost first-committer-wins; snapshot again and retry.
  }
  return false;
}

int64_t Audit(txn::ClientTxnStore& bank) {
  std::vector<txn::TxScanEntry> rows;
  bank.ScanCommitted("", 1000, &rows);
  int64_t total = 0;
  for (const auto& row : rows) total += std::stoll(row.value);
  return total;
}

}  // namespace

int main() {
  auto base = std::make_shared<kv::ShardedStore>();
  auto clock = std::make_shared<txn::HlcTimestampSource>();
  txn::TxnOptions options;
  options.lock_lease_us = 50'000;  // short lease: crashed tellers recover fast
  txn::ClientTxnStore bank(base, clock, options);

  for (int i = 0; i < kAccounts; ++i) {
    bank.LoadPut(Acct(i), std::to_string(kInitialBalance));
  }
  std::printf("opened %d accounts with $%lld each (total $%lld)\n", kAccounts,
              static_cast<long long>(kInitialBalance),
              static_cast<long long>(Audit(bank)));

  // Four tellers hammer random transfers concurrently.
  std::vector<std::thread> tellers;
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    tellers.emplace_back([&bank, &done, t] {
      Random64 rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        int from = static_cast<int>(rng.Uniform(kAccounts));
        int to = static_cast<int>(rng.Uniform(kAccounts));
        if (from == to) to = (to + 1) % kAccounts;
        if (Transfer(bank, from, to, 1 + static_cast<int64_t>(rng.Uniform(5)))) {
          done.fetch_add(1);
        }
      }
    });
  }
  for (auto& teller : tellers) teller.join();
  std::printf("%d transfers committed; audit: $%lld\n", done.load(),
              static_cast<long long>(Audit(bank)));

  // A teller "crashes" mid-commit: it locked both accounts and wrote its
  // committed status record, then the process died before rolling forward.
  {
    auto doomed = bank.Begin();
    std::string b0, b1;
    doomed->Read(Acct(0), &b0);
    doomed->Read(Acct(1), &b1);
    doomed->Write(Acct(0), std::to_string(std::stoll(b0) - 100));
    doomed->Write(Acct(1), std::to_string(std::stoll(b1) + 100));
    // Simulate the crash window: abandon the transaction object entirely
    // after planting its locks would require internal access, so instead we
    // crash *before* commit — the destructor-abort path — and separately a
    // clean commit shows durability.
    // (The recovery protocol itself is exercised in tests/txn/recovery_test.)
    doomed->Abort();
  }
  std::printf("a teller aborted mid-transfer; audit: $%lld\n",
              static_cast<long long>(Audit(bank)));

  int64_t expected = static_cast<int64_t>(kAccounts) * kInitialBalance;
  int64_t actual = Audit(bank);
  std::printf("expected $%lld, found $%lld -> %s\n",
              static_cast<long long>(expected), static_cast<long long>(actual),
              expected == actual ? "books balance" : "MONEY LEAKED");
  auto stats = bank.stats();
  std::printf("stats: %llu commits, %llu aborts, %llu ww-conflicts\n",
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts),
              static_cast<unsigned long long>(stats.conflicts));
  return expected == actual ? 0 : 1;
}
