// Apples-to-apples comparison of two simulated cloud stores (the paper's
// closing claim: "YCSB+T can be used to perform an apples-to-apples
// comparison between competing data storage solutions"): the same
// transactional workload against the WAS-like and GCS-like profiles.
//
//   $ ./cloud_comparison

#include <cstdio>

#include "core/benchmark.h"

namespace {

ycsbt::Properties For(const char* db) {
  ycsbt::Properties p;
  p.Set("db", db);
  // Scaled-down latencies so the example finishes in seconds; relative
  // ordering between the profiles is preserved.
  p.Set("cloud.latency_scale", "0.1");
  p.Set("workload", "closed_economy");
  p.Set("recordcount", "1000");
  p.Set("totalcash", "1000000");
  p.Set("operationcount", "0");
  p.Set("maxexecutiontime", "3");
  p.Set("requestdistribution", "zipfian");
  p.Set("readproportion", "0.9");
  p.Set("readmodifywriteproportion", "0.1");
  p.Set("threads", "16");
  p.Set("loadthreads", "16");
  return p;
}

}  // namespace

int main() {
  std::printf("Closed Economy Workload, 16 threads, transactional, against two "
              "simulated cloud stores:\n\n");
  std::printf("%-10s %12s %12s %14s %14s %12s\n", "store", "tx/s", "aborts%",
              "READ avg(us)", "COMMIT avg(us)", "consistent");

  for (const char* db : {"txn+was", "txn+gcs"}) {
    ycsbt::core::RunResult r;
    ycsbt::Status s = ycsbt::core::RunBenchmark(For(db), &r);
    if (!s.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", db, s.ToString().c_str());
      return 1;
    }
    double read_avg = 0, commit_avg = 0;
    for (const auto& op : r.op_stats) {
      if (op.name == "READ") read_avg = op.average_latency_us;
      if (op.name == "COMMIT") commit_avg = op.average_latency_us;
    }
    std::printf("%-10s %12.1f %11.2f%% %14.0f %14.0f %12s\n", db,
                r.throughput_ops_sec, r.abort_rate() * 100.0, read_avg,
                commit_avg, r.validation.passed ? "yes" : "NO");
  }
  std::printf("\nBoth stores pass Tier-6 validation (the transaction library "
              "protects the invariant);\nthe profiles differ in throughput and "
              "latency — exactly the comparison the paper envisages.\n");
  return 0;
}
