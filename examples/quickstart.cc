// Quickstart: run a standard YCSB workload (workload A: 50/50 read/update,
// zipfian) against the bundled in-memory storage engine and print the
// measurement report.
//
//   $ ./quickstart
//
// This is the smallest complete use of the library: configure via
// Properties, call RunBenchmark, read RunResult.

#include <cstdio>

#include "core/benchmark.h"

int main() {
  ycsbt::Properties props;
  props.Set("db", "memkv");             // the local storage engine
  props.Set("workload", "core");        // YCSB CoreWorkload
  props.Set("recordcount", "10000");    // workload A parameters
  props.Set("operationcount", "100000");
  props.Set("readproportion", "0.5");
  props.Set("updateproportion", "0.5");
  props.Set("requestdistribution", "zipfian");
  props.Set("threads", "4");

  ycsbt::core::RunResult result;
  std::string report;
  ycsbt::Status status = ycsbt::core::RunBenchmark(props, &result, &report);
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("%s\n", report.c_str());
  std::printf("ran %llu operations at %.0f ops/sec\n",
              static_cast<unsigned long long>(result.operations),
              result.throughput_ops_sec);
  return 0;
}
