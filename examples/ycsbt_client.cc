// The YCSB+T command-line client, mirroring the paper's Listing 1:
//
//   ycsbt_client -db rawhttp -P workloads/closed_economy.properties -threads 16 -t
//
// Flags:
//   -db <name>        DB binding (see db/db_factory.h for the table)
//   -P <file>         load a properties file (repeatable; later files win)
//   -p <key>=<value>  set one property (repeatable; wins over -P)
//   -threads <n>      client threads
//   -target <ops/s>   throttle aggregate throughput
//   -t                run the transaction phase (default)
//   -load             run only the load phase
//   -s                print the properties in effect before running

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/benchmark.h"
#include "core/workload_factory.h"
#include "measurement/exporter.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-db name] [-P propfile]... [-p key=value]...\n"
               "          [-threads n] [-target ops] [-t | -load] [-s]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ycsbt::Properties props;
  bool transaction_phase = true;
  bool show_props = false;
  std::vector<std::string> property_files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-db") {
      props.Set("db", next());
    } else if (arg == "-P") {
      std::string path = next();
      ycsbt::Status s = props.LoadFromFile(path);
      if (!s.ok()) {
        std::fprintf(stderr, "error loading property file %s: %s\n",
                     path.c_str(), s.ToString().c_str());
        return 1;
      }
      property_files.push_back(std::move(path));
    } else if (arg == "-p") {
      std::string kv = next();
      size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        Usage(argv[0]);
        return 2;
      }
      props.Set(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "-threads") {
      props.Set("threads", next());
    } else if (arg == "-target") {
      props.Set("target", next());
    } else if (arg == "-t") {
      transaction_phase = true;
    } else if (arg == "-load") {
      transaction_phase = false;
    } else if (arg == "-s") {
      show_props = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::printf("YCSB+T Client 0.1 (C++)\n");
  if (show_props) std::printf("%s", props.ToString().c_str());
  std::printf("Loading workload...\nStarting test.\n");

  if (!transaction_phase) {
    // Load-only invocation: insert the records, validate, exit.
    props.Set("skiprun", "true");
  }

  ycsbt::core::RunResult result;
  std::string report;
  ycsbt::Status s = ycsbt::core::RunBenchmark(props, &result, &report);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    // Most run failures are configuration mistakes: point at the inputs.
    for (const std::string& path : property_files) {
      std::fprintf(stderr, "  property file: %s\n", path.c_str());
    }
    if (property_files.empty()) {
      std::fprintf(stderr, "  (no -P property file; -p/-db flags only)\n");
    }
    return 1;
  }
  std::printf("%s", report.c_str());
  return result.validation.performed && !result.validation.passed ? 3 : 0;
}
