// The paper's headline demonstration, end to end: the Closed Economy
// Workload run twice against the same kind of store —
//   1. non-transactionally (each operation individually atomic, nothing
//      groups them): concurrent read-modify-writes lose updates and the
//      validation stage reports a non-zero anomaly score;
//   2. through the client-coordinated transaction library: the invariant
//      survives, at the cost of some aborted-and-counted transactions.
//
//   $ ./closed_economy

#include <cstdio>

#include "core/benchmark.h"

namespace {

ycsbt::Properties CewProps(const char* db) {
  ycsbt::Properties p;
  p.Set("db", db);
  p.Set("workload", "closed_economy");
  p.Set("recordcount", "500");
  p.Set("totalcash", "500000");
  p.Set("operationcount", "20000");
  p.Set("requestdistribution", "zipfian");
  p.Set("readproportion", "0.9");
  p.Set("readmodifywriteproportion", "0.1");
  p.Set("threads", "8");
  // A modest simulated network hop widens the race window, as in the
  // paper's WiredTiger-behind-HTTP setup.
  p.Set("rawhttp.latency_median_us", "300");
  p.Set("rawhttp.latency_floor_us", "200");
  return p;
}

void PrintOutcome(const char* label, const ycsbt::core::RunResult& r) {
  std::printf("%-28s validation=%s anomaly_score=%g throughput=%.0f ops/s "
              "aborts=%.2f%%\n",
              label, r.validation.passed ? "PASSED" : "FAILED",
              r.validation.anomaly_score, r.throughput_ops_sec,
              r.abort_rate() * 100.0);
}

}  // namespace

int main() {
  std::printf("Closed Economy Workload: 500 accounts, $500,000 total, "
              "8 threads, 90%% reads / 10%% $1-transfers\n\n");

  // --- 1. No transactions: the anomaly is visible in the money supply.
  ycsbt::core::RunResult raw;
  ycsbt::Status s = ycsbt::core::RunBenchmark(CewProps("rawhttp"), &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintOutcome("non-transactional store:", raw);

  // --- 2. Same workload through the transaction library.
  ycsbt::core::RunResult txn;
  s = ycsbt::core::RunBenchmark(CewProps("txn+rawhttp"), &txn);
  if (!s.ok()) {
    std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintOutcome("client-coordinated txns:", txn);

  std::printf("\nThe serializable execution preserves sum(accounts) + bank == "
              "total cash;\nthe unprotected one silently %s money.\n",
              raw.validation.passed ? "(this run got lucky with) kept"
                                    : "created or destroyed");
  return 0;
}
