#ifndef YCSBT_DB_DB_FACTORY_H_
#define YCSBT_DB_DB_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>

#include "cloud/replicated_cloud_store.h"
#include "cloud/sim_cloud_store.h"
#include "common/properties.h"
#include "common/rpc_executor.h"
#include "db/db.h"
#include "kv/fault_env.h"
#include "kv/fault_injecting_store.h"
#include "kv/instrumented_store.h"
#include "kv/resilient_store.h"
#include "txn/client_txn_store.h"
#include "txn/local_2pl.h"
#include "txn/occ_engine.h"

namespace ycsbt {

/// Builds the run's shared substrate from properties and hands each client
/// thread its own DB binding — the "DB client" box of the YCSB+T
/// architecture (paper Fig 1).
///
/// Recognised `db` property values:
///
/// | name          | binding | substrate |
/// |---------------|---------|-----------|
/// | `basic`       | BasicDB stub | none |
/// | `memkv`       | KvStoreDB | local engine (`kv::ShardedStore`) |
/// | `rawhttp`     | KvStoreDB | local engine + simulated loopback-HTTP latency |
/// | `was`, `gcs`  | KvStoreDB | simulated cloud store |
/// | `txn+memkv`, `txn+rawhttp`, `txn+was`, `txn+gcs` | TxnDB | client-coordinated txn library over that base |
/// | `2pl+memkv`   | TxnDB | embedded strict-2PL engine |
/// | `occ+memkv`   | TxnDB | embedded Silo-style OCC engine (`txn::OccEngine`) |
///
/// Other properties consumed here: `memkv.shards`, `memkv.wal_path`,
/// `memkv.sync_wal`, `memkv.wal_group_commit`, `memkv.wal_group_max_batch`,
/// `memkv.wal_group_window_us`, `memkv.checkpoint_path`,
/// `memkv.checkpoint_dir_sync`,
/// `rawhttp.latency_median_us`, `rawhttp.latency_sigma`,
/// `rawhttp.latency_floor_us`, `cloud.latency_scale`, `cloud.rate_limit`,
/// `cloud.max_queue_delay_us`,
/// `txn.isolation` (snapshot|serializable), `txn.lease_us`,
/// `txn.timestamps` (hlc|oracle), `txn.oracle_rtt_us`, `txn.cleanup_tsr`,
/// `txn.fanout_threads`, `txn.max_inflight`, `txn.lock_acquire_mode`
/// (ordered|nowait), `txn.lock_wait_jitter`, `txn.lock_wait_delay_us`,
/// `txn.lock_wait_max_delay_us`, `2pl.lock_timeout_us`, `basicdb.delay_us`,
/// `occ.epoch_ms`, `occ.read_validation`, `occ.retire_batch` (the last three
/// only on `occ+memkv`, which is self-contained: it sits on no `kv::Store`,
/// so the fault-injection, resilience and latency decorators do not apply).
///
/// When `txn.fanout_threads > 0` a shared `RpcExecutor` is built (worker
/// RNGs seeded from the run's `seed` property) and attached to the cloud
/// store, the local engine, the resilience layer and the transaction
/// library, so multi-key phases issue their independent RPCs in parallel
/// (DESIGN.md §10).
///
/// When any `fault.*` rate is non-zero (see `kv::FaultOptions`) the base
/// store is wrapped in a `kv::FaultInjectingStore` — constructed *disarmed*;
/// the benchmark driver arms it only around the measured run phase — and,
/// for `txn+*` bindings, the same object is wired in as the transaction
/// library's commit-pipeline `CrashInjector`.
///
/// When any `storage.fault.*` trigger is configured (see
/// `kv::StorageFaultOptions`, DESIGN.md §14) the local engine's WAL and
/// checkpoint files go through a `kv::FaultInjectingEnv` — also constructed
/// disarmed, armed by the driver around the measured run — injecting torn
/// writes, fsyncgate failures, ENOSPC, read-side bit flips and named crash
/// points below the store.
///
/// When `breaker.enabled`, `hedge.enabled` or a per-transaction deadline
/// (`retry.deadline_us` with `deadline.enforce`) is configured, the store —
/// including any fault decorator, so the breaker sees injected throttles —
/// is additionally wrapped in a `kv::ResilientStore` (circuit breakers,
/// hedged reads, deadline fail-fast; `breaker.*`/`hedge.*` properties).
///
/// When `cloud.regions > 1` on a cloud binding, the simulated cloud store
/// is first wrapped in a `cloud::ReplicatedCloudStore` (leader/follower
/// regions, per-replica apply lag, read-mode routing, scripted
/// failover/partition faults; `cloud.read_mode`, `cloud.replica_lag_*`,
/// `cloud.fault.*`).  The resilience layer then runs one breaker per
/// *region* and charges each key's breaker to the region serving it.
class DBFactory {
 public:
  explicit DBFactory(Properties props) : props_(std::move(props)) {}

  /// Parses properties and builds the shared substrate.
  Status Init();

  /// A fresh binding for one client thread (call after Init).
  std::unique_ptr<DB> CreateClient();

  const std::string& db_name() const { return name_; }

  /// True when the binding can ingest pre-sorted runs straight into the
  /// local engine (`local_engine()->BulkLoad`).  Every binding whose data
  /// ultimately lives in the local `ShardedStore` qualifies — the decorators
  /// (latency, cloud simulation, faults, resilience) are value-passthrough,
  /// so a record bulk-loaded underneath them reads back identically.
  bool SupportsBulkLoad() const { return initialized_ && local_engine_ != nullptr; }

  /// Translates an encoded record value into the engine-level representation
  /// this binding stores: the MVCC committed-record wrapper for `txn+*`
  /// bindings (see `ClientTxnStore::EncodeLoadValue`), identity elsewhere.
  /// Only meaningful when `SupportsBulkLoad()`.
  std::string EncodeBulkValue(std::string_view value) const {
    return client_txn_store_ != nullptr ? client_txn_store_->EncodeLoadValue(value)
                                        : std::string(value);
  }

  /// Substrate handles (may be null depending on the binding) — used by
  /// benches and tests to reach behind the DB abstraction.
  const std::shared_ptr<kv::Store>& front_store() const { return front_store_; }
  const std::shared_ptr<cloud::SimCloudStore>& cloud_store() const { return cloud_; }
  /// Non-null iff `cloud.regions > 1` on a cloud binding; the benchmark
  /// driver arms its fault script with `set_fault_enabled` around the run.
  const std::shared_ptr<cloud::ReplicatedCloudStore>& replicated_store() const {
    return replicated_;
  }
  const std::shared_ptr<txn::TransactionalKV>& txn_kv() const { return txn_kv_; }
  txn::ClientTxnStore* client_txn_store() const { return client_txn_store_; }
  /// Non-null iff the binding is `occ+memkv` — used to drain OCC commit
  /// counters into the measurements.
  txn::OccEngine* occ_engine() const { return occ_engine_; }
  /// Non-null iff fault injection is configured; arm with `set_enabled`.
  kv::FaultInjectingStore* fault_store() const { return fault_store_.get(); }
  /// Non-null iff `storage.fault.*` is configured; arm with `set_enabled`.
  kv::FaultInjectingEnv* storage_fault_env() const {
    return storage_fault_env_.get();
  }
  /// Non-null iff the overload-tolerance layer is configured.
  kv::ResilientStore* resilient_store() const { return resilient_store_.get(); }
  /// Non-null iff the binding runs on the local engine (directly or below
  /// decorators) — used to drain WAL durability stats into the measurements.
  kv::ShardedStore* local_engine() const { return local_engine_.get(); }
  /// Non-null iff `txn.fanout_threads > 0` — used to drain fan-out stats.
  const std::shared_ptr<RpcExecutor>& rpc_executor() const {
    return rpc_executor_;
  }

 private:
  Status BuildBase(const std::string& base_name);

  /// Builds the local `kv::ShardedStore` engine from `memkv.*` properties
  /// and remembers it in `local_engine_`.
  std::shared_ptr<kv::Store> MakeLocalEngine();

  /// Local engine wrapped in the simulated loopback-HTTP latency decorator.
  std::shared_ptr<kv::Store> MakeRawHttp();

  /// Wraps `front_store_` in the fault-injection decorator when any
  /// `fault.*` rate is configured.
  void MaybeInjectFaults();

  /// Wraps `front_store_` in the overload-tolerance decorator when a
  /// breaker, hedging or an enforced deadline is configured.  Call after
  /// `MaybeInjectFaults` so the breaker observes injected faults.
  void MaybeAddResilience();

  /// Builds the shared fan-out executor when `txn.fanout_threads > 0` and
  /// attaches it to every layer with a batched path.  Call after the store
  /// stack is assembled.
  void MaybeAttachExecutor();

  Properties props_;
  std::string name_;
  std::shared_ptr<kv::Store> front_store_;
  std::shared_ptr<kv::ShardedStore> local_engine_;
  /// Storage fault layer under the local engine; must outlive it.
  std::unique_ptr<kv::FaultInjectingEnv> storage_fault_env_;
  /// Outcome of the local engine's `Open()` (checkpoint load + WAL replay);
  /// surfaced by `Init` instead of being swallowed.
  Status local_engine_status_;
  std::shared_ptr<kv::FaultInjectingStore> fault_store_;
  std::shared_ptr<kv::ResilientStore> resilient_store_;
  std::shared_ptr<cloud::SimCloudStore> cloud_;
  std::shared_ptr<cloud::ReplicatedCloudStore> replicated_;
  std::shared_ptr<RpcExecutor> rpc_executor_;
  std::shared_ptr<txn::TransactionalKV> txn_kv_;
  txn::ClientTxnStore* client_txn_store_ = nullptr;  // owned via txn_kv_
  txn::OccEngine* occ_engine_ = nullptr;             // owned via txn_kv_
  uint64_t basic_delay_us_ = 0;
  bool initialized_ = false;
};

}  // namespace ycsbt

#endif  // YCSBT_DB_DB_FACTORY_H_
