#ifndef YCSBT_DB_FIELD_CODEC_H_
#define YCSBT_DB_FIELD_CODEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/db.h"

namespace ycsbt {

/// Serialises a FieldMap into one store value (length-prefixed name/value
/// pairs) and back.  All bindings share this codec, so data loaded through
/// one binding is readable through another layered on the same store.
std::string EncodeFields(const FieldMap& fields);

/// Decodes a store value; Corruption on malformed input.
Status DecodeFields(const std::string& data, FieldMap* fields);

/// Decodes and projects: keeps only `fields` (nullptr = all).
Status DecodeFieldsProjected(const std::string& data,
                             const std::vector<std::string>* fields,
                             FieldMap* out);

/// Merges `updates` into an existing encoded record (YCSB update semantics:
/// replace named fields, keep the rest).
Status MergeFields(const std::string& existing, const FieldMap& updates,
                   std::string* merged);

}  // namespace ycsbt

#endif  // YCSBT_DB_FIELD_CODEC_H_
