#ifndef YCSBT_DB_DB_H_
#define YCSBT_DB_DB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/properties.h"
#include "common/status.h"

namespace ycsbt {

/// A record: field name -> field value (ordered for deterministic encoding).
using FieldMap = std::map<std::string, std::string>;

/// One row of a scan result.  Unlike the Java YCSB scan (which drops keys),
/// rows carry their key so the YCSB+T validation stage can paginate a full
/// table sweep; workload scan operations simply ignore it.
struct ScanRow {
  std::string key;
  FieldMap fields;
};

/// One row of a `DB::MultiRead` result: each key succeeds or fails
/// independently (a missing key is that row's NotFound, never a batch error).
struct MultiReadRow {
  Status status;
  FieldMap fields;
};

/// The YCSB "DB client" abstraction (paper Fig 1), extended per YCSB+T §IV-A
/// with transaction demarcation.
///
/// A `DB` instance belongs to one client thread; instances created for the
/// same run share their backend through the factory.  The transactional
/// methods `Start`/`Commit`/`Abort` are **no-ops by default**, which is the
/// paper's backward-compatibility guarantee: any workload written for plain
/// YCSB runs unchanged against a non-transactional binding.
class DB {
 public:
  virtual ~DB() = default;

  /// Called once by the owning client thread before any operation.
  virtual Status Init() { return Status::OK(); }

  /// Called once after the last operation.
  virtual Status Cleanup() { return Status::OK(); }

  /// Reads one record.  `fields` selects a projection; nullptr = all fields.
  virtual Status Read(const std::string& table, const std::string& key,
                      const std::vector<std::string>* fields, FieldMap* result) = 0;

  /// Reads every key of `keys` with one call, filling `rows` (resized to
  /// match) with independent per-key outcomes.  Semantically identical to a
  /// sequence of `Read` calls — including transactional read-set membership
  /// — but bindings with a batched path overlap the round trips.  The
  /// default is the sequential loop.
  virtual void MultiRead(const std::string& table,
                         const std::vector<std::string>& keys,
                         const std::vector<std::string>* fields,
                         std::vector<MultiReadRow>* rows) {
    rows->clear();
    rows->resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*rows)[i].status = Read(table, keys[i], fields, &(*rows)[i].fields);
    }
  }

  /// Reads up to `record_count` records in key order starting at `start_key`.
  virtual Status Scan(const std::string& table, const std::string& start_key,
                      size_t record_count, const std::vector<std::string>* fields,
                      std::vector<ScanRow>* result) = 0;

  /// Updates (read-modify-replaces named fields of) one record.
  virtual Status Update(const std::string& table, const std::string& key,
                        const FieldMap& values) = 0;

  /// Inserts one record.
  virtual Status Insert(const std::string& table, const std::string& key,
                        const FieldMap& values) = 0;

  /// Inserts every record of `keys`/`values` (parallel arrays) with one
  /// call, filling `statuses` (resized to match) with independent per-key
  /// outcomes.  Like `MultiRead`, this is semantically a sequence of
  /// `Insert` calls — no cross-key atomicity is added — but bindings with a
  /// batched write path overlap the round trips.  The default is the
  /// sequential loop.
  virtual void BatchInsert(const std::string& table,
                           const std::vector<std::string>& keys,
                           const std::vector<FieldMap>& values,
                           std::vector<Status>* statuses) {
    statuses->clear();
    statuses->resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*statuses)[i] = Insert(table, keys[i], values[i]);
    }
  }

  /// Deletes one record.
  virtual Status Delete(const std::string& table, const std::string& key) = 0;

  // --- YCSB+T transactional extension (default: no-op) -------------------

  /// Begins a transaction on this client.
  virtual Status Start() { return Status::OK(); }

  /// Commits the current transaction.
  virtual Status Commit() { return Status::OK(); }

  /// Aborts the current transaction.
  virtual Status Abort() { return Status::OK(); }

  /// True when Start/Commit/Abort actually demarcate transactions.
  virtual bool Transactional() const { return false; }
};

}  // namespace ycsbt

#endif  // YCSBT_DB_DB_H_
