#include "db/db_factory.h"

#include "db/basic_db.h"
#include "db/kvstore_db.h"
#include "db/txn_db.h"
#include "txn/timestamp.h"

namespace ycsbt {

std::shared_ptr<kv::Store> DBFactory::MakeLocalEngine() {
  kv::StoreOptions options;
  options.num_shards = static_cast<int>(props_.GetInt("memkv.shards", 16));
  options.wal_path = props_.Get("memkv.wal_path", "");
  options.sync_wal = props_.GetBool("memkv.sync_wal", false);
  options.wal_group_commit = props_.GetBool("memkv.wal_group_commit", false);
  options.wal_group_max_batch =
      static_cast<int>(props_.GetInt("memkv.wal_group_max_batch", 64));
  options.wal_group_window_us =
      static_cast<uint32_t>(props_.GetInt("memkv.wal_group_window_us", 0));
  options.checkpoint_path = props_.Get("memkv.checkpoint_path", "");
  options.checkpoint_dir_sync = props_.GetBool("memkv.checkpoint_dir_sync", true);
  kv::StorageFaultOptions storage_faults =
      kv::StorageFaultOptions::FromProperties(props_);
  if (storage_faults.Any()) {
    // Disarmed until the driver arms the measured run phase; the load and
    // recovery phases always see a faithful filesystem.
    storage_fault_env_ = std::make_unique<kv::FaultInjectingEnv>(
        kv::Env::Default(), storage_faults);
    options.env = storage_fault_env_.get();
  }
  auto store = std::make_shared<kv::ShardedStore>(options);
  local_engine_status_ = store->Open();  // no-op for volatile stores
  local_engine_ = store;
  return store;
}

std::shared_ptr<kv::Store> DBFactory::MakeRawHttp() {
  // The paper's WiredTiger-behind-Boost-ASIO server, modelled as the local
  // engine plus the loopback HTTP round trip observed in Listing 3
  // (min ~1.2 ms, mean ~1.5 ms, heavy tail).
  auto inner = MakeLocalEngine();
  auto instrumented = std::make_shared<kv::InstrumentedStore>(inner);
  double median = props_.GetDouble("rawhttp.latency_median_us", 1450.0);
  double sigma = props_.GetDouble("rawhttp.latency_sigma", 0.35);
  double floor = props_.GetDouble("rawhttp.latency_floor_us", 1150.0);
  instrumented->set_latency_model(LatencyModel(median, sigma, floor));
  return instrumented;
}

void DBFactory::MaybeInjectFaults() {
  kv::FaultOptions options = kv::FaultOptions::FromProperties(props_);
  if (!options.Any()) return;
  fault_store_ = std::make_shared<kv::FaultInjectingStore>(front_store_, options);
  front_store_ = fault_store_;
}

void DBFactory::MaybeAddResilience() {
  kv::ResilienceOptions options = kv::ResilienceOptions::FromProperties(props_);
  bool deadline_wanted = options.deadline_fail_fast &&
                         props_.GetUint("retry.deadline_us", 0) > 0;
  if (!options.breaker.enabled && !options.hedge_enabled && !deadline_wanted) {
    return;
  }
  // One breaker per backend partition: the replicated store's regions, the
  // cloud store's containers, or the single local engine.
  int backends = cloud_ != nullptr ? cloud_->profile().containers : 1;
  if (replicated_ != nullptr) backends = replicated_->options().regions;
  resilient_store_ =
      std::make_shared<kv::ResilientStore>(front_store_, options, backends);
  if (replicated_ != nullptr) {
    std::shared_ptr<cloud::ReplicatedCloudStore> rep = replicated_;
    resilient_store_->set_backend_resolver(
        [rep](const std::string& key) { return rep->BreakerBackendFor(key); });
  }
  front_store_ = resilient_store_;
}

void DBFactory::MaybeAttachExecutor() {
  int threads = static_cast<int>(props_.GetInt("txn.fanout_threads", 0));
  if (threads <= 0) return;
  int max_inflight = static_cast<int>(props_.GetInt("txn.max_inflight", 0));
  // Same seed the workload generators use, so one `seed` property pins the
  // entire run (worker RNG draws included).
  uint64_t seed = props_.GetUint("seed", 0x5EEDBA5Eull);
  rpc_executor_ = std::make_shared<RpcExecutor>(threads, max_inflight, seed);
  if (cloud_ != nullptr) cloud_->set_executor(rpc_executor_);
  if (local_engine_ != nullptr) local_engine_->set_executor(rpc_executor_);
  if (resilient_store_ != nullptr) resilient_store_->set_executor(rpc_executor_);
}

Status DBFactory::BuildBase(const std::string& base_name) {
  if (base_name == "memkv") {
    front_store_ = MakeLocalEngine();
    return local_engine_status_;
  }
  if (base_name == "rawhttp") {
    front_store_ = MakeRawHttp();
    return local_engine_status_;
  }
  if (base_name == "was" || base_name == "gcs") {
    cloud::CloudProfile profile = base_name == "was" ? cloud::CloudProfile::Was()
                                                     : cloud::CloudProfile::Gcs();
    // cloud.rate_limit: absent -> profile default; 0 -> uncapped; >0 -> cap.
    double rate = props_.GetDouble("cloud.rate_limit", -1.0);
    if (rate >= 0.0) profile.container_rate_limit = rate;
    profile.containers =
        static_cast<int>(props_.GetInt("cloud.containers", profile.containers));
    double serial = props_.GetDouble("cloud.client_serial_us", -1.0);
    if (serial >= 0.0) profile.client_serial_us_per_inflight = serial;
    profile.max_queue_delay_us =
        props_.GetDouble("cloud.max_queue_delay_us", profile.max_queue_delay_us);
    cloud_ = std::make_shared<cloud::SimCloudStore>(profile, MakeLocalEngine());
    if (!local_engine_status_.ok()) return local_engine_status_;
    double scale = props_.GetDouble("cloud.latency_scale", 1.0);
    if (scale != 1.0) cloud_->ScaleLatency(scale);
    front_store_ = cloud_;
    if (props_.GetInt("cloud.regions", 1) > 1) {
      cloud::ReplicationOptions ropts;
      Status rs = cloud::ReplicationOptions::FromProperties(props_, &ropts);
      if (!rs.ok()) return rs;
      // Replication lag draws from its own stream off the run seed, so
      // turning regions on never shifts the workload/fault draws.
      ropts.seed = props_.GetUint("seed", 0x5EEDBA5Eull) ^ 0x5EEDFA11ull;
      replicated_ = std::make_shared<cloud::ReplicatedCloudStore>(
          cloud_, local_engine_, ropts);
      front_store_ = replicated_;
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown base store: " + base_name);
}

Status DBFactory::Init() {
  if (initialized_) return Status::InvalidArgument("factory already initialized");
  name_ = props_.Get("db", "basic");

  if (name_ == "basic") {
    basic_delay_us_ = props_.GetUint("basicdb.delay_us", 0);
    initialized_ = true;
    return Status::OK();
  }

  if (name_.rfind("txn+", 0) == 0) {
    Status s = BuildBase(name_.substr(4));
    if (!s.ok()) return s;
    MaybeInjectFaults();
    MaybeAddResilience();
    MaybeAttachExecutor();

    txn::TxnOptions options;
    std::string isolation = props_.Get("txn.isolation", "snapshot");
    if (isolation == "serializable") {
      options.isolation = txn::Isolation::kSerializable;
    } else if (isolation != "snapshot") {
      return Status::InvalidArgument("unknown txn.isolation: " + isolation);
    }
    options.lock_lease_us = props_.GetUint("txn.lease_us", options.lock_lease_us);
    options.cleanup_tsr = props_.GetBool("txn.cleanup_tsr", true);
    options.crash_injector = fault_store_.get();  // null when faults are off

    options.lock_wait_jitter = props_.GetBool("txn.lock_wait_jitter", true);
    options.lock_wait_delay_us =
        props_.GetUint("txn.lock_wait_delay_us", options.lock_wait_delay_us);
    options.lock_wait_max_delay_us = props_.GetUint(
        "txn.lock_wait_max_delay_us", options.lock_wait_delay_us * 8);
    options.seed = props_.GetUint("seed", 0x5EEDBA5Eull);

    std::string lock_mode = props_.Get("txn.lock_acquire_mode", "ordered");
    if (lock_mode == "nowait") {
      options.lock_acquire_mode = txn::TxnOptions::LockAcquireMode::kNoWait;
    } else if (lock_mode != "ordered") {
      return Status::InvalidArgument("unknown txn.lock_acquire_mode: " +
                                     lock_mode);
    }
    options.executor = rpc_executor_;  // null when txn.fanout_threads == 0

    std::shared_ptr<txn::TimestampSource> ts;
    std::string ts_kind = props_.Get("txn.timestamps", "hlc");
    if (ts_kind == "hlc") {
      ts = std::make_shared<txn::HlcTimestampSource>();
    } else if (ts_kind == "oracle") {
      auto oracle = std::make_shared<txn::OracleTimestampSource::Oracle>();
      double rtt = props_.GetDouble("txn.oracle_rtt_us", 500.0);
      ts = std::make_shared<txn::OracleTimestampSource>(
          oracle, LatencyModel(rtt, 0.25, rtt * 0.5));
    } else {
      return Status::InvalidArgument("unknown txn.timestamps: " + ts_kind);
    }

    auto store = std::make_shared<txn::ClientTxnStore>(front_store_, ts, options);
    client_txn_store_ = store.get();
    txn_kv_ = store;
    initialized_ = true;
    return Status::OK();
  }

  if (name_ == "occ+memkv") {
    // Self-contained in-memory engine (DESIGN.md §15): no kv::Store below
    // it, so the fault/resilience decorators do not apply to this binding.
    txn::OccOptions options;
    options.epoch_ms = props_.GetUint("occ.epoch_ms", options.epoch_ms);
    options.read_validation =
        props_.GetBool("occ.read_validation", options.read_validation);
    options.retire_batch = static_cast<size_t>(
        props_.GetUint("occ.retire_batch", options.retire_batch));
    auto engine = std::make_shared<txn::OccEngine>(options);
    occ_engine_ = engine.get();
    txn_kv_ = engine;
    initialized_ = true;
    return Status::OK();
  }

  if (name_ == "2pl+memkv") {
    front_store_ = MakeLocalEngine();
    if (!local_engine_status_.ok()) return local_engine_status_;
    MaybeInjectFaults();
    MaybeAddResilience();
    txn::Local2PLOptions options;
    options.lock_timeout_us =
        props_.GetUint("2pl.lock_timeout_us", options.lock_timeout_us);
    txn_kv_ = std::make_shared<txn::Local2PLStore>(front_store_, options);
    initialized_ = true;
    return Status::OK();
  }

  Status s = BuildBase(name_);
  if (!s.ok()) {
    return s.IsInvalidArgument() ? Status::InvalidArgument("unknown db: " + name_)
                                 : s;
  }
  MaybeInjectFaults();
  MaybeAddResilience();
  MaybeAttachExecutor();
  initialized_ = true;
  return Status::OK();
}

std::unique_ptr<DB> DBFactory::CreateClient() {
  if (!initialized_) return nullptr;
  if (name_ == "basic") return std::make_unique<BasicDB>(basic_delay_us_);
  if (txn_kv_ != nullptr) return std::make_unique<TxnDB>(txn_kv_);
  return std::make_unique<KvStoreDB>(front_store_);
}

}  // namespace ycsbt
