#ifndef YCSBT_DB_KVSTORE_DB_H_
#define YCSBT_DB_KVSTORE_DB_H_

#include <memory>
#include <string>

#include "db/db.h"
#include "kv/store.h"

namespace ycsbt {

/// Non-transactional DB binding over any `kv::Store`.
///
/// One class covers three of the paper's setups, differing only in the store
/// supplied by the factory:
///  - `memkv`   — the local engine directly;
///  - `rawhttp` — the local engine behind an `InstrumentedStore` injecting
///                the loopback-HTTP latency of the paper's WiredTiger server
///                (this is the `RawHttpDB` of Listing 1);
///  - `was`/`gcs` — a `SimCloudStore`.
///
/// `Start`/`Commit`/`Abort` inherit the DB no-ops: operations are
/// individually atomic in the store but nothing groups them, so concurrent
/// read-modify-write sequences exhibit exactly the lost-update anomalies the
/// Tier-6 validation stage quantifies (Fig 4).
class KvStoreDB : public DB {
 public:
  explicit KvStoreDB(std::shared_ptr<kv::Store> store) : store_(std::move(store)) {}

  Status Read(const std::string& table, const std::string& key,
              const std::vector<std::string>* fields, FieldMap* result) override;
  void MultiRead(const std::string& table, const std::vector<std::string>& keys,
                 const std::vector<std::string>* fields,
                 std::vector<MultiReadRow>* rows) override;
  Status Scan(const std::string& table, const std::string& start_key,
              size_t record_count, const std::vector<std::string>* fields,
              std::vector<ScanRow>* result) override;
  Status Update(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  Status Insert(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  void BatchInsert(const std::string& table, const std::vector<std::string>& keys,
                   const std::vector<FieldMap>& values,
                   std::vector<Status>* statuses) override;
  Status Delete(const std::string& table, const std::string& key) override;

  kv::Store* store() const { return store_.get(); }

  /// Key layout shared by all bindings: "<table>/<key>".
  static std::string ComposeKey(const std::string& table, const std::string& key) {
    return table + "/" + key;
  }

 private:
  std::shared_ptr<kv::Store> store_;
};

}  // namespace ycsbt

#endif  // YCSBT_DB_KVSTORE_DB_H_
