#ifndef YCSBT_DB_TXN_DB_H_
#define YCSBT_DB_TXN_DB_H_

#include <memory>

#include "db/db.h"
#include "txn/transaction.h"

namespace ycsbt {

/// Transactional DB binding over a `txn::TransactionalKV` (the
/// client-coordinated library or the embedded 2PL engine).
///
/// `Start()` begins a transaction on this client thread; every CRUD/scan
/// until `Commit()`/`Abort()` executes inside it.  Outside a transaction the
/// binding falls back to auto-committed single operations, so the same
/// binding serves YCSB-style (non-wrapped) runs too.
///
/// One instance per client thread (the YCSB threading model); instances
/// share the underlying TransactionalKV.
class TxnDB : public DB {
 public:
  explicit TxnDB(std::shared_ptr<txn::TransactionalKV> kv) : kv_(std::move(kv)) {}

  Status Read(const std::string& table, const std::string& key,
              const std::vector<std::string>* fields, FieldMap* result) override;
  void MultiRead(const std::string& table, const std::vector<std::string>& keys,
                 const std::vector<std::string>* fields,
                 std::vector<MultiReadRow>* rows) override;
  Status Scan(const std::string& table, const std::string& start_key,
              size_t record_count, const std::vector<std::string>* fields,
              std::vector<ScanRow>* result) override;
  Status Update(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  Status Insert(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  void BatchInsert(const std::string& table, const std::vector<std::string>& keys,
                   const std::vector<FieldMap>& values,
                   std::vector<Status>* statuses) override;
  Status Delete(const std::string& table, const std::string& key) override;

  Status Start() override;
  Status Commit() override;
  Status Abort() override;
  bool Transactional() const override { return true; }

  txn::TransactionalKV* kv() const { return kv_.get(); }

 private:
  Status ReadRaw(const std::string& composed, std::string* value);

  std::shared_ptr<txn::TransactionalKV> kv_;
  std::unique_ptr<txn::Transaction> txn_;  // active transaction, if any
};

}  // namespace ycsbt

#endif  // YCSBT_DB_TXN_DB_H_
