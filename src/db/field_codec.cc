#include "db/field_codec.h"

#include <algorithm>

#include "common/coding.h"

namespace ycsbt {

std::string EncodeFields(const FieldMap& fields) {
  std::string out;
  size_t size = 5;
  for (const auto& [name, value] : fields) size += 8 + name.size() + value.size();
  out.reserve(size);
  PutFixed8(&out, 0xF1);  // format tag
  PutFixed32(&out, static_cast<uint32_t>(fields.size()));
  for (const auto& [name, value] : fields) {
    PutLengthPrefixed(&out, name);
    PutLengthPrefixed(&out, value);
  }
  return out;
}

Status DecodeFields(const std::string& data, FieldMap* fields) {
  return DecodeFieldsProjected(data, nullptr, fields);
}

Status DecodeFieldsProjected(const std::string& data,
                             const std::vector<std::string>* projection,
                             FieldMap* out) {
  out->clear();
  Decoder dec(data);
  uint8_t tag = 0;
  uint32_t count = 0;
  if (!dec.GetFixed8(&tag) || tag != 0xF1 || !dec.GetFixed32(&count)) {
    return Status::Corruption("bad field record header");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name, value;
    if (!dec.GetLengthPrefixed(&name) || !dec.GetLengthPrefixed(&value)) {
      return Status::Corruption("truncated field record");
    }
    if (projection != nullptr &&
        std::find(projection->begin(), projection->end(), name) ==
            projection->end()) {
      continue;
    }
    (*out)[std::move(name)] = std::move(value);
  }
  if (!dec.Empty()) return Status::Corruption("trailing bytes in field record");
  return Status::OK();
}

Status MergeFields(const std::string& existing, const FieldMap& updates,
                   std::string* merged) {
  FieldMap fields;
  Status s = DecodeFields(existing, &fields);
  if (!s.ok()) return s;
  for (const auto& [name, value] : updates) fields[name] = value;
  *merged = EncodeFields(fields);
  return Status::OK();
}

}  // namespace ycsbt
