#include "db/measured_db.h"

#include "common/clock.h"

namespace ycsbt {

MeasuredDB::MeasuredDB(std::unique_ptr<DB> inner, Measurements* measurements)
    : inner_(std::move(inner)), measurements_(measurements) {
  // Interning is idempotent and cheap, and doing it here (not lazily per
  // call) keeps the wrapper usable by tests that skip Init().
  ResolveHandles();
}

void MeasuredDB::ResolveHandles() {
  ops_.read = measurements_->RegisterOp(opname::kRead);
  ops_.multiread = measurements_->RegisterOp(opname::kMultiRead);
  ops_.scan = measurements_->RegisterOp(opname::kScan);
  ops_.update = measurements_->RegisterOp(opname::kUpdate);
  ops_.insert = measurements_->RegisterOp(opname::kInsert);
  ops_.batch_insert = measurements_->RegisterOp(opname::kBatchInsert);
  ops_.del = measurements_->RegisterOp(opname::kDelete);
  ops_.start = measurements_->RegisterOp(opname::kStart);
  ops_.commit = measurements_->RegisterOp(opname::kCommit);
  ops_.abort = measurements_->RegisterOp(opname::kAbort);
}

Status MeasuredDB::Init() {
  ResolveHandles();
  return inner_->Init();
}

Status MeasuredDB::Record(OpId op, Status status, int64_t latency_us) {
  if (sink_ != nullptr) {
    sink_->Record(op, latency_us, status.code());
  } else {
    measurements_->Record(op, latency_us, status.code());
  }
  return status;
}

Status MeasuredDB::Read(const std::string& table, const std::string& key,
                        const std::vector<std::string>* fields, FieldMap* result) {
  Stopwatch watch;
  Status s = inner_->Read(table, key, fields, result);
  return Record(ops_.read, std::move(s), static_cast<int64_t>(watch.ElapsedMicros()));
}

void MeasuredDB::MultiRead(const std::string& table,
                           const std::vector<std::string>& keys,
                           const std::vector<std::string>* fields,
                           std::vector<MultiReadRow>* rows) {
  Stopwatch watch;
  inner_->MultiRead(table, keys, fields, rows);
  // One MULTIREAD sample per batch; its status is the first per-row failure
  // (individual rows keep their own statuses for the caller).
  Status batch;
  for (const auto& row : *rows) {
    if (!row.status.ok()) {
      batch = row.status;
      break;
    }
  }
  Record(ops_.multiread, std::move(batch),
         static_cast<int64_t>(watch.ElapsedMicros()));
}

Status MeasuredDB::Scan(const std::string& table, const std::string& start_key,
                        size_t record_count, const std::vector<std::string>* fields,
                        std::vector<ScanRow>* result) {
  Stopwatch watch;
  Status s = inner_->Scan(table, start_key, record_count, fields, result);
  return Record(ops_.scan, std::move(s), static_cast<int64_t>(watch.ElapsedMicros()));
}

Status MeasuredDB::Update(const std::string& table, const std::string& key,
                          const FieldMap& values) {
  Stopwatch watch;
  Status s = inner_->Update(table, key, values);
  return Record(ops_.update, std::move(s), static_cast<int64_t>(watch.ElapsedMicros()));
}

Status MeasuredDB::Insert(const std::string& table, const std::string& key,
                          const FieldMap& values) {
  Stopwatch watch;
  Status s = inner_->Insert(table, key, values);
  return Record(ops_.insert, std::move(s), static_cast<int64_t>(watch.ElapsedMicros()));
}

void MeasuredDB::BatchInsert(const std::string& table,
                             const std::vector<std::string>& keys,
                             const std::vector<FieldMap>& values,
                             std::vector<Status>* statuses) {
  Stopwatch watch;
  inner_->BatchInsert(table, keys, values, statuses);
  // One BATCHINSERT sample per batch; its status is the first per-key
  // failure, mirroring the MULTIREAD convention.
  Status batch;
  for (const Status& s : *statuses) {
    if (!s.ok()) {
      batch = s;
      break;
    }
  }
  Record(ops_.batch_insert, std::move(batch),
         static_cast<int64_t>(watch.ElapsedMicros()));
}

Status MeasuredDB::Delete(const std::string& table, const std::string& key) {
  Stopwatch watch;
  Status s = inner_->Delete(table, key);
  return Record(ops_.del, std::move(s), static_cast<int64_t>(watch.ElapsedMicros()));
}

Status MeasuredDB::Start() {
  Stopwatch watch;
  Status s = inner_->Start();
  return Record(ops_.start, std::move(s), static_cast<int64_t>(watch.ElapsedMicros()));
}

Status MeasuredDB::Commit() {
  Stopwatch watch;
  Status s = inner_->Commit();
  return Record(ops_.commit, std::move(s), static_cast<int64_t>(watch.ElapsedMicros()));
}

Status MeasuredDB::Abort() {
  Stopwatch watch;
  Status s = inner_->Abort();
  return Record(ops_.abort, std::move(s), static_cast<int64_t>(watch.ElapsedMicros()));
}

}  // namespace ycsbt
