#include "db/measured_db.h"

#include "common/clock.h"

namespace ycsbt {

namespace {

class ScopedMeasure {
 public:
  ScopedMeasure(Measurements* m, const char* op) : m_(m), op_(op) {}

  Status Done(Status s) {
    m_->Measure(op_, static_cast<int64_t>(watch_.ElapsedMicros()));
    m_->ReportStatus(op_, s);
    return s;
  }

 private:
  Measurements* m_;
  const char* op_;
  Stopwatch watch_;
};

}  // namespace

Status MeasuredDB::Read(const std::string& table, const std::string& key,
                        const std::vector<std::string>* fields, FieldMap* result) {
  ScopedMeasure m(measurements_, opname::kRead);
  return m.Done(inner_->Read(table, key, fields, result));
}

Status MeasuredDB::Scan(const std::string& table, const std::string& start_key,
                        size_t record_count, const std::vector<std::string>* fields,
                        std::vector<ScanRow>* result) {
  ScopedMeasure m(measurements_, opname::kScan);
  return m.Done(inner_->Scan(table, start_key, record_count, fields, result));
}

Status MeasuredDB::Update(const std::string& table, const std::string& key,
                          const FieldMap& values) {
  ScopedMeasure m(measurements_, opname::kUpdate);
  return m.Done(inner_->Update(table, key, values));
}

Status MeasuredDB::Insert(const std::string& table, const std::string& key,
                          const FieldMap& values) {
  ScopedMeasure m(measurements_, opname::kInsert);
  return m.Done(inner_->Insert(table, key, values));
}

Status MeasuredDB::Delete(const std::string& table, const std::string& key) {
  ScopedMeasure m(measurements_, opname::kDelete);
  return m.Done(inner_->Delete(table, key));
}

Status MeasuredDB::Start() {
  ScopedMeasure m(measurements_, opname::kStart);
  return m.Done(inner_->Start());
}

Status MeasuredDB::Commit() {
  ScopedMeasure m(measurements_, opname::kCommit);
  return m.Done(inner_->Commit());
}

Status MeasuredDB::Abort() {
  ScopedMeasure m(measurements_, opname::kAbort);
  return m.Done(inner_->Abort());
}

}  // namespace ycsbt
