#ifndef YCSBT_DB_MEASURED_DB_H_
#define YCSBT_DB_MEASURED_DB_H_

#include <memory>
#include <string>

#include "db/db.h"
#include "measurement/measurements.h"

namespace ycsbt {

/// Operation-series names emitted by MeasuredDB.
namespace opname {
inline constexpr const char kRead[] = "READ";
inline constexpr const char kScan[] = "SCAN";
inline constexpr const char kUpdate[] = "UPDATE";
inline constexpr const char kInsert[] = "INSERT";
inline constexpr const char kDelete[] = "DELETE";
inline constexpr const char kStart[] = "START";
inline constexpr const char kCommit[] = "COMMIT";
inline constexpr const char kAbort[] = "ABORT";
}  // namespace opname

/// The Tier-5 instrument: wraps any DB binding and records, for every call,
/// its latency and return code under the operation's series — including the
/// transactional demarcation calls `START`, `COMMIT` and `ABORT` that plain
/// YCSB has no notion of.  Comparing the same workload's series between a
/// transactional and a non-transactional run quantifies the per-operation
/// transactional overhead (paper §III-A, Fig 3).
class MeasuredDB : public DB {
 public:
  MeasuredDB(std::unique_ptr<DB> inner, Measurements* measurements)
      : inner_(std::move(inner)), measurements_(measurements) {}

  Status Init() override { return inner_->Init(); }
  Status Cleanup() override { return inner_->Cleanup(); }

  Status Read(const std::string& table, const std::string& key,
              const std::vector<std::string>* fields, FieldMap* result) override;
  Status Scan(const std::string& table, const std::string& start_key,
              size_t record_count, const std::vector<std::string>* fields,
              std::vector<ScanRow>* result) override;
  Status Update(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  Status Insert(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  Status Delete(const std::string& table, const std::string& key) override;

  Status Start() override;
  Status Commit() override;
  Status Abort() override;
  bool Transactional() const override { return inner_->Transactional(); }

  DB* inner() const { return inner_.get(); }

 private:
  std::unique_ptr<DB> inner_;
  Measurements* measurements_;  // not owned
};

}  // namespace ycsbt

#endif  // YCSBT_DB_MEASURED_DB_H_
