#ifndef YCSBT_DB_MEASURED_DB_H_
#define YCSBT_DB_MEASURED_DB_H_

#include <memory>
#include <string>

#include "db/db.h"
#include "measurement/measurements.h"

namespace ycsbt {

/// Operation-series names emitted by MeasuredDB.
namespace opname {
inline constexpr const char kRead[] = "READ";
inline constexpr const char kMultiRead[] = "MULTIREAD";
inline constexpr const char kScan[] = "SCAN";
inline constexpr const char kUpdate[] = "UPDATE";
inline constexpr const char kInsert[] = "INSERT";
inline constexpr const char kBatchInsert[] = "BATCHINSERT";
inline constexpr const char kDelete[] = "DELETE";
inline constexpr const char kStart[] = "START";
inline constexpr const char kCommit[] = "COMMIT";
inline constexpr const char kAbort[] = "ABORT";
}  // namespace opname

/// The Tier-5 instrument: wraps any DB binding and records, for every call,
/// its latency and return code under the operation's series — including the
/// transactional demarcation calls `START`, `COMMIT` and `ABORT` that plain
/// YCSB has no notion of.  Comparing the same workload's series between a
/// transactional and a non-transactional run quantifies the per-operation
/// transactional overhead (paper §III-A, Fig 3).
///
/// All eight op handles are interned to dense `OpId`s once at construction
/// (and re-resolved in `Init()`, which is a no-op re-intern), so the
/// per-call cost is a stopwatch read plus one histogram/counter update —
/// no string construction and no map lookup.  Bind a `ThreadSink` to make
/// that update lock-free thread-local state (the runner does this for every
/// client thread); unbound, samples go to the shared series under its lock.
class MeasuredDB : public DB {
 public:
  MeasuredDB(std::unique_ptr<DB> inner, Measurements* measurements);

  /// Routes this wrapper's samples through `sink` (owned by the same
  /// `Measurements`).  The calling thread must be the sink's owner; pass
  /// nullptr to fall back to the shared series.
  void BindSink(ThreadSink* sink) { sink_ = sink; }

  Status Init() override;
  Status Cleanup() override { return inner_->Cleanup(); }

  Status Read(const std::string& table, const std::string& key,
              const std::vector<std::string>* fields, FieldMap* result) override;
  void MultiRead(const std::string& table, const std::vector<std::string>& keys,
                 const std::vector<std::string>* fields,
                 std::vector<MultiReadRow>* rows) override;
  Status Scan(const std::string& table, const std::string& start_key,
              size_t record_count, const std::vector<std::string>* fields,
              std::vector<ScanRow>* result) override;
  Status Update(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  Status Insert(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  void BatchInsert(const std::string& table, const std::vector<std::string>& keys,
                   const std::vector<FieldMap>& values,
                   std::vector<Status>* statuses) override;
  Status Delete(const std::string& table, const std::string& key) override;

  Status Start() override;
  Status Commit() override;
  Status Abort() override;
  bool Transactional() const override { return inner_->Transactional(); }

  DB* inner() const { return inner_.get(); }

 private:
  /// Resolved handles for the ten series this wrapper emits.
  struct OpHandles {
    OpId read, multiread, scan, update, insert, batch_insert, del, start,
        commit, abort;
  };

  void ResolveHandles();
  Status Record(OpId op, Status status, int64_t latency_us);

  std::unique_ptr<DB> inner_;
  Measurements* measurements_;  // not owned
  ThreadSink* sink_ = nullptr;  // not owned; optional
  OpHandles ops_;
};

}  // namespace ycsbt

#endif  // YCSBT_DB_MEASURED_DB_H_
