#ifndef YCSBT_DB_BASIC_DB_H_
#define YCSBT_DB_BASIC_DB_H_

#include <atomic>
#include <cstdint>

#include "common/latency_model.h"
#include "common/random.h"
#include "db/db.h"

namespace ycsbt {

/// YCSB's BasicDB analogue: a stub binding that succeeds on everything,
/// optionally sleeps a configurable simulated latency, and counts calls.
/// Used to test the framework itself (workloads, executor, measurement)
/// without a real store, and to verify YCSB backward compatibility (its
/// Start/Commit/Abort are the inherited no-ops).
class BasicDB : public DB {
 public:
  /// @param simulate_delay_us mean per-op latency to sleep (0 = none).
  explicit BasicDB(uint64_t simulate_delay_us = 0)
      : latency_(static_cast<double>(simulate_delay_us), 0.25) {}

  Status Read(const std::string& table, const std::string& key,
              const std::vector<std::string>* fields, FieldMap* result) override;
  Status Scan(const std::string& table, const std::string& start_key,
              size_t record_count, const std::vector<std::string>* fields,
              std::vector<ScanRow>* result) override;
  Status Update(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  Status Insert(const std::string& table, const std::string& key,
                const FieldMap& values) override;
  void BatchInsert(const std::string& table, const std::vector<std::string>& keys,
                   const std::vector<FieldMap>& values,
                   std::vector<Status>* statuses) override {
    (void)table;
    (void)values;
    // One simulated round trip for the whole batch, one op counted per key.
    statuses->clear();
    statuses->resize(keys.size());
    if (keys.empty()) return;
    Status s = Touch();
    for (size_t i = 0; i < keys.size(); ++i) (*statuses)[i] = s;
    ops_.fetch_add(keys.size() - 1, std::memory_order_relaxed);
  }
  Status Delete(const std::string& table, const std::string& key) override;

  /// Total operations across all BasicDB methods (shared by all threads'
  /// instances via the factory is not needed; each instance counts its own).
  uint64_t operation_count() const { return ops_.load(std::memory_order_relaxed); }

 private:
  Status Touch();

  LatencyModel latency_;
  std::atomic<uint64_t> ops_{0};
};

}  // namespace ycsbt

#endif  // YCSBT_DB_BASIC_DB_H_
