#include "db/kvstore_db.h"

#include "db/field_codec.h"

namespace ycsbt {

Status KvStoreDB::Read(const std::string& table, const std::string& key,
                       const std::vector<std::string>* fields, FieldMap* result) {
  std::string data;
  Status s = store_->Get(ComposeKey(table, key), &data);
  if (!s.ok()) return s;
  return DecodeFieldsProjected(data, fields, result);
}

void KvStoreDB::MultiRead(const std::string& table,
                          const std::vector<std::string>& keys,
                          const std::vector<std::string>* fields,
                          std::vector<MultiReadRow>* rows) {
  std::vector<std::string> composed;
  composed.reserve(keys.size());
  for (const auto& key : keys) composed.push_back(ComposeKey(table, key));
  std::vector<kv::MultiGetResult> raw;
  store_->MultiGet(composed, &raw);
  rows->clear();
  rows->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    MultiReadRow& row = (*rows)[i];
    row.status = raw[i].status;
    if (row.status.ok()) {
      row.status = DecodeFieldsProjected(raw[i].value, fields, &row.fields);
    }
  }
}

Status KvStoreDB::Scan(const std::string& table, const std::string& start_key,
                       size_t record_count, const std::vector<std::string>* fields,
                       std::vector<ScanRow>* result) {
  result->clear();
  std::vector<kv::ScanEntry> entries;
  std::string prefix = table + "/";
  Status s = store_->Scan(ComposeKey(table, start_key), record_count, &entries);
  if (!s.ok()) return s;
  for (const auto& entry : entries) {
    if (entry.key.compare(0, prefix.size(), prefix) != 0) break;  // next table
    ScanRow row;
    row.key = entry.key.substr(prefix.size());
    s = DecodeFieldsProjected(entry.value, fields, &row.fields);
    if (!s.ok()) return s;
    result->push_back(std::move(row));
  }
  return Status::OK();
}

Status KvStoreDB::Update(const std::string& table, const std::string& key,
                         const FieldMap& values) {
  // YCSB update semantics: replace the named fields, keep the others.  The
  // read-merge-write below is NOT atomic — precisely the behaviour of a
  // record layer over a plain key-value store, and the source of the
  // anomalies Tier 6 detects when updates race.
  std::string composed = ComposeKey(table, key);
  std::string existing;
  Status s = store_->Get(composed, &existing);
  if (!s.ok()) return s;
  std::string merged;
  s = MergeFields(existing, values, &merged);
  if (!s.ok()) return s;
  return store_->Put(composed, merged);
}

Status KvStoreDB::Insert(const std::string& table, const std::string& key,
                         const FieldMap& values) {
  return store_->Put(ComposeKey(table, key), EncodeFields(values));
}

void KvStoreDB::BatchInsert(const std::string& table,
                            const std::vector<std::string>& keys,
                            const std::vector<FieldMap>& values,
                            std::vector<Status>* statuses) {
  std::vector<kv::WriteOp> ops;
  ops.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ops.push_back(
        kv::WriteOp::Put(ComposeKey(table, keys[i]), EncodeFields(values[i])));
  }
  std::vector<kv::WriteResult> results;
  store_->MultiWrite(ops, &results);
  statuses->clear();
  statuses->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    (*statuses)[i] = results[i].status;
  }
}

Status KvStoreDB::Delete(const std::string& table, const std::string& key) {
  return store_->Delete(ComposeKey(table, key));
}

}  // namespace ycsbt
