#include "db/basic_db.h"

namespace ycsbt {

Status BasicDB::Touch() {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (latency_.Enabled()) {
    latency_.Inject(ThreadLocalRandom());
  }
  return Status::OK();
}

Status BasicDB::Read(const std::string& /*table*/, const std::string& /*key*/,
                     const std::vector<std::string>* /*fields*/, FieldMap* result) {
  if (result != nullptr) result->clear();
  return Touch();
}

Status BasicDB::Scan(const std::string& /*table*/, const std::string& /*start*/,
                     size_t /*count*/, const std::vector<std::string>* /*fields*/,
                     std::vector<ScanRow>* result) {
  if (result != nullptr) result->clear();
  return Touch();
}

Status BasicDB::Update(const std::string& /*table*/, const std::string& /*key*/,
                       const FieldMap& /*values*/) {
  return Touch();
}

Status BasicDB::Insert(const std::string& /*table*/, const std::string& /*key*/,
                       const FieldMap& /*values*/) {
  return Touch();
}

Status BasicDB::Delete(const std::string& /*table*/, const std::string& /*key*/) {
  return Touch();
}

}  // namespace ycsbt
