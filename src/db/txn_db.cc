#include "db/txn_db.h"

#include "db/field_codec.h"
#include "db/kvstore_db.h"

namespace ycsbt {

Status TxnDB::ReadRaw(const std::string& composed, std::string* value) {
  if (txn_ != nullptr) return txn_->Read(composed, value);
  return kv_->ReadCommitted(composed, value);
}

Status TxnDB::Read(const std::string& table, const std::string& key,
                   const std::vector<std::string>* fields, FieldMap* result) {
  std::string data;
  Status s = ReadRaw(KvStoreDB::ComposeKey(table, key), &data);
  if (!s.ok()) return s;
  return DecodeFieldsProjected(data, fields, result);
}

void TxnDB::MultiRead(const std::string& table,
                      const std::vector<std::string>& keys,
                      const std::vector<std::string>* fields,
                      std::vector<MultiReadRow>* rows) {
  if (txn_ == nullptr) {
    // Auto-commit path: no transaction to batch under; plain loop.
    DB::MultiRead(table, keys, fields, rows);
    return;
  }
  std::vector<std::string> composed;
  composed.reserve(keys.size());
  for (const auto& key : keys) {
    composed.push_back(KvStoreDB::ComposeKey(table, key));
  }
  std::vector<txn::TxReadResult> raw;
  txn_->MultiRead(composed, &raw);
  rows->clear();
  rows->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    MultiReadRow& row = (*rows)[i];
    row.status = raw[i].status;
    if (row.status.ok()) {
      row.status = DecodeFieldsProjected(raw[i].value, fields, &row.fields);
    }
  }
}

Status TxnDB::Scan(const std::string& table, const std::string& start_key,
                   size_t record_count, const std::vector<std::string>* fields,
                   std::vector<ScanRow>* result) {
  result->clear();
  std::vector<txn::TxScanEntry> entries;
  std::string prefix = table + "/";
  std::string composed = KvStoreDB::ComposeKey(table, start_key);
  Status s = txn_ != nullptr ? txn_->Scan(composed, record_count, &entries)
                             : kv_->ScanCommitted(composed, record_count, &entries);
  if (!s.ok()) return s;
  for (const auto& entry : entries) {
    if (entry.key.compare(0, prefix.size(), prefix) != 0) break;
    ScanRow row;
    row.key = entry.key.substr(prefix.size());
    s = DecodeFieldsProjected(entry.value, fields, &row.fields);
    if (!s.ok()) return s;
    result->push_back(std::move(row));
  }
  return Status::OK();
}

Status TxnDB::Update(const std::string& table, const std::string& key,
                     const FieldMap& values) {
  // Read-merge-write; inside a transaction the read joins the read set and
  // the merged record lands in the write buffer, so the whole update is
  // atomic at commit.
  std::string composed = KvStoreDB::ComposeKey(table, key);
  std::string existing;
  Status s = ReadRaw(composed, &existing);
  if (!s.ok()) return s;
  std::string merged;
  s = MergeFields(existing, values, &merged);
  if (!s.ok()) return s;
  if (txn_ != nullptr) return txn_->Write(composed, merged);
  return kv_->LoadPut(composed, merged);
}

Status TxnDB::Insert(const std::string& table, const std::string& key,
                     const FieldMap& values) {
  std::string composed = KvStoreDB::ComposeKey(table, key);
  std::string encoded = EncodeFields(values);
  if (txn_ != nullptr) return txn_->Write(composed, encoded);
  return kv_->LoadPut(composed, encoded);
}

void TxnDB::BatchInsert(const std::string& table,
                        const std::vector<std::string>& keys,
                        const std::vector<FieldMap>& values,
                        std::vector<Status>* statuses) {
  // Inside a transaction all writes land in the write buffer, so the batch
  // costs nothing beyond the loop; outside one, each record is an
  // auto-committed LoadPut exactly like `Insert`.
  statuses->clear();
  statuses->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    std::string composed = KvStoreDB::ComposeKey(table, keys[i]);
    std::string encoded = EncodeFields(values[i]);
    (*statuses)[i] = txn_ != nullptr ? txn_->Write(composed, encoded)
                                     : kv_->LoadPut(composed, encoded);
  }
}

Status TxnDB::Delete(const std::string& table, const std::string& key) {
  std::string composed = KvStoreDB::ComposeKey(table, key);
  if (txn_ != nullptr) return txn_->Delete(composed);
  // Auto-commit delete: a one-op transaction.
  auto txn = kv_->Begin();
  Status s = txn->Delete(composed);
  if (!s.ok()) {
    txn->Abort();
    return s;
  }
  return txn->Commit();
}

Status TxnDB::Start() {
  if (txn_ != nullptr) return Status::InvalidArgument("transaction already active");
  txn_ = kv_->Begin();
  return Status::OK();
}

Status TxnDB::Commit() {
  if (txn_ == nullptr) return Status::InvalidArgument("no active transaction");
  Status s = txn_->Commit();
  txn_.reset();
  return s;
}

Status TxnDB::Abort() {
  if (txn_ == nullptr) return Status::InvalidArgument("no active transaction");
  Status s = txn_->Abort();
  txn_.reset();
  return s;
}

}  // namespace ycsbt
