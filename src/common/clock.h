#ifndef YCSBT_COMMON_CLOCK_H_
#define YCSBT_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ycsbt {

/// Nanoseconds from the monotonic clock; the time base for every latency
/// measurement in the framework.
inline uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Microseconds from the monotonic clock.
inline uint64_t SteadyMicros() { return SteadyNanos() / 1000; }

/// Milliseconds from the monotonic clock.
inline uint64_t SteadyMillis() { return SteadyNanos() / 1000000; }

/// Wall-clock microseconds since the Unix epoch (lock lease timestamps).
inline uint64_t WallMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock milliseconds since the Unix epoch (the physical component of
/// hybrid logical clocks; milliseconds keep the packed value within 64 bits).
inline uint64_t WallMillis() { return WallMicros() / 1000; }

/// Hybrid logical clock (Kulkarni et al.): physical milliseconds in the high
/// 16..63 bits, a logical counter in the low 16 bits.
///
/// The client-coordinated transaction library (paper ref [28]) explicitly
/// avoids a central timestamp oracle; each client derives start and commit
/// timestamps from its local clock.  An HLC gives those timestamps two
/// properties a bare local clock lacks: they are strictly monotonic per
/// process even if the wall clock stalls or steps backwards, and observing a
/// remote timestamp (via `Observe`) pushes the local clock forward so that
/// causally-later transactions get larger timestamps.
class HybridLogicalClock {
 public:
  HybridLogicalClock() : state_(Pack(WallMillis(), 0)) {}

  /// Returns the next timestamp, strictly greater than all previously
  /// returned or observed timestamps.
  uint64_t Now() {
    uint64_t wall = WallMillis();
    uint64_t prev = state_.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t phys = Physical(prev);
      uint64_t next;
      if (wall > phys) {
        next = Pack(wall, 0);
      } else {
        next = prev + 1;  // bump logical; overflows into physical, still monotonic
      }
      if (state_.compare_exchange_weak(prev, next, std::memory_order_relaxed)) {
        return next;
      }
    }
  }

  /// Merges a timestamp received from elsewhere so subsequent `Now()` results
  /// exceed it.
  void Observe(uint64_t remote) {
    uint64_t prev = state_.load(std::memory_order_relaxed);
    while (remote > prev &&
           !state_.compare_exchange_weak(prev, remote, std::memory_order_relaxed)) {
    }
  }

  /// Extracts the physical (millisecond) component of a timestamp.
  static uint64_t Physical(uint64_t ts) { return ts >> kLogicalBits; }

  /// Extracts the logical counter component.
  static uint64_t Logical(uint64_t ts) { return ts & ((1ull << kLogicalBits) - 1); }

  static constexpr int kLogicalBits = 16;

 private:
  static uint64_t Pack(uint64_t phys, uint64_t logical) {
    return (phys << kLogicalBits) | logical;
  }

  std::atomic<uint64_t> state_;
};

/// A monotonically increasing stopwatch for measuring one interval.
class Stopwatch {
 public:
  Stopwatch() : start_(SteadyNanos()) {}

  void Restart() { start_ = SteadyNanos(); }
  uint64_t ElapsedNanos() const { return SteadyNanos() - start_; }
  uint64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  uint64_t start_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_CLOCK_H_
