#ifndef YCSBT_COMMON_LOGGING_H_
#define YCSBT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ycsbt {

/// Severity levels for the framework logger.
enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/// Minimal thread-safe leveled logger writing to stderr.
///
/// The benchmark client is itself a measurement instrument, so logging stays
/// out of hot paths; modules log configuration at Info and unexpected
/// conditions at Warn/Error.  The level can be raised to silence benches.
namespace logging {

/// Sets the minimum level that will be emitted.
void SetLevel(LogLevel level);
LogLevel GetLevel();

/// Emits one line (used by the YCSBT_LOG macro; prefer the macro).
void Write(LogLevel level, const std::string& msg);

}  // namespace logging

#define YCSBT_LOG(level, expr)                                          \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::ycsbt::logging::GetLevel())) {               \
      std::ostringstream ycsbt_log_stream_;                             \
      ycsbt_log_stream_ << expr;                                        \
      ::ycsbt::logging::Write(level, ycsbt_log_stream_.str());          \
    }                                                                   \
  } while (0)

#define YCSBT_DEBUG(expr) YCSBT_LOG(::ycsbt::LogLevel::kDebug, expr)
#define YCSBT_INFO(expr) YCSBT_LOG(::ycsbt::LogLevel::kInfo, expr)
#define YCSBT_WARN(expr) YCSBT_LOG(::ycsbt::LogLevel::kWarn, expr)
#define YCSBT_ERROR(expr) YCSBT_LOG(::ycsbt::LogLevel::kError, expr)

}  // namespace ycsbt

#endif  // YCSBT_COMMON_LOGGING_H_
