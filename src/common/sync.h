#ifndef YCSBT_COMMON_SYNC_H_
#define YCSBT_COMMON_SYNC_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace ycsbt {

/// One-shot latch: client threads block on it until the workload executor
/// releases them all at once, so per-thread warm-up cost does not skew the
/// measured interval.
class CountDownLatch {
 public:
  explicit CountDownLatch(int64_t count) : count_(count) {}

  /// Decrements the count; releases waiters when it reaches zero.
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  /// Blocks until the count reaches zero.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  int64_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_SYNC_H_
