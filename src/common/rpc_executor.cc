#include "common/rpc_executor.h"

#include <algorithm>
#include <atomic>

#include "common/op_context.h"
#include "common/random.h"

namespace ycsbt {

RpcExecutor::RpcExecutor(int threads, int max_inflight, uint64_t seed)
    : max_inflight_(max_inflight > 0 ? max_inflight
                                     : std::max(threads, 1)),
      seed_(seed) {
  workers_.reserve(threads > 0 ? static_cast<size_t>(threads) : 0);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

RpcExecutor::~RpcExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void RpcExecutor::WorkerLoop(size_t worker_index) {
  // Deterministic per-worker seeding: without this the pool threads'
  // `ThreadLocalRandom()` is clock-seeded, and any latency model drawing on
  // a worker would differ between two same-seed runs.
  ThreadLocalRandom().Seed(seed_ ^
                           (0x9E3779B97F4A7C15ull * (worker_index + 1)));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void RpcExecutor::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::vector<Status> RpcExecutor::ParallelForEach(
    size_t items, const std::function<Status(size_t)>& fn) {
  std::vector<Status> statuses(items);
  if (items == 0) return statuses;
  if (!enabled() || items < 2) {
    for (size_t i = 0; i < items; ++i) statuses[i] = fn(i);
    return statuses;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.batches++;
    stats_.items += items;
    stats_.width.Add(static_cast<int64_t>(items));
  }

  // Shared batch state lives on the caller's stack: the caller does not
  // return until every helper task has finished with it.
  struct BatchState {
    std::atomic<size_t> next{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    size_t helpers_done = 0;
  };
  BatchState state;
  const OpContext ctx = OpContext::Snapshot();

  auto run_items = [&state, &statuses, &fn, items, ctx] {
    OpContextAdoptScope adopt(ctx);
    for (;;) {
      size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= items) return;
      statuses[i] = fn(i);
    }
  };

  // The caller is one lane of the batch, so only `bound - 1` helpers are
  // submitted; a helper that gets scheduled after the queue drained simply
  // finds `next >= items` and reports done.
  const size_t bound =
      std::min(items, static_cast<size_t>(std::max(max_inflight_, 1)));
  const size_t helpers = bound - 1;
  for (size_t h = 0; h < helpers; ++h) {
    Submit([&state, run_items] {
      run_items();
      {
        std::lock_guard<std::mutex> lock(state.done_mu);
        state.helpers_done++;
      }
      state.done_cv.notify_one();
    });
  }

  run_items();

  std::unique_lock<std::mutex> lock(state.done_mu);
  state.done_cv.wait(lock,
                     [&state, helpers] { return state.helpers_done == helpers; });
  return statuses;
}

FanoutStats RpcExecutor::DrainStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  FanoutStats out = stats_;
  stats_ = FanoutStats();
  return out;
}

}  // namespace ycsbt
