#ifndef YCSBT_COMMON_RPC_EXECUTOR_H_
#define YCSBT_COMMON_RPC_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"

namespace ycsbt {

/// Counters for the fan-out layer, drained once per run by the runner and
/// rendered as the `RPC-FANOUT` width series plus the `FANOUT BATCHES` /
/// `FANOUT AVG WIDTH` summary lines.
struct FanoutStats {
  /// `ParallelForEach` calls that actually fanned out (>= 2 items, pool on).
  uint64_t batches = 0;
  /// Total items across those batches.
  uint64_t items = 0;
  /// Per-batch width distribution.
  Histogram width;
};

/// A small fixed thread pool purpose-built for fanning out independent store
/// RPCs (DESIGN.md §10).
///
/// The one combinator, `ParallelForEach`, runs `fn(0..items)` with bounded
/// concurrency and collects one `Status` per item.  Three properties matter
/// more than raw pool throughput here:
///
///  1. **OpContext travels with the batch.**  The caller's thread-local
///     deadline/exempt state (`OpContext::Snapshot()`) is adopted by every
///     worker running an item, so a deadline set on the issuing thread
///     fences RPCs executed on pool threads and post-commit-point cleanup
///     stays exempt across the hop.
///  2. **The caller participates.**  The issuing thread works the same item
///     queue as the helpers it submitted, so a batch always makes progress
///     even when every pool worker is busy with other clients' batches —
///     fan-out degrades to inline execution instead of deadlocking.
///  3. **Worker RNGs are seeded from the run seed.**  Pool threads would
///     otherwise fall back to `ThreadLocalRandom()`'s clock seeding, making
///     latency draws on workers differ run-to-run; seeding them
///     deterministically keeps same-seed chaos replays bit-identical.
///
/// With zero threads the executor is disabled and `ParallelForEach`
/// degenerates to a plain sequential loop (the seed behaviour), which is
/// what `txn.fanout_threads=0` selects.
class RpcExecutor {
 public:
  /// `threads` pool workers (0 disables the pool), at most `max_inflight`
  /// items of one batch in flight at once (0 = use `threads`), worker RNGs
  /// seeded from `seed`.
  explicit RpcExecutor(int threads, int max_inflight = 0, uint64_t seed = 0);
  ~RpcExecutor();

  RpcExecutor(const RpcExecutor&) = delete;
  RpcExecutor& operator=(const RpcExecutor&) = delete;

  /// True when the pool has workers; false means sequential fallback.
  bool enabled() const { return !workers_.empty(); }
  int threads() const { return static_cast<int>(workers_.size()); }
  int max_inflight() const { return max_inflight_; }

  /// Runs `fn(i)` for every `i` in `[0, items)` and returns the per-item
  /// statuses in index order.  Blocks until every item has completed.
  /// Concurrency is bounded by `min(max_inflight, items)`; the calling
  /// thread counts toward that bound (it drains the queue alongside the
  /// pool).  Inline sequential when the pool is disabled or `items < 2`.
  std::vector<Status> ParallelForEach(size_t items,
                                      const std::function<Status(size_t)>& fn);

  /// Snapshot-and-reset of the fan-out counters accumulated since the last
  /// drain.
  FanoutStats DrainStats();

 private:
  void WorkerLoop(size_t worker_index);
  void Submit(std::function<void()> task);

  const int max_inflight_;
  const uint64_t seed_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;

  std::mutex stats_mu_;
  FanoutStats stats_;

  // Last: joined before everything above is torn down.
  std::vector<std::thread> workers_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_RPC_EXECUTOR_H_
