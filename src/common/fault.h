#ifndef YCSBT_COMMON_FAULT_H_
#define YCSBT_COMMON_FAULT_H_

#include <cstdint>
#include <string>

#include "common/properties.h"

namespace ycsbt {

/// Named points in the client-coordinated commit pipeline where a simulated
/// client crash can be injected (paper §II-B: the protocol is explicitly
/// designed so any later reader repairs a client that dies mid-commit via
/// its transaction status record).
///
/// The points bracket the pipeline's state transitions:
///   kAfterLockPuts   — locks planted, no TSR: recovery must roll BACK.
///   kAfterTsrPut     — commit point passed, nothing applied: recovery must
///                      roll FORWARD every locked record.
///   kMidRollForward  — commit point passed, some records applied: recovery
///                      must roll forward the remainder (partial-apply tear).
///   kBeforeTsrDelete — all records applied, TSR left behind: harmless
///                      garbage any TSR reader tolerates.
enum class CrashPoint : uint32_t {
  kAfterLockPuts = 0,
  kAfterTsrPut = 1,
  kMidRollForward = 2,
  kBeforeTsrDelete = 3,
};

inline constexpr uint32_t CrashPointBit(CrashPoint p) {
  return 1u << static_cast<uint32_t>(p);
}

/// Short name of a crash point (the `fault.crash_points` property tokens).
const char* CrashPointName(CrashPoint p);

/// Parses one crash-point token; returns 0 for an unknown name.  Accepts
/// "all" as every point and "before_roll_forward" as an alias of
/// "after_tsr_put" (the pipeline has no work between the two).
uint32_t ParseCrashPointToken(const std::string& token);

/// Consulted by the transaction library at each `CrashPoint`.  Implemented
/// by the fault-injection layer; a null injector means crashes are off.
/// `ShouldCrash` must be thread-safe (commit runs on every client thread).
class CrashInjector {
 public:
  virtual ~CrashInjector() = default;

  /// True when the pipeline should abandon the transaction *right here*,
  /// leaving all store-side state (locks, TSR) exactly as a dead client
  /// would.
  virtual bool ShouldCrash(CrashPoint point) = 0;
};

/// Deterministic failover/partition script for the replicated cloud store
/// (`cloud::ReplicatedCloudStore`).  All triggers and durations are
/// *count-based* by default — expressed in armed request/write arrivals, the
/// same discipline as the circuit breaker's `cooldown_rejects` — so a
/// single-threaded same-seed run replays the identical fault timeline and
/// the identical `FAILOVER-*`/`NOT-LEADER` counters.  `election_us` is the
/// one wall-clock escape hatch, for tests that need an election to span
/// real status windows.
///
/// Configured from the `cloud.fault.*` property namespace:
///
///   cloud.fault.leader_crash_at   write arrival # at which the leader
///                                 crashes and an election begins (0 = never)
///   cloud.fault.election_ops      the election completes after this many
///                                 NotLeader rejections (default 16 when a
///                                 crash is scripted and election_us is 0)
///   cloud.fault.election_us       wall-clock election duration; when set it
///                                 replaces the count-based completion and
///                                 NotLeader messages carry a
///                                 `retry_after_us=` hint
///   cloud.fault.lost_tail         the first N writes arriving mid-election
///                                 are APPLIED but answered Timeout — the
///                                 unreplicated tail surfacing as ambiguous
///                                 commits (default 0)
///   cloud.fault.partition_region  region cut off from the cluster
///                                 (-1 = none)
///   cloud.fault.partition_at      request arrival # at which the partition
///                                 starts
///   cloud.fault.partition_ops     the partition heals after this many
///                                 Unavailable rejections charged to the
///                                 partitioned region (default 64)
struct FailoverScript {
  uint64_t leader_crash_at = 0;
  uint64_t election_ops = 0;
  uint64_t election_us = 0;
  uint64_t lost_tail = 0;
  int partition_region = -1;
  uint64_t partition_at = 0;
  uint64_t partition_ops = 64;

  bool Any() const {
    return leader_crash_at > 0 || (partition_region >= 0 && partition_at > 0);
  }

  static FailoverScript FromProperties(const Properties& props);
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_FAULT_H_
