#ifndef YCSBT_COMMON_FAULT_H_
#define YCSBT_COMMON_FAULT_H_

#include <cstdint>
#include <string>

namespace ycsbt {

/// Named points in the client-coordinated commit pipeline where a simulated
/// client crash can be injected (paper §II-B: the protocol is explicitly
/// designed so any later reader repairs a client that dies mid-commit via
/// its transaction status record).
///
/// The points bracket the pipeline's state transitions:
///   kAfterLockPuts   — locks planted, no TSR: recovery must roll BACK.
///   kAfterTsrPut     — commit point passed, nothing applied: recovery must
///                      roll FORWARD every locked record.
///   kMidRollForward  — commit point passed, some records applied: recovery
///                      must roll forward the remainder (partial-apply tear).
///   kBeforeTsrDelete — all records applied, TSR left behind: harmless
///                      garbage any TSR reader tolerates.
enum class CrashPoint : uint32_t {
  kAfterLockPuts = 0,
  kAfterTsrPut = 1,
  kMidRollForward = 2,
  kBeforeTsrDelete = 3,
};

inline constexpr uint32_t CrashPointBit(CrashPoint p) {
  return 1u << static_cast<uint32_t>(p);
}

/// Short name of a crash point (the `fault.crash_points` property tokens).
const char* CrashPointName(CrashPoint p);

/// Parses one crash-point token; returns 0 for an unknown name.  Accepts
/// "all" as every point and "before_roll_forward" as an alias of
/// "after_tsr_put" (the pipeline has no work between the two).
uint32_t ParseCrashPointToken(const std::string& token);

/// Consulted by the transaction library at each `CrashPoint`.  Implemented
/// by the fault-injection layer; a null injector means crashes are off.
/// `ShouldCrash` must be thread-safe (commit runs on every client thread).
class CrashInjector {
 public:
  virtual ~CrashInjector() = default;

  /// True when the pipeline should abandon the transaction *right here*,
  /// leaving all store-side state (locks, TSR) exactly as a dead client
  /// would.
  virtual bool ShouldCrash(CrashPoint point) = 0;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_FAULT_H_
