#include "common/latency_model.h"

#include <chrono>
#include <cmath>
#include <thread>

namespace ycsbt {

void SleepMicros(uint64_t micros) {
  if (micros == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

uint64_t LatencyModel::SampleMicros(Random64& rng) const {
  if (!Enabled()) return 0;
  // Box-Muller from two uniforms; one normal deviate per sample is fine here.
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 <= 0.0) u1 = 1e-12;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  double latency = median_micros_ * std::exp(sigma_ * z);
  if (latency < floor_micros_) latency = floor_micros_;
  return static_cast<uint64_t>(latency);
}

void LatencyModel::Inject(Random64& rng) const {
  SleepMicros(SampleMicros(rng));
}

}  // namespace ycsbt
