#include "common/property_registry.h"

#include <algorithm>
#include <iterator>

namespace ycsbt {

namespace {

// Sorted list of every key the codebase reads (binary-searched).  Keep in
// sorted order and add new keys alongside the code that reads them.
constexpr std::string_view kKnownKeys[] = {
    "2pl.lock_timeout_us",
    "arrival.diurnal.low_frac",
    "arrival.diurnal.period_s",
    "arrival.flash.at_s",
    "arrival.flash.duration_s",
    "arrival.flash.multiplier",
    "arrival.hotspot_shift.at_s",
    "arrival.hotspot_shift.multiplier",
    "arrival.max_backlog",
    "arrival.process",
    "arrival.rate",
    "arrival.shape",
    "basicdb.delay_us",
    "batch.size",
    "batch.size_distribution",
    "batchinsertproportion",
    "batchreadproportion",
    "breaker.cooldown_rejects",
    "breaker.cooldown_us",
    "breaker.enabled",
    "breaker.failure_ratio",
    "breaker.min_samples",
    "breaker.probes",
    "breaker.window",
    "bulkload.batch",
    "cew.transfer_accounts",
    "cloud.client_serial_us",
    "cloud.containers",
    "cloud.fault.election_ops",
    "cloud.fault.election_us",
    "cloud.fault.leader_crash_at",
    "cloud.fault.lost_tail",
    "cloud.fault.partition_at",
    "cloud.fault.partition_ops",
    "cloud.fault.partition_region",
    "cloud.latency_scale",
    "cloud.local_region",
    "cloud.max_queue_delay_us",
    "cloud.rate_limit",
    "cloud.read_mode",
    "cloud.regions",
    "cloud.replica_lag_ops",
    "cloud.replica_lag_us",
    "dataintegrity",
    "db",
    "deadline.enforce",
    "deleteproportion",
    "dotransactions",
    "exponential.frac",
    "exponential.percentile",
    "fault.crash_points",
    "fault.crash_rate",
    "fault.error_rate",
    "fault.latency_spike_rate",
    "fault.latency_spike_us",
    "fault.lost_reply_rate",
    "fault.seed",
    "fault.throttle_burst",
    "fault.throttle_rate",
    "fieldcount",
    "fieldlength",
    "fieldlengthdistribution",
    "fieldnameprefix",
    "hedge.delay_max_us",
    "hedge.delay_min_us",
    "hedge.delay_us",
    "hedge.enabled",
    "hedge.percentile",
    "hedge.workers",
    "hotspotdatafraction",
    "hotspotopnfraction",
    "insertcount",
    "insertorder",
    "insertproportion",
    "insertstart",
    "loadthreads",
    "loadwrapped",
    "maxexecutiontime",
    "maxscanlength",
    "memkv.checkpoint_dir_sync",
    "memkv.checkpoint_path",
    "memkv.shards",
    "memkv.sync_wal",
    "memkv.wal_group_commit",
    "memkv.wal_group_max_batch",
    "memkv.wal_group_window_us",
    "memkv.wal_path",
    "minfieldlength",
    "occ.epoch_ms",
    "occ.read_validation",
    "occ.retire_batch",
    "operationcount",
    "rawhttp.latency_floor_us",
    "rawhttp.latency_median_us",
    "rawhttp.latency_sigma",
    "readallfields",
    "readmodifywriteproportion",
    "readproportion",
    "recordcount",
    "requestdistribution",
    "retry.backoff_initial_us",
    "retry.backoff_max_us",
    "retry.backoff_multiplier",
    "retry.deadline_us",
    "retry.jitter",
    "retry.max_attempts",
    "retry.throttle_cooldown_us",
    "scanlengthdistribution",
    "scanproportion",
    "seed",
    "shed.drop_reads",
    "shed.enabled",
    "shed.max_inflight",
    "shed.queue_delay_us",
    "shed.windows",
    "skipload",
    "skiprun",
    "status.interval",
    "status.stall_windows",
    "storage.fault.crash_file",
    "storage.fault.crash_point",
    "storage.fault.crash_point_pass",
    "storage.fault.crash_write_offset",
    "storage.fault.drop_unsynced_on_crash",
    "storage.fault.enospc_after_bytes",
    "storage.fault.read_flip_file",
    "storage.fault.read_flip_offset",
    "storage.fault.read_flip_rate",
    "storage.fault.seed",
    "storage.fault.sync_fail_at",
    "storage.fault.sync_fail_rate",
    "storage.fault.torn_write_at",
    "storage.fault.truncate_fail_at",
    "storage.fault.write_error_rate",
    "suite.load",
    "suite.name",
    "suite.operations_per_thread",
    "suite.output_dir",
    "suite.repeats",
    "table",
    "target",
    "threads",
    "totalcash",
    "txn.cleanup_tsr",
    "txn.fanout_threads",
    "txn.isolation",
    "txn.lease_us",
    "txn.lock_acquire_mode",
    "txn.lock_wait_delay_us",
    "txn.lock_wait_jitter",
    "txn.lock_wait_max_delay_us",
    "txn.max_inflight",
    "txn.oracle_rtt_us",
    "txn.timestamps",
    "updateproportion",
    "workload",
    "writeallfields",
    "writeskew.initial",
    "zeropadding",
    "zipfian.theta",
};

bool ConsumePrefix(std::string_view* s, std::string_view prefix) {
  if (s->substr(0, prefix.size()) != prefix) return false;
  s->remove_prefix(prefix.size());
  return true;
}

}  // namespace

bool IsKnownPropertyKey(std::string_view key) {
  // Suite-file wrappers validate the key they wrap.
  if (ConsumePrefix(&key, "base.") || ConsumePrefix(&key, "sweep.")) {
    return IsKnownPropertyKey(key);
  }
  if (ConsumePrefix(&key, "config.") || ConsumePrefix(&key, "mix.")) {
    // config.<name>.<key> / mix.<name>.<key>: the axis name is free-form.
    size_t dot = key.find('.');
    if (dot == std::string_view::npos) return false;
    return IsKnownPropertyKey(key.substr(dot + 1));
  }
  return std::binary_search(std::begin(kKnownKeys), std::end(kKnownKeys), key);
}

std::vector<std::string> UnknownPropertyKeys(const Properties& props) {
  std::vector<std::string> unknown;
  for (const std::string& key : props.Keys()) {
    if (!IsKnownPropertyKey(key)) unknown.push_back(key);
  }
  return unknown;
}

}  // namespace ycsbt
