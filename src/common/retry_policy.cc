#include "common/retry_policy.h"

#include <algorithm>
#include <cstdlib>

namespace ycsbt {

uint64_t RetryAfterUsHint(const Status& failure) {
  static constexpr char kTag[] = "retry_after_us=";
  const std::string& msg = failure.message();
  size_t pos = msg.find(kTag);
  if (pos == std::string::npos) return 0;
  return std::strtoull(msg.c_str() + pos + sizeof(kTag) - 1, nullptr, 10);
}

uint64_t DecorrelatedJitterUs(Random64& rng, uint64_t base, uint64_t cap,
                              uint64_t* prev) {
  if (base == 0) return 0;
  uint64_t hi = std::max(base + 1, *prev * 3);
  uint64_t next = std::min(base + rng.Uniform(hi - base), cap);
  *prev = std::max(next, base);
  return next;
}

RetryPolicy RetryPolicy::FromProperties(const Properties& props) {
  RetryPolicy p;
  p.max_attempts =
      static_cast<int>(props.GetInt("retry.max_attempts", p.max_attempts));
  if (p.max_attempts < 1) p.max_attempts = 1;
  p.initial_backoff_us =
      props.GetUint("retry.backoff_initial_us", p.initial_backoff_us);
  p.max_backoff_us = props.GetUint("retry.backoff_max_us", p.max_backoff_us);
  if (p.max_backoff_us < p.initial_backoff_us) {
    p.max_backoff_us = p.initial_backoff_us;
  }
  p.multiplier = props.GetDouble("retry.backoff_multiplier", p.multiplier);
  if (p.multiplier < 1.0) p.multiplier = 1.0;
  p.decorrelated_jitter = props.GetBool("retry.jitter", p.decorrelated_jitter);
  p.deadline_us = props.GetUint("retry.deadline_us", p.deadline_us);
  // A configured breaker and the throttle cooldown describe the same
  // quantity — how long a saturated backend needs to drain — so the breaker
  // setting is the default.
  p.throttle_cooldown_us = props.GetUint(
      "retry.throttle_cooldown_us",
      props.GetUint("breaker.cooldown_us", p.throttle_cooldown_us));
  return p;
}

uint64_t RetryState::NextBackoffUs(Random64& rng, const Status& failure) {
  if (failure.IsThrottle() || failure.IsLeadershipChange()) {
    // Cooldown, not congestion probing: honour the server's suggested wait
    // when it is longer (for NotLeader that is the remaining election
    // window), jitter a little so released clients do not stampede back in
    // lockstep, and leave the exponential ladder where it was.
    uint64_t wait = std::max(policy_.throttle_cooldown_us,
                             RetryAfterUsHint(failure));
    if (policy_.decorrelated_jitter && wait > 0) {
      wait += rng.Uniform(wait / 4 + 1);
    }
    return wait;
  }
  uint64_t base = policy_.initial_backoff_us;
  if (base == 0) return 0;
  uint64_t next;
  if (policy_.decorrelated_jitter) {
    next = DecorrelatedJitterUs(rng, base, policy_.max_backoff_us, &prev_us_);
  } else {
    // Deterministic ladder: base, base*m, base*m^2, ... capped.
    next = std::min(prev_us_, policy_.max_backoff_us);
    double grown = static_cast<double>(prev_us_) * policy_.multiplier;
    prev_us_ = grown >= static_cast<double>(policy_.max_backoff_us)
                   ? policy_.max_backoff_us
                   : static_cast<uint64_t>(grown);
  }
  return next;
}

}  // namespace ycsbt
