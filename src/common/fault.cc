#include "common/fault.h"

namespace ycsbt {

const char* CrashPointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kAfterLockPuts:
      return "after_lock_puts";
    case CrashPoint::kAfterTsrPut:
      return "after_tsr_put";
    case CrashPoint::kMidRollForward:
      return "mid_roll_forward";
    case CrashPoint::kBeforeTsrDelete:
      return "before_tsr_delete";
  }
  return "unknown";
}

uint32_t ParseCrashPointToken(const std::string& token) {
  if (token == "all") {
    return CrashPointBit(CrashPoint::kAfterLockPuts) |
           CrashPointBit(CrashPoint::kAfterTsrPut) |
           CrashPointBit(CrashPoint::kMidRollForward) |
           CrashPointBit(CrashPoint::kBeforeTsrDelete);
  }
  if (token == "after_lock_puts") return CrashPointBit(CrashPoint::kAfterLockPuts);
  if (token == "after_tsr_put" || token == "before_roll_forward") {
    return CrashPointBit(CrashPoint::kAfterTsrPut);
  }
  if (token == "mid_roll_forward") return CrashPointBit(CrashPoint::kMidRollForward);
  if (token == "before_tsr_delete") {
    return CrashPointBit(CrashPoint::kBeforeTsrDelete);
  }
  return 0;
}

FailoverScript FailoverScript::FromProperties(const Properties& props) {
  FailoverScript s;
  s.leader_crash_at =
      props.GetUint("cloud.fault.leader_crash_at", s.leader_crash_at);
  s.election_ops = props.GetUint("cloud.fault.election_ops", s.election_ops);
  s.election_us = props.GetUint("cloud.fault.election_us", s.election_us);
  if (s.leader_crash_at > 0 && s.election_ops == 0 && s.election_us == 0) {
    s.election_ops = 16;
  }
  s.lost_tail = props.GetUint("cloud.fault.lost_tail", s.lost_tail);
  s.partition_region = static_cast<int>(
      props.GetInt("cloud.fault.partition_region", s.partition_region));
  s.partition_at = props.GetUint("cloud.fault.partition_at", s.partition_at);
  s.partition_ops =
      props.GetUint("cloud.fault.partition_ops", s.partition_ops);
  if (s.partition_ops == 0) s.partition_ops = 1;
  return s;
}

}  // namespace ycsbt
