#include "common/fault.h"

namespace ycsbt {

const char* CrashPointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kAfterLockPuts:
      return "after_lock_puts";
    case CrashPoint::kAfterTsrPut:
      return "after_tsr_put";
    case CrashPoint::kMidRollForward:
      return "mid_roll_forward";
    case CrashPoint::kBeforeTsrDelete:
      return "before_tsr_delete";
  }
  return "unknown";
}

uint32_t ParseCrashPointToken(const std::string& token) {
  if (token == "all") {
    return CrashPointBit(CrashPoint::kAfterLockPuts) |
           CrashPointBit(CrashPoint::kAfterTsrPut) |
           CrashPointBit(CrashPoint::kMidRollForward) |
           CrashPointBit(CrashPoint::kBeforeTsrDelete);
  }
  if (token == "after_lock_puts") return CrashPointBit(CrashPoint::kAfterLockPuts);
  if (token == "after_tsr_put" || token == "before_roll_forward") {
    return CrashPointBit(CrashPoint::kAfterTsrPut);
  }
  if (token == "mid_roll_forward") return CrashPointBit(CrashPoint::kMidRollForward);
  if (token == "before_tsr_delete") {
    return CrashPointBit(CrashPoint::kBeforeTsrDelete);
  }
  return 0;
}

}  // namespace ycsbt
