#ifndef YCSBT_COMMON_PROPERTIES_H_
#define YCSBT_COMMON_PROPERTIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ycsbt {

/// Java-style property set: the configuration mechanism of YCSB and YCSB+T.
///
/// Workload parameter files (paper Listing 2) are plain `key=value` lines with
/// `#` comments; command-line `-p key=value` pairs override file values, and
/// later `Load()`/`Set()` calls override earlier ones — the same precedence
/// the YCSB client uses.
class Properties {
 public:
  Properties() = default;

  /// Sets (or overwrites) one property.
  void Set(std::string key, std::string value);

  /// Parses `key=value` lines from a string.  Blank lines and lines whose
  /// first non-space character is `#` or `!` are ignored.  Whitespace around
  /// key and value is trimmed.  Returns InvalidArgument on a malformed line
  /// (no '=').
  Status LoadFromString(std::string_view text);

  /// Loads a properties file from disk, as `-P file` does in the YCSB client.
  Status LoadFromFile(const std::string& path);

  /// True if `key` is present.
  bool Contains(const std::string& key) const;

  /// Returns the value for `key`, or `def` if absent.
  std::string Get(const std::string& key, const std::string& def = "") const;

  /// Typed getters.  On a present-but-unparsable value these return `def`;
  /// use the checked variants below when misconfiguration must be fatal.
  int64_t GetInt(const std::string& key, int64_t def) const;
  uint64_t GetUint(const std::string& key, uint64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  /// Accepts true/false/yes/no/on/off/1/0 (case-insensitive).
  bool GetBool(const std::string& key, bool def) const;

  /// Checked getter: fails with InvalidArgument when the key is present but
  /// not parsable as an integer.
  Status CheckedGetInt(const std::string& key, int64_t def, int64_t* out) const;

  /// All keys in sorted order (for deterministic dumps).
  std::vector<std::string> Keys() const;

  /// Number of properties.
  size_t size() const { return map_.size(); }

  /// Merges `other` into this set; values in `other` win.
  void Merge(const Properties& other);

  /// Renders the set as sorted `key=value` lines (for logging runs).
  std::string ToString() const;

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_PROPERTIES_H_
