#ifndef YCSBT_COMMON_OP_CONTEXT_H_
#define YCSBT_COMMON_OP_CONTEXT_H_

#include <cstdint>
#include <limits>

#include "common/clock.h"

namespace ycsbt {

/// Ambient per-operation context: the deadline/budget a caller propagates
/// down the store stack without changing every `kv::Store` signature.
///
/// The runner installs an `OpDeadlineScope` around each transaction (from
/// `retry.deadline_us`); every layer below — `TxnDB`, `ClientTxnStore`, the
/// resilience decorator, `SimCloudStore` — reads the same thread-local, so a
/// doomed transaction stops issuing RPCs mid-flight instead of timing out N
/// more times.  Hedge and fan-out workers carry the submitting thread's
/// context across the hop with the `OpContext::Snapshot()` /
/// `OpContextAdoptScope` pair so the deadline survives the thread hop.
///
/// `exempt` marks sections that must keep issuing requests even past the
/// deadline or through an open breaker: the post-commit-point cleanup of the
/// client-coordinated transaction protocol (roll-forward, TSR delete,
/// ambiguous-commit settlement).  Cutting those off would be *safe* — the
/// TSR arbitration recovers either way — but every abandonment is recovery
/// churn some later reader pays for, so committed work is let through.
struct OpContext {
  /// Absolute `SteadyNanos()` deadline; 0 = no deadline.
  uint64_t deadline_ns = 0;
  /// Deadline/breaker enforcement suspended (post-commit-point cleanup).
  bool exempt = false;

  /// Captures the calling thread's ambient context, to be re-installed on
  /// another thread with `OpContextAdoptScope` (the Snapshot/Adopt pair the
  /// fan-out executor and the hedge workers use).  Defined after the
  /// thread-local below.
  static OpContext Snapshot();
};

namespace internal {
inline thread_local OpContext tls_op_context;
}  // namespace internal

inline const OpContext& CurrentOpContext() { return internal::tls_op_context; }

inline OpContext OpContext::Snapshot() { return internal::tls_op_context; }

/// True when the calling thread is inside an enforcement-exempt section.
inline bool OpExempt() { return internal::tls_op_context.exempt; }

/// True when the ambient deadline exists, is not exempt, and has passed.
inline bool OpDeadlineExpired() {
  const OpContext& ctx = internal::tls_op_context;
  if (ctx.deadline_ns == 0 || ctx.exempt) return false;
  return SteadyNanos() >= ctx.deadline_ns;
}

/// Nanoseconds left on the ambient deadline; UINT64_MAX when there is no
/// deadline (or the section is exempt), 0 when it has already passed.
inline uint64_t OpDeadlineRemainingNanos() {
  const OpContext& ctx = internal::tls_op_context;
  if (ctx.deadline_ns == 0 || ctx.exempt) {
    return std::numeric_limits<uint64_t>::max();
  }
  uint64_t now = SteadyNanos();
  return now >= ctx.deadline_ns ? 0 : ctx.deadline_ns - now;
}

/// RAII: installs an absolute deadline `budget_us` from now (0 = clears any
/// inherited deadline) and restores the previous context on destruction.
class OpDeadlineScope {
 public:
  explicit OpDeadlineScope(uint64_t budget_us)
      : saved_(internal::tls_op_context) {
    internal::tls_op_context.deadline_ns =
        budget_us == 0 ? 0 : SteadyNanos() + budget_us * 1000;
    internal::tls_op_context.exempt = false;
  }
  ~OpDeadlineScope() { internal::tls_op_context = saved_; }

  OpDeadlineScope(const OpDeadlineScope&) = delete;
  OpDeadlineScope& operator=(const OpDeadlineScope&) = delete;

 private:
  OpContext saved_;
};

/// RAII: suspends deadline/breaker enforcement for the enclosed section.
class OpExemptScope {
 public:
  OpExemptScope() : saved_(internal::tls_op_context) {
    internal::tls_op_context.exempt = true;
  }
  ~OpExemptScope() { internal::tls_op_context = saved_; }

  OpExemptScope(const OpExemptScope&) = delete;
  OpExemptScope& operator=(const OpExemptScope&) = delete;

 private:
  OpContext saved_;
};

/// RAII: adopts a context captured with `OpContext::Snapshot()` on another
/// thread, restoring the worker's own context on destruction.  This is the
/// second half of the Snapshot/Adopt pair: any code that moves an RPC onto a
/// pool thread (the fan-out executor's workers, `ResilientStore`'s hedge
/// workers) must adopt the issuing thread's snapshot, or the RPC silently
/// runs with no deadline and no exempt marking.
class OpContextAdoptScope {
 public:
  explicit OpContextAdoptScope(const OpContext& ctx)
      : saved_(internal::tls_op_context) {
    internal::tls_op_context = ctx;
  }
  ~OpContextAdoptScope() { internal::tls_op_context = saved_; }

  OpContextAdoptScope(const OpContextAdoptScope&) = delete;
  OpContextAdoptScope& operator=(const OpContextAdoptScope&) = delete;

 private:
  OpContext saved_;
};

/// Former name of `OpContextAdoptScope`.
using OpContextRestoreScope = OpContextAdoptScope;

}  // namespace ycsbt

#endif  // YCSBT_COMMON_OP_CONTEXT_H_
