#ifndef YCSBT_COMMON_RANDOM_H_
#define YCSBT_COMMON_RANDOM_H_

#include <cstdint>

namespace ycsbt {

/// Fast, seedable 64-bit PRNG (xoshiro256**), one instance per client thread.
///
/// The YCSB generators need a cheap random source whose cost is negligible
/// next to a database round trip; std::mt19937_64 is both heavier and awkward
/// to seed deterministically across threads.  Seeding uses splitmix64 so that
/// consecutive integer seeds give uncorrelated streams.
class Random64 {
 public:
  explicit Random64(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds the generator; identical seeds replay identical streams.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the four lanes.
    for (auto& lane : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).  n must be > 0.
  uint64_t Uniform(uint64_t n) {
    // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64 * n,
    // irrelevant for workload generation.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

/// Returns this thread's RNG, seeded once per thread from the monotonic
/// clock and the thread identity.  Use for latency sampling and other
/// simulation randomness that need not be replayable; workload generation
/// uses explicitly seeded per-thread Random64 instances instead.
Random64& ThreadLocalRandom();

/// 64-bit FNV-1a hash, used by YCSB to scatter sequential key numbers
/// (ScrambledZipfian, key hashing in CoreWorkload).
inline uint64_t FNVHash64(uint64_t val) {
  const uint64_t kPrime = 1099511628211ull;
  uint64_t hash = 14695981039346656037ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= val & 0xFF;
    hash *= kPrime;
    val >>= 8;
  }
  return hash;
}

}  // namespace ycsbt

#endif  // YCSBT_COMMON_RANDOM_H_
