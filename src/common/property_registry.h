#ifndef YCSBT_COMMON_PROPERTY_REGISTRY_H_
#define YCSBT_COMMON_PROPERTY_REGISTRY_H_

#include <string_view>
#include <vector>

#include "common/properties.h"

namespace ycsbt {

/// Registry of every property key the codebase reads — the hygiene layer
/// behind `Properties::LoadFromFile`'s unknown-key warning, which catches
/// silent typos like `txn.fanout_thread` (missing `s`) that would otherwise
/// fall back to defaults without a trace.
///
/// Keys are matched exactly, never by dotted-prefix family, so a misspelled
/// suffix inside a known namespace is still flagged.  The only structural
/// forms are the suite-file wrappers: `base.<key>` and `sweep.<key>` validate
/// the wrapped key, `config.<name>.<key>` and `mix.<name>.<key>` strip the
/// free-form axis name first, and `suite.*` control keys are ordinary exact
/// entries.
bool IsKnownPropertyKey(std::string_view key);

/// Keys of `props` that fail `IsKnownPropertyKey`, in sorted order.
std::vector<std::string> UnknownPropertyKeys(const Properties& props);

}  // namespace ycsbt

#endif  // YCSBT_COMMON_PROPERTY_REGISTRY_H_
