#ifndef YCSBT_COMMON_CODING_H_
#define YCSBT_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ycsbt {

/// Little-endian fixed-width and length-prefixed encoding helpers shared by
/// the WAL and the transactional record codec.

inline void PutFixed8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Cursor-style decoder; every Get* returns false on underflow, after which
/// the cursor is in a failed state (callers surface Status::Corruption).
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetFixed8(uint8_t* v) {
    if (data_.size() < 1) return false;
    *v = static_cast<uint8_t>(data_[0]);
    data_.remove_prefix(1);
    return true;
  }

  bool GetFixed32(uint32_t* v) {
    if (data_.size() < 4) return false;
    std::memcpy(v, data_.data(), 4);
    data_.remove_prefix(4);
    return true;
  }

  bool GetFixed64(uint64_t* v) {
    if (data_.size() < 8) return false;
    std::memcpy(v, data_.data(), 8);
    data_.remove_prefix(8);
    return true;
  }

  bool GetLengthPrefixed(std::string* s) {
    uint32_t len;
    if (!GetFixed32(&len)) return false;
    if (data_.size() < len) return false;
    s->assign(data_.data(), len);
    data_.remove_prefix(len);
    return true;
  }

  bool Empty() const { return data_.empty(); }
  size_t Remaining() const { return data_.size(); }

 private:
  std::string_view data_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_CODING_H_
