#include "common/status.h"

namespace ycsbt {

const char* Status::CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kConflict:
      return "Conflict";
    case Code::kAborted:
      return "Aborted";
    case Code::kBusy:
      return "Busy";
    case Code::kRateLimited:
      return "RateLimited";
    case Code::kTimeout:
      return "Timeout";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kNotSupported:
      return "NotSupported";
    case Code::kIOError:
      return "IOError";
    case Code::kCorruption:
      return "Corruption";
    case Code::kInternal:
      return "Internal";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kNotLeader:
      return "NotLeader";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName();
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace ycsbt
