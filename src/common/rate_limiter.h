#ifndef YCSBT_COMMON_RATE_LIMITER_H_
#define YCSBT_COMMON_RATE_LIMITER_H_

#include <cstdint>
#include <mutex>

namespace ycsbt {

/// Token-bucket rate limiter.
///
/// Two users in this codebase:
///  - the simulated cloud stores cap each storage container's request rate
///    (the mechanism behind the Fig 2 throughput plateau at 32 threads), and
///  - the client threads throttle to a target ops/sec when the
///    `target` property is set, as in YCSB.
///
/// `TryAcquire` is non-blocking (used by the cloud simulator, which turns a
/// refusal into an HTTP-503-style `RateLimited` status); `AcquireDelayNanos`
/// returns how long the caller must wait for the token instead, which the
/// client throttler sleeps on.
class TokenBucket {
 public:
  /// @param rate tokens per second; <= 0 means unlimited.
  /// @param burst bucket capacity; defaults to one second's worth of tokens.
  explicit TokenBucket(double rate, double burst = -1.0);

  /// True if a token was available and has been consumed.
  bool TryAcquire(double tokens = 1.0);

  /// Consumes a token unconditionally and returns the number of nanoseconds
  /// the caller should sleep so the long-run rate matches the target
  /// (0 when the bucket had capacity).
  uint64_t AcquireDelayNanos(double tokens = 1.0);

  /// True when no rate limit is configured.
  bool Unlimited() const { return rate_ <= 0.0; }

  double rate() const { return rate_; }

 private:
  void Refill(uint64_t now_nanos);

  const double rate_;
  const double burst_;
  double available_;
  uint64_t last_refill_nanos_;
  std::mutex mu_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_RATE_LIMITER_H_
