#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace ycsbt {

Histogram::Histogram()
    : buckets_(static_cast<size_t>(kBucketGroups) * kSubBuckets, 0) {
  Reset();
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = 0;
  sum_ = 0.0;
  mean_ = 0.0;
  m2_ = 0.0;
}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  // Highest set bit determines the group; the next kSubBucketBits bits select
  // the sub-bucket within the group.
  int msb = 63 - std::countl_zero(value);
  int group = msb - kSubBucketBits + 1;
  int sub = static_cast<int>((value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  // Group g >= 1 starts at (g + 1) * kSubBuckets/... Layout: group 0 covers
  // [0, kSubBuckets) with exact buckets; each later group contributes
  // kSubBuckets buckets (top half of that power-of-two range).
  return group * kSubBuckets + sub;
}

int64_t Histogram::BucketValue(int index) {
  int group = index / kSubBuckets;
  int sub = index % kSubBuckets;
  if (group == 0) return sub;
  // Reconstruct the upper edge of the bucket.
  int msb = group + kSubBucketBits - 1;
  uint64_t base = 1ull << msb;
  uint64_t width = 1ull << (msb - kSubBucketBits);
  return static_cast<int64_t>(base + (static_cast<uint64_t>(sub) + 1) * width - 1);
}

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;
  uint64_t v = static_cast<uint64_t>(value);
  int idx = BucketIndex(v);
  if (idx >= static_cast<int>(buckets_.size())) idx = static_cast<int>(buckets_.size()) - 1;
  ++buckets_[static_cast<size_t>(idx)];
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
  // Welford's online update: numerically stable second moment.
  double delta = static_cast<double>(value) - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (static_cast<double>(value) - mean_);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  // Chan's parallel variance combination: exact merge of the two centred
  // second moments, stable even when the parts' means differ wildly.
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

int64_t Histogram::Min() const { return count_ == 0 ? 0 : min_; }

int64_t Histogram::Max() const { return max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ < 2) return 0.0;
  double var = m2_ / static_cast<double>(count_ - 1);
  return var <= 0.0 ? 0.0 : std::sqrt(var);
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      int64_t v = BucketValue(static_cast<int>(i));
      return std::min(v, max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << "count=" << count_ << " mean=" << Mean() << " min=" << Min()
      << " p50=" << ValueAtQuantile(0.50) << " p95=" << ValueAtQuantile(0.95)
      << " p99=" << ValueAtQuantile(0.99) << " max=" << Max();
  return out.str();
}

}  // namespace ycsbt
