#ifndef YCSBT_COMMON_RETRY_POLICY_H_
#define YCSBT_COMMON_RETRY_POLICY_H_

#include <cstdint>

#include "common/properties.h"
#include "common/random.h"
#include "common/status.h"

namespace ycsbt {

/// Parses a server-suggested wait from a failure message: the simulated
/// cloud store (and the breaker's fail-fast) embed `retry_after_us=<n>` in
/// their status messages, the HTTP `Retry-After` analogue.  Returns 0 when
/// the message carries no hint.
uint64_t RetryAfterUsHint(const Status& failure);

/// One step of the AWS-style *decorrelated jitter* schedule:
/// `sleep = min(cap, base + uniform(0, max(base+1, *prev * 3) - base))`,
/// with `*prev` updated to the drawn sleep (floored at `base`).  Successive
/// sleeps are correlated only through the previous sleep, never the attempt
/// number, which is what breaks up convoys of clients that failed at the
/// same instant.  Shared by the transaction retry loop's backoff ladder and
/// the txn library's lock-wait delay (a fixed lock-wait sleep re-collides
/// contending writers forever).  Returns `0` when `base == 0`.
uint64_t DecorrelatedJitterUs(Random64& rng, uint64_t base, uint64_t cap,
                              uint64_t* prev);

/// Client-side retry discipline for transactions that fail with a retryable
/// status (`Status::IsRetryable()`): bounded attempts, exponential backoff
/// with decorrelated jitter, and an overall per-transaction deadline.
///
/// Configured from the `retry.*` property namespace:
///
///   retry.max_attempts        total attempts per transaction (default 1 =
///                             retries off, the seed behaviour)
///   retry.backoff_initial_us  first backoff (default 100)
///   retry.backoff_max_us      backoff cap (default 100000)
///   retry.backoff_multiplier  growth factor without jitter (default 2.0)
///   retry.jitter              decorrelated jitter on/off (default true)
///   retry.deadline_us         per-transaction wall budget spanning all
///                             attempts and backoffs; 0 = none (default)
///   retry.throttle_cooldown_us  wait before retrying a throttle-class
///                             failure (`Status::IsThrottle()`); defaults to
///                             `breaker.cooldown_us` when that is set, else
///                             25000 — retrying a saturated container on the
///                             hot exponential ladder amplifies the overload
struct RetryPolicy {
  int max_attempts = 1;
  uint64_t initial_backoff_us = 100;
  uint64_t max_backoff_us = 100'000;
  double multiplier = 2.0;
  bool decorrelated_jitter = true;
  uint64_t deadline_us = 0;
  uint64_t throttle_cooldown_us = 25'000;

  bool enabled() const { return max_attempts > 1; }

  static RetryPolicy FromProperties(const Properties& props);
};

/// Per-transaction backoff sequence.  Construct one per transaction attempt
/// chain; each `NextBackoffUs` advances the schedule.
///
/// With jitter the schedule is AWS-style *decorrelated jitter*
/// (sleep = uniform(base, prev * 3), capped), which spreads synchronized
/// retry storms far better than plain exponential backoff; without jitter it
/// is the deterministic base * multiplier^n ladder.
///
/// Throttle-class failures (`Status::IsThrottle()`: the store said
/// RateLimited, or the circuit breaker failed fast with Unavailable) take a
/// different path: the wait is `max(throttle_cooldown_us, retry_after_us
/// hint)` and the exponential ladder does not advance — backing away from a
/// saturated container is cooldown behaviour, not congestion probing.
/// Leadership changes (`Status::IsLeadershipChange()`: a replicated store
/// said NotLeader mid-election) ride the same path: the failure is not
/// congestion, so the ladder stays put and the wait honours the election's
/// `retry_after_us=` redirect hint when present.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy)
      : policy_(policy), prev_us_(policy.initial_backoff_us) {}

  /// Backoff before retrying after `failure`.
  uint64_t NextBackoffUs(Random64& rng, const Status& failure);

  /// Transient-error schedule only (legacy call sites and tests).
  uint64_t NextBackoffUs(Random64& rng) {
    return NextBackoffUs(rng, Status::Aborted());
  }

  /// True when `attempt` (1-based count of attempts already made) has
  /// exhausted the policy or `elapsed_us` blew the deadline.
  bool Exhausted(int attempts_made, uint64_t elapsed_us) const {
    if (attempts_made >= policy_.max_attempts) return true;
    if (policy_.deadline_us != 0 && elapsed_us >= policy_.deadline_us) return true;
    return false;
  }

 private:
  const RetryPolicy& policy_;
  uint64_t prev_us_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_RETRY_POLICY_H_
