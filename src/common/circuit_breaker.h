#ifndef YCSBT_COMMON_CIRCUIT_BREAKER_H_
#define YCSBT_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/properties.h"
#include "common/random.h"
#include "common/status.h"

namespace ycsbt {

/// Configuration of one circuit breaker, from the `breaker.*` namespace:
///
///   breaker.enabled           master switch (default false)
///   breaker.window            rolling outcome window size (default 64)
///   breaker.min_samples       outcomes required before the trip ratio is
///                             evaluated (default 16)
///   breaker.failure_ratio     failure fraction of the window that trips
///                             Closed -> Open (default 0.5)
///   breaker.cooldown_us       wall-clock Open -> Half-Open delay (default
///                             50000)
///   breaker.cooldown_rejects  additionally, after this many fast-failed
///                             arrivals the next arrival probes regardless
///                             of the clock — the *deterministic* cooldown
///                             chaos replays rely on (0 = clock only)
///   breaker.probes            consecutive Half-Open probe successes needed
///                             to re-close (default 3)
struct CircuitBreakerOptions {
  bool enabled = false;
  int window = 64;
  int min_samples = 16;
  double failure_ratio = 0.5;
  uint64_t cooldown_us = 50'000;
  int cooldown_rejects = 0;
  int probes = 3;

  static CircuitBreakerOptions FromProperties(const Properties& props);
};

/// Monotonic counters one breaker (or a whole set, aggregated) exposes.
struct BreakerStats {
  uint64_t opens = 0;       ///< Closed/Half-Open -> Open transitions
  uint64_t fast_fails = 0;  ///< arrivals rejected without touching the store
  uint64_t probes_sent = 0; ///< Half-Open trial requests admitted
  uint64_t recloses = 0;    ///< Half-Open -> Closed recoveries
};

/// Rolling-window circuit breaker guarding one backend (one cloud container).
///
/// State machine: *Closed* admits everything and records outcomes in a ring;
/// once `min_samples` outcomes are in the window and the failure fraction
/// reaches `failure_ratio` it trips to *Open*.  Open fails arrivals fast
/// (no store call) until the cooldown passes — wall clock, or a count of
/// fast-failed arrivals — then the next arrival is admitted as a *Half-Open*
/// probe.  `probes` consecutive probe successes re-close the breaker; one
/// probe failure re-opens it.
///
/// Determinism: the breaker holds no RNG and no sampled state — every
/// transition is a pure function of the outcome/arrival sequence, so a
/// seeded chaos run (whose fault schedule is already deterministic) replays
/// the identical BREAKER-* lifecycle when `cooldown_rejects` drives the
/// cooldown.  Failure classification: throttles (`RateLimited`), timeouts
/// and I/O errors count against the window; application outcomes (NotFound,
/// Conflict, Busy, ...) count as successes — a lost CAS is the store
/// working, not the store failing.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// Admission decision for one arrival.
  struct Ticket {
    bool admitted = true;
    bool probe = false;  ///< admitted as a Half-Open trial request
  };

  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  /// Gate for one arrival.  A rejected ticket means fail fast with
  /// `Status::Unavailable` and do not touch the backend.
  Ticket Admit();

  /// Reports the outcome of an admitted request.  `probe` must echo the
  /// ticket's flag.
  void OnResult(const Status& s, bool probe);

  /// True when `s` counts against the failure window.
  static bool CountsAsFailure(const Status& s) {
    return s.IsRateLimited() || s.IsTimeout() || s.IsIOError() ||
           s.IsUnavailable();
  }

  State state() const;
  BreakerStats stats() const;
  const CircuitBreakerOptions& options() const { return options_; }

 private:
  void TripLocked(uint64_t now_ns);

  const CircuitBreakerOptions options_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::vector<uint8_t> window_;  // ring of outcomes; 1 = failure
  size_t window_next_ = 0;
  size_t window_filled_ = 0;
  int window_failures_ = 0;
  uint64_t opened_at_ns_ = 0;
  uint64_t rejects_this_open_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
  BreakerStats stats_;
};

/// One breaker per backend partition, keyed by the same hash
/// `SimCloudStore` partitions its keyspace with, so the breaker fencing a
/// container sees exactly that container's outcomes.
class CircuitBreakerSet {
 public:
  CircuitBreakerSet(const CircuitBreakerOptions& options, int backends);

  /// Stable backend index of `key` (must match the store's partitioning).
  static size_t BackendIndexFor(const std::string& key, size_t backends) {
    if (backends <= 1) return 0;
    return FNVHash64(std::hash<std::string>{}(key)) % backends;
  }

  CircuitBreaker& ForKey(const std::string& key) {
    return *breakers_[BackendIndexFor(key, breakers_.size())];
  }
  CircuitBreaker& backend(size_t i) { return *breakers_[i]; }
  size_t backends() const { return breakers_.size(); }

  /// True while any backend's breaker is Open (the brownout trigger).
  bool AnyOpen() const;

  /// Sums the per-backend counters.
  BreakerStats Aggregate() const;

 private:
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_CIRCUIT_BREAKER_H_
