#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ycsbt {
namespace logging {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLevel() { return static_cast<LogLevel>(g_level.load()); }

void Write(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace logging
}  // namespace ycsbt
