#include "common/random.h"

#include <thread>

#include "common/clock.h"

namespace ycsbt {

Random64& ThreadLocalRandom() {
  thread_local Random64 rng(
      SteadyNanos() ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) * 0x9E3779B97F4A7C15ull));
  return rng;
}

}  // namespace ycsbt
