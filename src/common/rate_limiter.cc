#include "common/rate_limiter.h"

#include <algorithm>

#include "common/clock.h"

namespace ycsbt {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate),
      burst_(burst > 0.0 ? burst : std::max(rate, 1.0)),
      available_(burst_),
      last_refill_nanos_(SteadyNanos()) {}

void TokenBucket::Refill(uint64_t now_nanos) {
  if (now_nanos <= last_refill_nanos_) return;
  double elapsed = static_cast<double>(now_nanos - last_refill_nanos_) / 1e9;
  available_ = std::min(burst_, available_ + elapsed * rate_);
  last_refill_nanos_ = now_nanos;
}

bool TokenBucket::TryAcquire(double tokens) {
  if (Unlimited()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  Refill(SteadyNanos());
  if (available_ >= tokens) {
    available_ -= tokens;
    return true;
  }
  return false;
}

uint64_t TokenBucket::AcquireDelayNanos(double tokens) {
  if (Unlimited()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  Refill(SteadyNanos());
  available_ -= tokens;  // may go negative: debt expressed as wait time
  if (available_ >= 0.0) return 0;
  // Bound the debt to one burst's worth.  A caller that falls behind (a
  // stall, a long GC-like pause) otherwise accumulates unbounded negative
  // balance and is then throttled far below the target rate for arbitrarily
  // long while the bucket "repays" time that was never going to be used.
  // Clamping forgives the excess, matching YCSB's throttler: one burst of
  // catch-up at most, then steady state resumes — and no single call ever
  // asks for more than burst/rate seconds of sleep.
  available_ = std::max(available_, -burst_);
  return static_cast<uint64_t>(-available_ / rate_ * 1e9);
}

}  // namespace ycsbt
