#ifndef YCSBT_COMMON_HISTOGRAM_H_
#define YCSBT_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ycsbt {

/// Log-bucketed latency histogram (HdrHistogram-lite).
///
/// Values (microseconds in this codebase) are recorded into buckets that are
/// exact up to 2^kSubBucketBits and thereafter keep a relative error below
/// 1/2^kSubBucketBits (~1.5%), which is more than enough resolution for
/// reporting the percentile lines of the paper's Listing 3.  Not thread-safe;
/// the measurement layer shards histograms per thread and merges.
class Histogram {
 public:
  Histogram();

  /// Records one value (negative values are clamped to zero).
  void Add(int64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Removes all recorded values.
  void Reset();

  uint64_t Count() const { return count_; }
  int64_t Min() const;
  int64_t Max() const;
  double Mean() const;
  double StdDev() const;

  /// Value at quantile q in [0,1]; e.g. ValueAtQuantile(0.99) is p99.
  /// Returns 0 when empty.
  int64_t ValueAtQuantile(double q) const;

  int64_t Percentile(double p) const { return ValueAtQuantile(p / 100.0); }

  /// Multi-line human-readable summary.
  std::string ToString() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per power of two
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // 64-bit value range / sub-bucket resolution.
  static constexpr int kBucketGroups = 64 - kSubBucketBits;

  static int BucketIndex(uint64_t value);
  /// Representative (upper-bound) value of a bucket.
  static int64_t BucketValue(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  int64_t min_;
  int64_t max_;
  double sum_;
  // Running mean and centred second moment (Welford / Chan): StdDev from the
  // naive sum-of-squares formula cancels catastrophically when the values are
  // large relative to their spread (e.g. microsecond timestamps-ish samples
  // around 1e8 with spread 1), producing zero or NaN.  M2 accumulates
  // squared deviations directly, so the variance keeps full precision and
  // two histograms merge exactly.
  double mean_;
  double m2_;
};

}  // namespace ycsbt

#endif  // YCSBT_COMMON_HISTOGRAM_H_
