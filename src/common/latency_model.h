#ifndef YCSBT_COMMON_LATENCY_MODEL_H_
#define YCSBT_COMMON_LATENCY_MODEL_H_

#include <cstdint>

#include "common/random.h"

namespace ycsbt {

/// Samples per-request service latencies for the simulated substrates.
///
/// Storage-service request latencies are well modelled as lognormal: a
/// tight body with a long right tail.  The model is parameterised by the
/// *median* (the lognormal scale, exp(mu)) and sigma (shape); the paper's
/// Listing 3 shows exactly this profile for loopback HTTP reads
/// (min 1174 us, avg 1522 us, max 165 ms).
///
/// Sampling is deterministic given the `Random64` the caller supplies, so
/// simulations are replayable.
class LatencyModel {
 public:
  /// @param median_micros median latency; <= 0 disables injection entirely.
  /// @param sigma lognormal shape (0.25 = tight, 1.0 = heavy tail).
  /// @param floor_micros hard minimum, e.g. protocol cost.
  LatencyModel(double median_micros, double sigma, double floor_micros = 0.0)
      : median_micros_(median_micros), sigma_(sigma), floor_micros_(floor_micros) {}

  /// Disabled model: SampleMicros always returns 0.
  LatencyModel() : LatencyModel(0.0, 0.0) {}

  /// Draws one latency in microseconds.
  uint64_t SampleMicros(Random64& rng) const;

  /// Draws one latency and sleeps the calling thread for it.
  void Inject(Random64& rng) const;

  bool Enabled() const { return median_micros_ > 0.0; }
  double median_micros() const { return median_micros_; }
  double sigma() const { return sigma_; }

 private:
  double median_micros_;
  double sigma_;
  double floor_micros_;
};

/// Sleeps the calling thread for `micros` microseconds (no-op for 0).
void SleepMicros(uint64_t micros);

}  // namespace ycsbt

#endif  // YCSBT_COMMON_LATENCY_MODEL_H_
