#ifndef YCSBT_COMMON_STATUS_H_
#define YCSBT_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace ycsbt {

/// Result of an operation that can fail.
///
/// YCSB+T modules never throw across module boundaries; every fallible
/// operation returns a `Status` (RocksDB style).  A `Status` carries a
/// machine-checkable code plus an optional human-readable message.
///
/// The codes mirror the situations that arise in a transactional key-value
/// benchmark: `kConflict` for failed conditional writes (etag mismatch),
/// `kAborted` for transactions rolled back by the concurrency-control layer,
/// `kRateLimited` for simulated cloud-store throttling (HTTP 503), and so on.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,         ///< Key or record does not exist.
    kAlreadyExists,    ///< Insert of a key that is already present.
    kConflict,         ///< Conditional write lost (etag/version mismatch).
    kAborted,          ///< Transaction aborted; the caller may retry.
    kBusy,             ///< Lock held by another transaction; retryable.
    kRateLimited,      ///< Simulated cloud throttle (HTTP 503 analogue).
    kTimeout,          ///< Operation exceeded its deadline.
    kInvalidArgument,  ///< Malformed request or configuration.
    kNotSupported,     ///< Operation not implemented by this binding.
    kIOError,          ///< WAL or file-system failure.
    kCorruption,       ///< Checksum mismatch or malformed on-disk record.
    kInternal,         ///< Invariant violation inside a module.
    kUnavailable,      ///< Backend fenced off (circuit breaker open); retry
                       ///< after a cooldown, not a hot backoff.
    kNotLeader,        ///< Write (or leader read) reached a replica that is
                       ///< not the leader — mid-election or after a
                       ///< failover.  The message carries a redirect hint;
                       ///< retry after re-resolving the leader.
  };

  /// Constructs an OK status.
  Status() = default;

  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view m = "") { return Make(Code::kNotFound, m); }
  static Status AlreadyExists(std::string_view m = "") {
    return Make(Code::kAlreadyExists, m);
  }
  static Status Conflict(std::string_view m = "") { return Make(Code::kConflict, m); }
  static Status Aborted(std::string_view m = "") { return Make(Code::kAborted, m); }
  static Status Busy(std::string_view m = "") { return Make(Code::kBusy, m); }
  static Status RateLimited(std::string_view m = "") {
    return Make(Code::kRateLimited, m);
  }
  static Status Timeout(std::string_view m = "") { return Make(Code::kTimeout, m); }
  static Status InvalidArgument(std::string_view m = "") {
    return Make(Code::kInvalidArgument, m);
  }
  static Status NotSupported(std::string_view m = "") {
    return Make(Code::kNotSupported, m);
  }
  static Status IOError(std::string_view m = "") { return Make(Code::kIOError, m); }
  static Status Corruption(std::string_view m = "") {
    return Make(Code::kCorruption, m);
  }
  static Status Internal(std::string_view m = "") { return Make(Code::kInternal, m); }
  static Status Unavailable(std::string_view m = "") {
    return Make(Code::kUnavailable, m);
  }
  static Status NotLeader(std::string_view m = "") {
    return Make(Code::kNotLeader, m);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsRateLimited() const { return code_ == Code::kRateLimited; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsNotLeader() const { return code_ == Code::kNotLeader; }

  /// True for failures that a transaction retry loop may reasonably retry:
  /// conflicts, aborts, lock-busy, throttling, breaker fail-fasts and
  /// leadership changes.
  bool IsRetryable() const {
    return code_ == Code::kConflict || code_ == Code::kAborted ||
           code_ == Code::kBusy || code_ == Code::kRateLimited ||
           code_ == Code::kTimeout || code_ == Code::kUnavailable ||
           code_ == Code::kNotLeader;
  }

  /// True for overload/throttle-class failures where retrying hot makes the
  /// saturation worse: the server said "back away" (`kRateLimited`) or the
  /// client-side breaker fenced the backend (`kUnavailable`).  The retry
  /// loop waits out a cooldown (or the server-suggested `retry_after_us=`
  /// hint in the message) instead of the exponential ladder.
  bool IsThrottle() const {
    return code_ == Code::kRateLimited || code_ == Code::kUnavailable;
  }

  /// True when the request was refused because cluster leadership is in
  /// flux (mid-election, or the client addressed a deposed leader).  Like a
  /// throttle, this is not a congestion signal: the retry loop should wait
  /// out the redirect hint (`retry_after_us=` when the election deadline is
  /// known) and re-resolve the leader instead of climbing the backoff
  /// ladder — and unlike infrastructure failures it must not count against
  /// circuit-breaker windows (the backend is healthy, just not in charge).
  bool IsLeadershipChange() const { return code_ == Code::kNotLeader; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Short name of the code, e.g. "NotFound".
  const char* CodeName() const { return CodeName(code_); }
  static const char* CodeName(Code code);

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  static Status Make(Code code, std::string_view m) {
    return Status(code, std::string(m));
  }

  Code code_ = Code::kOk;
  std::string msg_;
};

/// Number of distinct `Status::Code` values.  The measurement layer counts
/// completions per code in a dense array indexed by code, so this must track
/// the last enumerator above.
inline constexpr size_t kStatusCodeCount =
    static_cast<size_t>(Status::Code::kNotLeader) + 1;

}  // namespace ycsbt

#endif  // YCSBT_COMMON_STATUS_H_
