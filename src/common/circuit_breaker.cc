#include "common/circuit_breaker.h"

#include <algorithm>

#include "common/clock.h"

namespace ycsbt {

CircuitBreakerOptions CircuitBreakerOptions::FromProperties(
    const Properties& props) {
  CircuitBreakerOptions o;
  o.enabled = props.GetBool("breaker.enabled", o.enabled);
  o.window = static_cast<int>(props.GetInt("breaker.window", o.window));
  if (o.window < 1) o.window = 1;
  o.min_samples =
      static_cast<int>(props.GetInt("breaker.min_samples", o.min_samples));
  o.min_samples = std::clamp(o.min_samples, 1, o.window);
  o.failure_ratio = props.GetDouble("breaker.failure_ratio", o.failure_ratio);
  o.failure_ratio = std::clamp(o.failure_ratio, 0.0, 1.0);
  o.cooldown_us = props.GetUint("breaker.cooldown_us", o.cooldown_us);
  o.cooldown_rejects = static_cast<int>(
      props.GetInt("breaker.cooldown_rejects", o.cooldown_rejects));
  if (o.cooldown_rejects < 0) o.cooldown_rejects = 0;
  o.probes = static_cast<int>(props.GetInt("breaker.probes", o.probes));
  if (o.probes < 1) o.probes = 1;
  return o;
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options),
      window_(static_cast<size_t>(std::max(options.window, 1)), 0) {}

void CircuitBreaker::TripLocked(uint64_t now_ns) {
  state_ = State::kOpen;
  opened_at_ns_ = now_ns;
  rejects_this_open_ = 0;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  ++stats_.opens;
}

CircuitBreaker::Ticket CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return Ticket{true, false};
    case State::kOpen: {
      bool cooled =
          SteadyNanos() - opened_at_ns_ >= options_.cooldown_us * 1000 ||
          (options_.cooldown_rejects > 0 &&
           rejects_this_open_ >=
               static_cast<uint64_t>(options_.cooldown_rejects));
      if (!cooled) {
        ++rejects_this_open_;
        ++stats_.fast_fails;
        return Ticket{false, false};
      }
      state_ = State::kHalfOpen;
      probes_in_flight_ = 1;
      probe_successes_ = 0;
      ++stats_.probes_sent;
      return Ticket{true, true};
    }
    case State::kHalfOpen:
      if (probes_in_flight_ < options_.probes) {
        ++probes_in_flight_;
        ++stats_.probes_sent;
        return Ticket{true, true};
      }
      ++stats_.fast_fails;
      return Ticket{false, false};
  }
  return Ticket{true, false};
}

void CircuitBreaker::OnResult(const Status& s, bool probe) {
  bool failure = CountsAsFailure(s);
  std::lock_guard<std::mutex> lock(mu_);
  if (probe) {
    if (state_ != State::kHalfOpen) return;  // stale: breaker moved on
    probes_in_flight_ = std::max(probes_in_flight_ - 1, 0);
    if (failure) {
      TripLocked(SteadyNanos());
      return;
    }
    if (++probe_successes_ >= options_.probes) {
      state_ = State::kClosed;
      std::fill(window_.begin(), window_.end(), 0);
      window_next_ = 0;
      window_filled_ = 0;
      window_failures_ = 0;
      ++stats_.recloses;
    }
    return;
  }
  if (state_ != State::kClosed) return;  // late result from before a trip
  window_failures_ -= window_[window_next_];
  window_[window_next_] = failure ? 1 : 0;
  window_failures_ += window_[window_next_];
  window_next_ = (window_next_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
  if (window_filled_ >= static_cast<size_t>(options_.min_samples) &&
      static_cast<double>(window_failures_) >=
          options_.failure_ratio * static_cast<double>(window_filled_)) {
    TripLocked(SteadyNanos());
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

CircuitBreakerSet::CircuitBreakerSet(const CircuitBreakerOptions& options,
                                     int backends) {
  int n = std::max(backends, 1);
  breakers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(options));
  }
}

bool CircuitBreakerSet::AnyOpen() const {
  for (const auto& b : breakers_) {
    if (b->state() == CircuitBreaker::State::kOpen) return true;
  }
  return false;
}

BreakerStats CircuitBreakerSet::Aggregate() const {
  BreakerStats total;
  for (const auto& b : breakers_) {
    BreakerStats s = b->stats();
    total.opens += s.opens;
    total.fast_fails += s.fast_fails;
    total.probes_sent += s.probes_sent;
    total.recloses += s.recloses;
  }
  return total;
}

}  // namespace ycsbt
