#include "common/properties.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/property_registry.h"

namespace ycsbt {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

void Properties::Set(std::string key, std::string value) {
  map_[std::move(key)] = std::move(value);
}

Status Properties::LoadFromString(std::string_view text) {
  size_t pos = 0;
  int lineno = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line =
        nl == std::string_view::npos ? text.substr(pos) : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    line = Trim(line);
    if (line.empty() || line.front() == '#' || line.front() == '!') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("properties line " + std::to_string(lineno) +
                                     " has no '=': " + std::string(line));
    }
    Set(std::string(Trim(line.substr(0, eq))), std::string(Trim(line.substr(eq + 1))));
  }
  return Status::OK();
}

Status Properties::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open properties file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  // Parse into a scratch set first so the unknown-key check sees exactly
  // this file's keys, not everything merged so far.
  Properties loaded;
  Status s = loaded.LoadFromString(buf.str());
  if (!s.ok()) return s;
  std::vector<std::string> unknown = UnknownPropertyKeys(loaded);
  if (!unknown.empty()) {
    std::string joined;
    for (const std::string& key : unknown) {
      if (!joined.empty()) joined += ", ";
      joined += key;
    }
    YCSBT_WARN("unknown propert" << (unknown.size() == 1 ? "y" : "ies")
                                 << " in " << path << ": " << joined);
  }
  Merge(loaded);
  return Status::OK();
}

bool Properties::Contains(const std::string& key) const {
  return map_.find(key) != map_.end();
}

std::string Properties::Get(const std::string& key, const std::string& def) const {
  auto it = map_.find(key);
  return it == map_.end() ? def : it->second;
}

int64_t Properties::GetInt(const std::string& key, int64_t def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return def;
  return v;
}

uint64_t Properties::GetUint(const std::string& key, uint64_t def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return def;
  return v;
}

double Properties::GetDouble(const std::string& key, double def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return def;
  return v;
}

bool Properties::GetBool(const std::string& key, bool def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  std::string v = ToLower(Trim(it->second));
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return def;
}

Status Properties::CheckedGetInt(const std::string& key, int64_t def,
                                 int64_t* out) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    *out = def;
    return Status::OK();
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("property '" + key +
                                   "' is not an integer: " + it->second);
  }
  *out = v;
  return Status::OK();
}

std::vector<std::string> Properties::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(map_.size());
  for (const auto& [k, v] : map_) keys.push_back(k);
  return keys;
}

void Properties::Merge(const Properties& other) {
  for (const auto& [k, v] : other.map_) map_[k] = v;
}

std::string Properties::ToString() const {
  std::string out;
  for (const auto& [k, v] : map_) {
    out += k;
    out += '=';
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace ycsbt
