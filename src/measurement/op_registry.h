#ifndef YCSBT_MEASUREMENT_OP_REGISTRY_H_
#define YCSBT_MEASUREMENT_OP_REGISTRY_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ycsbt {

/// Dense handle for an interned operation-series name.
///
/// Ids are assigned contiguously from zero in registration order, so both the
/// shared series store and the per-thread sinks can index plain vectors by
/// `OpId` — no string hashing or map lookup on the measurement hot path.
struct OpId {
  static constexpr uint32_t kInvalid = UINT32_MAX;

  uint32_t index = kInvalid;

  bool valid() const { return index != kInvalid; }
  bool operator==(const OpId& other) const { return index == other.index; }
};

/// Interns operation-series names ("READ", "COMMIT", "TX-UPDATE", ...) to
/// dense `OpId`s.
///
/// Registration happens at setup time — `MeasuredDB` resolves its handles
/// once per client, and the runner interns each `TX-<OP>` series the first
/// time a workload reports that op — so `Intern` may take an exclusive lock
/// without ever appearing on the per-sample path.  Lookups (`Find`, `Name`)
/// take a shared lock and are only used by snapshot/compat code.
class OpRegistry {
 public:
  OpRegistry() = default;
  OpRegistry(const OpRegistry&) = delete;
  OpRegistry& operator=(const OpRegistry&) = delete;

  /// Returns the id for `name`, registering it on first sight.
  OpId Intern(const std::string& name) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = index_.find(name);
      if (it != index_.end()) return OpId{it->second};
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] =
        index_.emplace(name, static_cast<uint32_t>(names_.size()));
    if (inserted) names_.push_back(name);
    return OpId{it->second};
  }

  /// Id of an already-registered name; `OpId::kInvalid` if absent.
  OpId Find(const std::string& name) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    return it == index_.end() ? OpId{} : OpId{it->second};
  }

  /// Name of a registered id (by value: the backing vector may grow
  /// concurrently with other registrations).
  std::string Name(OpId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return id.index < names_.size() ? names_[id.index] : std::string();
  }

  /// Number of registered ops; ids [0, size) are valid.
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
};

}  // namespace ycsbt

#endif  // YCSBT_MEASUREMENT_OP_REGISTRY_H_
