#include "measurement/measurements.h"

#include <algorithm>

namespace ycsbt {

void OpSeries::Measure(int64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Add(latency_us);
}

void OpSeries::ReportStatus(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  ++return_counts_[status.CodeName()];
}

OpStats OpSeries::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats s;
  s.name = name_;
  s.operations = histogram_.Count();
  s.average_latency_us = histogram_.Mean();
  s.min_latency_us = histogram_.Min();
  s.max_latency_us = histogram_.Max();
  s.p50_latency_us = histogram_.ValueAtQuantile(0.50);
  s.p95_latency_us = histogram_.ValueAtQuantile(0.95);
  s.p99_latency_us = histogram_.ValueAtQuantile(0.99);
  s.return_counts = return_counts_;
  return s;
}

OpSeries* Measurements::GetOrCreate(const std::string& op) {
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = series_.find(op);
    if (it != series_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  auto& slot = series_[op];
  if (!slot) slot = std::make_unique<OpSeries>(op);
  return slot.get();
}

void Measurements::Measure(const std::string& op, int64_t latency_us) {
  GetOrCreate(op)->Measure(latency_us);
}

void Measurements::ReportStatus(const std::string& op, const Status& status) {
  GetOrCreate(op)->ReportStatus(status);
}

std::vector<OpStats> Measurements::Snapshot() const {
  std::vector<OpStats> out;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    out.reserve(series_.size());
    for (const auto& [name, series] : series_) out.push_back(series->Snapshot());
  }
  std::sort(out.begin(), out.end(),
            [](const OpStats& a, const OpStats& b) { return a.name < b.name; });
  return out;
}

OpStats Measurements::SnapshotOp(const std::string& op) const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  auto it = series_.find(op);
  if (it == series_.end()) {
    OpStats s;
    s.name = op;
    return s;
  }
  return it->second->Snapshot();
}

uint64_t Measurements::TotalOperations(const std::vector<std::string>& ops) const {
  uint64_t total = 0;
  for (const auto& op : ops) total += SnapshotOp(op).operations;
  return total;
}

void Measurements::Reset() {
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  series_.clear();
}

}  // namespace ycsbt
