#include "measurement/measurements.h"

#include <algorithm>

namespace ycsbt {

void ThreadSink::Flush() {
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    bool has_returns =
        std::any_of(slot.returns.begin(), slot.returns.end(),
                    [](uint64_t c) { return c != 0; });
    if (slot.histogram.Count() == 0 && !has_returns) continue;
    parent_->MergeSlot(OpId{static_cast<uint32_t>(i)}, slot);
    slot.histogram.Reset();
    slot.returns.fill(0);
  }
}

ThreadSink* Measurements::CreateSink() {
  std::lock_guard<std::mutex> lock(sinks_mu_);
  sinks_.emplace_back(new ThreadSink(this));
  return sinks_.back().get();
}

Measurements::Series* Measurements::SeriesFor(OpId op) {
  {
    std::shared_lock<std::shared_mutex> lock(series_mu_);
    if (op.index < series_.size()) return &series_[op.index];
  }
  std::unique_lock<std::shared_mutex> lock(series_mu_);
  while (series_.size() <= op.index) series_.emplace_back();
  return &series_[op.index];
}

const Measurements::Series* Measurements::SeriesForIfPresent(OpId op) const {
  std::shared_lock<std::shared_mutex> lock(series_mu_);
  return op.index < series_.size() ? &series_[op.index] : nullptr;
}

void Measurements::MergeSlot(OpId op, const ThreadSink::Slot& slot) {
  Series* cell = SeriesFor(op);
  std::lock_guard<std::mutex> lock(cell->mu);
  cell->histogram.Merge(slot.histogram);
  for (size_t c = 0; c < slot.returns.size(); ++c) {
    cell->returns[c] += slot.returns[c];
  }
}

void Measurements::Record(OpId op, int64_t latency_us, Status::Code code) {
  Series* cell = SeriesFor(op);
  std::lock_guard<std::mutex> lock(cell->mu);
  cell->histogram.Add(latency_us);
  ++cell->returns[static_cast<size_t>(code)];
}

void Measurements::RecordMany(OpId op, int64_t latency_us, Status::Code code,
                              uint64_t count) {
  if (count == 0) return;
  Series* cell = SeriesFor(op);
  std::lock_guard<std::mutex> lock(cell->mu);
  for (uint64_t i = 0; i < count; ++i) cell->histogram.Add(latency_us);
  cell->returns[static_cast<size_t>(code)] += count;
}

void Measurements::MergeHistogram(OpId op, const Histogram& histogram,
                                  Status::Code code) {
  if (histogram.Count() == 0) return;
  Series* cell = SeriesFor(op);
  std::lock_guard<std::mutex> lock(cell->mu);
  cell->histogram.Merge(histogram);
  cell->returns[static_cast<size_t>(code)] += histogram.Count();
}

void Measurements::Measure(OpId op, int64_t latency_us) {
  Series* cell = SeriesFor(op);
  std::lock_guard<std::mutex> lock(cell->mu);
  cell->histogram.Add(latency_us);
}

void Measurements::ReportStatus(OpId op, Status::Code code) {
  Series* cell = SeriesFor(op);
  std::lock_guard<std::mutex> lock(cell->mu);
  ++cell->returns[static_cast<size_t>(code)];
}

void Measurements::RecordInterval(const IntervalSample& sample) {
  std::lock_guard<std::mutex> lock(intervals_mu_);
  intervals_.push_back(sample);
}

std::vector<IntervalSample> Measurements::Intervals() const {
  std::lock_guard<std::mutex> lock(intervals_mu_);
  return intervals_;
}

OpStats Measurements::SnapshotCell(const Series& cell, std::string name) const {
  std::lock_guard<std::mutex> lock(cell.mu);
  OpStats s;
  s.name = std::move(name);
  s.operations = cell.histogram.Count();
  s.average_latency_us = cell.histogram.Mean();
  s.min_latency_us = cell.histogram.Min();
  s.max_latency_us = cell.histogram.Max();
  s.p50_latency_us = cell.histogram.ValueAtQuantile(0.50);
  s.p95_latency_us = cell.histogram.ValueAtQuantile(0.95);
  s.p99_latency_us = cell.histogram.ValueAtQuantile(0.99);
  s.p999_latency_us = cell.histogram.ValueAtQuantile(0.999);
  for (size_t c = 0; c < cell.returns.size(); ++c) {
    if (cell.returns[c] == 0) continue;
    s.return_counts[Status::CodeName(static_cast<Status::Code>(c))] =
        cell.returns[c];
  }
  return s;
}

std::vector<OpStats> Measurements::Snapshot() const {
  std::vector<OpStats> out;
  size_t n;
  {
    std::shared_lock<std::shared_mutex> lock(series_mu_);
    n = series_.size();
  }
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    OpId op{static_cast<uint32_t>(i)};
    const Series* cell = SeriesForIfPresent(op);
    if (cell == nullptr) continue;
    OpStats s = SnapshotCell(*cell, registry_.Name(op));
    // Registered-but-never-recorded ops (a `MeasuredDB` interns all its
    // handles up front) are omitted, matching the seed's created-on-first-
    // sample behaviour.
    if (s.operations == 0 && s.return_counts.empty()) continue;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const OpStats& a, const OpStats& b) { return a.name < b.name; });
  return out;
}

OpStats Measurements::SnapshotOp(const std::string& op) const {
  OpId id = registry_.Find(op);
  if (!id.valid()) {
    OpStats s;
    s.name = op;
    return s;
  }
  return SnapshotOp(id);
}

OpStats Measurements::SnapshotOp(OpId op) const {
  std::string name = registry_.Name(op);
  const Series* cell = SeriesForIfPresent(op);
  if (cell == nullptr) {
    OpStats s;
    s.name = std::move(name);
    return s;
  }
  return SnapshotCell(*cell, std::move(name));
}

uint64_t Measurements::TotalOperations(const std::vector<std::string>& ops) const {
  uint64_t total = 0;
  for (const auto& op : ops) total += SnapshotOp(op).operations;
  return total;
}

void Measurements::Reset() {
  std::lock_guard<std::mutex> sinks_lock(sinks_mu_);
  std::unique_lock<std::shared_mutex> series_lock(series_mu_);
  std::lock_guard<std::mutex> intervals_lock(intervals_mu_);
  sinks_.clear();
  series_.clear();
  intervals_.clear();
}

}  // namespace ycsbt
