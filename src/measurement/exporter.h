#ifndef YCSBT_MEASUREMENT_EXPORTER_H_
#define YCSBT_MEASUREMENT_EXPORTER_H_

#include <string>
#include <vector>

#include "measurement/measurements.h"

namespace ycsbt {

/// Run-level figures printed ahead of the per-operation series.
///
/// `extra` carries workload-specific validation lines; the Closed Economy
/// Workload fills it with `TOTAL CASH`, `COUNTED CASH`, `ACTUAL OPERATIONS`
/// and `ANOMALY SCORE`, matching the paper's Listing 3.
struct RunSummary {
  double runtime_ms = 0.0;
  double throughput_ops_sec = 0.0;
  uint64_t operations = 0;
  bool has_validation = false;
  bool validation_passed = true;
  /// Ordered key/value lines emitted before [OVERALL].
  std::vector<std::pair<std::string, std::string>> extra;
  /// Per-window progress trajectory from the status thread (empty when the
  /// run had no status interval); rendered as `[INTERVAL]` lines / an
  /// `intervals` array after the overall figures.
  std::vector<IntervalSample> intervals;
  /// True for open-loop (arrival-scheduled) runs: the exporters then extend
  /// every `[INTERVAL]` line with the scheduler-lag / backlog / drop columns.
  /// Closed-loop output is byte-identical to what it always was.
  bool open_loop = false;
};

/// Renders measurements in the YCSB text format of the paper's Listing 3:
///
///   [TOTAL CASH], 1000000
///   [ANOMALY SCORE], 2.9E-5
///   [OVERALL], RunTime(ms), 124619.0
///   [OVERALL], Throughput(ops/sec), 8024.45
///   [INTERVAL], EndTime(s), Operations, Throughput(ops/sec), AverageLatency(us)
///   [INTERVAL], 1.0, 8123, 8123.0, 117.2
///   [UPDATE], Operations, 200206
///   [UPDATE], AverageLatency(us), 1536.46
///   ...
class TextExporter {
 public:
  static std::string Export(const RunSummary& summary,
                            const std::vector<OpStats>& ops);
};

/// Renders the same data as a single JSON object (machine-readable runs for
/// the bench harness and plotting scripts).
class JsonExporter {
 public:
  static std::string Export(const RunSummary& summary,
                            const std::vector<OpStats>& ops);
};

}  // namespace ycsbt

#endif  // YCSBT_MEASUREMENT_EXPORTER_H_
