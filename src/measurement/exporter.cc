#include "measurement/exporter.h"

#include <cstdio>
#include <sstream>

namespace ycsbt {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string TextExporter::Export(const RunSummary& summary,
                                 const std::vector<OpStats>& ops) {
  std::ostringstream out;
  if (summary.has_validation) {
    out << (summary.validation_passed ? "Database validation passed"
                                      : "Validation failed")
        << "\n";
  }
  for (const auto& [key, value] : summary.extra) {
    out << "[" << key << "], " << value << "\n";
  }
  if (summary.has_validation && !summary.validation_passed) {
    out << "Database validation failed\n";
  }
  out << "[OVERALL], RunTime(ms), " << FormatDouble(summary.runtime_ms) << "\n";
  out << "[OVERALL], Throughput(ops/sec), "
      << FormatDouble(summary.throughput_ops_sec) << "\n";
  if (!summary.intervals.empty()) {
    out << "[INTERVAL], EndTime(s), Operations, Throughput(ops/sec), "
           "AverageLatency(us)";
    if (summary.open_loop) out << ", SchedLag(us), Backlog, ArrivalDrops";
    out << "\n";
    for (const auto& w : summary.intervals) {
      out << "[INTERVAL], " << FormatDouble(w.end_seconds) << ", " << w.operations
          << ", " << FormatDouble(w.ops_per_sec) << ", "
          << FormatDouble(w.avg_latency_us);
      if (summary.open_loop) {
        out << ", " << FormatDouble(w.sched_lag_avg_us) << ", " << w.backlog
            << ", " << w.arrival_drops;
      }
      out << "\n";
    }
  }
  for (const auto& op : ops) {
    if (op.operations == 0) continue;
    out << "[" << op.name << "], Operations, " << op.operations << "\n";
    out << "[" << op.name << "], AverageLatency(us), "
        << FormatDouble(op.average_latency_us) << "\n";
    out << "[" << op.name << "], MinLatency(us), " << op.min_latency_us << "\n";
    out << "[" << op.name << "], MaxLatency(us), " << op.max_latency_us << "\n";
    out << "[" << op.name << "], 50thPercentileLatency(us), " << op.p50_latency_us
        << "\n";
    out << "[" << op.name << "], 95thPercentileLatency(us), " << op.p95_latency_us
        << "\n";
    out << "[" << op.name << "], 99thPercentileLatency(us), " << op.p99_latency_us
        << "\n";
    out << "[" << op.name << "], 99.9thPercentileLatency(us), "
        << op.p999_latency_us << "\n";
    for (const auto& [code, count] : op.return_counts) {
      out << "[" << op.name << "], Return=" << code << ", " << count << "\n";
    }
  }
  return out.str();
}

std::string JsonExporter::Export(const RunSummary& summary,
                                 const std::vector<OpStats>& ops) {
  std::ostringstream out;
  out << "{";
  out << "\"runtime_ms\":" << FormatDouble(summary.runtime_ms) << ",";
  out << "\"throughput_ops_sec\":" << FormatDouble(summary.throughput_ops_sec)
      << ",";
  out << "\"operations\":" << summary.operations << ",";
  if (summary.has_validation) {
    out << "\"validation_passed\":" << (summary.validation_passed ? "true" : "false")
        << ",";
  }
  if (!summary.extra.empty()) {
    out << "\"extra\":{";
    bool first = true;
    for (const auto& [key, value] : summary.extra) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
    }
    out << "},";
  }
  if (!summary.intervals.empty()) {
    out << "\"intervals\":[";
    bool first_window = true;
    for (const auto& w : summary.intervals) {
      if (!first_window) out << ",";
      first_window = false;
      out << "{\"end_s\":" << FormatDouble(w.end_seconds)
          << ",\"ops\":" << w.operations
          << ",\"ops_per_sec\":" << FormatDouble(w.ops_per_sec)
          << ",\"avg_us\":" << FormatDouble(w.avg_latency_us);
      if (summary.open_loop) {
        out << ",\"sched_lag_us\":" << FormatDouble(w.sched_lag_avg_us)
            << ",\"backlog\":" << w.backlog
            << ",\"arrival_drops\":" << w.arrival_drops;
      }
      out << "}";
    }
    out << "],";
  }
  out << "\"ops\":[";
  bool first_op = true;
  for (const auto& op : ops) {
    if (op.operations == 0) continue;
    if (!first_op) out << ",";
    first_op = false;
    out << "{\"name\":\"" << JsonEscape(op.name) << "\",";
    out << "\"operations\":" << op.operations << ",";
    out << "\"avg_us\":" << FormatDouble(op.average_latency_us) << ",";
    out << "\"min_us\":" << op.min_latency_us << ",";
    out << "\"max_us\":" << op.max_latency_us << ",";
    out << "\"p50_us\":" << op.p50_latency_us << ",";
    out << "\"p95_us\":" << op.p95_latency_us << ",";
    out << "\"p99_us\":" << op.p99_latency_us << ",";
    out << "\"p999_us\":" << op.p999_latency_us << ",";
    out << "\"returns\":{";
    bool first_code = true;
    for (const auto& [code, count] : op.return_counts) {
      if (!first_code) out << ",";
      first_code = false;
      out << "\"" << JsonEscape(code) << "\":" << count;
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace ycsbt
