#ifndef YCSBT_MEASUREMENT_MEASUREMENTS_H_
#define YCSBT_MEASUREMENT_MEASUREMENTS_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "measurement/op_registry.h"

namespace ycsbt {

/// Snapshot of one operation series, as consumed by exporters and tests.
struct OpStats {
  std::string name;
  uint64_t operations = 0;
  double average_latency_us = 0.0;
  int64_t min_latency_us = 0;
  int64_t max_latency_us = 0;
  int64_t p50_latency_us = 0;
  int64_t p95_latency_us = 0;
  int64_t p99_latency_us = 0;
  int64_t p999_latency_us = 0;
  /// Count of completions per status code name ("OK", "NotFound", ...);
  /// the analogue of YCSB's `Return=<code>` lines.
  std::map<std::string, uint64_t> return_counts;
};

/// One window of the status thread's progress time series: what the run
/// looked like between the previous sample and `end_seconds`.
struct IntervalSample {
  double end_seconds = 0.0;      ///< elapsed run time at the window's end
  uint64_t operations = 0;       ///< transactions completed in this window
  double ops_per_sec = 0.0;      ///< window throughput
  double avg_latency_us = 0.0;   ///< mean whole-transaction latency; 0 if idle

  // Open-loop arrival trajectory (all zero in closed-loop runs; rendered by
  // the exporters only when the run was open-loop).
  double sched_lag_avg_us = 0.0; ///< mean intended-vs-actual start lag
  uint64_t backlog = 0;          ///< pending arrivals at the window's end
  uint64_t arrival_drops = 0;    ///< arrivals dropped over a full backlog
};

class Measurements;

/// Unsynchronised per-thread accumulator: plain histograms and dense
/// return-code counters indexed by `OpId`, owned by exactly one client
/// thread.  Recording a sample touches no lock and allocates nothing; the
/// owner drains everything into the shared `Measurements` with `Flush()` at
/// its merge points (end of run, or whenever it likes).
///
/// Created via `Measurements::CreateSink()`, which registers the sink with
/// (and transfers ownership to) the parent; the sink stays valid until the
/// parent is reset or destroyed.  Only the owning thread may call the
/// recording methods and `Flush()`.
class ThreadSink {
 public:
  ThreadSink(const ThreadSink&) = delete;
  ThreadSink& operator=(const ThreadSink&) = delete;

  /// Records one completed operation: its latency and its return code.
  void Record(OpId op, int64_t latency_us, Status::Code code) {
    Slot& slot = SlotFor(op);
    slot.histogram.Add(latency_us);
    ++slot.returns[static_cast<size_t>(code)];
  }

  /// Records a latency sample only.
  void Measure(OpId op, int64_t latency_us) {
    SlotFor(op).histogram.Add(latency_us);
  }

  /// Records a return code only.
  void ReportStatus(OpId op, Status::Code code) {
    ++SlotFor(op).returns[static_cast<size_t>(code)];
  }

  /// Merges all locally accumulated samples into the parent `Measurements`
  /// and resets the local accumulators.  Owner thread only; may be called
  /// repeatedly.
  void Flush();

 private:
  friend class Measurements;

  struct Slot {
    Histogram histogram;
    std::array<uint64_t, kStatusCodeCount> returns{};
  };

  explicit ThreadSink(Measurements* parent) : parent_(parent) {}

  Slot& SlotFor(OpId op) {
    if (op.index >= slots_.size()) slots_.resize(op.index + 1);
    return slots_[op.index];
  }

  Measurements* parent_;
  std::vector<Slot> slots_;
};

/// Registry of all operation series produced by a benchmark run.
///
/// This is the measurement half of the YCSB+T architecture (paper Fig 1):
/// the `MeasuredDB` wrapper reports a latency sample and a return code for
/// every CRUD/scan call and for each `START`/`COMMIT`/`ABORT`, and the client
/// threads report whole-transaction `TX-<OP>` samples — giving Tier 5 its
/// transactional-overhead data.
///
/// Two recording paths exist:
///  - The hot path: clients intern their op names to `OpId`s once at setup
///    (`RegisterOp`), obtain a `ThreadSink` (`CreateSink`), and record
///    lock-free into thread-local state that is merged here only at flush
///    points.  This is what `WorkloadRunner` and `MeasuredDB` use, so client
///    threads never serialise through the measurement layer mid-run.
///  - A string-keyed compatibility shim (`Measure`/`ReportStatus` by name)
///    that interns per call and records into the shared series under its
///    mutex — the seed API, kept for tests and one-off callers.
///
/// Snapshots observe everything flushed (or recorded via the shim) so far;
/// live per-window progress comes from the runner's interval counters, which
/// feed the `IntervalSample` time series stored here.
///
/// One instance per run (not a process-wide singleton, unlike YCSB) so tests
/// and multi-run benches can measure in isolation.
class Measurements {
 public:
  Measurements() = default;
  Measurements(const Measurements&) = delete;
  Measurements& operator=(const Measurements&) = delete;

  // --- setup-time interning ---

  /// Interns `op`, returning its dense id (idempotent).
  OpId RegisterOp(const std::string& op) { return registry_.Intern(op); }

  /// Name of a registered op id ("" if invalid).
  std::string OpName(OpId op) const { return registry_.Name(op); }

  /// Number of registered op series.
  size_t op_count() const { return registry_.size(); }

  // --- per-thread sinks (the lock-free hot path) ---

  /// Creates a sink owned by this registry; the calling thread becomes its
  /// owner.  The pointer stays valid until `Reset()` or destruction.
  ThreadSink* CreateSink();

  // --- interned shared-series path (setup/compat; locks per sample) ---

  /// Records one completed operation into the shared series.
  void Record(OpId op, int64_t latency_us, Status::Code code);

  /// Records `count` identical completions in one locked pass — how derived
  /// counters (recovery roll-forwards, watchdog stalls) enter the series
  /// pipeline as a batch after the fact.
  void RecordMany(OpId op, int64_t latency_us, Status::Code code, uint64_t count);

  /// Folds a subsystem-owned histogram into `op`'s series in one locked pass,
  /// counting its samples under `code` — how aggregates accumulated outside
  /// the measurement layer (the WAL's sync-latency and batch-size stats)
  /// enter the exporter pipeline.  No-op when `histogram` is empty.
  void MergeHistogram(OpId op, const Histogram& histogram, Status::Code code);

  /// Records one latency sample for `op`.
  void Measure(OpId op, int64_t latency_us);

  /// Records the outcome code for one completed `op`.
  void ReportStatus(OpId op, Status::Code code);

  // --- string-keyed compatibility shims (the seed API) ---

  void Measure(const std::string& op, int64_t latency_us) {
    Measure(RegisterOp(op), latency_us);
  }

  void ReportStatus(const std::string& op, const Status& status) {
    ReportStatus(RegisterOp(op), status.code());
  }

  // --- interval time series (fed by the runner's status thread) ---

  /// Appends one progress window to the run's time series.
  void RecordInterval(const IntervalSample& sample);

  /// The per-window time series recorded so far.
  std::vector<IntervalSample> Intervals() const;

  // --- snapshots ---

  /// Snapshot of every non-empty series, sorted by op name.  Reflects all
  /// flushed sinks and shared-series records; samples still buffered in an
  /// unflushed `ThreadSink` are not visible yet.
  std::vector<OpStats> Snapshot() const;

  /// Snapshot of a single series; zeroed stats if the op never ran.
  OpStats SnapshotOp(const std::string& op) const;
  OpStats SnapshotOp(OpId op) const;

  /// Sum of `operations` across series whose name matches exactly one of the
  /// workload-level ops (helper for computing overall counts in tests).
  uint64_t TotalOperations(const std::vector<std::string>& ops) const;

  /// Drops all recorded series, sinks and intervals.  Invalidates every
  /// pointer returned by `CreateSink`; callers must not reset while client
  /// threads are still recording.
  void Reset();

 private:
  friend class ThreadSink;

  /// One shared series cell, merged into under its own mutex.
  struct Series {
    mutable std::mutex mu;
    Histogram histogram;
    std::array<uint64_t, kStatusCodeCount> returns{};
  };

  /// Cell for `op`, growing the dense store on demand.  The returned pointer
  /// is stable (deque storage).
  Series* SeriesFor(OpId op);
  const Series* SeriesForIfPresent(OpId op) const;

  void MergeSlot(OpId op, const ThreadSink::Slot& slot);

  OpStats SnapshotCell(const Series& cell, std::string name) const;

  OpRegistry registry_;

  /// Guards the deque's *structure* (growth); each element has its own lock.
  mutable std::shared_mutex series_mu_;
  std::deque<Series> series_;  // dense by OpId; deque keeps elements stable

  std::mutex sinks_mu_;
  std::vector<std::unique_ptr<ThreadSink>> sinks_;

  mutable std::mutex intervals_mu_;
  std::vector<IntervalSample> intervals_;
};

}  // namespace ycsbt

#endif  // YCSBT_MEASUREMENT_MEASUREMENTS_H_
