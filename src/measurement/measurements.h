#ifndef YCSBT_MEASUREMENT_MEASUREMENTS_H_
#define YCSBT_MEASUREMENT_MEASUREMENTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"

namespace ycsbt {

/// Snapshot of one operation series, as consumed by exporters and tests.
struct OpStats {
  std::string name;
  uint64_t operations = 0;
  double average_latency_us = 0.0;
  int64_t min_latency_us = 0;
  int64_t max_latency_us = 0;
  int64_t p50_latency_us = 0;
  int64_t p95_latency_us = 0;
  int64_t p99_latency_us = 0;
  /// Count of completions per status code name ("OK", "NotFound", ...);
  /// the analogue of YCSB's `Return=<code>` lines.
  std::map<std::string, uint64_t> return_counts;
};

/// One measured operation series: a latency histogram plus return-code
/// counters.  Thread-safe.
class OpSeries {
 public:
  explicit OpSeries(std::string name) : name_(std::move(name)) {}

  void Measure(int64_t latency_us);
  void ReportStatus(const Status& status);

  OpStats Snapshot() const;
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  mutable std::mutex mu_;
  Histogram histogram_;
  std::map<std::string, uint64_t> return_counts_;
};

/// Registry of all operation series produced by a benchmark run.
///
/// This is the measurement half of the YCSB+T architecture (paper Fig 1):
/// the `MeasuredDB` wrapper reports a latency sample and a return code for
/// every CRUD/scan call and for each `START`/`COMMIT`/`ABORT`, and the client
/// threads report whole-transaction `TX-<OP>` samples — giving Tier 5 its
/// transactional-overhead data.
///
/// One instance per run (not a process-wide singleton, unlike YCSB) so tests
/// and multi-run benches can measure in isolation.
class Measurements {
 public:
  Measurements() = default;
  Measurements(const Measurements&) = delete;
  Measurements& operator=(const Measurements&) = delete;

  /// Records one latency sample for `op`.
  void Measure(const std::string& op, int64_t latency_us);

  /// Records the outcome status for one completed `op`.
  void ReportStatus(const std::string& op, const Status& status);

  /// Snapshot of every series, sorted by op name.
  std::vector<OpStats> Snapshot() const;

  /// Snapshot of a single series; zeroed stats if the op never ran.
  OpStats SnapshotOp(const std::string& op) const;

  /// Sum of `operations` across series whose name matches exactly one of the
  /// workload-level ops (helper for computing overall counts in tests).
  uint64_t TotalOperations(const std::vector<std::string>& ops) const;

  /// Drops all recorded series.
  void Reset();

 private:
  OpSeries* GetOrCreate(const std::string& op);

  mutable std::shared_mutex map_mu_;
  std::unordered_map<std::string, std::unique_ptr<OpSeries>> series_;
};

}  // namespace ycsbt

#endif  // YCSBT_MEASUREMENT_MEASUREMENTS_H_
