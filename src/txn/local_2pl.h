#ifndef YCSBT_TXN_LOCAL_2PL_H_
#define YCSBT_TXN_LOCAL_2PL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "txn/timestamp.h"
#include "txn/transaction.h"

namespace ycsbt {
namespace txn {

/// Options of the embedded 2PL engine.
struct Local2PLOptions {
  /// How long a lock request waits before declaring deadlock-by-timeout.
  uint64_t lock_timeout_us = 50'000;
};

/// Table of per-key shared/exclusive locks with waiting and timeout.
///
/// Deadlocks are resolved by timeout (a waiter that exceeds
/// `lock_timeout_us` gives up with Busy and its transaction aborts) — the
/// classic embedded-engine answer, contrasting with the client-coordinated
/// library's *ordered locking*, which cannot deadlock in the first place.
class LockManager {
 public:
  explicit LockManager(uint64_t timeout_us) : timeout_us_(timeout_us) {}

  /// Acquires a shared lock for `txn`; Busy on timeout.
  Status AcquireShared(uint64_t txn, const std::string& key);

  /// Acquires (or upgrades to) an exclusive lock for `txn`; Busy on timeout.
  Status AcquireExclusive(uint64_t txn, const std::string& key);

  /// Releases every lock `txn` holds (commit/abort).
  void ReleaseAll(uint64_t txn, const std::set<std::string>& keys);

 private:
  struct Entry {
    std::set<uint64_t> sharers;
    uint64_t exclusive_owner = 0;  // 0 = none
    int waiters = 0;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Entry> table_;
  const uint64_t timeout_us_;
};

/// An embedded transactional key-value store using strict two-phase locking
/// with immediate writes and an undo log — the "transactions implemented
/// inside the data store" baseline of §II-B (Spanner-style, minus the
/// distribution).  Serializable for point accesses; scans read committed
/// current values without range locks (no phantom protection), which is
/// sufficient for the post-quiesce Tier-6 validation scan.
class Local2PLStore : public TransactionalKV {
 public:
  explicit Local2PLStore(std::shared_ptr<kv::Store> base,
                         Local2PLOptions options = {});

  std::unique_ptr<Transaction> Begin() override;

  Status LoadPut(const std::string& key, std::string_view value) override;
  Status ReadCommitted(const std::string& key, std::string* value) override;
  Status ScanCommitted(const std::string& start_key, size_t limit,
                       std::vector<TxScanEntry>* out) override;

  TxnStats stats() const;

 private:
  friend class Local2PLTxn;

  std::shared_ptr<kv::Store> base_;
  Local2PLOptions options_;
  LockManager locks_;
  std::atomic<uint64_t> txn_counter_{1};

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> lock_busy_{0};
};

}  // namespace txn
}  // namespace ycsbt

#endif  // YCSBT_TXN_LOCAL_2PL_H_
