#ifndef YCSBT_TXN_CLIENT_TXN_STORE_H_
#define YCSBT_TXN_CLIENT_TXN_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "txn/record_codec.h"
#include "txn/timestamp.h"
#include "txn/transaction.h"

namespace ycsbt {
namespace txn {

/// One prefetched row of `ClientTxnStore::MultiLoadRecords`: the decoded
/// record (when `status` is OK) plus the etag it was read at.
struct LoadedRecord {
  Status status;
  TxRecord record;
  uint64_t etag = kv::kEtagAbsent;
};

/// The client-coordinated transaction library (the authors' system, paper
/// §II-B and ref [28]), reimplemented over any `kv::Store` that offers
/// conditional put.
///
/// Protocol summary:
///  - **Begin**: start_ts from the local timestamp source (HLC by default —
///    no central oracle, the library's headline difference from
///    Percolator/ReTSO).
///  - **Read**: fetch the record, pick the newest committed version with
///    commit_ts <= start_ts (stepping back to the previous version while a
///    newer commit is in flight).  A foreign lock past its lease is
///    *recovered*: the owner's transaction status record (TSR) decides
///    roll-forward (committed) vs roll-back (absent/aborted).
///  - **Write/Delete**: buffered locally until commit.
///  - **Commit**: (1) acquire write locks in global key order — ordered
///    locking makes deadlock impossible without a lock manager; each lock is
///    one conditional put that embeds the pending value; (2) conflict check:
///    any record committed after start_ts aborts us (first-committer-wins,
///    snapshot isolation); (3) the *commit point*: a must-not-exist
///    conditional put of the TSR with the commit timestamp; (4) roll every
///    locked record forward; (5) delete the TSR.
///  - A client crash between (3) and (5) is repaired by any later reader via
///    the TSR — the recovery path Tier-5/6 experiments rely on.
///
/// Race arbitration (the subtle parts, each regression-tested):
///  - *Undecided owners*: a lock whose TSR is absent is ambiguous (owner may
///    be slow, crashed, or already cleaned up).  Recovery and blocked readers
///    decide the outcome by planting an ABORTED status record with a
///    must-not-exist put; the TSR key is the single atomic arbiter between
///    them and the owner's commit point, so a transaction is always
///    all-or-nothing.
///  - *Lost deletes*: commits apply deletes physically, destroying version
///    information, so a write to a vanished key that this transaction had
///    READ as existing is treated as a first-committer-wins conflict
///    (recreating it would resurrect the deleted record).  A blind write to
///    a key the transaction never read keeps insert semantics.
///
/// Thread safety: the store object is shared by all client threads; each
/// `Transaction` belongs to one thread.
class ClientTxnStore : public TransactionalKV {
 public:
  /// @param base underlying store (local engine or simulated cloud store).
  /// @param ts_source timestamp source shared by this client process.
  ClientTxnStore(std::shared_ptr<kv::Store> base,
                 std::shared_ptr<TimestampSource> ts_source, TxnOptions options = {});

  std::unique_ptr<Transaction> Begin() override;

  Status LoadPut(const std::string& key, std::string_view value) override;

  /// Encodes `value` as the committed-record representation `LoadPut` would
  /// store (fresh commit timestamp, no lock) — the bulk-load hook: callers
  /// ingesting pre-encoded runs straight into the *base* store must wrap
  /// each value through this, or the MVCC decode on first read would fail.
  std::string EncodeLoadValue(std::string_view value);

  Status ReadCommitted(const std::string& key, std::string* value) override;
  Status ScanCommitted(const std::string& start_key, size_t limit,
                       std::vector<TxScanEntry>* out) override;

  /// Ordered scan of the versions visible at `snapshot_ts` (TSR keys are
  /// filtered out; in-flight pending writes are ignored).
  Status ScanSnapshot(const std::string& start_key, size_t limit,
                      uint64_t snapshot_ts, std::vector<TxScanEntry>* out);

  TxnStats stats() const;
  const TxnOptions& options() const { return options_; }
  kv::Store* base() const { return base_.get(); }

 private:
  friend class ClientTxn;

  /// Reads and decodes `key`'s record.  NotFound when the key is absent.
  Status LoadRecord(const std::string& key, TxRecord* record, uint64_t* etag);

  /// Batched `LoadRecord` over `keys` via one `kv::MultiGet` (fanned out by
  /// the store when an executor is attached).  Each row decodes
  /// independently: a missing or undecodable key is that row's status, never
  /// a batch failure.
  void MultiLoadRecords(const std::vector<std::string>& keys,
                        std::vector<LoadedRecord>* out);

  /// Repairs an expired foreign lock according to the owner's TSR.  On
  /// success `*record`/`*etag` hold the post-recovery state.  Returns Busy
  /// when the lock is fresh.
  Status RecoverLock(const std::string& key, TxRecord* record, uint64_t* etag);

  /// Resolves a locked record met by a scan: committed-TSR locks are viewed
  /// rolled forward (and physically recovered once the lease has expired),
  /// aborted/undecided locks keep their committed versions.  NotFound means
  /// the committed outcome deleted the record (skip it).
  Status ResolveLockedForScan(const std::string& key, TxRecord* record,
                              uint64_t* etag);

  std::string TsrKey(const std::string& txn_id) const {
    return options_.tsr_prefix + txn_id;
  }

  std::string TxnIdFor(uint64_t seq) const;

  std::shared_ptr<kv::Store> base_;
  std::shared_ptr<TimestampSource> ts_source_;
  TxnOptions options_;

  std::string client_id_;
  std::atomic<uint64_t> txn_counter_{0};

  // Stats.
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> conflicts_{0};
  std::atomic<uint64_t> lock_busy_{0};
  std::atomic<uint64_t> roll_forwards_{0};
  std::atomic<uint64_t> roll_backs_{0};
  std::atomic<uint64_t> validation_fails_{0};
  std::atomic<uint64_t> reader_aborts_{0};
  std::atomic<uint64_t> injected_crashes_{0};
  std::atomic<uint64_t> ambiguous_commits_{0};
};

}  // namespace txn
}  // namespace ycsbt

#endif  // YCSBT_TXN_CLIENT_TXN_STORE_H_
