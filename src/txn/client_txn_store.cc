#include "txn/client_txn_store.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/clock.h"
#include "common/latency_model.h"
#include "common/logging.h"
#include "common/op_context.h"
#include "common/retry_policy.h"
#include "common/rpc_executor.h"

namespace ycsbt {
namespace txn {

namespace {

/// Chooses the newest committed version of `record` with commit_ts <=
/// `snapshot_ts`.  Returns OK and fills `*value`/`*version_ts`, or NotFound
/// when no version is visible.
Status VisibleVersion(const TxRecord& record, uint64_t snapshot_ts,
                      std::string* value, uint64_t* version_ts) {
  if (record.commit_ts != 0 && record.commit_ts <= snapshot_ts) {
    if (value != nullptr) *value = record.value;
    if (version_ts != nullptr) *version_ts = record.commit_ts;
    return Status::OK();
  }
  if (record.has_prev && record.prev_commit_ts != 0 &&
      record.prev_commit_ts <= snapshot_ts) {
    if (value != nullptr) *value = record.prev_value;
    if (version_ts != nullptr) *version_ts = record.prev_commit_ts;
    return Status::OK();
  }
  return Status::NotFound("no version visible at snapshot");
}

bool LeaseExpired(const TxRecord& record, uint64_t lease_us) {
  return WallMicros() > record.lock_ts + lease_us;
}

}  // namespace

// ---------------------------------------------------------------------------
// ClientTxn
// ---------------------------------------------------------------------------

/// One in-flight transaction; see the protocol walkthrough on ClientTxnStore.
class ClientTxn : public Transaction {
 public:
  /// `seq` is the store-wide transaction number, used (with the configured
  /// seed) to give every transaction its own deterministic jitter stream.
  ClientTxn(ClientTxnStore* store, std::string id, uint64_t start_ts,
            uint64_t seq)
      : store_(store),
        id_(std::move(id)),
        start_ts_(start_ts),
        jitter_rng_(store->options_.seed ^
                    (0x9E3779B97F4A7C15ull * (seq + 1))) {}

  ~ClientTxn() override {
    if (state_ == State::kActive) Abort();
  }

  uint64_t start_ts() const override { return start_ts_; }

  Status Read(const std::string& key, std::string* value) override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    // Read-your-writes from the local buffer.
    auto wit = writes_.find(key);
    if (wit != writes_.end()) {
      if (wit->second.is_delete) return Status::NotFound(key);
      if (value != nullptr) *value = wit->second.value;
      return Status::OK();
    }

    TxRecord record;
    uint64_t etag = kv::kEtagAbsent;
    Status s = store_->LoadRecord(key, &record, &etag);
    return FinishRead(key, std::move(record), etag, std::move(s), value);
  }

  void MultiRead(const std::vector<std::string>& keys,
                 std::vector<TxReadResult>* results) override {
    results->clear();
    results->resize(keys.size());
    if (state_ != State::kActive) {
      for (auto& r : *results) r.status = Status::InvalidArgument("txn finished");
      return;
    }
    // Buffered writes answer locally; everything else is prefetched with one
    // batched read so the snapshot fetches' round trips overlap.
    std::vector<size_t> fetch_index;
    std::vector<std::string> fetch_keys;
    fetch_index.reserve(keys.size());
    fetch_keys.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      auto wit = writes_.find(keys[i]);
      if (wit != writes_.end()) {
        TxReadResult& r = (*results)[i];
        if (wit->second.is_delete) {
          r.status = Status::NotFound(keys[i]);
        } else {
          r.value = wit->second.value;
          r.status = Status::OK();
        }
        continue;
      }
      fetch_index.push_back(i);
      fetch_keys.push_back(keys[i]);
    }
    if (fetch_keys.empty()) return;
    if (!UseBatches(fetch_keys.size())) {
      for (size_t j = 0; j < fetch_keys.size(); ++j) {
        TxReadResult& r = (*results)[fetch_index[j]];
        r.status = Read(fetch_keys[j], &r.value);
      }
      return;
    }
    std::vector<LoadedRecord> loaded;
    store_->MultiLoadRecords(fetch_keys, &loaded);
    for (size_t j = 0; j < fetch_keys.size(); ++j) {
      // Lock resolution (TSR lookups, recovery) stays per-key on this
      // thread; the batch only prefetched the record fetches.
      TxReadResult& r = (*results)[fetch_index[j]];
      r.status = FinishRead(fetch_keys[j], std::move(loaded[j].record),
                            loaded[j].etag, std::move(loaded[j].status),
                            &r.value);
    }
  }

  Status Write(const std::string& key, std::string_view value) override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    writes_[key] = PendingWrite{std::string(value), /*is_delete=*/false};
    return Status::OK();
  }

  Status Delete(const std::string& key) override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    writes_[key] = PendingWrite{std::string(), /*is_delete=*/true};
    return Status::OK();
  }

  Status Scan(const std::string& start_key, size_t limit,
              std::vector<TxScanEntry>* out) override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    return store_->ScanSnapshot(start_key, limit, start_ts_, out);
  }

  Status Commit() override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    if (writes_.empty()) {
      // Read-only SI transaction: the snapshot is already consistent.
      state_ = State::kCommitted;
      store_->commits_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    Status s = AcquireLocks();
    if (!s.ok()) {
      ReleaseLocks();
      state_ = State::kAborted;
      store_->aborts_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }

    if (Crash(CrashPoint::kAfterLockPuts)) {
      // Simulated client death holding locks with no TSR: nothing is
      // released, so recovery must roll this transaction back.
      return CrashAbandonedUncommitted("after lock puts");
    }

    if (store_->options_.isolation == Isolation::kSerializable) {
      s = ValidateReads();
      if (!s.ok()) {
        store_->validation_fails_.fetch_add(1, std::memory_order_relaxed);
        ReleaseLocks();
        state_ = State::kAborted;
        store_->aborts_.fetch_add(1, std::memory_order_relaxed);
        return s;
      }
    }

    // Commit point: the TSR write.  Its success makes the transaction
    // durable even if this client dies before rolling anything forward.
    uint64_t commit_ts = store_->ts_source_->Next();
    TsrRecord tsr;
    tsr.state = TsrRecord::State::kCommitted;
    tsr.commit_ts = commit_ts;
    std::string tsr_key = store_->TsrKey(id_);
    s = store_->base_->ConditionalPut(tsr_key, EncodeTsr(tsr), kv::kEtagAbsent);
    if (!s.ok()) {
      bool committed_after_all = false;
      if (!s.IsConflict() && !s.IsLeadershipChange()) {
        // Ambiguous commit point: the reply was lost, so the TSR may or may
        // not be in the store.  The TSR key is the atomic arbiter — re-read
        // it until the outcome is known before touching any lock.  Exempt
        // from deadline/breaker fail-fast: cutting the settle loop short
        // abandons a possibly-committed transaction to recovery.
        // (Conflict and NotLeader are NOT ambiguous: a lost CAS means
        // another writer owns the key, and a mid-election gate rejects the
        // request before it can touch the store — the TSR definitively
        // never landed and the transaction may abort cleanly.)
        OpExemptScope settle_exempt;
        Status rs = SettleAmbiguousCommit(tsr_key, &committed_after_all);
        if (!rs.ok()) return rs;  // abandoned as crashed; recovery settles it
        store_->ambiguous_commits_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!committed_after_all) {
        // A blocked reader decided the race by planting an ABORTED status
        // record for us (or the write genuinely never landed): we may not
        // commit.  Undo the locks and clean up the planted TSR (all our
        // locks are cleared, so nobody needs it).
        ReleaseLocks();
        if (store_->options_.cleanup_tsr) {
          store_->base_->Delete(tsr_key);
        }
        state_ = State::kAborted;
        store_->aborts_.fetch_add(1, std::memory_order_relaxed);
        if (s.IsLeadershipChange()) {
          // Surface NotLeader itself: the retry loop classifies it as a
          // leadership change and waits out the election's redirect hint
          // instead of climbing the backoff ladder.
          return s;
        }
        return Status::Aborted("commit denied: " + s.ToString());
      }
    }

    // Past the commit point: the transaction is durably committed, and
    // everything below is cleanup (roll-forward, TSR delete).  Exempt from
    // deadline/breaker fail-fast — abandoning it would be *safe* (the TSR
    // arbitrates recovery) but turns every overloaded commit into recovery
    // churn for later readers, and hedging/fencing these mutations is
    // exactly what the resilience layer must never do to committed work.
    OpExemptScope cleanup_exempt;

    if (Crash(CrashPoint::kAfterTsrPut)) {
      // Died at the commit point: durably committed, nothing applied.
      return CrashAbandonedCommitted(commit_ts, /*roll_first=*/0);
    }
    if (Crash(CrashPoint::kMidRollForward)) {
      // Died half-way through applying: the partial-apply tear recovery
      // must finish.
      return CrashAbandonedCommitted(commit_ts, acquired_.size() / 2);
    }

    bool all_applied = RollForward(commit_ts);

    if (Crash(CrashPoint::kBeforeTsrDelete)) {
      // Everything applied but the TSR lingers; readers tolerate (and
      // eventually garbage-collect around) a committed TSR with no locks.
      store_->injected_crashes_.fetch_add(1, std::memory_order_relaxed);
      state_ = State::kCommitted;
      store_->commits_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    if (store_->options_.cleanup_tsr && all_applied) {
      // Best effort; recovery handles leftovers.  Deleting while a failed
      // roll-forward left a lock pending would be fatal, not cosmetic: the
      // TSR is the only proof that pending write committed, and without it
      // recovery would roll the committed write BACK.
      store_->base_->Delete(tsr_key);
    }
    state_ = State::kCommitted;
    store_->commits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Abort() override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    ReleaseLocks();
    state_ = State::kAborted;
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

 private:
  enum class State { kActive, kCommitted, kAborted };

  bool Crash(CrashPoint point) {
    CrashInjector* injector = store_->options_.crash_injector;
    return injector != nullptr && injector->ShouldCrash(point);
  }

  struct PendingWrite {
    std::string value;
    bool is_delete = false;
  };

  struct AcquiredLock {
    std::string key;
    uint64_t etag = 0;      // etag of the record *with our lock in place*
    TxRecord record;        // the locked record as written
  };

  /// Shared tail of `Read`/`MultiRead`: takes the freshly-loaded (or
  /// prefetched) record plus its load status and finishes the snapshot read
  /// — lock resolution, version selection, and `reads_` bookkeeping.
  Status FinishRead(const std::string& key, TxRecord record, uint64_t etag,
                    Status s, std::string* value) {
    if (s.IsNotFound()) {
      reads_[key] = 0;
      return s;
    }
    if (!s.ok()) return s;

    s = ResolveForRead(key, &record, &etag);
    if (s.IsNotFound()) {
      reads_[key] = 0;
      return s;
    }
    if (!s.ok()) return s;

    uint64_t version_ts = 0;
    std::string out;
    s = VisibleVersion(record, start_ts_, &out, &version_ts);
    if (s.IsNotFound()) {
      reads_[key] = 0;
      return s;
    }
    reads_[key] = version_ts;
    if (value != nullptr) *value = std::move(out);
    return Status::OK();
  }

  /// True when batched store ops should replace per-key loops: an enabled
  /// fan-out executor is configured and the batch is big enough to matter.
  /// With no executor every phase keeps the exact sequential seed behaviour.
  bool UseBatches(size_t items) const {
    const std::shared_ptr<RpcExecutor>& ex = store_->options_.executor;
    return ex != nullptr && ex->enabled() && items >= 2;
  }

  /// Bounded-politeness sleep before re-probing a busy lock.  Decorrelated
  /// jitter (when enabled) spreads contending clients out instead of letting
  /// a fixed delay synchronize them into convoys that re-collide on every
  /// probe; the per-transaction RNG keeps same-seed runs identical.
  void LockWaitSleep() {
    const TxnOptions& opt = store_->options_;
    uint64_t delay_us = opt.lock_wait_delay_us;
    if (opt.lock_wait_jitter && delay_us != 0) {
      delay_us = DecorrelatedJitterUs(jitter_rng_, opt.lock_wait_delay_us,
                                      opt.lock_wait_max_delay_us,
                                      &lock_wait_prev_us_);
    }
    if (delay_us != 0) SleepMicros(delay_us);
  }

  /// Resolves a foreign lock encountered by a read: consults the owner's TSR
  /// and recovers expired locks.  Afterwards `record`/`etag` reflect a state
  /// whose committed versions are safe to read at start_ts_.
  ///
  /// Subtlety: the record read and the TSR read are two operations, so an
  /// absent TSR is ambiguous — the owner may not have committed *yet*, or it
  /// may have committed, rolled forward and already cleaned its TSR up.  Two
  /// defences close the race: (1) on TSR-absent the record is re-read, which
  /// catches the committed-and-cleaned case (the lock is gone); (2) if the
  /// lock persists past the bounded wait, the reader *decides* the race by
  /// planting an ABORTED status record — the TSR key's must-not-exist write
  /// is the atomic arbiter, so either the owner already committed (our plant
  /// loses and we re-read the TSR) or the owner can never commit (its own
  /// TSR write will lose) and the old version is definitively correct.
  Status ResolveForRead(const std::string& key, TxRecord* record, uint64_t* etag) {
    const int max_attempts = store_->options_.lock_wait_retries;
    for (int attempt = 0; /* exits below */; ++attempt) {
      if (!record->Locked()) return Status::OK();

      // Has the owner already committed?  Then its pending write is live.
      std::string tsr_key = store_->TsrKey(record->lock_owner);
      std::string tsr_data;
      Status ts = store_->base_->Get(tsr_key, &tsr_data);
      if (ts.ok()) {
        TsrRecord tsr;
        Status ds = DecodeTsr(tsr_data, &tsr);
        if (!ds.ok()) return ds;
        if (tsr.state == TsrRecord::State::kCommitted) {
          if (LeaseExpired(*record, store_->options_.lock_lease_us)) {
            // The owner died after its commit point: repair the record in
            // the store on its behalf, then serve from the repaired state.
            Status rs = store_->RecoverLock(key, record, etag);
            if (rs.IsNotFound() || (!rs.ok() && !rs.IsBusy())) return rs;
            continue;
          }
          // Owner is alive and mid-roll-forward: apply the pending write to
          // our local view only.
          if (record->pending_delete) {
            return Status::NotFound(key);
          }
          record->RollForward(tsr.commit_ts);
          return Status::OK();
        }
        // Aborted TSR: the pending write never happened; committed versions
        // in the record are authoritative.
        return Status::OK();
      }
      if (!ts.IsNotFound()) return ts;

      // TSR absent.  An abandoned lock is repaired outright.
      if (LeaseExpired(*record, store_->options_.lock_lease_us)) {
        Status rs = store_->RecoverLock(key, record, etag);
        if (rs.IsNotFound()) return rs;
        if (!rs.ok() && !rs.IsBusy()) return rs;
        continue;
      }

      // Fresh lock, undecided owner: re-read the record.  If the lock moved
      // (owner finished or someone recovered it) re-evaluate from the fresh
      // state instead of trusting our possibly-stale copy.
      TxRecord fresh;
      uint64_t fresh_etag;
      Status rl = store_->LoadRecord(key, &fresh, &fresh_etag);
      if (rl.IsNotFound()) return rl;
      if (!rl.ok()) return rl;
      if (fresh_etag != *etag) {
        *record = std::move(fresh);
        *etag = fresh_etag;
        continue;
      }

      if (attempt < max_attempts) {
        LockWaitSleep();
        continue;
      }

      // Bounded politeness exhausted: settle the outcome.  If our ABORTED
      // plant wins, the owner's commit point can never succeed and the
      // committed versions are final; if it loses, the owner committed and
      // the next loop iteration reads its TSR.
      TsrRecord aborted;
      aborted.state = TsrRecord::State::kAborted;
      Status plant = store_->base_->ConditionalPut(tsr_key, EncodeTsr(aborted),
                                                   kv::kEtagAbsent);
      if (plant.ok()) {
        store_->reader_aborts_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
      if (!plant.IsConflict()) return plant;
      // Owner beat us to the TSR; loop re-reads it.
    }
  }

  /// Lock acquisition (DESIGN.md §10).  Ordered mode (default): prefetch the
  /// whole write set with one batched read, then CAS the lock puts
  /// sequentially in global key order — the classical deadlock-freedom
  /// argument needs only the *puts* ordered (every client acquires in the
  /// same total order, so no wait cycle can form), so the reads may overlap
  /// freely.  No-wait mode fans the whole read+CAS round out in parallel.
  Status AcquireLocks() {
    uint64_t now_us = WallMicros();
    bool fanout = UseBatches(writes_.size());
    if (fanout && store_->options_.lock_acquire_mode ==
                      TxnOptions::LockAcquireMode::kNoWait) {
      return AcquireLocksNoWait(now_us);
    }
    std::vector<LoadedRecord> prefetched;
    if (fanout) {
      std::vector<std::string> keys;
      keys.reserve(writes_.size());
      for (const auto& [key, pending] : writes_) keys.push_back(key);
      store_->MultiLoadRecords(keys, &prefetched);
    }
    size_t index = 0;
    for (const auto& [key, pending] : writes_) {  // std::map: sorted keys
      const LoadedRecord* hint =
          prefetched.empty() ? nullptr : &prefetched[index];
      ++index;
      AcquiredLock lock;
      Status s =
          AcquireOne(key, pending, now_us, hint, /*no_wait=*/false, &lock);
      if (!s.ok()) return s;
      acquired_.push_back(std::move(lock));
    }
    return Status::OK();
  }

  /// No-wait parallel acquisition: every key's read+CAS round is one fan-out
  /// item.  Deadlock-free because no item ever waits on a busy lock — ANY
  /// contention fails the round with Conflict, the caller releases whatever
  /// locks did land, and the transaction retry loop re-runs from scratch.
  Status AcquireLocksNoWait(uint64_t now_us) {
    std::vector<const std::string*> keys;
    std::vector<const PendingWrite*> pendings;
    keys.reserve(writes_.size());
    pendings.reserve(writes_.size());
    for (const auto& [key, pending] : writes_) {
      keys.push_back(&key);
      pendings.push_back(&pending);
    }
    std::vector<AcquiredLock> slots(keys.size());
    std::vector<char> held(keys.size(), 0);
    std::vector<Status> statuses = store_->options_.executor->ParallelForEach(
        keys.size(), [&](size_t i) {
          Status s = AcquireOne(*keys[i], *pendings[i], now_us,
                                /*prefetched=*/nullptr, /*no_wait=*/true,
                                &slots[i]);
          if (s.ok()) held[i] = 1;
          return s;
        });
    Status failure;
    for (size_t i = 0; i < keys.size(); ++i) {
      // Locks that DID land are tracked even when the round failed, so the
      // caller's ReleaseLocks undoes them.
      if (held[i] != 0) {
        acquired_.push_back(std::move(slots[i]));
      } else if (failure.ok() && !statuses[i].ok()) {
        failure = statuses[i];
      }
    }
    return failure;
  }

  /// One key's lock round: read (or consume the batched prefetch on the
  /// first attempt), run the conflict checks, CAS the lock put.  On success
  /// `*out` holds the acquired lock; the caller owns tracking it.
  Status AcquireOne(const std::string& key, const PendingWrite& pending,
                    uint64_t now_us, const LoadedRecord* prefetched,
                    bool no_wait, AcquiredLock* out) {
    for (int attempt = 0; attempt <= store_->options_.lock_wait_retries; ++attempt) {
      TxRecord record;
      uint64_t etag = kv::kEtagAbsent;
      Status s;
      if (attempt == 0 && prefetched != nullptr) {
        // A stale prefetch is harmless: the CAS re-checks the etag, and any
        // retry re-reads fresh.
        s = prefetched->status;
        record = prefetched->record;
        etag = prefetched->etag;
      } else {
        s = store_->LoadRecord(key, &record, &etag);
      }
      if (!s.ok() && !s.IsNotFound()) return s;
      bool exists = s.ok();

      if (exists && record.Locked()) {
        if (LeaseExpired(record, store_->options_.lock_lease_us)) {
          Status rs = store_->RecoverLock(key, &record, &etag);
          if (!rs.ok() && !rs.IsNotFound() && !rs.IsBusy()) return rs;
          continue;  // re-read and retry
        }
        store_->lock_busy_.fetch_add(1, std::memory_order_relaxed);
        if (no_wait) {
          // Never hold-and-wait: surface the contention immediately so the
          // whole round can be released and retried.
          store_->conflicts_.fetch_add(1, std::memory_order_relaxed);
          return Status::Conflict("lock busy (no-wait) on " + key);
        }
        LockWaitSleep();
        continue;
      }

      // First-committer-wins: a version committed after our snapshot means a
      // concurrent transaction beat us to this key.
      if (exists && record.commit_ts > start_ts_) {
        store_->conflicts_.fetch_add(1, std::memory_order_relaxed);
        return Status::Conflict("write-write conflict on " + key);
      }
      // Commits remove deleted records physically, so a missing record can
      // itself be the newer version.  Two cases are write-write conflicts:
      //  - deleting a vanished key (our delete lost to a concurrent one);
      //  - writing a vanished key our snapshot had READ as existing (a
      //    concurrent delete committed after our snapshot; recreating the
      //    record would resurrect it — the lost-delete anomaly).
      // A blind write to a key the transaction never read keeps insert
      // semantics.
      if (!exists) {
        auto read_it = reads_.find(key);
        bool saw_it_exist = read_it != reads_.end() && read_it->second != 0;
        if (pending.is_delete || saw_it_exist) {
          store_->conflicts_.fetch_add(1, std::memory_order_relaxed);
          return Status::Conflict("key vanished under txn: " + key);
        }
      }

      TxRecord locked = exists ? record : TxRecord{};
      locked.lock_owner = id_;
      locked.lock_ts = now_us;
      locked.pending_value = pending.value;
      locked.pending_delete = pending.is_delete;

      uint64_t new_etag = 0;
      s = store_->base_->ConditionalPut(key, EncodeTxRecord(locked),
                                        exists ? etag : kv::kEtagAbsent, &new_etag);
      if (s.ok()) {
        *out = AcquiredLock{key, new_etag, std::move(locked)};
        return Status::OK();
      }
      if (!s.IsConflict()) {
        // Ambiguous failure (e.g. the reply was lost after the put applied):
        // re-read the record and claim the lock if it is already ours.
        TxRecord cur;
        uint64_t cur_etag = kv::kEtagAbsent;
        Status rl = store_->LoadRecord(key, &cur, &cur_etag);
        if (rl.ok() && cur.Locked() && cur.lock_owner == id_) {
          *out = AcquiredLock{key, cur_etag, std::move(cur)};
          return Status::OK();
        }
        if (!rl.ok() && !rl.IsNotFound()) return s;
        continue;  // the put never landed; retry from a fresh read
      }
      // Someone interleaved between our read and CAS; loop and re-read.
    }
    store_->lock_busy_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted("could not lock " + key);
  }

  /// Serializable mode: every read must still be the latest committed
  /// version now that all write locks are held.  The re-reads are pure
  /// point lookups, so they fan out as one batch when an executor is set.
  Status ValidateReads() {
    std::vector<std::string> keys;
    std::vector<uint64_t> observed;
    keys.reserve(reads_.size());
    observed.reserve(reads_.size());
    for (const auto& [key, observed_ts] : reads_) {
      if (writes_.count(key) != 0) continue;  // re-checked by the lock CAS
      keys.push_back(key);
      observed.push_back(observed_ts);
    }
    std::vector<LoadedRecord> loaded;
    if (UseBatches(keys.size())) {
      store_->MultiLoadRecords(keys, &loaded);
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      TxRecord record;
      uint64_t etag = kv::kEtagAbsent;
      Status s;
      if (!loaded.empty()) {
        s = loaded[i].status;
        record = std::move(loaded[i].record);
      } else {
        s = store_->LoadRecord(keys[i], &record, &etag);
      }
      if (s.IsNotFound()) {
        if (observed[i] == 0) continue;  // still absent
        return Status::Aborted("validation: " + keys[i] + " disappeared");
      }
      if (!s.ok()) return s;
      if (record.Locked()) {
        return Status::Aborted("validation: " + keys[i] + " locked by writer");
      }
      if (record.commit_ts != observed[i]) {
        return Status::Aborted("validation: " + keys[i] + " changed");
      }
    }
    return Status::OK();
  }

  bool RollForwardOne(const AcquiredLock& lock, uint64_t commit_ts) {
    Status s;
    if (lock.record.pending_delete) {
      s = store_->base_->ConditionalDelete(lock.key, lock.etag);
    } else {
      TxRecord rolled = lock.record;
      rolled.RollForward(commit_ts);
      s = store_->base_->ConditionalPut(lock.key, EncodeTxRecord(rolled),
                                        lock.etag);
    }
    // A Conflict here means a reader recovered the lock for us after the
    // TSR became visible — the record already carries the committed state.
    if (!s.ok() && !s.IsConflict()) {
      YCSBT_WARN("roll-forward of " << lock.key << " failed: " << s.ToString());
      return false;
    }
    return true;
  }

  /// Returns true only when every lock is known applied (or repaired by a
  /// reader); on false some record still holds a pending write that only
  /// the TSR can prove committed.  Past the commit point every item is an
  /// independent conditional op, so the whole apply fans out as one batch; a
  /// per-item failure means the same thing it does sequentially — leave that
  /// lock to recovery.
  bool RollForward(uint64_t commit_ts) {
    bool all_applied = true;
    if (UseBatches(acquired_.size())) {
      std::vector<kv::WriteOp> ops;
      ops.reserve(acquired_.size());
      for (const auto& lock : acquired_) {
        if (lock.record.pending_delete) {
          ops.push_back(kv::WriteOp::CondDelete(lock.key, lock.etag));
        } else {
          TxRecord rolled = lock.record;
          rolled.RollForward(commit_ts);
          ops.push_back(
              kv::WriteOp::CondPut(lock.key, EncodeTxRecord(rolled), lock.etag));
        }
      }
      std::vector<kv::WriteResult> results;
      store_->base_->MultiWrite(ops, &results);
      for (size_t i = 0; i < results.size(); ++i) {
        const Status& s = results[i].status;
        // A Conflict means a reader recovered the lock for us after the TSR
        // became visible — the record already carries the committed state.
        if (!s.ok() && !s.IsConflict()) {
          YCSBT_WARN("roll-forward of " << acquired_[i].key
                                        << " failed: " << s.ToString());
          all_applied = false;
        }
      }
    } else {
      for (auto& lock : acquired_) {
        all_applied = RollForwardOne(lock, commit_ts) && all_applied;
      }
    }
    store_->ts_source_->Observe(commit_ts);
    return all_applied;
  }

  /// The TSR write returned a non-conflict error: the record may or may not
  /// have landed (reply lost after apply).  Re-reads the TSR — the single
  /// atomic arbiter — until the outcome is known; OK means `*committed`
  /// holds the settled verdict.  If the store stays unreachable the
  /// transaction is abandoned exactly like a crash (locks and a possible
  /// TSR left in place for recovery) and a non-retryable error returned:
  /// retrying a transaction whose first incarnation might still commit
  /// would apply its effects twice.
  Status SettleAmbiguousCommit(const std::string& tsr_key, bool* committed) {
    // A leader election is patience, not unreachability: the re-read will
    // succeed against the new leader once the election completes, so
    // NotLeader answers spend a separate (much larger) wait budget instead
    // of the unreachable-store attempt budget.  Each re-read also counts
    // against a count-scripted election's completion budget, so the loop
    // itself drives the failover forward.
    int leadership_waits = 1024;
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::string data;
      Status g = store_->base_->Get(tsr_key, &data);
      if (g.ok()) {
        TsrRecord settled;
        Status ds = DecodeTsr(data, &settled);
        if (!ds.ok()) return ds;
        *committed = settled.state == TsrRecord::State::kCommitted;
        return Status::OK();
      }
      if (g.IsNotFound()) {
        *committed = false;  // the write never landed
        return Status::OK();
      }
      if (g.IsLeadershipChange() && leadership_waits > 0) {
        --leadership_waits;
        uint64_t hint = RetryAfterUsHint(g);
        SleepMicros(hint > 0 ? std::min<uint64_t>(hint, 5'000) : 100);
        --attempt;  // an election in progress is not a failed re-read
        continue;
      }
      SleepMicros(100);
    }
    YCSBT_WARN("txn " << id_ << ": commit outcome unknown after TSR re-reads");
    acquired_.clear();  // a dead client releases nothing
    state_ = State::kAborted;
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("commit outcome unknown; transaction abandoned");
  }

  /// Simulated client death before the commit point: every acquired lock is
  /// left in the store with no TSR, so recovery rolls the transaction back.
  Status CrashAbandonedUncommitted(const char* where) {
    store_->injected_crashes_.fetch_add(1, std::memory_order_relaxed);
    acquired_.clear();  // a dead client releases nothing
    state_ = State::kAborted;
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted(std::string("injected crash ") + where);
  }

  /// Simulated client death at/after the commit point: the TSR is durable,
  /// so the transaction IS committed even though only the first `roll_first`
  /// locks were applied; later readers repair the rest via the TSR.
  Status CrashAbandonedCommitted(uint64_t commit_ts, size_t roll_first) {
    store_->injected_crashes_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < roll_first && i < acquired_.size(); ++i) {
      RollForwardOne(acquired_[i], commit_ts);
    }
    store_->ts_source_->Observe(commit_ts);
    acquired_.clear();  // the rest stays locked until recovery finds it
    state_ = State::kCommitted;
    store_->commits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  /// Abort path: undo every lock we planted (no TSR was written, so readers
  /// treat the pending values as void).  Per-item conditional ops with no
  /// ordering dependency, so the undo fans out as one batch.  Conflicts are
  /// fine either way: a recovering reader already rolled us back.
  void ReleaseLocks() {
    if (UseBatches(acquired_.size())) {
      std::vector<kv::WriteOp> ops;
      ops.reserve(acquired_.size());
      for (const auto& lock : acquired_) {
        if (lock.record.commit_ts == 0 && !lock.record.has_prev) {
          // The record was created solely to carry our lock.
          ops.push_back(kv::WriteOp::CondDelete(lock.key, lock.etag));
        } else {
          TxRecord restored = lock.record;
          restored.ClearLock();
          ops.push_back(kv::WriteOp::CondPut(lock.key, EncodeTxRecord(restored),
                                             lock.etag));
        }
      }
      std::vector<kv::WriteResult> results;
      store_->base_->MultiWrite(ops, &results);
    } else {
      for (auto& lock : acquired_) {
        if (lock.record.commit_ts == 0 && !lock.record.has_prev) {
          store_->base_->ConditionalDelete(lock.key, lock.etag);
        } else {
          TxRecord restored = lock.record;
          restored.ClearLock();
          store_->base_->ConditionalPut(lock.key, EncodeTxRecord(restored),
                                        lock.etag);
        }
      }
    }
    acquired_.clear();
  }

  ClientTxnStore* store_;
  const std::string id_;
  const uint64_t start_ts_;
  State state_ = State::kActive;

  std::map<std::string, PendingWrite> writes_;  // sorted: ordered locking
  std::map<std::string, uint64_t> reads_;       // key -> observed version ts
  std::vector<AcquiredLock> acquired_;

  // Decorrelated-jitter state for LockWaitSleep (seeded per transaction;
  // only ever touched from the owning client thread).
  Random64 jitter_rng_;
  uint64_t lock_wait_prev_us_ = 0;
};

// ---------------------------------------------------------------------------
// ClientTxnStore
// ---------------------------------------------------------------------------

ClientTxnStore::ClientTxnStore(std::shared_ptr<kv::Store> base,
                               std::shared_ptr<TimestampSource> ts_source,
                               TxnOptions options)
    : base_(std::move(base)),
      ts_source_(std::move(ts_source)),
      options_(std::move(options)) {
  Random64 rng(SteadyNanos() ^ reinterpret_cast<uintptr_t>(this));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(rng.Next()));
  client_id_ = buf;
}

std::string ClientTxnStore::TxnIdFor(uint64_t seq) const {
  return client_id_ + "-" + std::to_string(seq);
}

std::unique_ptr<Transaction> ClientTxnStore::Begin() {
  uint64_t seq = txn_counter_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<ClientTxn>(this, TxnIdFor(seq), ts_source_->Next(),
                                     seq);
}

Status ClientTxnStore::LoadRecord(const std::string& key, TxRecord* record,
                                  uint64_t* etag) {
  std::string data;
  Status s = base_->Get(key, &data, etag);
  if (!s.ok()) return s;
  return DecodeTxRecord(data, record);
}

void ClientTxnStore::MultiLoadRecords(const std::vector<std::string>& keys,
                                      std::vector<LoadedRecord>* out) {
  std::vector<kv::MultiGetResult> raw;
  base_->MultiGet(keys, &raw);
  out->clear();
  out->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    LoadedRecord& row = (*out)[i];
    row.etag = raw[i].etag;
    row.status = raw[i].status;
    if (row.status.ok()) {
      row.status = DecodeTxRecord(raw[i].value, &row.record);
    }
  }
}

Status ClientTxnStore::RecoverLock(const std::string& key, TxRecord* record,
                                   uint64_t* etag) {
  if (!record->Locked()) return Status::OK();
  if (!LeaseExpired(*record, options_.lock_lease_us)) return Status::Busy();

  // The owner's TSR decides the lock's fate: committed -> roll forward,
  // aborted -> roll back.  An *absent* TSR is not enough to roll back: the
  // owner may merely be slow and could still reach its commit point, which
  // would tear its transaction in half (this key rolled back, others rolled
  // forward).  So recovery first *decides* the outcome by planting an
  // ABORTED status record; the TSR key's must-not-exist write arbitrates
  // atomically between the recoverer and the owner's commit.
  std::string tsr_key = TsrKey(record->lock_owner);
  bool committed = false;
  uint64_t commit_ts = 0;
  {
    std::string tsr_data;
    Status ts = base_->Get(tsr_key, &tsr_data);
    if (ts.IsNotFound()) {
      TsrRecord aborted;
      aborted.state = TsrRecord::State::kAborted;
      Status plant =
          base_->ConditionalPut(tsr_key, EncodeTsr(aborted), kv::kEtagAbsent);
      if (plant.ok()) {
        ts = Status::OK();
        tsr_data = EncodeTsr(aborted);
      } else if (plant.IsConflict()) {
        ts = base_->Get(tsr_key, &tsr_data);  // owner just committed/aborted
      } else {
        return plant;
      }
    }
    if (ts.ok()) {
      TsrRecord tsr;
      Status ds = DecodeTsr(tsr_data, &tsr);
      if (!ds.ok()) return ds;
      committed = tsr.state == TsrRecord::State::kCommitted;
      commit_ts = tsr.commit_ts;
    } else if (ts.IsNotFound()) {
      // Owner finished and cleaned its TSR between our Get and the plant's
      // conflict: its locks are gone; reload and re-evaluate.
      return LoadRecord(key, record, etag);
    } else {
      return ts;
    }
  }

  Status s;
  if (committed) {
    if (record->pending_delete) {
      s = base_->ConditionalDelete(key, *etag);
      if (s.ok()) {
        roll_forwards_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound(key);
      }
    } else {
      TxRecord rolled = *record;
      rolled.RollForward(commit_ts);
      s = base_->ConditionalPut(key, EncodeTxRecord(rolled), *etag, etag);
      if (s.ok()) {
        roll_forwards_.fetch_add(1, std::memory_order_relaxed);
        *record = std::move(rolled);
        return Status::OK();
      }
    }
  } else {
    if (record->commit_ts == 0 && !record->has_prev) {
      // The record existed only to carry the abandoned lock.
      s = base_->ConditionalDelete(key, *etag);
      if (s.ok()) {
        roll_backs_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound(key);
      }
    } else {
      TxRecord restored = *record;
      restored.ClearLock();
      s = base_->ConditionalPut(key, EncodeTxRecord(restored), *etag, etag);
      if (s.ok()) {
        roll_backs_.fetch_add(1, std::memory_order_relaxed);
        *record = std::move(restored);
        return Status::OK();
      }
    }
  }
  if (!s.IsConflict()) return s;
  // CAS lost: somebody else recovered (or the owner finished).  Reload so the
  // caller sees the fresh state.
  return LoadRecord(key, record, etag);
}

Status ClientTxnStore::LoadPut(const std::string& key, std::string_view value) {
  return base_->Put(key, EncodeLoadValue(value));
}

std::string ClientTxnStore::EncodeLoadValue(std::string_view value) {
  TxRecord record;
  record.commit_ts = ts_source_->Next();
  record.value = std::string(value);
  return EncodeTxRecord(record);
}

Status ClientTxnStore::ReadCommitted(const std::string& key, std::string* value) {
  TxRecord record;
  uint64_t etag;
  Status s = LoadRecord(key, &record, &etag);
  if (!s.ok()) return s;
  if (record.Locked()) {
    // Latest-committed read: a committed TSR means the pending write is live.
    std::string tsr_data;
    Status ts = base_->Get(TsrKey(record.lock_owner), &tsr_data);
    if (ts.ok()) {
      TsrRecord tsr;
      Status ds = DecodeTsr(tsr_data, &tsr);
      if (!ds.ok()) return ds;
      if (tsr.state == TsrRecord::State::kCommitted) {
        if (record.pending_delete) return Status::NotFound(key);
        if (value != nullptr) *value = record.pending_value;
        return Status::OK();
      }
    }
    if (LeaseExpired(record, options_.lock_lease_us)) {
      s = RecoverLock(key, &record, &etag);
      if (s.IsNotFound()) return s;
      if (!s.ok() && !s.IsBusy()) return s;
    }
  }
  if (record.commit_ts == 0) return Status::NotFound(key);
  if (value != nullptr) *value = record.value;
  return Status::OK();
}

Status ClientTxnStore::ResolveLockedForScan(const std::string& key,
                                            TxRecord* record, uint64_t* etag) {
  // A committed TSR makes the pending write live regardless of lease age.
  std::string tsr_data;
  Status ts = base_->Get(TsrKey(record->lock_owner), &tsr_data);
  if (ts.ok()) {
    TsrRecord tsr;
    Status ds = DecodeTsr(tsr_data, &tsr);
    if (!ds.ok()) return ds;
    if (tsr.state != TsrRecord::State::kCommitted) {
      return Status::OK();  // aborted: committed versions are authoritative
    }
    if (LeaseExpired(*record, options_.lock_lease_us)) {
      // The owner died after its commit point: repair the record physically
      // on its behalf, then serve from the repaired state.
      Status rs = RecoverLock(key, record, etag);
      if (rs.IsNotFound()) return rs;
      if (!rs.ok() && !rs.IsBusy()) return rs;
      return Status::OK();
    }
    // Owner alive and mid-roll-forward: apply its write to our view only.
    if (record->pending_delete) return Status::NotFound(key);
    record->RollForward(tsr.commit_ts);
    return Status::OK();
  }
  if (!ts.IsNotFound()) return ts;
  // TSR absent: a fresh lock's pending write is simply not committed yet; an
  // expired one is repaired (rolled back, or forward if the owner's commit
  // races in) before the record's versions are trusted.
  if (LeaseExpired(*record, options_.lock_lease_us)) {
    Status rs = RecoverLock(key, record, etag);
    if (rs.IsNotFound()) return rs;
    if (!rs.ok() && !rs.IsBusy()) return rs;
  }
  return Status::OK();
}

Status ClientTxnStore::ScanSnapshot(const std::string& start_key, size_t limit,
                                    uint64_t snapshot_ts,
                                    std::vector<TxScanEntry>* out) {
  out->clear();
  std::string cursor = start_key;
  // TSR keys live under a high prefix; stop before it.
  const std::string& tsr_prefix = options_.tsr_prefix;
  while (out->size() < limit) {
    std::vector<kv::ScanEntry> raw;
    size_t batch = std::max<size_t>(limit - out->size(), 16);
    Status s = base_->Scan(cursor, batch, &raw);
    if (!s.ok()) return s;
    if (raw.empty()) break;
    for (const auto& entry : raw) {
      if (entry.key.compare(0, tsr_prefix.size(), tsr_prefix) == 0) continue;
      TxRecord record;
      Status ds = DecodeTxRecord(entry.value, &record);
      if (!ds.ok()) return ds;
      if (record.Locked()) {
        uint64_t etag = entry.etag;
        Status rs = ResolveLockedForScan(entry.key, &record, &etag);
        if (rs.IsNotFound()) continue;  // committed outcome deleted the key
        if (!rs.ok()) return rs;
      }
      std::string value;
      if (VisibleVersion(record, snapshot_ts, &value, nullptr).ok()) {
        out->push_back(TxScanEntry{entry.key, std::move(value)});
        if (out->size() >= limit) break;
      }
    }
    // Advance past the last key of the batch.
    cursor = raw.back().key + '\0';
    if (raw.size() < batch) break;  // store exhausted
  }
  return Status::OK();
}

Status ClientTxnStore::ScanCommitted(const std::string& start_key, size_t limit,
                                     std::vector<TxScanEntry>* out) {
  // "Latest committed" is a snapshot at infinity.
  return ScanSnapshot(start_key, limit,
                      std::numeric_limits<uint64_t>::max(), out);
}

TxnStats ClientTxnStore::stats() const {
  TxnStats s;
  s.commits = commits_.load();
  s.aborts = aborts_.load();
  s.conflicts = conflicts_.load();
  s.lock_busy = lock_busy_.load();
  s.roll_forwards = roll_forwards_.load();
  s.roll_backs = roll_backs_.load();
  s.validation_fails = validation_fails_.load();
  s.reader_aborts = reader_aborts_.load();
  s.injected_crashes = injected_crashes_.load();
  s.ambiguous_commits = ambiguous_commits_.load();
  return s;
}

}  // namespace txn
}  // namespace ycsbt
