#ifndef YCSBT_TXN_RECORD_CODEC_H_
#define YCSBT_TXN_RECORD_CODEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace ycsbt {
namespace txn {

/// The multi-version record the client-coordinated transaction library
/// stores as the *value* of each user key in the underlying key-value store.
///
/// Layout mirrors the description in the paper's §II-B and the PVLDB'13
/// companion: the record carries the current committed version, the previous
/// committed version (so snapshot readers can step back one version while a
/// commit is in flight), and a lock block naming the owning transaction and
/// its transaction-status record.  Because the whole record is one store
/// value, every state transition is a single conditional put — the
/// test-and-set primitive the paper faults Percolator for not using.
struct TxRecord {
  // -- committed state --------------------------------------------------
  /// Commit timestamp of `value`; 0 means "no committed version yet"
  /// (a record created by an in-flight insert).
  uint64_t commit_ts = 0;
  std::string value;

  /// Previous committed version (valid when `has_prev`).
  bool has_prev = false;
  uint64_t prev_commit_ts = 0;
  std::string prev_value;

  // -- lock block (all empty/zero when unlocked) ------------------------
  /// Id of the transaction holding the write lock; "" = unlocked.
  std::string lock_owner;
  /// HLC microseconds when the lock was taken (lease-expiry base).
  uint64_t lock_ts = 0;
  /// Proposed new value, applied on roll-forward.
  std::string pending_value;
  /// True when the pending write is a delete.
  bool pending_delete = false;

  bool Locked() const { return !lock_owner.empty(); }

  /// Clears the lock block.
  void ClearLock() {
    lock_owner.clear();
    lock_ts = 0;
    pending_value.clear();
    pending_delete = false;
  }

  /// Promotes the pending write to the committed version at `ts`
  /// (caller handles pending_delete separately) and clears the lock.
  void RollForward(uint64_t ts) {
    has_prev = commit_ts != 0;
    prev_commit_ts = commit_ts;
    prev_value = std::move(value);
    commit_ts = ts;
    value = std::move(pending_value);
    ClearLock();
  }
};

/// Serialises a TxRecord into a store value.
std::string EncodeTxRecord(const TxRecord& record);

/// Parses a store value; Corruption on malformed input.
Status DecodeTxRecord(const std::string& data, TxRecord* record);

/// Transaction status record (TSR): the commit point of the protocol.
/// Written to `<tsr_prefix><txn_id>` with a conditional must-not-exist put;
/// its successful write *is* the commit.
struct TsrRecord {
  enum class State : uint8_t { kCommitted = 1, kAborted = 2 };
  State state = State::kCommitted;
  uint64_t commit_ts = 0;
};

std::string EncodeTsr(const TsrRecord& tsr);
Status DecodeTsr(const std::string& data, TsrRecord* tsr);

}  // namespace txn
}  // namespace ycsbt

#endif  // YCSBT_TXN_RECORD_CODEC_H_
