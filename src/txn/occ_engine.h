#ifndef YCSBT_TXN_OCC_ENGINE_H_
#define YCSBT_TXN_OCC_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "txn/transaction.h"

namespace ycsbt {
namespace txn {

/// Tuning knobs of the embedded Silo-style OCC engine (`occ.*` properties).
struct OccOptions {
  /// Period of the global-epoch ticker thread in milliseconds.  0 disables
  /// the ticker entirely (tests drive `AdvanceEpoch()` by hand).
  uint64_t epoch_ms = 10;

  /// Commit-time read-set validation.  On (the default) the engine is
  /// serializable: any record read whose TID changed since the read — or
  /// that another transaction holds locked — aborts the committer with
  /// `Status::Conflict`.  Off, reads are not validated at all and the
  /// engine degrades to atomic-write-batch / read-committed semantics
  /// (admits lost updates and write skew) — the ablation axis the
  /// write-skew suite exercises.
  bool read_validation = true;

  /// Per-thread retire lists are swept for reclaimable versions once they
  /// grow past this many entries (and always at engine teardown).
  size_t retire_batch = 128;

  /// Hash-index shard count (structure locking only; record access past the
  /// index lookup is lock-free).  Not exposed as a property.
  size_t index_shards = 64;
};

/// Monotonic counters exposed for benches, tests and the runner's
/// OCC-ABORT / OCC-VALIDATE-FAIL / EPOCH-ADVANCE series.
struct OccStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;            ///< explicit aborts + failed validations
  uint64_t validation_fails = 0;  ///< commits rejected by read-set validation
  uint64_t epoch_advances = 0;    ///< ticker (or manual) epoch increments
  uint64_t versions_retired = 0;  ///< old versions handed to retire lists
  uint64_t versions_freed = 0;    ///< retired versions actually reclaimed
};

/// Embedded single-process OCC engine in the Silo lineage (DESIGN.md §15):
/// epoch-based group commit, lock-free reads validated at commit, writes
/// buffered locally and installed under short per-record spinlocks taken in
/// global key order, old versions reclaimed via epoch-based memory
/// reclamation.  Unlike `Local2PLStore` this substrate does NOT sit on a
/// `kv::Store` — per-read locking (even shared) is exactly the cost the
/// engine exists to remove — so the fault-injection and resilience
/// decorators do not apply to the `occ+memkv` binding.
///
/// Concurrency contract: any number of threads may run transactions and the
/// committed-read helpers concurrently.  A `Transaction` handle stays on the
/// thread that called `Begin()` (the YCSB+T client model).
class OccEngine : public TransactionalKV {
 public:
  explicit OccEngine(OccOptions options = {});
  ~OccEngine() override;

  OccEngine(const OccEngine&) = delete;
  OccEngine& operator=(const OccEngine&) = delete;

  std::unique_ptr<Transaction> Begin() override;
  Status LoadPut(const std::string& key, std::string_view value) override;
  Status ReadCommitted(const std::string& key, std::string* value) override;
  Status ScanCommitted(const std::string& start_key, size_t limit,
                       std::vector<TxScanEntry>* out) override;

  OccStats stats() const;
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Manually advances the global epoch (what the ticker thread does every
  /// `epoch_ms`).  Exposed for tests that pin reclamation timing.
  void AdvanceEpoch();

  /// Commit TID of `key`'s current version, for TID-shape tests.  False when
  /// the key has never been written.
  bool DebugTidOf(const std::string& key, uint64_t* tid) const;

  const OccOptions& options() const { return options_; }

  /// TID word layout: [epoch:24][seq:31][thread:8][lock:1].  Helpers public
  /// for tests.
  static constexpr uint64_t kLockBit = 1;
  static constexpr int kThreadBits = 8;
  static constexpr int kSeqBits = 31;
  static uint64_t MakeTid(uint64_t epoch, uint64_t seq, uint64_t thread) {
    return (epoch << (1 + kThreadBits + kSeqBits)) |
           ((seq & ((uint64_t{1} << kSeqBits) - 1)) << (1 + kThreadBits)) |
           ((thread & ((uint64_t{1} << kThreadBits) - 1)) << 1);
  }
  static uint64_t TidEpoch(uint64_t tid) {
    return tid >> (1 + kThreadBits + kSeqBits);
  }
  static uint64_t TidSeq(uint64_t tid) {
    return (tid >> (1 + kThreadBits)) & ((uint64_t{1} << kSeqBits) - 1);
  }
  static uint64_t TidThread(uint64_t tid) {
    return (tid >> 1) & ((uint64_t{1} << kThreadBits) - 1);
  }

 private:
  friend class OccTxn;

  /// An immutable committed version.  Published with a release store of the
  /// record's version pointer; never mutated afterwards, so concurrent
  /// readers copy `value` without synchronisation beyond the acquire load.
  struct Version {
    std::string value;
    bool tombstone = false;
  };

  /// One key's slot.  Records are created on first write and never removed
  /// from the index (deletes install a tombstone version); only versions
  /// turn over, which confines reclamation to the epoch machinery.
  struct Record {
    std::string key;
    /// TID word of the current version; bit 0 is the writer lock.
    std::atomic<uint64_t> tid{0};
    std::atomic<Version*> version{nullptr};
  };

  struct Shard {
    mutable std::shared_mutex mu;  ///< index structure only, never held for reads
    std::unordered_map<std::string_view, Record*> map;
    std::vector<std::unique_ptr<Record>> records;
  };

  struct Retired {
    uint64_t epoch;  ///< global epoch observed AFTER the version was unlinked
    Version* version;
  };

  /// Per-worker registration: epoch pin, TID sequence, retire list, local
  /// stat counters.  Single-writer (the owning thread); `stats()` and the
  /// reclaimer read only the atomics.
  struct alignas(64) ThreadState {
    static constexpr uint64_t kIdle = ~uint64_t{0};
    std::atomic<uint64_t> active_epoch{kIdle};
    /// Nesting depth of Pin (owner thread only): a committed-read helper
    /// called while a transaction is open must not clear the txn's pin.
    uint32_t pin_depth = 0;
    uint64_t seq = 0;
    uint64_t thread_id = 0;
    std::vector<Retired> retired;
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> aborts{0};
    std::atomic<uint64_t> validation_fails{0};
    std::atomic<uint64_t> versions_retired{0};
    std::atomic<uint64_t> versions_freed{0};
  };

  Shard& ShardFor(std::string_view key);
  const Shard& ShardFor(std::string_view key) const;
  Record* FindRecord(std::string_view key) const;
  Record* FindOrCreateRecord(std::string_view key);

  /// Calling thread's registration with this engine (lazily created).
  ThreadState* MyState();

  /// Pins the calling thread into the current epoch; reads/writes of record
  /// versions are only legal while pinned.  Unpin as soon as the borrowed
  /// version pointers are dead.
  void Pin(ThreadState* st);
  void Unpin(ThreadState* st);

  /// Consistent lock-free read of one record: returns the version pointer
  /// current at some instant between the two TID loads plus that TID.  The
  /// caller must be pinned (the pointer stays valid until Unpin).  Never
  /// returns a locked TID — spins past in-flight installs.
  void ReadRecord(const Record* rec, Version** version, uint64_t* tid) const;

  /// Ordered committed scan from `start_key`, up to `limit` live rows.  The
  /// caller must be pinned.
  void CollectRange(const std::string& start_key, size_t limit,
                    std::vector<TxScanEntry>* out) const;

  /// Hands an unlinked version to the thread's retire list, stamped with the
  /// global epoch observed *after* the unlink (so every reader that could
  /// still hold it pinned an epoch <= the stamp).
  void Retire(ThreadState* st, Version* version);

  /// Frees retired versions no live reader can hold.  `force` sweeps
  /// regardless of `retire_batch` (teardown path).
  void FlushRetired(ThreadState* st, bool force);

  /// Oldest epoch any thread is currently pinned in (global epoch when all
  /// are idle).  A version retired at epoch e is reclaimable once this
  /// exceeds e.
  uint64_t SafeReclaimEpoch() const;

  void TickerLoop();

  OccOptions options_;
  const uint64_t engine_id_;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> epoch_advances_{0};

  mutable std::mutex threads_mu_;
  std::vector<std::unique_ptr<ThreadState>> thread_states_;

  std::atomic<bool> stop_ticker_{false};
  std::thread ticker_;
};

/// One OCC transaction: lock-free reads recorded as `(record, tid)` pairs,
/// writes buffered until the Silo-style commit.  Created by
/// `OccEngine::Begin()`; used by one thread.
class OccTxn : public Transaction {
 public:
  OccTxn(OccEngine* engine, OccEngine::ThreadState* state);
  ~OccTxn() override;

  uint64_t start_ts() const override { return start_epoch_; }
  Status Read(const std::string& key, std::string* value) override;
  Status Write(const std::string& key, std::string_view value) override;
  Status Delete(const std::string& key) override;
  Status Scan(const std::string& start_key, size_t limit,
              std::vector<TxScanEntry>* out) override;
  Status Commit() override;
  Status Abort() override;

 private:
  struct ReadEntry {
    const OccEngine::Record* record;
    uint64_t tid;
  };
  struct BufferedWrite {
    std::string value;
    bool is_delete = false;
  };

  Status Buffer(const std::string& key, std::string_view value, bool is_delete);
  void Finish();  ///< unpin + mark finished (idempotent)

  OccEngine* engine_;
  OccEngine::ThreadState* state_;
  uint64_t start_epoch_;
  bool finished_ = false;

  std::vector<ReadEntry> reads_;
  /// Keys read as absent (no record in the index yet): validated at commit
  /// by re-lookup, since there is no record TID to pin them with.
  std::vector<std::string> absent_reads_;
  std::unordered_map<std::string, BufferedWrite> writes_;
};

}  // namespace txn
}  // namespace ycsbt

#endif  // YCSBT_TXN_OCC_ENGINE_H_
