#ifndef YCSBT_TXN_TIMESTAMP_H_
#define YCSBT_TXN_TIMESTAMP_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/clock.h"
#include "common/latency_model.h"
#include "common/random.h"

namespace ycsbt {
namespace txn {

/// Source of transaction start/commit timestamps.
///
/// The paper (§II-B) contrasts two designs: Percolator/ReTSO-style *central
/// timestamp oracles*, which become a bottleneck over high-latency networks,
/// and the authors' library, which uses only the client's local clock.
/// Abstracting the source lets the same commit protocol run either way — the
/// `ablation_timestamp_oracle` bench measures exactly this difference.
class TimestampSource {
 public:
  virtual ~TimestampSource() = default;

  /// Next timestamp; strictly monotonic per source.
  virtual uint64_t Next() = 0;

  /// Folds in a timestamp observed from shared state (no-op for oracles).
  virtual void Observe(uint64_t ts) = 0;
};

/// Local hybrid-logical-clock source: no coordination, no network round trip.
/// This is what the authors' client-coordinated library uses ("it relies on
/// the local clock ... compatible with approaches like TrueTime").
class HlcTimestampSource : public TimestampSource {
 public:
  uint64_t Next() override { return clock_.Now(); }
  void Observe(uint64_t ts) override { clock_.Observe(ts); }

 private:
  HybridLogicalClock clock_;
};

/// Central timestamp oracle (Percolator's TO / ReTSO's TSO): one shared
/// counter that every timestamp request must visit, paying a simulated RPC
/// round trip.  Share one instance among all clients of a cluster.
class OracleTimestampSource : public TimestampSource {
 public:
  /// The shared server-side state of the oracle.
  struct Oracle {
    std::atomic<uint64_t> counter{1};
  };

  /// @param oracle shared oracle; must outlive the source.
  /// @param rpc_latency round-trip cost per timestamp request.
  OracleTimestampSource(std::shared_ptr<Oracle> oracle, LatencyModel rpc_latency)
      : oracle_(std::move(oracle)), rpc_latency_(rpc_latency) {}

  uint64_t Next() override {
    rpc_latency_.Inject(ThreadLocalRandom());
    return oracle_->counter.fetch_add(1, std::memory_order_relaxed);
  }

  void Observe(uint64_t /*ts*/) override {}

 private:
  std::shared_ptr<Oracle> oracle_;
  LatencyModel rpc_latency_;
};

}  // namespace txn
}  // namespace ycsbt

#endif  // YCSBT_TXN_TIMESTAMP_H_
