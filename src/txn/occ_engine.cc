#include "txn/occ_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <utility>

#include "common/clock.h"

namespace ycsbt {
namespace txn {

namespace {

/// One spin-loop backoff step: a pause instruction while the owner is
/// presumably mid-install, a yield every 64 spins in case it was preempted.
inline void SpinPause(int spins) {
  if ((spins & 63) == 63) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

std::atomic<uint64_t> g_next_engine_id{1};

}  // namespace

// ---------------------------------------------------------------------------
// Memory-ordering note (DESIGN.md §15).  All epoch-protocol atomics — the
// pin store, the version-pointer exchange/loads, the reclaimer's pin loads
// and the global-epoch loads — use seq_cst, because the safety argument
// ("a reader that obtained a version pointer before its unlink is either
// still pinned in an epoch <= the retire stamp, or its unpin store is
// visible to the reclaimer") needs the single total order, not just
// acquire/release pairs.  On x86-64 the only seq_cst op that costs anything
// is the once-per-transaction pin store; the hot-path loads compile to
// plain moves.  TSan-wise every actual free is reached through a
// pin-store -> reclaimer-load synchronizes-with edge, so no fence-only
// reasoning is involved.
// ---------------------------------------------------------------------------

OccEngine::OccEngine(OccOptions options)
    : options_(options),
      engine_id_(g_next_engine_id.fetch_add(1, std::memory_order_relaxed)),
      shards_(std::max<size_t>(1, options.index_shards)) {
  if (options_.retire_batch == 0) options_.retire_batch = 1;
  if (options_.epoch_ms > 0) {
    ticker_ = std::thread([this] { TickerLoop(); });
  }
}

OccEngine::~OccEngine() {
  if (ticker_.joinable()) {
    stop_ticker_.store(true, std::memory_order_relaxed);
    ticker_.join();
  }
  // Single-threaded teardown (all clients joined before the factory drops
  // the engine): every remaining version is unreachable-after-this, so the
  // epoch machinery is bypassed.
  for (const auto& st : thread_states_) {
    for (const Retired& r : st->retired) delete r.version;
  }
  for (Shard& shard : shards_) {
    for (const auto& rec : shard.records) {
      delete rec->version.load(std::memory_order_relaxed);
    }
  }
}

OccEngine::Shard& OccEngine::ShardFor(std::string_view key) {
  return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

const OccEngine::Shard& OccEngine::ShardFor(std::string_view key) const {
  return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

OccEngine::Record* OccEngine::FindRecord(std::string_view key) const {
  const Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second;
}

OccEngine::Record* OccEngine::FindOrCreateRecord(std::string_view key) {
  Shard& shard = ShardFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) return it->second;
  auto owned = std::make_unique<Record>();
  owned->key.assign(key.data(), key.size());
  Record* rec = owned.get();
  shard.records.push_back(std::move(owned));
  shard.map.emplace(std::string_view(rec->key), rec);
  return rec;
}

OccEngine::ThreadState* OccEngine::MyState() {
  // Cached per (thread, engine); engine ids are process-unique, so stale
  // entries of destroyed engines can never be matched again.
  thread_local std::vector<std::pair<uint64_t, ThreadState*>> cache;
  for (const auto& [id, st] : cache) {
    if (id == engine_id_) return st;
  }
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (thread_states_.size() >= (uint64_t{1} << kThreadBits)) {
    // The TID thread field is kThreadBits wide; a 257th registration would
    // alias an existing id and could mint duplicate TIDs (same epoch, same
    // per-thread seq), breaking the never-repeats invariant that both
    // ReadRecord and commit-time read validation rely on.  Fail hard
    // rather than silently corrupt validation.
    std::fprintf(stderr,
                 "occ: more than %llu threads registered with one engine; "
                 "TID thread field (%d bits) would alias\n",
                 static_cast<unsigned long long>(uint64_t{1} << kThreadBits),
                 kThreadBits);
    std::abort();
  }
  auto owned = std::make_unique<ThreadState>();
  owned->thread_id = thread_states_.size();
  ThreadState* st = owned.get();
  thread_states_.push_back(std::move(owned));
  cache.emplace_back(engine_id_, st);
  return st;
}

void OccEngine::Pin(ThreadState* st) {
  if (st->pin_depth++ > 0) return;
  st->active_epoch.store(epoch_.load(std::memory_order_seq_cst),
                         std::memory_order_seq_cst);
}

void OccEngine::Unpin(ThreadState* st) {
  if (--st->pin_depth > 0) return;
  st->active_epoch.store(ThreadState::kIdle, std::memory_order_seq_cst);
}

void OccEngine::ReadRecord(const Record* rec, Version** version,
                           uint64_t* tid) const {
  for (int spins = 0;; ++spins) {
    uint64_t t1 = rec->tid.load(std::memory_order_seq_cst);
    if ((t1 & kLockBit) == 0) {
      Version* v = rec->version.load(std::memory_order_seq_cst);
      uint64_t t2 = rec->tid.load(std::memory_order_seq_cst);
      if (t1 == t2) {
        // `v` was the current version at some instant between the two TID
        // loads (a TID can never repeat on a record: each thread's seq is
        // consumed once).  Versions are immutable once published and stay
        // allocated while this thread is pinned, so the caller copies from
        // `v` safely after we return.
        *version = v;
        *tid = t1;
        return;
      }
    }
    SpinPause(spins);
  }
}

void OccEngine::CollectRange(const std::string& start_key, size_t limit,
                             std::vector<TxScanEntry>* out) const {
  out->clear();
  if (limit == 0) return;
  // Records are never removed from the index, so the key views stay valid
  // after the shard locks drop; only version access needs the epoch pin.
  std::vector<const Record*> candidates;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [key, rec] : shard.map) {
      if (key >= std::string_view(start_key)) candidates.push_back(rec);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Record* a, const Record* b) { return a->key < b->key; });
  for (const Record* rec : candidates) {
    Version* v = nullptr;
    uint64_t tid = 0;
    ReadRecord(rec, &v, &tid);
    if (v == nullptr || v->tombstone) continue;
    out->push_back({rec->key, v->value});
    if (out->size() >= limit) break;
  }
}

void OccEngine::Retire(ThreadState* st, Version* version) {
  if (version == nullptr) return;
  // Stamp with the epoch observed AFTER the unlink: any reader still able
  // to hold this pointer pinned an epoch <= this value.
  uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
  st->retired.push_back({epoch, version});
  st->versions_retired.fetch_add(1, std::memory_order_relaxed);
}

uint64_t OccEngine::SafeReclaimEpoch() const {
  uint64_t safe = epoch_.load(std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (const auto& st : thread_states_) {
    uint64_t e = st->active_epoch.load(std::memory_order_seq_cst);
    if (e < safe) safe = e;
  }
  return safe;
}

void OccEngine::FlushRetired(ThreadState* st, bool force) {
  if (st->retired.empty()) return;
  if (!force && st->retired.size() < options_.retire_batch) return;
  uint64_t safe = SafeReclaimEpoch();
  size_t kept = 0;
  uint64_t freed = 0;
  for (Retired& r : st->retired) {
    if (r.epoch < safe) {
      delete r.version;
      ++freed;
    } else {
      st->retired[kept++] = r;
    }
  }
  st->retired.resize(kept);
  if (freed > 0) st->versions_freed.fetch_add(freed, std::memory_order_relaxed);
}

void OccEngine::AdvanceEpoch() {
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  epoch_advances_.fetch_add(1, std::memory_order_relaxed);
}

void OccEngine::TickerLoop() {
  // Sliced naps (<= 20 ms, same as the runner's paced sleeps) so engine
  // teardown never blocks a full occ.epoch_ms and a watchdogged suite run
  // shuts the ticker down promptly.
  constexpr uint64_t kMaxNapNs = 20'000'000;
  const uint64_t period_ns = options_.epoch_ms * 1'000'000ull;
  uint64_t next_tick = SteadyNanos() + period_ns;
  while (!stop_ticker_.load(std::memory_order_relaxed)) {
    uint64_t now = SteadyNanos();
    if (now >= next_tick) {
      AdvanceEpoch();
      next_tick = now + period_ns;
      continue;
    }
    uint64_t nap = std::min(next_tick - now, kMaxNapNs);
    std::this_thread::sleep_for(std::chrono::nanoseconds(nap));
  }
}

std::unique_ptr<Transaction> OccEngine::Begin() {
  return std::make_unique<OccTxn>(this, MyState());
}

Status OccEngine::LoadPut(const std::string& key, std::string_view value) {
  ThreadState* st = MyState();
  Pin(st);
  Record* rec = FindOrCreateRecord(key);
  uint64_t cur = rec->tid.load(std::memory_order_relaxed);
  for (int spins = 0;; ++spins) {
    if ((cur & kLockBit) == 0 &&
        rec->tid.compare_exchange_weak(cur, cur | kLockBit,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
      break;
    }
    SpinPause(spins);
    cur = rec->tid.load(std::memory_order_relaxed);
  }
  auto* nv = new Version{std::string(value), /*tombstone=*/false};
  Version* old = rec->version.exchange(nv, std::memory_order_seq_cst);
  uint64_t tid = MakeTid(epoch_.load(std::memory_order_seq_cst), ++st->seq,
                         st->thread_id);
  rec->tid.store(tid, std::memory_order_seq_cst);  // also clears the lock
  Retire(st, old);
  Unpin(st);
  FlushRetired(st, /*force=*/false);
  return Status::OK();
}

Status OccEngine::ReadCommitted(const std::string& key, std::string* value) {
  ThreadState* st = MyState();
  Pin(st);
  Record* rec = FindRecord(key);
  Status s = Status::OK();
  if (rec == nullptr) {
    s = Status::NotFound();
  } else {
    Version* v = nullptr;
    uint64_t tid = 0;
    ReadRecord(rec, &v, &tid);
    if (v == nullptr || v->tombstone) {
      s = Status::NotFound();
    } else if (value != nullptr) {
      *value = v->value;
    }
  }
  Unpin(st);
  return s;
}

Status OccEngine::ScanCommitted(const std::string& start_key, size_t limit,
                                std::vector<TxScanEntry>* out) {
  ThreadState* st = MyState();
  Pin(st);
  CollectRange(start_key, limit, out);
  Unpin(st);
  return Status::OK();
}

OccStats OccEngine::stats() const {
  OccStats s;
  s.epoch_advances = epoch_advances_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (const auto& st : thread_states_) {
    s.commits += st->commits.load(std::memory_order_relaxed);
    s.aborts += st->aborts.load(std::memory_order_relaxed);
    s.validation_fails += st->validation_fails.load(std::memory_order_relaxed);
    s.versions_retired += st->versions_retired.load(std::memory_order_relaxed);
    s.versions_freed += st->versions_freed.load(std::memory_order_relaxed);
  }
  return s;
}

bool OccEngine::DebugTidOf(const std::string& key, uint64_t* tid) const {
  Record* rec = FindRecord(key);
  if (rec == nullptr) return false;
  uint64_t cur = rec->tid.load(std::memory_order_seq_cst) & ~kLockBit;
  if (cur == 0) return false;
  *tid = cur;
  return true;
}

// --------------------------------- OccTxn ----------------------------------

OccTxn::OccTxn(OccEngine* engine, OccEngine::ThreadState* state)
    : engine_(engine), state_(state) {
  engine_->Pin(state_);
  start_epoch_ = state_->active_epoch.load(std::memory_order_relaxed);
}

OccTxn::~OccTxn() {
  if (!finished_) {
    state_->aborts.fetch_add(1, std::memory_order_relaxed);
    Finish();
  }
}

void OccTxn::Finish() {
  if (finished_) return;
  finished_ = true;
  engine_->Unpin(state_);
}

Status OccTxn::Read(const std::string& key, std::string* value) {
  if (finished_) return Status::InvalidArgument("transaction already finished");
  auto it = writes_.find(key);
  if (it != writes_.end()) {
    if (it->second.is_delete) return Status::NotFound();
    if (value != nullptr) *value = it->second.value;
    return Status::OK();
  }
  OccEngine::Record* rec = engine_->FindRecord(key);
  const bool validate = engine_->options_.read_validation;
  if (rec == nullptr) {
    if (validate) absent_reads_.push_back(key);
    return Status::NotFound();
  }
  OccEngine::Version* v = nullptr;
  uint64_t tid = 0;
  engine_->ReadRecord(rec, &v, &tid);
  if (validate) reads_.push_back({rec, tid});
  if (v == nullptr || v->tombstone) return Status::NotFound();
  if (value != nullptr) *value = v->value;
  return Status::OK();
}

Status OccTxn::Buffer(const std::string& key, std::string_view value,
                      bool is_delete) {
  if (finished_) return Status::InvalidArgument("transaction already finished");
  BufferedWrite& w = writes_[key];
  w.value.assign(value.data(), value.size());
  w.is_delete = is_delete;
  return Status::OK();
}

Status OccTxn::Write(const std::string& key, std::string_view value) {
  return Buffer(key, value, /*is_delete=*/false);
}

Status OccTxn::Delete(const std::string& key) {
  return Buffer(key, std::string_view(), /*is_delete=*/true);
}

Status OccTxn::Scan(const std::string& start_key, size_t limit,
                    std::vector<TxScanEntry>* out) {
  if (finished_) return Status::InvalidArgument("transaction already finished");
  // Committed scan, like the other substrates: buffered writes are not
  // merged and scan rows do not join the read set (no phantom protection).
  engine_->CollectRange(start_key, limit, out);
  return Status::OK();
}

Status OccTxn::Abort() {
  if (finished_) return Status::InvalidArgument("transaction already finished");
  state_->aborts.fetch_add(1, std::memory_order_relaxed);
  Finish();
  return Status::OK();
}

Status OccTxn::Commit() {
  if (finished_) return Status::InvalidArgument("transaction already finished");
  const bool validate = engine_->options_.read_validation;

  // Silo commit phase 1: materialise the (deduplicated) write set in global
  // key order and spin-lock each record.  Identical acquisition order on
  // every committer makes the locking deadlock-free.
  struct WriteOp {
    const std::string* key;
    BufferedWrite* write;
    OccEngine::Record* rec;
    uint64_t unlocked_tid;
  };
  std::vector<WriteOp> ops;
  ops.reserve(writes_.size());
  for (auto& [key, write] : writes_) {
    ops.push_back({&key, &write, nullptr, 0});
  }
  std::sort(ops.begin(), ops.end(),
            [](const WriteOp& a, const WriteOp& b) { return *a.key < *b.key; });
  for (WriteOp& op : ops) {
    op.rec = engine_->FindOrCreateRecord(*op.key);
    uint64_t cur = op.rec->tid.load(std::memory_order_relaxed);
    for (int spins = 0;; ++spins) {
      if ((cur & OccEngine::kLockBit) == 0 &&
          op.rec->tid.compare_exchange_weak(cur, cur | OccEngine::kLockBit,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
        op.unlocked_tid = cur;
        break;
      }
      SpinPause(spins);
      cur = op.rec->tid.load(std::memory_order_relaxed);
    }
  }

  // Phase 2: validate the read set against current TIDs.  Any record whose
  // TID moved since we read it — or that another committer holds locked —
  // has been (or is being) rewritten: abort with Conflict so the runner's
  // retry loop re-executes the whole transaction.
  Status verdict = Status::OK();
  if (validate) {
    for (const ReadEntry& entry : reads_) {
      uint64_t cur = entry.record->tid.load(std::memory_order_seq_cst);
      if ((cur & OccEngine::kLockBit) != 0) {
        if (writes_.find(entry.record->key) == writes_.end()) {
          verdict = Status::Conflict("occ: read record locked by another txn");
          break;
        }
        cur &= ~OccEngine::kLockBit;
      }
      if (cur != entry.tid) {
        verdict = Status::Conflict("occ: read record rewritten before commit");
        break;
      }
    }
    if (verdict.ok()) {
      for (const std::string& key : absent_reads_) {
        OccEngine::Record* rec = engine_->FindRecord(key);
        if (rec == nullptr) continue;
        OccEngine::Version* v = nullptr;
        if (writes_.find(key) != writes_.end()) {
          // We hold this record's lock (we may even have just created it),
          // so its fields are stable: no consistent-read loop needed.
          v = rec->version.load(std::memory_order_seq_cst);
        } else {
          // We hold our own write-set locks here, so we must not wait on
          // another committer (ReadRecord spins on the lock bit; two
          // committers waiting on each other's locked records would
          // deadlock, and this path is outside the ordered-acquisition
          // argument).  One-shot tid/version/tid snapshot instead: a
          // locked or unstable record is being rewritten right now, which
          // is a conflict for an absent read anyway.
          uint64_t t1 = rec->tid.load(std::memory_order_seq_cst);
          if ((t1 & OccEngine::kLockBit) != 0) {
            verdict =
                Status::Conflict("occ: absent-read record locked by another txn");
            break;
          }
          v = rec->version.load(std::memory_order_seq_cst);
          uint64_t t2 = rec->tid.load(std::memory_order_seq_cst);
          if (t1 != t2) {
            verdict = Status::Conflict(
                "occ: absent-read record rewritten during validation");
            break;
          }
        }
        if (v != nullptr && !v->tombstone) {
          verdict = Status::Conflict("occ: key created since absent read");
          break;
        }
      }
    }
  }
  if (!verdict.ok()) {
    for (WriteOp& op : ops) {
      op.rec->tid.store(op.unlocked_tid, std::memory_order_seq_cst);
    }
    state_->validation_fails.fetch_add(1, std::memory_order_relaxed);
    state_->aborts.fetch_add(1, std::memory_order_relaxed);
    Finish();
    return verdict;
  }

  // Phase 3: install under one fresh commit TID.  The serialization epoch
  // is read while every write-set lock is held, so epoch boundaries are
  // consistent with the serial order (Silo's group-commit invariant).
  if (!ops.empty()) {
    uint64_t epoch = engine_->epoch_.load(std::memory_order_seq_cst);
    uint64_t tid = OccEngine::MakeTid(epoch, ++state_->seq, state_->thread_id);
    for (WriteOp& op : ops) {
      auto* nv = new OccEngine::Version{std::move(op.write->value),
                                        op.write->is_delete};
      OccEngine::Version* old =
          op.rec->version.exchange(nv, std::memory_order_seq_cst);
      op.rec->tid.store(tid, std::memory_order_seq_cst);  // clears the lock
      engine_->Retire(state_, old);
    }
  }
  state_->commits.fetch_add(1, std::memory_order_relaxed);
  Finish();
  engine_->FlushRetired(state_, /*force=*/false);
  return Status::OK();
}

}  // namespace txn
}  // namespace ycsbt
