#include "txn/record_codec.h"

#include "common/coding.h"

namespace ycsbt {
namespace txn {

std::string EncodeTxRecord(const TxRecord& record) {
  std::string out;
  out.reserve(64 + record.value.size() + record.prev_value.size() +
              record.pending_value.size());
  PutFixed8(&out, 0xB1);  // format tag
  PutFixed64(&out, record.commit_ts);
  PutLengthPrefixed(&out, record.value);
  PutFixed8(&out, record.has_prev ? 1 : 0);
  PutFixed64(&out, record.prev_commit_ts);
  PutLengthPrefixed(&out, record.prev_value);
  PutLengthPrefixed(&out, record.lock_owner);
  PutFixed64(&out, record.lock_ts);
  PutLengthPrefixed(&out, record.pending_value);
  PutFixed8(&out, record.pending_delete ? 1 : 0);
  return out;
}

Status DecodeTxRecord(const std::string& data, TxRecord* record) {
  Decoder dec(data);
  uint8_t magic = 0, has_prev = 0, pending_delete = 0;
  if (!dec.GetFixed8(&magic) || magic != 0xB1) {
    return Status::Corruption("bad TxRecord tag");
  }
  if (!dec.GetFixed64(&record->commit_ts) ||
      !dec.GetLengthPrefixed(&record->value) || !dec.GetFixed8(&has_prev) ||
      !dec.GetFixed64(&record->prev_commit_ts) ||
      !dec.GetLengthPrefixed(&record->prev_value) ||
      !dec.GetLengthPrefixed(&record->lock_owner) ||
      !dec.GetFixed64(&record->lock_ts) ||
      !dec.GetLengthPrefixed(&record->pending_value) ||
      !dec.GetFixed8(&pending_delete)) {
    return Status::Corruption("truncated TxRecord");
  }
  if (!dec.Empty()) return Status::Corruption("trailing bytes in TxRecord");
  record->has_prev = has_prev != 0;
  record->pending_delete = pending_delete != 0;
  return Status::OK();
}

std::string EncodeTsr(const TsrRecord& tsr) {
  std::string out;
  PutFixed8(&out, 0xB2);  // format tag
  PutFixed8(&out, static_cast<uint8_t>(tsr.state));
  PutFixed64(&out, tsr.commit_ts);
  return out;
}

Status DecodeTsr(const std::string& data, TsrRecord* tsr) {
  Decoder dec(data);
  uint8_t magic = 0, state = 0;
  if (!dec.GetFixed8(&magic) || magic != 0xB2) {
    return Status::Corruption("bad TSR tag");
  }
  if (!dec.GetFixed8(&state) || !dec.GetFixed64(&tsr->commit_ts)) {
    return Status::Corruption("truncated TSR");
  }
  if (state != static_cast<uint8_t>(TsrRecord::State::kCommitted) &&
      state != static_cast<uint8_t>(TsrRecord::State::kAborted)) {
    return Status::Corruption("bad TSR state");
  }
  tsr->state = static_cast<TsrRecord::State>(state);
  return Status::OK();
}

}  // namespace txn
}  // namespace ycsbt
