#include "txn/local_2pl.h"

#include <chrono>

namespace ycsbt {
namespace txn {

// ---------------------------------------------------------------------------
// LockManager
// ---------------------------------------------------------------------------

Status LockManager::AcquireShared(uint64_t txn, const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);
  Entry& entry = table_[key];
  if (entry.exclusive_owner == txn) return Status::OK();  // already X-held
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us_);
  ++entry.waiters;
  bool ok = cv_.wait_until(lock, deadline, [&] {
    return table_[key].exclusive_owner == 0;
  });
  Entry& e = table_[key];
  --e.waiters;
  if (!ok) return Status::Busy("S-lock timeout on " + key);
  e.sharers.insert(txn);
  return Status::OK();
}

Status LockManager::AcquireExclusive(uint64_t txn, const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);
  Entry& entry = table_[key];
  if (entry.exclusive_owner == txn) return Status::OK();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us_);
  ++entry.waiters;
  bool ok = cv_.wait_until(lock, deadline, [&] {
    Entry& e = table_[key];
    bool only_self_shares =
        e.sharers.empty() || (e.sharers.size() == 1 && e.sharers.count(txn) == 1);
    return e.exclusive_owner == 0 && only_self_shares;
  });
  Entry& e = table_[key];
  --e.waiters;
  if (!ok) return Status::Busy("X-lock timeout on " + key);
  e.sharers.erase(txn);  // upgrade consumes the shared hold
  e.exclusive_owner = txn;
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn, const std::set<std::string>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& key : keys) {
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    Entry& e = it->second;
    e.sharers.erase(txn);
    if (e.exclusive_owner == txn) e.exclusive_owner = 0;
    if (e.sharers.empty() && e.exclusive_owner == 0 && e.waiters == 0) {
      table_.erase(it);
    }
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Local2PLTxn
// ---------------------------------------------------------------------------

/// One strict-2PL transaction: writes apply immediately under exclusive
/// locks, an undo log restores the pre-image on abort, and every lock is
/// held until the outcome is decided.
class Local2PLTxn : public Transaction {
 public:
  Local2PLTxn(Local2PLStore* store, uint64_t id)
      : store_(store), id_(id), start_ts_(id) {}

  ~Local2PLTxn() override {
    if (state_ == State::kActive) Abort();
  }

  uint64_t start_ts() const override { return start_ts_; }

  Status Read(const std::string& key, std::string* value) override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    Status s = store_->locks_.AcquireShared(id_, key);
    if (!s.ok()) {
      store_->lock_busy_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
    locked_.insert(key);
    return store_->base_->Get(key, value);
  }

  Status Write(const std::string& key, std::string_view value) override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    Status s = Prepare(key);
    if (!s.ok()) return s;
    return store_->base_->Put(key, value);
  }

  Status Delete(const std::string& key) override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    Status s = Prepare(key);
    if (!s.ok()) return s;
    Status d = store_->base_->Delete(key);
    return d.IsNotFound() ? Status::OK() : d;
  }

  Status Scan(const std::string& start_key, size_t limit,
              std::vector<TxScanEntry>* out) override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    std::vector<kv::ScanEntry> raw;
    Status s = store_->base_->Scan(start_key, limit, &raw);
    if (!s.ok()) return s;
    out->clear();
    out->reserve(raw.size());
    for (auto& entry : raw) {
      out->push_back(TxScanEntry{std::move(entry.key), std::move(entry.value)});
    }
    return Status::OK();
  }

  Status Commit() override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    store_->locks_.ReleaseAll(id_, locked_);
    state_ = State::kCommitted;
    store_->commits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Abort() override {
    if (state_ != State::kActive) return Status::InvalidArgument("txn finished");
    // Undo in reverse order.
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      if (it->existed) {
        store_->base_->Put(it->key, it->old_value);
      } else {
        store_->base_->Delete(it->key);  // NotFound is fine
      }
    }
    store_->locks_.ReleaseAll(id_, locked_);
    state_ = State::kAborted;
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

 private:
  enum class State { kActive, kCommitted, kAborted };

  struct UndoEntry {
    std::string key;
    bool existed = false;
    std::string old_value;
  };

  /// Takes the exclusive lock and snapshots the pre-image for undo.
  Status Prepare(const std::string& key) {
    Status s = store_->locks_.AcquireExclusive(id_, key);
    if (!s.ok()) {
      store_->lock_busy_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
    locked_.insert(key);
    UndoEntry undo;
    undo.key = key;
    std::string old_value;
    Status g = store_->base_->Get(key, &old_value);
    if (g.ok()) {
      undo.existed = true;
      undo.old_value = std::move(old_value);
    } else if (!g.IsNotFound()) {
      return g;
    }
    undo_.push_back(std::move(undo));
    return Status::OK();
  }

  Local2PLStore* store_;
  const uint64_t id_;
  const uint64_t start_ts_;
  State state_ = State::kActive;
  std::set<std::string> locked_;
  std::vector<UndoEntry> undo_;
};

// ---------------------------------------------------------------------------
// Local2PLStore
// ---------------------------------------------------------------------------

Local2PLStore::Local2PLStore(std::shared_ptr<kv::Store> base,
                             Local2PLOptions options)
    : base_(std::move(base)),
      options_(options),
      locks_(options.lock_timeout_us) {}

std::unique_ptr<Transaction> Local2PLStore::Begin() {
  return std::make_unique<Local2PLTxn>(
      this, txn_counter_.fetch_add(1, std::memory_order_relaxed));
}

Status Local2PLStore::LoadPut(const std::string& key, std::string_view value) {
  return base_->Put(key, value);
}

Status Local2PLStore::ReadCommitted(const std::string& key, std::string* value) {
  return base_->Get(key, value);
}

Status Local2PLStore::ScanCommitted(const std::string& start_key, size_t limit,
                                    std::vector<TxScanEntry>* out) {
  std::vector<kv::ScanEntry> raw;
  Status s = base_->Scan(start_key, limit, &raw);
  if (!s.ok()) return s;
  out->clear();
  out->reserve(raw.size());
  for (auto& entry : raw) {
    out->push_back(TxScanEntry{std::move(entry.key), std::move(entry.value)});
  }
  return Status::OK();
}

TxnStats Local2PLStore::stats() const {
  TxnStats s;
  s.commits = commits_.load();
  s.aborts = aborts_.load();
  s.lock_busy = lock_busy_.load();
  return s;
}

}  // namespace txn
}  // namespace ycsbt
