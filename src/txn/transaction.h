#ifndef YCSBT_TXN_TRANSACTION_H_
#define YCSBT_TXN_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "kv/store.h"

namespace ycsbt {

class RpcExecutor;

namespace txn {

/// Isolation level of the client-coordinated library.
enum class Isolation {
  /// Snapshot isolation: reads at start_ts, first-committer-wins on writes
  /// (the level Percolator and the authors' library provide).
  kSnapshot,
  /// Snapshot isolation plus commit-time read-set validation (OCC style),
  /// which additionally rejects read-write conflicts such as write skew.
  kSerializable,
};

/// Tuning knobs of the transaction protocol.
struct TxnOptions {
  Isolation isolation = Isolation::kSnapshot;

  /// Wall-clock age after which another client's lock is presumed abandoned
  /// and may be recovered (rolled forward or back via its TSR).
  uint64_t lock_lease_us = 2'000'000;

  /// Bounded politeness: how many times to re-check a *fresh* foreign lock
  /// before giving up with Aborted.
  int lock_wait_retries = 5;
  uint64_t lock_wait_delay_us = 2'000;

  /// Decorrelated jitter on the lock-wait sleep (see
  /// `DecorrelatedJitterUs`): a fixed delay synchronizes contending clients
  /// into convoys that re-collide on every probe.  The per-transaction RNG
  /// is seeded from `seed` and the transaction number, so same-seed
  /// single-threaded runs replay identical sleeps.
  bool lock_wait_jitter = true;
  /// Cap on one jittered lock-wait sleep (8x the base delay by default;
  /// adjusted alongside `lock_wait_delay_us` when it is configured).
  uint64_t lock_wait_max_delay_us = 16'000;

  /// Determinism seed for per-transaction randomness (lock-wait jitter).
  uint64_t seed = 0;

  /// How `AcquireLocks` orders its lock puts (DESIGN.md §10):
  ///  - `kOrdered` (default): prefetch all write-set records with one
  ///    `MultiGet`, then CAS the lock puts sequentially in global key order
  ///    — the classical deadlock-freedom argument (every client acquires in
  ///    the same total order, so no wait cycle can form).
  ///  - `kNoWait`: lock puts fan out fully in parallel; ANY busy lock or
  ///    lost CAS releases everything acquired and surfaces `Conflict` to the
  ///    retry loop.  Deadlock-free by construction (nobody ever holds-and-
  ///    waits), at the cost of more aborts under contention.
  enum class LockAcquireMode { kOrdered, kNoWait };
  LockAcquireMode lock_acquire_mode = LockAcquireMode::kOrdered;

  /// Shared fan-out executor (`txn.fanout_threads`).  When set, the
  /// per-key-independent commit phases — write-set prefetch, validation
  /// re-reads, roll-forward, lock release — issue batched store ops instead
  /// of one RPC at a time.  Null = the sequential seed behaviour.
  std::shared_ptr<RpcExecutor> executor = nullptr;

  /// Key prefix for transaction status records.  It sorts above every user
  /// key (user scans never collide with it); scans from the library filter
  /// this prefix out regardless.
  std::string tsr_prefix = "\xFF__tsr__/";

  /// Remove the TSR once all locks are rolled forward (leave it for
  /// debugging when false; recovery treats a surviving committed TSR
  /// correctly either way).
  bool cleanup_tsr = true;

  /// When non-null, the commit pipeline consults this at each `CrashPoint`
  /// and, if it fires, abandons the transaction with all store-side state
  /// (locks, TSR) left in place — exactly what a client crash leaves behind
  /// for `RecoverLock` roll-forward/roll-back to repair.  Borrowed pointer;
  /// the owner (the DB factory's fault-injection layer) must outlive the
  /// store.
  CrashInjector* crash_injector = nullptr;
};

/// One result row of a transactional scan.
struct TxScanEntry {
  std::string key;
  std::string value;
};

/// One result row of a `Transaction::MultiRead` — each key succeeds or fails
/// independently (a missing key is a per-row NotFound, never a batch error).
struct TxReadResult {
  Status status;
  std::string value;
};

/// A single transaction handle.  Not thread-safe; one client thread each
/// (the YCSB+T client model).  Obtain from `TransactionalKV::Begin()`.
///
/// Lifecycle: any sequence of Read/Write/Delete/Scan, then exactly one of
/// Commit or Abort.  After either, further operations return InvalidArgument.
class Transaction {
 public:
  virtual ~Transaction() = default;

  /// Snapshot timestamp of this transaction.
  virtual uint64_t start_ts() const = 0;

  /// Reads `key` as of start_ts (sees this transaction's own writes).
  virtual Status Read(const std::string& key, std::string* value) = 0;

  /// Reads every key of `keys` as of start_ts, filling `results` (resized to
  /// match) with one independent per-key outcome.  Every row joins the read
  /// set exactly as a sequence of `Read` calls would; the batch form only
  /// lets implementations prefetch the records with one `kv::MultiGet` so
  /// the round trips overlap (DESIGN.md §10).  The default is the
  /// semantically-equivalent sequential loop.
  virtual void MultiRead(const std::vector<std::string>& keys,
                         std::vector<TxReadResult>* results) {
    results->clear();
    results->resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*results)[i].status = Read(keys[i], &(*results)[i].value);
    }
  }

  /// Buffers a write of `key`; becomes visible to others only after Commit.
  virtual Status Write(const std::string& key, std::string_view value) = 0;

  /// Buffers a delete of `key`.
  virtual Status Delete(const std::string& key) = 0;

  /// Ordered scan of committed data as of start_ts.  Buffered writes of this
  /// transaction are NOT merged into scan results.
  virtual Status Scan(const std::string& start_key, size_t limit,
                      std::vector<TxScanEntry>* out) = 0;

  /// Two-phase client-coordinated commit.  Returns Aborted/Conflict when the
  /// transaction lost a race; the caller may retry the whole transaction.
  virtual Status Commit() = 0;

  /// Rolls back all buffered writes and releases any acquired locks.
  virtual Status Abort() = 0;
};

/// Factory + non-transactional access of a transactional key-value store.
class TransactionalKV {
 public:
  virtual ~TransactionalKV() = default;

  /// Starts a new transaction.
  virtual std::unique_ptr<Transaction> Begin() = 0;

  /// Non-transactional (auto-committed) helpers, used by the load phase and
  /// the Tier-6 validation stage.
  virtual Status LoadPut(const std::string& key, std::string_view value) = 0;
  virtual Status ReadCommitted(const std::string& key, std::string* value) = 0;
  virtual Status ScanCommitted(const std::string& start_key, size_t limit,
                               std::vector<TxScanEntry>* out) = 0;
};

/// Counters exposed by `ClientTxnStore` for benches and tests.
struct TxnStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t conflicts = 0;       ///< first-committer-wins losses
  uint64_t lock_busy = 0;       ///< gave up waiting on a fresh foreign lock
  uint64_t roll_forwards = 0;   ///< recovered another txn's committed locks
  uint64_t roll_backs = 0;      ///< recovered another txn's abandoned locks
  uint64_t validation_fails = 0;///< serializable-mode read-set failures
  uint64_t reader_aborts = 0;   ///< undecided owners aborted by blocked readers
  uint64_t injected_crashes = 0;///< commits abandoned by the fault injector
  uint64_t ambiguous_commits = 0;///< TSR-write replies lost, settled by re-read
};

}  // namespace txn
}  // namespace ycsbt

#endif  // YCSBT_TXN_TRANSACTION_H_
