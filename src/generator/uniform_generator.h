#ifndef YCSBT_GENERATOR_UNIFORM_GENERATOR_H_
#define YCSBT_GENERATOR_UNIFORM_GENERATOR_H_

#include <atomic>

#include "generator/generator.h"

namespace ycsbt {

/// Uniform integers in the inclusive interval [lower, upper].
class UniformLongGenerator : public IntegerGenerator {
 public:
  UniformLongGenerator(uint64_t lower, uint64_t upper)
      : lower_(lower), upper_(upper), last_(lower) {}

  uint64_t Next(Random64& rng) override {
    uint64_t v = lower_ + rng.Uniform(upper_ - lower_ + 1);
    last_.store(v, std::memory_order_relaxed);
    return v;
  }

  uint64_t Last() const override { return last_.load(std::memory_order_relaxed); }

 private:
  uint64_t lower_;
  uint64_t upper_;
  std::atomic<uint64_t> last_;
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_UNIFORM_GENERATOR_H_
