#ifndef YCSBT_GENERATOR_SKEWED_LATEST_GENERATOR_H_
#define YCSBT_GENERATOR_SKEWED_LATEST_GENERATOR_H_

#include <atomic>

#include "generator/zipfian_generator.h"

namespace ycsbt {

/// Zipfian distribution anchored at the most recently inserted key: the
/// newest key is the most popular ("read latest" workloads, YCSB workload D).
///
/// The basis counter is owned by the workload (it is the insert key
/// sequence); this generator draws an offset from the current maximum.
class SkewedLatestGenerator : public IntegerGenerator {
 public:
  explicit SkewedLatestGenerator(IntegerGenerator* basis,
                                 double theta = ZipfianGenerator::kDefaultTheta)
      : basis_(basis), zipfian_(0, 0, theta), last_(0) {
    // Initial span from the basis counter's current position.
  }

  uint64_t Next(Random64& rng) override {
    uint64_t max = basis_->Last();
    uint64_t offset = zipfian_.Next(rng, max + 1);
    uint64_t v = max - offset;
    last_.store(v, std::memory_order_relaxed);
    return v;
  }

  uint64_t Last() const override { return last_.load(std::memory_order_relaxed); }

 private:
  IntegerGenerator* basis_;  // not owned
  ZipfianGenerator zipfian_;
  std::atomic<uint64_t> last_;
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_SKEWED_LATEST_GENERATOR_H_
