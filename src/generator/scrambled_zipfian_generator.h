#ifndef YCSBT_GENERATOR_SCRAMBLED_ZIPFIAN_GENERATOR_H_
#define YCSBT_GENERATOR_SCRAMBLED_ZIPFIAN_GENERATOR_H_

#include <atomic>
#include <memory>

#include "generator/zipfian_generator.h"

namespace ycsbt {

/// Zipfian popularity with the hot items scattered across the key space.
///
/// A plain ZipfianGenerator makes the *lowest* key numbers hottest, which
/// would put all the contention on the first data pages.  YCSB's scrambled
/// variant draws a zipfian rank from a large fixed universe and hashes it
/// (FNV-64) back into [min, max], so the hot set is spread uniformly over the
/// key space while per-key popularity stays zipfian.  This is the actual
/// distribution behind `requestdistribution=zipfian` in YCSB and in the
/// paper's CEW properties file.
class ScrambledZipfianGenerator : public IntegerGenerator {
 public:
  /// Skew is fixed at theta = 0.99 because the zeta constant for the 10^10
  /// universe is precomputed (as in YCSB).
  ScrambledZipfianGenerator(uint64_t min, uint64_t max)
      : min_(min),
        item_count_(max - min + 1),
        // Fixed large universe, like YCSB's ITEM_COUNT, with YCSB's
        // precomputed zeta constant (computing zeta(10^10) is infeasible).
        base_(0, kUniverse - 1, ZipfianGenerator::kDefaultTheta, kZetan),
        last_(min) {}

  explicit ScrambledZipfianGenerator(uint64_t items)
      : ScrambledZipfianGenerator(0, items - 1) {}

  uint64_t Next(Random64& rng) override {
    uint64_t rank = base_.Next(rng);
    uint64_t v = min_ + FNVHash64(rank) % item_count_;
    last_.store(v, std::memory_order_relaxed);
    return v;
  }

  uint64_t Last() const override { return last_.load(std::memory_order_relaxed); }

 private:
  static constexpr uint64_t kUniverse = 10000000000ull;
  /// zeta(kUniverse, 0.99), the constant YCSB ships for its ITEM_COUNT.
  static constexpr double kZetan = 26.46902820178302;

  const uint64_t min_;
  const uint64_t item_count_;
  ZipfianGenerator base_;
  std::atomic<uint64_t> last_;
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_SCRAMBLED_ZIPFIAN_GENERATOR_H_
