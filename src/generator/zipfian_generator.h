#ifndef YCSBT_GENERATOR_ZIPFIAN_GENERATOR_H_
#define YCSBT_GENERATOR_ZIPFIAN_GENERATOR_H_

#include <atomic>
#include <mutex>

#include "generator/generator.h"

namespace ycsbt {

/// Zipfian-distributed integers in [min, max], favouring low values.
///
/// Implements the incremental algorithm of Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases" (SIGMOD'94), the same algorithm YCSB
/// ports.  The zeta normalisation constant is computed once for the initial
/// item count and extended incrementally (under a mutex) when the item count
/// grows, e.g. while inserts are being performed.
///
/// The paper's CEW runs use `requestdistribution=zipfian` over 10,000
/// records with the YCSB default skew theta = 0.99; the induced hot keys are
/// what makes concurrent read-modify-write transactions collide and produce
/// the anomalies of Figure 4.
class ZipfianGenerator : public IntegerGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  /// Distribution over [min, max] inclusive with skew `theta` in (0, 1).
  ZipfianGenerator(uint64_t min, uint64_t max, double theta = kDefaultTheta);

  /// Same, with a precomputed zeta(n, theta) — computing zeta is O(n), so
  /// huge universes (ScrambledZipfian's 10^10) must pass the known constant.
  ZipfianGenerator(uint64_t min, uint64_t max, double theta, double zetan);

  /// Distribution over [0, items-1].
  explicit ZipfianGenerator(uint64_t items)
      : ZipfianGenerator(0, items - 1, kDefaultTheta) {}

  /// Draws from the configured item count.
  uint64_t Next(Random64& rng) override { return Next(rng, item_count()); }

  /// Draws from the first `item_count` items (>= the constructed count grows
  /// the cached zeta; smaller counts are served with a freshly scaled zeta).
  uint64_t Next(Random64& rng, uint64_t item_count);

  uint64_t Last() const override { return last_.load(std::memory_order_relaxed); }

  uint64_t item_count() const { return count_.load(std::memory_order_relaxed); }
  double theta() const { return theta_; }

  /// Partial harmonic-like sum zeta(n, theta) = sum_{i=1..n} 1/i^theta.
  /// Exposed for tests; O(n).
  static double Zeta(uint64_t n, double theta);

  /// Incremental extension: zeta(prev_n..n) added onto `prev_sum`.
  static double ZetaIncremental(uint64_t prev_n, uint64_t n, double prev_sum,
                                double theta);

 private:
  double ZetaForCount(uint64_t n);

  const uint64_t min_;
  const double theta_;
  const double zeta2theta_;
  const double alpha_;

  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> last_;

  std::mutex zeta_mu_;               // serialises zeta extension
  std::atomic<uint64_t> zeta_n_;     // item count zetan_ corresponds to
  std::atomic<double> zetan_;        // cached zeta(zeta_n_, theta_)
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_ZIPFIAN_GENERATOR_H_
