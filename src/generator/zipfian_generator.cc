#include "generator/zipfian_generator.h"

#include <cmath>

namespace ycsbt {

ZipfianGenerator::ZipfianGenerator(uint64_t min, uint64_t max, double theta)
    : ZipfianGenerator(min, max, theta, Zeta(max - min + 1, theta)) {}

ZipfianGenerator::ZipfianGenerator(uint64_t min, uint64_t max, double theta,
                                   double zetan)
    : min_(min),
      theta_(theta),
      zeta2theta_(Zeta(2, theta)),
      alpha_(1.0 / (1.0 - theta)),
      count_(max - min + 1),
      last_(min),
      zeta_n_(max - min + 1),
      zetan_(zetan) {}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  return ZetaIncremental(0, n, 0.0, theta);
}

double ZipfianGenerator::ZetaIncremental(uint64_t prev_n, uint64_t n,
                                         double prev_sum, double theta) {
  double sum = prev_sum;
  for (uint64_t i = prev_n + 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

double ZipfianGenerator::ZetaForCount(uint64_t n) {
  std::lock_guard<std::mutex> lock(zeta_mu_);
  uint64_t cached_n = zeta_n_.load(std::memory_order_relaxed);
  double cached = zetan_.load(std::memory_order_relaxed);
  if (n == cached_n) return cached;
  double zetan;
  if (n > cached_n) {
    zetan = ZetaIncremental(cached_n, n, cached, theta_);
  } else {
    // Shrinking item counts are rare (delete-heavy workloads); recompute.
    zetan = Zeta(n, theta_);
  }
  zetan_.store(zetan, std::memory_order_relaxed);
  zeta_n_.store(n, std::memory_order_release);  // publish zetan_ with the count
  return zetan;
}

uint64_t ZipfianGenerator::Next(Random64& rng, uint64_t item_count) {
  if (item_count == 0) return min_;
  double zetan;
  if (item_count == zeta_n_.load(std::memory_order_acquire)) {
    // Fast path: cached zeta matches the requested count, no locking needed.
    zetan = zetan_.load(std::memory_order_relaxed);
  } else {
    zetan = ZetaForCount(item_count);
    count_.store(item_count, std::memory_order_relaxed);
  }

  double u = rng.NextDouble();
  double uz = u * zetan;
  uint64_t result;
  if (uz < 1.0) {
    result = min_;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    result = min_ + 1;
  } else {
    double eta =
        (1.0 - std::pow(2.0 / static_cast<double>(item_count), 1.0 - theta_)) /
        (1.0 - zeta2theta_ / zetan);
    result = min_ + static_cast<uint64_t>(
                        static_cast<double>(item_count) *
                        std::pow(eta * u - eta + 1.0, alpha_));
    if (result > min_ + item_count - 1) result = min_ + item_count - 1;
  }
  last_.store(result, std::memory_order_relaxed);
  return result;
}

}  // namespace ycsbt
