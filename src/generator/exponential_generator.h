#ifndef YCSBT_GENERATOR_EXPONENTIAL_GENERATOR_H_
#define YCSBT_GENERATOR_EXPONENTIAL_GENERATOR_H_

#include <atomic>
#include <cmath>

#include "generator/generator.h"

namespace ycsbt {

/// Exponentially distributed integers: small values are most likely, with
/// the given `percentile` of the mass falling inside `range`
/// (YCSB `requestdistribution=exponential`).
class ExponentialGenerator : public IntegerGenerator {
 public:
  /// YCSB defaults: 95% of operations inside the most recent 1/10th.
  static constexpr double kDefaultPercentile = 95.0;

  ExponentialGenerator(double percentile, double range)
      : gamma_(-std::log(1.0 - percentile / 100.0) / range), last_(0) {}

  /// Directly parameterised by the rate gamma.
  explicit ExponentialGenerator(double gamma) : gamma_(gamma), last_(0) {}

  uint64_t Next(Random64& rng) override {
    double u = rng.NextDouble();
    if (u <= 0.0) u = 1e-12;
    uint64_t v = static_cast<uint64_t>(-std::log(u) / gamma_);
    last_.store(v, std::memory_order_relaxed);
    return v;
  }

  uint64_t Last() const override { return last_.load(std::memory_order_relaxed); }

  double gamma() const { return gamma_; }

 private:
  const double gamma_;
  std::atomic<uint64_t> last_;
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_EXPONENTIAL_GENERATOR_H_
