#ifndef YCSBT_GENERATOR_HOTSPOT_GENERATOR_H_
#define YCSBT_GENERATOR_HOTSPOT_GENERATOR_H_

#include <atomic>

#include "generator/generator.h"

namespace ycsbt {

/// Hotspot distribution: a fraction of operations target a small "hot" prefix
/// of the interval, the rest are uniform over the cold remainder
/// (YCSB `requestdistribution=hotspot`).
class HotspotIntegerGenerator : public IntegerGenerator {
 public:
  /// @param lower,upper inclusive key-number interval.
  /// @param hot_set_fraction fraction of the interval that is hot, in [0,1].
  /// @param hot_opn_fraction fraction of operations hitting the hot set.
  HotspotIntegerGenerator(uint64_t lower, uint64_t upper, double hot_set_fraction,
                          double hot_opn_fraction)
      : lower_(lower),
        upper_(upper),
        hot_opn_fraction_(Clamp01(hot_opn_fraction)),
        hot_interval_(static_cast<uint64_t>(
            static_cast<double>(upper - lower + 1) * Clamp01(hot_set_fraction))),
        cold_interval_(upper - lower + 1 - hot_interval_),
        last_(lower) {}

  uint64_t Next(Random64& rng) override {
    uint64_t v;
    if (hot_interval_ > 0 && rng.NextDouble() < hot_opn_fraction_) {
      v = lower_ + rng.Uniform(hot_interval_);
    } else if (cold_interval_ > 0) {
      v = lower_ + hot_interval_ + rng.Uniform(cold_interval_);
    } else {
      v = lower_ + rng.Uniform(hot_interval_);
    }
    last_.store(v, std::memory_order_relaxed);
    return v;
  }

  uint64_t Last() const override { return last_.load(std::memory_order_relaxed); }

  uint64_t hot_interval() const { return hot_interval_; }

 private:
  static double Clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

  const uint64_t lower_;
  const uint64_t upper_;
  const double hot_opn_fraction_;
  const uint64_t hot_interval_;
  const uint64_t cold_interval_;
  std::atomic<uint64_t> last_;
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_HOTSPOT_GENERATOR_H_
