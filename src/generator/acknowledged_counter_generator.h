#ifndef YCSBT_GENERATOR_ACKNOWLEDGED_COUNTER_GENERATOR_H_
#define YCSBT_GENERATOR_ACKNOWLEDGED_COUNTER_GENERATOR_H_

#include <mutex>
#include <vector>

#include "generator/generator.h"

namespace ycsbt {

/// Counter whose `Last()` only advances once values are acknowledged.
///
/// During the transaction phase, insert operations draw new key numbers from
/// this counter, but a key must not be *read* by other threads until its
/// insert has actually completed — otherwise read-latest workloads would
/// request keys that are still in flight.  YCSB solves this with a sliding
/// acknowledgement window; this is a faithful port.
class AcknowledgedCounterGenerator : public CounterGenerator {
 public:
  explicit AcknowledgedCounterGenerator(uint64_t start)
      : CounterGenerator(start), limit_(start - 1), window_(kWindowSize, false) {}

  /// Highest key number k such that every value <= k has been acknowledged.
  uint64_t Last() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return limit_;
  }

  /// Marks `value` (previously returned by Next) as durably inserted.
  void Acknowledge(uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    window_[value % kWindowSize] = true;
    // Advance the limit over the contiguous acknowledged prefix.
    while (window_[(limit_ + 1) % kWindowSize]) {
      ++limit_;
      window_[limit_ % kWindowSize] = false;
    }
  }

 private:
  static constexpr size_t kWindowSize = 1 << 16;

  mutable std::mutex mu_;
  uint64_t limit_;
  std::vector<bool> window_;
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_ACKNOWLEDGED_COUNTER_GENERATOR_H_
