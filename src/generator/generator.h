#ifndef YCSBT_GENERATOR_GENERATOR_H_
#define YCSBT_GENERATOR_GENERATOR_H_

#include <atomic>
#include <cstdint>

#include "common/random.h"

namespace ycsbt {

/// Base interface of the YCSB value-generator suite.
///
/// Generators pick key numbers, operation types, field sizes and scan lengths
/// for the workloads.  Unlike the Java original (which hides a thread-local
/// RNG), `Next` takes the calling thread's `Random64` explicitly, which makes
/// every workload run replayable from its seeds.
///
/// Implementations must be safe for concurrent `Next` calls from multiple
/// threads (client threads share one workload object, as in YCSB).
template <typename T>
class Generator {
 public:
  virtual ~Generator() = default;

  /// Produces the next value.
  virtual T Next(Random64& rng) = 0;

  /// The most recent value produced by any thread (YCSB `lastValue`).
  /// Only generators that feed other generators (e.g. counters feeding
  /// SkewedLatest) need meaningful semantics here.
  virtual T Last() const = 0;
};

using IntegerGenerator = Generator<uint64_t>;

/// Always returns the same value.
template <typename T>
class ConstantGenerator : public Generator<T> {
 public:
  explicit ConstantGenerator(T value) : value_(value) {}

  T Next(Random64& /*rng*/) override { return value_; }
  T Last() const override { return value_; }

 private:
  T value_;
};

/// Monotonically increasing counter; generates the key sequence of the load
/// phase and new keys for inserts.
class CounterGenerator : public IntegerGenerator {
 public:
  explicit CounterGenerator(uint64_t start) : counter_(start) {}

  uint64_t Next(Random64& /*rng*/) override {
    return counter_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Last() const override {
    return counter_.load(std::memory_order_relaxed) - 1;
  }

  /// Resets the counter (between load and run phases in tests).
  void Set(uint64_t value) { counter_.store(value, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> counter_;
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_GENERATOR_H_
