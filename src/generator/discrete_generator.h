#ifndef YCSBT_GENERATOR_DISCRETE_GENERATOR_H_
#define YCSBT_GENERATOR_DISCRETE_GENERATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "generator/generator.h"

namespace ycsbt {

/// Weighted choice among a fixed set of values; YCSB uses it as the
/// "operation chooser" that realises the read/update/insert/scan/RMW
/// proportions from the workload properties file.
template <typename T>
class DiscreteGenerator : public Generator<T> {
 public:
  DiscreteGenerator() = default;

  /// Adds a value with the given weight (weights need not sum to 1).
  void AddValue(T value, double weight) {
    values_.emplace_back(std::move(value), weight);
    total_weight_ += weight;
  }

  T Next(Random64& rng) override {
    double target = rng.NextDouble() * total_weight_;
    double acc = 0.0;
    for (const auto& [value, weight] : values_) {
      acc += weight;
      if (target < acc) return value;
    }
    return values_.back().first;  // floating-point edge
  }

  /// Not meaningful for a choice generator; returns the first value.
  T Last() const override { return values_.front().first; }

  bool Empty() const { return values_.empty(); }
  double total_weight() const { return total_weight_; }

 private:
  std::vector<std::pair<T, double>> values_;
  double total_weight_ = 0.0;
};

using OperationChooser = DiscreteGenerator<std::string>;

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_DISCRETE_GENERATOR_H_
