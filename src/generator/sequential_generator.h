#ifndef YCSBT_GENERATOR_SEQUENTIAL_GENERATOR_H_
#define YCSBT_GENERATOR_SEQUENTIAL_GENERATOR_H_

#include <atomic>

#include "generator/generator.h"

namespace ycsbt {

/// Cycles through [lower, upper] in order, wrapping around; used for
/// sequential-scan style request patterns (YCSB `requestdistribution=sequential`).
class SequentialGenerator : public IntegerGenerator {
 public:
  SequentialGenerator(uint64_t lower, uint64_t upper)
      : lower_(lower), interval_(upper - lower + 1), counter_(0) {}

  uint64_t Next(Random64& /*rng*/) override {
    uint64_t c = counter_.fetch_add(1, std::memory_order_relaxed);
    return lower_ + c % interval_;
  }

  uint64_t Last() const override {
    uint64_t c = counter_.load(std::memory_order_relaxed);
    return lower_ + (c == 0 ? 0 : (c - 1) % interval_);
  }

 private:
  const uint64_t lower_;
  const uint64_t interval_;
  std::atomic<uint64_t> counter_;
};

}  // namespace ycsbt

#endif  // YCSBT_GENERATOR_SEQUENTIAL_GENERATOR_H_
