#include "kv/wal.h"

#include <unistd.h>

#include <cstring>
#include <vector>

#include "kv/crc32.h"

namespace ycsbt {
namespace kv {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// kind(1) + etag(8) + key_len(4) + value_len(4)
constexpr size_t kHeaderAfterCrc = 1 + 8 + 4 + 4;

std::string EncodeBody(const WalRecord& record) {
  std::string body;
  body.reserve(kHeaderAfterCrc + record.key.size() + record.value.size());
  body.push_back(static_cast<char>(record.kind));
  PutU64(&body, record.etag);
  PutU32(&body, static_cast<uint32_t>(record.key.size()));
  PutU32(&body, static_cast<uint32_t>(record.value.size()));
  body.append(record.key);
  body.append(record.value);
  return body;
}

}  // namespace

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::InvalidArgument("WAL already open");
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return Status::IOError("cannot open WAL: " + path);
  path_ = path;
  return Status::OK();
}

Status WriteAheadLog::Append(const WalRecord& record, bool sync) {
  std::string body = EncodeBody(record);
  uint32_t crc = MaskCrc(Crc32c(body));
  std::string frame;
  frame.reserve(4 + body.size());
  PutU32(&frame, crc);
  frame.append(body);

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("WAL not open");
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("WAL short write");
  }
  if (std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
  if (sync && ::fdatasync(::fileno(file_)) != 0) {
    return Status::IOError("WAL fdatasync failed");
  }
  return Status::OK();
}

Status WriteAheadLog::Replay(const std::string& path,
                             const std::function<void(const WalRecord&)>& apply,
                             size_t* valid_bytes) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // no log yet: empty store
  std::vector<char> data;
  {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      data.insert(data.end(), buf, buf + n);
    }
  }
  std::fclose(f);

  size_t pos = 0;
  while (pos + 4 + kHeaderAfterCrc <= data.size()) {
    uint32_t stored_crc = GetU32(data.data() + pos);
    const char* body = data.data() + pos + 4;
    uint8_t kind = static_cast<uint8_t>(body[0]);
    uint64_t etag = GetU64(body + 1);
    uint32_t key_len = GetU32(body + 9);
    uint32_t value_len = GetU32(body + 13);
    size_t body_len = kHeaderAfterCrc + static_cast<size_t>(key_len) + value_len;
    if (pos + 4 + body_len > data.size()) break;  // torn tail
    if (MaskCrc(Crc32c(body, body_len)) != stored_crc) {
      // Corrupt record: if it is the final frame treat it as a torn tail,
      // otherwise the log is damaged in the middle.
      if (pos + 4 + body_len == data.size()) break;
      return Status::Corruption("WAL record CRC mismatch at offset " +
                                std::to_string(pos));
    }
    if (kind != static_cast<uint8_t>(WalRecord::Kind::kPut) &&
        kind != static_cast<uint8_t>(WalRecord::Kind::kDelete)) {
      return Status::Corruption("WAL record has unknown kind");
    }
    WalRecord record;
    record.kind = static_cast<WalRecord::Kind>(kind);
    record.etag = etag;
    record.key.assign(body + kHeaderAfterCrc, key_len);
    record.value.assign(body + kHeaderAfterCrc + key_len, value_len);
    apply(record);
    pos += 4 + body_len;
    if (valid_bytes != nullptr) *valid_bytes = pos;
  }
  return Status::OK();
}

void WriteAheadLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace kv
}  // namespace ycsbt
