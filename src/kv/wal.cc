#include "kv/wal.h"

#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "kv/crc32.h"

namespace ycsbt {
namespace kv {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// kind(1) + etag(8) + key_len(4) + value_len(4)
constexpr size_t kHeaderAfterCrc = 1 + 8 + 4 + 4;

std::string EncodeFrame(const WalRecord& record) {
  std::string body;
  body.reserve(kHeaderAfterCrc + record.key.size() + record.value.size());
  body.push_back(static_cast<char>(record.kind));
  PutU64(&body, record.etag);
  PutU32(&body, static_cast<uint32_t>(record.key.size()));
  PutU32(&body, static_cast<uint32_t>(record.value.size()));
  body.append(record.key);
  body.append(record.value);

  std::string frame;
  frame.reserve(4 + body.size());
  PutU32(&frame, MaskCrc(Crc32c(body)));
  frame.append(body);
  return frame;
}

}  // namespace

std::string EncodeBulkPayload(
    const std::vector<std::pair<std::string, std::string>>& records) {
  size_t bytes = 4;
  for (const auto& [key, value] : records) {
    bytes += 8 + key.size() + value.size();
  }
  std::string payload;
  payload.reserve(bytes);
  PutU32(&payload, static_cast<uint32_t>(records.size()));
  for (const auto& [key, value] : records) {
    PutU32(&payload, static_cast<uint32_t>(key.size()));
    PutU32(&payload, static_cast<uint32_t>(value.size()));
    payload.append(key);
    payload.append(value);
  }
  return payload;
}

bool DecodeBulkPayload(const std::string& payload,
                       std::vector<std::pair<std::string, std::string>>* records) {
  if (payload.size() < 4) return false;
  uint32_t count = GetU32(payload.data());
  size_t pos = 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 8 > payload.size()) return false;
    uint32_t key_len = GetU32(payload.data() + pos);
    uint32_t value_len = GetU32(payload.data() + pos + 4);
    pos += 8;
    if (pos + static_cast<size_t>(key_len) + value_len > payload.size()) {
      return false;
    }
    records->emplace_back(payload.substr(pos, key_len),
                          payload.substr(pos + key_len, value_len));
    pos += static_cast<size_t>(key_len) + value_len;
  }
  return pos == payload.size();
}

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open(const std::string& path, WalOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::InvalidArgument("WAL already open");
  env_ = options.env != nullptr ? options.env : Env::Default();
  Status s = env_->NewWritableFile(path, /*truncate_existing=*/false, &file_);
  if (!s.ok()) return s;
  path_ = path;
  options_ = options;
  if (options_.group_max_batch < 1) options_.group_max_batch = 1;
  intact_bytes_ = static_cast<size_t>(file_->size());
  next_lsn_ = 0;
  durable_lsn_ = 0;
  leader_active_ = false;
  pending_.clear();
  poisoned_ = false;
  poison_status_ = Status::OK();
  return Status::OK();
}

bool WriteAheadLog::IsPoisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

uint64_t WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

WalStats WriteAheadLog::DrainStats() {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats out = std::move(stats_);
  stats_ = WalStats{};
  return out;
}

void WriteAheadLog::PoisonLocked(const std::string& why) {
  poisoned_ = true;
  std::string detail = "WAL fail-stop: " + why;
  if (file_ != nullptr) {
    // Cut the file back to the last intact offset so the tear never becomes
    // mid-log corruption.  After a simulated env crash the truncate fails by
    // design — the frozen state must stay exactly as the "kernel" left it.
    (void)file_->Flush();
    if (!file_->Truncate(intact_bytes_).ok()) {
      detail += " (truncation to last intact offset also failed)";
    }
  }
  poison_status_ = Status::IOError(detail);
}

Status WriteAheadLog::WriteAndMaybeSync(const std::string& buffer, bool sync,
                                        uint64_t* sync_us, std::string* why) {
  Status s = file_->Append(buffer);
  if (!s.ok()) {
    *why = "short write: " + s.message();
    return s;
  }
  s = file_->Flush();
  if (!s.ok()) {
    *why = "flush failed: " + s.message();
    return s;
  }
  if (sync) {
    s = env_->MaybeCrashPoint("wal_pre_sync");
    if (!s.ok()) {
      *why = "crashed before fdatasync";
      return s;
    }
    Stopwatch sync_watch;
    s = file_->Sync();
    if (!s.ok()) {
      // fsyncgate: the kernel may already have dropped the dirty pages; a
      // retry would silently "succeed" without them.  Fail-stop instead.
      *why = "fdatasync failed: " + s.message();
      return s;
    }
    *sync_us = sync_watch.ElapsedMicros();
    s = env_->MaybeCrashPoint("wal_post_sync");
    if (!s.ok()) {
      // The batch IS durable, but the crash means no acknowledgement ever
      // reached a caller — recovery may legitimately serve it (synced data
      // is never lost, acks are).
      *why = "crashed after fdatasync";
      return s;
    }
  }
  return Status::OK();
}

Status WriteAheadLog::Append(const WalRecord& record, bool sync,
                             uint64_t* lsn_out) {
  // Encode and checksum outside the lock: the serial section of a commit is
  // the write itself, never the CPU work.
  std::string frame = EncodeFrame(record);

  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) return poison_status_;
  if (file_ == nullptr) return Status::IOError("WAL not open");
  uint64_t lsn = ++next_lsn_;
  if (lsn_out != nullptr) *lsn_out = lsn;
  return options_.group_commit ? AppendGrouped(std::move(frame), sync, lsn, lock)
                               : AppendDirect(std::move(frame), sync, lsn, lock);
}

Status WriteAheadLog::AppendDirect(std::string frame, bool sync, uint64_t lsn,
                                   std::unique_lock<std::mutex>& lock) {
  (void)lock;  // held throughout: the seed's one-writer-at-a-time discipline
  uint64_t sync_us = 0;
  std::string why;
  if (!WriteAndMaybeSync(frame, sync, &sync_us, &why).ok()) {
    PoisonLocked(why);
    return poison_status_;
  }
  if (sync) {
    ++stats_.syncs;
    stats_.sync_latency_us.Add(static_cast<int64_t>(sync_us));
  }
  intact_bytes_ += frame.size();
  durable_lsn_ = lsn;
  ++stats_.appends;
  ++stats_.batches;
  stats_.batch_records.Add(1);
  return Status::OK();
}

Status WriteAheadLog::AppendGrouped(std::string frame, bool sync, uint64_t lsn,
                                    std::unique_lock<std::mutex>& lock) {
  pending_.push_back(PendingFrame{std::move(frame), lsn, sync});
  // A leader inside its accumulation window wakes and sees the new frame.
  cv_.notify_all();

  for (;;) {
    cv_.wait(lock, [&] {
      return durable_lsn_ >= lsn || !leader_active_ || poisoned_;
    });
    if (durable_lsn_ >= lsn) return Status::OK();
    if (poisoned_) return poison_status_;
    if (file_ == nullptr) return Status::IOError("WAL closed during append");
    // No leader: this writer leads a batch, then re-checks — a batch capped
    // at group_max_batch may not have reached this writer's own frame yet.
    Status s = LeadBatch(sync, lock);
    if (!s.ok()) return s;
    if (durable_lsn_ >= lsn) return Status::OK();
  }
}

Status WriteAheadLog::LeadBatch(bool sync, std::unique_lock<std::mutex>& lock) {
  leader_active_ = true;
  size_t max_batch = static_cast<size_t>(options_.group_max_batch);
  if (sync && options_.group_window_us > 0 && pending_.size() < max_batch) {
    // Optional accumulation window: trade this commit's latency for a larger
    // batch.  Enqueuing writers notify, so a filling batch exits early.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(options_.group_window_us);
    while (pending_.size() < max_batch &&
           cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
  }

  std::vector<PendingFrame> batch;
  if (pending_.size() <= max_batch) {
    batch.swap(pending_);
  } else {
    batch.assign(std::make_move_iterator(pending_.begin()),
                 std::make_move_iterator(pending_.begin() +
                                         static_cast<ptrdiff_t>(max_batch)));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(max_batch));
  }
  bool want_sync = false;
  size_t batch_bytes = 0;
  for (const PendingFrame& f : batch) {
    want_sync |= f.sync;
    batch_bytes += f.frame.size();
  }

  // One contiguous buffer, one write, one sync — the whole point.  The lock
  // is released for the I/O so the *next* batch accumulates while this one
  // is inside fdatasync.
  std::string buffer;
  buffer.reserve(batch_bytes);
  for (const PendingFrame& f : batch) buffer.append(f.frame);

  lock.unlock();
  uint64_t sync_us = 0;
  std::string why;
  bool io_ok = WriteAndMaybeSync(buffer, want_sync, &sync_us, &why).ok();
  lock.lock();

  Status result;
  if (!io_ok) {
    // None of the batch is acknowledged; every waiter (and every later
    // appender) gets the poison status, and the tear is cut back to the
    // pre-batch offset.
    PoisonLocked(why + " (batch)");
    result = poison_status_;
  } else {
    intact_bytes_ += buffer.size();
    durable_lsn_ = batch.back().lsn;
    stats_.appends += batch.size();
    ++stats_.batches;
    stats_.batch_records.Add(static_cast<int64_t>(batch.size()));
    if (want_sync) {
      ++stats_.syncs;
      stats_.sync_latency_us.Add(static_cast<int64_t>(sync_us));
    }
    result = Status::OK();
  }
  leader_active_ = false;
  cv_.notify_all();
  return result;
}

Status WriteAheadLog::Replay(const std::string& path,
                             const std::function<void(const WalRecord&)>& apply,
                             size_t* valid_bytes, Env* env) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  if (env == nullptr) env = Env::Default();
  std::string data;
  Status read = env->ReadFileToString(path, &data);
  if (read.IsNotFound()) return Status::OK();  // empty store
  if (!read.ok()) return read;

  size_t pos = 0;
  while (pos + 4 + kHeaderAfterCrc <= data.size()) {
    uint32_t stored_crc = GetU32(data.data() + pos);
    const char* body = data.data() + pos + 4;
    uint8_t kind = static_cast<uint8_t>(body[0]);
    uint64_t etag = GetU64(body + 1);
    uint32_t key_len = GetU32(body + 9);
    uint32_t value_len = GetU32(body + 13);
    size_t body_len = kHeaderAfterCrc + static_cast<size_t>(key_len) + value_len;
    if (pos + 4 + body_len > data.size()) break;  // torn tail
    if (MaskCrc(Crc32c(body, body_len)) != stored_crc) {
      // Corrupt record: if it is the final frame treat it as a torn tail,
      // otherwise the log is damaged in the middle.
      if (pos + 4 + body_len == data.size()) break;
      return Status::Corruption("WAL record CRC mismatch at offset " +
                                std::to_string(pos));
    }
    if (kind != static_cast<uint8_t>(WalRecord::Kind::kPut) &&
        kind != static_cast<uint8_t>(WalRecord::Kind::kDelete) &&
        kind != static_cast<uint8_t>(WalRecord::Kind::kBulkPut) &&
        kind != static_cast<uint8_t>(WalRecord::Kind::kTxnPut)) {
      return Status::Corruption("WAL record has unknown kind");
    }
    WalRecord record;
    record.kind = static_cast<WalRecord::Kind>(kind);
    record.etag = etag;
    record.key.assign(body + kHeaderAfterCrc, key_len);
    record.value.assign(body + kHeaderAfterCrc + key_len, value_len);
    apply(record);
    pos += 4 + body_len;
    if (valid_bytes != nullptr) *valid_bytes = pos;
  }
  return Status::OK();
}

void WriteAheadLog::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  // Let an in-flight leader finish its batch; it writes with the lock
  // released, so closing underneath it would pull the file out from under a
  // live writer.
  cv_.wait(lock, [&] { return !leader_active_; });
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  cv_.notify_all();
}

}  // namespace kv
}  // namespace ycsbt
