#ifndef YCSBT_KV_STORE_H_
#define YCSBT_KV_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "kv/skiplist.h"
#include "kv/wal.h"

namespace ycsbt {

class RpcExecutor;

namespace kv {

/// Sentinel etag meaning "the key must not exist" in conditional writes —
/// the If-None-Match:* analogue of the cloud-store APIs.
inline constexpr uint64_t kEtagAbsent = 0;

/// One key/value/etag result row of a scan.
struct ScanEntry {
  std::string key;
  std::string value;
  uint64_t etag = 0;
};

/// Per-key result row of a `MultiGet`.
struct MultiGetResult {
  Status status;
  std::string value;
  uint64_t etag = 0;
};

/// One mutation of a `MultiWrite` batch.  Each op is the exact analogue of
/// the corresponding single-key method; the batch only removes the
/// round-trip-per-item cost, never adds cross-key atomicity (that remains
/// the transaction library's job).
struct WriteOp {
  enum class Kind : uint8_t {
    kPut,
    kConditionalPut,
    kDelete,
    kConditionalDelete,
  };

  Kind kind = Kind::kPut;
  std::string key;
  std::string value;           ///< Puts only.
  uint64_t expected_etag = 0;  ///< Conditional ops only.

  static WriteOp Put(std::string key, std::string value) {
    WriteOp op;
    op.kind = Kind::kPut;
    op.key = std::move(key);
    op.value = std::move(value);
    return op;
  }
  static WriteOp CondPut(std::string key, std::string value,
                         uint64_t expected_etag) {
    WriteOp op;
    op.kind = Kind::kConditionalPut;
    op.key = std::move(key);
    op.value = std::move(value);
    op.expected_etag = expected_etag;
    return op;
  }
  static WriteOp Delete(std::string key) {
    WriteOp op;
    op.kind = Kind::kDelete;
    op.key = std::move(key);
    return op;
  }
  static WriteOp CondDelete(std::string key, uint64_t expected_etag) {
    WriteOp op;
    op.kind = Kind::kConditionalDelete;
    op.key = std::move(key);
    op.expected_etag = expected_etag;
    return op;
  }
};

/// Per-op result row of a `MultiWrite`.
struct WriteResult {
  Status status;
  /// New etag for (conditional) puts that succeeded.
  uint64_t etag = 0;
};

/// Configuration of a `ShardedStore`.
struct StoreOptions {
  /// Number of hash shards; each shard is an independently locked skip list.
  int num_shards = 16;
  /// When non-empty, every mutation is logged here and replayed on open.
  std::string wal_path;
  /// fdatasync every WAL append (durability vs latency, paper §II-A).
  bool sync_wal = false;
  /// Leader/follower group commit on the WAL: commits batch their frames
  /// into one fwrite + fdatasync instead of serialising a sync per record
  /// (see `WalOptions::group_commit`).
  bool wal_group_commit = false;
  /// Largest number of frames one group-commit leader writes per batch.
  int wal_group_max_batch = 64;
  /// Accumulation window for syncing group-commit leaders, microseconds
  /// (0 = natural batching only; see `WalOptions::group_window_us`).
  uint32_t wal_group_window_us = 0;
  /// When non-empty, `Checkpoint()` writes full-state snapshots here and
  /// `Open()` loads the snapshot before replaying the WAL.
  std::string checkpoint_path;
  /// fsync the checkpoint directory after the rename-over, making the new
  /// snapshot's dirent crash-durable.  Off replicates the pre-hardening bug
  /// (a post-rename crash can resurrect the old snapshot next to an
  /// already-truncated WAL — losing acked commits); kept as a knob so the
  /// torture harness can demonstrate exactly that loss.
  bool checkpoint_dir_sync = true;
  /// Filesystem seam for the WAL and the checkpoint path; nullptr =
  /// `Env::Default()`.  Tests substitute a `FaultInjectingEnv`.
  Env* env = nullptr;
};

/// What `ShardedStore::Open()` did to reconstruct state — the source of the
/// RECOVERY-REPLAYED / RECOVERY-TRUNCATED-BYTES / CKPT-SCRUB observability
/// lines (DESIGN.md §14).
struct RecoveryReport {
  uint64_t checkpoint_records = 0;   ///< entries loaded from the snapshot
  uint64_t wal_records_replayed = 0; ///< WAL entries applied after filtering
  uint64_t wal_records_skipped = 0;  ///< WAL frames at/below the watermark
  uint64_t truncated_bytes = 0;      ///< torn tail chopped off the WAL
  /// The snapshot failed validation (CRC damage, missing watermark, torn
  /// tail) and was ignored wholesale — recovery fell back to WAL-only.
  bool checkpoint_scrubbed = false;
  std::string scrub_reason;
};

/// The key-value store interface every substrate in this repo implements:
/// the local engine below, the simulated cloud stores, and (transactionally)
/// the client-coordinated transaction library.
///
/// Contract highlights, shared with real NoSQL stores:
///  - every single-key operation is individually atomic and linearizable;
///  - there is NO multi-key atomicity — that gap is precisely what YCSB+T's
///    Tier 6 measures and what the txn library closes;
///  - writes return a fresh etag; conditional writes compare-and-swap on it;
///  - `Scan` is a best-effort ordered snapshot (not atomic across keys).
class Store {
 public:
  virtual ~Store() = default;

  /// Reads `key` into `*value` (and `*etag` when non-null).
  virtual Status Get(const std::string& key, std::string* value,
                     uint64_t* etag = nullptr) = 0;

  /// Unconditionally writes `key`; `*etag_out` receives the new etag.
  virtual Status Put(const std::string& key, std::string_view value,
                     uint64_t* etag_out = nullptr) = 0;

  /// Writes `key` only if its current etag equals `expected_etag`
  /// (`kEtagAbsent` = key must not exist).  Returns Conflict otherwise.
  /// This is the *test-and-set* primitive the paper notes Percolator fails
  /// to exploit; the txn library's locking protocol is built on it.
  virtual Status ConditionalPut(const std::string& key, std::string_view value,
                                uint64_t expected_etag,
                                uint64_t* etag_out = nullptr) = 0;

  /// Removes `key`; NotFound if absent.
  virtual Status Delete(const std::string& key) = 0;

  /// Removes `key` only if its etag matches; Conflict otherwise.
  virtual Status ConditionalDelete(const std::string& key,
                                   uint64_t expected_etag) = 0;

  /// Up to `limit` entries with key >= `start_key`, in key order.
  virtual Status Scan(const std::string& start_key, size_t limit,
                      std::vector<ScanEntry>* out) = 0;

  /// Reads every key of `keys`, filling `results` (resized to match) with
  /// one independent per-key outcome; a missing key is a per-row NotFound,
  /// never a batch failure.  The base implementation is a plain sequential
  /// loop over `Get` — semantically the contract — which latency-simulating
  /// stores override to issue the requests concurrently (DESIGN.md §10).
  /// Like `Scan`, the batch is NOT atomic across keys.
  virtual void MultiGet(const std::vector<std::string>& keys,
                        std::vector<MultiGetResult>* results);

  /// Applies every op of `ops`, filling `results` (resized to match) with
  /// one independent per-op outcome.  Same contract as `MultiGet`: a
  /// sequential loop by default, concurrent issue in cloud stores, no
  /// cross-op atomicity ever.
  virtual void MultiWrite(const std::vector<WriteOp>& ops,
                          std::vector<WriteResult>* results);

  /// Number of live keys (approximate under concurrency).
  virtual size_t Count() const = 0;
};

/// Executes one `WriteOp` against `store` through the single-op interface —
/// the shared dispatch used by the default `MultiWrite` loop and by
/// decorators routing an already-admitted op to their base store.
Status ApplyWriteOp(Store& store, const WriteOp& op, uint64_t* etag_out);

/// The local storage engine: hash-sharded skip lists with etagged values and
/// an optional CRC-checked write-ahead log.
///
/// This is the WiredTiger stand-in of the evaluation (DESIGN.md
/// *Substitutions*): the Tier-6 experiments (Figs 4, 5) run the Closed
/// Economy Workload against it through the `RawHttpDB` binding.
class ShardedStore : public Store {
 public:
  explicit ShardedStore(StoreOptions options = {});
  ~ShardedStore() override;

  /// Loads the checkpoint (if configured and present), replays the WAL
  /// (if configured) and opens it for appending.
  /// Must be called once before use when `wal_path` is set.
  Status Open();

  /// Writes a consistent snapshot of the whole store to `checkpoint_path`
  /// and truncates the WAL (log compaction).  Concurrent writers are
  /// blocked for the duration (stop-the-world checkpoint — the simple,
  /// correct variant).  Requires both `checkpoint_path` and `wal_path`.
  Status Checkpoint();

  /// Sorted bulk-load fast path: ingests a strictly-ascending run of
  /// (key, value) pairs, bypassing both the per-key skip-list search (each
  /// shard's sub-run is spliced through a `SkipList::SortedInserter` cursor
  /// under one exclusive lock) and the WAL-frame-per-record cost (the whole
  /// run is logged as ONE group-committed `kBulkPut` frame).  Each record
  /// gets a fresh etag from a contiguous reserved range, so replay and
  /// checkpoint watermarks order bulk records exactly like single puts.
  ///
  /// Returns InvalidArgument when the run is not strictly ascending or
  /// contains an empty key; the store is unchanged in that case.  Concurrent
  /// single-key operations remain safe (the run takes the normal shard
  /// locks), but interleaved writers void the "one frame = one atomic run"
  /// durability grouping only in the sense that their records land between
  /// the batch frames — crash recovery stays exact either way.
  Status BulkLoad(
      const std::vector<std::pair<std::string, std::string>>& sorted_records);

  /// Atomic multi-key put: every entry commits (or not) as a unit.  All the
  /// puts ride in ONE `kTxnPut` WAL frame, so crash recovery can only ever
  /// replay the whole set or none of it — a partial multi-key transaction is
  /// never exposed.  Keys need not be sorted (unlike `BulkLoad`); entries
  /// get a contiguous etag range, entry i carrying `first + i`.
  /// `etags_out` (optional) receives the per-entry etags.
  ///
  /// In memory the involved shards are locked together (index order, the
  /// same order every multi-shard path uses), so concurrent readers see the
  /// batch atomically too.
  Status MultiPut(
      const std::vector<std::pair<std::string, std::string>>& records,
      std::vector<uint64_t>* etags_out = nullptr);

  Status Get(const std::string& key, std::string* value,
             uint64_t* etag = nullptr) override;
  Status Put(const std::string& key, std::string_view value,
             uint64_t* etag_out = nullptr) override;
  Status ConditionalPut(const std::string& key, std::string_view value,
                        uint64_t expected_etag, uint64_t* etag_out = nullptr) override;
  Status Delete(const std::string& key) override;
  Status ConditionalDelete(const std::string& key, uint64_t expected_etag) override;
  Status Scan(const std::string& start_key, size_t limit,
              std::vector<ScanEntry>* out) override;
  size_t Count() const override;

  /// Batched forms fanned out on the shared executor when one is attached
  /// (`txn.fanout_threads`): shards are independently locked, so per-key ops
  /// of one batch proceed in parallel exactly like the cloud stores'
  /// concurrent requests (DESIGN.md §10).  Null executor = the base
  /// sequential loop.
  void MultiGet(const std::vector<std::string>& keys,
                std::vector<MultiGetResult>* results) override;
  void MultiWrite(const std::vector<WriteOp>& ops,
                  std::vector<WriteResult>* results) override;

  /// Attaches the shared fan-out executor used by the batched forms.
  void set_executor(std::shared_ptr<RpcExecutor> executor) {
    executor_ = std::move(executor);
  }

  const StoreOptions& options() const { return options_; }

  /// True when mutations are being logged (a WAL path is configured).
  bool wal_enabled() const { return !options_.wal_path.empty(); }

  /// Snapshot-and-reset of the WAL's durability counters (sync latency,
  /// batch sizes) accumulated since the last drain — the source of the
  /// measurement layer's `WAL-SYNC` / `WAL-BATCH` series.
  WalStats DrainWalStats() { return wal_.DrainStats(); }

  /// What the last `Open()` replayed, skipped, truncated and scrubbed.
  const RecoveryReport& recovery_report() const { return recovery_; }

  /// True once a checkpoint-path failure has fail-stopped the store: every
  /// later mutation fails with the poison status, reads keep working off the
  /// intact in-memory state (poison-not-corrupt).  WAL-append failures
  /// poison the WAL itself (same observable effect) — this flag covers the
  /// window where the WAL is closed for compaction and cannot carry the
  /// poison.
  bool IsPoisoned() const {
    return poisoned_.load(std::memory_order_acquire) || wal_.IsPoisoned();
  }

 private:
  struct Entry {
    std::string value;
    uint64_t etag = 0;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    SkipList<Entry> map;
  };

  Shard& ShardFor(const std::string& key);
  size_t ShardIndex(const std::string& key) const;
  /// WAL commit-path configuration derived from the store options.
  WalOptions MakeWalOptions() const;
  /// Lifts the etag source to at least `etag` (replay keeps it ahead of
  /// everything the log produced).
  void AdvanceEtagSource(uint64_t etag);
  uint64_t NextEtag() { return etag_source_.fetch_add(1, std::memory_order_relaxed) + 1; }
  Env* EnvOrDefault() const {
    return options_.env != nullptr ? options_.env : Env::Default();
  }
  Status LogMutation(WalRecord::Kind kind, const std::string& key,
                     std::string_view value, uint64_t etag);
  /// Applies one replayed record; returns the number of entries actually
  /// applied (0 when the watermark filtered the whole frame).
  size_t ApplyReplayed(const WalRecord& record, uint64_t skip_upto_etag);
  /// Fail-stops the store with `why`; returns the poison status.
  Status PoisonStore(const std::string& why);

  StoreOptions options_;
  std::shared_ptr<RpcExecutor> executor_;  // null = sequential batches
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> etag_source_{0};
  WriteAheadLog wal_;
  bool open_ = false;
  /// Etag watermark of the loaded checkpoint; WAL records at or below it
  /// were already folded into the snapshot.
  uint64_t checkpoint_etag_ = 0;
  RecoveryReport recovery_;
  /// Set (once, under the checkpoint's stop-the-world locks) when a
  /// checkpoint-path failure fail-stops the store; `poison_status_` is
  /// written before the release store and only read after an acquire load.
  std::atomic<bool> poisoned_{false};
  Status poison_status_;
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_STORE_H_
