#include "kv/torture.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "kv/env.h"
#include "kv/fault_env.h"
#include "kv/store.h"

namespace ycsbt {
namespace kv {

namespace {

constexpr const char* kWalFile = "wal.log";
constexpr const char* kCkptFile = "ckpt.snap";

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// splitmix64 stream: the torture schedule must be a pure function of the
/// seed, so every random choice comes from here.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state += 0x9E3779B97F4A7C15ull;
    return Mix64(state);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

/// FNV-1a, the schedule/state digest.
struct Digest {
  uint64_t h = 1469598103934665603ull;
  void Mix(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void Mix(const std::string& s) { Mix(s.data(), s.size()); }
  void Mix(uint64_t v) { Mix(&v, sizeof(v)); }
};

/// One scripted operation.  Transfers are atomic two-account `MultiPut`s
/// (the CEW debit/credit pair); everything else is a single-key op.
struct ScriptOp {
  enum class Kind { kTransfer, kPut, kDelete } kind = Kind::kPut;
  std::string key_a, val_a;
  std::string key_b, val_b;  // transfer credit leg
};

using ValueMap = std::map<std::string, std::string>;

long long BalanceOf(const std::string& value) {
  // Values are "<balance>:<seq>"; the seq keeps rewrites byte-distinct.
  return std::strtoll(value.c_str(), nullptr, 10);
}

std::string MakeValue(long long balance, uint64_t seq) {
  return std::to_string(balance) + ":" + std::to_string(seq);
}

/// The deterministic workload: account loads, then a seeded mix of atomic
/// transfers (55%), single-account rewrites (20%), scratch inserts (15%)
/// and scratch deletes (10%).  Generation simulates the value model, so
/// `states[i]` is the exact expected key->value map after i+1 acked ops.
struct Script {
  std::vector<ScriptOp> ops;
  std::vector<ValueMap> states;  ///< states[i] = after ops[0..i]
  long long total_balance = 0;

  const ValueMap& StateAfter(size_t op_count) const {
    static const ValueMap kEmpty;
    return op_count == 0 ? kEmpty : states[op_count - 1];
  }
};

Script BuildScript(const TortureOptions& opts) {
  Script script;
  Rng rng(opts.seed ^ 0x5C21A7ull);
  ValueMap model;
  std::vector<std::string> accounts;
  std::vector<std::string> scratch_live;
  uint64_t seq = 0;
  int scratch_counter = 0;

  auto push = [&](ScriptOp op) {
    if (op.kind == ScriptOp::Kind::kDelete) {
      model.erase(op.key_a);
    } else {
      model[op.key_a] = op.val_a;
      if (op.kind == ScriptOp::Kind::kTransfer) model[op.key_b] = op.val_b;
    }
    script.ops.push_back(std::move(op));
    script.states.push_back(model);
  };

  for (int i = 0; i < opts.accounts; ++i) {
    std::string key = "acct_" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    accounts.push_back(key);
    ScriptOp op;
    op.kind = ScriptOp::Kind::kPut;
    op.key_a = key;
    op.val_a = MakeValue(opts.initial_balance, seq++);
    push(std::move(op));
  }
  script.total_balance =
      static_cast<long long>(opts.accounts) * opts.initial_balance;

  for (int i = 0; i < opts.ops; ++i) {
    uint64_t dice = rng.Below(100);
    if (dice < 55) {
      // Atomic CEW transfer: one kTxnPut frame, balance conserved.
      size_t a = rng.Below(accounts.size());
      size_t b = rng.Below(accounts.size() - 1);
      if (b >= a) ++b;
      long long amount = 1 + static_cast<long long>(rng.Below(10));
      ScriptOp op;
      op.kind = ScriptOp::Kind::kTransfer;
      op.key_a = accounts[a];
      op.val_a = MakeValue(BalanceOf(model[accounts[a]]) - amount, seq++);
      op.key_b = accounts[b];
      op.val_b = MakeValue(BalanceOf(model[accounts[b]]) + amount, seq++);
      push(std::move(op));
    } else if (dice < 75) {
      // Rewrite: same balance, fresh seq (etag churn without balance drift).
      size_t a = rng.Below(accounts.size());
      ScriptOp op;
      op.kind = ScriptOp::Kind::kPut;
      op.key_a = accounts[a];
      op.val_a = MakeValue(BalanceOf(model[accounts[a]]), seq++);
      push(std::move(op));
    } else if (dice < 90 || scratch_live.empty()) {
      // Zero-balance scratch insert: exercises key creation frames.
      ScriptOp op;
      op.kind = ScriptOp::Kind::kPut;
      op.key_a = "scratch_" + std::to_string(scratch_counter++);
      op.val_a = MakeValue(0, seq++);
      scratch_live.push_back(op.key_a);
      push(std::move(op));
    } else {
      size_t pick = rng.Below(scratch_live.size());
      ScriptOp op;
      op.kind = ScriptOp::Kind::kDelete;
      op.key_a = scratch_live[pick];
      scratch_live.erase(scratch_live.begin() +
                         static_cast<ptrdiff_t>(pick));
      push(std::move(op));
    }
  }
  return script;
}

/// Applies script op i to the store; returns the store's status (the ack).
Status ApplyScriptOp(ShardedStore& store, const ScriptOp& op) {
  switch (op.kind) {
    case ScriptOp::Kind::kTransfer:
      return store.MultiPut({{op.key_a, op.val_a}, {op.key_b, op.val_b}});
    case ScriptOp::Kind::kPut:
      return store.Put(op.key_a, op.val_a);
    case ScriptOp::Kind::kDelete:
      return store.Delete(op.key_a);
  }
  return Status::InvalidArgument("unknown script op");
}

void EnsureDir(const std::string& dir) { ::mkdir(dir.c_str(), 0755); }

void WipeStoreFiles(Env* env, const std::string& dir) {
  for (const char* name : {kWalFile, kCkptFile}) {
    std::string path = dir + "/" + name;
    if (env->FileExists(path)) (void)env->RemoveFile(path);
    std::string tmp = path + ".tmp";
    if (env->FileExists(tmp)) (void)env->RemoveFile(tmp);
  }
}

StoreOptions MakeStoreOptions(const TortureOptions& opts,
                              const std::string& dir, Env* env,
                              bool dir_sync = true) {
  StoreOptions so;
  so.num_shards = opts.num_shards;
  so.wal_path = dir + "/" + kWalFile;
  so.checkpoint_path = dir + "/" + kCkptFile;
  so.sync_wal = true;  // every op is one synced frame: exact boundaries
  so.checkpoint_dir_sync = dir_sync;
  so.env = env;
  return so;
}

std::vector<ScanEntry> Snapshot(ShardedStore& store) {
  std::vector<ScanEntry> out;
  (void)store.Scan("", static_cast<size_t>(1) << 20, &out);
  return out;
}

std::string DescribeEntry(const ScanEntry& e) {
  return e.key + "=" + e.value + "@" + std::to_string(e.etag);
}

/// Exact-state comparison.  `with_etags` compares the recorded etags too
/// (materialised sweeps — the recording captured them); live-injection
/// cases compare keys and values against the value model.
bool StatesEqual(const std::vector<ScanEntry>& got,
                 const std::vector<ScanEntry>& want_entries,
                 const ValueMap* want_map, bool with_etags,
                 std::string* diff) {
  size_t want_size = want_map != nullptr ? want_map->size() : want_entries.size();
  if (got.size() != want_size) {
    *diff = "size " + std::to_string(got.size()) + " != " +
            std::to_string(want_size);
    return false;
  }
  if (want_map != nullptr) {
    auto it = want_map->begin();
    for (size_t i = 0; i < got.size(); ++i, ++it) {
      if (got[i].key != it->first || got[i].value != it->second) {
        *diff = "entry " + std::to_string(i) + ": got " +
                DescribeEntry(got[i]) + " want " + it->first + "=" + it->second;
        return false;
      }
    }
    return true;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    const ScanEntry& w = want_entries[i];
    if (got[i].key != w.key || got[i].value != w.value ||
        (with_etags && got[i].etag != w.etag)) {
      *diff = "entry " + std::to_string(i) + ": got " + DescribeEntry(got[i]) +
              " want " + DescribeEntry(w);
      return false;
    }
  }
  return true;
}

long long SumBalances(const std::vector<ScanEntry>& entries) {
  long long total = 0;
  for (const ScanEntry& e : entries) total += BalanceOf(e.value);
  return total;
}

void MixState(Digest* digest, const std::vector<ScanEntry>& entries) {
  for (const ScanEntry& e : entries) {
    digest->Mix(e.key);
    digest->Mix(e.value);
    digest->Mix(e.etag);
  }
}

void ReportFailure(TortureReport* report, const std::string& c,
                   const std::string& detail) {
  report->failures++;
  if (report->failure_details.size() < 20) {
    report->failure_details.push_back(c + ": " + detail);
  }
}

// ---------------------------------------------------------------------------
// Phase A: record the fault-free run — per-op frame boundaries, per-epoch WAL
// byte streams, checkpoint images, and the acked-state oracle.
// ---------------------------------------------------------------------------

struct RecordedOp {
  size_t epoch = 0;
  uint64_t wal_end = 0;  ///< WAL size after this op, within its epoch
};

struct EpochRec {
  bool has_ckpt = false;
  std::string ckpt_bytes;  ///< checkpoint image at epoch start
  std::string wal_bytes;   ///< the epoch's full WAL stream (pre-truncation)
  size_t base_ops = 0;     ///< script ops already folded into the checkpoint
};

struct Recording {
  std::vector<RecordedOp> ops;
  std::vector<EpochRec> epochs;
  /// Store state (with etags) after each acked op, the sweep oracle.
  std::vector<std::vector<ScanEntry>> store_states;
  bool ok = false;
  std::string error;
};

Recording RecordRun(const TortureOptions& opts, const Script& script,
                    const std::string& dir) {
  Recording rec;
  Env* env = Env::Default();
  EnsureDir(dir);
  WipeStoreFiles(env, dir);
  StoreOptions so = MakeStoreOptions(opts, dir, /*env=*/nullptr);
  ShardedStore store(so);
  Status s = store.Open();
  if (!s.ok()) {
    rec.error = "open: " + s.ToString();
    return rec;
  }
  rec.epochs.push_back(EpochRec{});

  for (size_t i = 0; i < script.ops.size(); ++i) {
    if (opts.checkpoint_every > 0 && i > 0 &&
        i % static_cast<size_t>(opts.checkpoint_every) == 0) {
      // Close out the epoch: its WAL stream must be captured BEFORE the
      // checkpoint truncates it.
      (void)env->ReadFileToString(so.wal_path, &rec.epochs.back().wal_bytes);
      s = store.Checkpoint();
      if (!s.ok()) {
        rec.error = "checkpoint: " + s.ToString();
        return rec;
      }
      EpochRec next;
      next.has_ckpt = true;
      (void)env->ReadFileToString(so.checkpoint_path, &next.ckpt_bytes);
      next.base_ops = i;
      rec.epochs.push_back(std::move(next));
    }
    s = ApplyScriptOp(store, script.ops[i]);
    if (!s.ok()) {
      rec.error = "op " + std::to_string(i) + ": " + s.ToString();
      return rec;
    }
    RecordedOp rop;
    rop.epoch = rec.epochs.size() - 1;
    uint64_t size = 0;
    (void)env->FileSize(so.wal_path, &size);
    rop.wal_end = size;
    rec.ops.push_back(rop);
    rec.store_states.push_back(Snapshot(store));
    // Cross-check the store against the independent value model: a store
    // bug during recording must not silently become the oracle.
    std::string diff;
    if (!StatesEqual(rec.store_states.back(), {}, &script.states[i],
                     /*with_etags=*/false, &diff)) {
      rec.error = "recording mismatch after op " + std::to_string(i) + ": " + diff;
      return rec;
    }
  }
  (void)env->ReadFileToString(so.wal_path, &rec.epochs.back().wal_bytes);
  rec.ok = true;
  return rec;
}

// ---------------------------------------------------------------------------
// Phase B: materialised crash states.  A crash at byte offset c of epoch e
// leaves: the epoch's checkpoint image + the first c bytes of its WAL.
// Reopen and require the exact oracle state.
// ---------------------------------------------------------------------------

struct MaterializedCase {
  std::string name;
  size_t epoch = 0;
  uint64_t wal_cut = 0;
  std::string ckpt_override;    ///< non-empty = damaged checkpoint image
  bool ckpt_overridden = false;
  size_t expect_ops = 0;         ///< oracle: state after this many ops
  uint64_t expect_truncated = 0; ///< torn bytes recovery must report
  bool expect_scrub = false;
};

void RunMaterialized(const TortureOptions& opts, const Recording& rec,
                     const MaterializedCase& c, const std::string& sweep_dir,
                     TortureReport* report, Digest* digest) {
  Env* env = Env::Default();
  WipeStoreFiles(env, sweep_dir);
  const EpochRec& epoch = rec.epochs[c.epoch];
  StoreOptions so = MakeStoreOptions(opts, sweep_dir, /*env=*/nullptr);

  auto write_file = [&](const std::string& path, const std::string& bytes) {
    std::unique_ptr<WritableFile> f;
    if (!env->NewWritableFile(path, /*truncate_existing=*/true, &f).ok()) {
      return false;
    }
    return f->Append(bytes).ok() && f->Close().ok();
  };

  if (c.ckpt_overridden) {
    if (!write_file(so.checkpoint_path, c.ckpt_override)) {
      ReportFailure(report, c.name, "materialise ckpt failed");
      return;
    }
  } else if (epoch.has_ckpt) {
    if (!write_file(so.checkpoint_path, epoch.ckpt_bytes)) {
      ReportFailure(report, c.name, "materialise ckpt failed");
      return;
    }
  }
  if (!write_file(so.wal_path, epoch.wal_bytes.substr(0, c.wal_cut))) {
    ReportFailure(report, c.name, "materialise wal failed");
    return;
  }

  ShardedStore store(so);
  Status s = store.Open();
  report->crash_states++;
  digest->Mix(c.name);
  digest->Mix(c.wal_cut);
  if (!s.ok()) {
    ReportFailure(report, c.name, "recovery failed: " + s.ToString());
    return;
  }
  const RecoveryReport& rr = store.recovery_report();
  report->replayed_records_total += rr.wal_records_replayed;
  report->truncated_bytes_total += rr.truncated_bytes;
  if (rr.checkpoint_scrubbed) report->scrubbed_checkpoints++;

  std::vector<ScanEntry> got = Snapshot(store);
  MixState(digest, got);

  const std::vector<ScanEntry>* want = nullptr;
  static const std::vector<ScanEntry> kEmpty;
  want = c.expect_ops == 0 ? &kEmpty : &rec.store_states[c.expect_ops - 1];
  std::string diff;
  if (!StatesEqual(got, *want, nullptr, /*with_etags=*/true, &diff)) {
    long long want_balance =
        SumBalances(*want);
    ReportFailure(report, c.name,
                  diff + " (balance got " + std::to_string(SumBalances(got)) +
                      " want " + std::to_string(want_balance) + ")");
    return;
  }
  if (rr.truncated_bytes != c.expect_truncated) {
    ReportFailure(report, c.name,
                  "truncated_bytes " + std::to_string(rr.truncated_bytes) +
                      " != expected " + std::to_string(c.expect_truncated));
    return;
  }
  if (rr.checkpoint_scrubbed != c.expect_scrub) {
    ReportFailure(report, c.name,
                  c.expect_scrub ? "checkpoint not scrubbed"
                                 : "checkpoint unexpectedly scrubbed");
  }
}

// ---------------------------------------------------------------------------
// Phase C: live fault injection.  Re-run the script under an armed
// FaultInjectingEnv, stop at the first failure, reopen through a clean Env
// (the process-restart view) and require the state to match the acked
// oracle — or acked+1 when the failing frame legitimately reached disk
// (crash after the write landed / after fdatasync but before the ack).
// ---------------------------------------------------------------------------

struct LiveCase {
  std::string name;
  StorageFaultOptions faults;
  bool allow_plus_one = true;    ///< failing op's frame may survive
  bool expect_failure = true;    ///< the run must not complete cleanly
  bool probe_poison = false;     ///< after failure: reads OK, writes fail
  int64_t expect_truncated = -1; ///< -1 = don't check
};

void RunLive(const TortureOptions& opts, const Script& script,
             const LiveCase& c, const std::string& dir,
             TortureReport* report, Digest* digest) {
  Env* base = Env::Default();
  EnsureDir(dir);
  WipeStoreFiles(base, dir);
  FaultInjectingEnv env(base, c.faults);
  size_t acked = 0;
  {
    StoreOptions so = MakeStoreOptions(opts, dir, &env);
    ShardedStore store(so);
    Status s = store.Open();
    if (!s.ok()) {
      ReportFailure(report, c.name, "open: " + s.ToString());
      return;
    }
    env.set_enabled(true);
    bool failed = false;
    for (size_t i = 0; i < script.ops.size() && !failed; ++i) {
      if (opts.checkpoint_every > 0 && i > 0 &&
          i % static_cast<size_t>(opts.checkpoint_every) == 0) {
        if (!store.Checkpoint().ok()) {
          failed = true;
          break;
        }
      }
      if (ApplyScriptOp(store, script.ops[i]).ok()) {
        acked = i + 1;
      } else {
        failed = true;
      }
    }
    env.set_enabled(false);
    if (c.expect_failure && !failed) {
      ReportFailure(report, c.name, "fault never fired");
      return;
    }
    if (c.probe_poison && failed && !env.crashed()) {
      // Poison-not-corrupt: the in-memory state stays readable, writes stay
      // rejected.  (Disarmed now, so the probes hit the store contract, not
      // fresh injections.)
      const std::string& probe_key = script.ops[0].key_a;
      std::string value;
      if (!store.Get(probe_key, &value).ok()) {
        ReportFailure(report, c.name, "poisoned store refused a read");
        return;
      }
      if (store.Put("poison_probe", "x").ok()) {
        ReportFailure(report, c.name, "poisoned store accepted a write");
        return;
      }
      if (!store.IsPoisoned()) {
        ReportFailure(report, c.name, "store not poisoned after failure");
        return;
      }
    }
  }

  // Process restart: reopen the frozen files through a clean Env.
  StoreOptions so = MakeStoreOptions(opts, dir, /*env=*/nullptr);
  ShardedStore store(so);
  Status s = store.Open();
  report->crash_states++;
  report->live_cases++;
  StorageFaultStats stats = env.stats();
  digest->Mix(c.name);
  digest->Mix(stats.appends);
  digest->Mix(stats.syncs);
  digest->Mix(stats.TotalInjected());
  digest->Mix(static_cast<uint64_t>(acked));
  if (!s.ok()) {
    ReportFailure(report, c.name, "recovery failed: " + s.ToString());
    return;
  }
  const RecoveryReport& rr = store.recovery_report();
  report->replayed_records_total += rr.wal_records_replayed;
  report->truncated_bytes_total += rr.truncated_bytes;
  if (rr.checkpoint_scrubbed) report->scrubbed_checkpoints++;

  std::vector<ScanEntry> got = Snapshot(store);
  MixState(digest, got);
  std::string diff_acked, diff_next;
  bool match_acked = StatesEqual(got, {}, &script.StateAfter(acked),
                                 /*with_etags=*/false, &diff_acked);
  bool match_next =
      c.allow_plus_one && acked + 1 <= script.ops.size() &&
      StatesEqual(got, {}, &script.StateAfter(acked + 1),
                  /*with_etags=*/false, &diff_next);
  if (!match_acked && !match_next) {
    ReportFailure(report, c.name,
                  "state matches neither acked(" + std::to_string(acked) +
                      "): " + diff_acked +
                      (c.allow_plus_one ? " nor acked+1: " + diff_next : ""));
    return;
  }
  if (c.expect_truncated >= 0 &&
      rr.truncated_bytes != static_cast<uint64_t>(c.expect_truncated)) {
    ReportFailure(report, c.name,
                  "truncated_bytes " + std::to_string(rr.truncated_bytes) +
                      " != expected " + std::to_string(c.expect_truncated));
  }
}

}  // namespace

TortureReport RunCrashTorture(const TortureOptions& opts) {
  TortureReport report;
  Digest digest;
  EnsureDir(opts.dir);

  Script script = BuildScript(opts);
  std::string record_dir = opts.dir + "/record";
  Recording rec = RecordRun(opts, script, record_dir);
  if (!rec.ok) {
    ReportFailure(&report, "record", rec.error);
    return report;
  }
  report.recorded_ops = rec.ops.size();
  report.epochs = rec.epochs.size();
  for (const EpochRec& e : rec.epochs) {
    report.wal_bytes_total += e.wal_bytes.size();
    digest.Mix(e.wal_bytes);
    digest.Mix(e.ckpt_bytes);
  }

  std::string sweep_dir = opts.dir + "/sweep";
  EnsureDir(sweep_dir);

  // Every epoch start (crash just after checkpoint compaction, before any
  // new frame) and every frame boundary.
  for (size_t e = 0; e < rec.epochs.size(); ++e) {
    MaterializedCase c;
    c.name = "boundary:e" + std::to_string(e) + "@0";
    c.epoch = e;
    c.wal_cut = 0;
    c.expect_ops = rec.epochs[e].base_ops;
    RunMaterialized(opts, rec, c, sweep_dir, &report, &digest);
  }
  for (size_t i = 0; i < rec.ops.size(); ++i) {
    MaterializedCase c;
    c.epoch = rec.ops[i].epoch;
    c.wal_cut = rec.ops[i].wal_end;
    c.name = "boundary:e" + std::to_string(c.epoch) + "@" +
             std::to_string(c.wal_cut);
    c.expect_ops = i + 1;
    RunMaterialized(opts, rec, c, sweep_dir, &report, &digest);
  }

  // Seeded mid-frame offsets: the torn frame must be truncated, nothing
  // else lost, and the reported torn-byte count exact.
  Rng rng(opts.seed ^ 0x31DF7A11ull);
  for (int n = 0; n < opts.mid_frame_samples; ++n) {
    size_t i = rng.Below(rec.ops.size());
    size_t e = rec.ops[i].epoch;
    uint64_t frame_start = 0;
    if (i > 0 && rec.ops[i - 1].epoch == e) frame_start = rec.ops[i - 1].wal_end;
    uint64_t frame_len = rec.ops[i].wal_end - frame_start;
    if (frame_len < 2) continue;
    uint64_t cut = frame_start + 1 + rng.Below(frame_len - 1);
    MaterializedCase c;
    c.epoch = e;
    c.wal_cut = cut;
    c.name = "midframe:e" + std::to_string(e) + "@" + std::to_string(cut);
    c.expect_ops = i;  // the torn op's frame must vanish
    c.expect_truncated = cut - frame_start;
    RunMaterialized(opts, rec, c, sweep_dir, &report, &digest);
  }

  // Damaged-checkpoint scrub: epoch 1's image torn or bit-rotted while the
  // full epoch-0 WAL still exists (the post-rename-pre-truncation crash
  // window).  Recovery must scrub the snapshot and rebuild from WAL alone.
  if (rec.epochs.size() >= 2 && rec.epochs[1].has_ckpt) {
    const std::string& image = rec.epochs[1].ckpt_bytes;
    for (int n = 0; n < opts.ckpt_scrub_samples && image.size() > 2; ++n) {
      MaterializedCase c;
      c.epoch = 0;  // the WAL that still covers everything
      c.wal_cut = rec.epochs[0].wal_bytes.size();
      c.expect_ops = rec.epochs[1].base_ops;
      c.ckpt_overridden = true;
      c.expect_scrub = true;
      if (n % 2 == 0) {
        uint64_t cut = 1 + rng.Below(image.size() - 1);
        c.ckpt_override = image.substr(0, cut);
        c.name = "ckptscrub:torn@" + std::to_string(cut);
      } else {
        uint64_t at = rng.Below(image.size());
        c.ckpt_override = image;
        c.ckpt_override[at] ^= static_cast<char>(1u << rng.Below(8));
        c.name = "ckptscrub:flip@" + std::to_string(at);
      }
      RunMaterialized(opts, rec, c, sweep_dir, &report, &digest);
    }
  }

  // Live fault injection.  Pass/target numbers are drawn in the pre-first-
  // checkpoint window so the checkpoint's own writes don't shift them.
  size_t window = script.ops.size();
  if (opts.checkpoint_every > 0) {
    window = std::min(window, static_cast<size_t>(opts.checkpoint_every));
  }
  auto draw_pass = [&](uint64_t salt) {
    // A sync ticket in [accounts+2, window-2]: inside the mixed-op stream.
    uint64_t lo = static_cast<uint64_t>(opts.accounts) + 2;
    uint64_t hi = window > 4 ? static_cast<uint64_t>(window) - 2 : lo + 1;
    Rng r(opts.seed ^ salt);
    return lo + r.Below(hi > lo ? hi - lo : 1);
  };

  std::vector<LiveCase> cases;
  {
    LiveCase c;
    c.name = "live:wal_pre_sync";
    c.faults.crash_point = "wal_pre_sync";
    c.faults.crash_point_pass = draw_pass(0xA1);
    cases.push_back(c);
  }
  {
    LiveCase c;
    c.name = "live:wal_pre_sync+drop";
    c.faults.crash_point = "wal_pre_sync";
    c.faults.crash_point_pass = draw_pass(0xA2);
    c.faults.drop_unsynced_on_crash = true;
    cases.push_back(c);
  }
  {
    LiveCase c;
    c.name = "live:wal_post_sync";
    c.faults.crash_point = "wal_post_sync";
    c.faults.crash_point_pass = draw_pass(0xA3);
    cases.push_back(c);
  }
  {
    // Mid-frame device crash at an exact byte offset taken from the
    // recording.  The offset is chosen strictly inside a frame, so the torn
    // prefix must be truncated and reported byte-exactly.
    size_t i = static_cast<size_t>(draw_pass(0xA4));
    while (i > 0 && rec.ops[i].epoch != 0) --i;
    uint64_t frame_start = i > 0 ? rec.ops[i - 1].wal_end : 0;
    uint64_t frame_len = rec.ops[i].wal_end - frame_start;
    LiveCase c;
    c.name = "live:wal_frame_mid";
    c.faults.crash_file = kWalFile;
    c.faults.crash_write_offset =
        static_cast<int64_t>(frame_start + 1 + (frame_len > 2 ? frame_len / 2 : 0));
    c.allow_plus_one = false;
    c.expect_truncated =
        c.faults.crash_write_offset - static_cast<int64_t>(frame_start);
    cases.push_back(c);
  }
  {
    LiveCase c;
    c.name = "live:fsyncgate";
    c.faults.sync_fail_at = draw_pass(0xA5);
    c.allow_plus_one = false;  // the dirty frame was dropped, then truncated
    c.probe_poison = true;
    cases.push_back(c);
  }
  {
    LiveCase c;
    c.name = "live:enospc";
    // A byte budget ~60% into epoch 0: the append crossing it is cut short.
    c.faults.enospc_after_bytes =
        std::max<uint64_t>(64, rec.epochs[0].wal_bytes.size() * 6 / 10);
    c.allow_plus_one = false;
    c.probe_poison = true;
    cases.push_back(c);
  }
  if (opts.checkpoint_every > 0 &&
      script.ops.size() > static_cast<size_t>(opts.checkpoint_every)) {
    for (const char* point :
         {"ckpt_pre_rename", "ckpt_post_rename_pre_trunc", "ckpt_post_trunc"}) {
      LiveCase c;
      c.name = std::string("live:") + point;
      c.faults.crash_point = point;
      c.allow_plus_one = false;  // checkpoints ride between acked ops
      cases.push_back(c);
    }
  }
  for (const LiveCase& c : cases) {
    RunLive(opts, script, c, opts.dir + "/live", &report, &digest);
  }

  report.schedule_digest = digest.h;
  return report;
}

bool DemonstrateDirSyncLoss(const std::string& dir, uint64_t seed,
                            bool dir_sync) {
  TortureOptions opts;
  opts.seed = seed;
  opts.dir = dir;
  opts.ops = 130;
  opts.checkpoint_every = 50;  // the crash fires on the SECOND checkpoint
  Script script = BuildScript(opts);

  Env* base = Env::Default();
  EnsureDir(dir);
  WipeStoreFiles(base, dir);
  StorageFaultOptions faults;
  faults.crash_point = "ckpt_post_trunc";
  faults.crash_point_pass = 2;
  FaultInjectingEnv env(base, faults);
  size_t acked = 0;
  {
    StoreOptions so = MakeStoreOptions(opts, dir, &env, dir_sync);
    ShardedStore store(so);
    if (!store.Open().ok()) return false;
    env.set_enabled(true);
    for (size_t i = 0; i < script.ops.size(); ++i) {
      if (opts.checkpoint_every > 0 && i > 0 &&
          i % static_cast<size_t>(opts.checkpoint_every) == 0) {
        if (!store.Checkpoint().ok()) break;
      }
      if (!ApplyScriptOp(store, script.ops[i]).ok()) break;
      acked = i + 1;
    }
  }
  if (!env.crashed()) return false;  // the scenario never materialised

  StoreOptions so = MakeStoreOptions(opts, dir, /*env=*/nullptr, dir_sync);
  ShardedStore store(so);
  if (!store.Open().ok()) return true;  // unrecoverable counts as loss
  std::vector<ScanEntry> got = Snapshot(store);
  std::string diff;
  return !StatesEqual(got, {}, &script.StateAfter(acked),
                      /*with_etags=*/false, &diff);
}

std::string FormatTortureReport(const TortureReport& report) {
  std::ostringstream out;
  out << "CRASH-TORTURE crash_states=" << report.crash_states
      << " failures=" << report.failures
      << " recorded_ops=" << report.recorded_ops
      << " epochs=" << report.epochs
      << " wal_bytes=" << report.wal_bytes_total
      << " live_cases=" << report.live_cases
      << " replayed_total=" << report.replayed_records_total
      << " truncated_total=" << report.truncated_bytes_total
      << " ckpt_scrubs=" << report.scrubbed_checkpoints << "\n"
      << "CRASH-TORTURE schedule_digest=0x" << std::hex
      << report.schedule_digest << std::dec << "\n";
  for (const std::string& f : report.failure_details) {
    out << "CRASH-TORTURE FAIL " << f << "\n";
  }
  return out.str();
}

}  // namespace kv
}  // namespace ycsbt
