#include "kv/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ycsbt {
namespace kv {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

/// Unbuffered fd-backed file: every Append is one write(2), so the byte
/// stream the kernel sees is exactly the byte stream the caller produced —
/// the property the fault layer's offset-exact tearing relies on.  The WAL
/// already batches frames into one buffer per group commit, so syscall
/// counts match the old stdio path (which fflushed after every append).
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      size_ += static_cast<uint64_t>(n);
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }  // unbuffered

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate", path_);
    }
    if (size < size_) size_ = size;
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  std::string path_;
  uint64_t size_;
};

class PosixEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path, bool truncate_existing,
                         std::unique_ptr<WritableFile>* out) override {
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (truncate_existing) flags |= O_TRUNC;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    struct ::stat st;
    uint64_t size = 0;
    if (::fstat(fd, &st) == 0) size = static_cast<uint64_t>(st.st_size);
    *out = std::make_unique<PosixWritableFile>(fd, path, size);
    return Status::OK();
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    out->clear();
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("open", path);
    }
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return ErrnoStatus("read", path);
      }
      if (n == 0) break;
      out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::OK();
  }

  Status FileSize(const std::string& path, uint64_t* size) override {
    struct ::stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("stat", path);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("unlink", path);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " ->", to);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path);
    }
    return Status::OK();
  }

  Status SyncDirOf(const std::string& path) override {
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? std::string(".")
                      : slash == 0               ? std::string("/")
                                                 : path.substr(0, slash);
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open dir", dir);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync dir", dir);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace kv
}  // namespace ycsbt
