#include "kv/fault_env.h"

#include <algorithm>
#include <utility>

namespace ycsbt {
namespace kv {

namespace {

/// splitmix64 finaliser, the same mix the request-level fault substrate uses:
/// consecutive tickets give uncorrelated draws, and the whole schedule is a
/// pure function of (seed, operation stream).
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool PathMatches(const std::string& path, const std::string& filter) {
  return filter.empty() || path.find(filter) != std::string::npos;
}

Status Injected(const std::string& what) {
  return Status::IOError("injected: " + what);
}

}  // namespace

StorageFaultOptions StorageFaultOptions::FromProperties(
    const Properties& props) {
  StorageFaultOptions o;
  o.seed = props.GetUint("storage.fault.seed", o.seed);
  o.torn_write_at =
      props.GetUint("storage.fault.torn_write_at", o.torn_write_at);
  o.write_error_rate =
      props.GetDouble("storage.fault.write_error_rate", o.write_error_rate);
  o.sync_fail_at = props.GetUint("storage.fault.sync_fail_at", o.sync_fail_at);
  o.sync_fail_rate =
      props.GetDouble("storage.fault.sync_fail_rate", o.sync_fail_rate);
  o.enospc_after_bytes =
      props.GetUint("storage.fault.enospc_after_bytes", o.enospc_after_bytes);
  o.truncate_fail_at =
      props.GetUint("storage.fault.truncate_fail_at", o.truncate_fail_at);
  o.read_flip_offset =
      props.GetInt("storage.fault.read_flip_offset", o.read_flip_offset);
  o.read_flip_rate =
      props.GetDouble("storage.fault.read_flip_rate", o.read_flip_rate);
  o.read_flip_file =
      props.Get("storage.fault.read_flip_file", o.read_flip_file);
  o.crash_point = props.Get("storage.fault.crash_point", o.crash_point);
  o.crash_point_pass =
      props.GetUint("storage.fault.crash_point_pass", o.crash_point_pass);
  if (o.crash_point_pass == 0) o.crash_point_pass = 1;
  o.crash_write_offset =
      props.GetInt("storage.fault.crash_write_offset", o.crash_write_offset);
  o.crash_file = props.Get("storage.fault.crash_file", o.crash_file);
  o.drop_unsynced_on_crash = props.GetBool("storage.fault.drop_unsynced_on_crash",
                                           o.drop_unsynced_on_crash);
  return o;
}

/// The decorated file.  All injection decisions live in the env (under its
/// mutex) so crash freezing can see every live file; the file object only
/// tracks its own synced watermark for the fsyncgate drop and the
/// drop-unsynced-on-crash freeze.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, std::unique_ptr<WritableFile> base,
                    std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)),
        synced_size_(base_->size()) {}

  ~FaultWritableFile() override { env_->Deregister(this); }

  Status Append(std::string_view data) override {
    return env_->DoAppend(this, data);
  }

  Status Flush() override {
    if (env_->crashed()) return env_->CrashedStatus();
    return base_->Flush();
  }

  Status Sync() override { return env_->DoSync(this); }

  Status Truncate(uint64_t size) override {
    if (env_->crashed()) return env_->CrashedStatus();
    Status s = base_->Truncate(size);
    if (s.ok() && size < synced_size_) synced_size_ = size;
    return s;
  }

  Status Close() override {
    // Closing never mutates on-disk bytes, so it succeeds even after a
    // simulated crash (the WAL's poison teardown still runs cleanly).
    env_->Deregister(this);
    return base_->Close();
  }

  uint64_t size() const override { return base_->size(); }

 private:
  friend class FaultInjectingEnv;

  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
  uint64_t synced_size_;  ///< bytes known durable (guarded by env mutex)
};

FaultInjectingEnv::FaultInjectingEnv(Env* base, StorageFaultOptions options)
    : base_(base), options_(std::move(options)) {}

StorageFaultStats FaultInjectingEnv::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status FaultInjectingEnv::CrashedStatus() const {
  return Status::IOError("injected: env crashed (simulated kernel crash)");
}

double FaultInjectingEnv::Draw(uint64_t ticket, uint64_t salt) const {
  uint64_t v =
      Mix64(options_.seed ^ Mix64(ticket ^ (salt * 0x9E3779B97F4A7C15ull)));
  return static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
}

std::string FaultInjectingEnv::DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void FaultInjectingEnv::Deregister(FaultWritableFile* file) {
  std::lock_guard<std::mutex> lock(mu_);
  live_files_.erase(std::remove(live_files_.begin(), live_files_.end(), file),
                    live_files_.end());
}

Status FaultInjectingEnv::DoAppend(FaultWritableFile* file,
                                   std::string_view data) {
  if (crashed()) return CrashedStatus();
  if (!enabled()) return file->base_->Append(data);

  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) return CrashedStatus();
  stats_.appends++;
  const uint64_t ticket = ++append_ticket_;

  // Mid-write crash: the kernel dies after exactly `crash_write_offset`
  // bytes of this file exist — the prefix lands, the rest never happened.
  if (options_.crash_write_offset >= 0 &&
      PathMatches(file->path_, options_.crash_file)) {
    const uint64_t target = static_cast<uint64_t>(options_.crash_write_offset);
    const uint64_t start = file->base_->size();
    if (start <= target && target < start + data.size()) {
      (void)file->base_->Append(data.substr(0, target - start));
      TriggerCrashLocked("write_offset");
      return CrashedStatus();
    }
  }

  if (options_.write_error_rate > 0.0 &&
      Draw(ticket, /*salt=*/11) < options_.write_error_rate) {
    stats_.write_errors++;
    return Injected("write error");
  }

  if (options_.torn_write_at == ticket) {
    stats_.torn_writes++;
    (void)file->base_->Append(data.substr(0, data.size() / 2));
    return Injected("torn write (half the buffer landed)");
  }

  if (options_.enospc_after_bytes > 0 &&
      bytes_appended_ + data.size() > options_.enospc_after_bytes) {
    const uint64_t room = options_.enospc_after_bytes > bytes_appended_
                              ? options_.enospc_after_bytes - bytes_appended_
                              : 0;
    stats_.enospc_failures++;
    (void)file->base_->Append(data.substr(0, room));
    bytes_appended_ += room;
    return Injected("ENOSPC (device full after partial write)");
  }

  Status s = file->base_->Append(data);
  if (s.ok()) bytes_appended_ += data.size();
  return s;
}

Status FaultInjectingEnv::DoSync(FaultWritableFile* file) {
  if (crashed()) return CrashedStatus();
  if (!enabled()) {
    Status s = file->base_->Sync();
    if (s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      file->synced_size_ = file->base_->size();
    }
    return s;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) return CrashedStatus();
  stats_.syncs++;
  const uint64_t ticket = ++sync_ticket_;

  const bool fail =
      options_.sync_fail_at == ticket ||
      (options_.sync_fail_rate > 0.0 &&
       Draw(ticket, /*salt=*/13) < options_.sync_fail_rate);
  if (fail) {
    // fsyncgate: the error is reported exactly once, and the dirty pages it
    // covered are GONE — a later sync of the same fd silently "succeeds"
    // without them.  Model that by physically truncating back to the last
    // durable watermark.
    stats_.sync_failures++;
    (void)file->base_->Truncate(file->synced_size_);
    return Injected("fsync failure (dirty pages dropped)");
  }

  Status s = file->base_->Sync();
  if (s.ok()) file->synced_size_ = file->base_->size();
  return s;
}

Status FaultInjectingEnv::NewWritableFile(const std::string& path,
                                          bool truncate_existing,
                                          std::unique_ptr<WritableFile>* out) {
  if (crashed()) return CrashedStatus();
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(path, truncate_existing, &base_file);
  if (!s.ok()) return s;
  auto wrapped =
      std::make_unique<FaultWritableFile>(this, std::move(base_file), path);
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_files_.push_back(wrapped.get());
  }
  *out = std::move(wrapped);
  return Status::OK();
}

Status FaultInjectingEnv::ReadFileToString(const std::string& path,
                                           std::string* out) {
  if (crashed()) return CrashedStatus();
  Status s = base_->ReadFileToString(path, out);
  if (!s.ok() || !enabled() || out->empty()) return s;

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ticket = ++read_ticket_;
  if (!PathMatches(path, options_.read_flip_file)) return s;

  int64_t flip_at = -1;
  if (options_.read_flip_offset >= 0) {
    flip_at = static_cast<int64_t>(
        static_cast<uint64_t>(options_.read_flip_offset) % out->size());
  } else if (options_.read_flip_rate > 0.0 &&
             Draw(ticket, /*salt=*/17) < options_.read_flip_rate) {
    flip_at = static_cast<int64_t>(Mix64(options_.seed ^ (ticket * 0x9E37ull)) %
                                   out->size());
  }
  if (flip_at >= 0) {
    stats_.read_flips++;
    (*out)[static_cast<size_t>(flip_at)] ^=
        static_cast<char>(1u << (static_cast<size_t>(flip_at) & 7));
  }
  return s;
}

Status FaultInjectingEnv::FileSize(const std::string& path, uint64_t* size) {
  if (crashed()) return CrashedStatus();
  return base_->FileSize(path, size);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  if (crashed()) return CrashedStatus();
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (crashed()) return CrashedStatus();
  if (!enabled()) return base_->RenameFile(from, to);

  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) return CrashedStatus();
  // Remember enough to undo: until the directory is fsynced the rename is
  // only in the page cache, and a crash may resurrect the old dirents.
  PendingRename pending;
  pending.dir = DirOf(to);
  pending.from = from;
  pending.to = to;
  pending.had_dst = base_->FileExists(to);
  if (pending.had_dst) {
    (void)base_->ReadFileToString(to, &pending.previous_dst);
  }
  Status s = base_->RenameFile(from, to);
  if (s.ok()) pending_renames_.push_back(std::move(pending));
  return s;
}

Status FaultInjectingEnv::TruncateFile(const std::string& path, uint64_t size) {
  if (crashed()) return CrashedStatus();
  if (!enabled()) return base_->TruncateFile(path, size);

  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) return CrashedStatus();
  const uint64_t ticket = ++truncate_ticket_;
  if (options_.truncate_fail_at == ticket) {
    stats_.truncate_failures++;
    return Injected("truncate failure");
  }
  return base_->TruncateFile(path, size);
}

Status FaultInjectingEnv::SyncDirOf(const std::string& path) {
  if (crashed()) return CrashedStatus();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_.load(std::memory_order_relaxed)) return CrashedStatus();
    // The directory fsync is the durability point for renames in it: once it
    // succeeds they can no longer be rolled back by a crash.
    const std::string dir = DirOf(path);
    pending_renames_.erase(
        std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                       [&dir](const PendingRename& p) { return p.dir == dir; }),
        pending_renames_.end());
  }
  return base_->SyncDirOf(path);
}

Status FaultInjectingEnv::MaybeCrashPoint(const char* point) {
  if (crashed()) return CrashedStatus();
  if (!enabled()) return Status::OK();

  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) return CrashedStatus();
  stats_.crash_points_seen++;
  if (options_.crash_point.empty() || options_.crash_point != point) {
    return Status::OK();
  }
  const uint64_t pass = ++point_passes_[point];
  if (pass != options_.crash_point_pass) return Status::OK();
  TriggerCrashLocked(point);
  return CrashedStatus();
}

void FaultInjectingEnv::TriggerCrashLocked(const std::string& point) {
  crash_fired_at_ = point;
  stats_.crashed = true;
  stats_.crash_fired_at = point;

  // Drop every byte written since each live file's last successful sync —
  // the page cache the simulated kernel never wrote back.
  if (options_.drop_unsynced_on_crash) {
    for (FaultWritableFile* f : live_files_) {
      (void)f->base_->Truncate(f->synced_size_);
    }
  }

  // Resurrect old dirents for renames never made durable by a directory
  // fsync, newest first: the renamed-in file goes back under its old name
  // and whatever the destination held before comes back (or disappears).
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    std::string current;
    if (base_->ReadFileToString(it->to, &current).ok()) {
      std::unique_ptr<WritableFile> back;
      if (base_->NewWritableFile(it->from, /*truncate_existing=*/true, &back)
              .ok()) {
        (void)back->Append(current);
        (void)back->Close();
      }
    }
    if (it->had_dst) {
      std::unique_ptr<WritableFile> dst;
      if (base_->NewWritableFile(it->to, /*truncate_existing=*/true, &dst)
              .ok()) {
        (void)dst->Append(it->previous_dst);
        (void)dst->Close();
      }
    } else {
      (void)base_->RemoveFile(it->to);
    }
  }
  pending_renames_.clear();

  // Publish last: every fast-path check sees the fully-frozen state.
  crashed_.store(true, std::memory_order_release);
}

}  // namespace kv
}  // namespace ycsbt
