#ifndef YCSBT_KV_ENV_H_
#define YCSBT_KV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ycsbt {
namespace kv {

/// One append-only file opened through an `Env`.  The durable local engine
/// funnels every byte it writes (WAL frames, checkpoint snapshots) through
/// this interface, so a fault-injecting `Env` can tear writes at exact byte
/// offsets, fail fdatasync with fsyncgate semantics, or freeze the file
/// exactly as a kernel crash would have left it.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.  Either every byte is written
  /// (OK) or the call failed — a short write surfaces as an error, with the
  /// partial bytes possibly on disk (exactly what a torn device write leaves
  /// behind; the WAL's fail-stop contract cleans it up).
  virtual Status Append(std::string_view data) = 0;

  /// Pushes user-space buffers to the kernel.  The default file is
  /// unbuffered, so this is a no-op hook kept for buffered implementations
  /// and for the fault layer's accounting of what "reached the kernel".
  virtual Status Flush() = 0;

  /// fdatasync: makes every appended byte durable.  A failure means the
  /// dirty data may have been DROPPED by the kernel (the fsyncgate
  /// semantics) — callers must fail-stop, never retry-and-hope.
  virtual Status Sync() = 0;

  /// Cuts the file back to `size` bytes (the WAL's torn-tail cleanup).
  virtual Status Truncate(uint64_t size) = 0;

  /// Closes the descriptor.  Nothing is flushed that `Append` had not
  /// already pushed down.
  virtual Status Close() = 0;

  /// Current logical size in bytes (bytes appended so far, including any
  /// pre-existing content the file was opened with).
  virtual uint64_t size() const = 0;
};

/// Filesystem seam of the durable local engine (`WriteAheadLog`,
/// `ShardedStore::Checkpoint`).  Production uses `Env::Default()` (thin
/// POSIX wrappers); tests substitute `FaultInjectingEnv` to inject torn
/// writes, sync failures, ENOSPC, read-side bit flips and named crash
/// points without a real failing device (DESIGN.md §14).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending, creating it if needed; truncates existing
  /// content first when `truncate_existing`.
  virtual Status NewWritableFile(const std::string& path,
                                 bool truncate_existing,
                                 std::unique_ptr<WritableFile>* out) = 0;

  /// Reads the whole file into `*out`.  A missing file is NotFound.
  virtual Status ReadFileToString(const std::string& path, std::string* out) = 0;

  /// Size of `path` in bytes; NotFound when absent.
  virtual Status FileSize(const std::string& path, uint64_t* size) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Unlinks `path`; NotFound when absent.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Atomically renames `from` over `to` (the checkpoint commit step).
  /// NOTE: the rename is only crash-durable after `SyncDirOf(to)` — a
  /// kernel crash before the directory fsync can resurrect the old dirent.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Truncates `path` (not necessarily open) to `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// fsyncs the directory containing `path`, making renames/creates/unlinks
  /// of entries in that directory crash-durable.
  virtual Status SyncDirOf(const std::string& path) = 0;

  /// Named crash-point hook (`wal_pre_sync`, `ckpt_pre_rename`, ...): the
  /// storage code announces protocol milestones; a fault-injecting Env may
  /// answer with an error and freeze all file state exactly as the kernel
  /// would have left it (every later operation fails too).  The production
  /// Env always answers OK.
  virtual Status MaybeCrashPoint(const char* point) {
    (void)point;
    return Status::OK();
  }

  /// The process-wide POSIX environment.
  static Env* Default();
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_ENV_H_
