#ifndef YCSBT_KV_SKIPLIST_H_
#define YCSBT_KV_SKIPLIST_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace ycsbt {
namespace kv {

/// Ordered in-memory map from string keys to values of type V, implemented
/// as a probabilistic skip list — the memtable structure of the storage
/// engine (WiredTiger, LevelDB and friends use the same shape).
///
/// Not internally synchronised: each store shard guards its skip list with a
/// reader-writer lock.  Iteration order is byte-wise lexicographic, the key
/// order YCSB scans expect.
template <typename V>
class SkipList {
 public:
  SkipList() : rng_(0xC0FFEEull), head_(new Node("", kMaxHeight)), size_(0) {}

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  /// Inserts `key` with `value`, or overwrites the existing value.
  /// Returns true if the key was newly inserted.
  bool Upsert(const std::string& key, V value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && node->key == key) {
      node->value = std::move(value);
      return false;
    }
    Node* fresh = new Node(key, RandomHeight());
    fresh->value = std::move(value);
    for (int i = 0; i < fresh->height(); ++i) {
      fresh->next[i] = prev[i]->next[i];
      prev[i]->next[i] = fresh;
    }
    ++size_;
    return true;
  }

  /// Looks up `key`; returns nullptr when absent.  The pointer stays valid
  /// until the key is erased or the list destroyed.
  V* Find(const std::string& key) {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) return &node->value;
    return nullptr;
  }

  const V* Find(const std::string& key) const {
    return const_cast<SkipList*>(this)->Find(key);
  }

  /// Removes `key`; returns true if it was present.
  bool Erase(const std::string& key) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node == nullptr || node->key != key) return false;
    for (int i = 0; i < node->height(); ++i) {
      if (prev[i]->next[i] == node) prev[i]->next[i] = node->next[i];
    }
    delete node;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forward iterator positioned by `SeekToFirst`/`Seek`; the usual memtable
  /// iteration interface.  Invalidated by any mutation of the list.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    void SeekToFirst() { node_ = list_->head_->next[0]; }

    /// Positions at the first key >= target.
    void Seek(const std::string& target) {
      node_ = const_cast<SkipList*>(list_)->FindGreaterOrEqual(target, nullptr);
    }

    void Next() {
      assert(Valid());
      node_ = node_->next[0];
    }

    const std::string& key() const {
      assert(Valid());
      return node_->key;
    }

    const V& value() const {
      assert(Valid());
      return node_->value;
    }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr unsigned kBranching = 4;

  struct Node {
    Node(std::string k, int height) : key(std::move(k)), next(height, nullptr) {}

    int height() const { return static_cast<int>(next.size()); }

    std::string key;
    V value{};
    std::vector<Node*> next;
  };

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rng_.Uniform(kBranching) == 0) ++height;
    return height;
  }

  /// First node with key >= target; fills `prev` (if non-null) with the
  /// rightmost node before the target at every level.
  Node* FindGreaterOrEqual(const std::string& target, Node** prev) {
    Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (x->next[level] != nullptr && x->next[level]->key < target) {
        x = x->next[level];
      }
      if (prev != nullptr) prev[level] = x;
    }
    return x->next[0];
  }

  Random64 rng_;
  Node* head_;
  size_t size_;

  friend class Iterator;
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_SKIPLIST_H_
