#ifndef YCSBT_KV_SKIPLIST_H_
#define YCSBT_KV_SKIPLIST_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace ycsbt {
namespace kv {

/// Ordered in-memory map from string keys to values of type V, implemented
/// as a probabilistic skip list — the memtable structure of the storage
/// engine (WiredTiger, LevelDB and friends use the same shape).
///
/// Not internally synchronised: each store shard guards its skip list with a
/// reader-writer lock.  Iteration order is byte-wise lexicographic, the key
/// order YCSB scans expect.
template <typename V>
class SkipList {
 public:
  SkipList() : rng_(0xC0FFEEull), head_(new Node("", kMaxHeight)), size_(0) {}

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  /// Inserts `key` with `value`, or overwrites the existing value.
  /// Returns true if the key was newly inserted.
  bool Upsert(const std::string& key, V value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && node->key == key) {
      node->value = std::move(value);
      return false;
    }
    Node* fresh = new Node(key, RandomHeight());
    fresh->value = std::move(value);
    for (int i = 0; i < fresh->height(); ++i) {
      fresh->next[i] = prev[i]->next[i];
      prev[i]->next[i] = fresh;
    }
    ++size_;
    return true;
  }

  /// Looks up `key`; returns nullptr when absent.  The pointer stays valid
  /// until the key is erased or the list destroyed.
  V* Find(const std::string& key) {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) return &node->value;
    return nullptr;
  }

  const V* Find(const std::string& key) const {
    return const_cast<SkipList*>(this)->Find(key);
  }

  /// Removes `key`; returns true if it was present.
  bool Erase(const std::string& key) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node == nullptr || node->key != key) return false;
    for (int i = 0; i < node->height(); ++i) {
      if (prev[i]->next[i] == node) prev[i]->next[i] = node->next[i];
    }
    delete node;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forward iterator positioned by `SeekToFirst`/`Seek`; the usual memtable
  /// iteration interface.  Invalidated by any mutation of the list.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    void SeekToFirst() { node_ = list_->head_->next[0]; }

    /// Positions at the first key >= target.
    void Seek(const std::string& target) {
      node_ = const_cast<SkipList*>(list_)->FindGreaterOrEqual(target, nullptr);
    }

    void Next() {
      assert(Valid());
      node_ = node_->next[0];
    }

    const std::string& key() const {
      assert(Valid());
      return node_->key;
    }

    const V& value() const {
      assert(Valid());
      return node_->value;
    }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr unsigned kBranching = 4;

  struct Node {
    Node(std::string k, int height) : key(std::move(k)), next(height, nullptr) {}

    int height() const { return static_cast<int>(next.size()); }

    std::string key;
    V value{};
    std::vector<Node*> next;
  };

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rng_.Uniform(kBranching) == 0) ++height;
    return height;
  }

  /// First node with key >= target; fills `prev` (if non-null) with the
  /// rightmost node before the target at every level.
  Node* FindGreaterOrEqual(const std::string& target, Node** prev) {
    Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (x->next[level] != nullptr && x->next[level]->key < target) {
        x = x->next[level];
      }
      if (prev != nullptr) prev[level] = x;
    }
    return x->next[0];
  }

  Random64 rng_;
  Node* head_;
  size_t size_;

  friend class Iterator;

 public:
  /// Ascending-order insert cursor for bulk-loading pre-sorted runs: keeps
  /// the splice frontier from the previous insert so each key resumes its
  /// search there instead of from the head — O(1) amortised per key on a
  /// sorted run versus O(log n) for `Upsert`.
  ///
  /// Keys fed to `Insert` must be strictly increasing; keys already in the
  /// list may interleave with the run freely (an equal pre-existing key is
  /// overwritten, exactly like `Upsert`).  The cursor is invalidated by any
  /// other mutation of the list.
  class SortedInserter {
   public:
    explicit SortedInserter(SkipList* list) : list_(list) {
      for (int i = 0; i < kMaxHeight; ++i) prev_[i] = list->head_;
    }

    /// Inserts `key` with `value` (overwriting on an equal key).
    /// Returns true if the key was newly inserted.
    bool Insert(const std::string& key, V value) {
      if (!primed_) {
        // First insert: a regular top-down descent to position the splice
        // frontier.  The per-level resume below starts each level from its
        // own stale `prev_` instead of carrying the position down from the
        // level above, so on a cursor freshly opened against a populated
        // list it would walk level 0 from the head — O(n), not O(log n).
        list_->FindGreaterOrEqual(key, prev_);
        primed_ = true;
      } else {
        // Each level resumes from its previous splice point: with ascending
        // keys, prev_[level] is always to the left of the new key, and the
        // total walk per level over a run is bounded by the nodes linked at
        // that level — O(1) amortised per insert.
        for (int level = kMaxHeight - 1; level >= 0; --level) {
          Node* x = prev_[level];
          while (x->next[level] != nullptr && x->next[level]->key < key) {
            x = x->next[level];
          }
          prev_[level] = x;
        }
      }
      Node* node = prev_[0]->next[0];
      if (node != nullptr && node->key == key) {
        node->value = std::move(value);
        return false;
      }
      Node* fresh = new Node(key, list_->RandomHeight());
      fresh->value = std::move(value);
      for (int i = 0; i < fresh->height(); ++i) {
        fresh->next[i] = prev_[i]->next[i];
        prev_[i]->next[i] = fresh;
        prev_[i] = fresh;
      }
      ++list_->size_;
      return true;
    }

   private:
    SkipList* list_;
    Node* prev_[kMaxHeight];
    bool primed_ = false;
  };
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_SKIPLIST_H_
