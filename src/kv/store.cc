#include "kv/store.h"

#include <algorithm>
#include <atomic>
#include <set>

#include "common/random.h"
#include "common/rpc_executor.h"

namespace ycsbt {
namespace kv {

void Store::MultiGet(const std::vector<std::string>& keys,
                     std::vector<MultiGetResult>* results) {
  results->clear();
  results->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    MultiGetResult& r = (*results)[i];
    r.status = Get(keys[i], &r.value, &r.etag);
  }
}

void Store::MultiWrite(const std::vector<WriteOp>& ops,
                       std::vector<WriteResult>* results) {
  results->clear();
  results->resize(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    WriteResult& r = (*results)[i];
    r.status = ApplyWriteOp(*this, ops[i], &r.etag);
  }
}

Status ApplyWriteOp(Store& store, const WriteOp& op, uint64_t* etag_out) {
  switch (op.kind) {
    case WriteOp::Kind::kPut:
      return store.Put(op.key, op.value, etag_out);
    case WriteOp::Kind::kConditionalPut:
      return store.ConditionalPut(op.key, op.value, op.expected_etag, etag_out);
    case WriteOp::Kind::kDelete:
      return store.Delete(op.key);
    case WriteOp::Kind::kConditionalDelete:
      return store.ConditionalDelete(op.key, op.expected_etag);
  }
  return Status::InvalidArgument("unknown WriteOp kind");
}

ShardedStore::ShardedStore(StoreOptions options) : options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.wal_path.empty()) open_ = true;  // volatile store needs no Open()
}

ShardedStore::~ShardedStore() = default;

Status ShardedStore::Open() {
  if (options_.wal_path.empty()) return Status::OK();
  if (open_) return Status::InvalidArgument("store already open");
  Env* env = EnvOrDefault();
  recovery_ = RecoveryReport{};
  // 1. Load the last checkpoint, if any.  A checkpoint is simply a compacted
  //    log: a sequence of kPut records plus an etag watermark, so the WAL
  //    replay machinery reads it directly.  The snapshot is STAGED and
  //    validated before anything is applied: if it is damaged in any way
  //    (CRC mismatch, torn tail, missing watermark — e.g. bit rot, or a
  //    crash mid-checkpoint-write that somehow survived the rename protocol)
  //    the whole snapshot is scrubbed and recovery falls back to WAL-only,
  //    rather than serving half a snapshot as state.
  if (!options_.checkpoint_path.empty() &&
      env->FileExists(options_.checkpoint_path)) {
    std::vector<WalRecord> staged;
    size_t ckpt_valid_bytes = 0;
    Status s = WriteAheadLog::Replay(
        options_.checkpoint_path,
        [&staged](const WalRecord& r) { staged.push_back(r); },
        &ckpt_valid_bytes, env);
    uint64_t ckpt_size = 0;
    Status size_s = env->FileSize(options_.checkpoint_path, &ckpt_size);
    // The watermark is written last with the snapshot's only fdatasync, so a
    // complete snapshot always ends in an intact empty-key record covering
    // every byte of the file.
    const bool complete = s.ok() && size_s.ok() &&
                          ckpt_valid_bytes == ckpt_size && !staged.empty() &&
                          staged.back().key.empty();
    if (complete) {
      for (const WalRecord& r : staged) {
        if (r.key.empty()) {
          // Reserved empty-key record: the checkpoint's etag watermark.
          checkpoint_etag_ = r.etag;
          AdvanceEtagSource(r.etag);
          continue;
        }
        recovery_.checkpoint_records +=
            ApplyReplayed(r, /*skip_upto_etag=*/0);
      }
    } else {
      recovery_.checkpoint_scrubbed = true;
      recovery_.scrub_reason =
          !s.ok() ? s.ToString()
                  : (staged.empty() || !staged.back().key.empty()
                         ? "missing etag watermark"
                         : "torn snapshot tail");
      checkpoint_etag_ = 0;
    }
  }
  // 2. Replay WAL records newer than the checkpoint.  (After a crash between
  //    checkpoint rename and WAL truncation the log still holds records the
  //    snapshot already folded in; the watermark filters them out.)
  size_t wal_valid_bytes = 0;
  Status s = WriteAheadLog::Replay(
      options_.wal_path,
      [this](const WalRecord& r) {
        size_t applied = ApplyReplayed(r, checkpoint_etag_);
        if (applied > 0) {
          recovery_.wal_records_replayed += applied;
        } else {
          recovery_.wal_records_skipped++;
        }
      },
      &wal_valid_bytes, env);
  if (!s.ok()) return s;
  // 3. Chop off any torn tail a crash left behind: new appends must follow
  //    the last intact record, or the tear would sit mid-log (and read as
  //    hard corruption) on the next replay.
  uint64_t wal_size = 0;
  if (env->FileSize(options_.wal_path, &wal_size).ok() &&
      static_cast<size_t>(wal_size) > wal_valid_bytes) {
    s = env->TruncateFile(options_.wal_path, wal_valid_bytes);
    if (!s.ok()) {
      return Status::IOError("WAL torn-tail truncation failed: " + s.message());
    }
    recovery_.truncated_bytes = wal_size - wal_valid_bytes;
  }
  s = wal_.Open(options_.wal_path, MakeWalOptions());
  if (!s.ok()) return s;
  open_ = true;
  return Status::OK();
}

kv::WalOptions ShardedStore::MakeWalOptions() const {
  WalOptions wal;
  wal.group_commit = options_.wal_group_commit;
  wal.group_max_batch = options_.wal_group_max_batch;
  wal.group_window_us = options_.wal_group_window_us;
  wal.env = options_.env;
  return wal;
}

void ShardedStore::AdvanceEtagSource(uint64_t etag) {
  uint64_t seen = etag_source_.load(std::memory_order_relaxed);
  while (etag > seen && !etag_source_.compare_exchange_weak(
                            seen, etag, std::memory_order_relaxed)) {
  }
}

size_t ShardedStore::ApplyReplayed(const WalRecord& record,
                                   uint64_t skip_upto_etag) {
  if (record.kind == WalRecord::Kind::kBulkPut ||
      record.kind == WalRecord::Kind::kTxnPut) {
    // One frame covers a whole run (sorted bulk load) or one atomic
    // multi-key transaction; entry i carries etag + i.  The frame's CRC
    // already validated the payload, so a decode failure can only be an
    // encoder bug — apply whatever decoded.
    std::vector<std::pair<std::string, std::string>> run;
    DecodeBulkPayload(record.value, &run);
    size_t applied = 0;
    for (size_t i = 0; i < run.size(); ++i) {
      uint64_t etag = record.etag + i;
      if (etag <= skip_upto_etag) continue;
      Shard& shard = ShardFor(run[i].first);
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      shard.map.Upsert(run[i].first, Entry{std::move(run[i].second), etag});
      ++applied;
    }
    if (!run.empty()) AdvanceEtagSource(record.etag + run.size() - 1);
    return applied;
  }
  if (record.etag != 0 && record.etag <= skip_upto_etag) return 0;
  Shard& shard = ShardFor(record.key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (record.kind == WalRecord::Kind::kPut) {
    shard.map.Upsert(record.key, Entry{record.value, record.etag});
  } else {
    shard.map.Erase(record.key);
  }
  // Keep the etag source ahead of everything the log produced.
  AdvanceEtagSource(record.etag);
  return 1;
}

Status ShardedStore::PoisonStore(const std::string& why) {
  poison_status_ = Status::IOError("store fail-stop: " + why);
  poisoned_.store(true, std::memory_order_release);
  return poison_status_;
}

Status ShardedStore::Checkpoint() {
  if (options_.checkpoint_path.empty() || options_.wal_path.empty()) {
    return Status::InvalidArgument("checkpointing needs checkpoint_path and wal_path");
  }
  if (!open_) return Status::IOError("store not opened");
  if (poisoned_.load(std::memory_order_acquire)) return poison_status_;

  // Stop the world: exclusive locks on every shard, in index order (the same
  // order Scan takes shared locks, so the two cannot deadlock).
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);

  Env* env = EnvOrDefault();
  std::string tmp = options_.checkpoint_path + ".tmp";
  // Phase 1 — build the snapshot in a side file.  Any failure here (ENOSPC,
  // torn write, sync failure) is a CLEAN abort: the live checkpoint and the
  // WAL are untouched, the store keeps running.
  {
    WriteAheadLog snapshot;
    if (env->FileExists(tmp)) (void)env->RemoveFile(tmp);
    Status s = snapshot.Open(tmp, MakeWalOptions());
    if (!s.ok()) return s;
    for (auto& shard : shards_) {
      SkipList<Entry>::Iterator it(&shard->map);
      for (it.SeekToFirst(); it.Valid(); it.Next()) {
        WalRecord record;
        record.kind = WalRecord::Kind::kPut;
        record.etag = it.value().etag;
        record.key = it.key();
        record.value = it.value().value;
        s = snapshot.Append(record, /*sync=*/false);
        if (!s.ok()) return s;
      }
    }
    // Etag watermark last (reserved empty key), with the snapshot's only
    // fdatasync: if this record is intact, the whole snapshot is.
    WalRecord watermark;
    watermark.kind = WalRecord::Kind::kPut;
    watermark.etag = etag_source_.load(std::memory_order_relaxed);
    s = snapshot.Append(watermark, /*sync=*/true);
    if (!s.ok()) return s;
  }
  // Phase 2 — commit: rename over the old snapshot, then fsync the directory
  // so the new dirent is crash-durable.  Without the directory fsync a
  // post-rename crash can resurrect the OLD snapshot (journalled filesystems
  // may persist the WAL truncation below but not the rename) — acked commits
  // in the truncated log would then be on neither file.
  Status s = env->MaybeCrashPoint("ckpt_pre_rename");
  if (!s.ok()) return s;  // nothing destructive has happened yet
  s = env->RenameFile(tmp, options_.checkpoint_path);
  if (!s.ok()) return s;
  if (options_.checkpoint_dir_sync) {
    s = env->SyncDirOf(options_.checkpoint_path);
    if (!s.ok()) {
      // The rename may or may not be durable; from here on the on-disk
      // protocol state is ambiguous, so fail-stop rather than risk
      // compacting the WAL against a snapshot that can vanish.
      return PoisonStore("checkpoint directory fsync failed: " + s.message());
    }
  }
  s = env->MaybeCrashPoint("ckpt_post_rename_pre_trunc");
  if (!s.ok()) return PoisonStore("crashed after checkpoint rename");

  // Phase 3 — log compaction: everything in the WAL is now durably covered
  // by the snapshot.  Every failure routes through the poison path: the WAL
  // is closed here, so a half-finished compaction left unpoisoned would
  // silently drop mutations (the pre-hardening `fopen("wb")` bug).
  wal_.Close();
  s = env->TruncateFile(options_.wal_path, 0);
  if (!s.ok()) {
    return PoisonStore("WAL truncate after checkpoint failed: " + s.message());
  }
  s = env->MaybeCrashPoint("ckpt_post_trunc");
  if (!s.ok()) return PoisonStore("crashed after WAL truncation");
  s = wal_.Open(options_.wal_path, MakeWalOptions());
  if (!s.ok()) {
    return PoisonStore("WAL reopen after checkpoint failed: " + s.message());
  }
  return Status::OK();
}

Status ShardedStore::BulkLoad(
    const std::vector<std::pair<std::string, std::string>>& sorted_records) {
  if (!open_) return Status::IOError("store not opened");
  if (sorted_records.empty()) return Status::OK();
  for (size_t i = 0; i < sorted_records.size(); ++i) {
    if (sorted_records[i].first.empty()) {
      return Status::InvalidArgument("empty keys are reserved");
    }
    if (i > 0 && sorted_records[i].first <= sorted_records[i - 1].first) {
      return Status::InvalidArgument(
          "bulk-load run must be strictly ascending at index " +
          std::to_string(i));
    }
  }
  // Reserve a contiguous etag range up front: record i carries first + i,
  // so replay and checkpoint watermarks order the run like individual puts.
  uint64_t first_etag = etag_source_.fetch_add(sorted_records.size(),
                                               std::memory_order_relaxed) +
                        1;
  // One frame for the whole run; rides group commit like any other append.
  Status log = LogMutation(WalRecord::Kind::kBulkPut, "",
                           EncodeBulkPayload(sorted_records), first_etag);
  if (!log.ok()) return log;
  // Stream the run once, in order, into one sorted-insert cursor per shard.
  // The global sort order restricted to any one shard is still strictly
  // ascending, so every cursor sees a valid feed.  Walking the record array
  // sequentially (rather than bucketing indices per shard and re-reading the
  // array shard by shard) keeps the key/value string accesses prefetchable —
  // on a 1M-record run that is the difference between the fast path beating
  // per-key `Put` and losing to it.  Locks are taken in index order, the
  // same order `Scan` and `Checkpoint` use, so the paths cannot deadlock.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  std::vector<SkipList<Entry>::SortedInserter> cursors;
  locks.reserve(shards_.size());
  cursors.reserve(shards_.size());
  for (auto& shard : shards_) {
    locks.emplace_back(shard->mu);
    cursors.emplace_back(&shard->map);
  }
  for (size_t i = 0; i < sorted_records.size(); ++i) {
    cursors[ShardIndex(sorted_records[i].first)].Insert(
        sorted_records[i].first, Entry{sorted_records[i].second, first_etag + i});
  }
  return Status::OK();
}

Status ShardedStore::MultiPut(
    const std::vector<std::pair<std::string, std::string>>& records,
    std::vector<uint64_t>* etags_out) {
  if (!open_) return Status::IOError("store not opened");
  if (records.empty()) return Status::OK();
  for (const auto& [key, value] : records) {
    (void)value;
    if (key.empty()) return Status::InvalidArgument("empty keys are reserved");
  }
  // Contiguous etag range: entry i carries first + i, mirroring kBulkPut.
  uint64_t first_etag =
      etag_source_.fetch_add(records.size(), std::memory_order_relaxed) + 1;

  // Lock every involved shard together (index order, deduped — the order
  // every multi-shard path uses) so readers can't see half the batch.
  std::set<size_t> shard_idx;
  for (const auto& [key, value] : records) {
    (void)value;
    shard_idx.insert(ShardIndex(key));
  }
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shard_idx.size());
  for (size_t idx : shard_idx) locks.emplace_back(shards_[idx]->mu);

  // One kTxnPut frame = the whole transaction's durability: recovery replays
  // all of it or none of it, never a partial multi-key commit.
  Status log = LogMutation(WalRecord::Kind::kTxnPut, "",
                           EncodeBulkPayload(records), first_etag);
  if (!log.ok()) return log;

  for (size_t i = 0; i < records.size(); ++i) {
    ShardFor(records[i].first)
        .map.Upsert(records[i].first, Entry{records[i].second, first_etag + i});
  }
  if (etags_out != nullptr) {
    etags_out->clear();
    for (size_t i = 0; i < records.size(); ++i) {
      etags_out->push_back(first_etag + i);
    }
  }
  return Status::OK();
}

ShardedStore::Shard& ShardedStore::ShardFor(const std::string& key) {
  return *shards_[ShardIndex(key)];
}

size_t ShardedStore::ShardIndex(const std::string& key) const {
  uint64_t h = FNVHash64(std::hash<std::string>{}(key));
  return h % shards_.size();
}

Status ShardedStore::LogMutation(WalRecord::Kind kind, const std::string& key,
                                 std::string_view value, uint64_t etag) {
  if (!wal_enabled()) return Status::OK();
  if (poisoned_.load(std::memory_order_acquire)) return poison_status_;
  // A configured-but-closed WAL means a checkpoint died mid-compaction;
  // acknowledging unlogged mutations here would silently drop them on the
  // next reopen (the pre-hardening behaviour).
  if (!wal_.IsOpen()) {
    return Status::IOError("WAL closed mid-compaction; mutation not logged");
  }
  WalRecord record;
  record.kind = kind;
  record.etag = etag;
  record.key = key;
  record.value = std::string(value);
  return wal_.Append(record, options_.sync_wal);
}

Status ShardedStore::Get(const std::string& key, std::string* value,
                         uint64_t* etag) {
  if (!open_) return Status::IOError("store not opened");
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  const Entry* entry = shard.map.Find(key);
  if (entry == nullptr) return Status::NotFound(key);
  if (value != nullptr) *value = entry->value;
  if (etag != nullptr) *etag = entry->etag;
  return Status::OK();
}

Status ShardedStore::Put(const std::string& key, std::string_view value,
                         uint64_t* etag_out) {
  if (!open_) return Status::IOError("store not opened");
  if (key.empty()) return Status::InvalidArgument("empty keys are reserved");
  uint64_t etag = NextEtag();
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  Status s = LogMutation(WalRecord::Kind::kPut, key, value, etag);
  if (!s.ok()) return s;
  shard.map.Upsert(key, Entry{std::string(value), etag});
  if (etag_out != nullptr) *etag_out = etag;
  return Status::OK();
}

Status ShardedStore::ConditionalPut(const std::string& key, std::string_view value,
                                    uint64_t expected_etag, uint64_t* etag_out) {
  if (!open_) return Status::IOError("store not opened");
  if (key.empty()) return Status::InvalidArgument("empty keys are reserved");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const Entry* entry = shard.map.Find(key);
  if (expected_etag == kEtagAbsent) {
    if (entry != nullptr) return Status::Conflict("key exists: " + key);
  } else {
    if (entry == nullptr) return Status::Conflict("key absent: " + key);
    if (entry->etag != expected_etag) {
      return Status::Conflict("etag mismatch on " + key);
    }
  }
  uint64_t etag = NextEtag();
  Status s = LogMutation(WalRecord::Kind::kPut, key, value, etag);
  if (!s.ok()) return s;
  shard.map.Upsert(key, Entry{std::string(value), etag});
  if (etag_out != nullptr) *etag_out = etag;
  return Status::OK();
}

Status ShardedStore::Delete(const std::string& key) {
  if (!open_) return Status::IOError("store not opened");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (shard.map.Find(key) == nullptr) return Status::NotFound(key);
  // Deletes consume an etag too, so the log is totally ordered per key and
  // checkpoint watermarks can filter replay exactly.
  Status s = LogMutation(WalRecord::Kind::kDelete, key, "", NextEtag());
  if (!s.ok()) return s;
  shard.map.Erase(key);
  return Status::OK();
}

Status ShardedStore::ConditionalDelete(const std::string& key,
                                       uint64_t expected_etag) {
  if (!open_) return Status::IOError("store not opened");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const Entry* entry = shard.map.Find(key);
  if (entry == nullptr) return Status::Conflict("key absent: " + key);
  if (entry->etag != expected_etag) return Status::Conflict("etag mismatch on " + key);
  Status s = LogMutation(WalRecord::Kind::kDelete, key, "", NextEtag());
  if (!s.ok()) return s;
  shard.map.Erase(key);
  return Status::OK();
}

Status ShardedStore::Scan(const std::string& start_key, size_t limit,
                          std::vector<ScanEntry>* out) {
  if (!open_) return Status::IOError("store not opened");
  out->clear();
  if (limit == 0) return Status::OK();
  // K-way merge over per-shard iterators under shared locks (taken in index
  // order, the same order Checkpoint uses, so the two cannot deadlock).
  // O(limit * log shards) instead of collecting `limit` rows per shard.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  std::vector<SkipList<Entry>::Iterator> iters;
  iters.reserve(shards_.size());
  for (auto& shard : shards_) {
    locks.emplace_back(shard->mu);
    iters.emplace_back(&shard->map);
    iters.back().Seek(start_key);
  }

  // Max-heap on reversed comparison -> pops smallest key first.
  auto greater = [&](size_t a, size_t b) { return iters[a].key() > iters[b].key(); };
  std::vector<size_t> heap;
  heap.reserve(iters.size());
  for (size_t i = 0; i < iters.size(); ++i) {
    if (iters[i].Valid()) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  out->reserve(std::min(limit, static_cast<size_t>(1024)));
  while (!heap.empty() && out->size() < limit) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    size_t idx = heap.back();
    heap.pop_back();
    out->push_back(
        ScanEntry{iters[idx].key(), iters[idx].value().value, iters[idx].value().etag});
    iters[idx].Next();
    if (iters[idx].Valid()) {
      heap.push_back(idx);
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  return Status::OK();
}

size_t ShardedStore::Count() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard_ptr->mu);
    total += shard_ptr->map.size();
  }
  return total;
}

void ShardedStore::MultiGet(const std::vector<std::string>& keys,
                            std::vector<MultiGetResult>* results) {
  if (executor_ == nullptr || !executor_->enabled() || keys.size() < 2) {
    Store::MultiGet(keys, results);
    return;
  }
  results->clear();
  results->resize(keys.size());
  executor_->ParallelForEach(keys.size(), [this, &keys, results](size_t i) {
    MultiGetResult& r = (*results)[i];
    r.status = Get(keys[i], &r.value, &r.etag);
    return r.status;
  });
}

void ShardedStore::MultiWrite(const std::vector<WriteOp>& ops,
                              std::vector<WriteResult>* results) {
  if (executor_ == nullptr || !executor_->enabled() || ops.size() < 2) {
    Store::MultiWrite(ops, results);
    return;
  }
  results->clear();
  results->resize(ops.size());
  executor_->ParallelForEach(ops.size(), [this, &ops, results](size_t i) {
    WriteResult& r = (*results)[i];
    r.status = ApplyWriteOp(*this, ops[i], &r.etag);
    return r.status;
  });
}

}  // namespace kv
}  // namespace ycsbt
