#include "kv/store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>

#include "common/random.h"
#include "common/rpc_executor.h"

namespace ycsbt {
namespace kv {

void Store::MultiGet(const std::vector<std::string>& keys,
                     std::vector<MultiGetResult>* results) {
  results->clear();
  results->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    MultiGetResult& r = (*results)[i];
    r.status = Get(keys[i], &r.value, &r.etag);
  }
}

void Store::MultiWrite(const std::vector<WriteOp>& ops,
                       std::vector<WriteResult>* results) {
  results->clear();
  results->resize(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    WriteResult& r = (*results)[i];
    r.status = ApplyWriteOp(*this, ops[i], &r.etag);
  }
}

Status ApplyWriteOp(Store& store, const WriteOp& op, uint64_t* etag_out) {
  switch (op.kind) {
    case WriteOp::Kind::kPut:
      return store.Put(op.key, op.value, etag_out);
    case WriteOp::Kind::kConditionalPut:
      return store.ConditionalPut(op.key, op.value, op.expected_etag, etag_out);
    case WriteOp::Kind::kDelete:
      return store.Delete(op.key);
    case WriteOp::Kind::kConditionalDelete:
      return store.ConditionalDelete(op.key, op.expected_etag);
  }
  return Status::InvalidArgument("unknown WriteOp kind");
}

ShardedStore::ShardedStore(StoreOptions options) : options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.wal_path.empty()) open_ = true;  // volatile store needs no Open()
}

ShardedStore::~ShardedStore() = default;

Status ShardedStore::Open() {
  if (options_.wal_path.empty()) return Status::OK();
  if (open_) return Status::InvalidArgument("store already open");
  // 1. Load the last checkpoint, if any.  A checkpoint is simply a compacted
  //    log: a sequence of kPut records plus an etag watermark, so the WAL
  //    replay machinery reads it directly.
  if (!options_.checkpoint_path.empty()) {
    Status s = WriteAheadLog::Replay(
        options_.checkpoint_path, [this](const WalRecord& r) {
          if (r.key.empty()) {
            // Reserved empty-key record: the checkpoint's etag watermark.
            checkpoint_etag_ = r.etag;
            uint64_t seen = etag_source_.load(std::memory_order_relaxed);
            while (r.etag > seen && !etag_source_.compare_exchange_weak(
                                        seen, r.etag, std::memory_order_relaxed)) {
            }
            return;
          }
          ApplyReplayed(r, /*skip_upto_etag=*/0);
        });
    if (!s.ok()) return s;
  }
  // 2. Replay WAL records newer than the checkpoint.  (After a crash between
  //    checkpoint rename and WAL truncation the log still holds records the
  //    snapshot already folded in; the watermark filters them out.)
  size_t wal_valid_bytes = 0;
  Status s = WriteAheadLog::Replay(
      options_.wal_path,
      [this](const WalRecord& r) { ApplyReplayed(r, checkpoint_etag_); },
      &wal_valid_bytes);
  if (!s.ok()) return s;
  // 3. Chop off any torn tail a crash left behind: new appends must follow
  //    the last intact record, or the tear would sit mid-log (and read as
  //    hard corruption) on the next replay.
  struct ::stat st;
  if (::stat(options_.wal_path.c_str(), &st) == 0 &&
      static_cast<size_t>(st.st_size) > wal_valid_bytes) {
    if (::truncate(options_.wal_path.c_str(),
                   static_cast<off_t>(wal_valid_bytes)) != 0) {
      return Status::IOError("WAL torn-tail truncation failed");
    }
  }
  s = wal_.Open(options_.wal_path, MakeWalOptions());
  if (!s.ok()) return s;
  open_ = true;
  return Status::OK();
}

kv::WalOptions ShardedStore::MakeWalOptions() const {
  WalOptions wal;
  wal.group_commit = options_.wal_group_commit;
  wal.group_max_batch = options_.wal_group_max_batch;
  wal.group_window_us = options_.wal_group_window_us;
  return wal;
}

void ShardedStore::AdvanceEtagSource(uint64_t etag) {
  uint64_t seen = etag_source_.load(std::memory_order_relaxed);
  while (etag > seen && !etag_source_.compare_exchange_weak(
                            seen, etag, std::memory_order_relaxed)) {
  }
}

void ShardedStore::ApplyReplayed(const WalRecord& record, uint64_t skip_upto_etag) {
  if (record.kind == WalRecord::Kind::kBulkPut) {
    // One frame covers a whole sorted run; entry i carries etag + i.  The
    // frame's CRC already validated the payload, so a decode failure can
    // only be an encoder bug — apply whatever decoded.
    std::vector<std::pair<std::string, std::string>> run;
    DecodeBulkPayload(record.value, &run);
    for (size_t i = 0; i < run.size(); ++i) {
      uint64_t etag = record.etag + i;
      if (etag <= skip_upto_etag) continue;
      Shard& shard = ShardFor(run[i].first);
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      shard.map.Upsert(run[i].first, Entry{std::move(run[i].second), etag});
    }
    if (!run.empty()) AdvanceEtagSource(record.etag + run.size() - 1);
    return;
  }
  if (record.etag != 0 && record.etag <= skip_upto_etag) return;
  Shard& shard = ShardFor(record.key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (record.kind == WalRecord::Kind::kPut) {
    shard.map.Upsert(record.key, Entry{record.value, record.etag});
  } else {
    shard.map.Erase(record.key);
  }
  // Keep the etag source ahead of everything the log produced.
  AdvanceEtagSource(record.etag);
}

Status ShardedStore::Checkpoint() {
  if (options_.checkpoint_path.empty() || options_.wal_path.empty()) {
    return Status::InvalidArgument("checkpointing needs checkpoint_path and wal_path");
  }
  if (!open_) return Status::IOError("store not opened");

  // Stop the world: exclusive locks on every shard, in index order (the same
  // order Scan takes shared locks, so the two cannot deadlock).
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);

  std::string tmp = options_.checkpoint_path + ".tmp";
  {
    WriteAheadLog snapshot;
    std::remove(tmp.c_str());
    Status s = snapshot.Open(tmp, MakeWalOptions());
    if (!s.ok()) return s;
    for (auto& shard : shards_) {
      SkipList<Entry>::Iterator it(&shard->map);
      for (it.SeekToFirst(); it.Valid(); it.Next()) {
        WalRecord record;
        record.kind = WalRecord::Kind::kPut;
        record.etag = it.value().etag;
        record.key = it.key();
        record.value = it.value().value;
        s = snapshot.Append(record, /*sync=*/false);
        if (!s.ok()) return s;
      }
    }
    // Etag watermark last (reserved empty key), with the snapshot's only
    // fdatasync: if this record is intact, the whole snapshot is.
    WalRecord watermark;
    watermark.kind = WalRecord::Kind::kPut;
    watermark.etag = etag_source_.load(std::memory_order_relaxed);
    s = snapshot.Append(watermark, /*sync=*/true);
    if (!s.ok()) return s;
  }
  if (std::rename(tmp.c_str(), options_.checkpoint_path.c_str()) != 0) {
    return Status::IOError("checkpoint rename failed");
  }

  // Log compaction: everything in the WAL is now covered by the snapshot.
  wal_.Close();
  std::FILE* trunc = std::fopen(options_.wal_path.c_str(), "wb");
  if (trunc == nullptr) return Status::IOError("WAL truncate failed");
  std::fclose(trunc);
  return wal_.Open(options_.wal_path, MakeWalOptions());
}

Status ShardedStore::BulkLoad(
    const std::vector<std::pair<std::string, std::string>>& sorted_records) {
  if (!open_) return Status::IOError("store not opened");
  if (sorted_records.empty()) return Status::OK();
  for (size_t i = 0; i < sorted_records.size(); ++i) {
    if (sorted_records[i].first.empty()) {
      return Status::InvalidArgument("empty keys are reserved");
    }
    if (i > 0 && sorted_records[i].first <= sorted_records[i - 1].first) {
      return Status::InvalidArgument(
          "bulk-load run must be strictly ascending at index " +
          std::to_string(i));
    }
  }
  // Reserve a contiguous etag range up front: record i carries first + i,
  // so replay and checkpoint watermarks order the run like individual puts.
  uint64_t first_etag = etag_source_.fetch_add(sorted_records.size(),
                                               std::memory_order_relaxed) +
                        1;
  if (wal_.IsOpen()) {
    // One frame for the whole run; rides group commit like any other append.
    WalRecord record;
    record.kind = WalRecord::Kind::kBulkPut;
    record.etag = first_etag;
    record.value = EncodeBulkPayload(sorted_records);
    Status s = wal_.Append(record, options_.sync_wal);
    if (!s.ok()) return s;
  }
  // Stream the run once, in order, into one sorted-insert cursor per shard.
  // The global sort order restricted to any one shard is still strictly
  // ascending, so every cursor sees a valid feed.  Walking the record array
  // sequentially (rather than bucketing indices per shard and re-reading the
  // array shard by shard) keeps the key/value string accesses prefetchable —
  // on a 1M-record run that is the difference between the fast path beating
  // per-key `Put` and losing to it.  Locks are taken in index order, the
  // same order `Scan` and `Checkpoint` use, so the paths cannot deadlock.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  std::vector<SkipList<Entry>::SortedInserter> cursors;
  locks.reserve(shards_.size());
  cursors.reserve(shards_.size());
  for (auto& shard : shards_) {
    locks.emplace_back(shard->mu);
    cursors.emplace_back(&shard->map);
  }
  for (size_t i = 0; i < sorted_records.size(); ++i) {
    cursors[ShardIndex(sorted_records[i].first)].Insert(
        sorted_records[i].first, Entry{sorted_records[i].second, first_etag + i});
  }
  return Status::OK();
}

ShardedStore::Shard& ShardedStore::ShardFor(const std::string& key) {
  return *shards_[ShardIndex(key)];
}

size_t ShardedStore::ShardIndex(const std::string& key) const {
  uint64_t h = FNVHash64(std::hash<std::string>{}(key));
  return h % shards_.size();
}

Status ShardedStore::LogMutation(WalRecord::Kind kind, const std::string& key,
                                 std::string_view value, uint64_t etag) {
  if (!wal_.IsOpen()) return Status::OK();
  WalRecord record;
  record.kind = kind;
  record.etag = etag;
  record.key = key;
  record.value = std::string(value);
  return wal_.Append(record, options_.sync_wal);
}

Status ShardedStore::Get(const std::string& key, std::string* value,
                         uint64_t* etag) {
  if (!open_) return Status::IOError("store not opened");
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  const Entry* entry = shard.map.Find(key);
  if (entry == nullptr) return Status::NotFound(key);
  if (value != nullptr) *value = entry->value;
  if (etag != nullptr) *etag = entry->etag;
  return Status::OK();
}

Status ShardedStore::Put(const std::string& key, std::string_view value,
                         uint64_t* etag_out) {
  if (!open_) return Status::IOError("store not opened");
  if (key.empty()) return Status::InvalidArgument("empty keys are reserved");
  uint64_t etag = NextEtag();
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  Status s = LogMutation(WalRecord::Kind::kPut, key, value, etag);
  if (!s.ok()) return s;
  shard.map.Upsert(key, Entry{std::string(value), etag});
  if (etag_out != nullptr) *etag_out = etag;
  return Status::OK();
}

Status ShardedStore::ConditionalPut(const std::string& key, std::string_view value,
                                    uint64_t expected_etag, uint64_t* etag_out) {
  if (!open_) return Status::IOError("store not opened");
  if (key.empty()) return Status::InvalidArgument("empty keys are reserved");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const Entry* entry = shard.map.Find(key);
  if (expected_etag == kEtagAbsent) {
    if (entry != nullptr) return Status::Conflict("key exists: " + key);
  } else {
    if (entry == nullptr) return Status::Conflict("key absent: " + key);
    if (entry->etag != expected_etag) {
      return Status::Conflict("etag mismatch on " + key);
    }
  }
  uint64_t etag = NextEtag();
  Status s = LogMutation(WalRecord::Kind::kPut, key, value, etag);
  if (!s.ok()) return s;
  shard.map.Upsert(key, Entry{std::string(value), etag});
  if (etag_out != nullptr) *etag_out = etag;
  return Status::OK();
}

Status ShardedStore::Delete(const std::string& key) {
  if (!open_) return Status::IOError("store not opened");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (shard.map.Find(key) == nullptr) return Status::NotFound(key);
  // Deletes consume an etag too, so the log is totally ordered per key and
  // checkpoint watermarks can filter replay exactly.
  Status s = LogMutation(WalRecord::Kind::kDelete, key, "", NextEtag());
  if (!s.ok()) return s;
  shard.map.Erase(key);
  return Status::OK();
}

Status ShardedStore::ConditionalDelete(const std::string& key,
                                       uint64_t expected_etag) {
  if (!open_) return Status::IOError("store not opened");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const Entry* entry = shard.map.Find(key);
  if (entry == nullptr) return Status::Conflict("key absent: " + key);
  if (entry->etag != expected_etag) return Status::Conflict("etag mismatch on " + key);
  Status s = LogMutation(WalRecord::Kind::kDelete, key, "", NextEtag());
  if (!s.ok()) return s;
  shard.map.Erase(key);
  return Status::OK();
}

Status ShardedStore::Scan(const std::string& start_key, size_t limit,
                          std::vector<ScanEntry>* out) {
  if (!open_) return Status::IOError("store not opened");
  out->clear();
  if (limit == 0) return Status::OK();
  // K-way merge over per-shard iterators under shared locks (taken in index
  // order, the same order Checkpoint uses, so the two cannot deadlock).
  // O(limit * log shards) instead of collecting `limit` rows per shard.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  std::vector<SkipList<Entry>::Iterator> iters;
  iters.reserve(shards_.size());
  for (auto& shard : shards_) {
    locks.emplace_back(shard->mu);
    iters.emplace_back(&shard->map);
    iters.back().Seek(start_key);
  }

  // Max-heap on reversed comparison -> pops smallest key first.
  auto greater = [&](size_t a, size_t b) { return iters[a].key() > iters[b].key(); };
  std::vector<size_t> heap;
  heap.reserve(iters.size());
  for (size_t i = 0; i < iters.size(); ++i) {
    if (iters[i].Valid()) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  out->reserve(std::min(limit, static_cast<size_t>(1024)));
  while (!heap.empty() && out->size() < limit) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    size_t idx = heap.back();
    heap.pop_back();
    out->push_back(
        ScanEntry{iters[idx].key(), iters[idx].value().value, iters[idx].value().etag});
    iters[idx].Next();
    if (iters[idx].Valid()) {
      heap.push_back(idx);
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  return Status::OK();
}

size_t ShardedStore::Count() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard_ptr->mu);
    total += shard_ptr->map.size();
  }
  return total;
}

void ShardedStore::MultiGet(const std::vector<std::string>& keys,
                            std::vector<MultiGetResult>* results) {
  if (executor_ == nullptr || !executor_->enabled() || keys.size() < 2) {
    Store::MultiGet(keys, results);
    return;
  }
  results->clear();
  results->resize(keys.size());
  executor_->ParallelForEach(keys.size(), [this, &keys, results](size_t i) {
    MultiGetResult& r = (*results)[i];
    r.status = Get(keys[i], &r.value, &r.etag);
    return r.status;
  });
}

void ShardedStore::MultiWrite(const std::vector<WriteOp>& ops,
                              std::vector<WriteResult>* results) {
  if (executor_ == nullptr || !executor_->enabled() || ops.size() < 2) {
    Store::MultiWrite(ops, results);
    return;
  }
  results->clear();
  results->resize(ops.size());
  executor_->ParallelForEach(ops.size(), [this, &ops, results](size_t i) {
    WriteResult& r = (*results)[i];
    r.status = ApplyWriteOp(*this, ops[i], &r.etag);
    return r.status;
  });
}

}  // namespace kv
}  // namespace ycsbt
