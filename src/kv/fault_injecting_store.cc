#include "kv/fault_injecting_store.h"

#include <sstream>

#include "common/latency_model.h"

namespace ycsbt {
namespace kv {

namespace {

/// splitmix64 finaliser: a high-quality 64->64 mix, so consecutive tickets
/// give uncorrelated draws.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultOptions FaultOptions::FromProperties(const Properties& props) {
  FaultOptions o;
  o.seed = props.GetUint("fault.seed", o.seed);
  o.error_rate = props.GetDouble("fault.error_rate", o.error_rate);
  o.throttle_rate = props.GetDouble("fault.throttle_rate", o.throttle_rate);
  o.throttle_burst =
      static_cast<int>(props.GetInt("fault.throttle_burst", o.throttle_burst));
  if (o.throttle_burst < 1) o.throttle_burst = 1;
  o.latency_spike_rate =
      props.GetDouble("fault.latency_spike_rate", o.latency_spike_rate);
  o.latency_spike_us = props.GetUint("fault.latency_spike_us", o.latency_spike_us);
  o.lost_reply_rate = props.GetDouble("fault.lost_reply_rate", o.lost_reply_rate);
  o.crash_rate = props.GetDouble("fault.crash_rate", o.crash_rate);
  std::string points = props.Get("fault.crash_points", "");
  std::stringstream ss(points);
  std::string token;
  while (std::getline(ss, token, ',')) {
    // Trim surrounding spaces.
    size_t b = token.find_first_not_of(" \t");
    size_t e = token.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    o.crash_points |= ParseCrashPointToken(token.substr(b, e - b + 1));
  }
  return o;
}

FaultInjectingStore::FaultInjectingStore(std::shared_ptr<Store> base,
                                         FaultOptions options)
    : base_(std::move(base)), options_(options) {}

FaultStats FaultInjectingStore::stats() const {
  FaultStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.throttles = throttles_.load(std::memory_order_relaxed);
  s.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  s.lost_replies = lost_replies_.load(std::memory_order_relaxed);
  s.crashes = crashes_.load(std::memory_order_relaxed);
  return s;
}

double FaultInjectingStore::Draw(uint64_t ticket, uint64_t salt) const {
  uint64_t v = Mix64(options_.seed ^ Mix64(ticket ^ (salt * 0x9E3779B97F4A7C15ull)));
  return static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
}

Status FaultInjectingStore::BeginRequest() {
  if (!enabled()) return Status::OK();
  requests_.fetch_add(1, std::memory_order_relaxed);
  uint64_t ticket = ticket_.fetch_add(1, std::memory_order_relaxed);

  if (options_.latency_spike_rate > 0.0 &&
      Draw(ticket, /*salt=*/1) < options_.latency_spike_rate) {
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
    SleepMicros(options_.latency_spike_us);
  }

  if (options_.throttle_rate > 0.0) {
    // Drain an in-progress burst first: any request arriving during a burst
    // is rejected regardless of its own draw.
    int left = throttle_burst_left_.load(std::memory_order_relaxed);
    while (left > 0 && !throttle_burst_left_.compare_exchange_weak(
                           left, left - 1, std::memory_order_relaxed)) {
    }
    if (left > 0) {
      throttles_.fetch_add(1, std::memory_order_relaxed);
      return Status::RateLimited("injected: throttle burst");
    }
    if (Draw(ticket, /*salt=*/2) < options_.throttle_rate) {
      throttle_burst_left_.store(options_.throttle_burst - 1,
                                 std::memory_order_relaxed);
      throttles_.fetch_add(1, std::memory_order_relaxed);
      return Status::RateLimited("injected: throttled");
    }
  }

  if (options_.error_rate > 0.0 &&
      Draw(ticket, /*salt=*/3) < options_.error_rate) {
    // Half the transient errors are Timeouts (retryable), half IOErrors
    // (not retryable per Status::IsRetryable) — so a retry loop's giveup
    // path is exercised alongside its success path.
    if ((Mix64(options_.seed ^ ticket) & 1) != 0) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return Status::Timeout("injected: transient timeout");
    }
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected: transient io error");
  }
  return Status::OK();
}

bool FaultInjectingStore::LoseReply() {
  if (!enabled() || options_.lost_reply_rate <= 0.0) return false;
  uint64_t ticket = ticket_.fetch_add(1, std::memory_order_relaxed);
  if (Draw(ticket, /*salt=*/4) < options_.lost_reply_rate) {
    lost_replies_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjectingStore::ShouldCrash(CrashPoint point) {
  if (!enabled() || options_.crash_rate <= 0.0) return false;
  if ((options_.crash_points & CrashPointBit(point)) == 0) return false;
  uint64_t ticket = crash_ticket_.fetch_add(1, std::memory_order_relaxed);
  if (Draw(ticket, /*salt=*/5) < options_.crash_rate) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Status FaultInjectingStore::Get(const std::string& key, std::string* value,
                                uint64_t* etag) {
  Status s = BeginRequest();
  if (!s.ok()) return s;
  return base_->Get(key, value, etag);
}

Status FaultInjectingStore::Put(const std::string& key, std::string_view value,
                                uint64_t* etag_out) {
  Status s = BeginRequest();
  if (!s.ok()) return s;
  s = base_->Put(key, value, etag_out);
  if (s.ok() && LoseReply()) return Status::Timeout("injected: reply lost");
  return s;
}

Status FaultInjectingStore::ConditionalPut(const std::string& key,
                                           std::string_view value,
                                           uint64_t expected_etag,
                                           uint64_t* etag_out) {
  Status s = BeginRequest();
  if (!s.ok()) return s;
  s = base_->ConditionalPut(key, value, expected_etag, etag_out);
  if (s.ok() && LoseReply()) return Status::Timeout("injected: reply lost");
  return s;
}

Status FaultInjectingStore::Delete(const std::string& key) {
  Status s = BeginRequest();
  if (!s.ok()) return s;
  s = base_->Delete(key);
  if (s.ok() && LoseReply()) return Status::Timeout("injected: reply lost");
  return s;
}

Status FaultInjectingStore::ConditionalDelete(const std::string& key,
                                              uint64_t expected_etag) {
  Status s = BeginRequest();
  if (!s.ok()) return s;
  s = base_->ConditionalDelete(key, expected_etag);
  if (s.ok() && LoseReply()) return Status::Timeout("injected: reply lost");
  return s;
}

void FaultInjectingStore::MultiGet(const std::vector<std::string>& keys,
                                   std::vector<MultiGetResult>* results) {
  results->clear();
  results->resize(keys.size());
  // Gate every key in item order BEFORE anything goes down: the ticket
  // sequence (and the shared throttle-burst drain) must not depend on how
  // the base store schedules the surviving sub-batch across pool threads.
  std::vector<std::string> admitted;
  std::vector<size_t> admitted_index;
  admitted.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    Status s = BeginRequest();
    if (!s.ok()) {
      (*results)[i].status = s;
      continue;
    }
    admitted.push_back(keys[i]);
    admitted_index.push_back(i);
  }
  if (admitted.empty()) return;
  std::vector<MultiGetResult> sub;
  base_->MultiGet(admitted, &sub);
  for (size_t j = 0; j < sub.size(); ++j) {
    (*results)[admitted_index[j]] = std::move(sub[j]);
  }
}

void FaultInjectingStore::MultiWrite(const std::vector<WriteOp>& ops,
                                     std::vector<WriteResult>* results) {
  results->clear();
  results->resize(ops.size());
  std::vector<WriteOp> admitted;
  std::vector<size_t> admitted_index;
  admitted.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    Status s = BeginRequest();
    if (!s.ok()) {
      (*results)[i].status = s;
      continue;
    }
    admitted.push_back(ops[i]);
    admitted_index.push_back(i);
  }
  if (!admitted.empty()) {
    std::vector<WriteResult> sub;
    base_->MultiWrite(admitted, &sub);
    for (size_t j = 0; j < sub.size(); ++j) {
      (*results)[admitted_index[j]] = std::move(sub[j]);
    }
  }
  // Lost-reply draws also run in item order, after the whole sub-batch
  // settled, for the same determinism reason.
  for (size_t i = 0; i < ops.size(); ++i) {
    WriteResult& r = (*results)[i];
    if (r.status.ok() && LoseReply()) {
      r.status = Status::Timeout("injected: reply lost");
    }
  }
}

Status FaultInjectingStore::Scan(const std::string& start_key, size_t limit,
                                 std::vector<ScanEntry>* out) {
  Status s = BeginRequest();
  if (!s.ok()) return s;
  return base_->Scan(start_key, limit, out);
}

size_t FaultInjectingStore::Count() const { return base_->Count(); }

}  // namespace kv
}  // namespace ycsbt
