#ifndef YCSBT_KV_TORTURE_H_
#define YCSBT_KV_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ycsbt {
namespace kv {

/// Configuration of one crash-recovery torture run (DESIGN.md §14).
///
/// The harness records a seeded CEW-style workload (atomic two-account
/// transfers via `MultiPut`, single-account rewrites, scratch inserts and
/// deletes, periodic stop-the-world checkpoints) against a durable
/// `ShardedStore`, capturing per-operation WAL frame boundaries, per-epoch
/// WAL byte streams and checkpoint images, and an acked-commit oracle
/// (the exact key/value/etag state after every acknowledged operation).
/// It then simulates a crash at every frame boundary plus a seeded sample
/// of mid-frame and mid-checkpoint offsets by materialising the frozen
/// byte state into a scratch directory and reopening, and re-runs the
/// workload live under a `FaultInjectingEnv` for the named crash points
/// and error injections that need real protocol interleaving.
struct TortureOptions {
  uint64_t seed = 0xC0FFEEull;
  /// Working root; the harness creates per-case subdirectories inside.
  std::string dir;
  int accounts = 24;           ///< CEW accounts, each loaded with
  int initial_balance = 100;   ///< this balance (the conserved total)
  int ops = 220;               ///< mixed operations after the load
  int checkpoint_every = 80;   ///< ops between checkpoints (0 = never)
  int num_shards = 4;
  int mid_frame_samples = 48;  ///< sampled mid-frame crash offsets
  int ckpt_scrub_samples = 12; ///< sampled torn/bit-rotted checkpoint images
};

/// Outcome of a torture run.  `failures == 0` means every simulated crash
/// state recovered to exactly the acked-commit oracle: no acked commit lost,
/// no partial multi-key transaction exposed, CEW balance conserved, un-acked
/// tails only ever truncated.
struct TortureReport {
  uint64_t crash_states = 0;   ///< distinct simulated crash states verified
  uint64_t failures = 0;
  std::vector<std::string> failure_details;  ///< capped at 20 entries

  uint64_t recorded_ops = 0;   ///< acked operations in the recorded run
  uint64_t epochs = 0;         ///< checkpoint generations (>= 1)
  uint64_t wal_bytes_total = 0;
  /// FNV-1a digest over the recorded byte streams, every case identity and
  /// every recovered-state digest: equal seeds => equal digests, byte for
  /// byte (the determinism acceptance check).
  uint64_t schedule_digest = 0;

  // Aggregates of the per-case recovery reports.
  uint64_t replayed_records_total = 0;
  uint64_t truncated_bytes_total = 0;
  uint64_t scrubbed_checkpoints = 0;
  uint64_t live_cases = 0;     ///< live fault-injection cases run
};

/// Runs the full torture suite under `opts.dir` (created if needed; the
/// harness wipes only files it wrote).  Deterministic in `opts.seed`.
TortureReport RunCrashTorture(const TortureOptions& opts);

/// Demonstrates the pre-hardening missing-directory-fsync bug: runs a
/// workload whose second checkpoint crashes at `ckpt_post_trunc` with
/// `checkpoint_dir_sync` as given, reopens, and returns true when acked
/// commits were LOST (the crash resurrected the old snapshot next to the
/// already-truncated WAL).  With `dir_sync=false` (the old behaviour) this
/// returns true; with the hardened default it must return false.
bool DemonstrateDirSyncLoss(const std::string& dir, uint64_t seed,
                            bool dir_sync);

/// Renders a report as the sweep binary's summary block.
std::string FormatTortureReport(const TortureReport& report);

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_TORTURE_H_
