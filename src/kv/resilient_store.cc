#include "kv/resilient_store.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/clock.h"
#include "common/rpc_executor.h"

namespace ycsbt {
namespace kv {

ResilienceOptions ResilienceOptions::FromProperties(const Properties& props) {
  ResilienceOptions o;
  o.breaker = CircuitBreakerOptions::FromProperties(props);
  o.hedge_enabled = props.GetBool("hedge.enabled", o.hedge_enabled);
  o.hedge_delay_us = props.GetInt("hedge.delay_us", o.hedge_delay_us);
  o.hedge_percentile = props.GetDouble("hedge.percentile", o.hedge_percentile);
  o.hedge_percentile = std::clamp(o.hedge_percentile, 1.0, 100.0);
  o.hedge_delay_min_us =
      props.GetUint("hedge.delay_min_us", o.hedge_delay_min_us);
  o.hedge_delay_max_us =
      props.GetUint("hedge.delay_max_us", o.hedge_delay_max_us);
  if (o.hedge_delay_max_us < o.hedge_delay_min_us) {
    o.hedge_delay_max_us = o.hedge_delay_min_us;
  }
  o.hedge_workers =
      static_cast<int>(props.GetInt("hedge.workers", o.hedge_workers));
  if (o.hedge_workers < 1) o.hedge_workers = 1;
  o.deadline_fail_fast =
      props.GetBool("deadline.enforce", o.deadline_fail_fast);
  return o;
}

ResilientStore::WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ResilientStore::WorkerPool::Start(int workers) {
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, queue drained
        std::function<void()> fn = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        fn();
        lock.lock();
      }
    });
  }
}

void ResilientStore::WorkerPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty() || stopping_) {
      // No pool (hedging off) — degenerate to inline execution.
      fn();
      return;
    }
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

ResilientStore::ResilientStore(std::shared_ptr<Store> base,
                               ResilienceOptions options, int backends)
    : base_(std::move(base)), options_(std::move(options)) {
  if (options_.breaker.enabled) {
    breakers_ =
        std::make_unique<CircuitBreakerSet>(options_.breaker, backends);
  }
  if (options_.hedge_enabled) {
    read_samples_us_.reserve(256);
    pool_.Start(options_.hedge_workers);
  }
}

ResilientStore::~ResilientStore() = default;

Status ResilientStore::Preflight(const std::string& key, CircuitBreaker** b,
                                 bool* probe) {
  if (OpExempt()) return Status::OK();
  if (options_.deadline_fail_fast && OpDeadlineExpired()) {
    deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::Timeout("op deadline expired; request abandoned");
  }
  if (breakers_ != nullptr) {
    CircuitBreaker& breaker =
        backend_resolver_
            ? breakers_->backend(backend_resolver_(key) % breakers_->backends())
            : breakers_->ForKey(key);
    CircuitBreaker::Ticket ticket = breaker.Admit();
    if (!ticket.admitted) {
      // Advertise the wall-clock cooldown only when it is the operative
      // mechanism.  A count-based cooldown is burned by *arrivals*, so
      // telling the retry loop to sleep it out would starve the breaker of
      // the rejects that become its Half-Open probe.
      if (options_.breaker.cooldown_rejects > 0) {
        return Status::Unavailable("breaker open");
      }
      return Status::Unavailable(
          "breaker open; retry_after_us=" +
          std::to_string(options_.breaker.cooldown_us));
    }
    *b = &breaker;
    *probe = ticket.probe;
  }
  return Status::OK();
}

void ResilientStore::RecordReadSampleUs(uint64_t us) {
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (read_samples_us_.size() < 256) {
    read_samples_us_.push_back(us);
  } else {
    read_samples_us_[samples_next_] = us;
    samples_next_ = (samples_next_ + 1) % read_samples_us_.size();
  }
}

uint64_t ResilientStore::CurrentHedgeDelayUs() const {
  if (options_.hedge_delay_us >= 0) {
    return static_cast<uint64_t>(options_.hedge_delay_us);
  }
  std::vector<uint64_t> samples;
  {
    std::lock_guard<std::mutex> lock(samples_mu_);
    samples = read_samples_us_;
  }
  // Too little signal: hedge late rather than flood a cold store.
  if (samples.size() < 16) return options_.hedge_delay_max_us;
  size_t idx = static_cast<size_t>(static_cast<double>(samples.size() - 1) *
                                   options_.hedge_percentile / 100.0);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<ptrdiff_t>(idx),
                   samples.end());
  return std::clamp(samples[idx], options_.hedge_delay_min_us,
                    options_.hedge_delay_max_us);
}

Status ResilientStore::HedgedRead(const std::string& key, const ReadFn& op,
                                  CircuitBreaker* b, bool probe,
                                  ReadResult* out) {
  auto cell = std::make_shared<HedgeCell>();
  // The primary runs on a pool worker carrying this thread's OpContext, so
  // the caller can adopt the hedge's answer and return while the stalled
  // primary is still in flight.
  OpContext ctx = OpContext::Snapshot();
  pool_.Submit([this, cell, op, b, probe, ctx] {
    OpContextAdoptScope scope(ctx);
    Stopwatch watch;
    ReadResult result;
    result.status = op(*base_, &result);
    if (b != nullptr) b->OnResult(result.status, probe);
    RecordReadSampleUs(watch.ElapsedMicros());
    std::lock_guard<std::mutex> lock(cell->mu);
    cell->primary = std::move(result);
    cell->primary_done = true;
    if (cell->winner == 0 && Definitive(cell->primary.status)) {
      cell->winner = 1;
    }
    cell->cv.notify_all();
  });

  uint64_t delay_us = CurrentHedgeDelayUs();
  std::unique_lock<std::mutex> lock(cell->mu);
  cell->cv.wait_for(lock, std::chrono::microseconds(delay_us),
                    [&] { return cell->primary_done; });
  if (!cell->primary_done) {
    // Primary is slow: issue one hedge on this thread.  The hedge pays its
    // own breaker/deadline admission, so an overloaded backend is never
    // double-hammered through the hedging path.
    lock.unlock();
    CircuitBreaker* hb = nullptr;
    bool hedge_probe = false;
    bool send = Preflight(key, &hb, &hedge_probe).ok();
    ReadResult hedge;
    if (send) {
      hedges_sent_.fetch_add(1, std::memory_order_relaxed);
      hedge.status = op(*base_, &hedge);
      if (hb != nullptr) hb->OnResult(hedge.status, hedge_probe);
    }
    lock.lock();
    if (send) {
      if (cell->winner == 0 && Definitive(hedge.status)) {
        // First usable answer: the primary is cancelled in effect — its
        // result will be discarded when it lands.
        cell->winner = 2;
        hedges_won_.fetch_add(1, std::memory_order_relaxed);
      } else {
        hedges_wasted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (cell->winner == 2) {
      *out = std::move(hedge);
      return out->status;
    }
    cell->cv.wait(lock, [&] { return cell->primary_done; });
  }
  *out = std::move(cell->primary);
  return out->status;
}

Status ResilientStore::RunRead(const std::string& key, const ReadFn& op,
                               ReadResult* out) {
  CircuitBreaker* b = nullptr;
  bool probe = false;
  Status admit = Preflight(key, &b, &probe);
  if (!admit.ok()) return admit;
  if (options_.hedge_enabled && !OpExempt()) {
    return HedgedRead(key, op, b, probe, out);
  }
  Stopwatch watch;
  out->status = op(*base_, out);
  if (b != nullptr) b->OnResult(out->status, probe);
  if (options_.hedge_enabled) RecordReadSampleUs(watch.ElapsedMicros());
  return out->status;
}

Status ResilientStore::Get(const std::string& key, std::string* value,
                           uint64_t* etag) {
  ReadResult result;
  // The ReadFn owns a copy of the key: a hedged primary may still be
  // running it on a pool worker after the caller (and its key) is gone.
  Status s = RunRead(
      key,
      [key](Store& store, ReadResult* r) {
        return store.Get(key, &r->value, &r->etag);
      },
      &result);
  if (s.ok()) {
    if (value != nullptr) *value = std::move(result.value);
    if (etag != nullptr) *etag = result.etag;
  }
  return s;
}

Status ResilientStore::Scan(const std::string& start_key, size_t limit,
                            std::vector<ScanEntry>* out) {
  ReadResult result;
  // Owning capture: see Get — the primary can outlive the caller's key.
  Status s = RunRead(
      start_key,
      [start_key, limit](Store& store, ReadResult* r) {
        return store.Scan(start_key, limit, &r->entries);
      },
      &result);
  if (s.ok() && out != nullptr) *out = std::move(result.entries);
  return s;
}

void ResilientStore::MultiGet(const std::vector<std::string>& keys,
                              std::vector<MultiGetResult>* results) {
  if (options_.hedge_enabled) {
    // Hedging must see every request individually (the straggler protection
    // is per-RPC), so the batch decomposes into per-key hedged reads.  With
    // an executor attached they run concurrently — the fan-out then happens
    // here rather than in the cloud store below.
    results->clear();
    results->resize(keys.size());
    auto run_one = [this, &keys, results](size_t i) {
      MultiGetResult& r = (*results)[i];
      const std::string& key = keys[i];
      ReadResult read;
      r.status = RunRead(
          key,
          [key](Store& store, ReadResult* out) {
            return store.Get(key, &out->value, &out->etag);
          },
          &read);
      if (r.status.ok()) {
        r.value = std::move(read.value);
        r.etag = read.etag;
      }
      return r.status;
    };
    if (executor_ != nullptr) {
      executor_->ParallelForEach(keys.size(), run_one);
    } else {
      for (size_t i = 0; i < keys.size(); ++i) run_one(i);
    }
    return;
  }

  // No hedging: admit every key in item order, pass the admitted subset down
  // as one batch, settle the breaker tickets in item order afterwards.  The
  // ordered admission/settlement keeps the breaker lifecycle a pure function
  // of the request stream even when the sub-batch fans out below.
  results->clear();
  results->resize(keys.size());
  std::vector<std::string> admitted;
  std::vector<size_t> admitted_index;
  std::vector<CircuitBreaker*> admitted_breaker;
  std::vector<bool> admitted_probe;
  admitted.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    CircuitBreaker* b = nullptr;
    bool probe = false;
    Status s = Preflight(keys[i], &b, &probe);
    if (!s.ok()) {
      (*results)[i].status = s;
      continue;
    }
    admitted.push_back(keys[i]);
    admitted_index.push_back(i);
    admitted_breaker.push_back(b);
    admitted_probe.push_back(probe);
  }
  if (admitted.empty()) return;
  std::vector<MultiGetResult> sub;
  base_->MultiGet(admitted, &sub);
  for (size_t j = 0; j < sub.size(); ++j) {
    if (admitted_breaker[j] != nullptr) {
      admitted_breaker[j]->OnResult(sub[j].status, admitted_probe[j]);
    }
    (*results)[admitted_index[j]] = std::move(sub[j]);
  }
}

void ResilientStore::MultiWrite(const std::vector<WriteOp>& ops,
                                std::vector<WriteResult>* results) {
  // Mutations are never hedged; the batch analogue of the single-op
  // mutation path is ordered admission, one sub-batch, ordered settlement.
  results->clear();
  results->resize(ops.size());
  std::vector<WriteOp> admitted;
  std::vector<size_t> admitted_index;
  std::vector<CircuitBreaker*> admitted_breaker;
  std::vector<bool> admitted_probe;
  admitted.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    CircuitBreaker* b = nullptr;
    bool probe = false;
    Status s = Preflight(ops[i].key, &b, &probe);
    if (!s.ok()) {
      (*results)[i].status = s;
      continue;
    }
    admitted.push_back(ops[i]);
    admitted_index.push_back(i);
    admitted_breaker.push_back(b);
    admitted_probe.push_back(probe);
  }
  if (admitted.empty()) return;
  std::vector<WriteResult> sub;
  base_->MultiWrite(admitted, &sub);
  for (size_t j = 0; j < sub.size(); ++j) {
    if (admitted_breaker[j] != nullptr) {
      admitted_breaker[j]->OnResult(sub[j].status, admitted_probe[j]);
    }
    (*results)[admitted_index[j]] = std::move(sub[j]);
  }
}

// Mutations: breaker + deadline admission only.  They never enter the
// hedging path — a duplicated lock put, TSR put or delete would break the
// transaction protocol's exactly-once assumptions.

Status ResilientStore::Put(const std::string& key, std::string_view value,
                           uint64_t* etag_out) {
  CircuitBreaker* b = nullptr;
  bool probe = false;
  Status admit = Preflight(key, &b, &probe);
  if (!admit.ok()) return admit;
  Status s = base_->Put(key, value, etag_out);
  if (b != nullptr) b->OnResult(s, probe);
  return s;
}

Status ResilientStore::ConditionalPut(const std::string& key,
                                      std::string_view value,
                                      uint64_t expected_etag,
                                      uint64_t* etag_out) {
  CircuitBreaker* b = nullptr;
  bool probe = false;
  Status admit = Preflight(key, &b, &probe);
  if (!admit.ok()) return admit;
  Status s = base_->ConditionalPut(key, value, expected_etag, etag_out);
  if (b != nullptr) b->OnResult(s, probe);
  return s;
}

Status ResilientStore::Delete(const std::string& key) {
  CircuitBreaker* b = nullptr;
  bool probe = false;
  Status admit = Preflight(key, &b, &probe);
  if (!admit.ok()) return admit;
  Status s = base_->Delete(key);
  if (b != nullptr) b->OnResult(s, probe);
  return s;
}

Status ResilientStore::ConditionalDelete(const std::string& key,
                                         uint64_t expected_etag) {
  CircuitBreaker* b = nullptr;
  bool probe = false;
  Status admit = Preflight(key, &b, &probe);
  if (!admit.ok()) return admit;
  Status s = base_->ConditionalDelete(key, expected_etag);
  if (b != nullptr) b->OnResult(s, probe);
  return s;
}

size_t ResilientStore::Count() const { return base_->Count(); }

ResilienceStats ResilientStore::stats() const {
  ResilienceStats s;
  if (breakers_ != nullptr) s.breaker = breakers_->Aggregate();
  s.hedges_sent = hedges_sent_.load(std::memory_order_relaxed);
  s.hedges_won = hedges_won_.load(std::memory_order_relaxed);
  s.hedges_wasted = hedges_wasted_.load(std::memory_order_relaxed);
  s.deadline_rejects = deadline_rejects_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kv
}  // namespace ycsbt
