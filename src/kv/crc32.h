#ifndef YCSBT_KV_CRC32_H_
#define YCSBT_KV_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ycsbt {
namespace kv {

/// CRC-32C (Castagnoli) over a byte range; guards every write-ahead-log
/// record against torn writes and bit rot, as in LevelDB/RocksDB logs.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

/// Masked CRC (RocksDB trick): storing a CRC of data that itself embeds CRCs
/// can defeat the checksum; the mask makes stored CRCs distinct from raw ones.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_CRC32_H_
