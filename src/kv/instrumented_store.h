#ifndef YCSBT_KV_INSTRUMENTED_STORE_H_
#define YCSBT_KV_INSTRUMENTED_STORE_H_

#include <functional>
#include <memory>
#include <string>

#include "common/latency_model.h"
#include "kv/store.h"

namespace ycsbt {
namespace kv {

/// Store decorator that injects latency and test hooks around every
/// operation of an underlying store.
///
/// Two jobs:
///  - **Latency injection** — the `RawHttpDB` binding wraps the local engine
///    in one of these with a ~1.5 ms lognormal model to stand in for the
///    paper's loopback Boost-ASIO HTTP hop (Listing 3 latencies).  The wider
///    per-operation window is also what lets concurrent read-modify-write
///    races actually interleave, producing the Figure 4 anomalies.
///  - **Deterministic fault injection** — tests install hooks that pause a
///    thread between specific operations, turning "may lose an update under
///    concurrency" into an exact, repeatable interleaving.
class InstrumentedStore : public Store {
 public:
  enum class Op { kGet, kPut, kConditionalPut, kDelete, kConditionalDelete, kScan };

  /// Called before (phase=false) and after (phase=true is `after`) each op.
  using Hook = std::function<void(Op op, const std::string& key, bool after)>;

  /// @param base underlying store; shared so bindings can layer freely.
  explicit InstrumentedStore(std::shared_ptr<Store> base)
      : base_(std::move(base)) {}

  /// Installs the latency model sampled (with a per-thread RNG) on every op.
  void set_latency_model(LatencyModel model) { latency_ = model; }

  /// Installs a test hook; pass nullptr to remove.
  void set_hook(Hook hook) { hook_ = std::move(hook); }

  Status Get(const std::string& key, std::string* value,
             uint64_t* etag = nullptr) override {
    Enter(Op::kGet, key);
    Status s = base_->Get(key, value, etag);
    Exit(Op::kGet, key);
    return s;
  }

  Status Put(const std::string& key, std::string_view value,
             uint64_t* etag_out = nullptr) override {
    Enter(Op::kPut, key);
    Status s = base_->Put(key, value, etag_out);
    Exit(Op::kPut, key);
    return s;
  }

  Status ConditionalPut(const std::string& key, std::string_view value,
                        uint64_t expected_etag,
                        uint64_t* etag_out = nullptr) override {
    Enter(Op::kConditionalPut, key);
    Status s = base_->ConditionalPut(key, value, expected_etag, etag_out);
    Exit(Op::kConditionalPut, key);
    return s;
  }

  Status Delete(const std::string& key) override {
    Enter(Op::kDelete, key);
    Status s = base_->Delete(key);
    Exit(Op::kDelete, key);
    return s;
  }

  Status ConditionalDelete(const std::string& key, uint64_t expected_etag) override {
    Enter(Op::kConditionalDelete, key);
    Status s = base_->ConditionalDelete(key, expected_etag);
    Exit(Op::kConditionalDelete, key);
    return s;
  }

  Status Scan(const std::string& start_key, size_t limit,
              std::vector<ScanEntry>* out) override {
    Enter(Op::kScan, start_key);
    Status s = base_->Scan(start_key, limit, out);
    Exit(Op::kScan, start_key);
    return s;
  }

  size_t Count() const override { return base_->Count(); }

  Store* base() const { return base_.get(); }

 private:
  void Enter(Op op, const std::string& key) {
    if (hook_) hook_(op, key, /*after=*/false);
    if (latency_.Enabled()) {
      latency_.Inject(ThreadLocalRandom());
    }
  }

  void Exit(Op op, const std::string& key) {
    if (hook_) hook_(op, key, /*after=*/true);
  }

  std::shared_ptr<Store> base_;
  LatencyModel latency_;
  Hook hook_;
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_INSTRUMENTED_STORE_H_
