#ifndef YCSBT_KV_FAULT_ENV_H_
#define YCSBT_KV_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/properties.h"
#include "kv/env.h"

namespace ycsbt {
namespace kv {

/// Configuration of the storage fault layer, read from the `storage.fault.*`
/// property namespace.  Deterministic `*_at` triggers are 1-based counters
/// over operations seen while armed; `*_rate` triggers are seeded
/// per-operation draws (same discipline as the `fault.*` request-level
/// substrate, DESIGN.md §7) — a fixed seed and a fixed operation stream
/// replay a byte-identical fault schedule.
///
///   storage.fault.seed                  determinism seed
///   storage.fault.torn_write_at         Nth armed append tears mid-buffer
///                                       (half the bytes land, short write
///                                       reported; no crash — the live-device
///                                       error shape)
///   storage.fault.write_error_rate      seeded per-append failure (no bytes)
///   storage.fault.sync_fail_at          Nth armed fdatasync fails with
///                                       fsyncgate semantics: error reported
///                                       once, the dirty (unsynced) bytes are
///                                       silently DROPPED, later syncs "work"
///   storage.fault.sync_fail_rate        seeded per-sync variant of the same
///   storage.fault.enospc_after_bytes    byte budget across armed appends;
///                                       the append that crosses it is cut
///                                       short with an injected ENOSPC
///   storage.fault.truncate_fail_at      Nth armed TruncateFile fails
///   storage.fault.read_flip_offset      flip one bit at this offset of every
///                                       armed whole-file read (-1 = off)
///   storage.fault.read_flip_rate        seeded per-read chance of one bit
///                                       flip at a seeded offset
///   storage.fault.read_flip_file        substring filter for flips ("" = all)
///   storage.fault.crash_point           named crash point (`wal_frame_mid`,
///                                       `wal_pre_sync`, `wal_post_sync`,
///                                       `ckpt_pre_rename`,
///                                       `ckpt_post_rename_pre_trunc`,
///                                       `ckpt_post_trunc`, ...) at which the
///                                       env freezes all file state
///   storage.fault.crash_point_pass      fire on the Nth pass of that point
///   storage.fault.crash_write_offset    freeze mid-append when the matching
///                                       file reaches this byte offset — the
///                                       `wal_frame_mid` torture trigger
///   storage.fault.crash_file            substring filter for the offset
///                                       trigger ("" = any file)
///   storage.fault.drop_unsynced_on_crash  crash also drops every byte
///                                       written since the file's last
///                                       successful sync (the page cache
///                                       that never made it to media)
struct StorageFaultOptions {
  uint64_t seed = 0x57064FA17ull;

  uint64_t torn_write_at = 0;
  double write_error_rate = 0.0;
  uint64_t sync_fail_at = 0;
  double sync_fail_rate = 0.0;
  uint64_t enospc_after_bytes = 0;
  uint64_t truncate_fail_at = 0;
  int64_t read_flip_offset = -1;
  double read_flip_rate = 0.0;
  std::string read_flip_file;

  std::string crash_point;
  uint64_t crash_point_pass = 1;
  int64_t crash_write_offset = -1;
  std::string crash_file;
  bool drop_unsynced_on_crash = false;

  bool Any() const {
    return torn_write_at > 0 || write_error_rate > 0.0 || sync_fail_at > 0 ||
           sync_fail_rate > 0.0 || enospc_after_bytes > 0 ||
           truncate_fail_at > 0 || read_flip_offset >= 0 ||
           read_flip_rate > 0.0 || !crash_point.empty() ||
           crash_write_offset >= 0;
  }

  static StorageFaultOptions FromProperties(const Properties& props);
};

/// Counters of every storage fault actually injected (fixed seed + fixed
/// operation stream => identical counts run after run).
struct StorageFaultStats {
  uint64_t appends = 0;          ///< armed appends seen
  uint64_t syncs = 0;            ///< armed syncs seen
  uint64_t torn_writes = 0;      ///< short writes injected
  uint64_t write_errors = 0;     ///< clean append failures injected
  uint64_t sync_failures = 0;    ///< fsyncgate failures injected
  uint64_t enospc_failures = 0;  ///< ENOSPC rejections injected
  uint64_t truncate_failures = 0;
  uint64_t read_flips = 0;       ///< bit flips served to readers
  uint64_t crash_points_seen = 0;  ///< named crash-point passes observed
  bool crashed = false;            ///< the env froze (simulated kernel crash)
  std::string crash_fired_at;      ///< point name that froze it

  uint64_t TotalInjected() const {
    return torn_writes + write_errors + sync_failures + enospc_failures +
           truncate_failures + read_flips + (crashed ? 1 : 0);
  }
};

/// A seeded, deterministic fault-injecting `Env` decorator — the storage
/// twin of `FaultInjectingStore`.  While disarmed (`set_enabled(false)`,
/// the load/validation phases) every call passes straight through.
///
/// Crash semantics: once a crash trigger fires (named point, or an append
/// reaching `crash_write_offset`), the env freezes — the bytes already on
/// disk stay exactly as the kernel would have left them (optionally minus
/// everything unsynced, see `drop_unsynced_on_crash`), every rename not yet
/// made durable by a directory fsync is rolled back (the old dirent
/// resurrects — the adversarial metadata ordering journalled filesystems
/// permit), and every subsequent operation fails with an IOError.  Recovery
/// then reopens the frozen files through a fresh Env, exactly like a process
/// restart after kill -9.
class FaultInjectingEnv : public Env {
 public:
  FaultInjectingEnv(Env* base, StorageFaultOptions options);

  /// Arms/disarms injection.  Thread-safe; the benchmark driver arms only
  /// the measured run phase.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  const StorageFaultOptions& options() const { return options_; }
  StorageFaultStats stats() const;
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // Env interface.
  Status NewWritableFile(const std::string& path, bool truncate_existing,
                         std::unique_ptr<WritableFile>* out) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Status FileSize(const std::string& path, uint64_t* size) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDirOf(const std::string& path) override;
  Status MaybeCrashPoint(const char* point) override;

 private:
  friend class FaultWritableFile;

  struct PendingRename {
    std::string dir;
    std::string from;
    std::string to;
    std::string previous_dst;  ///< content `to` held before the rename
    bool had_dst = false;
  };

  Status CrashedStatus() const;
  Status DoAppend(class FaultWritableFile* file, std::string_view data);
  Status DoSync(class FaultWritableFile* file);
  void Deregister(class FaultWritableFile* file);
  /// Freezes the env: rolls back un-dir-synced renames, optionally drops
  /// unsynced file bytes, and fails every later operation.  Requires `mu_`.
  void TriggerCrashLocked(const std::string& point);
  double Draw(uint64_t ticket, uint64_t salt) const;
  static std::string DirOf(const std::string& path);

  Env* base_;
  StorageFaultOptions options_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> crashed_{false};

  mutable std::mutex mu_;
  std::string crash_fired_at_;
  std::vector<class FaultWritableFile*> live_files_;
  std::vector<PendingRename> pending_renames_;
  std::map<std::string, uint64_t> point_passes_;
  uint64_t append_ticket_ = 0;
  uint64_t sync_ticket_ = 0;
  uint64_t truncate_ticket_ = 0;
  uint64_t read_ticket_ = 0;
  uint64_t bytes_appended_ = 0;

  StorageFaultStats stats_;
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_FAULT_ENV_H_
