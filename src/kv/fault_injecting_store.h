#ifndef YCSBT_KV_FAULT_INJECTING_STORE_H_
#define YCSBT_KV_FAULT_INJECTING_STORE_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/fault.h"
#include "common/properties.h"
#include "kv/store.h"

namespace ycsbt {
namespace kv {

/// Configuration of the fault-injection layer, read from the `fault.*`
/// property namespace:
///
///   fault.seed              determinism seed (default 0xFA117C0DE)
///   fault.error_rate        transient IOError/Timeout per request (0..1)
///   fault.throttle_rate     probability a request starts a throttle burst
///   fault.throttle_burst    requests rejected per burst, incl. the trigger
///   fault.latency_spike_rate  probability of an injected latency spike
///   fault.latency_spike_us  spike duration (default 2000)
///   fault.lost_reply_rate   mutations only: the write APPLIES but the
///                           caller sees Timeout (reply lost after apply)
///   fault.crash_rate        probability per crash-point pass (0..1)
///   fault.crash_points      comma list of after_lock_puts, after_tsr_put
///                           (alias before_roll_forward), mid_roll_forward,
///                           before_tsr_delete, or "all"
struct FaultOptions {
  uint64_t seed = 0xFA117C0DEull;
  double error_rate = 0.0;
  double throttle_rate = 0.0;
  int throttle_burst = 4;
  double latency_spike_rate = 0.0;
  uint64_t latency_spike_us = 2000;
  double lost_reply_rate = 0.0;
  double crash_rate = 0.0;
  uint32_t crash_points = 0;  ///< bitmask of CrashPointBit()

  /// True when any fault can actually fire (the factory only wraps the
  /// store when this holds).
  bool Any() const {
    return error_rate > 0.0 || throttle_rate > 0.0 || latency_spike_rate > 0.0 ||
           lost_reply_rate > 0.0 || (crash_rate > 0.0 && crash_points != 0);
  }

  static FaultOptions FromProperties(const Properties& props);
};

/// Counters of every fault actually injected, for tests and determinism
/// checks (`fault.seed` fixed => identical counts for identical request
/// streams).
struct FaultStats {
  uint64_t requests = 0;        ///< requests seen while armed
  uint64_t errors = 0;          ///< injected IOError rejections
  uint64_t timeouts = 0;        ///< injected Timeout rejections
  uint64_t throttles = 0;       ///< injected RateLimited rejections
  uint64_t latency_spikes = 0;  ///< injected latency spikes
  uint64_t lost_replies = 0;    ///< mutations applied but reported lost
  uint64_t crashes = 0;         ///< commit-pipeline crash points fired

  uint64_t TotalInjected() const {
    return errors + timeouts + throttles + lost_replies + crashes;
  }
};

/// A seeded, deterministic fault-injecting decorator over any `kv::Store`.
///
/// Every request, while the layer is *armed* (`set_enabled(true)`), draws a
/// ticket from an atomic counter; all fault decisions are pure functions of
/// (seed, ticket), so a single-threaded request stream replays the exact
/// same fault schedule run after run, and a fixed-length multi-threaded run
/// injects the same fault *counts* (the set of firing tickets is fixed even
/// when their assignment to threads races).
///
/// Faults injected per request, in order:
///   1. latency spike (sleep, then proceed);
///   2. throttle burst (reject with RateLimited; the next `throttle_burst-1`
///      requests across all threads are rejected too — the 503 storm shape
///      cloud stores actually produce);
///   3. transient error (reject with IOError or Timeout before the base op
///      runs — the op does NOT apply);
///   4. lost reply (mutations only: the base op RUNS and applies, then the
///      caller is told Timeout — the ambiguity that forces etag /
///      conditional-put arbitration in the transaction layer).
///
/// The same object implements `CrashInjector`, so the transaction library
/// can consult the identical deterministic schedule at its commit-pipeline
/// crash points.
class FaultInjectingStore : public Store, public CrashInjector {
 public:
  FaultInjectingStore(std::shared_ptr<Store> base, FaultOptions options);

  /// Arms/disarms injection (the benchmark driver arms only the measured
  /// run phase, never the load or validation sweeps).  Thread-safe.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  const FaultOptions& options() const { return options_; }
  FaultStats stats() const;

  // kv::Store interface.
  Status Get(const std::string& key, std::string* value,
             uint64_t* etag = nullptr) override;
  Status Put(const std::string& key, std::string_view value,
             uint64_t* etag_out = nullptr) override;
  Status ConditionalPut(const std::string& key, std::string_view value,
                        uint64_t expected_etag,
                        uint64_t* etag_out = nullptr) override;
  Status Delete(const std::string& key) override;
  Status ConditionalDelete(const std::string& key,
                           uint64_t expected_etag) override;
  Status Scan(const std::string& start_key, size_t limit,
              std::vector<ScanEntry>* out) override;
  /// Batch ops: every item pays its own fault gate (and, for mutations, its
  /// own lost-reply draw), evaluated sequentially in item order so the
  /// ticket schedule stays deterministic; only the admitted subset is passed
  /// down as a (possibly concurrent) sub-batch.
  void MultiGet(const std::vector<std::string>& keys,
                std::vector<MultiGetResult>* results) override;
  void MultiWrite(const std::vector<WriteOp>& ops,
                  std::vector<WriteResult>* results) override;
  size_t Count() const override;

  // CrashInjector interface (consulted by the transaction library).
  bool ShouldCrash(CrashPoint point) override;

 private:
  /// Pre-op fault gate shared by every request.  OK = proceed to the base
  /// op; anything else is the injected rejection.
  Status BeginRequest();

  /// Post-apply gate for mutations: true = swallow the success and report
  /// a lost reply instead.
  bool LoseReply();

  /// Deterministic uniform double in [0,1) for ticket `ticket` and fault
  /// stream `salt` (distinct salts give independent streams).
  double Draw(uint64_t ticket, uint64_t salt) const;

  std::shared_ptr<Store> base_;
  FaultOptions options_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> ticket_{0};
  std::atomic<uint64_t> crash_ticket_{0};
  std::atomic<int> throttle_burst_left_{0};

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> throttles_{0};
  std::atomic<uint64_t> latency_spikes_{0};
  std::atomic<uint64_t> lost_replies_{0};
  std::atomic<uint64_t> crashes_{0};
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_FAULT_INJECTING_STORE_H_
