#ifndef YCSBT_KV_WAL_H_
#define YCSBT_KV_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"

namespace ycsbt {
namespace kv {

/// One logical write-ahead-log record.
struct WalRecord {
  enum class Kind : uint8_t { kPut = 1, kDelete = 2 };

  Kind kind = Kind::kPut;
  uint64_t etag = 0;
  std::string key;
  std::string value;  // empty for deletes
};

/// Append-only write-ahead log with per-record CRC-32C.
///
/// Record wire format (little-endian):
///   u32 masked_crc  — CRC-32C of everything after this field
///   u8  kind
///   u64 etag
///   u32 key_len, u32 value_len
///   key bytes, value bytes
///
/// Replay stops cleanly at the first torn or corrupt record (the tail that a
/// crash may leave behind), matching the recovery contract of LevelDB-style
/// logs.  `Sync()` maps to fdatasync when `StoreOptions::sync_wal` is set;
/// the paper's latency-vs-durability trade-off (§II-A) is exactly this knob.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if needed) the log at `path` for appending.
  Status Open(const std::string& path);

  /// Appends one record; thread-safe.
  Status Append(const WalRecord& record, bool sync);

  /// Replays all intact records in `path` in order.  A corrupt tail ends
  /// replay with OK; corruption *before* the end returns Corruption.
  /// `valid_bytes` (optional) receives the offset just past the last intact
  /// record — the owner must truncate the file there before appending again,
  /// or the torn tail would sit mid-log on the next replay.
  static Status Replay(const std::string& path,
                       const std::function<void(const WalRecord&)>& apply,
                       size_t* valid_bytes = nullptr);

  /// Closes the file; further Appends fail.
  void Close();

  bool IsOpen() const { return file_ != nullptr; }

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_WAL_H_
