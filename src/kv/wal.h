#ifndef YCSBT_KV_WAL_H_
#define YCSBT_KV_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "kv/env.h"

namespace ycsbt {
namespace kv {

/// One logical write-ahead-log record.
struct WalRecord {
  /// `kBulkPut` is one durable frame covering a whole pre-sorted run of
  /// puts (the `ShardedStore::BulkLoad` fast path): `key` is empty, `value`
  /// is an `EncodeBulkPayload` packing of the run, and `etag` is the etag of
  /// the run's *first* record — entry i of the payload carries `etag + i`.
  ///
  /// `kTxnPut` is the same packing for an *atomic multi-key transaction*
  /// (`ShardedStore::MultiPut`): all its puts commit in one frame, so a
  /// crash can only ever lose or keep the transaction as a unit — replay
  /// never exposes a partial multi-key commit.  Unlike `kBulkPut` the keys
  /// need not be sorted.
  enum class Kind : uint8_t { kPut = 1, kDelete = 2, kBulkPut = 3, kTxnPut = 4 };

  Kind kind = Kind::kPut;
  uint64_t etag = 0;
  std::string key;
  std::string value;  // empty for deletes
};

/// Packs a run of (key, value) pairs into the payload of one `kBulkPut`
/// frame: u32 count, then per record u32 key_len, u32 value_len, key bytes,
/// value bytes (little-endian throughout, like the frame header).
std::string EncodeBulkPayload(
    const std::vector<std::pair<std::string, std::string>>& records);

/// Decodes an `EncodeBulkPayload` payload, appending to `records`.
/// Returns false when the payload is malformed (truncated or trailing
/// bytes); `records` may then hold a prefix of the run.
bool DecodeBulkPayload(const std::string& payload,
                       std::vector<std::pair<std::string, std::string>>* records);

/// Commit-path configuration of a `WriteAheadLog`.
struct WalOptions {
  /// Leader/follower group commit: appenders enqueue encoded frames and one
  /// leader writes + syncs the whole batch with a single write/fdatasync,
  /// then wakes every follower whose LSN the durable watermark now covers.
  /// Off = the seed behaviour (each append writes under the lock).
  bool group_commit = false;
  /// Largest number of frames one leader drains in a single batch.
  int group_max_batch = 64;
  /// Extra time a *syncing* leader waits for more frames to accumulate
  /// before writing, in microseconds.  0 (the default) is pure natural
  /// batching: the leader takes whatever queued while the previous leader
  /// was syncing — batch size then tracks writer concurrency with no added
  /// latency.  Non-zero trades commit latency for larger batches on media
  /// where fdatasync dwarfs the window.
  uint32_t group_window_us = 0;
  /// Filesystem seam; nullptr = `Env::Default()`.  Tests substitute a
  /// `FaultInjectingEnv` to tear writes, fail syncs and freeze crash states.
  Env* env = nullptr;
};

/// Durability counters of one `WriteAheadLog`, drained (snapshot + reset) by
/// the measurement layer so each benchmark run reports its own window.
struct WalStats {
  uint64_t appends = 0;  ///< records acknowledged (written + flushed)
  uint64_t syncs = 0;    ///< fdatasync calls issued
  uint64_t batches = 0;  ///< write batches (== appends when group commit is off)
  Histogram sync_latency_us;  ///< per-fdatasync duration, microseconds
  Histogram batch_records;    ///< records per write batch
};

/// Append-only write-ahead log with per-record CRC-32C and optional
/// leader/follower group commit.
///
/// Record wire format (little-endian):
///   u32 masked_crc  — CRC-32C of everything after this field
///   u8  kind
///   u64 etag
///   u32 key_len, u32 value_len
///   key bytes, value bytes
///
/// Group-commit protocol (`WalOptions::group_commit`): every appender encodes
/// and CRCs its frame *outside* the lock, enqueues it under the lock with a
/// monotonically increasing LSN, and blocks.  The first waiter that finds no
/// active leader becomes the leader: it drains the queue (after an optional
/// accumulation window), issues one write (+ one fdatasync when any batch
/// member asked to sync) for the whole batch with the lock released,
/// publishes the durable-LSN watermark, steps down and wakes everyone.
/// Followers whose LSN the watermark covers return; one of the rest takes
/// over as the next leader (leader handoff).  Batches therefore form
/// naturally while the previous leader is inside fdatasync.
///
/// Every byte goes through the `Env` seam (`WalOptions::env`), and the
/// protocol announces `wal_pre_sync` / `wal_post_sync` crash points around
/// each fdatasync — a `FaultInjectingEnv` can freeze the file exactly as a
/// kernel crash between those milestones would have (DESIGN.md §14).
///
/// Failure contract (fail-stop): a short write, flush failure or fdatasync
/// failure *poisons* the log — the torn frame is truncated back to the last
/// intact offset where possible, every in-flight and subsequent append fails
/// with the poison status, and nothing after the failure point is ever
/// acknowledged.  A torn frame can then only ever be a *tail*, which `Replay`
/// (and `ShardedStore::Open`'s truncation) already handles; it can never be
/// buried mid-log by later appends.  A failed fdatasync is never retried:
/// under fsyncgate semantics the kernel may already have dropped the dirty
/// pages, so the only safe answer is to stop acknowledging.
///
/// Replay stops cleanly at the first torn or corrupt record (the tail that a
/// crash may leave behind), matching the recovery contract of LevelDB-style
/// logs.  `sync` maps to fdatasync when `StoreOptions::sync_wal` is set; the
/// paper's latency-vs-durability trade-off (§II-A) is exactly this knob.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if needed) the log at `path` for appending.
  Status Open(const std::string& path, WalOptions options = {});

  /// Appends one record; thread-safe.  Returns once the record is written
  /// and flushed (and fdatasync'd when `sync`), or with the poison status if
  /// the log has fail-stopped.  `lsn_out` (optional) receives the record's
  /// log sequence number; an append that returned OK is covered by
  /// `durable_lsn()` forever after.
  Status Append(const WalRecord& record, bool sync, uint64_t* lsn_out = nullptr);

  /// Replays all intact records in `path` in order.  A corrupt tail ends
  /// replay with OK; corruption *before* the end returns Corruption.
  /// `valid_bytes` (optional) receives the offset just past the last intact
  /// record — the owner must truncate the file there before appending again,
  /// or the torn tail would sit mid-log on the next replay.  Reads go
  /// through `env` (nullptr = `Env::Default()`).
  static Status Replay(const std::string& path,
                       const std::function<void(const WalRecord&)>& apply,
                       size_t* valid_bytes = nullptr, Env* env = nullptr);

  /// Closes the file; further Appends fail.  Waits for an in-flight leader
  /// batch to finish.  Callers must not close while appends are in flight.
  void Close();

  bool IsOpen() const { return file_ != nullptr; }

  /// True once a write failure has fail-stopped the log.
  bool IsPoisoned() const;

  /// Highest LSN acknowledged as written (and synced, when requested).
  uint64_t durable_lsn() const;

  /// Snapshot-and-reset of the durability counters accumulated since the
  /// last drain (or Open).
  WalStats DrainStats();

 private:
  struct PendingFrame {
    std::string frame;
    uint64_t lsn = 0;
    bool sync = false;
  };

  /// Appends with group commit off: write (+ sync) under the lock.
  Status AppendDirect(std::string frame, bool sync, uint64_t lsn,
                      std::unique_lock<std::mutex>& lock);

  /// Appends with group commit on: enqueue, then follow or lead.
  Status AppendGrouped(std::string frame, bool sync, uint64_t lsn,
                       std::unique_lock<std::mutex>& lock);

  /// Leads one batch: drains up to `group_max_batch` pending frames (after
  /// the accumulation window, when `sync`), writes them in one shot with the
  /// lock released, publishes the durable watermark and steps down.
  Status LeadBatch(bool sync, std::unique_lock<std::mutex>& lock);

  /// Writes `buffer` as one Append (+ crash-pointed fdatasync when `sync`).
  /// On failure `*why` names the failing step.  Called with the I/O allowed
  /// (direct path: lock held; leader path: lock released — `file_` and
  /// `env_` are stable while a leader is active because Close waits).
  Status WriteAndMaybeSync(const std::string& buffer, bool sync,
                           uint64_t* sync_us, std::string* why);

  /// Records a fail-stop: poisons the log and attempts to truncate the file
  /// back to the last intact offset.  Requires `mu_`.
  void PoisonLocked(const std::string& why);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Env* env_ = nullptr;
  std::unique_ptr<WritableFile> file_;
  std::string path_;
  WalOptions options_;

  uint64_t next_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
  bool leader_active_ = false;
  std::vector<PendingFrame> pending_;

  bool poisoned_ = false;
  Status poison_status_;
  /// Bytes of fully written-and-flushed frames; the truncation target after
  /// a torn write.
  size_t intact_bytes_ = 0;

  WalStats stats_;
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_WAL_H_
