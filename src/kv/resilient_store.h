#ifndef YCSBT_KV_RESILIENT_STORE_H_
#define YCSBT_KV_RESILIENT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/op_context.h"
#include "common/properties.h"
#include "kv/store.h"

namespace ycsbt {

class RpcExecutor;

namespace kv {

/// Configuration of the overload-tolerance decorator.  `breaker.*` is the
/// per-backend circuit breaker (see `CircuitBreakerOptions`); the rest:
///
///   hedge.enabled       hedge idempotent reads (Get/Scan) after a delay
///                       (default false)
///   hedge.delay_us      fixed hedge delay; < 0 = adaptive, derived from the
///                       observed read-latency percentile (default -1)
///   hedge.percentile    percentile the adaptive delay tracks (default 95)
///   hedge.delay_min_us / hedge.delay_max_us
///                       clamp on the adaptive delay (1000 / 100000)
///   hedge.workers       threads running hedged primaries (default 4)
///   deadline.enforce    fail ops fast once the ambient `OpContext` deadline
///                       has passed (default true; only bites when the
///                       runner installs a deadline from retry.deadline_us)
struct ResilienceOptions {
  CircuitBreakerOptions breaker;
  bool hedge_enabled = false;
  int64_t hedge_delay_us = -1;
  double hedge_percentile = 95.0;
  uint64_t hedge_delay_min_us = 1'000;
  uint64_t hedge_delay_max_us = 100'000;
  int hedge_workers = 4;
  bool deadline_fail_fast = true;

  static ResilienceOptions FromProperties(const Properties& props);
};

/// Counters the decorator exposes for the runner's series/summary lines.
struct ResilienceStats {
  BreakerStats breaker;
  uint64_t hedges_sent = 0;    ///< hedge requests issued
  uint64_t hedges_won = 0;     ///< hedge finished first with a usable answer
  uint64_t hedges_wasted = 0;  ///< hedge finished after the primary (its
                               ///< result cancelled/discarded) or failed
  uint64_t deadline_rejects = 0;  ///< ops failed fast on an expired deadline
};

/// The overload-tolerance layer over the cloud-store path, as a `kv::Store`
/// decorator stacked *above* fault injection (so the breaker sees injected
/// throttle bursts exactly as it would see real 503s):
///
///   ClientTxnStore -> ResilientStore -> FaultInjectingStore -> SimCloudStore
///
/// Three mechanisms, each gated by the ambient `OpContext`:
///
///  1. *Deadline fail-fast*: once the per-transaction deadline has passed,
///     every further request fails immediately with `Timeout` instead of
///     paying another RPC round trip the caller can no longer use.
///  2. *Circuit breaking*: one rolling-window breaker per backend partition
///     (per cloud container).  Open breakers reject arrivals with
///     `Status::Unavailable` carrying a `retry_after_us=` hint, so the retry
///     loop cools down instead of hammering the saturated container.
///  3. *Hedged reads*: an idempotent Get/Scan whose primary has not answered
///     within the (p95-adaptive) hedge delay issues one duplicate request
///     and takes the first usable answer.  Mutations — lock puts, TSR puts,
///     deletes of the transaction protocol above — are never hedged, by
///     construction: only `Get`/`Scan` ever reach the hedging path.
///
/// Exempt sections (`OpExemptScope`, installed by the transaction library
/// around post-commit-point cleanup) bypass all three: a committed
/// transaction's roll-forward must not be cut off mid-flight just because
/// its deadline expired, and hedging it would duplicate mutations.
class ResilientStore : public Store {
 public:
  /// `backends` must match the partitioning of the store below (the cloud
  /// profile's container count) so each breaker fences one real backend.
  ResilientStore(std::shared_ptr<Store> base, ResilienceOptions options,
                 int backends);
  ~ResilientStore() override;

  Status Get(const std::string& key, std::string* value,
             uint64_t* etag = nullptr) override;
  Status Put(const std::string& key, std::string_view value,
             uint64_t* etag_out = nullptr) override;
  Status ConditionalPut(const std::string& key, std::string_view value,
                        uint64_t expected_etag,
                        uint64_t* etag_out = nullptr) override;
  Status Delete(const std::string& key) override;
  Status ConditionalDelete(const std::string& key,
                           uint64_t expected_etag) override;
  Status Scan(const std::string& start_key, size_t limit,
              std::vector<ScanEntry>* out) override;
  /// Batch ops: every item pays its own breaker/deadline admission and
  /// settles its own breaker ticket, in item order, so the breaker's
  /// rolling-window lifecycle stays deterministic under fan-out.  With
  /// hedging on, a `MultiGet` decomposes into per-key hedged reads (run on
  /// the shared executor when one is attached) so each request keeps its
  /// straggler protection; mutations are batched but never hedged.
  void MultiGet(const std::vector<std::string>& keys,
                std::vector<MultiGetResult>* results) override;
  void MultiWrite(const std::vector<WriteOp>& ops,
                  std::vector<WriteResult>* results) override;
  size_t Count() const override;

  /// Attaches the shared fan-out executor used by hedged `MultiGet`.
  void set_executor(std::shared_ptr<RpcExecutor> executor) {
    executor_ = std::move(executor);
  }

  /// Overrides the key->backend mapping the per-backend breakers charge.
  /// By default keys hash over the backends (the cloud store's container
  /// partitioning); a replicated store instead supplies the *region*
  /// currently serving the key, so a partitioned region's failures open
  /// only that region's breaker.  Install before traffic; must be
  /// thread-safe and return an index < the construction-time `backends`.
  void set_backend_resolver(std::function<size_t(const std::string&)> resolver) {
    backend_resolver_ = std::move(resolver);
  }

  ResilienceStats stats() const;
  /// True while any backend's breaker is Open — the brownout trigger.
  bool AnyBreakerOpen() const {
    return breakers_ != nullptr && breakers_->AnyOpen();
  }
  CircuitBreakerSet* breakers() { return breakers_.get(); }
  const ResilienceOptions& options() const { return options_; }

  /// The hedge delay the next hedged read would use (exposed for tests).
  uint64_t CurrentHedgeDelayUs() const;

 private:
  /// Result of one read-class request (Scan fills `entries`, Get the rest).
  struct ReadResult {
    Status status;
    std::string value;
    uint64_t etag = 0;
    std::vector<ScanEntry> entries;
  };
  using ReadFn = std::function<Status(Store&, ReadResult*)>;

  /// Rendezvous between a hedged read's primary (on a pool worker) and its
  /// caller; heap-allocated and shared so the caller may return with the
  /// hedge's answer while the stalled primary is still in flight.
  struct HedgeCell {
    std::mutex mu;
    std::condition_variable cv;
    bool primary_done = false;
    int winner = 0;  // 0 = undecided, 1 = primary, 2 = hedge
    ReadResult primary;
  };

  /// Tiny fixed worker pool running hedged primaries, so a caller whose
  /// primary is stuck behind a latency spike can take the hedge's answer
  /// and move on.
  class WorkerPool {
   public:
    ~WorkerPool();
    void Start(int workers);
    void Submit(std::function<void()> fn);

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
  };

  /// Deadline + breaker admission shared by every op.  On admission `*b`
  /// (may stay null) and `*probe` describe the breaker ticket to settle via
  /// `OnResult`; a non-OK return is the fail-fast status.
  Status Preflight(const std::string& key, CircuitBreaker** b, bool* probe);

  /// A usable answer callers take as final: everything except the
  /// infrastructure failures the breaker counts (throttle/timeout/IO).
  /// NotFound or a lost CAS is the backend *working*.
  static bool Definitive(const Status& s) {
    return !CircuitBreaker::CountsAsFailure(s);
  }

  Status RunRead(const std::string& key, const ReadFn& op, ReadResult* out);
  Status HedgedRead(const std::string& key, const ReadFn& op,
                    CircuitBreaker* b, bool probe, ReadResult* out);

  void RecordReadSampleUs(uint64_t us);

  const std::shared_ptr<Store> base_;
  const ResilienceOptions options_;
  std::unique_ptr<CircuitBreakerSet> breakers_;  // null when breaker is off
  std::function<size_t(const std::string&)> backend_resolver_;  // null = hash
  std::shared_ptr<RpcExecutor> executor_;        // null = sequential batches

  std::atomic<uint64_t> hedges_sent_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> hedges_wasted_{0};
  std::atomic<uint64_t> deadline_rejects_{0};

  /// Recent primary-read latencies feeding the adaptive hedge delay.
  mutable std::mutex samples_mu_;
  std::vector<uint64_t> read_samples_us_;
  size_t samples_next_ = 0;

  /// Last member: destroyed (joined) first, before `base_` goes away.
  WorkerPool pool_;
};

}  // namespace kv
}  // namespace ycsbt

#endif  // YCSBT_KV_RESILIENT_STORE_H_
