#include "cloud/replicated_cloud_store.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/op_context.h"

namespace ycsbt {
namespace cloud {

bool ParseReadMode(const std::string& token, ReadMode* out) {
  if (token == "leader") {
    *out = ReadMode::kLeader;
  } else if (token == "quorum") {
    *out = ReadMode::kQuorum;
  } else if (token == "stale") {
    *out = ReadMode::kStale;
  } else if (token == "nearest") {
    *out = ReadMode::kNearest;
  } else {
    return false;
  }
  return true;
}

const char* ReadModeName(ReadMode mode) {
  switch (mode) {
    case ReadMode::kLeader:
      return "leader";
    case ReadMode::kQuorum:
      return "quorum";
    case ReadMode::kStale:
      return "stale";
    case ReadMode::kNearest:
      return "nearest";
  }
  return "unknown";
}

Status ReplicationOptions::FromProperties(const Properties& props,
                                          ReplicationOptions* out) {
  ReplicationOptions o;
  o.regions = static_cast<int>(props.GetInt("cloud.regions", o.regions));
  if (o.regions < 2) o.regions = 2;
  std::string mode = props.Get("cloud.read_mode", "leader");
  if (!ParseReadMode(mode, &o.read_mode)) {
    return Status::InvalidArgument("cloud.read_mode: unknown mode '" + mode +
                                   "' (leader|quorum|stale|nearest)");
  }
  o.replica_lag_us = props.GetUint("cloud.replica_lag_us", o.replica_lag_us);
  o.replica_lag_ops = props.GetUint("cloud.replica_lag_ops", o.replica_lag_ops);
  o.local_region =
      static_cast<int>(props.GetInt("cloud.local_region", o.local_region));
  if (o.local_region < 0 || o.local_region >= o.regions) o.local_region = 0;
  o.script = FailoverScript::FromProperties(props);
  *out = o;
  return Status::OK();
}

ReplicatedCloudStore::ReplicatedCloudStore(std::shared_ptr<kv::Store> base,
                                           std::shared_ptr<kv::Store> raw,
                                           ReplicationOptions options)
    : base_(std::move(base)),
      raw_(std::move(raw)),
      opts_(std::move(options)),
      script_(opts_.script),
      regions_(static_cast<size_t>(opts_.regions)),
      rng_(opts_.seed) {}

void ReplicatedCloudStore::set_fault_enabled(bool enabled) {
  std::lock_guard<std::mutex> lk(mu_);
  armed_ = enabled;
}

int ReplicatedCloudStore::leader() const {
  std::lock_guard<std::mutex> lk(mu_);
  return leader_;
}

size_t ReplicatedCloudStore::BreakerBackendFor(const std::string&) const {
  std::lock_guard<std::mutex> lk(mu_);
  switch (opts_.read_mode) {
    case ReadMode::kLeader:
    case ReadMode::kQuorum:
      return static_cast<size_t>(leader_);
    case ReadMode::kStale:
      return static_cast<size_t>(StaleRegionLocked());
    case ReadMode::kNearest:
      return static_cast<size_t>(opts_.local_region);
  }
  return 0;
}

ReplicationStats ReplicatedCloudStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

ReplicationStats ReplicatedCloudStore::DrainStats() {
  std::lock_guard<std::mutex> lk(mu_);
  ReplicationStats out = std::move(stats_);
  stats_ = ReplicationStats{};
  return out;
}

bool ReplicatedCloudStore::VisibleLocked(const PendingApply& p) const {
  if (opts_.replica_lag_ops > 0) return seq_ >= p.visible_seq;
  return WallMicros() >= p.visible_at_us;
}

void ReplicatedCloudStore::DrainLocked(std::deque<PendingApply>* q) {
  while (!q->empty() && VisibleLocked(q->front())) {
    q->pop_front();
    ++stats_.replica_applies;
  }
}

bool ReplicatedCloudStore::FrontLocked(int region, const std::string& key,
                                       PendingApply* front) {
  auto& pend = regions_[static_cast<size_t>(region)].pending;
  auto it = pend.find(key);
  if (it == pend.end()) return false;
  DrainLocked(&it->second);
  if (it->second.empty()) {
    pend.erase(it);
    return false;
  }
  *front = it->second.front();
  return true;
}

bool ReplicatedCloudStore::ElectionOverLocked() const {
  if (election_deadline_us_ != 0) return WallMicros() >= election_deadline_us_;
  return election_rejects_left_ == 0;
}

void ReplicatedCloudStore::CompleteElectionLocked() {
  in_election_ = false;
  election_deadline_us_ = 0;
  lost_tail_left_ = 0;
  leader_ = (leader_ + 1) % opts_.regions;
  ++stats_.failovers;
  // The winner catches up from the replicated log before serving: its whole
  // apply backlog lands at once, so no committed write is lost by the
  // leadership move (the "lost tail" was applied, only its acks were lost).
  auto& pend = regions_[static_cast<size_t>(leader_)].pending;
  for (auto& entry : pend) {
    stats_.replica_applies += entry.second.size();
  }
  pend.clear();
}

void ReplicatedCloudStore::TickLocked(bool is_write) {
  ++request_ticket_;
  if (is_write) ++write_ticket_;
  // The visibility sequence advances on EVERY armed request, not just
  // writes: a replica applies its backlog while serving traffic, so reads
  // drain lag too.  (Write-only advance can livelock a read-only waiter —
  // e.g. a transaction polling a stale lock record that only further writes
  // could ever make current.)
  ++seq_;
  if (!partition_fired_ && script_.partition_region >= 0 &&
      script_.partition_region < opts_.regions && script_.partition_at > 0 &&
      request_ticket_ >= script_.partition_at) {
    partition_fired_ = true;
    partition_active_ = true;
    partition_heal_left_ = script_.partition_ops;
  }
  if (!crash_fired_ && script_.leader_crash_at > 0 && is_write &&
      write_ticket_ >= script_.leader_crash_at) {
    crash_fired_ = true;
    in_election_ = true;
    lost_tail_left_ = script_.lost_tail;
    if (script_.election_us > 0) {
      election_deadline_us_ = WallMicros() + script_.election_us;
      election_rejects_left_ = 0;
    } else {
      election_deadline_us_ = 0;
      election_rejects_left_ = script_.election_ops;
    }
  }
  if (in_election_ && ElectionOverLocked()) CompleteElectionLocked();
}

Status ReplicatedCloudStore::NotLeaderRejectLocked() {
  ++stats_.not_leader_rejects;
  if (election_deadline_us_ == 0 && election_rejects_left_ > 0) {
    --election_rejects_left_;
  }
  std::string msg = "not leader: election in progress; redirect=region-" +
                    std::to_string((leader_ + 1) % opts_.regions);
  if (election_deadline_us_ != 0) {
    uint64_t now = WallMicros();
    uint64_t remaining =
        election_deadline_us_ > now ? election_deadline_us_ - now : 1;
    msg += "; retry_after_us=" + std::to_string(remaining);
  }
  return Status::NotLeader(msg);
}

Status ReplicatedCloudStore::PartitionRejectLocked(int region) {
  ++stats_.partition_rejects;
  if (partition_heal_left_ > 0 && --partition_heal_left_ == 0) {
    partition_active_ = false;
  }
  return Status::Unavailable("region-" + std::to_string(region) +
                             " partitioned from the cluster");
}

Status ReplicatedCloudStore::WriteGateLocked(bool* lost_reply) {
  if (in_election_) {
    if (lost_tail_left_ > 0) {
      --lost_tail_left_;
      ++stats_.lost_tail_writes;
      *lost_reply = true;
      return Status::OK();
    }
    return NotLeaderRejectLocked();
  }
  if (PartitionedLocked(leader_)) return PartitionRejectLocked(leader_);
  return Status::OK();
}

int ReplicatedCloudStore::StaleRegionLocked() const {
  if (opts_.local_region != leader_) return opts_.local_region;
  return (leader_ + 1) % opts_.regions;
}

ReplicatedCloudStore::Route ReplicatedCloudStore::ReadRouteLocked() {
  Route r;
  switch (opts_.read_mode) {
    case ReadMode::kLeader:
      if (armed_) {
        if (in_election_) {
          r.reject = NotLeaderRejectLocked();
        } else if (PartitionedLocked(leader_)) {
          r.reject = PartitionRejectLocked(leader_);
        }
      }
      return r;
    case ReadMode::kQuorum: {
      if (armed_) {
        // A quorum read needs a majority of regions reachable; the crashed
        // leader cannot vote mid-election, and a partitioned region never
        // can.  (When the partitioned region IS the crashed leader the two
        // outages overlap, not add.)
        int down = 0;
        if (partition_active_) ++down;
        if (in_election_ &&
            !(partition_active_ && script_.partition_region == leader_)) {
          ++down;
        }
        int reachable = opts_.regions - down;
        if (reachable < opts_.regions / 2 + 1) {
          // The quorum-lost rejection is the partition's doing, so it burns
          // the partition's heal budget: otherwise a read-first workload can
          // livelock here — every transaction dies on its quorum read, no
          // write ever reaches the gate to collect the NotLeader rejections
          // the election needs, and neither outage can ever end.
          if (partition_active_ && partition_heal_left_ > 0 &&
              --partition_heal_left_ == 0) {
            partition_active_ = false;
          }
          ++stats_.partition_rejects;
          r.reject = Status::Unavailable(
              "quorum lost: " + std::to_string(reachable) + "/" +
              std::to_string(opts_.regions) + " regions reachable");
        }
      }
      return r;
    }
    case ReadMode::kStale: {
      int view = StaleRegionLocked();
      if (armed_ && PartitionedLocked(view)) {
        r.reject = PartitionRejectLocked(view);
        return r;
      }
      r.view_region = view;
      return r;
    }
    case ReadMode::kNearest: {
      int view = opts_.local_region;
      if (armed_ && PartitionedLocked(view)) {
        r.reject = PartitionRejectLocked(view);
        return r;
      }
      if (view == leader_) {
        // Reading the leader region: fresh, but subject to the election.
        if (armed_ && in_election_) r.reject = NotLeaderRejectLocked();
        return r;
      }
      r.view_region = view;
      return r;
    }
  }
  return r;
}

ReplicatedCloudStore::PendingApply ReplicatedCloudStore::CapturePreImage(
    const std::string& key) {
  PendingApply pre;
  // The peek is model bookkeeping, not client traffic: exempt it from
  // deadline/queue admission so a saturated container cannot blind the
  // replication log (matters only on the raw-less fallback path).
  OpExemptScope exempt;
  kv::Store& peek = raw_ ? *raw_ : *base_;
  uint64_t etag = 0;
  Status s = peek.Get(key, &pre.value, &etag);
  if (s.ok()) {
    pre.present = true;
    pre.etag = etag;
  } else {
    // NotFound = the key is being created; any other failure is treated the
    // same (the follower simply never saw the key before this write).
    pre.present = false;
    pre.value.clear();
  }
  return pre;
}

void ReplicatedCloudStore::ReplicateLocked(const std::string& key,
                                           const PendingApply& pre) {
  for (int r = 0; r < opts_.regions; ++r) {
    if (r == leader_) continue;
    PendingApply p = pre;
    if (opts_.replica_lag_ops > 0) {
      // Uniform in [lag, 2*lag] trailing requests: the floor guarantees a
      // write is never visible before `lag` further arrivals (tests and
      // scripted runs can count on the window), the cap bounds the tail.
      uint64_t draw =
          opts_.replica_lag_ops + rng_.Uniform(opts_.replica_lag_ops + 1);
      p.visible_seq = seq_ + draw;
      stats_.replica_lag.Add(static_cast<int64_t>(draw));
    } else if (opts_.replica_lag_us > 0) {
      uint64_t draw =
          opts_.replica_lag_us / 2 + rng_.Uniform(opts_.replica_lag_us + 1);
      p.visible_at_us = WallMicros() + draw;
      stats_.replica_lag.Add(static_cast<int64_t>(draw));
    }
    regions_[static_cast<size_t>(r)].pending[key].push_back(std::move(p));
    ++stats_.writes_replicated;
  }
}

void ReplicatedCloudStore::OverlayGet(int region, const std::string& key,
                                      Status* s, std::string* value,
                                      uint64_t* etag) {
  if (!s->ok() && !s->IsNotFound()) return;
  std::lock_guard<std::mutex> lk(mu_);
  PendingApply front;
  if (!FrontLocked(region, key, &front)) return;
  ++stats_.stale_reads;
  if (front.present) {
    if (value) *value = front.value;
    if (etag) *etag = front.etag;
    *s = Status::OK();
  } else {
    if (value) value->clear();
    if (etag) *etag = 0;
    *s = Status::NotFound("stale view: write not yet replicated");
  }
}

Status ReplicatedCloudStore::Get(const std::string& key, std::string* value,
                                 uint64_t* etag) {
  Route route;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) TickLocked(/*is_write=*/false);
    route = ReadRouteLocked();
  }
  if (!route.reject.ok()) return route.reject;
  Status s = base_->Get(key, value, etag);
  if (route.view_region >= 0) OverlayGet(route.view_region, key, &s, value, etag);
  return s;
}

Status ReplicatedCloudStore::Scan(const std::string& start_key, size_t limit,
                                  std::vector<kv::ScanEntry>* out) {
  Route route;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) TickLocked(/*is_write=*/false);
    route = ReadRouteLocked();
  }
  if (!route.reject.ok()) return route.reject;
  if (route.view_region < 0) return base_->Scan(start_key, limit, out);
  return ScanView(route.view_region, start_key, limit, out);
}

Status ReplicatedCloudStore::ScanView(int region, const std::string& start_key,
                                      size_t limit,
                                      std::vector<kv::ScanEntry>* out) {
  out->clear();
  if (limit == 0) return Status::OK();
  std::string cursor = start_key;
  while (out->size() < limit) {
    size_t want = limit - out->size();
    std::vector<kv::ScanEntry> page;
    Status s = base_->Scan(cursor, want, &page);
    if (!s.ok()) return s;
    bool exhausted = page.size() < want;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto& pend = regions_[static_cast<size_t>(region)].pending;
      auto pit = pend.lower_bound(cursor);
      size_t i = 0;
      // Merge the authoritative page with the region's undelivered
      // pre-images.  A masked key serves its pre-image (or is hidden when
      // the pre-image is "absent"); a pending key the page lacks is a
      // not-yet-replicated delete whose old row is still visible.  Hidden
      // rows shrink the output, so the outer loop refills: callers (the
      // CEW validation sweep) treat a short page as end-of-table.
      while (out->size() < limit) {
        bool pend_live = false;
        while (pit != pend.end()) {
          if (!exhausted && (page.empty() || pit->first > page.back().key)) {
            break;  // beyond this page's confirmed range; next page decides
          }
          DrainLocked(&pit->second);
          if (pit->second.empty()) {
            pit = pend.erase(pit);
            continue;
          }
          pend_live = true;
          break;
        }
        if (i >= page.size() && !pend_live) break;
        bool take_pend =
            pend_live && (i >= page.size() || pit->first <= page[i].key);
        if (take_pend) {
          bool masks_row = i < page.size() && page[i].key == pit->first;
          const PendingApply& front = pit->second.front();
          ++stats_.stale_reads;
          if (front.present) {
            out->push_back(kv::ScanEntry{pit->first, front.value, front.etag});
          }
          if (masks_row) ++i;
          ++pit;
        } else {
          out->push_back(std::move(page[i]));
          ++i;
        }
      }
    }
    if (exhausted || out->size() >= limit) break;
    cursor = page.back().key;
    cursor.push_back('\0');
  }
  if (out->size() > limit) out->resize(limit);
  return Status::OK();
}

void ReplicatedCloudStore::MultiGet(const std::vector<std::string>& keys,
                                    std::vector<kv::MultiGetResult>* results) {
  results->assign(keys.size(), kv::MultiGetResult{});
  std::vector<Route> routes(keys.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < keys.size(); ++i) {
      if (armed_) TickLocked(/*is_write=*/false);
      routes[i] = ReadRouteLocked();
    }
  }
  std::vector<std::string> admitted;
  std::vector<size_t> index;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (routes[i].reject.ok()) {
      admitted.push_back(keys[i]);
      index.push_back(i);
    } else {
      (*results)[i].status = routes[i].reject;
    }
  }
  if (!admitted.empty()) {
    std::vector<kv::MultiGetResult> sub;
    base_->MultiGet(admitted, &sub);
    for (size_t j = 0; j < index.size(); ++j) {
      (*results)[index[j]] = std::move(sub[j]);
    }
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (routes[i].view_region < 0 || !routes[i].reject.ok()) continue;
    kv::MultiGetResult& row = (*results)[i];
    OverlayGet(routes[i].view_region, keys[i], &row.status, &row.value,
               &row.etag);
  }
}

Status ReplicatedCloudStore::Put(const std::string& key, std::string_view value,
                                 uint64_t* etag_out) {
  bool lost_reply = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) {
      TickLocked(/*is_write=*/true);
      Status gate = WriteGateLocked(&lost_reply);
      if (!gate.ok()) return gate;
    }
  }
  PendingApply pre = CapturePreImage(key);
  uint64_t etag = 0;
  Status s = base_->Put(key, value, &etag);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (s.ok() && armed_) ReplicateLocked(key, pre);
  }
  if (lost_reply) {
    return Status::Timeout("ambiguous: applied on crashing leader, ack lost");
  }
  if (s.ok() && etag_out) *etag_out = etag;
  return s;
}

Status ReplicatedCloudStore::ConditionalPut(const std::string& key,
                                            std::string_view value,
                                            uint64_t expected_etag,
                                            uint64_t* etag_out) {
  bool lost_reply = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) {
      TickLocked(/*is_write=*/true);
      Status gate = WriteGateLocked(&lost_reply);
      if (!gate.ok()) return gate;
    }
  }
  PendingApply pre = CapturePreImage(key);
  uint64_t etag = 0;
  Status s = base_->ConditionalPut(key, value, expected_etag, &etag);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (s.ok() && armed_) ReplicateLocked(key, pre);
  }
  if (lost_reply) {
    return Status::Timeout("ambiguous: applied on crashing leader, ack lost");
  }
  if (s.ok() && etag_out) *etag_out = etag;
  return s;
}

Status ReplicatedCloudStore::Delete(const std::string& key) {
  bool lost_reply = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) {
      TickLocked(/*is_write=*/true);
      Status gate = WriteGateLocked(&lost_reply);
      if (!gate.ok()) return gate;
    }
  }
  PendingApply pre = CapturePreImage(key);
  Status s = base_->Delete(key);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (s.ok() && armed_) ReplicateLocked(key, pre);
  }
  if (lost_reply) {
    return Status::Timeout("ambiguous: applied on crashing leader, ack lost");
  }
  return s;
}

Status ReplicatedCloudStore::ConditionalDelete(const std::string& key,
                                               uint64_t expected_etag) {
  bool lost_reply = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) {
      TickLocked(/*is_write=*/true);
      Status gate = WriteGateLocked(&lost_reply);
      if (!gate.ok()) return gate;
    }
  }
  PendingApply pre = CapturePreImage(key);
  Status s = base_->ConditionalDelete(key, expected_etag);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (s.ok() && armed_) ReplicateLocked(key, pre);
  }
  if (lost_reply) {
    return Status::Timeout("ambiguous: applied on crashing leader, ack lost");
  }
  return s;
}

void ReplicatedCloudStore::MultiWrite(const std::vector<kv::WriteOp>& ops,
                                      std::vector<kv::WriteResult>* results) {
  results->assign(ops.size(), kv::WriteResult{});
  std::vector<char> lost(ops.size(), 0);
  std::vector<char> admit(ops.size(), 1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_) {
      // Gates draw in item order before any item executes, the same
      // discipline FaultInjectingStore uses so pool scheduling can never
      // reorder the deterministic schedule.
      for (size_t i = 0; i < ops.size(); ++i) {
        TickLocked(/*is_write=*/true);
        bool lost_reply = false;
        Status gate = WriteGateLocked(&lost_reply);
        if (!gate.ok()) {
          (*results)[i].status = gate;
          admit[i] = 0;
        } else if (lost_reply) {
          lost[i] = 1;
        }
      }
    }
  }
  std::vector<PendingApply> pres(ops.size());
  std::vector<kv::WriteOp> sub;
  std::vector<size_t> index;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!admit[i]) continue;
    pres[i] = CapturePreImage(ops[i].key);
    sub.push_back(ops[i]);
    index.push_back(i);
  }
  if (!sub.empty()) {
    std::vector<kv::WriteResult> subres;
    base_->MultiWrite(sub, &subres);
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t j = 0; j < index.size(); ++j) {
      size_t i = index[j];
      (*results)[i] = subres[j];
      if (subres[j].status.ok() && armed_) {
        ReplicateLocked(ops[i].key, pres[i]);
      }
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!lost[i]) continue;
    (*results)[i].status =
        Status::Timeout("ambiguous: applied on crashing leader, ack lost");
    (*results)[i].etag = 0;
  }
}

size_t ReplicatedCloudStore::Count() const { return base_->Count(); }

}  // namespace cloud
}  // namespace ycsbt
