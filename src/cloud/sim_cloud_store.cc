#include "cloud/sim_cloud_store.h"

#include <algorithm>
#include <string>

#include "common/clock.h"
#include "common/op_context.h"
#include "common/random.h"
#include "common/rpc_executor.h"

namespace ycsbt {
namespace cloud {

CloudProfile CloudProfile::Was() {
  CloudProfile p;
  p.name = "was";
  p.read_latency_median_us = 11500.0;
  p.write_latency_median_us = 20000.0;
  p.latency_sigma = 0.35;
  p.latency_floor_us = 2000.0;
  p.container_rate_limit = 650.0;
  p.client_serial_us_per_inflight = 45.0;
  p.client_contention_free_threads = 16;
  return p;
}

CloudProfile CloudProfile::Gcs() {
  CloudProfile p;
  p.name = "gcs";
  p.read_latency_median_us = 14500.0;
  p.write_latency_median_us = 24000.0;
  p.latency_sigma = 0.40;
  p.latency_floor_us = 2500.0;
  p.container_rate_limit = 800.0;
  p.client_serial_us_per_inflight = 45.0;
  p.client_contention_free_threads = 16;
  return p;
}

SimCloudStore::SimCloudStore(CloudProfile profile, std::shared_ptr<kv::Store> backing)
    : profile_(std::move(profile)),
      backing_(backing != nullptr
                   ? std::move(backing)
                   : std::make_shared<kv::ShardedStore>(kv::StoreOptions{})),
      read_latency_(profile_.read_latency_median_us, profile_.latency_sigma,
                    profile_.latency_floor_us),
      write_latency_(profile_.write_latency_median_us, profile_.latency_sigma,
                     profile_.latency_floor_us) {
  if (profile_.containers < 1) profile_.containers = 1;
  for (int i = 0; i < profile_.containers; ++i) {
    container_limits_.push_back(std::make_unique<TokenBucket>(
        profile_.container_rate_limit,
        profile_.container_rate_limit * profile_.container_burst_fraction));
  }
}

TokenBucket& SimCloudStore::ContainerFor(const std::string& key) {
  if (container_limits_.size() == 1) return *container_limits_[0];
  uint64_t h = FNVHash64(std::hash<std::string>{}(key));
  return *container_limits_[h % container_limits_.size()];
}

void SimCloudStore::ScaleLatency(double factor) {
  profile_.read_latency_median_us *= factor;
  profile_.write_latency_median_us *= factor;
  profile_.latency_floor_us *= factor;
  profile_.client_serial_us_per_inflight *= factor;
  read_latency_ = LatencyModel(profile_.read_latency_median_us,
                               profile_.latency_sigma, profile_.latency_floor_us);
  write_latency_ = LatencyModel(profile_.write_latency_median_us,
                                profile_.latency_sigma, profile_.latency_floor_us);
}

Status SimCloudStore::BeginRequest(bool is_write, const std::string& key) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  int inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;

  // 1. Serialized client section: connection pool + request marshalling.
  //    Cost grows once the host runs more in-flight requests than it has
  //    contention-free capacity for — the Fig 2 degradation mechanism.
  //    Modelled as a single-server queue over a shared deadline.
  {
    double serial_us = profile_.client_serial_us_per_inflight *
                       std::max(inflight, profile_.client_contention_free_threads);
    uint64_t serial_ns = static_cast<uint64_t>(serial_us * 1000.0);
    uint64_t now = SteadyNanos();
    uint64_t prev = serial_next_free_ns_.load(std::memory_order_relaxed);
    uint64_t end;
    do {
      end = std::max(now, prev) + serial_ns;
    } while (!serial_next_free_ns_.compare_exchange_weak(
        prev, end, std::memory_order_relaxed));
    if (end > now) SleepMicros((end - now) / 1000);
  }

  // 2. Container request-rate cap (token-bucket queue), per partition.
  //    A wait that would overflow the server's queue bound *or* the caller's
  //    propagated deadline is rejected up front — the server-busy 503 with a
  //    Retry-After hint, instead of sleeping through a wait whose answer the
  //    caller can no longer use.
  bool delayed = false;
  TokenBucket& container = ContainerFor(key);
  if (!container.Unlimited()) {
    uint64_t delay_ns = container.AcquireDelayNanos();
    if (delay_ns > 0) {
      // Exempt traffic — the harness's load/validation phases and the txn
      // protocol's post-commit-point cleanup — is *patient*: it opts out of
      // the busy rejection and waits the queue out instead, so a saturated
      // run can still be set up, audited, and have its committed work
      // settled.
      if (!OpExempt() &&
          (static_cast<double>(delay_ns) / 1000.0 > profile_.max_queue_delay_us ||
           delay_ns > OpDeadlineRemainingNanos())) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        throttled_.fetch_add(1, std::memory_order_relaxed);
        return Status::RateLimited(profile_.name +
                                   " container busy; retry_after_us=" +
                                   std::to_string(delay_ns / 1000));
      }
      delayed = true;
      queue_delayed_.fetch_add(1, std::memory_order_relaxed);
      SleepMicros(delay_ns / 1000);
    }
  }
  if (!delayed) ok_.fetch_add(1, std::memory_order_relaxed);

  // 3. Service latency for the request itself.
  (is_write ? write_latency_ : read_latency_).Inject(ThreadLocalRandom());
  return Status::OK();
}

Status SimCloudStore::Get(const std::string& key, std::string* value,
                          uint64_t* etag) {
  Status s = BeginRequest(/*is_write=*/false, key);
  if (!s.ok()) return s;
  s = backing_->Get(key, value, etag);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

Status SimCloudStore::Put(const std::string& key, std::string_view value,
                          uint64_t* etag_out) {
  Status s = BeginRequest(/*is_write=*/true, key);
  if (!s.ok()) return s;
  s = backing_->Put(key, value, etag_out);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

Status SimCloudStore::ConditionalPut(const std::string& key, std::string_view value,
                                     uint64_t expected_etag, uint64_t* etag_out) {
  Status s = BeginRequest(/*is_write=*/true, key);
  if (!s.ok()) return s;
  s = backing_->ConditionalPut(key, value, expected_etag, etag_out);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

Status SimCloudStore::Delete(const std::string& key) {
  Status s = BeginRequest(/*is_write=*/true, key);
  if (!s.ok()) return s;
  s = backing_->Delete(key);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

Status SimCloudStore::ConditionalDelete(const std::string& key,
                                        uint64_t expected_etag) {
  Status s = BeginRequest(/*is_write=*/true, key);
  if (!s.ok()) return s;
  s = backing_->ConditionalDelete(key, expected_etag);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

Status SimCloudStore::Scan(const std::string& start_key, size_t limit,
                           std::vector<kv::ScanEntry>* out) {
  Status s = BeginRequest(/*is_write=*/false, start_key);
  if (!s.ok()) return s;
  s = backing_->Scan(start_key, limit, out);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

void SimCloudStore::MultiGet(const std::vector<std::string>& keys,
                             std::vector<kv::MultiGetResult>* results) {
  if (executor_ == nullptr || !executor_->enabled() || keys.size() < 2) {
    Store::MultiGet(keys, results);
    return;
  }
  results->clear();
  results->resize(keys.size());
  // Each item is a complete, independent request (admission, latency sleep,
  // backing op) on its own executor lane — this is where fan-out turns N
  // serial WAN round trips into ~N/max_inflight overlapping ones.
  executor_->ParallelForEach(keys.size(), [this, &keys, results](size_t i) {
    kv::MultiGetResult& r = (*results)[i];
    r.status = Get(keys[i], &r.value, &r.etag);
    return r.status;
  });
}

void SimCloudStore::MultiWrite(const std::vector<kv::WriteOp>& ops,
                               std::vector<kv::WriteResult>* results) {
  if (executor_ == nullptr || !executor_->enabled() || ops.size() < 2) {
    Store::MultiWrite(ops, results);
    return;
  }
  results->clear();
  results->resize(ops.size());
  executor_->ParallelForEach(ops.size(), [this, &ops, results](size_t i) {
    kv::WriteResult& r = (*results)[i];
    r.status = kv::ApplyWriteOp(*this, ops[i], &r.etag);
    return r.status;
  });
}

size_t SimCloudStore::Count() const { return backing_->Count(); }

}  // namespace cloud
}  // namespace ycsbt
