#ifndef YCSBT_CLOUD_SIM_CLOUD_STORE_H_
#define YCSBT_CLOUD_SIM_CLOUD_STORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/latency_model.h"
#include "common/rate_limiter.h"
#include "kv/store.h"

namespace ycsbt {

class RpcExecutor;

namespace cloud {

/// Performance profile of a simulated cloud object store.
///
/// The paper's Figure 2 testbed (EC2 client against one WAS container, GCS
/// for comparison) exhibits three regimes, each driven by one mechanism the
/// profile parameterises explicitly:
///   1. *latency-bound linear scaling* — per-request service latency
///      (lognormal; REST-over-WAN numbers, tens of milliseconds);
///   2. *container request-rate ceiling* — "a bottleneck in the network or
///      the data store container itself" (§V-A): a token bucket caps each
///      container's request rate, flattening throughput beyond ~16 threads;
///   3. *client thread contention* — the decline at 64/128 threads: each
///      request passes through a serialized client section (connection pool
///      + scheduler overhead) whose cost grows with the number of in-flight
///      threads.
struct CloudProfile {
  std::string name = "cloud";

  /// Median service latency per operation kind, microseconds.
  double read_latency_median_us = 11500.0;
  double write_latency_median_us = 12500.0;
  /// Lognormal shape; ~0.35 gives the tight-body/long-tail REST profile.
  double latency_sigma = 0.35;
  /// Hard per-request floor (protocol + TLS cost).
  double latency_floor_us = 2000.0;

  /// Requests/second one container sustains; <= 0 disables the cap.
  double container_rate_limit = 650.0;
  /// Burst the container absorbs before the cap bites, as a fraction of one
  /// second's tokens (kept small so the ceiling shows up even in short runs).
  double container_burst_fraction = 0.05;
  /// Number of storage containers the keyspace is hash-partitioned over;
  /// each has its own rate cap.  The paper's §V-A setup used one container
  /// (hence its plateau); more containers model the scale-out answer.
  int containers = 1;
  /// Queueing delay beyond which the request fails with RateLimited
  /// (the HTTP 503 / server-busy analogue).
  double max_queue_delay_us = 2'000'000.0;

  /// Serialized client-side cost per request, microseconds, multiplied by
  /// the number of concurrently in-flight requests.  Models the thread
  /// contention the paper blames for the 64/128-thread degradation.
  double client_serial_us_per_inflight = 45.0;
  /// In-flight count below which the serialized cost stays at its base.
  int client_contention_free_threads = 16;

  /// Windows Azure Storage-like profile (single container).
  static CloudProfile Was();
  /// Google Cloud Storage-like profile (slightly slower, higher cap).
  static CloudProfile Gcs();
};

/// Running counters exposed for benches and tests.  Per-outcome counts
/// partition `requests`: every request is exactly one of throttled
/// (rejected with RateLimited), queue_delayed (admitted after waiting on
/// the rate cap) or ok (admitted without queueing).
struct CloudStats {
  uint64_t requests = 0;
  uint64_t throttled = 0;       ///< requests rejected with RateLimited
  uint64_t queue_delayed = 0;   ///< requests that waited on the rate cap
  uint64_t ok = 0;              ///< requests admitted without queue delay
};

/// A simulated cloud object store implementing the `kv::Store` interface.
///
/// Functionally it is the backing `ShardedStore` (single-item linearizable
/// ops, etags, conditional put = If-Match, no multi-item transactions);
/// performance-wise every request pays, in order: the serialized client
/// section, the container rate-cap queue, and the sampled service latency.
///
/// The rate-cap queue honours the caller's ambient `OpContext` deadline: a
/// request whose queueing delay would outlive the deadline is rejected
/// immediately as `RateLimited` (with a `retry_after_us=` hint) instead of
/// sleeping out a wait whose answer is already useless.
class SimCloudStore : public kv::Store {
 public:
  explicit SimCloudStore(CloudProfile profile,
                         std::shared_ptr<kv::Store> backing = nullptr);

  Status Get(const std::string& key, std::string* value,
             uint64_t* etag = nullptr) override;
  Status Put(const std::string& key, std::string_view value,
             uint64_t* etag_out = nullptr) override;
  Status ConditionalPut(const std::string& key, std::string_view value,
                        uint64_t expected_etag, uint64_t* etag_out = nullptr) override;
  Status Delete(const std::string& key) override;
  Status ConditionalDelete(const std::string& key, uint64_t expected_etag) override;
  Status Scan(const std::string& start_key, size_t limit,
              std::vector<kv::ScanEntry>* out) override;
  /// Batch ops: with a fan-out executor attached, every item runs its FULL
  /// single-op path — serialized client section, container rate cap, sampled
  /// service latency, backing op — on its own pool lane, so the per-request
  /// WAN latencies genuinely overlap instead of summing.  Without an
  /// executor the default sequential loop applies (the seed behaviour).
  void MultiGet(const std::vector<std::string>& keys,
                std::vector<kv::MultiGetResult>* results) override;
  void MultiWrite(const std::vector<kv::WriteOp>& ops,
                  std::vector<kv::WriteResult>* results) override;
  size_t Count() const override;

  /// Attaches the shared fan-out executor (DBFactory wires it from
  /// `txn.fanout_threads`); null keeps batches sequential.
  void set_executor(std::shared_ptr<RpcExecutor> executor) {
    executor_ = std::move(executor);
  }

  const CloudProfile& profile() const { return profile_; }

  CloudStats stats() const {
    return CloudStats{requests_.load(), throttled_.load(), queue_delayed_.load(),
                      ok_.load()};
  }

  /// Scales all latency parameters by `factor` (tests use ~0.01 so suites
  /// stay fast while exercising the same code paths).
  void ScaleLatency(double factor);

 private:
  /// Front half of every request; returns RateLimited when the container
  /// queue is saturated.  `is_write` selects the latency model; `key`
  /// selects the container (hash partitioning).
  Status BeginRequest(bool is_write, const std::string& key);

  TokenBucket& ContainerFor(const std::string& key);

  CloudProfile profile_;
  std::shared_ptr<kv::Store> backing_;
  std::shared_ptr<RpcExecutor> executor_;  // null = sequential batches
  LatencyModel read_latency_;
  LatencyModel write_latency_;
  std::vector<std::unique_ptr<TokenBucket>> container_limits_;

  /// The serialized client section is modelled as a single-server queue:
  /// each request reserves `serial_cost` of exclusive service time after the
  /// previous reservation and sleeps until its slot has passed.  (Advancing
  /// a shared deadline instead of sleeping under a mutex keeps the modelled
  /// cost exact regardless of OS sleep granularity.)
  std::atomic<uint64_t> serial_next_free_ns_{0};
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> throttled_{0};
  std::atomic<uint64_t> queue_delayed_{0};
  std::atomic<uint64_t> ok_{0};
};

}  // namespace cloud
}  // namespace ycsbt

#endif  // YCSBT_CLOUD_SIM_CLOUD_STORE_H_
