#ifndef YCSBT_CLOUD_REPLICATED_CLOUD_STORE_H_
#define YCSBT_CLOUD_REPLICATED_CLOUD_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/histogram.h"
#include "common/properties.h"
#include "common/random.h"
#include "kv/store.h"

namespace ycsbt {
namespace cloud {

/// How reads are routed across the replicated regions.
enum class ReadMode : uint8_t {
  kLeader,   ///< Read the leader: always fresh, rejected mid-election.
  kQuorum,   ///< Majority read: fresh, survives an election, fails when a
             ///< majority of regions is unreachable.
  kStale,    ///< Read the local follower's *replicated view*: never blocks
             ///< on leadership, but lags the leader by the apply queue.
  kNearest,  ///< Read the local region whatever its role: fresh while it is
             ///< the leader, silently stale after a failover moves the
             ///< leadership elsewhere.
};

/// Parses a `cloud.read_mode` token; false on an unknown name.
bool ParseReadMode(const std::string& token, ReadMode* out);
const char* ReadModeName(ReadMode mode);

/// Configuration of a `ReplicatedCloudStore`, from the `cloud.*` namespace:
///
///   cloud.regions          number of regions (>= 2 activates replication)
///   cloud.read_mode        leader | quorum | stale | nearest
///   cloud.replica_lag_us   median wall-clock replication lag per record
///   cloud.replica_lag_ops  when > 0, lag is *count-based* instead: a record
///                          becomes visible on a follower after between this
///                          many and twice this many later requests (reads
///                          or writes — a replica applies its backlog while
///                          serving traffic) have arrived — fully
///                          deterministic for same-seed single-threaded
///                          replays
///   cloud.local_region     the region this client is nearest to (stale and
///                          nearest read modes; default 0)
///   cloud.fault.*          the scripted failover/partition (FailoverScript)
struct ReplicationOptions {
  int regions = 3;
  ReadMode read_mode = ReadMode::kLeader;
  uint64_t replica_lag_us = 20'000;
  uint64_t replica_lag_ops = 0;
  int local_region = 0;
  uint64_t seed = 0x5EEDFA11ull;
  FailoverScript script;

  static Status FromProperties(const Properties& props,
                               ReplicationOptions* out);
};

/// Counters and the lag histogram, drained once per measured run (the
/// `FAILOVER-*` / `NOT-LEADER` / `STALE-READ` / `REPLICA-LAG` series).
struct ReplicationStats {
  uint64_t writes_replicated = 0;  ///< replication records enqueued
  uint64_t replica_applies = 0;    ///< records drained into follower views
  uint64_t stale_reads = 0;        ///< reads answered from a lagging view
  uint64_t not_leader_rejects = 0; ///< requests refused mid-election
  uint64_t failovers = 0;          ///< completed elections (leader moved)
  uint64_t lost_tail_writes = 0;   ///< applied-but-unacked election writes
  uint64_t partition_rejects = 0;  ///< requests refused by a partition
  /// Drawn replication lag per record: microseconds in wall-clock mode,
  /// trailing requests in count-based mode.
  Histogram replica_lag;
};

/// N-region replicated veneer over the simulated cloud store.
///
/// The model keeps ONE authoritative store (`base`, the leader's state —
/// every request through it pays the full SimCloudStore latency/rate-cap
/// path) and represents each follower as a *pre-image apply queue*: when a
/// write commits on the leader, every follower enqueues the key's prior
/// value together with a seeded lag draw. A follower's view of a key is the
/// oldest still-undelivered pre-image — exactly what a replica that has not
/// yet applied the tail of the log would serve — and collapses to the
/// authoritative value once the queue drains. This inverts the usual
/// "apply queue of new values" formulation so that N regions never store N
/// copies of the dataset, yet reads observe the same staleness a real
/// lagging replica exhibits, including torn multi-key transactions.
///
/// The scripted fault timeline (`FailoverScript`) is armed together with
/// the rest of the fault substrate only around the measured run
/// (`set_fault_enabled`); while disarmed, writes replicate synchronously
/// (the load phase does not accumulate lag) and no triggers advance.
/// Failover semantics:
///   - at write arrival `leader_crash_at` the leader crashes and an
///     election opens; writes (and leader-mode reads) are refused with
///     `Status::NotLeader` carrying a `redirect=region-N` hint (plus
///     `retry_after_us=` when the election is wall-clock scripted);
///   - the first `lost_tail` writes of the election window are APPLIED but
///     answered `Timeout` — the crashed leader's unreplicated tail, which
///     clients must settle as ambiguous commits via TSR re-read;
///   - the election completes after `election_ops` NotLeader rejections
///     (count-based, deterministic) or `election_us` wall-clock; the next
///     region takes leadership and first drains its own apply backlog, so
///     no committed write is lost;
///   - independently, region `partition_region` can be cut off at request
///     arrival `partition_at`, answering `Unavailable` until
///     `partition_ops` rejections have been charged to it (the circuit
///     breaker satellite: only that backend's breaker opens).
class ReplicatedCloudStore : public kv::Store {
 public:
  /// `base` is the authoritative store (normally a SimCloudStore so every
  /// routed request pays cloud latency); `raw` is the latency-free engine
  /// underneath it used for pre-image capture (null = peek through `base`,
  /// paying latency twice per write).
  ReplicatedCloudStore(std::shared_ptr<kv::Store> base,
                       std::shared_ptr<kv::Store> raw,
                       ReplicationOptions options);

  Status Get(const std::string& key, std::string* value,
             uint64_t* etag = nullptr) override;
  Status Put(const std::string& key, std::string_view value,
             uint64_t* etag_out = nullptr) override;
  Status ConditionalPut(const std::string& key, std::string_view value,
                        uint64_t expected_etag,
                        uint64_t* etag_out = nullptr) override;
  Status Delete(const std::string& key) override;
  Status ConditionalDelete(const std::string& key,
                           uint64_t expected_etag) override;
  Status Scan(const std::string& start_key, size_t limit,
              std::vector<kv::ScanEntry>* out) override;
  void MultiGet(const std::vector<std::string>& keys,
                std::vector<kv::MultiGetResult>* results) override;
  void MultiWrite(const std::vector<kv::WriteOp>& ops,
                  std::vector<kv::WriteResult>* results) override;
  size_t Count() const override;

  /// Arms/disarms the scripted fault timeline and the replication lag,
  /// mirroring `FaultInjectingStore::set_enabled` (armed only around the
  /// measured run; the load phase replicates synchronously).
  void set_fault_enabled(bool enabled);

  /// Region currently serving this key for the configured read mode — the
  /// backend index `ResilientStore`'s per-backend circuit breakers should
  /// charge (a partitioned follower must open only its own breaker).
  size_t BreakerBackendFor(const std::string& key) const;

  int leader() const;
  const ReplicationOptions& options() const { return opts_; }

  ReplicationStats stats() const;
  /// Snapshot-and-reset, the per-run drain the runner's series are built
  /// from (pre-run drain discards the load phase).
  ReplicationStats DrainStats();

 private:
  /// One undelivered replication record: the key's state BEFORE the write
  /// it belongs to, plus the visibility horizon drawn from the lag model.
  struct PendingApply {
    bool present = false;     ///< pre-image existed (false = key was absent)
    std::string value;        ///< pre-image bytes
    uint64_t etag = 0;        ///< pre-image etag
    uint64_t visible_seq = 0; ///< count-based horizon (global write seq)
    uint64_t visible_at_us = 0;  ///< wall-clock horizon
  };

  struct Region {
    /// Per-key FIFO of undelivered pre-images, oldest first.
    std::map<std::string, std::deque<PendingApply>> pending;
  };

  /// Outcome of routing one read.
  struct Route {
    Status reject;         ///< not-OK = refuse the request with this
    int view_region = -1;  ///< >= 0 = overlay this region's lagging view
  };

  bool VisibleLocked(const PendingApply& p) const;
  void DrainLocked(std::deque<PendingApply>* q);
  /// Drains `key`'s queue in `region`; true (and `*front` filled) when an
  /// undelivered pre-image still masks the authoritative value.
  bool FrontLocked(int region, const std::string& key, PendingApply* front);

  /// Advances arrival tickets and fires script triggers.  Every armed
  /// request passes through here exactly once.
  void TickLocked(bool is_write);
  bool ElectionOverLocked() const;
  void CompleteElectionLocked();
  bool PartitionedLocked(int region) const {
    return partition_active_ && script_.partition_region == region;
  }
  Status NotLeaderRejectLocked();
  Status PartitionRejectLocked(int region);

  /// Write-path gate: OK to proceed (with `*lost_reply` possibly set — the
  /// write applies but the ack is lost), or the rejection to return.
  Status WriteGateLocked(bool* lost_reply);
  Route ReadRouteLocked();
  int StaleRegionLocked() const;

  /// Captures `key`'s current authoritative state (latency-free when a raw
  /// engine is attached).
  PendingApply CapturePreImage(const std::string& key);
  /// Enqueues one replication record per follower with fresh lag draws.
  void ReplicateLocked(const std::string& key, const PendingApply& pre);

  /// Applies the front pre-image (if any) of `region`'s view over a
  /// single-key read result.
  void OverlayGet(int region, const std::string& key, Status* s,
                  std::string* value, uint64_t* etag);
  Status ScanView(int region, const std::string& start_key, size_t limit,
                  std::vector<kv::ScanEntry>* out);

  std::shared_ptr<kv::Store> base_;
  std::shared_ptr<kv::Store> raw_;
  ReplicationOptions opts_;
  FailoverScript script_;

  mutable std::mutex mu_;
  std::vector<Region> regions_;
  Random64 rng_;               ///< lag draws (seeded; guarded by mu_)
  uint64_t seq_ = 0;           ///< global armed-request sequence (count lag)
  bool armed_ = false;
  uint64_t request_ticket_ = 0;
  uint64_t write_ticket_ = 0;
  int leader_ = 0;
  bool crash_fired_ = false;
  bool in_election_ = false;
  uint64_t election_rejects_left_ = 0;  ///< count-based completion budget
  uint64_t election_deadline_us_ = 0;   ///< wall-clock completion horizon
  uint64_t lost_tail_left_ = 0;
  bool partition_fired_ = false;
  bool partition_active_ = false;
  uint64_t partition_heal_left_ = 0;
  ReplicationStats stats_;
};

}  // namespace cloud
}  // namespace ycsbt

#endif  // YCSBT_CLOUD_REPLICATED_CLOUD_STORE_H_
