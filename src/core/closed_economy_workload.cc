#include "core/closed_economy_workload.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ycsbt {
namespace core {

namespace {
constexpr char kBalanceField[] = "field0";
}  // namespace

/// Per-thread CEW state: the bank movements of the in-flight transaction,
/// settled by OnTransactionOutcome.
class ClosedEconomyWorkload::CewThreadState : public Workload::ThreadState {
 public:
  explicit CewThreadState(uint64_t seed) : ThreadState(seed) {}

  int64_t pending_withdrawn = 0;  ///< taken from the bank; refunded on abort
  int64_t pending_deposit = 0;    ///< added to the bank on commit only
};

Status ClosedEconomyWorkload::Init(const Properties& props) {
  // CEW fixes the schema: a single balance field per account, always read
  // and written whole.
  Properties cew = props;
  cew.Set("fieldcount", "1");
  cew.Set("readallfields", "true");
  cew.Set("writeallfields", "true");
  if (!cew.Contains("readproportion")) cew.Set("readproportion", "0.9");
  if (!cew.Contains("updateproportion")) cew.Set("updateproportion", "0");
  if (!cew.Contains("readmodifywriteproportion")) {
    cew.Set("readmodifywriteproportion", "0.1");
  }
  Status s = CoreWorkload::Init(cew);
  if (!s.ok()) return s;

  // The paper's example gives every account an initial balance of $1000.
  total_cash_ = props.GetInt(
      "totalcash", static_cast<int64_t>(record_count()) * 1000);
  if (total_cash_ < static_cast<int64_t>(record_count())) {
    return Status::InvalidArgument("totalcash must cover >= $1 per account");
  }
  initial_balance_ = total_cash_ / static_cast<int64_t>(record_count());
  transfer_accounts_ = static_cast<int>(props.GetInt("cew.transfer_accounts", 2));
  if (transfer_accounts_ < 2) {
    return Status::InvalidArgument("cew.transfer_accounts must be >= 2");
  }
  bank_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

std::unique_ptr<Workload::ThreadState> ClosedEconomyWorkload::InitThread(
    int thread_id, int /*thread_count*/) {
  return std::make_unique<CewThreadState>(base_seed() ^ 0xCE87EADull ^
                                          static_cast<uint64_t>(thread_id) * 0x9E3779B9ull);
}

int64_t ClosedEconomyWorkload::WithdrawFromBank(int64_t want) {
  int64_t current = bank_.load(std::memory_order_relaxed);
  for (;;) {
    int64_t take = std::min(current, want);
    if (take <= 0) return 0;
    if (bank_.compare_exchange_weak(current, current - take,
                                    std::memory_order_relaxed)) {
      return take;
    }
  }
}

Status ClosedEconomyWorkload::WriteBalance(DB& db, const std::string& table,
                                           const std::string& key,
                                           int64_t balance) {
  FieldMap values;
  values[kBalanceField] = std::to_string(balance);
  // DB::Insert is the blind full-record write of every binding; using it for
  // overwrites keeps CEW updates at one store request, as in the paper.
  return db.Insert(table, key, values);
}

bool ClosedEconomyWorkload::ParseBalance(const FieldMap& fields, int64_t* balance) {
  auto it = fields.find(kBalanceField);
  if (it == fields.end()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return false;
  *balance = v;
  return true;
}

bool ClosedEconomyWorkload::DoInsert(DB& db, ThreadState* state) {
  uint64_t key_num = load_sequence_->Next(state->rng);
  // The integer division remainder lands on the first account so the loaded
  // sum is exactly totalcash.
  int64_t balance = initial_balance_;
  if (key_num == insert_start_) {
    balance += total_cash_ - initial_balance_ * static_cast<int64_t>(record_count());
  }
  return WriteBalance(db, table_, BuildKeyName(key_num), balance).ok();
}

bool ClosedEconomyWorkload::BuildNextInsert(ThreadState* state, LoadRecord* record) {
  uint64_t key_num = load_sequence_->Next(state->rng);
  int64_t balance = initial_balance_;
  if (key_num == insert_start_) {
    balance += total_cash_ - initial_balance_ * static_cast<int64_t>(record_count());
  }
  record->table = table_;
  record->key = BuildKeyName(key_num);
  record->values.clear();
  record->values[kBalanceField] = std::to_string(balance);
  return true;
}

bool ClosedEconomyWorkload::DoTransactionRead(DB& db, ThreadState* state) {
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  FieldMap result;
  Status s = db.Read(table_, key, nullptr, &result);
  // A concurrently deleted account is a legitimate NotFound, not a failure.
  return s.ok() || s.IsNotFound();
}

bool ClosedEconomyWorkload::DoTransactionUpdate(DB& db, ThreadState* state) {
  auto* cew = static_cast<CewThreadState*>(state);
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  FieldMap record;
  if (!db.Read(table_, key, nullptr, &record).ok()) return false;
  int64_t balance;
  if (!ParseBalance(record, &balance)) return false;
  // Add $1 captured from delete operations (paper §IV-C2); if nothing has
  // been captured the update rewrites the same balance.
  int64_t gained = WithdrawFromBank(1);
  cew->pending_withdrawn += gained;
  return WriteBalance(db, table_, key, balance + gained).ok();
}

bool ClosedEconomyWorkload::DoTransactionInsert(DB& db, ThreadState* state) {
  auto* cew = static_cast<CewThreadState*>(state);
  uint64_t key_num = insert_sequence_->Next(state->rng);
  int64_t funding = WithdrawFromBank(initial_balance_);
  cew->pending_withdrawn += funding;
  bool ok = WriteBalance(db, table_, BuildKeyName(key_num), funding).ok();
  insert_sequence_->Acknowledge(key_num);
  return ok;
}

bool ClosedEconomyWorkload::DoTransactionDelete(DB& db, ThreadState* state) {
  auto* cew = static_cast<CewThreadState*>(state);
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  FieldMap record;
  Status s = db.Read(table_, key, nullptr, &record);
  if (s.IsNotFound()) return true;  // already closed
  if (!s.ok()) return false;
  int64_t balance;
  if (!ParseBalance(record, &balance)) return false;
  s = db.Delete(table_, key);
  if (s.IsNotFound()) return true;
  if (!s.ok()) return false;
  // The closed account's money is captured for later inserts/updates —
  // banked only if this transaction commits.
  cew->pending_deposit += balance;
  return true;
}

bool ClosedEconomyWorkload::DoTransactionScan(DB& db, ThreadState* state) {
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  size_t len = static_cast<size_t>(scan_length_chooser_->Next(state->rng));
  std::vector<ScanRow> rows;
  return db.Scan(table_, key, len, nullptr, &rows).ok();
}

bool ClosedEconomyWorkload::DoTransactionReadModifyWrite(DB& db,
                                                         ThreadState* state) {
  if (transfer_accounts_ <= 2) {
    // Transfer $1 between two distinct accounts (paper §IV-C2): the sum is
    // invariant under any serializable execution of this operation.
    uint64_t k1 = NextKeyNum(state->rng);
    uint64_t k2 = k1;
    for (int i = 0; i < 8 && k2 == k1; ++i) k2 = NextKeyNum(state->rng);
    if (k1 == k2) return true;  // single-account economy: nothing to transfer
    std::string key1 = BuildKeyName(k1);
    std::string key2 = BuildKeyName(k2);

    // Both snapshot reads in one batch: with a fan-out executor their round
    // trips overlap; semantically identical to two sequential Reads.
    std::vector<MultiReadRow> rows;
    db.MultiRead(table_, {key1, key2}, nullptr, &rows);
    if (!rows[0].status.ok() || !rows[1].status.ok()) return false;
    int64_t bal1, bal2;
    if (!ParseBalance(rows[0].fields, &bal1) || !ParseBalance(rows[1].fields, &bal2)) {
      return false;
    }

    if (!WriteBalance(db, table_, key1, bal1 - 1).ok()) return false;
    return WriteBalance(db, table_, key2, bal2 + 1).ok();
  }

  // Batched variant (`cew.transfer_accounts` > 2): one W-account transfer —
  // the payer sends $1 to each of W-1 payees.  The per-commit sum delta is
  // exactly (W-1) - (W-1) = 0, so Validate's drift stays exact.
  std::vector<uint64_t> nums;
  nums.push_back(NextKeyNum(state->rng));
  for (int i = 1; i < transfer_accounts_; ++i) {
    uint64_t k = nums[0];
    for (int attempt = 0; attempt < 8; ++attempt) {
      k = NextKeyNum(state->rng);
      if (std::find(nums.begin(), nums.end(), k) == nums.end()) break;
    }
    if (std::find(nums.begin(), nums.end(), k) == nums.end()) nums.push_back(k);
  }
  if (nums.size() < 2) return true;  // tiny economy: nothing to transfer

  std::vector<std::string> keys;
  keys.reserve(nums.size());
  for (uint64_t n : nums) keys.push_back(BuildKeyName(n));

  std::vector<MultiReadRow> rows;
  db.MultiRead(table_, keys, nullptr, &rows);
  std::vector<int64_t> balances(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!rows[i].status.ok()) return false;
    if (!ParseBalance(rows[i].fields, &balances[i])) return false;
  }

  int64_t payees = static_cast<int64_t>(keys.size()) - 1;
  std::vector<FieldMap> values(keys.size());
  values[0][kBalanceField] = std::to_string(balances[0] - payees);
  for (size_t i = 1; i < keys.size(); ++i) {
    values[i][kBalanceField] = std::to_string(balances[i] + 1);
  }
  std::vector<Status> statuses;
  db.BatchInsert(table_, keys, values, &statuses);
  for (const Status& s : statuses) {
    if (!s.ok()) return false;
  }
  return true;
}

bool ClosedEconomyWorkload::DoTransactionBatchRead(DB& db, ThreadState* state) {
  size_t len = NextBatchSize(state->rng);
  std::vector<std::string> keys;
  keys.reserve(len);
  for (size_t i = 0; i < len; ++i) keys.push_back(BuildKeyName(NextKeyNum(state->rng)));
  std::vector<MultiReadRow> rows;
  db.MultiRead(table_, keys, nullptr, &rows);
  for (const auto& row : rows) {
    // A concurrently closed account is a legitimate NotFound, not a failure.
    if (!row.status.ok() && !row.status.IsNotFound()) return false;
  }
  return true;
}

bool ClosedEconomyWorkload::DoTransactionBatchInsert(DB& db, ThreadState* state) {
  auto* cew = static_cast<CewThreadState*>(state);
  size_t len = NextBatchSize(state->rng);
  std::vector<uint64_t> key_nums;
  std::vector<std::string> keys;
  std::vector<FieldMap> values(len);
  key_nums.reserve(len);
  keys.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    uint64_t key_num = insert_sequence_->Next(state->rng);
    key_nums.push_back(key_num);
    keys.push_back(BuildKeyName(key_num));
    // Each new account opens funded from the capture bank, like the
    // single-op insert; money still never enters the system.
    int64_t funding = WithdrawFromBank(initial_balance_);
    cew->pending_withdrawn += funding;
    values[i][kBalanceField] = std::to_string(funding);
  }
  std::vector<Status> statuses;
  db.BatchInsert(table_, keys, values, &statuses);
  bool ok = true;
  for (const Status& s : statuses) {
    if (!s.ok()) ok = false;
  }
  for (uint64_t key_num : key_nums) insert_sequence_->Acknowledge(key_num);
  return ok;
}

void ClosedEconomyWorkload::OnTransactionOutcome(ThreadState* state,
                                                 const TxnOpResult& /*result*/,
                                                 bool committed) {
  auto* cew = static_cast<CewThreadState*>(state);
  if (committed) {
    bank_.fetch_add(cew->pending_deposit, std::memory_order_relaxed);
  } else {
    // Refund: the transaction's database effects were rolled back, so the
    // money it withdrew must return to the bank.
    bank_.fetch_add(cew->pending_withdrawn, std::memory_order_relaxed);
  }
  cew->pending_withdrawn = 0;
  cew->pending_deposit = 0;
}

Status ClosedEconomyWorkload::Validate(DB& db, uint64_t operations_executed,
                                       ValidationResult* result) {
  *result = ValidationResult{};
  result->performed = true;

  // Sweep the whole table in key order, paginating on the returned keys.
  int64_t counted = 0;
  uint64_t records = 0;
  std::string cursor = "";
  constexpr size_t kBatch = 1000;
  for (;;) {
    std::vector<ScanRow> rows;
    Status s = db.Scan(table_, cursor, kBatch, nullptr, &rows);
    if (!s.ok()) return s;
    if (rows.empty()) break;
    for (const auto& row : rows) {
      int64_t balance;
      if (!ParseBalance(row.fields, &balance)) {
        return Status::Corruption("unparsable balance for key " + row.key);
      }
      counted += balance;
      ++records;
    }
    if (rows.size() < kBatch) break;
    cursor = rows.back().key + '\0';  // resume after the last row
  }

  // Invariant: accounts + capture bank == the cash loaded initially.
  int64_t expected = total_cash_ - bank_.load(std::memory_order_relaxed);
  int64_t drift = counted - expected;
  result->passed = drift == 0;
  result->anomaly_score =
      operations_executed == 0
          ? (drift == 0 ? 0.0 : 1.0)
          : static_cast<double>(drift < 0 ? -drift : drift) /
                static_cast<double>(operations_executed);
  result->report.emplace_back("TOTAL CASH", std::to_string(expected));
  result->report.emplace_back("COUNTED CASH", std::to_string(counted));
  result->report.emplace_back("COUNTED RECORDS", std::to_string(records));
  result->report.emplace_back("ACTUAL OPERATIONS",
                              std::to_string(operations_executed));
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", result->anomaly_score);
    result->report.emplace_back("ANOMALY SCORE", buf);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace ycsbt
