#ifndef YCSBT_CORE_BROWNOUT_H_
#define YCSBT_CORE_BROWNOUT_H_

#include <atomic>
#include <cstdint>

#include "common/properties.h"
#include "kv/resilient_store.h"

namespace ycsbt {
namespace core {

/// Brownout/load-shedding policy, from the `shed.*` namespace:
///
///   shed.enabled         master switch (default false)
///   shed.max_inflight    in-flight transaction cap while browned out; 0 =
///                        no cap (default 2).  Kept above zero so a trickle
///                        of traffic still reaches the breaker — the probes
///                        that eventually re-close it.
///   shed.drop_reads      shed read-only transactions first while browned
///                        out (default true)
///   shed.queue_delay_us  average whole-transaction latency (per status
///                        window) that counts as sustained queue delay;
///                        0 = breaker-triggered brownout only (default 0)
///   shed.windows         consecutive hot status windows before the latency
///                        trigger fires (default 2)
struct BrownoutOptions {
  bool enabled = false;
  int max_inflight = 2;
  bool drop_read_only = true;
  double queue_delay_us = 0.0;
  int windows = 2;

  static BrownoutOptions FromProperties(const Properties& props);
};

/// Admission controller for the client threads: while the system is
/// *browned out* — a backend breaker is Open, or the watchdog has seen
/// sustained queue delay — new transactions are shed (read-only ones first,
/// then everything over the in-flight cap) instead of joining the queue and
/// grinding the tail.
///
/// Determinism: the breaker trigger is a pure function of the seeded fault
/// schedule, and with a single client thread the in-flight/read-only
/// decisions replay exactly — the SHED counters of two same-seed chaos runs
/// are identical (the latency trigger, wall-clock by nature, defaults off).
class BrownoutController {
 public:
  BrownoutController(const BrownoutOptions& options,
                     kv::ResilientStore* resilience)
      : options_(options), resilience_(resilience) {}

  /// True while shedding decisions apply.
  bool BrownedOut() const {
    return (resilience_ != nullptr && resilience_->AnyBreakerOpen()) ||
           latency_brownout_.load(std::memory_order_relaxed) ||
           arrival_brownout_.load(std::memory_order_relaxed);
  }

  /// Whether the runner should bother computing the read-only peek.
  bool WantsReadOnlyHint() const {
    return options_.drop_read_only && BrownedOut();
  }

  /// Gate for one transaction.  True admits (and counts it in flight until
  /// `OnTxnDone`); false sheds.
  bool AdmitTxn(bool read_only) {
    if (!BrownedOut()) {
      inflight_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (options_.drop_read_only && read_only) {
      sheds_.fetch_add(1, std::memory_order_relaxed);
      shed_reads_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (options_.max_inflight > 0) {
      int cur = inflight_.load(std::memory_order_relaxed);
      do {
        if (cur >= options_.max_inflight) {
          sheds_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      } while (!inflight_.compare_exchange_weak(cur, cur + 1,
                                                std::memory_order_relaxed));
      return true;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void OnTxnDone() { inflight_.fetch_sub(1, std::memory_order_relaxed); }

  /// Watchdog feed: average whole-transaction latency of the last status
  /// window.  Drives the sustained-queue-delay trigger.
  void ReportWindow(double avg_latency_us) {
    if (options_.queue_delay_us <= 0.0) return;
    if (avg_latency_us > options_.queue_delay_us) {
      int hot = hot_windows_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (hot >= options_.windows) {
        latency_brownout_.store(true, std::memory_order_relaxed);
      }
    } else {
      hot_windows_.store(0, std::memory_order_relaxed);
      latency_brownout_.store(false, std::memory_order_relaxed);
    }
  }

  /// Open-loop arrival feed (the third brownout trigger, after breakers and
  /// queue delay): a client thread reports its pending-arrival backlog depth
  /// each iteration.  A full backlog — the scheduler is dropping arrivals —
  /// enters brownout; draining back below half the cap leaves it.  While
  /// browned out the existing shed path applies, so an overloaded open-loop
  /// run degrades (reads shed first) instead of queueing without bound.
  void ReportArrivalBacklog(uint64_t depth, uint64_t cap) {
    if (cap == 0) return;
    if (depth >= cap) {
      arrival_brownout_.store(true, std::memory_order_relaxed);
    } else if (depth <= cap / 2) {
      arrival_brownout_.store(false, std::memory_order_relaxed);
    }
  }

  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }
  uint64_t shed_reads() const {
    return shed_reads_.load(std::memory_order_relaxed);
  }
  const BrownoutOptions& options() const { return options_; }

 private:
  const BrownoutOptions options_;
  kv::ResilientStore* resilience_;  // borrowed; may be null

  std::atomic<int> inflight_{0};
  std::atomic<int> hot_windows_{0};
  std::atomic<bool> latency_brownout_{false};
  std::atomic<bool> arrival_brownout_{false};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> shed_reads_{0};
};

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_BROWNOUT_H_
