#ifndef YCSBT_CORE_WORKLOAD_FACTORY_H_
#define YCSBT_CORE_WORKLOAD_FACTORY_H_

#include <memory>

#include "core/workload.h"

namespace ycsbt {
namespace core {

/// Instantiates and initialises the workload named by the `workload`
/// property.  Accepted names:
///  - `core` (default) — CoreWorkload;
///  - `closed_economy` — ClosedEconomyWorkload;
///  - `write_skew` — WriteSkewWorkload (isolation-level anomaly targeting,
///    the paper's SVII future work);
///  - the Java class names of the original framework
///    (`com.yahoo.ycsb.workloads.CoreWorkload`,
///    `com.yahoo.ycsb.workloads.ClosedEconomyWorkload`), accepted verbatim so
///    the paper's Listing 2 properties files run unmodified.
Status CreateWorkload(const Properties& props, std::unique_ptr<Workload>* out);

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_WORKLOAD_FACTORY_H_
