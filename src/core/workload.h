#ifndef YCSBT_CORE_WORKLOAD_H_
#define YCSBT_CORE_WORKLOAD_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/properties.h"
#include "common/random.h"
#include "common/status.h"
#include "db/db.h"

namespace ycsbt {
namespace core {

/// Outcome of the Tier-6 validation stage (paper §III-B, §IV-B).
struct ValidationResult {
  /// False when the workload has no validation (the default no-op).
  bool performed = false;
  /// True when the application-defined consistency check held.
  bool passed = true;
  /// The workload-specific anomaly quantification; 0 = consistent
  /// (as from a serializable execution).
  double anomaly_score = 0.0;
  /// Report lines for the exporter, e.g. {"TOTAL CASH", "1000000"}.
  std::vector<std::pair<std::string, std::string>> report;
};

/// Result of one workload transaction: whether it succeeded (deciding
/// commit vs abort in the wrapping client thread) and which operation it
/// performed (naming the whole-transaction `TX-<OP>` latency series).
struct TxnOpResult {
  bool ok = false;
  const char* op = "UNKNOWN";
};

/// Base class of YCSB/YCSB+T workloads (paper Fig 1).
///
/// The workload defines what one *insert* (load phase) and one *transaction*
/// (run phase) do against the DB abstraction; the client threads decide the
/// operation cadence and — this is the YCSB+T extension — wrap each call in
/// `DB::Start()` / `DB::Commit()` / `DB::Abort()`.
///
/// `Validate` is the second YCSB+T extension: an application-defined
/// consistency check over the final database state, run by the executor
/// after the workload completes.  The default is a no-op, keeping every
/// plain-YCSB workload source-compatible.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Per-thread scratch state (RNG, in-flight buffers); created once per
  /// client thread, passed back into every DoInsert/DoTransaction call.
  class ThreadState {
   public:
    explicit ThreadState(uint64_t seed) : rng(seed) {}
    virtual ~ThreadState() = default;

    Random64 rng;
    /// Operation drawn ahead of time by `NextTransactionReadOnly` and
    /// consumed by the next `DoTransaction` call, so peeking never perturbs
    /// the deterministic op/key streams.  Null = nothing pending.
    const char* peeked_op = nullptr;
  };

  /// Reads workload parameters.  Called once before any thread starts.
  virtual Status Init(const Properties& props) = 0;

  /// Creates the per-thread state for client thread `thread_id` of
  /// `thread_count`.  The default derives each thread's RNG seed from
  /// `base_seed()`, so two runs with the same `seed` property replay the
  /// same operation streams.
  virtual std::unique_ptr<ThreadState> InitThread(int thread_id, int thread_count);

  /// Base RNG seed (the `seed` property; implementations read it in Init).
  uint64_t base_seed() const { return base_seed_; }

  /// One load-phase insert.  Returns false on failure (the run aborts).
  virtual bool DoInsert(DB& db, ThreadState* state) = 0;

  /// One record of the load phase in data form, for bulk ingestion.
  struct LoadRecord {
    std::string table;
    std::string key;
    FieldMap values;
  };

  /// Produces the record the next `DoInsert` on this thread would write,
  /// WITHOUT touching the DB — the sorted-bulk-load path: the runner
  /// collects records from every thread, sorts them, and feeds the engine's
  /// `BulkLoad` directly.  Returns false when the thread's load quota is not
  /// expressible as plain records (the workload then keeps the per-op
  /// `DoInsert` path).  Implementations must draw from the same deterministic
  /// streams as `DoInsert`, so a bulk-loaded table is byte-identical to a
  /// per-op-loaded one.  Default: false (no bulk path).
  virtual bool BuildNextInsert(ThreadState* state, LoadRecord* record);

  /// One run-phase transaction (one or more DB operations).
  virtual TxnOpResult DoTransaction(DB& db, ThreadState* state) = 0;

  /// Peeks whether the *next* `DoTransaction` on this thread would be
  /// read-only — the brownout controller's shed-reads-first hint.
  /// Implementations that draw their operation from an RNG must cache the
  /// draw in `state->peeked_op` (and consume it in `DoTransaction`) so the
  /// peek leaves the deterministic streams intact.  Default: false, i.e.
  /// treat every transaction as potentially mutating.
  virtual bool NextTransactionReadOnly(ThreadState* state);

  /// Tier-6 validation stage; default no-op (`performed = false`).
  /// `operations_executed` is the number of workload transactions the run
  /// performed — the denominator of the paper's anomaly score.
  virtual Status Validate(DB& db, uint64_t operations_executed,
                          ValidationResult* result);

  /// Hook called by the client thread after each transaction's outcome is
  /// known (`committed` is false when the DB aborted or the commit failed).
  /// Lets workloads with out-of-band state (CEW's capture bank) compensate
  /// for aborted transactions.  Default: nothing.
  virtual void OnTransactionOutcome(ThreadState* state, const TxnOpResult& result,
                                    bool committed);

  /// Hook called by the client thread between a failed attempt and its
  /// retry, so out-of-band state is re-derived instead of double-applied
  /// when `DoTransaction` runs again.  Default: treat the attempt as an
  /// aborted outcome.
  virtual void OnTransactionRetry(ThreadState* state, const TxnOpResult& result);

  /// Total records the load phase should insert (from `recordcount`).
  virtual uint64_t record_count() const = 0;

 protected:
  /// Reads the `seed` property (implementations call this from Init).
  void InitSeed(const Properties& props) {
    base_seed_ = props.GetUint("seed", 0x5EEDBA5Eull);
  }

 private:
  uint64_t base_seed_ = 0x5EEDBA5Eull;
};

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_WORKLOAD_H_
