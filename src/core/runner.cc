#include "core/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <iterator>
#include <limits>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/latency_model.h"
#include "common/logging.h"
#include "common/op_context.h"
#include "common/sync.h"
#include "db/field_codec.h"
#include "db/kvstore_db.h"
#include "db/measured_db.h"

namespace ycsbt {
namespace core {

RunSummary RunResult::MakeSummary() const {
  RunSummary summary;
  summary.runtime_ms = runtime_ms;
  summary.throughput_ops_sec = throughput_ops_sec;
  summary.operations = operations;
  summary.has_validation = validation.performed;
  summary.validation_passed = validation.passed;
  summary.extra = validation.report;
  if (retries_enabled) {
    summary.extra.emplace_back("TX-RETRIES", std::to_string(retries));
    char per_txn[32];
    std::snprintf(per_txn, sizeof(per_txn), "%.4f",
                  operations == 0 ? 0.0
                                  : static_cast<double>(retries) /
                                        static_cast<double>(operations));
    summary.extra.emplace_back("RETRIES PER TXN", per_txn);
    summary.extra.emplace_back("TIME IN BACKOFF(us)",
                               std::to_string(backoff_time_us));
    summary.extra.emplace_back("TX-GIVEUPS", std::to_string(giveups));
  }
  if (roll_forwards != 0 || roll_backs != 0 || injected_crashes != 0 ||
      ambiguous_commits != 0) {
    summary.extra.emplace_back("RECOVERY ROLLFORWARDS",
                               std::to_string(roll_forwards));
    summary.extra.emplace_back("RECOVERY ROLLBACKS", std::to_string(roll_backs));
    summary.extra.emplace_back("INJECTED CRASHES",
                               std::to_string(injected_crashes));
    summary.extra.emplace_back("AMBIGUOUS COMMITS",
                               std::to_string(ambiguous_commits));
  }
  if (stall_events != 0) {
    summary.extra.emplace_back("WATCHDOG STALLS", std::to_string(stall_events));
  }
  if (recovery_reported) {
    summary.extra.emplace_back("RECOVERY-REPLAYED",
                               std::to_string(recovery_wal_replayed));
    summary.extra.emplace_back("RECOVERY-SKIPPED",
                               std::to_string(recovery_wal_skipped));
    summary.extra.emplace_back("RECOVERY-TRUNCATED-BYTES",
                               std::to_string(recovery_truncated_bytes));
    summary.extra.emplace_back(
        "CKPT-SCRUB", recovery_ckpt_scrubbed ? "1 (" + recovery_scrub_reason + ")"
                                             : "0");
    summary.extra.emplace_back("CKPT-RECORDS",
                               std::to_string(recovery_ckpt_records));
  }
  if (storage_faults_enabled) {
    summary.extra.emplace_back("STORAGE-FAULTS INJECTED",
                               std::to_string(storage_faults_injected));
    summary.extra.emplace_back("STORAGE-ENV CRASHED",
                               storage_env_crashed ? "1" : "0");
  }
  if (resilience_enabled) {
    summary.extra.emplace_back("BREAKER OPENS", std::to_string(breaker_opens));
    summary.extra.emplace_back("BREAKER FAST-FAILS",
                               std::to_string(breaker_fast_fails));
    summary.extra.emplace_back("BREAKER PROBES", std::to_string(breaker_probes));
    summary.extra.emplace_back("BREAKER RECLOSES",
                               std::to_string(breaker_recloses));
    summary.extra.emplace_back("HEDGES SENT", std::to_string(hedges_sent));
    summary.extra.emplace_back("HEDGES WON", std::to_string(hedges_won));
    summary.extra.emplace_back("HEDGES WASTED", std::to_string(hedges_wasted));
    summary.extra.emplace_back("DEADLINE ABANDONS",
                               std::to_string(deadline_abandons));
  }
  if (shed_enabled) {
    summary.extra.emplace_back("SHED TXNS", std::to_string(shed_txns));
    summary.extra.emplace_back("SHED READS", std::to_string(shed_reads));
  }
  if (arrival_enabled) {
    summary.extra.emplace_back("ARRIVAL DROPS", std::to_string(arrival_drops));
    summary.extra.emplace_back("BACKLOG PEAK", std::to_string(backlog_peak));
    summary.extra.emplace_back("SCHED-LAG MAX(us)",
                               std::to_string(sched_lag_max_us));
  }
  if (wal_appends != 0) {
    summary.extra.emplace_back("WAL APPENDS", std::to_string(wal_appends));
    summary.extra.emplace_back("WAL SYNCS", std::to_string(wal_syncs));
    summary.extra.emplace_back("WAL GROUP BATCHES", std::to_string(wal_batches));
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.2f", wal_avg_batch);
    summary.extra.emplace_back("WAL AVG BATCH", avg);
    summary.extra.emplace_back("WAL MAX BATCH", std::to_string(wal_max_batch));
  }
  if (fanout_batches != 0) {
    summary.extra.emplace_back("FANOUT BATCHES", std::to_string(fanout_batches));
    summary.extra.emplace_back("FANOUT ITEMS", std::to_string(fanout_items));
    char favg[32];
    std::snprintf(favg, sizeof(favg), "%.2f", fanout_avg_width);
    summary.extra.emplace_back("FANOUT AVG WIDTH", favg);
  }
  if (occ_enabled) {
    summary.extra.emplace_back("OCC COMMITS", std::to_string(occ_commits));
    summary.extra.emplace_back("OCC ABORTS", std::to_string(occ_aborts));
    summary.extra.emplace_back("OCC VALIDATE FAILS",
                               std::to_string(occ_validation_fails));
    summary.extra.emplace_back("EPOCH ADVANCES",
                               std::to_string(occ_epoch_advances));
    summary.extra.emplace_back("OCC VERSIONS RETIRED",
                               std::to_string(occ_versions_retired));
    summary.extra.emplace_back("OCC VERSIONS FREED",
                               std::to_string(occ_versions_freed));
  }
  if (replication_enabled) {
    summary.extra.emplace_back("FAILOVERS", std::to_string(failovers));
    summary.extra.emplace_back("NOT-LEADER REJECTS",
                               std::to_string(not_leader_rejects));
    summary.extra.emplace_back("LOST-TAIL WRITES",
                               std::to_string(lost_tail_writes));
    summary.extra.emplace_back("STALE READS", std::to_string(stale_reads));
    summary.extra.emplace_back("REPLICA APPLIES",
                               std::to_string(replica_applies));
    summary.extra.emplace_back("PARTITION REJECTS",
                               std::to_string(partition_rejects));
  }
  summary.intervals = intervals;
  summary.open_loop = arrival_enabled;
  return summary;
}

namespace {

/// Per-thread slice of a total budget: thread i of n gets an equal share,
/// with the remainder spread over the first threads.
uint64_t ShareOf(uint64_t total, int thread_id, int threads) {
  uint64_t base = total / static_cast<uint64_t>(threads);
  uint64_t extra = thread_id < static_cast<int>(total % threads) ? 1 : 0;
  return base + extra;
}

/// Interval counters one client thread publishes for the watchdog: each
/// thread owns one cache line and stores its locally accumulated totals with
/// relaxed ordering, so publishing progress never contends with the other
/// clients (unlike the seed's shared fetch_add counters).
struct alignas(64) ClientProgress {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> latency_sum_us{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> giveups{0};
  std::atomic<uint64_t> backoff_us{0};
  std::atomic<uint64_t> sheds{0};
  /// Open-loop arrival bookkeeping: cumulative intended-vs-actual start lag
  /// (and its per-thread maximum), the current and peak pending-arrival
  /// backlog, and arrivals dropped over a full backlog.  All zero in
  /// closed-loop runs.
  std::atomic<uint64_t> sched_lag_sum_us{0};
  std::atomic<uint64_t> sched_lag_max_us{0};
  std::atomic<uint64_t> backlog{0};
  std::atomic<uint64_t> backlog_peak{0};
  std::atomic<uint64_t> arrival_drops{0};
  /// Ticks once per bounded slice of a backoff sleep, so a thread waiting
  /// out a long election/throttle window keeps signalling liveness to the
  /// stall detector for the whole nap, not just at its start.
  std::atomic<uint64_t> wait_ticks{0};
  /// Set when the thread exits its loop, so the watchdog's stall detector
  /// does not flag finished threads.
  std::atomic<bool> done{false};
};

/// Sums one field across all client progress lines (relaxed reads; exact
/// once the clients have finished).
template <typename Field>
uint64_t SumProgress(const std::vector<ClientProgress>& progress, Field field) {
  uint64_t total = 0;
  for (const auto& p : progress) total += (p.*field).load(std::memory_order_relaxed);
  return total;
}

/// Maximum of one field across all client progress lines.
template <typename Field>
uint64_t MaxProgress(const std::vector<ClientProgress>& progress, Field field) {
  uint64_t max_value = 0;
  for (const auto& p : progress) {
    max_value = std::max(max_value, (p.*field).load(std::memory_order_relaxed));
  }
  return max_value;
}

/// Per-thread cache of `TX-<OP><suffix>` series handles.  Workloads report
/// ops as string literals, so a pointer-identity scan over a handful of
/// entries resolves the series without building a string or hashing; a miss
/// (first sight of an op, or a non-literal pointer) interns through the
/// registry and is remembered.  The suffix distinguishes the actual-start
/// series ("") from the open-loop intended-start series ("-INTENDED").
class TxSeriesCache {
 public:
  explicit TxSeriesCache(Measurements* measurements, const char* suffix = "")
      : measurements_(measurements), suffix_(suffix) {}

  OpId Get(const char* op) {
    for (const auto& [ptr, id] : entries_) {
      if (ptr == op) return id;
    }
    OpId id = measurements_->RegisterOp(std::string("TX-") + op + suffix_);
    entries_.emplace_back(op, id);
    return id;
  }

 private:
  Measurements* measurements_;
  const char* suffix_;
  std::vector<std::pair<const char*, OpId>> entries_;
};

/// Sleeps until the monotonic deadline, in bounded slices: each slice ticks
/// the thread's `wait_ticks` progress channel (so the watchdog never
/// mistakes a long pacing/arrival wait for a stall), the deadline is
/// re-checked after every slice with the sub-microsecond remainder rounded
/// *up* (so a throttled thread never wakes early and the achieved rate never
/// overshoots the target), and a raised stop flag abandons the wait.
void SlicedWaitUntil(uint64_t deadline_ns, const std::atomic<bool>& stop,
                     std::atomic<uint64_t>* wait_ticks) {
  for (;;) {
    uint64_t now = SteadyNanos();
    if (now >= deadline_ns) return;
    if (stop.load(std::memory_order_relaxed)) return;
    uint64_t left_us = (deadline_ns - now + 999) / 1000;  // ceil: never early
    SleepMicros(std::min<uint64_t>(left_us, 20'000));
    wait_ticks->fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

Status WorkloadRunner::BulkLoadPhase(const LoadOptions& options) {
  int threads = std::max(options.threads, 1);
  uint64_t total = workload_->record_count();

  // Build every thread's record stream in data form.  Thread t draws from
  // the same InitThread(t) state and quota as the per-op path, so the
  // records — keys and values — are byte-identical to what DoInsert would
  // have written.
  std::vector<std::vector<std::pair<std::string, std::string>>> parts(
      static_cast<size_t>(threads));
  std::atomic<bool> unsupported{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint64_t quota = ShareOf(total, t, threads);
      auto state = workload_->InitThread(t, threads);
      auto& out = parts[static_cast<size_t>(t)];
      out.reserve(quota);
      Workload::LoadRecord record;
      for (uint64_t i = 0; i < quota; ++i) {
        if (!workload_->BuildNextInsert(state.get(), &record)) {
          unsupported.store(true, std::memory_order_relaxed);
          return;
        }
        out.emplace_back(
            KvStoreDB::ComposeKey(record.table, record.key),
            factory_->EncodeBulkValue(EncodeFields(record.values)));
      }
    });
  }
  for (auto& th : pool) th.join();
  if (unsupported.load()) {
    return Status::NotSupported("workload has no data-form load stream");
  }

  std::vector<std::pair<std::string, std::string>> records;
  records.reserve(total);
  for (auto& part : parts) {
    std::move(part.begin(), part.end(), std::back_inserter(records));
    part.clear();
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  // Hashed key order can (in principle) collide two key numbers onto one key
  // string; keep the last write like the per-op path's overwrite would.
  size_t w = 0;
  for (size_t r = 0; r < records.size(); ++r) {
    if (w > 0 && records[w - 1].first == records[r].first) {
      records[w - 1] = std::move(records[r]);
    } else {
      if (w != r) records[w] = std::move(records[r]);
      ++w;
    }
  }
  records.resize(w);

  kv::ShardedStore* engine = factory_->local_engine();
  size_t batch = static_cast<size_t>(options.bulk_batch);
  for (size_t off = 0; off < records.size(); off += batch) {
    size_t len = std::min(batch, records.size() - off);
    std::vector<std::pair<std::string, std::string>> frame(
        std::make_move_iterator(records.begin() + static_cast<ptrdiff_t>(off)),
        std::make_move_iterator(records.begin() + static_cast<ptrdiff_t>(off + len)));
    Status s = engine->BulkLoad(frame);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status WorkloadRunner::Load(const LoadOptions& options) {
  if (options.bulk_batch > 0) {
    if (!options.wrap_in_transactions && factory_->SupportsBulkLoad()) {
      Status s = BulkLoadPhase(options);
      // NotSupported = no data-form stream for this workload; every other
      // status — success or a real ingest failure — is final.
      if (!s.IsNotSupported()) return s;
      YCSBT_WARN("bulkload.batch set but the workload has no bulk load "
                 "stream; falling back to per-op inserts");
    } else {
      YCSBT_WARN("bulkload.batch set but the binding cannot bulk load "
                 "(transactional load or no local engine); falling back to "
                 "per-op inserts");
    }
  }
  int threads = std::max(options.threads, 1);
  uint64_t total = workload_->record_count();
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> skipped{0};
  std::vector<std::thread> pool;
  std::vector<Status> init_errors(static_cast<size_t>(threads));
  pool.reserve(static_cast<size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint64_t quota = ShareOf(total, t, threads);
      auto db = factory_->CreateClient();
      Status init = db == nullptr ? Status::Internal("factory returned no client")
                                  : db->Init();
      if (!init.ok()) {
        // A thread that cannot initialise skips its whole quota; surface
        // both the cause and the missing inserts instead of silently
        // under-loading the table.
        init_errors[static_cast<size_t>(t)] = init;
        skipped.fetch_add(quota, std::memory_order_relaxed);
        return;
      }
      // The load phase is setup, not measured client traffic: like the
      // fault layer (armed only around the run), the resilience layer's
      // breakers/deadlines/hedging must not apply to it.
      OpExemptScope resilience_exempt;
      auto state = workload_->InitThread(t, threads);
      for (uint64_t i = 0; i < quota; ++i) {
        bool ok;
        if (options.wrap_in_transactions) {
          db->Start();
          ok = workload_->DoInsert(*db, state.get());
          Status cs = ok ? db->Commit() : db->Abort();
          ok = ok && cs.ok();
        } else {
          ok = workload_->DoInsert(*db, state.get());
        }
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
      }
      db->Cleanup();
    });
  }
  for (auto& th : pool) th.join();
  for (const auto& s : init_errors) {
    if (!s.ok()) {
      return Status::Internal("load client init failed: " + s.ToString() +
                              "; skipped " + std::to_string(skipped.load()) +
                              " inserts");
    }
  }
  if (failures.load() != 0) {
    return Status::Internal(std::to_string(failures.load()) + " inserts failed");
  }
  return Status::OK();
}

Status WorkloadRunner::Run(const RunOptions& options, RunResult* result) {
  if (options.operation_count == 0 && options.max_execution_seconds <= 0.0) {
    return Status::InvalidArgument(
        "run needs an operation_count or max_execution_seconds");
  }
  int threads = std::max(options.threads, 1);

  std::vector<ClientProgress> progress(static_cast<size_t>(threads));
  std::atomic<int> finished{0};
  std::atomic<bool> stop{false};
  CountDownLatch start_gate(1);
  std::vector<std::thread> pool;
  std::vector<Status> init_errors(static_cast<size_t>(threads));
  pool.reserve(static_cast<size_t>(threads));

  bool open_loop = options.arrival.open_loop();
  if (open_loop && options.target_ops_per_sec > 0.0) {
    YCSBT_WARN("both arrival.rate and target are set; open-loop arrival "
               "scheduling wins and the closed-loop throttle is ignored");
  }
  double per_thread_target =
      !open_loop && options.target_ops_per_sec > 0.0
          ? options.target_ops_per_sec / threads
          : 0.0;

  // Brownout admission control, shared by all client threads; wired to the
  // factory's resilience layer so an Open breaker flips the system into
  // brownout deterministically.
  std::unique_ptr<BrownoutController> brownout;
  if (options.shed.enabled) {
    brownout = std::make_unique<BrownoutController>(options.shed,
                                                    factory_->resilient_store());
  }

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto raw = factory_->CreateClient();
      if (raw == nullptr) {
        init_errors[static_cast<size_t>(t)] = Status::Internal("client init failed");
        progress[static_cast<size_t>(t)].done.store(true, std::memory_order_relaxed);
        finished.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      MeasuredDB db(std::move(raw), measurements_);
      // This thread's lock-free measurement sink: the wrapper's per-call
      // series and the whole-transaction TX-<OP> series both record into
      // it, and it merges into the shared registry only at the flush below.
      ThreadSink* sink = measurements_->CreateSink();
      db.BindSink(sink);
      if (!db.Init().ok()) {
        init_errors[static_cast<size_t>(t)] = Status::Internal("client init failed");
        progress[static_cast<size_t>(t)].done.store(true, std::memory_order_relaxed);
        finished.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      auto state = workload_->InitThread(t, threads);
      TxSeriesCache tx_series(measurements_);
      TxSeriesCache tx_intended_series(measurements_, "-INTENDED");
      OpId retry_series = measurements_->RegisterOp("TX-RETRY");
      OpId giveup_series = measurements_->RegisterOp("TX-GIVEUP");
      OpId shed_series = measurements_->RegisterOp("SHED");
      OpId sched_lag_series, backlog_series, drop_series;
      if (open_loop) {
        sched_lag_series = measurements_->RegisterOp("SCHED-LAG");
        backlog_series = measurements_->RegisterOp("BACKLOG");
        drop_series = measurements_->RegisterOp("ARRIVAL-DROP");
      }
      ClientProgress& mine = progress[static_cast<size_t>(t)];
      uint64_t quota = options.operation_count == 0
                           ? std::numeric_limits<uint64_t>::max()
                           : ShareOf(options.operation_count, t, threads);
      // Backoff randomness lives on its own stream so the retry schedule
      // never perturbs the workload's deterministic key/op streams.
      Random64 backoff_rng(workload_->base_seed() ^ 0xBACC0FFull ^
                           (static_cast<uint64_t>(t) << 32));
      // Open-loop mode: this thread owns 1/threads of the scripted aggregate
      // rate and draws its intended start times ahead of execution, so a slow
      // transaction makes the *next* arrivals late (queueing we measure)
      // instead of postponing them (coordinated omission).  Arrivals that
      // come due mid-transaction queue in a bounded backlog; overflow drops
      // consume quota slots like sheds so overloaded runs still terminate.
      std::unique_ptr<ArrivalSchedule> arrival_sched;
      if (open_loop) {
        arrival_sched = std::make_unique<ArrivalSchedule>(
            options.arrival, workload_->base_seed(), t, threads);
      }
      std::deque<uint64_t> backlog_q;  // due-but-unexecuted arrival offsets (ns)

      start_gate.Wait();
      uint64_t start_ns = SteadyNanos();
      uint64_t interval_ns =
          per_thread_target > 0.0 ? static_cast<uint64_t>(1e9 / per_thread_target) : 0;
      uint64_t next_op_ns = start_ns;

      uint64_t ops = 0, committed = 0, failed = 0, latency_sum_us = 0;
      uint64_t retries = 0, giveups = 0, backoff_us = 0, sheds = 0;
      uint64_t arrival_drops = 0, backlog_peak = 0;
      uint64_t sched_lag_sum_us = 0, sched_lag_max_us = 0;
      uint64_t budget_used = 0;
      while (budget_used < quota && !stop.load(std::memory_order_relaxed)) {
        ++budget_used;  // this iteration's slot: an executed, shed or dropped txn
        uint64_t lag_us = 0;
        if (open_loop) {
          // Take the oldest due arrival, or wait for the next scheduled one.
          uint64_t sched_off_ns;
          if (!backlog_q.empty()) {
            sched_off_ns = backlog_q.front();
            backlog_q.pop_front();
          } else {
            sched_off_ns = arrival_sched->PeekNs();
            arrival_sched->Pop();
            SlicedWaitUntil(start_ns + sched_off_ns, stop, &mine.wait_ticks);
          }
          uint64_t now = SteadyNanos();
          uint64_t now_off_ns = now > start_ns ? now - start_ns : 0;
          // Pull every arrival already due into the backlog; once it is full
          // the rest are dropped (each consuming a quota slot) — the honest
          // open-loop account of offered load the system never absorbed.
          while (arrival_sched->PeekNs() <= now_off_ns) {
            if (backlog_q.size() <
                static_cast<size_t>(options.arrival.max_backlog)) {
              backlog_q.push_back(arrival_sched->PeekNs());
            } else if (budget_used < quota) {
              ++budget_used;
              ++arrival_drops;
              sink->Record(drop_series, 0, Status::Code::kUnavailable);
            } else {
              break;
            }
            arrival_sched->Pop();
          }
          if (now_off_ns > sched_off_ns) {
            lag_us = (now_off_ns - sched_off_ns) / 1000;
          }
          sched_lag_sum_us += lag_us;
          sched_lag_max_us = std::max(sched_lag_max_us, lag_us);
          backlog_peak = std::max<uint64_t>(backlog_peak, backlog_q.size());
          sink->Measure(sched_lag_series, static_cast<int64_t>(lag_us));
          sink->Measure(backlog_series,
                        static_cast<int64_t>(backlog_q.size()));
          // A full backlog is the third brownout trigger: the system is not
          // keeping up with the offered rate, so start shedding before the
          // queue turns into unbounded latency.
          if (brownout != nullptr) {
            brownout->ReportArrivalBacklog(backlog_q.size(),
                                           options.arrival.max_backlog);
          }
          mine.sched_lag_sum_us.store(sched_lag_sum_us, std::memory_order_relaxed);
          mine.sched_lag_max_us.store(sched_lag_max_us, std::memory_order_relaxed);
          mine.backlog.store(backlog_q.size(), std::memory_order_relaxed);
          mine.backlog_peak.store(backlog_peak, std::memory_order_relaxed);
          mine.arrival_drops.store(arrival_drops, std::memory_order_relaxed);
        } else if (interval_ns != 0) {
          SlicedWaitUntil(next_op_ns, stop, &mine.wait_ticks);
          next_op_ns += interval_ns;
        }

        // Brownout admission: while the system is browned out the thread
        // sheds this transaction — consuming its quota slot, so the run
        // still terminates — instead of queueing behind a saturated
        // backend.  Read-only transactions go first (the peek is
        // stream-neutral, so determinism holds).
        if (brownout != nullptr) {
          bool read_only = brownout->WantsReadOnlyHint() &&
                           workload_->NextTransactionReadOnly(state.get());
          if (!brownout->AdmitTxn(read_only)) {
            sink->Record(shed_series, 0, Status::Code::kUnavailable);
            ++sheds;
            mine.sheds.store(sheds, std::memory_order_relaxed);
            continue;
          }
        }

        // The per-transaction deadline (retry.deadline_us) propagates down
        // the store stack as the ambient OpContext: once it expires, every
        // layer below fails fast instead of paying more doomed RPCs.
        OpDeadlineScope deadline_scope(
            options.wrap_in_transactions ? options.retry.deadline_us : 0);

        // Whole-transaction latency spans every attempt and backoff, so the
        // TX-<OP> series reports what the end user experienced.
        Stopwatch txn_watch;
        bool commit_ok;
        TxnOpResult op;
        if (options.wrap_in_transactions) {
          // The YCSB+T client-thread protocol (paper §IV-A), wrapped in the
          // bounded retry loop.
          RetryState backoff(options.retry);
          for (int attempt = 1; /* exits below */; ++attempt) {
            db.Start();
            op = workload_->DoTransaction(db, state.get());
            Status cs = op.ok ? db.Commit() : db.Abort();
            commit_ok = op.ok && cs.ok();
            if (commit_ok) break;
            Status failure =
                op.ok ? cs : Status::Aborted("workload operation failed");
            if (!failure.IsRetryable() ||
                backoff.Exhausted(attempt, txn_watch.ElapsedMicros())) {
              if (options.retry.enabled()) {
                sink->Record(giveup_series,
                             static_cast<int64_t>(txn_watch.ElapsedMicros()),
                             failure.code());
                ++giveups;
              }
              break;
            }
            // Let the workload unwind out-of-band attempt state (CEW refunds
            // its pending withdrawal) before DoTransaction runs again.
            workload_->OnTransactionRetry(state.get(), op);
            uint64_t pause_us = backoff.NextBackoffUs(backoff_rng, failure);
            sink->Record(retry_series, static_cast<int64_t>(pause_us),
                         failure.code());
            ++retries;
            backoff_us += pause_us;
            // Publish the retry BEFORE sleeping it out, and slice long naps
            // (a NotLeader rejection's retry_after_us hint can span several
            // status windows) so the watchdog keeps seeing progress ticks
            // for the whole wait: backing off through an election is
            // degradation, not a stall.
            mine.retries.store(retries, std::memory_order_relaxed);
            mine.backoff_us.store(backoff_us, std::memory_order_relaxed);
            for (uint64_t left = pause_us; left != 0;) {
              uint64_t slice = std::min<uint64_t>(left, 20'000);
              SleepMicros(slice);
              left -= slice;
              mine.wait_ticks.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          op = workload_->DoTransaction(db, state.get());
          commit_ok = op.ok;
        }
        workload_->OnTransactionOutcome(state.get(), op, commit_ok);
        if (brownout != nullptr) brownout->OnTxnDone();

        int64_t txn_us = static_cast<int64_t>(txn_watch.ElapsedMicros());
        sink->Record(tx_series.Get(op.op), txn_us,
                     commit_ok ? Status::Code::kOk : Status::Code::kAborted);
        if (open_loop) {
          // The intended-start series measures from when the arrival was
          // *scheduled*, so the time this transaction spent queued behind its
          // predecessors is part of its latency — the coordinated-omission
          // gap the actual-start series cannot see.
          sink->Record(tx_intended_series.Get(op.op),
                       txn_us + static_cast<int64_t>(lag_us),
                       commit_ok ? Status::Code::kOk : Status::Code::kAborted);
        }

        ++ops;
        latency_sum_us += static_cast<uint64_t>(txn_us);
        if (commit_ok) {
          ++committed;
        } else {
          ++failed;
        }
        // Publish progress for the watchdog: plain stores of local totals
        // into this thread's own cache line.
        mine.ops.store(ops, std::memory_order_relaxed);
        mine.committed.store(committed, std::memory_order_relaxed);
        mine.failed.store(failed, std::memory_order_relaxed);
        mine.latency_sum_us.store(latency_sum_us, std::memory_order_relaxed);
        mine.retries.store(retries, std::memory_order_relaxed);
        mine.giveups.store(giveups, std::memory_order_relaxed);
        mine.backoff_us.store(backoff_us, std::memory_order_relaxed);
      }
      sink->Flush();
      db.Cleanup();
      mine.done.store(true, std::memory_order_relaxed);
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Snapshot the transaction library's recovery counters so the run's delta
  // (what happened *during* this window) can be reported afterwards.
  txn::TxnStats txn_before;
  txn::ClientTxnStore* txn_store = factory_->client_txn_store();
  if (txn_store != nullptr) txn_before = txn_store->stats();

  // The OCC engine counts load-phase LoadPuts and ticker epochs too, so its
  // report is likewise a run-window delta.
  txn::OccStats occ_before;
  txn::OccEngine* occ = factory_->occ_engine();
  if (occ != nullptr) occ_before = occ->stats();

  // Same for the resilience layer: the load phase goes through it too, so
  // the report must be the run-window delta.
  kv::ResilientStore* resilience = factory_->resilient_store();
  kv::ResilienceStats res_before;
  if (resilience != nullptr) res_before = resilience->stats();

  // Discard WAL durability counters the load phase accumulated, so the
  // post-run drain reports this run window only.
  kv::ShardedStore* engine = factory_->local_engine();
  bool track_wal = engine != nullptr && engine->wal_enabled();
  if (track_wal) engine->DrainWalStats();

  // Likewise the fan-out executor: drop batches the load phase issued.
  const std::shared_ptr<RpcExecutor>& fanout = factory_->rpc_executor();
  if (fanout != nullptr) fanout->DrainStats();

  // And the replication layer: the load phase replicates synchronously but
  // still counts applies, so drop those too.
  const std::shared_ptr<cloud::ReplicatedCloudStore>& replicated =
      factory_->replicated_store();
  if (replicated != nullptr) replicated->DrainStats();

  Stopwatch run_watch;
  start_gate.CountDown();

  // Watchdog + status thread (YCSB's status reporter): samples progress at
  // the configured interval, records the per-window time series, flags
  // stalled client threads, and flips the stop flag at the deadline.
  double last_time = 0.0;
  uint64_t last_ops = 0;
  uint64_t last_latency_sum = 0;
  uint64_t last_lag_sum = 0;
  uint64_t last_drops = 0;
  uint64_t stall_events = 0;
  std::vector<uint64_t> stall_last_ops(static_cast<size_t>(threads), 0);
  std::vector<int> stall_windows(static_cast<size_t>(threads), 0);
  // Shared by the in-run status ticks and the post-join closing window:
  // turns the progress delta since the previous window into one
  // IntervalSample, records it, and feeds the brownout controller's
  // queue-delay trigger.  Returns (total ops so far, window rate) for the
  // status callback.
  auto emit_window = [&](double end_seconds) {
    uint64_t ops = SumProgress(progress, &ClientProgress::ops);
    uint64_t latency_sum = SumProgress(progress, &ClientProgress::latency_sum_us);
    uint64_t window_ops = ops - last_ops;
    double interval_rate =
        end_seconds > last_time
            ? static_cast<double>(window_ops) / (end_seconds - last_time)
            : 0.0;
    IntervalSample sample;
    sample.end_seconds = end_seconds;
    sample.operations = window_ops;
    sample.ops_per_sec = interval_rate;
    sample.avg_latency_us =
        window_ops == 0 ? 0.0
                        : static_cast<double>(latency_sum - last_latency_sum) /
                              static_cast<double>(window_ops);
    if (open_loop) {
      uint64_t lag_sum = SumProgress(progress, &ClientProgress::sched_lag_sum_us);
      uint64_t drops = SumProgress(progress, &ClientProgress::arrival_drops);
      sample.sched_lag_avg_us =
          window_ops == 0 ? 0.0
                          : static_cast<double>(lag_sum - last_lag_sum) /
                                static_cast<double>(window_ops);
      sample.backlog = SumProgress(progress, &ClientProgress::backlog);
      sample.arrival_drops = drops - last_drops;
      last_lag_sum = lag_sum;
      last_drops = drops;
    }
    measurements_->RecordInterval(sample);
    // Sustained queue delay is the brownout controller's second trigger
    // (the first is an Open breaker): feed it the window's average
    // whole-transaction latency.
    if (brownout != nullptr && sample.operations != 0) {
      brownout->ReportWindow(sample.avg_latency_us);
    }
    last_ops = ops;
    last_time = end_seconds;
    last_latency_sum = latency_sum;
    return std::make_pair(ops, interval_rate);
  };
  {
    double next_status = options.status_interval_seconds;
    while (finished.load(std::memory_order_relaxed) < threads) {
      SleepMicros(5000);
      double elapsed = run_watch.ElapsedSeconds();
      if (options.max_execution_seconds > 0.0 &&
          elapsed >= options.max_execution_seconds) {
        stop.store(true, std::memory_order_relaxed);
      }
      if (options.status_interval_seconds > 0.0 && elapsed >= next_status) {
        if (options.stall_windows > 0) {
          for (int c = 0; c < threads; ++c) {
            const ClientProgress& p = progress[static_cast<size_t>(c)];
            if (p.done.load(std::memory_order_relaxed)) {
              stall_windows[static_cast<size_t>(c)] = 0;
              continue;
            }
            // Shed transactions, dropped arrivals, in-flight retry attempts
            // and backoff/pacing wait slices count as progress: a thread
            // gracefully shedding through a brownout, dropping an
            // overflowing backlog, or backing off mid-transaction through an
            // election/throttle window, is degrading, not stuck.
            uint64_t now_ops = p.ops.load(std::memory_order_relaxed) +
                               p.sheds.load(std::memory_order_relaxed) +
                               p.arrival_drops.load(std::memory_order_relaxed) +
                               p.retries.load(std::memory_order_relaxed) +
                               p.wait_ticks.load(std::memory_order_relaxed);
            if (now_ops == stall_last_ops[static_cast<size_t>(c)]) {
              if (++stall_windows[static_cast<size_t>(c)] >=
                  options.stall_windows) {
                YCSBT_WARN("[WATCHDOG] client thread "
                           << c << " made no progress for "
                           << options.stall_windows << " status windows (stuck at "
                           << now_ops << " ops)");
                ++stall_events;
                stall_windows[static_cast<size_t>(c)] = 0;
              }
            } else {
              stall_windows[static_cast<size_t>(c)] = 0;
            }
            stall_last_ops[static_cast<size_t>(c)] = now_ops;
          }
        }
        auto [ops, interval_rate] = emit_window(elapsed);
        if (options.status_callback) {
          options.status_callback(elapsed, ops, interval_rate);
        } else {
          YCSBT_INFO("[STATUS] " << elapsed << " sec: " << ops << " operations; "
                                 << interval_rate << " current ops/sec");
        }
        next_status += options.status_interval_seconds;
      }
    }
  }
  for (auto& th : pool) th.join();
  double runtime_sec = run_watch.ElapsedSeconds();

  for (const auto& s : init_errors) {
    if (!s.ok()) return s;
  }

  uint64_t total_ops = SumProgress(progress, &ClientProgress::ops);
  // Close the time series with the final partial window — even an idle one —
  // so the windows always partition the run.  (Previously a tail window with
  // zero completed transactions was silently dropped, and the brownout
  // controller never saw the last window's latency at all.)
  if (options.status_interval_seconds > 0.0 &&
      (total_ops > last_ops || runtime_sec > last_time)) {
    emit_window(std::max(runtime_sec, last_time + 1e-9));
  }

  result->runtime_ms = runtime_sec * 1000.0;
  result->operations = total_ops;
  result->committed = SumProgress(progress, &ClientProgress::committed);
  result->failed = SumProgress(progress, &ClientProgress::failed);
  result->throughput_ops_sec =
      runtime_sec > 0.0 ? static_cast<double>(result->operations) / runtime_sec : 0.0;
  result->retries_enabled = options.wrap_in_transactions && options.retry.enabled();
  result->retries = SumProgress(progress, &ClientProgress::retries);
  result->giveups = SumProgress(progress, &ClientProgress::giveups);
  result->backoff_time_us = SumProgress(progress, &ClientProgress::backoff_us);
  result->stall_events = stall_events;
  if (open_loop) {
    result->arrival_enabled = true;
    result->arrival_drops = SumProgress(progress, &ClientProgress::arrival_drops);
    result->backlog_peak = MaxProgress(progress, &ClientProgress::backlog_peak);
    result->sched_lag_max_us =
        MaxProgress(progress, &ClientProgress::sched_lag_max_us);
  }

  if (txn_store != nullptr) {
    // Recovery work done during the run window, as deltas against the
    // pre-run snapshot, surfaced both in the result and as zero-latency
    // count series so both exporters render them.
    txn::TxnStats after = txn_store->stats();
    result->roll_forwards = after.roll_forwards - txn_before.roll_forwards;
    result->roll_backs = after.roll_backs - txn_before.roll_backs;
    result->injected_crashes = after.injected_crashes - txn_before.injected_crashes;
    result->ambiguous_commits =
        after.ambiguous_commits - txn_before.ambiguous_commits;
    measurements_->RecordMany(measurements_->RegisterOp("TXN-RECOVERY-FORWARD"), 0,
                              Status::Code::kOk, result->roll_forwards);
    measurements_->RecordMany(measurements_->RegisterOp("TXN-RECOVERY-BACK"), 0,
                              Status::Code::kOk, result->roll_backs);
  }

  if (occ != nullptr) {
    // OCC commit-protocol outcomes during the run window: summary counters
    // plus zero-latency count series so both exporters render them.
    txn::OccStats after = occ->stats();
    result->occ_enabled = true;
    result->occ_commits = after.commits - occ_before.commits;
    result->occ_aborts = after.aborts - occ_before.aborts;
    result->occ_validation_fails =
        after.validation_fails - occ_before.validation_fails;
    result->occ_epoch_advances =
        after.epoch_advances - occ_before.epoch_advances;
    result->occ_versions_retired =
        after.versions_retired - occ_before.versions_retired;
    result->occ_versions_freed =
        after.versions_freed - occ_before.versions_freed;
    measurements_->RecordMany(measurements_->RegisterOp("OCC-ABORT"), 0,
                              Status::Code::kConflict, result->occ_aborts);
    measurements_->RecordMany(measurements_->RegisterOp("OCC-VALIDATE-FAIL"), 0,
                              Status::Code::kConflict,
                              result->occ_validation_fails);
    measurements_->RecordMany(measurements_->RegisterOp("EPOCH-ADVANCE"), 0,
                              Status::Code::kOk, result->occ_epoch_advances);
  }

  if (resilience != nullptr) {
    // Overload-tolerance activity during the run window, as series both
    // exporters render plus summary counters.
    kv::ResilienceStats after = resilience->stats();
    result->resilience_enabled = true;
    result->breaker_opens = after.breaker.opens - res_before.breaker.opens;
    result->breaker_fast_fails =
        after.breaker.fast_fails - res_before.breaker.fast_fails;
    result->breaker_probes =
        after.breaker.probes_sent - res_before.breaker.probes_sent;
    result->breaker_recloses =
        after.breaker.recloses - res_before.breaker.recloses;
    result->hedges_sent = after.hedges_sent - res_before.hedges_sent;
    result->hedges_won = after.hedges_won - res_before.hedges_won;
    result->hedges_wasted = after.hedges_wasted - res_before.hedges_wasted;
    result->deadline_abandons =
        after.deadline_rejects - res_before.deadline_rejects;
    measurements_->RecordMany(measurements_->RegisterOp("BREAKER-OPEN"), 0,
                              Status::Code::kOk, result->breaker_opens);
    measurements_->RecordMany(measurements_->RegisterOp("BREAKER-PROBE"), 0,
                              Status::Code::kOk, result->breaker_probes);
    measurements_->RecordMany(measurements_->RegisterOp("HEDGE-SENT"), 0,
                              Status::Code::kOk, result->hedges_sent);
    measurements_->RecordMany(measurements_->RegisterOp("HEDGE-WON"), 0,
                              Status::Code::kOk, result->hedges_won);
    measurements_->RecordMany(measurements_->RegisterOp("HEDGE-WASTED"), 0,
                              Status::Code::kOk, result->hedges_wasted);
    measurements_->RecordMany(measurements_->RegisterOp("DEADLINE-ABANDON"), 0,
                              Status::Code::kTimeout, result->deadline_abandons);
  }

  if (brownout != nullptr) {
    result->shed_enabled = true;
    result->shed_txns = brownout->sheds();
    result->shed_reads = brownout->shed_reads();
  }

  if (track_wal) {
    // Fold the WAL's run-window durability stats into the shared series so
    // both exporters render WAL-SYNC (fdatasync latency) and WAL-BATCH
    // (records per write batch) with full percentile lines.
    kv::WalStats wal = engine->DrainWalStats();
    result->wal_appends = wal.appends;
    result->wal_syncs = wal.syncs;
    result->wal_batches = wal.batches;
    result->wal_avg_batch = wal.batch_records.Mean();
    result->wal_max_batch = wal.batch_records.Max();
    measurements_->MergeHistogram(measurements_->RegisterOp("WAL-SYNC"),
                                  wal.sync_latency_us, Status::Code::kOk);
    measurements_->MergeHistogram(measurements_->RegisterOp("WAL-BATCH"),
                                  wal.batch_records, Status::Code::kOk);

    // What startup recovery did to reach this run's initial state, surfaced
    // as summary lines and as series so both exporters render them
    // (DESIGN.md §14): RECOVERY-REPLAYED / RECOVERY-TRUNCATED-BYTES counts,
    // and CKPT-SCRUB as an error-coded event when the snapshot was damaged.
    const kv::RecoveryReport& rec = engine->recovery_report();
    result->recovery_reported = true;
    result->recovery_ckpt_records = rec.checkpoint_records;
    result->recovery_wal_replayed = rec.wal_records_replayed;
    result->recovery_wal_skipped = rec.wal_records_skipped;
    result->recovery_truncated_bytes = rec.truncated_bytes;
    result->recovery_ckpt_scrubbed = rec.checkpoint_scrubbed;
    result->recovery_scrub_reason = rec.scrub_reason;
    measurements_->RecordMany(measurements_->RegisterOp("RECOVERY-REPLAYED"), 0,
                              Status::Code::kOk, rec.wal_records_replayed);
    measurements_->RecordMany(
        measurements_->RegisterOp("RECOVERY-TRUNCATED-BYTES"), 0,
        Status::Code::kOk, rec.truncated_bytes);
    if (rec.checkpoint_scrubbed) {
      measurements_->RecordMany(measurements_->RegisterOp("CKPT-SCRUB"), 0,
                                Status::Code::kIOError, 1);
    }
  }

  if (kv::FaultInjectingEnv* senv = factory_->storage_fault_env()) {
    // Storage-layer injections during the run window (the env is armed only
    // around the measured phase, so the stats are already run-scoped).
    kv::StorageFaultStats ss = senv->stats();
    result->storage_faults_enabled = true;
    result->storage_faults_injected = ss.TotalInjected();
    result->storage_env_crashed = ss.crashed;
    measurements_->RecordMany(measurements_->RegisterOp("STORAGE-FAULT"), 0,
                              Status::Code::kIOError, ss.TotalInjected());
  }

  if (fanout != nullptr) {
    // Fold the run window's batch widths into the shared series so both
    // exporters render RPC-FANOUT with full percentile lines.
    FanoutStats fs = fanout->DrainStats();
    result->fanout_batches = fs.batches;
    result->fanout_items = fs.items;
    result->fanout_avg_width = fs.width.Mean();
    if (fs.batches != 0) {
      measurements_->MergeHistogram(measurements_->RegisterOp("RPC-FANOUT"),
                                    fs.width, Status::Code::kOk);
    }
  }

  if (replicated != nullptr) {
    // Replication/failover activity during the run window, surfaced as
    // result fields and as series so both exporters render the headline
    // FAILOVER-*/NOT-LEADER/STALE-READ counters and the REPLICA-LAG
    // distribution.
    cloud::ReplicationStats rs = replicated->DrainStats();
    result->replication_enabled = true;
    result->failovers = rs.failovers;
    result->not_leader_rejects = rs.not_leader_rejects;
    result->lost_tail_writes = rs.lost_tail_writes;
    result->stale_reads = rs.stale_reads;
    result->replica_applies = rs.replica_applies;
    result->partition_rejects = rs.partition_rejects;
    measurements_->RecordMany(measurements_->RegisterOp("NOT-LEADER"), 0,
                              Status::Code::kNotLeader, rs.not_leader_rejects);
    measurements_->RecordMany(measurements_->RegisterOp("FAILOVER-ELECTION"), 0,
                              Status::Code::kOk, rs.failovers);
    measurements_->RecordMany(measurements_->RegisterOp("FAILOVER-LOST-TAIL"), 0,
                              Status::Code::kTimeout, rs.lost_tail_writes);
    measurements_->RecordMany(measurements_->RegisterOp("STALE-READ"), 0,
                              Status::Code::kOk, rs.stale_reads);
    if (rs.replica_lag.Count() != 0) {
      measurements_->MergeHistogram(measurements_->RegisterOp("REPLICA-LAG"),
                                    rs.replica_lag, Status::Code::kOk);
    }
  }

  result->op_stats = measurements_->Snapshot();
  result->intervals = measurements_->Intervals();
  return Status::OK();
}

Status WorkloadRunner::Validate(uint64_t operations_executed, ValidationResult* out) {
  auto db = factory_->CreateClient();
  if (db == nullptr) return Status::Internal("client init failed");
  Status s = db->Init();
  if (!s.ok()) return s;
  // The validation stage is the auditor, not client traffic: it must see
  // the store even if the run ended browned out with breakers still open.
  OpExemptScope resilience_exempt;
  s = workload_->Validate(*db, operations_executed, out);
  db->Cleanup();
  return s;
}

Status WorkloadRunner::Execute(const LoadOptions& load, const RunOptions& run,
                               RunResult* result) {
  Status s = Load(load);
  if (!s.ok()) return s;
  s = Run(run, result);
  if (!s.ok()) return s;
  s = Validate(result->operations, &result->validation);
  if (!s.ok()) return s;
  result->op_stats = measurements_->Snapshot();
  return Status::OK();
}

}  // namespace core
}  // namespace ycsbt
