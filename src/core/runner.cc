#include "core/runner.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>

#include "common/clock.h"
#include "common/latency_model.h"
#include "common/logging.h"
#include "common/sync.h"
#include "db/measured_db.h"

namespace ycsbt {
namespace core {

RunSummary RunResult::MakeSummary() const {
  RunSummary summary;
  summary.runtime_ms = runtime_ms;
  summary.throughput_ops_sec = throughput_ops_sec;
  summary.operations = operations;
  summary.has_validation = validation.performed;
  summary.validation_passed = validation.passed;
  summary.extra = validation.report;
  return summary;
}

namespace {

/// Per-thread slice of a total budget: thread i of n gets an equal share,
/// with the remainder spread over the first threads.
uint64_t ShareOf(uint64_t total, int thread_id, int threads) {
  uint64_t base = total / static_cast<uint64_t>(threads);
  uint64_t extra = thread_id < static_cast<int>(total % threads) ? 1 : 0;
  return base + extra;
}

}  // namespace

Status WorkloadRunner::Load(const LoadOptions& options) {
  int threads = std::max(options.threads, 1);
  uint64_t total = workload_->record_count();
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> pool;
  std::vector<Status> init_errors(static_cast<size_t>(threads));
  pool.reserve(static_cast<size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto db = factory_->CreateClient();
      if (db == nullptr || !db->Init().ok()) {
        init_errors[static_cast<size_t>(t)] = Status::Internal("client init failed");
        return;
      }
      auto state = workload_->InitThread(t, threads);
      uint64_t quota = ShareOf(total, t, threads);
      for (uint64_t i = 0; i < quota; ++i) {
        bool ok;
        if (options.wrap_in_transactions) {
          db->Start();
          ok = workload_->DoInsert(*db, state.get());
          Status cs = ok ? db->Commit() : db->Abort();
          ok = ok && cs.ok();
        } else {
          ok = workload_->DoInsert(*db, state.get());
        }
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
      }
      db->Cleanup();
    });
  }
  for (auto& th : pool) th.join();
  for (const auto& s : init_errors) {
    if (!s.ok()) return s;
  }
  if (failures.load() != 0) {
    return Status::Internal(std::to_string(failures.load()) + " inserts failed");
  }
  return Status::OK();
}

Status WorkloadRunner::Run(const RunOptions& options, RunResult* result) {
  if (options.operation_count == 0 && options.max_execution_seconds <= 0.0) {
    return Status::InvalidArgument(
        "run needs an operation_count or max_execution_seconds");
  }
  int threads = std::max(options.threads, 1);

  std::atomic<uint64_t> operations{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<int> finished{0};
  std::atomic<bool> stop{false};
  CountDownLatch start_gate(1);
  std::vector<std::thread> pool;
  std::vector<Status> init_errors(static_cast<size_t>(threads));
  pool.reserve(static_cast<size_t>(threads));

  double per_thread_target =
      options.target_ops_per_sec > 0.0 ? options.target_ops_per_sec / threads : 0.0;

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto raw = factory_->CreateClient();
      if (raw == nullptr) {
        init_errors[static_cast<size_t>(t)] = Status::Internal("client init failed");
        finished.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      MeasuredDB db(std::move(raw), measurements_);
      if (!db.Init().ok()) {
        init_errors[static_cast<size_t>(t)] = Status::Internal("client init failed");
        finished.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      auto state = workload_->InitThread(t, threads);
      uint64_t quota = options.operation_count == 0
                           ? std::numeric_limits<uint64_t>::max()
                           : ShareOf(options.operation_count, t, threads);

      start_gate.Wait();
      uint64_t interval_ns =
          per_thread_target > 0.0 ? static_cast<uint64_t>(1e9 / per_thread_target) : 0;
      uint64_t next_op_ns = SteadyNanos();

      for (uint64_t i = 0; i < quota && !stop.load(std::memory_order_relaxed); ++i) {
        if (interval_ns != 0) {
          uint64_t now = SteadyNanos();
          if (now < next_op_ns) SleepMicros((next_op_ns - now) / 1000);
          next_op_ns += interval_ns;
        }

        Stopwatch txn_watch;
        bool commit_ok;
        TxnOpResult op;
        if (options.wrap_in_transactions) {
          // The YCSB+T client-thread protocol (paper §IV-A).
          db.Start();
          op = workload_->DoTransaction(db, state.get());
          Status cs = op.ok ? db.Commit() : db.Abort();
          commit_ok = op.ok && cs.ok();
        } else {
          op = workload_->DoTransaction(db, state.get());
          commit_ok = op.ok;
        }
        workload_->OnTransactionOutcome(state.get(), op, commit_ok);

        std::string tx_series = std::string("TX-") + op.op;
        measurements_->Measure(tx_series,
                               static_cast<int64_t>(txn_watch.ElapsedMicros()));
        measurements_->ReportStatus(
            tx_series, commit_ok ? Status::OK() : Status::Aborted());

        operations.fetch_add(1, std::memory_order_relaxed);
        if (commit_ok) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      db.Cleanup();
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  Stopwatch run_watch;
  start_gate.CountDown();

  // Watchdog + status thread (YCSB's status reporter): samples progress at
  // the configured interval and flips the stop flag at the deadline.
  {
    double next_status = options.status_interval_seconds;
    uint64_t last_ops = 0;
    double last_time = 0.0;
    while (finished.load(std::memory_order_relaxed) < threads) {
      SleepMicros(5000);
      double elapsed = run_watch.ElapsedSeconds();
      if (options.max_execution_seconds > 0.0 &&
          elapsed >= options.max_execution_seconds) {
        stop.store(true, std::memory_order_relaxed);
      }
      if (options.status_interval_seconds > 0.0 && elapsed >= next_status) {
        uint64_t ops = operations.load(std::memory_order_relaxed);
        double interval_rate =
            elapsed > last_time
                ? static_cast<double>(ops - last_ops) / (elapsed - last_time)
                : 0.0;
        if (options.status_callback) {
          options.status_callback(elapsed, ops, interval_rate);
        } else {
          YCSBT_INFO("[STATUS] " << elapsed << " sec: " << ops << " operations; "
                                 << interval_rate << " current ops/sec");
        }
        last_ops = ops;
        last_time = elapsed;
        next_status += options.status_interval_seconds;
      }
    }
  }
  for (auto& th : pool) th.join();
  double runtime_sec = run_watch.ElapsedSeconds();

  for (const auto& s : init_errors) {
    if (!s.ok()) return s;
  }

  result->runtime_ms = runtime_sec * 1000.0;
  result->operations = operations.load();
  result->committed = committed.load();
  result->failed = failed.load();
  result->throughput_ops_sec =
      runtime_sec > 0.0 ? static_cast<double>(result->operations) / runtime_sec : 0.0;
  result->op_stats = measurements_->Snapshot();
  return Status::OK();
}

Status WorkloadRunner::Validate(uint64_t operations_executed, ValidationResult* out) {
  auto db = factory_->CreateClient();
  if (db == nullptr) return Status::Internal("client init failed");
  Status s = db->Init();
  if (!s.ok()) return s;
  s = workload_->Validate(*db, operations_executed, out);
  db->Cleanup();
  return s;
}

Status WorkloadRunner::Execute(const LoadOptions& load, const RunOptions& run,
                               RunResult* result) {
  Status s = Load(load);
  if (!s.ok()) return s;
  s = Run(run, result);
  if (!s.ok()) return s;
  s = Validate(result->operations, &result->validation);
  if (!s.ok()) return s;
  result->op_stats = measurements_->Snapshot();
  return Status::OK();
}

}  // namespace core
}  // namespace ycsbt
