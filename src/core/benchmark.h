#ifndef YCSBT_CORE_BENCHMARK_H_
#define YCSBT_CORE_BENCHMARK_H_

#include <string>

#include "core/runner.h"

namespace ycsbt {
namespace core {

/// One-call benchmark driver: builds the DB factory and workload from
/// properties, loads, runs, validates, and renders the Listing-3 text
/// report.  The properties consumed here (on top of the DB/workload ones):
///
///   threads            client threads of the transaction phase (default 1)
///   loadthreads        client threads of the load phase (default: threads)
///   operationcount     total transactions (default 1000; 0 = time-bounded)
///   maxexecutiontime   seconds; 0 = unbounded (YCSB property name)
///   target             aggregate target ops/sec; 0 = unthrottled
///   dotransactions     wrap operations in Start/Commit/Abort (default true)
///   status.interval    seconds between progress log lines (0 = off)
///   status.stall_windows  consecutive no-progress status windows before the
///                      watchdog flags a client thread (default 3; 0 = off)
///   loadwrapped        wrap load-phase inserts too (default false)
///   skipload           reuse an already-loaded factory (default false)
///
/// The `retry.*` namespace (see `RetryPolicy`) configures the transaction
/// retry loop, and the `fault.*` namespace (see `kv::FaultOptions`) the
/// fault-injection layer, which is armed only for the measured run phase —
/// never for the load or validation stages.
///
/// `report` (optional) receives the full text export.
Status RunBenchmark(const Properties& props, RunResult* result,
                    std::string* report = nullptr);

/// Same, but against a caller-provided factory (so several runs can share or
/// inspect one substrate).  The factory must already be Init()ed.
Status RunBenchmarkWithFactory(const Properties& props, DBFactory* factory,
                               RunResult* result, std::string* report = nullptr);

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_BENCHMARK_H_
