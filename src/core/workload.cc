#include "core/workload.h"

namespace ycsbt {
namespace core {

std::unique_ptr<Workload::ThreadState> Workload::InitThread(int thread_id,
                                                            int /*thread_count*/) {
  // Distinct, deterministic seeds per thread, derived from the run's seed.
  return std::make_unique<ThreadState>(base_seed() +
                                       static_cast<uint64_t>(thread_id));
}

bool Workload::BuildNextInsert(ThreadState* /*state*/, LoadRecord* /*record*/) {
  // Workloads without a data-form load stream fall back to per-op DoInsert.
  return false;
}

Status Workload::Validate(DB& /*db*/, uint64_t /*operations_executed*/,
                          ValidationResult* result) {
  // Backward-compatible default: no validation defined (paper §IV-B).
  *result = ValidationResult{};
  return Status::OK();
}

void Workload::OnTransactionOutcome(ThreadState* /*state*/,
                                    const TxnOpResult& /*result*/,
                                    bool /*committed*/) {}

bool Workload::NextTransactionReadOnly(ThreadState* /*state*/) {
  // Unclassified workloads shed by the in-flight cap only, never by the
  // read-only-first policy.
  return false;
}

void Workload::OnTransactionRetry(ThreadState* state, const TxnOpResult& result) {
  // A retried attempt is an aborted outcome as far as out-of-band state is
  // concerned (CEW refunds its pending withdrawal and re-derives the amount
  // on the next attempt).
  OnTransactionOutcome(state, result, /*committed=*/false);
}

}  // namespace core
}  // namespace ycsbt
