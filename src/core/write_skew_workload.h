#ifndef YCSBT_CORE_WRITE_SKEW_WORKLOAD_H_
#define YCSBT_CORE_WRITE_SKEW_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/workload.h"
#include "generator/generator.h"

namespace ycsbt {
namespace core {

/// An anomaly-targeting workload: the paper's §VII future work ("additional
/// workloads that will target specific anomalies that are observed at
/// various transaction isolation levels") made concrete for **write skew**,
/// the canonical anomaly snapshot isolation admits and serializability
/// forbids (Berenson et al., the paper's ref [26]).
///
/// The data is a set of *pairs* of balances (x_i, y_i), each loaded with
/// `writeskew.initial` (default $100).  The application constraint is
/// per-pair: x_i + y_i >= 0.  A *withdraw* transaction reads both sides of a
/// pair, checks that the combined balance covers the withdrawal, and then
/// debits ONE side only.  Two concurrent withdrawals against the same pair
/// have disjoint write sets, so first-committer-wins (snapshot isolation)
/// happily commits both — and the pair can go negative even though every
/// individual transaction checked the constraint.  Under serializable
/// validation or 2PL one of the two aborts.
///
/// The Tier-6 validation stage sweeps all pairs and scores
///   gamma = (#pairs with x+y < 0) / operations,
/// reporting also the total overdraft.  Expected outcomes:
///   - non-transactional binding: violations (plus plain lost updates);
///   - `txn.isolation=snapshot`:   violations (write skew admitted);
///   - `txn.isolation=serializable` or `2pl+memkv`: zero violations.
///
/// Properties: `recordcount` (two records per pair; must be even),
/// `writeskew.initial`, `readproportion` (audit transactions that only read
/// a pair), `requestdistribution` (uniform | zipfian over pairs).
class WriteSkewWorkload : public Workload {
 public:
  WriteSkewWorkload() = default;

  Status Init(const Properties& props) override;
  bool DoInsert(DB& db, ThreadState* state) override;
  TxnOpResult DoTransaction(DB& db, ThreadState* state) override;
  Status Validate(DB& db, uint64_t operations_executed,
                  ValidationResult* result) override;

  uint64_t record_count() const override { return pair_count_ * 2; }
  uint64_t pair_count() const { return pair_count_; }

  /// Key of pair `p`, side 0 (x) or 1 (y); zero-padded so scans see pairs
  /// adjacent and ordered.
  std::string PairKey(uint64_t pair, int side) const;

 private:
  bool DoWithdraw(DB& db, ThreadState* state);
  bool DoAudit(DB& db, ThreadState* state);

  std::string table_ = "skewtable";
  uint64_t pair_count_ = 0;
  int64_t initial_balance_ = 100;
  double read_proportion_ = 0.0;
  std::unique_ptr<IntegerGenerator> pair_chooser_;
  std::unique_ptr<CounterGenerator> load_sequence_;
};

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_WRITE_SKEW_WORKLOAD_H_
