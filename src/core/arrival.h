#ifndef YCSBT_CORE_ARRIVAL_H_
#define YCSBT_CORE_ARRIVAL_H_

#include <cstdint>
#include <string>

#include "common/properties.h"
#include "common/random.h"
#include "common/status.h"

namespace ycsbt {
namespace core {

/// Open-loop arrival scheduling (DESIGN.md §13), from the `arrival.*`
/// namespace:
///
///   arrival.rate          aggregate arrivals/sec across all client threads;
///                         > 0 switches the runner from closed-loop to
///                         open-loop (default 0 = closed loop)
///   arrival.process       exponential (Poisson arrivals, default) | fixed
///                         (evenly spaced slots, staggered across threads)
///   arrival.max_backlog   pending-arrival cap per client thread; arrivals
///                         due while the backlog is full are *dropped*
///                         (ARRIVAL-DROP) instead of queueing without bound
///                         (default 1024)
///   arrival.shape         constant (default) | diurnal | flash_crowd |
///                         hotspot_shift — scripted modulation of the rate
///                         over the run
///
/// Shape-specific keys (all rates are multiples of `arrival.rate`):
///
///   arrival.diurnal.period_s      full trough→peak→trough cycle (default 60)
///   arrival.diurnal.low_frac      trough rate as a fraction of the peak
///                                 (default 0.25); the run starts at the trough
///   arrival.flash.at_s            flash-crowd onset (default 1)
///   arrival.flash.duration_s      how long the crowd stays (default 1)
///   arrival.flash.multiplier      rate multiple during the flash (default 4)
///   arrival.hotspot_shift.at_s    moment traffic shifts onto this service
///                                 (default 1)
///   arrival.hotspot_shift.multiplier  sustained rate multiple after the
///                                 shift (default 2)
struct ArrivalOptions {
  enum class Process { kExponential, kFixed };
  enum class Shape { kConstant, kDiurnal, kFlashCrowd, kHotspotShift };

  double rate = 0.0;
  Process process = Process::kExponential;
  uint64_t max_backlog = 1024;
  Shape shape = Shape::kConstant;

  double diurnal_period_s = 60.0;
  double diurnal_low_frac = 0.25;
  double flash_at_s = 1.0;
  double flash_duration_s = 1.0;
  double flash_multiplier = 4.0;
  double shift_at_s = 1.0;
  double shift_multiplier = 2.0;

  /// True when the runner should schedule arrivals instead of running
  /// closed-loop.
  bool open_loop() const { return rate > 0.0; }

  /// Parses the `arrival.*` namespace; InvalidArgument on an unknown
  /// process/shape name or non-positive shape parameters.
  static Status FromProperties(const Properties& props, ArrivalOptions* out);
};

/// The scripted arrival rate (arrivals/sec, across all threads) at `elapsed_s`
/// seconds into the run.  Pure function of the options, so every thread and
/// every test sees the same traffic script.
double ArrivalRateAt(const ArrivalOptions& options, double elapsed_s);

/// One client thread's deterministic arrival schedule: a stream of intended
/// transaction start times (nanosecond offsets from the thread's run start),
/// drawn from this thread's 1/`thread_count` share of the scripted rate.
///
/// Draws are seeded from the run seed and the thread id, so two same-seed
/// runs replay identical schedules — the intended-start timeline is part of
/// the experiment's definition, not a wall-clock artifact.  Time-varying
/// shapes are applied by evaluating the scripted rate at the schedule's own
/// position (an inhomogeneous process via per-gap rate evaluation).
class ArrivalSchedule {
 public:
  ArrivalSchedule(const ArrivalOptions& options, uint64_t seed, int thread_id,
                  int thread_count);

  /// Offset (ns from run start) of the next not-yet-consumed arrival.
  uint64_t PeekNs() const { return next_ns_; }

  /// Consumes the current arrival and draws the next one.
  void Pop();

 private:
  uint64_t DrawGapNs();

  ArrivalOptions options_;
  double thread_share_;  ///< this thread's fraction of the aggregate rate
  Random64 rng_;
  uint64_t next_ns_ = 0;
};

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_ARRIVAL_H_
