#include "core/arrival.h"

#include <algorithm>
#include <cmath>

namespace ycsbt {
namespace core {

namespace {

/// Below this the scripted rate is clamped: a shape trough of exactly zero
/// would make the next gap infinite and wedge the schedule forever.
constexpr double kMinRate = 1e-3;

Status ParseProcess(const std::string& value, ArrivalOptions::Process* out) {
  if (value == "exponential") {
    *out = ArrivalOptions::Process::kExponential;
  } else if (value == "fixed") {
    *out = ArrivalOptions::Process::kFixed;
  } else {
    return Status::InvalidArgument(
        "arrival.process must be exponential or fixed, got '" + value + "'");
  }
  return Status::OK();
}

Status ParseShape(const std::string& value, ArrivalOptions::Shape* out) {
  if (value == "constant") {
    *out = ArrivalOptions::Shape::kConstant;
  } else if (value == "diurnal") {
    *out = ArrivalOptions::Shape::kDiurnal;
  } else if (value == "flash_crowd") {
    *out = ArrivalOptions::Shape::kFlashCrowd;
  } else if (value == "hotspot_shift") {
    *out = ArrivalOptions::Shape::kHotspotShift;
  } else {
    return Status::InvalidArgument(
        "arrival.shape must be constant, diurnal, flash_crowd or "
        "hotspot_shift, got '" +
        value + "'");
  }
  return Status::OK();
}

}  // namespace

Status ArrivalOptions::FromProperties(const Properties& props,
                                      ArrivalOptions* out) {
  *out = ArrivalOptions{};
  out->rate = props.GetDouble("arrival.rate", 0.0);
  if (out->rate < 0.0) {
    return Status::InvalidArgument("arrival.rate must be >= 0");
  }
  Status s = ParseProcess(props.Get("arrival.process", "exponential"),
                          &out->process);
  if (!s.ok()) return s;
  out->max_backlog = props.GetUint("arrival.max_backlog", 1024);
  if (out->max_backlog == 0) {
    return Status::InvalidArgument("arrival.max_backlog must be >= 1");
  }
  s = ParseShape(props.Get("arrival.shape", "constant"), &out->shape);
  if (!s.ok()) return s;

  out->diurnal_period_s = props.GetDouble("arrival.diurnal.period_s", 60.0);
  out->diurnal_low_frac = props.GetDouble("arrival.diurnal.low_frac", 0.25);
  out->flash_at_s = props.GetDouble("arrival.flash.at_s", 1.0);
  out->flash_duration_s = props.GetDouble("arrival.flash.duration_s", 1.0);
  out->flash_multiplier = props.GetDouble("arrival.flash.multiplier", 4.0);
  out->shift_at_s = props.GetDouble("arrival.hotspot_shift.at_s", 1.0);
  out->shift_multiplier = props.GetDouble("arrival.hotspot_shift.multiplier", 2.0);

  if (out->diurnal_period_s <= 0.0) {
    return Status::InvalidArgument("arrival.diurnal.period_s must be > 0");
  }
  if (out->diurnal_low_frac < 0.0 || out->diurnal_low_frac > 1.0) {
    return Status::InvalidArgument("arrival.diurnal.low_frac must be in [0, 1]");
  }
  if (out->flash_duration_s <= 0.0) {
    return Status::InvalidArgument("arrival.flash.duration_s must be > 0");
  }
  if (out->flash_multiplier <= 0.0 || out->shift_multiplier <= 0.0) {
    return Status::InvalidArgument("arrival shape multipliers must be > 0");
  }
  return Status::OK();
}

double ArrivalRateAt(const ArrivalOptions& options, double elapsed_s) {
  double multiplier = 1.0;
  switch (options.shape) {
    case ArrivalOptions::Shape::kConstant:
      break;
    case ArrivalOptions::Shape::kDiurnal: {
      // Raised cosine starting at the trough: low_frac at t=0, 1.0 at half a
      // period, back to low_frac at a full period.
      double phase = 2.0 * M_PI * (elapsed_s / options.diurnal_period_s);
      double wave = 0.5 * (1.0 - std::cos(phase));
      multiplier = options.diurnal_low_frac +
                   (1.0 - options.diurnal_low_frac) * wave;
      break;
    }
    case ArrivalOptions::Shape::kFlashCrowd:
      if (elapsed_s >= options.flash_at_s &&
          elapsed_s < options.flash_at_s + options.flash_duration_s) {
        multiplier = options.flash_multiplier;
      }
      break;
    case ArrivalOptions::Shape::kHotspotShift:
      // A neighbouring hotspot's traffic lands here mid-run and stays: a
      // sustained step, where the flash crowd is a transient burst.
      if (elapsed_s >= options.shift_at_s) multiplier = options.shift_multiplier;
      break;
  }
  return std::max(options.rate * multiplier, kMinRate);
}

ArrivalSchedule::ArrivalSchedule(const ArrivalOptions& options, uint64_t seed,
                                 int thread_id, int thread_count)
    : options_(options),
      thread_share_(1.0 / static_cast<double>(std::max(thread_count, 1))),
      rng_(seed ^ 0xA881Full ^ (static_cast<uint64_t>(thread_id) << 32)) {
  // Fixed-interval threads start phase-staggered so N threads produce an
  // evenly spaced aggregate stream, not N-wide synchronized bursts.
  if (options_.process == ArrivalOptions::Process::kFixed &&
      thread_count > 1 && options_.rate > 0.0) {
    next_ns_ = static_cast<uint64_t>(static_cast<double>(thread_id) * 1e9 /
                                     options_.rate);
  }
  next_ns_ += DrawGapNs();
}

uint64_t ArrivalSchedule::DrawGapNs() {
  double rate = ArrivalRateAt(options_, static_cast<double>(next_ns_) / 1e9) *
                thread_share_;
  double gap_s;
  if (options_.process == ArrivalOptions::Process::kFixed) {
    gap_s = 1.0 / rate;
  } else {
    // Inverse-CDF exponential draw; clamp the uniform away from 0 so the gap
    // stays finite.
    double u = rng_.NextDouble();
    if (u <= 0.0) u = 1e-12;
    gap_s = -std::log(u) / rate;
  }
  return static_cast<uint64_t>(gap_s * 1e9) + 1;  // ns; never a zero gap
}

void ArrivalSchedule::Pop() { next_ns_ += DrawGapNs(); }

}  // namespace core
}  // namespace ycsbt
