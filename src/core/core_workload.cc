#include "core/core_workload.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "generator/exponential_generator.h"
#include "generator/hotspot_generator.h"
#include "generator/scrambled_zipfian_generator.h"
#include "generator/sequential_generator.h"
#include "generator/skewed_latest_generator.h"
#include "generator/uniform_generator.h"
#include "generator/zipfian_generator.h"

namespace ycsbt {
namespace core {

Status CoreWorkload::Init(const Properties& props) {
  InitSeed(props);
  table_ = props.Get("table", "usertable");
  record_count_ = props.GetUint("recordcount", 1000);
  if (record_count_ == 0) return Status::InvalidArgument("recordcount must be > 0");
  field_count_ = static_cast<int>(props.GetInt("fieldcount", 10));
  field_prefix_ = props.Get("fieldnameprefix", "field");
  field_length_ = props.GetUint("fieldlength", 100);
  min_field_length_ = props.GetUint("minfieldlength", 1);
  field_length_dist_ = props.Get("fieldlengthdistribution", "constant");
  read_all_fields_ = props.GetBool("readallfields", true);
  write_all_fields_ = props.GetBool("writeallfields", false);
  ordered_inserts_ = props.Get("insertorder", "hashed") == "ordered";
  data_integrity_ = props.GetBool("dataintegrity", false);
  zero_padding_ = static_cast<int>(props.GetInt("zeropadding", 1));
  insert_start_ = props.GetUint("insertstart", 0);
  insert_count_ = props.GetUint("insertcount", record_count_);

  field_names_.clear();
  for (int i = 0; i < field_count_; ++i) {
    field_names_.push_back(field_prefix_ + std::to_string(i));
  }

  if (field_length_dist_ == "constant") {
    field_length_generator_ =
        std::make_unique<ConstantGenerator<uint64_t>>(field_length_);
  } else if (field_length_dist_ == "uniform") {
    field_length_generator_ =
        std::make_unique<UniformLongGenerator>(min_field_length_, field_length_);
  } else if (field_length_dist_ == "zipfian") {
    field_length_generator_ = std::make_unique<ZipfianGenerator>(
        min_field_length_, field_length_);
  } else {
    return Status::InvalidArgument("unknown fieldlengthdistribution: " +
                                   field_length_dist_);
  }
  if (data_integrity_ && field_length_dist_ != "constant") {
    // Deterministic re-derivation needs a deterministic length (as in YCSB).
    return Status::InvalidArgument(
        "dataintegrity=true requires fieldlengthdistribution=constant");
  }

  double read_prop = props.GetDouble("readproportion", 0.95);
  double update_prop = props.GetDouble("updateproportion", 0.05);
  double insert_prop = props.GetDouble("insertproportion", 0.0);
  double scan_prop = props.GetDouble("scanproportion", 0.0);
  double rmw_prop = props.GetDouble("readmodifywriteproportion", 0.0);
  double delete_prop = props.GetDouble("deleteproportion", 0.0);
  double batch_read_prop = props.GetDouble("batchreadproportion", 0.0);
  double batch_insert_prop = props.GetDouble("batchinsertproportion", 0.0);
  op_chooser_ = DiscreteGenerator<const char*>();
  if (read_prop > 0) op_chooser_.AddValue(txop::kRead, read_prop);
  if (update_prop > 0) op_chooser_.AddValue(txop::kUpdate, update_prop);
  if (insert_prop > 0) op_chooser_.AddValue(txop::kInsert, insert_prop);
  if (scan_prop > 0) op_chooser_.AddValue(txop::kScan, scan_prop);
  if (rmw_prop > 0) op_chooser_.AddValue(txop::kReadModifyWrite, rmw_prop);
  if (delete_prop > 0) op_chooser_.AddValue(txop::kDelete, delete_prop);
  if (batch_read_prop > 0) op_chooser_.AddValue(txop::kBatchRead, batch_read_prop);
  if (batch_insert_prop > 0) {
    op_chooser_.AddValue(txop::kBatchInsert, batch_insert_prop);
  }
  if (op_chooser_.Empty()) {
    return Status::InvalidArgument("all operation proportions are zero");
  }

  uint64_t max_batch_size = props.GetUint("batch.size", 16);
  if (max_batch_size == 0) return Status::InvalidArgument("batch.size must be > 0");
  std::string batch_size_dist = props.Get("batch.size_distribution", "uniform");
  if (batch_size_dist == "uniform") {
    batch_size_chooser_ = std::make_unique<UniformLongGenerator>(1, max_batch_size);
  } else if (batch_size_dist == "constant") {
    batch_size_chooser_ =
        std::make_unique<ConstantGenerator<uint64_t>>(max_batch_size);
  } else if (batch_size_dist == "zipfian") {
    batch_size_chooser_ = std::make_unique<ZipfianGenerator>(1, max_batch_size);
  } else {
    return Status::InvalidArgument("unknown batch.size_distribution: " +
                                   batch_size_dist);
  }

  uint64_t last_initial_key = insert_start_ + insert_count_ - 1;
  load_sequence_ = std::make_unique<CounterGenerator>(insert_start_);
  insert_sequence_ =
      std::make_unique<AcknowledgedCounterGenerator>(last_initial_key + 1);

  std::string request_dist = props.Get("requestdistribution", "uniform");
  if (request_dist == "uniform") {
    key_chooser_ =
        std::make_unique<UniformLongGenerator>(insert_start_, last_initial_key);
  } else if (request_dist == "zipfian") {
    if (props.Contains("zipfian.theta")) {
      // Explicit skew sweep (ablation benches): plain zipfian with the given
      // theta.  Hot keys cluster at low key numbers, which is fine for
      // contention studies.
      key_chooser_ = std::make_unique<ZipfianGenerator>(
          insert_start_, last_initial_key,
          props.GetDouble("zipfian.theta", ZipfianGenerator::kDefaultTheta));
    } else {
      // Inserts during the run expand the key space; size the zipfian
      // universe with the same headroom YCSB uses so new keys stay reachable.
      uint64_t expected_new = static_cast<uint64_t>(
          2.0 * props.GetDouble("insertproportion", 0.0) *
          static_cast<double>(props.GetUint("operationcount", insert_count_)));
      uint64_t universe = insert_count_ + std::max<uint64_t>(expected_new, 0);
      key_chooser_ = std::make_unique<ScrambledZipfianGenerator>(
          insert_start_, insert_start_ + universe - 1);
    }
  } else if (request_dist == "latest") {
    key_chooser_ = std::make_unique<SkewedLatestGenerator>(insert_sequence_.get());
  } else if (request_dist == "hotspot") {
    double data_fraction = props.GetDouble("hotspotdatafraction", 0.2);
    double opn_fraction = props.GetDouble("hotspotopnfraction", 0.8);
    key_chooser_ = std::make_unique<HotspotIntegerGenerator>(
        insert_start_, last_initial_key, data_fraction, opn_fraction);
  } else if (request_dist == "sequential") {
    key_chooser_ =
        std::make_unique<SequentialGenerator>(insert_start_, last_initial_key);
  } else if (request_dist == "exponential") {
    double percentile =
        props.GetDouble("exponential.percentile", ExponentialGenerator::kDefaultPercentile);
    double frac = props.GetDouble("exponential.frac", 0.8571);
    key_chooser_ = std::make_unique<ExponentialGenerator>(
        percentile, static_cast<double>(record_count_) * frac);
  } else {
    return Status::InvalidArgument("unknown requestdistribution: " + request_dist);
  }

  uint64_t max_scan_length = props.GetUint("maxscanlength", 1000);
  std::string scan_length_dist = props.Get("scanlengthdistribution", "uniform");
  if (scan_length_dist == "uniform") {
    scan_length_chooser_ = std::make_unique<UniformLongGenerator>(1, max_scan_length);
  } else if (scan_length_dist == "zipfian") {
    scan_length_chooser_ = std::make_unique<ZipfianGenerator>(1, max_scan_length);
  } else {
    return Status::InvalidArgument("unknown scanlengthdistribution: " +
                                   scan_length_dist);
  }

  return Status::OK();
}

std::string CoreWorkload::BuildKeyName(uint64_t key_num) const {
  if (!ordered_inserts_) key_num = FNVHash64(key_num);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*" PRIu64, zero_padding_, key_num);
  return "user" + std::string(buf);
}

size_t CoreWorkload::NextFieldLength(Random64& rng) {
  return static_cast<size_t>(field_length_generator_->Next(rng));
}

std::string CoreWorkload::RandomString(Random64& rng, size_t length) const {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::string CoreWorkload::DeterministicValue(const std::string& key,
                                             const std::string& field) const {
  // Seed a private stream from the key and field so the expected value can
  // be re-derived by any reader (YCSB's data-integrity construction).
  uint64_t seed = FNVHash64(std::hash<std::string>{}(key)) ^
                  std::hash<std::string>{}(field);
  Random64 rng(seed);
  return RandomString(rng, field_length_);
}

bool CoreWorkload::VerifyRecord(const std::string& key, const FieldMap& record) {
  if (!data_integrity_) return true;
  bool clean = !record.empty();
  for (const auto& [name, value] : record) {
    if (value != DeterministicValue(key, name)) {
      clean = false;
      break;
    }
  }
  if (!clean) integrity_errors_.fetch_add(1, std::memory_order_relaxed);
  return clean;
}

FieldMap CoreWorkload::BuildValues(Random64& rng, const std::string& key) {
  FieldMap values;
  for (const auto& name : field_names_) {
    values[name] = data_integrity_ ? DeterministicValue(key, name)
                                   : RandomString(rng, NextFieldLength(rng));
  }
  return values;
}

FieldMap CoreWorkload::BuildUpdate(Random64& rng, const std::string& key) {
  if (write_all_fields_) return BuildValues(rng, key);
  FieldMap values;
  const std::string& name =
      field_names_[rng.Uniform(field_names_.size())];
  values[name] = data_integrity_ ? DeterministicValue(key, name)
                                 : RandomString(rng, NextFieldLength(rng));
  return values;
}

uint64_t CoreWorkload::NextKeyNum(Random64& rng) {
  uint64_t limit = insert_sequence_->Last();
  uint64_t key_num;
  do {
    key_num = key_chooser_->Next(rng);
  } while (key_num > limit);
  return key_num;
}

bool CoreWorkload::DoInsert(DB& db, ThreadState* state) {
  uint64_t key_num = load_sequence_->Next(state->rng);
  std::string key = BuildKeyName(key_num);
  FieldMap values = BuildValues(state->rng, key);
  return db.Insert(table_, key, values).ok();
}

bool CoreWorkload::BuildNextInsert(ThreadState* state, LoadRecord* record) {
  // Same draws in the same order as DoInsert, so a bulk-loaded table is
  // byte-identical to a per-op-loaded one.
  uint64_t key_num = load_sequence_->Next(state->rng);
  record->table = table_;
  record->key = BuildKeyName(key_num);
  record->values = BuildValues(state->rng, record->key);
  return true;
}

bool CoreWorkload::NextTransactionReadOnly(ThreadState* state) {
  // Draw the next operation once and park it on the thread state;
  // DoTransaction consumes the parked draw, so peeking is stream-neutral.
  if (state->peeked_op == nullptr) {
    state->peeked_op = op_chooser_.Next(state->rng);
  }
  return state->peeked_op == txop::kRead || state->peeked_op == txop::kScan ||
         state->peeked_op == txop::kBatchRead;
}

TxnOpResult CoreWorkload::DoTransaction(DB& db, ThreadState* state) {
  const char* op = state->peeked_op != nullptr
                       ? std::exchange(state->peeked_op, nullptr)
                       : op_chooser_.Next(state->rng);
  TxnOpResult result;
  result.op = op;
  if (op == txop::kRead) {
    result.ok = DoTransactionRead(db, state);
  } else if (op == txop::kUpdate) {
    result.ok = DoTransactionUpdate(db, state);
  } else if (op == txop::kInsert) {
    result.ok = DoTransactionInsert(db, state);
  } else if (op == txop::kScan) {
    result.ok = DoTransactionScan(db, state);
  } else if (op == txop::kDelete) {
    result.ok = DoTransactionDelete(db, state);
  } else if (op == txop::kBatchRead) {
    result.ok = DoTransactionBatchRead(db, state);
  } else if (op == txop::kBatchInsert) {
    result.ok = DoTransactionBatchInsert(db, state);
  } else {
    result.ok = DoTransactionReadModifyWrite(db, state);
  }
  return result;
}

bool CoreWorkload::DoTransactionRead(DB& db, ThreadState* state) {
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  FieldMap result;
  Status s;
  if (read_all_fields_) {
    s = db.Read(table_, key, nullptr, &result);
  } else {
    std::vector<std::string> fields = {
        field_names_[state->rng.Uniform(field_names_.size())]};
    s = db.Read(table_, key, &fields, &result);
  }
  if (!s.ok()) return false;
  return VerifyRecord(key, result);
}

bool CoreWorkload::DoTransactionUpdate(DB& db, ThreadState* state) {
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  return db.Update(table_, key, BuildUpdate(state->rng, key)).ok();
}

bool CoreWorkload::DoTransactionInsert(DB& db, ThreadState* state) {
  uint64_t key_num = insert_sequence_->Next(state->rng);
  std::string key = BuildKeyName(key_num);
  bool ok = db.Insert(table_, key, BuildValues(state->rng, key)).ok();
  // Acknowledge even on failure so the window keeps sliding (YCSB behaviour).
  insert_sequence_->Acknowledge(key_num);
  return ok;
}

bool CoreWorkload::DoTransactionScan(DB& db, ThreadState* state) {
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  size_t len = static_cast<size_t>(scan_length_chooser_->Next(state->rng));
  std::vector<ScanRow> rows;
  if (read_all_fields_) {
    return db.Scan(table_, key, len, nullptr, &rows).ok();
  }
  std::vector<std::string> fields = {
      field_names_[state->rng.Uniform(field_names_.size())]};
  return db.Scan(table_, key, len, &fields, &rows).ok();
}

bool CoreWorkload::DoTransactionDelete(DB& db, ThreadState* state) {
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  Status s = db.Delete(table_, key);
  return s.ok() || s.IsNotFound();
}

bool CoreWorkload::DoTransactionReadModifyWrite(DB& db, ThreadState* state) {
  std::string key = BuildKeyName(NextKeyNum(state->rng));
  FieldMap result;
  if (!db.Read(table_, key, nullptr, &result).ok()) return false;
  if (!VerifyRecord(key, result)) return false;
  return db.Update(table_, key, BuildUpdate(state->rng, key)).ok();
}

size_t CoreWorkload::NextBatchSize(Random64& rng) {
  return static_cast<size_t>(batch_size_chooser_->Next(rng));
}

bool CoreWorkload::DoTransactionBatchRead(DB& db, ThreadState* state) {
  size_t len = NextBatchSize(state->rng);
  std::vector<std::string> keys;
  keys.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    keys.push_back(BuildKeyName(NextKeyNum(state->rng)));
  }
  std::vector<MultiReadRow> rows;
  if (read_all_fields_) {
    db.MultiRead(table_, keys, nullptr, &rows);
  } else {
    std::vector<std::string> fields = {
        field_names_[state->rng.Uniform(field_names_.size())]};
    db.MultiRead(table_, keys, &fields, &rows);
  }
  bool ok = true;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].status.ok() || !VerifyRecord(keys[i], rows[i].fields)) {
      ok = false;
    }
  }
  return ok;
}

bool CoreWorkload::DoTransactionBatchInsert(DB& db, ThreadState* state) {
  size_t len = NextBatchSize(state->rng);
  std::vector<uint64_t> key_nums;
  std::vector<std::string> keys;
  std::vector<FieldMap> values;
  key_nums.reserve(len);
  keys.reserve(len);
  values.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    uint64_t key_num = insert_sequence_->Next(state->rng);
    key_nums.push_back(key_num);
    keys.push_back(BuildKeyName(key_num));
    values.push_back(BuildValues(state->rng, keys.back()));
  }
  std::vector<Status> statuses;
  db.BatchInsert(table_, keys, values, &statuses);
  // Acknowledge every key even on failure so the window keeps sliding,
  // matching the single-insert convention.
  for (uint64_t key_num : key_nums) insert_sequence_->Acknowledge(key_num);
  for (const Status& s : statuses) {
    if (!s.ok()) return false;
  }
  return true;
}

}  // namespace core
}  // namespace ycsbt
