#include "core/benchmark.h"

#include "core/workload_factory.h"
#include "measurement/exporter.h"

namespace ycsbt {
namespace core {

Status RunBenchmarkWithFactory(const Properties& props, DBFactory* factory,
                               RunResult* result, std::string* report) {
  std::unique_ptr<Workload> workload;
  Status s = CreateWorkload(props, &workload);
  if (!s.ok()) return s;

  Measurements measurements;
  WorkloadRunner runner(factory, workload.get(), &measurements);

  int threads = static_cast<int>(props.GetInt("threads", 1));

  if (!props.GetBool("skipload", false)) {
    LoadOptions load;
    load.threads = static_cast<int>(props.GetInt("loadthreads", threads));
    load.wrap_in_transactions = props.GetBool("loadwrapped", false);
    load.bulk_batch = props.GetUint("bulkload.batch", 0);
    s = runner.Load(load);
    if (!s.ok()) return s;
  }

  if (props.GetBool("skiprun", false)) {
    *result = RunResult{};
  } else {
    RunOptions run;
    run.threads = threads;
    run.operation_count = props.GetUint("operationcount", 1000);
    run.max_execution_seconds = props.GetDouble("maxexecutiontime", 0.0);
    run.target_ops_per_sec = props.GetDouble("target", 0.0);
    run.wrap_in_transactions = props.GetBool("dotransactions", true);
    run.status_interval_seconds = props.GetDouble("status.interval", 0.0);
    run.stall_windows = static_cast<int>(props.GetInt("status.stall_windows", 3));
    run.retry = RetryPolicy::FromProperties(props);
    run.shed = BrownoutOptions::FromProperties(props);
    s = ArrivalOptions::FromProperties(props, &run.arrival);
    if (!s.ok()) return s;
    // Faults perturb only the measured run — the load phase must populate
    // the table completely and the validation sweep must see the store as
    // it is.  Same for the replicated store's failover script and replica
    // lag: while disarmed it replicates synchronously (read routing stays
    // on, so a stale-mode validation still audits the lagging view).
    if (factory->fault_store() != nullptr) factory->fault_store()->set_enabled(true);
    if (factory->storage_fault_env() != nullptr) {
      factory->storage_fault_env()->set_enabled(true);
    }
    if (factory->replicated_store() != nullptr) {
      factory->replicated_store()->set_fault_enabled(true);
    }
    s = runner.Run(run, result);
    if (factory->fault_store() != nullptr) factory->fault_store()->set_enabled(false);
    if (factory->storage_fault_env() != nullptr) {
      factory->storage_fault_env()->set_enabled(false);
    }
    if (factory->replicated_store() != nullptr) {
      factory->replicated_store()->set_fault_enabled(false);
    }
    if (!s.ok()) return s;
  }

  s = runner.Validate(result->operations, &result->validation);
  if (!s.ok()) return s;
  result->op_stats = measurements.Snapshot();

  if (report != nullptr) {
    *report = TextExporter::Export(result->MakeSummary(), result->op_stats);
  }
  return Status::OK();
}

Status RunBenchmark(const Properties& props, RunResult* result,
                    std::string* report) {
  DBFactory factory(props);
  Status s = factory.Init();
  if (!s.ok()) return s;
  return RunBenchmarkWithFactory(props, &factory, result, report);
}

}  // namespace core
}  // namespace ycsbt
