#include "core/workload_factory.h"

#include "core/closed_economy_workload.h"
#include "core/core_workload.h"
#include "core/write_skew_workload.h"

namespace ycsbt {
namespace core {

Status CreateWorkload(const Properties& props, std::unique_ptr<Workload>* out) {
  std::string name = props.Get("workload", "core");
  std::unique_ptr<Workload> workload;
  if (name == "core" || name == "com.yahoo.ycsb.workloads.CoreWorkload") {
    workload = std::make_unique<CoreWorkload>();
  } else if (name == "closed_economy" ||
             name == "com.yahoo.ycsb.workloads.ClosedEconomyWorkload") {
    workload = std::make_unique<ClosedEconomyWorkload>();
  } else if (name == "write_skew") {
    workload = std::make_unique<WriteSkewWorkload>();
  } else {
    return Status::InvalidArgument("unknown workload: " + name);
  }
  Status s = workload->Init(props);
  if (!s.ok()) return s;
  *out = std::move(workload);
  return Status::OK();
}

}  // namespace core
}  // namespace ycsbt
