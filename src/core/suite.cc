#include "core/suite.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>

#include "common/logging.h"
#include "core/benchmark.h"
#include "measurement/exporter.h"

namespace ycsbt {
namespace core {

namespace {

/// Splits a `<prefix><name>.<rest>` key into its axis name and property.
Status SplitScoped(const std::string& key, size_t prefix_len, std::string* name,
                   std::string* rest) {
  size_t dot = key.find('.', prefix_len);
  if (dot == std::string::npos || dot == prefix_len || dot + 1 >= key.size()) {
    return Status::InvalidArgument("suite key '" + key +
                                   "' needs the form <axis>.<name>.<property>");
  }
  *name = key.substr(prefix_len, dot - prefix_len);
  *rest = key.substr(dot + 1);
  return Status::OK();
}

/// Comma-splits a sweep value list, trimming whitespace around entries.
std::vector<std::string> SplitValues(const std::string& list) {
  std::vector<std::string> values;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    size_t end = comma == std::string::npos ? list.size() : comma;
    size_t b = start, e = end;
    while (b < e && std::isspace(static_cast<unsigned char>(list[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(list[e - 1]))) --e;
    if (e > b) values.push_back(list.substr(b, e - b));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

/// Keeps [A-Za-z0-9._-]; everything else becomes '-', so run names are safe
/// directory names on every filesystem.
std::string SanitizeToken(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
              c == '_' || c == '-';
    out.push_back(ok ? c : '-');
  }
  return out;
}

/// "cloud.latency_scale" -> "latency_scale": the axis label in run names.
std::string AxisLeaf(const std::string& key) {
  size_t dot = key.rfind('.');
  return dot == std::string::npos ? key : key.substr(dot + 1);
}

Status WriteFile(const std::filesystem::path& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path.string());
  f << content;
  f.flush();
  if (!f.good()) return Status::IOError("short write to " + path.string());
  return Status::OK();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

Status SuiteSpec::Parse(const Properties& file, SuiteSpec* out) {
  *out = SuiteSpec{};
  // std::map keeps each axis's bundles in name order: expansion order (and
  // so run naming and substrate grouping) is deterministic.
  std::map<std::string, Properties> configs;
  std::map<std::string, Properties> mixes;

  for (const std::string& key : file.Keys()) {
    const std::string value = file.Get(key);
    if (key == "suite.name") {
      out->name = value;
    } else if (key == "suite.output_dir") {
      out->output_dir = value;
    } else if (key == "suite.load") {
      if (value == "once") {
        out->load_once = true;
      } else if (value == "per_run") {
        out->load_once = false;
      } else {
        return Status::InvalidArgument("suite.load must be once or per_run, got '" +
                                       value + "'");
      }
    } else if (key == "suite.repeats") {
      int64_t repeats = 0;
      Status s = file.CheckedGetInt(key, 1, &repeats);
      if (!s.ok()) return s;
      if (repeats < 1) return Status::InvalidArgument("suite.repeats must be >= 1");
      out->repeats = static_cast<int>(repeats);
    } else if (key == "suite.operations_per_thread") {
      int64_t opt = 0;
      Status s = file.CheckedGetInt(key, 0, &opt);
      if (!s.ok()) return s;
      if (opt < 0) {
        return Status::InvalidArgument("suite.operations_per_thread must be >= 0");
      }
      out->operations_per_thread = static_cast<uint64_t>(opt);
    } else if (key.rfind("base.", 0) == 0) {
      if (key.size() == 5) return Status::InvalidArgument("empty base. key");
      out->base.Set(key.substr(5), value);
    } else if (key.rfind("config.", 0) == 0) {
      std::string name, rest;
      Status s = SplitScoped(key, 7, &name, &rest);
      if (!s.ok()) return s;
      configs[name].Set(rest, value);
    } else if (key.rfind("mix.", 0) == 0) {
      std::string name, rest;
      Status s = SplitScoped(key, 4, &name, &rest);
      if (!s.ok()) return s;
      mixes[name].Set(rest, value);
    } else if (key.rfind("sweep.", 0) == 0) {
      if (key.size() == 6) return Status::InvalidArgument("empty sweep. key");
      std::vector<std::string> values = SplitValues(value);
      if (values.empty()) {
        return Status::InvalidArgument("sweep '" + key + "' lists no values");
      }
      out->sweeps.emplace_back(key.substr(6), std::move(values));
    } else {
      return Status::InvalidArgument(
          "unrecognised suite key '" + key +
          "' (run properties need a base. / config.<name>. / mix.<name>. / "
          "sweep. prefix)");
    }
  }

  for (auto& [name, props] : configs) out->configs.emplace_back(name, std::move(props));
  for (auto& [name, props] : mixes) out->mixes.emplace_back(name, std::move(props));
  // Unused axes collapse to one unnamed entry so Expand stays one loop nest.
  if (out->configs.empty()) out->configs.emplace_back("", Properties());
  if (out->mixes.empty()) out->mixes.emplace_back("", Properties());
  return Status::OK();
}

std::vector<SuiteRun> SuiteSpec::Expand() const {
  std::vector<SuiteRun> runs;
  for (const auto& [config_name, config_props] : configs) {
    for (int repeat = 1; repeat <= repeats; ++repeat) {
      for (const auto& [mix_name, mix_props] : mixes) {
        // Odometer over the sweep axes (first axis slowest, matching the
        // sorted-key file order).
        std::vector<size_t> at(sweeps.size(), 0);
        for (;;) {
          SuiteRun run;
          run.config = config_name;
          run.mix = mix_name;
          run.repeat = repeat;
          run.props = base;
          run.props.Merge(config_props);
          run.props.Merge(mix_props);

          std::string name;
          auto append_part = [&name](const std::string& part) {
            if (part.empty()) return;
            if (!name.empty()) name += '_';
            name += part;
          };
          append_part(SanitizeToken(config_name));
          append_part(SanitizeToken(mix_name));
          for (size_t i = 0; i < sweeps.size(); ++i) {
            const std::string& value = sweeps[i].second[at[i]];
            run.props.Set(sweeps[i].first, value);
            append_part(SanitizeToken(AxisLeaf(sweeps[i].first)) +
                        SanitizeToken(value));
          }
          if (operations_per_thread != 0) {
            uint64_t threads = run.props.GetUint("threads", 1);
            run.props.Set("operationcount",
                          std::to_string(operations_per_thread * threads));
          }
          if (name.empty()) name = "run";
          if (repeats > 1) name += "_rep" + std::to_string(repeat);
          run.name = name;
          runs.push_back(std::move(run));

          // Advance the odometer; rightmost axis fastest.  Wrapping past the
          // slowest axis (or having none) exhausts the cross product.
          bool exhausted = true;
          for (size_t axis = sweeps.size(); axis-- > 0;) {
            if (++at[axis] < sweeps[axis].second.size()) {
              exhausted = false;
              break;
            }
            at[axis] = 0;
          }
          if (exhausted) break;
        }
      }
    }
  }
  return runs;
}

Status SuiteOrchestrator::Execute(std::vector<SuiteRunOutcome>* outcomes) {
  outcomes->clear();
  if (spec_.output_dir.empty()) spec_.output_dir = "results/" + spec_.name;
  std::error_code ec;
  std::filesystem::create_directories(spec_.output_dir, ec);
  if (ec) {
    return Status::IOError("cannot create " + spec_.output_dir + ": " +
                           ec.message());
  }

  std::vector<SuiteRun> runs = spec_.Expand();
  if (runs.empty()) return Status::InvalidArgument("suite expands to no runs");
  YCSBT_INFO("[SUITE] " << spec_.name << ": " << runs.size() << " runs -> "
                        << spec_.output_dir);

  // The shared substrate of the current (config, repeat) group under
  // suite.load=once; rebuilt whenever the group changes.
  std::unique_ptr<DBFactory> factory;
  std::string group;
  size_t failures = 0;

  for (const SuiteRun& run : runs) {
    SuiteRunOutcome out;
    out.run = run;
    std::string report;

    if (spec_.load_once) {
      std::string g = run.config + "|" + std::to_string(run.repeat);
      bool fresh = factory == nullptr || g != group;
      if (fresh) {
        factory = std::make_unique<DBFactory>(run.props);
        group = g;
        Status s = factory->Init();
        if (!s.ok()) {
          out.status = s;
          factory.reset();  // retried on the group's next run
        }
      }
      if (out.status.ok() && factory != nullptr) {
        Properties p = run.props;
        if (!fresh) p.Set("skipload", "true");
        out.status = RunBenchmarkWithFactory(p, factory.get(), &out.result, &report);
      }
    } else {
      out.status = RunBenchmark(run.props, &out.result, &report);
    }

    // The run directory is written whatever happened, so the tree always
    // has one entry per declared run.
    std::filesystem::path dir = std::filesystem::path(spec_.output_dir) / run.name;
    std::filesystem::create_directories(dir, ec);
    Status ws = ec ? Status::IOError("cannot create " + dir.string() + ": " +
                                     ec.message())
                   : Status::OK();
    if (ws.ok()) ws = WriteFile(dir / "run.properties", run.props.ToString());
    if (ws.ok()) {
      ws = WriteFile(dir / "summary.txt",
                     out.status.ok() ? report
                                     : "ERROR: " + out.status.ToString() + "\n");
    }
    if (ws.ok()) {
      std::string json =
          out.status.ok()
              ? JsonExporter::Export(out.result.MakeSummary(), out.result.op_stats)
              : "{\"error\": \"" + JsonEscape(out.status.ToString()) + "\"}\n";
      ws = WriteFile(dir / "summary.json", json);
    }
    if (!ws.ok() && out.status.ok()) out.status = ws;

    if (out.status.ok()) {
      YCSBT_INFO("[SUITE] " << run.name << ": "
                            << out.result.throughput_ops_sec << " ops/s, "
                            << out.result.operations << " ops");
    } else {
      YCSBT_WARN("[SUITE] " << run.name << " FAILED: " << out.status.ToString());
      ++failures;
    }
    outcomes->push_back(std::move(out));
  }

  Status ws = WriteFile(std::filesystem::path(spec_.output_dir) / "rollup.txt",
                        RollupTable(*outcomes));
  if (ws.ok()) {
    ws = WriteFile(std::filesystem::path(spec_.output_dir) / "rollup.json",
                   RollupJson(*outcomes));
  }
  if (!ws.ok()) return ws;

  if (failures != 0) {
    return Status::Internal(std::to_string(failures) + " of " +
                            std::to_string(runs.size()) + " suite runs failed");
  }
  return Status::OK();
}

std::string SuiteOrchestrator::RollupTable(
    const std::vector<SuiteRunOutcome>& outcomes) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-40s %-12s %-16s %7s %10s %12s %8s %10s  %s\n",
                "run", "db", "workload", "threads", "ops", "ops/sec",
                "abort", "anomaly", "status");
  out += line;
  for (const auto& o : outcomes) {
    std::snprintf(line, sizeof(line),
                  "%-40s %-12s %-16s %7llu %10llu %12.1f %8.4f %10.3g  %s\n",
                  o.run.name.c_str(), o.run.props.Get("db", "basic").c_str(),
                  o.run.props.Get("workload", "core").c_str(),
                  static_cast<unsigned long long>(o.run.props.GetUint("threads", 1)),
                  static_cast<unsigned long long>(o.result.operations),
                  o.result.throughput_ops_sec, o.result.abort_rate(),
                  o.result.validation.anomaly_score,
                  o.status.ok() ? "ok" : o.status.ToString().c_str());
    out += line;
  }
  return out;
}

std::string SuiteOrchestrator::RollupJson(
    const std::vector<SuiteRunOutcome>& outcomes) {
  std::string out = "[\n";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"run\": \"%s\", \"config\": \"%s\", \"mix\": \"%s\", "
        "\"repeat\": %d, \"db\": \"%s\", \"workload\": \"%s\", "
        "\"threads\": %llu, \"operations\": %llu, \"throughput_ops_sec\": %.3f, "
        "\"abort_rate\": %.6f, \"anomaly_score\": %.9g, \"runtime_ms\": %.1f, "
        "\"ok\": %s, \"status\": \"%s\"}%s\n",
        JsonEscape(o.run.name).c_str(), JsonEscape(o.run.config).c_str(),
        JsonEscape(o.run.mix).c_str(), o.run.repeat,
        JsonEscape(o.run.props.Get("db", "basic")).c_str(),
        JsonEscape(o.run.props.Get("workload", "core")).c_str(),
        static_cast<unsigned long long>(o.run.props.GetUint("threads", 1)),
        static_cast<unsigned long long>(o.result.operations),
        o.result.throughput_ops_sec, o.result.abort_rate(),
        o.result.validation.anomaly_score, o.result.runtime_ms,
        o.status.ok() ? "true" : "false",
        JsonEscape(o.status.ok() ? "ok" : o.status.ToString()).c_str(),
        i + 1 < outcomes.size() ? "," : "");
    out += buf;
  }
  out += "]\n";
  return out;
}

}  // namespace core
}  // namespace ycsbt
