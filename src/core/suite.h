#ifndef YCSBT_CORE_SUITE_H_
#define YCSBT_CORE_SUITE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/properties.h"
#include "common/status.h"
#include "core/runner.h"

namespace ycsbt {
namespace core {

/// One concrete run of a suite: a fully merged property set plus the labels
/// that place it in the suite's matrix.
struct SuiteRun {
  std::string name;    ///< directory-safe unique run name
  std::string config;  ///< substrate-axis label ("" when the suite has none)
  std::string mix;     ///< workload-axis label ("" when the suite has none)
  int repeat = 1;      ///< 1-based repeat index
  Properties props;    ///< base + config + mix + sweep assignment, merged
};

/// Declarative benchmark-suite specification (DESIGN.md §11), parsed from a
/// properties-syntax file:
///
///   suite.name=fig2_cloud_throughput     # suite label / default output dir
///   suite.load=once                      # once | per_run
///   suite.repeats=1                      # repeats of the whole matrix
///   suite.output_dir=results/fig2        # results tree root
///   suite.operations_per_thread=3000     # operationcount = this x threads
///   base.db=txn+was                      # properties shared by every run
///   config.mix90_10.readproportion=0.9   # substrate/config axis bundles
///   mix.scanheavy.scanproportion=0.95    # workload axis bundles
///   sweep.threads=1,2,4,8,16             # swept single properties
///
/// The matrix is the cross product configs x mixes x sweeps x repeats.  A
/// suite without `config.*` (or `mix.*`) keys has one unnamed entry on that
/// axis.  With `suite.load=once` every (config, repeat) group shares one
/// loaded substrate — its runs after the first get `skipload` — so sweeping
/// a substrate-affecting property (e.g. `db`) requires `per_run` or separate
/// configs.
struct SuiteSpec {
  std::string name = "suite";
  std::string output_dir;  ///< defaults to results/<name> when empty
  bool load_once = true;
  int repeats = 1;
  /// When non-zero, every run's `operationcount` is set to this times the
  /// run's `threads` — same wall-clock per sweep point, as Fig 5 needs.
  uint64_t operations_per_thread = 0;
  Properties base;
  std::vector<std::pair<std::string, Properties>> configs;
  std::vector<std::pair<std::string, Properties>> mixes;
  std::vector<std::pair<std::string, std::vector<std::string>>> sweeps;

  /// Parses a loaded properties file into a spec.  Every key must be
  /// `suite.*` or carry one of the axis prefixes; anything else is an
  /// InvalidArgument (suites are declarations, not grab bags).
  static Status Parse(const Properties& file, SuiteSpec* out);

  /// Expands the matrix into concrete runs, ordered config -> repeat ->
  /// mix -> sweep combination (the order `Execute` groups substrates in).
  std::vector<SuiteRun> Expand() const;
};

/// What one executed run left behind.
struct SuiteRunOutcome {
  SuiteRun run;
  Status status;
  RunResult result;
};

/// Executes a suite through the existing benchmark driver and writes the
/// consolidated results tree:
///
///   <output_dir>/<run name>/run.properties   the run's exact property set
///   <output_dir>/<run name>/summary.txt      Listing-3 text export
///   <output_dir>/<run name>/summary.json     JSON export
///   <output_dir>/rollup.txt                  one-line-per-run table
///   <output_dir>/rollup.json                 same, machine-readable
///
/// A failing run is recorded (its directory holds the error) and the suite
/// continues; Execute returns non-OK at the end if any run failed.
class SuiteOrchestrator {
 public:
  explicit SuiteOrchestrator(SuiteSpec spec) : spec_(std::move(spec)) {}

  Status Execute(std::vector<SuiteRunOutcome>* outcomes);

  const SuiteSpec& spec() const { return spec_; }

  static std::string RollupTable(const std::vector<SuiteRunOutcome>& outcomes);
  static std::string RollupJson(const std::vector<SuiteRunOutcome>& outcomes);

 private:
  SuiteSpec spec_;
};

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_SUITE_H_
