#include "core/brownout.h"

namespace ycsbt {
namespace core {

BrownoutOptions BrownoutOptions::FromProperties(const Properties& props) {
  BrownoutOptions o;
  o.enabled = props.GetBool("shed.enabled", o.enabled);
  o.max_inflight =
      static_cast<int>(props.GetInt("shed.max_inflight", o.max_inflight));
  if (o.max_inflight < 0) o.max_inflight = 0;
  o.drop_read_only = props.GetBool("shed.drop_reads", o.drop_read_only);
  o.queue_delay_us = props.GetDouble("shed.queue_delay_us", o.queue_delay_us);
  o.windows = static_cast<int>(props.GetInt("shed.windows", o.windows));
  if (o.windows < 1) o.windows = 1;
  return o;
}

}  // namespace core
}  // namespace ycsbt
