#ifndef YCSBT_CORE_RUNNER_H_
#define YCSBT_CORE_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/retry_policy.h"
#include "core/arrival.h"
#include "core/brownout.h"
#include "core/workload.h"
#include "db/db_factory.h"
#include "measurement/exporter.h"
#include "measurement/measurements.h"

namespace ycsbt {
namespace core {

/// Parameters of the load phase.
struct LoadOptions {
  int threads = 1;
  /// Wrap every insert in Start/Commit (the strict paper behaviour).  Off by
  /// default: the load phase is setup, not measurement.
  bool wrap_in_transactions = false;
  /// Records per engine `BulkLoad` frame (`bulkload.batch`); 0 keeps the
  /// per-op DoInsert path.  The sorted fast path needs a binding whose
  /// factory `SupportsBulkLoad()`, a workload implementing `BuildNextInsert`
  /// and non-transactional loading; otherwise the runner warns once and
  /// falls back to per-op inserts.
  uint64_t bulk_batch = 0;
};

/// Parameters of the transaction (run) phase.
struct RunOptions {
  int threads = 1;
  /// Total operations across all threads; 0 = no budget (requires
  /// max_execution_seconds).
  uint64_t operation_count = 0;
  /// Wall-clock cap on the run; 0 = none (requires operation_count).
  double max_execution_seconds = 0.0;
  /// Aggregate target throughput for throttled runs; 0 = unthrottled.
  /// Closed-loop pacing: the stopwatch still starts when the transaction
  /// starts, so queueing delay behind a slow op is invisible (coordinated
  /// omission) — use `arrival` for honest latency under load.
  double target_ops_per_sec = 0.0;

  /// Open-loop arrival scheduling (`arrival.*` properties).  When
  /// `arrival.open_loop()`, every client thread draws intended start times
  /// from its share of the scripted rate and measures a second latency series
  /// (`TX-<OP>-INTENDED`) from the *intended* start, so the coordinated-
  /// omission gap is itself a measured quantity; arrivals due while the
  /// per-thread backlog is at `arrival.max_backlog` are dropped
  /// (ARRIVAL-DROP, consuming quota like a shed) and a full backlog flips
  /// the brownout controller into its shed path.  Overrides
  /// `target_ops_per_sec` when both are set.
  ArrivalOptions arrival;
  /// YCSB+T transactional wrapping (§IV-A).  When false the client threads
  /// never call Start/Commit/Abort — the plain-YCSB mode that Tier 5
  /// compares against.
  bool wrap_in_transactions = true;

  /// Emit a progress sample every this many seconds (YCSB's status thread);
  /// 0 disables.  Samples go to `status_callback`, or the framework log when
  /// the callback is empty, and are recorded as the run's `IntervalSample`
  /// time series (one window per tick plus a final partial window, so the
  /// windows' operations sum to `RunResult::operations`).
  double status_interval_seconds = 0.0;
  /// Receives (elapsed seconds, total ops so far, ops/sec over the last
  /// interval).  Called from the watchdog thread.
  std::function<void(double, uint64_t, double)> status_callback;

  /// Transaction retry discipline (only in `wrap_in_transactions` mode): a
  /// transaction failing with a retryable status is re-run — with the
  /// workload's `OnTransactionRetry` hook between attempts — after a backoff.
  /// Default: retries off (the seed behaviour).
  RetryPolicy retry;

  /// Watchdog stall detection: a client thread whose operation counter does
  /// not advance for this many consecutive status windows is flagged (warn
  /// log + `watchdog stalls` summary note).  Needs a status interval; 0
  /// disables.  Shed transactions and in-flight retry attempts count as
  /// progress — a thread gracefully shedding under brownout, or backing off
  /// through an election/throttle window, is degrading, not stuck.
  int stall_windows = 3;

  /// Brownout/load-shedding policy (`shed.*` properties).  When enabled the
  /// runner gates every transaction through a `BrownoutController` wired to
  /// the factory's resilience layer; the latency trigger additionally needs
  /// a status interval (the watchdog feeds it per-window latency).
  BrownoutOptions shed;
};

/// Everything a finished run reports.
struct RunResult {
  double runtime_ms = 0.0;
  double throughput_ops_sec = 0.0;
  uint64_t operations = 0;  ///< workload transactions attempted (shed
                            ///< transactions and dropped arrivals consume
                            ///< quota but never start, so they are counted in
                            ///< `shed_txns` / `arrival_drops` instead)
  uint64_t committed = 0;   ///< transactions whose commit succeeded
  uint64_t failed = 0;      ///< workload failures + failed commits

  // Retry-loop accounting (all zero when retries are off).
  bool retries_enabled = false;
  uint64_t retries = 0;          ///< extra attempts made across all txns
  uint64_t giveups = 0;          ///< txns that failed with retries available exhausted
  uint64_t backoff_time_us = 0;  ///< total wall time spent sleeping between attempts

  // Recovery/fault accounting for the run window (txn+ bindings only).
  uint64_t roll_forwards = 0;     ///< abandoned committed txns repaired
  uint64_t roll_backs = 0;        ///< abandoned uncommitted txns undone
  uint64_t injected_crashes = 0;  ///< commit-pipeline crash points fired
  uint64_t ambiguous_commits = 0; ///< lost TSR replies settled by re-read

  uint64_t stall_events = 0;  ///< watchdog stall flags raised

  // Overload-tolerance accounting for the run window (all zero unless the
  // factory wired a resilience layer / the runner a brownout controller).
  bool resilience_enabled = false;
  uint64_t breaker_opens = 0;      ///< Closed/Half-Open -> Open transitions
  uint64_t breaker_fast_fails = 0; ///< arrivals rejected while Open
  uint64_t breaker_probes = 0;     ///< Half-Open trial requests admitted
  uint64_t breaker_recloses = 0;   ///< Half-Open -> Closed recoveries
  uint64_t hedges_sent = 0;        ///< duplicate reads issued
  uint64_t hedges_won = 0;         ///< hedges whose answer was used
  uint64_t hedges_wasted = 0;      ///< hedges cancelled/discarded on arrival
  uint64_t deadline_abandons = 0;  ///< ops failed fast on an expired deadline
  bool shed_enabled = false;
  uint64_t shed_txns = 0;   ///< transactions shed by the brownout controller
  uint64_t shed_reads = 0;  ///< of those, read-only ones dropped first

  // Open-loop arrival accounting for the run window (all zero unless
  // `arrival.rate > 0` switched the runner to open-loop mode).
  bool arrival_enabled = false;
  uint64_t arrival_drops = 0;     ///< arrivals dropped over a full backlog
  uint64_t backlog_peak = 0;      ///< deepest per-thread pending backlog seen
  uint64_t sched_lag_max_us = 0;  ///< worst intended-vs-actual start lag

  // WAL durability accounting for the run window (all zero unless the
  // binding runs on the local engine with a WAL configured).
  uint64_t wal_appends = 0;     ///< WAL records acknowledged during the run
  uint64_t wal_syncs = 0;       ///< fdatasync calls issued during the run
  uint64_t wal_batches = 0;     ///< write batches (== appends without group commit)
  double wal_avg_batch = 0.0;   ///< mean records per batch
  int64_t wal_max_batch = 0;    ///< largest batch observed

  // Crash-recovery accounting from the local engine's `Open()` — what the
  // startup preceding this run replayed, skipped, truncated and scrubbed
  // (all zero unless the binding runs on the local engine with a WAL).
  bool recovery_reported = false;
  uint64_t recovery_ckpt_records = 0;     ///< entries loaded from the snapshot
  uint64_t recovery_wal_replayed = 0;     ///< WAL records applied
  uint64_t recovery_wal_skipped = 0;      ///< WAL frames under the watermark
  uint64_t recovery_truncated_bytes = 0;  ///< torn WAL tail chopped off
  bool recovery_ckpt_scrubbed = false;    ///< snapshot failed validation,
  std::string recovery_scrub_reason;      ///< fell back to WAL-only + why

  // Storage fault injection for the run window (all zero unless
  // `storage.fault.*` armed a `kv::FaultInjectingEnv` under the engine).
  bool storage_faults_enabled = false;
  uint64_t storage_faults_injected = 0;  ///< torn/failed/flipped ops injected
  bool storage_env_crashed = false;      ///< a crash point froze the env

  // RPC fan-out accounting for the run window (all zero unless
  // `txn.fanout_threads > 0` and some multi-key phase actually batched).
  uint64_t fanout_batches = 0;    ///< ParallelForEach calls that fanned out
  uint64_t fanout_items = 0;      ///< total items across those batches
  double fanout_avg_width = 0.0;  ///< mean items per batch

  // OCC engine accounting for the run window (all zero unless the binding
  // is `occ+memkv`): commit-protocol outcomes and the epoch machinery.
  bool occ_enabled = false;
  uint64_t occ_commits = 0;           ///< transactions the engine committed
  uint64_t occ_aborts = 0;            ///< engine-level aborts (incl. validation)
  uint64_t occ_validation_fails = 0;  ///< commits rejected by read-set validation
  uint64_t occ_epoch_advances = 0;    ///< global-epoch ticks during the run
  uint64_t occ_versions_retired = 0;  ///< old versions handed to retire lists
  uint64_t occ_versions_freed = 0;    ///< retired versions actually reclaimed

  // Multi-region replication accounting for the run window (all zero unless
  // `cloud.regions > 1` wired a `cloud::ReplicatedCloudStore`).
  bool replication_enabled = false;
  uint64_t failovers = 0;           ///< completed leader elections
  uint64_t not_leader_rejects = 0;  ///< requests refused mid-election
  uint64_t lost_tail_writes = 0;    ///< applied-but-unacked election writes
  uint64_t stale_reads = 0;         ///< reads served from a lagging view
  uint64_t replica_applies = 0;     ///< replication records delivered
  uint64_t partition_rejects = 0;   ///< requests refused by a partition

  ValidationResult validation;
  std::vector<OpStats> op_stats;
  /// Per-window progress trajectory (empty unless the run had a status
  /// interval); windows partition the run, so their `operations` sum to
  /// `operations` above.
  std::vector<IntervalSample> intervals;

  double abort_rate() const {
    return operations == 0 ? 0.0
                           : static_cast<double>(failed) /
                                 static_cast<double>(operations);
  }

  /// Converts to the exporter's run summary (Listing-3 shape).
  RunSummary MakeSummary() const;
};

/// The workload executor of the YCSB+T architecture (paper Fig 1): drives
/// the load phase, the transaction phase (spawning `threads` client threads,
/// each with its own MeasuredDB-wrapped binding), and the validation stage.
///
/// The client-thread loop implements §IV-A verbatim: `DB.Start()`, then the
/// workload's DoTransaction, then `DB.Commit()` on success or `DB.Abort()`
/// on failure — with the whole sequence's latency recorded as `TX-<OP>`.
///
/// Every client thread owns a `ThreadSink`, so recording a sample is
/// lock-free thread-local work; sinks merge into the shared `Measurements`
/// when the thread finishes.  The watchdog/status thread never touches the
/// histograms mid-run — it reads per-thread interval counters (padded to a
/// cache line each) and turns them into the run's `IntervalSample` series.
class WorkloadRunner {
 public:
  /// All pointers are borrowed and must outlive the runner.
  WorkloadRunner(DBFactory* factory, Workload* workload, Measurements* measurements)
      : factory_(factory), workload_(workload), measurements_(measurements) {}

  /// Inserts `workload->record_count()` records.
  Status Load(const LoadOptions& options);

  /// Runs the transaction phase.
  Status Run(const RunOptions& options, RunResult* result);

  /// Runs the Tier-6 validation stage with an unmeasured client.
  /// `operations_executed` feeds the anomaly-score denominator; pass
  /// `result->operations` from the preceding Run.
  Status Validate(uint64_t operations_executed, ValidationResult* out);

  /// Convenience: Load + Run + Validate, filling `result` completely.
  Status Execute(const LoadOptions& load, const RunOptions& run, RunResult* result);

 private:
  /// The sorted bulk-load fast path: collects every thread's deterministic
  /// record stream via `BuildNextInsert`, sorts the engine-level keys, and
  /// feeds `ShardedStore::BulkLoad` in `bulk_batch`-record frames.  Returns
  /// NotSupported when the workload has no data-form load stream (the caller
  /// then runs the per-op path).
  Status BulkLoadPhase(const LoadOptions& options);

  DBFactory* factory_;
  Workload* workload_;
  Measurements* measurements_;
};

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_RUNNER_H_
