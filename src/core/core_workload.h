#ifndef YCSBT_CORE_CORE_WORKLOAD_H_
#define YCSBT_CORE_CORE_WORKLOAD_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/workload.h"
#include "generator/acknowledged_counter_generator.h"
#include "generator/discrete_generator.h"
#include "generator/generator.h"

namespace ycsbt {
namespace core {

/// Workload-level operation names (the `TX-<OP>` series of Listing 3 use
/// these, as do the proportion properties).
namespace txop {
inline constexpr const char kRead[] = "READ";
inline constexpr const char kUpdate[] = "UPDATE";
inline constexpr const char kInsert[] = "INSERT";
inline constexpr const char kScan[] = "SCAN";
inline constexpr const char kDelete[] = "DELETE";
inline constexpr const char kReadModifyWrite[] = "READMODIFYWRITE";
inline constexpr const char kBatchRead[] = "BATCH_READ";
inline constexpr const char kBatchInsert[] = "BATCH_INSERT";
}  // namespace txop

/// Port of YCSB's CoreWorkload: the configurable mix of read / update /
/// insert / scan / read-modify-write (plus delete, a YCSB+T extension)
/// operations over a table of synthetic records that realises the standard
/// workloads A-F shipped in `workloads/`.
///
/// Properties honoured (YCSB names): `table`, `recordcount`, `fieldcount`,
/// `fieldlength`, `minfieldlength`, `fieldlengthdistribution`,
/// `readallfields`, `writeallfields`, `readproportion`, `updateproportion`,
/// `insertproportion`, `scanproportion`, `readmodifywriteproportion`,
/// `deleteproportion`, `requestdistribution` (uniform | zipfian | latest |
/// hotspot | sequential | exponential), `hotspotdatafraction`,
/// `hotspotopnfraction`, `maxscanlength`, `scanlengthdistribution`,
/// `insertstart`, `insertcount`, `insertorder` (hashed | ordered),
/// `zeropadding`.
///
/// Batch extension (this repo): `batchreadproportion` /
/// `batchinsertproportion` add BATCH_READ / BATCH_INSERT operations that
/// drive `DB::MultiRead` / `DB::BatchInsert` with `batch.size` keys per call
/// (`batch.size_distribution` = uniform | constant | zipfian over
/// [1, batch.size]) — the multi-item surface YCSB's one-op-per-call model
/// never exercises.
class CoreWorkload : public Workload {
 public:
  CoreWorkload() = default;

  Status Init(const Properties& props) override;

  bool DoInsert(DB& db, ThreadState* state) override;
  bool BuildNextInsert(ThreadState* state, LoadRecord* record) override;
  TxnOpResult DoTransaction(DB& db, ThreadState* state) override;
  bool NextTransactionReadOnly(ThreadState* state) override;

  uint64_t record_count() const override { return record_count_; }
  const std::string& table() const { return table_; }

  /// Key-number -> key-string mapping ("user<padded number>", optionally
  /// FNV-scattered); exposed for tests and the CEW subclass.
  std::string BuildKeyName(uint64_t key_num) const;

  /// Reads detected as corrupted when `dataintegrity=true` (values are
  /// deterministic functions of key+field, re-derived and compared on every
  /// read — YCSB's data-integrity mode).
  uint64_t data_integrity_errors() const {
    return integrity_errors_.load(std::memory_order_relaxed);
  }

 protected:
  // Individual operations, overridable by derived workloads (the paper's
  // doTransactionRead/... methods).
  virtual bool DoTransactionRead(DB& db, ThreadState* state);
  virtual bool DoTransactionUpdate(DB& db, ThreadState* state);
  virtual bool DoTransactionInsert(DB& db, ThreadState* state);
  virtual bool DoTransactionScan(DB& db, ThreadState* state);
  virtual bool DoTransactionDelete(DB& db, ThreadState* state);
  virtual bool DoTransactionReadModifyWrite(DB& db, ThreadState* state);
  virtual bool DoTransactionBatchRead(DB& db, ThreadState* state);
  virtual bool DoTransactionBatchInsert(DB& db, ThreadState* state);

  /// Draws the number of keys for one batch operation, in [1, batch.size].
  size_t NextBatchSize(Random64& rng);

  /// Draws a key number guaranteed to be <= the highest acknowledged insert.
  uint64_t NextKeyNum(Random64& rng);

  /// Builds a full set of `fieldcount` field values for `key` (random, or
  /// deterministic when data integrity checking is on).
  FieldMap BuildValues(Random64& rng, const std::string& key);
  /// Builds new value(s) for an update of `key` (one field, or all when
  /// `writeallfields`).
  FieldMap BuildUpdate(Random64& rng, const std::string& key);

  /// The deterministic expected value of one field (dataintegrity mode).
  std::string DeterministicValue(const std::string& key,
                                 const std::string& field) const;

  /// Verifies a read record against the deterministic expectation; counts
  /// and returns false on mismatch.  No-op (true) when integrity is off.
  bool VerifyRecord(const std::string& key, const FieldMap& record);

  std::string RandomString(Random64& rng, size_t length) const;
  size_t NextFieldLength(Random64& rng);

  std::string table_ = "usertable";
  uint64_t record_count_ = 0;
  int field_count_ = 10;
  std::string field_prefix_ = "field";
  size_t field_length_ = 100;
  size_t min_field_length_ = 1;
  std::string field_length_dist_ = "constant";
  bool read_all_fields_ = true;
  bool write_all_fields_ = false;
  bool data_integrity_ = false;
  std::atomic<uint64_t> integrity_errors_{0};
  bool ordered_inserts_ = false;
  int zero_padding_ = 1;
  uint64_t insert_start_ = 0;
  uint64_t insert_count_ = 0;

  DiscreteGenerator<const char*> op_chooser_;
  std::unique_ptr<IntegerGenerator> key_chooser_;
  std::unique_ptr<AcknowledgedCounterGenerator> insert_sequence_;
  std::unique_ptr<CounterGenerator> load_sequence_;
  std::unique_ptr<IntegerGenerator> scan_length_chooser_;
  std::unique_ptr<IntegerGenerator> batch_size_chooser_;
  std::unique_ptr<IntegerGenerator> field_length_generator_;
  std::vector<std::string> field_names_;
};

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_CORE_WORKLOAD_H_
