#ifndef YCSBT_CORE_CLOSED_ECONOMY_WORKLOAD_H_
#define YCSBT_CORE_CLOSED_ECONOMY_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/core_workload.h"

namespace ycsbt {
namespace core {

/// The Closed Economy Workload (CEW) of the paper (§IV-C): a simplified
/// closed economy in which money never enters or leaves the system, so that
/// the sum of all account balances is a transaction invariant any
/// serializable execution preserves.
///
/// Each record is one bank account holding its balance (a decimal string in
/// `field0`).  The load phase distributes `totalcash` evenly over
/// `recordcount` accounts.  Operations:
///   - *read*    — read one account;
///   - *update*  — read an account, add $1 drawn from the *capture bank*
///                 (money banked by delete operations), write it back;
///   - *insert*  — open a new account funded from the capture bank;
///   - *delete*  — close an account, banking its balance;
///   - *scan*    — range-read accounts;
///   - *readmodifywrite* — transfer $1 between two accounts (the op whose
///                 lost updates Figure 4 quantifies).
///
/// Batched variant: `cew.transfer_accounts` = W (default 2) widens the
/// read-modify-write to one W-account transfer per commit — the payer
/// account sends $1 to each of W-1 payees through one `MultiRead` + one
/// `BatchInsert` — keeping the per-commit sum delta exactly zero, so the
/// anomaly score stays exact.  W = 2 is byte-identical to the classic
/// two-account path.  BATCH_READ tolerates concurrently closed accounts;
/// BATCH_INSERT opens W accounts funded from the capture bank.
///
/// The invariant is `sum(accounts) + capture_bank == totalcash`.  The
/// Tier-6 validation stage sweeps the table, compares the counted sum with
/// the expectation and reports the paper's anomaly score
/// gamma = |S_initial − S_final| / operations.
///
/// The capture bank lives in the workload (not the database), so the client
/// thread reports each transaction's outcome via `OnTransactionOutcome`:
/// withdrawals are taken eagerly and refunded if the transaction aborts;
/// deposits apply only after a successful commit.
class ClosedEconomyWorkload : public CoreWorkload {
 public:
  ClosedEconomyWorkload() = default;

  Status Init(const Properties& props) override;
  std::unique_ptr<ThreadState> InitThread(int thread_id, int thread_count) override;

  bool DoInsert(DB& db, ThreadState* state) override;
  bool BuildNextInsert(ThreadState* state, LoadRecord* record) override;
  Status Validate(DB& db, uint64_t operations_executed,
                  ValidationResult* result) override;
  void OnTransactionOutcome(ThreadState* state, const TxnOpResult& result,
                            bool committed) override;

  int64_t total_cash() const { return total_cash_; }
  int64_t capture_bank() const { return bank_.load(std::memory_order_relaxed); }

 protected:
  bool DoTransactionRead(DB& db, ThreadState* state) override;
  bool DoTransactionUpdate(DB& db, ThreadState* state) override;
  bool DoTransactionInsert(DB& db, ThreadState* state) override;
  bool DoTransactionDelete(DB& db, ThreadState* state) override;
  bool DoTransactionScan(DB& db, ThreadState* state) override;
  bool DoTransactionReadModifyWrite(DB& db, ThreadState* state) override;
  bool DoTransactionBatchRead(DB& db, ThreadState* state) override;
  bool DoTransactionBatchInsert(DB& db, ThreadState* state) override;

 private:
  class CewThreadState;

  /// Atomically withdraws up to `want` from the capture bank; returns the
  /// amount actually obtained (the bank never goes negative).
  int64_t WithdrawFromBank(int64_t want);

  /// Blind full-record write of a balance (one store put — the paper's
  /// UPDATE is a single request; the read half is a separate READ).
  static Status WriteBalance(DB& db, const std::string& table,
                             const std::string& key, int64_t balance);

  /// Parses the balance out of a read/scanned record.
  static bool ParseBalance(const FieldMap& fields, int64_t* balance);

  int64_t total_cash_ = 0;
  int64_t initial_balance_ = 0;
  /// Accounts per read-modify-write transfer (`cew.transfer_accounts`);
  /// 2 = the paper's pair transfer, > 2 = the batched variant.
  int transfer_accounts_ = 2;
  std::atomic<int64_t> bank_{0};
};

}  // namespace core
}  // namespace ycsbt

#endif  // YCSBT_CORE_CLOSED_ECONOMY_WORKLOAD_H_
