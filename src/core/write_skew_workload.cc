#include "core/write_skew_workload.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "generator/uniform_generator.h"
#include "generator/zipfian_generator.h"

namespace ycsbt {
namespace core {

namespace {
constexpr char kField[] = "balance";

bool ParseBalance(const FieldMap& fields, int64_t* out) {
  auto it = fields.find(kField);
  if (it == fields.end()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

FieldMap BalanceRecord(int64_t balance) {
  FieldMap fields;
  fields[kField] = std::to_string(balance);
  return fields;
}

}  // namespace

Status WriteSkewWorkload::Init(const Properties& props) {
  InitSeed(props);
  uint64_t records = props.GetUint("recordcount", 200);
  if (records < 2 || records % 2 != 0) {
    return Status::InvalidArgument("recordcount must be even and >= 2");
  }
  pair_count_ = records / 2;
  table_ = props.Get("table", "skewtable");
  initial_balance_ = props.GetInt("writeskew.initial", 100);
  if (initial_balance_ < 0) {
    return Status::InvalidArgument("writeskew.initial must be >= 0");
  }
  read_proportion_ = props.GetDouble("readproportion", 0.0);

  std::string dist = props.Get("requestdistribution", "uniform");
  if (dist == "uniform") {
    pair_chooser_ = std::make_unique<UniformLongGenerator>(0, pair_count_ - 1);
  } else if (dist == "zipfian") {
    pair_chooser_ = std::make_unique<ZipfianGenerator>(0, pair_count_ - 1);
  } else {
    return Status::InvalidArgument("unknown requestdistribution: " + dist);
  }
  load_sequence_ = std::make_unique<CounterGenerator>(0);
  return Status::OK();
}

std::string WriteSkewWorkload::PairKey(uint64_t pair, int side) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pair%012" PRIu64 "%c", pair,
                side == 0 ? 'x' : 'y');
  return buf;
}

bool WriteSkewWorkload::DoInsert(DB& db, ThreadState* state) {
  uint64_t record = load_sequence_->Next(state->rng);
  std::string key = PairKey(record / 2, static_cast<int>(record % 2));
  return db.Insert(table_, key, BalanceRecord(initial_balance_)).ok();
}

TxnOpResult WriteSkewWorkload::DoTransaction(DB& db, ThreadState* state) {
  TxnOpResult result;
  if (state->rng.NextDouble() < read_proportion_) {
    result.op = "AUDIT";
    result.ok = DoAudit(db, state);
  } else {
    result.op = "WITHDRAW";
    result.ok = DoWithdraw(db, state);
  }
  return result;
}

bool WriteSkewWorkload::DoAudit(DB& db, ThreadState* state) {
  uint64_t pair = pair_chooser_->Next(state->rng);
  FieldMap rx, ry;
  if (!db.Read(table_, PairKey(pair, 0), nullptr, &rx).ok()) return false;
  if (!db.Read(table_, PairKey(pair, 1), nullptr, &ry).ok()) return false;
  int64_t x, y;
  return ParseBalance(rx, &x) && ParseBalance(ry, &y);
}

bool WriteSkewWorkload::DoWithdraw(DB& db, ThreadState* state) {
  uint64_t pair = pair_chooser_->Next(state->rng);
  std::string kx = PairKey(pair, 0);
  std::string ky = PairKey(pair, 1);

  // Read BOTH sides (the constraint involves both), then debit ONE.
  FieldMap rx, ry;
  if (!db.Read(table_, kx, nullptr, &rx).ok()) return false;
  if (!db.Read(table_, ky, nullptr, &ry).ok()) return false;
  int64_t x, y;
  if (!ParseBalance(rx, &x) || !ParseBalance(ry, &y)) return false;

  int64_t combined = x + y;
  if (combined <= 0) return true;  // nothing to withdraw; constraint-safe no-op

  // The application-level constraint check: withdraw at most the combined
  // balance.  Withdrawing the full amount maximises the skew window.
  int64_t amount =
      1 + static_cast<int64_t>(state->rng.Uniform(static_cast<uint64_t>(combined)));
  bool debit_x = state->rng.Uniform(2) == 0;
  const std::string& key = debit_x ? kx : ky;
  int64_t new_balance = (debit_x ? x : y) - amount;
  // Blind full-record write (one store request), like CEW.
  return db.Insert(table_, key, BalanceRecord(new_balance)).ok();
}

Status WriteSkewWorkload::Validate(DB& db, uint64_t operations_executed,
                                   ValidationResult* result) {
  *result = ValidationResult{};
  result->performed = true;

  uint64_t violated_pairs = 0;
  int64_t total_overdraft = 0;
  uint64_t pairs_seen = 0;

  std::string cursor = "";
  constexpr size_t kBatch = 1000;  // even: pairs stay batch-aligned
  std::string pending_key;
  int64_t pending_value = 0;
  bool have_pending = false;
  for (;;) {
    std::vector<ScanRow> rows;
    Status s = db.Scan(table_, cursor, kBatch, nullptr, &rows);
    if (!s.ok()) return s;
    if (rows.empty()) break;
    for (const auto& row : rows) {
      int64_t balance;
      if (!ParseBalance(row.fields, &balance)) {
        return Status::Corruption("unparsable balance for key " + row.key);
      }
      if (!have_pending) {
        pending_key = row.key;
        pending_value = balance;
        have_pending = true;
        continue;
      }
      // pending must be the 'x' of this row's pair ("...x" then "...y").
      if (pending_key.substr(0, pending_key.size() - 1) !=
          row.key.substr(0, row.key.size() - 1)) {
        return Status::Corruption("unpaired record: " + pending_key);
      }
      int64_t sum = pending_value + balance;
      ++pairs_seen;
      if (sum < 0) {
        ++violated_pairs;
        total_overdraft += -sum;
      }
      have_pending = false;
    }
    if (rows.size() < kBatch) break;
    cursor = rows.back().key + '\0';
  }
  if (have_pending) return Status::Corruption("odd record count in skew table");

  result->passed = violated_pairs == 0;
  result->anomaly_score =
      operations_executed == 0
          ? (violated_pairs == 0 ? 0.0 : 1.0)
          : static_cast<double>(violated_pairs) /
                static_cast<double>(operations_executed);
  result->report.emplace_back("PAIRS", std::to_string(pairs_seen));
  result->report.emplace_back("VIOLATED PAIRS", std::to_string(violated_pairs));
  result->report.emplace_back("TOTAL OVERDRAFT", std::to_string(total_overdraft));
  result->report.emplace_back("ACTUAL OPERATIONS",
                              std::to_string(operations_executed));
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", result->anomaly_score);
    result->report.emplace_back("ANOMALY SCORE", buf);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace ycsbt
