#include "db/kvstore_db.h"

#include <gtest/gtest.h>

#include <memory>

namespace ycsbt {
namespace {

class KvStoreDBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<KvStoreDB>(std::make_shared<kv::ShardedStore>());
  }

  std::unique_ptr<KvStoreDB> db_;
};

TEST_F(KvStoreDBTest, InsertReadRoundTrip) {
  FieldMap values = {{"field0", "hello"}, {"field1", "world"}};
  ASSERT_TRUE(db_->Insert("usertable", "user1", values).ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("usertable", "user1", nullptr, &result).ok());
  EXPECT_EQ(result, values);
}

TEST_F(KvStoreDBTest, ReadMissingIsNotFound) {
  FieldMap result;
  EXPECT_TRUE(db_->Read("usertable", "ghost", nullptr, &result).IsNotFound());
}

TEST_F(KvStoreDBTest, ReadWithProjection) {
  ASSERT_TRUE(db_->Insert("t", "k", {{"a", "1"}, {"b", "2"}}).ok());
  std::vector<std::string> fields = {"b"};
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "k", &fields, &result).ok());
  EXPECT_EQ(result.size(), 1u);
  EXPECT_EQ(result["b"], "2");
}

TEST_F(KvStoreDBTest, UpdateMergesFields) {
  ASSERT_TRUE(db_->Insert("t", "k", {{"a", "1"}, {"b", "2"}}).ok());
  ASSERT_TRUE(db_->Update("t", "k", {{"b", "NEW"}}).ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["a"], "1");
  EXPECT_EQ(result["b"], "NEW");
}

TEST_F(KvStoreDBTest, UpdateMissingIsNotFound) {
  EXPECT_TRUE(db_->Update("t", "ghost", {{"a", "1"}}).IsNotFound());
}

TEST_F(KvStoreDBTest, InsertOverwritesExisting) {
  // Insert is the blind full-record write (upsert); CEW relies on this.
  ASSERT_TRUE(db_->Insert("t", "k", {{"a", "1"}}).ok());
  ASSERT_TRUE(db_->Insert("t", "k", {{"a", "2"}}).ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["a"], "2");
}

TEST_F(KvStoreDBTest, DeleteRemoves) {
  ASSERT_TRUE(db_->Insert("t", "k", {{"a", "1"}}).ok());
  ASSERT_TRUE(db_->Delete("t", "k").ok());
  FieldMap result;
  EXPECT_TRUE(db_->Read("t", "k", nullptr, &result).IsNotFound());
  EXPECT_TRUE(db_->Delete("t", "k").IsNotFound());
}

TEST_F(KvStoreDBTest, ScanReturnsOrderedRowsWithKeys) {
  for (int i = 0; i < 20; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "u%03d", i);
    ASSERT_TRUE(db_->Insert("t", buf, {{"n", std::to_string(i)}}).ok());
  }
  std::vector<ScanRow> rows;
  ASSERT_TRUE(db_->Scan("t", "u005", 5, nullptr, &rows).ok());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].key, "u005");
  EXPECT_EQ(rows[4].key, "u009");
  EXPECT_EQ(rows[2].fields["n"], "7");
}

TEST_F(KvStoreDBTest, ScanStopsAtTableBoundary) {
  ASSERT_TRUE(db_->Insert("aaa", "k1", {{"f", "1"}}).ok());
  ASSERT_TRUE(db_->Insert("zzz", "k2", {{"f", "2"}}).ok());
  std::vector<ScanRow> rows;
  ASSERT_TRUE(db_->Scan("aaa", "", 100, nullptr, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, "k1");
}

TEST_F(KvStoreDBTest, TablesAreNamespaced) {
  ASSERT_TRUE(db_->Insert("t1", "k", {{"f", "one"}}).ok());
  ASSERT_TRUE(db_->Insert("t2", "k", {{"f", "two"}}).ok());
  FieldMap r1, r2;
  ASSERT_TRUE(db_->Read("t1", "k", nullptr, &r1).ok());
  ASSERT_TRUE(db_->Read("t2", "k", nullptr, &r2).ok());
  EXPECT_EQ(r1["f"], "one");
  EXPECT_EQ(r2["f"], "two");
}

TEST_F(KvStoreDBTest, TransactionMethodsAreBackwardCompatibleNoOps) {
  // The YCSB+T guarantee: non-transactional bindings accept the wrapping
  // calls and succeed without any transactional behaviour.
  EXPECT_FALSE(db_->Transactional());
  EXPECT_TRUE(db_->Start().ok());
  ASSERT_TRUE(db_->Insert("t", "k", {{"f", "v"}}).ok());
  EXPECT_TRUE(db_->Commit().ok());
  EXPECT_TRUE(db_->Abort().ok());
  FieldMap result;
  EXPECT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
}

}  // namespace
}  // namespace ycsbt
