#include "db/measured_db.h"

#include <gtest/gtest.h>

#include <memory>

#include "db/basic_db.h"
#include "db/kvstore_db.h"

namespace ycsbt {
namespace {

TEST(MeasuredDBTest, RecordsEverySeries) {
  Measurements m;
  MeasuredDB db(std::make_unique<BasicDB>(), &m);
  FieldMap fields = {{"f", "v"}};
  FieldMap result;
  std::vector<ScanRow> rows;
  db.Insert("t", "k", fields);
  db.Read("t", "k", nullptr, &result);
  db.Update("t", "k", fields);
  db.Scan("t", "k", 5, nullptr, &rows);
  db.Delete("t", "k");
  db.Start();
  db.Commit();
  db.Start();
  db.Abort();

  EXPECT_EQ(m.SnapshotOp(opname::kInsert).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kRead).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kUpdate).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kScan).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kDelete).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kStart).operations, 2u);
  EXPECT_EQ(m.SnapshotOp(opname::kCommit).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kAbort).operations, 1u);
}

TEST(MeasuredDBTest, RecordsReturnCodes) {
  Measurements m;
  MeasuredDB db(std::make_unique<KvStoreDB>(std::make_shared<kv::ShardedStore>()),
                &m);
  FieldMap result;
  db.Read("t", "missing", nullptr, &result);  // NotFound
  db.Insert("t", "k", {{"f", "v"}});
  db.Read("t", "k", nullptr, &result);  // OK
  OpStats reads = m.SnapshotOp(opname::kRead);
  EXPECT_EQ(reads.return_counts["NotFound"], 1u);
  EXPECT_EQ(reads.return_counts["OK"], 1u);
}

TEST(MeasuredDBTest, LatencyReflectsInnerCost) {
  Measurements m;
  MeasuredDB db(std::make_unique<BasicDB>(/*simulate_delay_us=*/3000), &m);
  FieldMap result;
  db.Read("t", "k", nullptr, &result);
  OpStats reads = m.SnapshotOp(opname::kRead);
  EXPECT_EQ(reads.operations, 1u);
  EXPECT_GE(reads.average_latency_us, 1000.0);
}

TEST(MeasuredDBTest, PropagatesInnerStatus) {
  Measurements m;
  MeasuredDB db(std::make_unique<KvStoreDB>(std::make_shared<kv::ShardedStore>()),
                &m);
  FieldMap result;
  EXPECT_TRUE(db.Read("t", "missing", nullptr, &result).IsNotFound());
  EXPECT_TRUE(db.Update("t", "missing", {{"f", "v"}}).IsNotFound());
}

TEST(MeasuredDBTest, BoundSinkBuffersUntilFlush) {
  Measurements m;
  MeasuredDB db(std::make_unique<BasicDB>(), &m);
  ThreadSink* sink = m.CreateSink();
  db.BindSink(sink);
  FieldMap result;
  db.Read("t", "k", nullptr, &result);
  db.Start();
  db.Commit();
  // Samples sit in the thread-local sink until the owner flushes.
  EXPECT_EQ(m.SnapshotOp(opname::kRead).operations, 0u);
  sink->Flush();
  EXPECT_EQ(m.SnapshotOp(opname::kRead).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kStart).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kCommit).operations, 1u);
  EXPECT_EQ(m.SnapshotOp(opname::kRead).return_counts["OK"], 1u);
}

TEST(MeasuredDBTest, ForwardsTransactionality) {
  Measurements m;
  MeasuredDB non_tx(std::make_unique<BasicDB>(), &m);
  EXPECT_FALSE(non_tx.Transactional());
}

}  // namespace
}  // namespace ycsbt
