#include "db/field_codec.h"

#include <gtest/gtest.h>

namespace ycsbt {
namespace {

TEST(FieldCodecTest, RoundTripEmpty) {
  FieldMap in, out;
  ASSERT_TRUE(DecodeFields(EncodeFields(in), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FieldCodecTest, RoundTripTypicalRecord) {
  FieldMap in;
  for (int i = 0; i < 10; ++i) {
    in["field" + std::to_string(i)] = std::string(100, static_cast<char>('a' + i));
  }
  FieldMap out;
  ASSERT_TRUE(DecodeFields(EncodeFields(in), &out).ok());
  EXPECT_EQ(in, out);
}

TEST(FieldCodecTest, BinarySafe) {
  FieldMap in;
  in[std::string("k\0ey", 4)] = std::string("\xFF\x00\x01", 3);
  FieldMap out;
  ASSERT_TRUE(DecodeFields(EncodeFields(in), &out).ok());
  EXPECT_EQ(in, out);
}

TEST(FieldCodecTest, ProjectionKeepsOnlyRequested) {
  FieldMap in = {{"a", "1"}, {"b", "2"}, {"c", "3"}};
  std::vector<std::string> projection = {"a", "c"};
  FieldMap out;
  ASSERT_TRUE(DecodeFieldsProjected(EncodeFields(in), &projection, &out).ok());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out["a"], "1");
  EXPECT_EQ(out["c"], "3");
  EXPECT_EQ(out.count("b"), 0u);
}

TEST(FieldCodecTest, NullProjectionKeepsAll) {
  FieldMap in = {{"a", "1"}, {"b", "2"}};
  FieldMap out;
  ASSERT_TRUE(DecodeFieldsProjected(EncodeFields(in), nullptr, &out).ok());
  EXPECT_EQ(out, in);
}

TEST(FieldCodecTest, MergeReplacesNamedFieldsOnly) {
  FieldMap base = {{"a", "1"}, {"b", "2"}, {"c", "3"}};
  FieldMap updates = {{"b", "NEW"}, {"d", "ADDED"}};
  std::string merged;
  ASSERT_TRUE(MergeFields(EncodeFields(base), updates, &merged).ok());
  FieldMap out;
  ASSERT_TRUE(DecodeFields(merged, &out).ok());
  EXPECT_EQ(out["a"], "1");
  EXPECT_EQ(out["b"], "NEW");
  EXPECT_EQ(out["c"], "3");
  EXPECT_EQ(out["d"], "ADDED");
}

TEST(FieldCodecTest, RejectsGarbage) {
  FieldMap out;
  EXPECT_TRUE(DecodeFields("", &out).IsCorruption());
  EXPECT_TRUE(DecodeFields("garbage", &out).IsCorruption());
  std::string truncated = EncodeFields({{"key", "value"}});
  truncated.resize(truncated.size() - 3);
  EXPECT_TRUE(DecodeFields(truncated, &out).IsCorruption());
  std::string padded = EncodeFields({{"k", "v"}}) + "x";
  EXPECT_TRUE(DecodeFields(padded, &out).IsCorruption());
}

}  // namespace
}  // namespace ycsbt
