#include "db/txn_db.h"

#include <gtest/gtest.h>

#include <memory>

#include "txn/client_txn_store.h"
#include "txn/local_2pl.h"

namespace ycsbt {
namespace {

class TxnDBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto base = std::make_shared<kv::ShardedStore>();
    store_ = std::make_shared<txn::ClientTxnStore>(
        base, std::make_shared<txn::HlcTimestampSource>());
    db_ = std::make_unique<TxnDB>(store_);
  }

  std::shared_ptr<txn::ClientTxnStore> store_;
  std::unique_ptr<TxnDB> db_;
};

TEST_F(TxnDBTest, IsTransactional) { EXPECT_TRUE(db_->Transactional()); }

TEST_F(TxnDBTest, AutoCommitOpsWorkOutsideTransactions) {
  ASSERT_TRUE(db_->Insert("t", "k", {{"f", "v"}}).ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "v");
  ASSERT_TRUE(db_->Update("t", "k", {{"f", "w"}}).ok());
  ASSERT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "w");
  ASSERT_TRUE(db_->Delete("t", "k").ok());
  EXPECT_TRUE(db_->Read("t", "k", nullptr, &result).IsNotFound());
}

TEST_F(TxnDBTest, CommittedTransactionIsAtomic) {
  ASSERT_TRUE(db_->Insert("t", "a", {{"f", "1"}}).ok());
  ASSERT_TRUE(db_->Start().ok());
  ASSERT_TRUE(db_->Update("t", "a", {{"f", "2"}}).ok());
  ASSERT_TRUE(db_->Insert("t", "b", {{"f", "3"}}).ok());
  ASSERT_TRUE(db_->Commit().ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "a", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "2");
  ASSERT_TRUE(db_->Read("t", "b", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "3");
}

TEST_F(TxnDBTest, AbortRollsBackEverything) {
  ASSERT_TRUE(db_->Insert("t", "a", {{"f", "1"}}).ok());
  ASSERT_TRUE(db_->Start().ok());
  ASSERT_TRUE(db_->Update("t", "a", {{"f", "2"}}).ok());
  ASSERT_TRUE(db_->Insert("t", "b", {{"f", "3"}}).ok());
  ASSERT_TRUE(db_->Delete("t", "a").ok());
  ASSERT_TRUE(db_->Abort().ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "a", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "1");
  EXPECT_TRUE(db_->Read("t", "b", nullptr, &result).IsNotFound());
}

TEST_F(TxnDBTest, ReadYourWritesInsideTransaction) {
  ASSERT_TRUE(db_->Insert("t", "k", {{"f", "old"}}).ok());
  ASSERT_TRUE(db_->Start().ok());
  ASSERT_TRUE(db_->Update("t", "k", {{"f", "new"}}).ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "new");
  ASSERT_TRUE(db_->Commit().ok());
}

TEST_F(TxnDBTest, UpdateInsideTxnMergesAtomically) {
  ASSERT_TRUE(db_->Insert("t", "k", {{"a", "1"}, {"b", "2"}}).ok());
  ASSERT_TRUE(db_->Start().ok());
  ASSERT_TRUE(db_->Update("t", "k", {{"b", "NEW"}}).ok());
  ASSERT_TRUE(db_->Commit().ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["a"], "1");
  EXPECT_EQ(result["b"], "NEW");
}

TEST_F(TxnDBTest, StateMachineGuards) {
  EXPECT_TRUE(db_->Commit().IsInvalidArgument());  // no txn active
  EXPECT_TRUE(db_->Abort().IsInvalidArgument());
  ASSERT_TRUE(db_->Start().ok());
  EXPECT_TRUE(db_->Start().IsInvalidArgument());  // nested txn
  ASSERT_TRUE(db_->Abort().ok());
  ASSERT_TRUE(db_->Start().ok());  // fresh txn after abort
  ASSERT_TRUE(db_->Commit().ok());
}

TEST_F(TxnDBTest, ScanInsideAndOutsideTransactions) {
  for (int i = 0; i < 10; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "u%02d", i);
    ASSERT_TRUE(db_->Insert("t", buf, {{"n", std::to_string(i)}}).ok());
  }
  std::vector<ScanRow> rows;
  ASSERT_TRUE(db_->Scan("t", "u03", 4, nullptr, &rows).ok());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].key, "u03");

  ASSERT_TRUE(db_->Start().ok());
  ASSERT_TRUE(db_->Scan("t", "", 100, nullptr, &rows).ok());
  EXPECT_EQ(rows.size(), 10u);
  ASSERT_TRUE(db_->Commit().ok());
}

TEST_F(TxnDBTest, CommitFailurePropagatesConflict) {
  ASSERT_TRUE(db_->Insert("t", "k", {{"f", "base"}}).ok());
  // Two bindings over the same store, racing on one key.
  TxnDB other(store_);
  ASSERT_TRUE(db_->Start().ok());
  ASSERT_TRUE(other.Start().ok());
  ASSERT_TRUE(db_->Update("t", "k", {{"f", "mine"}}).ok());
  ASSERT_TRUE(other.Update("t", "k", {{"f", "theirs"}}).ok());
  ASSERT_TRUE(db_->Commit().ok());
  Status s = other.Commit();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsRetryable());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "mine");
}

TEST_F(TxnDBTest, HandleIsReusableAfterFailedCommit) {
  // Regression: whatever Commit()/Abort() return, the binding must shed its
  // transaction handle so the retry loop's next Start() gets a fresh one.
  ASSERT_TRUE(db_->Insert("t", "k", {{"f", "base"}}).ok());
  TxnDB other(store_);
  ASSERT_TRUE(db_->Start().ok());
  ASSERT_TRUE(other.Start().ok());
  ASSERT_TRUE(db_->Update("t", "k", {{"f", "mine"}}).ok());
  ASSERT_TRUE(other.Update("t", "k", {{"f", "theirs"}}).ok());
  ASSERT_TRUE(db_->Commit().ok());
  ASSERT_FALSE(other.Commit().ok());  // lost the race

  // The loser must be able to start and commit a whole new transaction.
  ASSERT_TRUE(other.Start().ok());
  ASSERT_TRUE(other.Update("t", "k", {{"f", "retry"}}).ok());
  ASSERT_TRUE(other.Commit().ok());
  FieldMap result;
  ASSERT_TRUE(db_->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "retry");

  // Same guarantee after an explicit abort.
  ASSERT_TRUE(other.Start().ok());
  ASSERT_TRUE(other.Update("t", "k", {{"f", "junk"}}).ok());
  ASSERT_TRUE(other.Abort().ok());
  ASSERT_TRUE(other.Start().ok());
  ASSERT_TRUE(other.Commit().ok());
}

TEST_F(TxnDBTest, WorksWithLocal2PLEngine) {
  auto base = std::make_shared<kv::ShardedStore>();
  auto engine = std::make_shared<txn::Local2PLStore>(base);
  TxnDB db(engine);
  ASSERT_TRUE(db.Insert("t", "k", {{"f", "1"}}).ok());
  ASSERT_TRUE(db.Start().ok());
  ASSERT_TRUE(db.Update("t", "k", {{"f", "2"}}).ok());
  ASSERT_TRUE(db.Abort().ok());
  FieldMap result;
  ASSERT_TRUE(db.Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "1");
}

}  // namespace
}  // namespace ycsbt
