#include "db/db_factory.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ycsbt {
namespace {

Properties Props(std::initializer_list<std::pair<std::string, std::string>> kv) {
  Properties p;
  for (auto& [k, v] : kv) p.Set(k, v);
  return p;
}

TEST(DBFactoryTest, UnknownNameRejected) {
  DBFactory factory(Props({{"db", "surelynot"}}));
  EXPECT_TRUE(factory.Init().IsInvalidArgument());
  DBFactory txn_factory(Props({{"db", "txn+surelynot"}}));
  EXPECT_TRUE(txn_factory.Init().IsInvalidArgument());
}

TEST(DBFactoryTest, CreateBeforeInitReturnsNull) {
  DBFactory factory(Props({{"db", "memkv"}}));
  EXPECT_EQ(factory.CreateClient(), nullptr);
}

TEST(DBFactoryTest, BasicByDefault) {
  DBFactory factory(Properties{});
  ASSERT_TRUE(factory.Init().ok());
  EXPECT_EQ(factory.db_name(), "basic");
  auto db = factory.CreateClient();
  ASSERT_NE(db, nullptr);
  EXPECT_FALSE(db->Transactional());
}

TEST(DBFactoryTest, MemkvClientsShareTheStore) {
  DBFactory factory(Props({{"db", "memkv"}}));
  ASSERT_TRUE(factory.Init().ok());
  auto db1 = factory.CreateClient();
  auto db2 = factory.CreateClient();
  ASSERT_TRUE(db1->Insert("t", "k", {{"f", "v"}}).ok());
  FieldMap result;
  ASSERT_TRUE(db2->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "v");
}

TEST(DBFactoryTest, InvalidTxnPropertiesRejected) {
  DBFactory bad_iso(
      Props({{"db", "txn+memkv"}, {"txn.isolation", "chaotic"}}));
  EXPECT_TRUE(bad_iso.Init().IsInvalidArgument());
  DBFactory bad_ts(
      Props({{"db", "txn+memkv"}, {"txn.timestamps", "sundial"}}));
  EXPECT_TRUE(bad_ts.Init().IsInvalidArgument());
}

TEST(DBFactoryTest, TxnBindingSharesOneTransactionalStore) {
  DBFactory factory(Props({{"db", "txn+memkv"}}));
  ASSERT_TRUE(factory.Init().ok());
  EXPECT_NE(factory.client_txn_store(), nullptr);
  auto db1 = factory.CreateClient();
  auto db2 = factory.CreateClient();
  EXPECT_TRUE(db1->Transactional());
  ASSERT_TRUE(db1->Start().ok());
  ASSERT_TRUE(db1->Insert("t", "k", {{"f", "v"}}).ok());
  ASSERT_TRUE(db1->Commit().ok());
  FieldMap result;
  ASSERT_TRUE(db2->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "v");
  EXPECT_GE(factory.client_txn_store()->stats().commits, 1u);
}

TEST(DBFactoryTest, TwoPhaseLockingBinding) {
  DBFactory factory(Props({{"db", "2pl+memkv"}}));
  ASSERT_TRUE(factory.Init().ok());
  auto db = factory.CreateClient();
  EXPECT_TRUE(db->Transactional());
  ASSERT_TRUE(db->Start().ok());
  ASSERT_TRUE(db->Insert("t", "k", {{"f", "v"}}).ok());
  ASSERT_TRUE(db->Abort().ok());
  FieldMap result;
  EXPECT_TRUE(db->Read("t", "k", nullptr, &result).IsNotFound());
}

TEST(DBFactoryTest, CloudBindingExposesStore) {
  DBFactory factory(Props({{"db", "was"}, {"cloud.latency_scale", "0.001"}}));
  ASSERT_TRUE(factory.Init().ok());
  ASSERT_NE(factory.cloud_store(), nullptr);
  auto db = factory.CreateClient();
  ASSERT_TRUE(db->Insert("t", "k", {{"f", "v"}}).ok());
  EXPECT_GE(factory.cloud_store()->stats().requests, 1u);
}

TEST(DBFactoryTest, TxnOverCloudComposes) {
  DBFactory factory(Props({{"db", "txn+gcs"}, {"cloud.latency_scale", "0.001"}}));
  ASSERT_TRUE(factory.Init().ok());
  auto db = factory.CreateClient();
  ASSERT_TRUE(db->Start().ok());
  ASSERT_TRUE(db->Insert("t", "k", {{"f", "v"}}).ok());
  ASSERT_TRUE(db->Commit().ok());
  FieldMap result;
  ASSERT_TRUE(db->Read("t", "k", nullptr, &result).ok());
  EXPECT_EQ(result["f"], "v");
}

TEST(DBFactoryTest, OracleTimestampsAccepted) {
  DBFactory factory(Props({{"db", "txn+memkv"},
                           {"txn.timestamps", "oracle"},
                           {"txn.oracle_rtt_us", "1"}}));
  ASSERT_TRUE(factory.Init().ok());
  auto db = factory.CreateClient();
  ASSERT_TRUE(db->Start().ok());
  ASSERT_TRUE(db->Insert("t", "k", {{"f", "v"}}).ok());
  EXPECT_TRUE(db->Commit().ok());
}

TEST(DBFactoryTest, DoubleInitRejected) {
  DBFactory factory(Props({{"db", "memkv"}}));
  ASSERT_TRUE(factory.Init().ok());
  EXPECT_TRUE(factory.Init().IsInvalidArgument());
}

TEST(DBFactoryTest, RawHttpBindingHasLatency) {
  DBFactory factory(Props({{"db", "rawhttp"},
                           {"rawhttp.latency_median_us", "2000"},
                           {"rawhttp.latency_sigma", "0"},
                           {"rawhttp.latency_floor_us", "1500"}}));
  ASSERT_TRUE(factory.Init().ok());
  auto db = factory.CreateClient();
  Stopwatch watch;
  ASSERT_TRUE(db->Insert("t", "k", {{"f", "v"}}).ok());
  EXPECT_GE(watch.ElapsedMicros(), 1000u);
}

}  // namespace
}  // namespace ycsbt
