// The brownout admission controller: breaker-triggered and latency-
// triggered shedding, read-only-first drop policy, the in-flight cap, and
// recovery once the store cools down.

#include "core/brownout.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "kv/store.h"

namespace ycsbt {
namespace core {
namespace {

/// A resilient store whose single breaker the test can trip at will.
std::shared_ptr<kv::ResilientStore> MakeResilient() {
  kv::ResilienceOptions o;
  o.breaker.enabled = true;
  o.breaker.window = 4;
  o.breaker.min_samples = 2;
  o.breaker.failure_ratio = 0.5;
  o.breaker.cooldown_us = 10'000'000;
  o.breaker.cooldown_rejects = 1000;  // stays open for the whole test
  return std::make_shared<kv::ResilientStore>(
      std::make_shared<kv::ShardedStore>(), o, 1);
}

void TripBreaker(kv::ResilientStore& store) {
  for (int i = 0; i < 2; ++i) {
    CircuitBreaker& b = store.breakers()->backend(0);
    CircuitBreaker::Ticket t = b.Admit();
    ASSERT_TRUE(t.admitted);
    b.OnResult(Status::RateLimited("503"), t.probe);
  }
  ASSERT_TRUE(store.AnyBreakerOpen());
}

BrownoutOptions DefaultOn() {
  BrownoutOptions o;
  o.enabled = true;
  o.max_inflight = 2;
  o.drop_read_only = true;
  return o;
}

TEST(BrownoutTest, HealthySystemAdmitsEverything) {
  auto resilient = MakeResilient();
  BrownoutController c(DefaultOn(), resilient.get());
  EXPECT_FALSE(c.BrownedOut());
  EXPECT_FALSE(c.WantsReadOnlyHint());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(c.AdmitTxn(i % 2 == 0));
  EXPECT_EQ(c.sheds(), 0u);
}

TEST(BrownoutTest, OpenBreakerTriggersBrownout) {
  auto resilient = MakeResilient();
  BrownoutController c(DefaultOn(), resilient.get());
  TripBreaker(*resilient);
  EXPECT_TRUE(c.BrownedOut());
  EXPECT_TRUE(c.WantsReadOnlyHint());
}

TEST(BrownoutTest, ReadOnlyTransactionsAreShedFirst) {
  auto resilient = MakeResilient();
  BrownoutController c(DefaultOn(), resilient.get());
  TripBreaker(*resilient);
  // Read-only work is dropped outright...
  EXPECT_FALSE(c.AdmitTxn(/*read_only=*/true));
  EXPECT_FALSE(c.AdmitTxn(/*read_only=*/true));
  // ...while writes are admitted up to the in-flight cap.
  EXPECT_TRUE(c.AdmitTxn(/*read_only=*/false));
  EXPECT_TRUE(c.AdmitTxn(/*read_only=*/false));
  EXPECT_FALSE(c.AdmitTxn(/*read_only=*/false));  // cap of 2 reached
  EXPECT_EQ(c.sheds(), 3u);
  EXPECT_EQ(c.shed_reads(), 2u);
}

TEST(BrownoutTest, FinishedTransactionsFreeInflightSlots) {
  auto resilient = MakeResilient();
  BrownoutOptions o = DefaultOn();
  o.max_inflight = 1;
  BrownoutController c(o, resilient.get());
  TripBreaker(*resilient);
  ASSERT_TRUE(c.AdmitTxn(false));
  EXPECT_FALSE(c.AdmitTxn(false));  // slot taken
  c.OnTxnDone();
  EXPECT_TRUE(c.AdmitTxn(false));  // slot released
}

TEST(BrownoutTest, ATrickleAlwaysFlowsSoTheBreakerCanRecover) {
  // max_inflight must stay > 0 in practice: shedding *everything* while the
  // breaker is open would starve it of the arrivals that burn the cooldown
  // and become probes.  Verify the policy admits writes one at a time.
  auto resilient = MakeResilient();
  BrownoutOptions o = DefaultOn();
  o.max_inflight = 1;
  BrownoutController c(o, resilient.get());
  TripBreaker(*resilient);
  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    if (c.AdmitTxn(false)) {
      ++admitted;
      c.OnTxnDone();
    }
  }
  EXPECT_EQ(admitted, 50);
}

TEST(BrownoutTest, ZeroCapAdmitsWritesUncapped) {
  auto resilient = MakeResilient();
  BrownoutOptions o = DefaultOn();
  o.max_inflight = 0;  // explicit "no cap"
  BrownoutController c(o, resilient.get());
  TripBreaker(*resilient);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(c.AdmitTxn(false));
  EXPECT_FALSE(c.AdmitTxn(true));  // reads still dropped first
}

TEST(BrownoutTest, LatencyTriggerNeedsConsecutiveHotWindows) {
  BrownoutOptions o = DefaultOn();
  o.queue_delay_us = 1000.0;
  o.windows = 2;
  BrownoutController c(o, nullptr);  // no breaker wired: latency only
  c.ReportWindow(5000.0);
  EXPECT_FALSE(c.BrownedOut());  // one hot window is noise
  c.ReportWindow(5000.0);
  EXPECT_TRUE(c.BrownedOut());  // two consecutive: sustained queue delay
  // A cool window resets both the trigger and the streak.
  c.ReportWindow(100.0);
  EXPECT_FALSE(c.BrownedOut());
  c.ReportWindow(5000.0);
  EXPECT_FALSE(c.BrownedOut());
}

TEST(BrownoutTest, LatencyTriggerOffByDefault) {
  BrownoutController c(DefaultOn(), nullptr);  // queue_delay_us = 0
  for (int i = 0; i < 10; ++i) c.ReportWindow(1e9);
  EXPECT_FALSE(c.BrownedOut());
}

TEST(BrownoutTest, FromPropertiesParsesAndClamps) {
  Properties props;
  props.Set("shed.enabled", "true");
  props.Set("shed.max_inflight", "-5");  // clamped to 0
  props.Set("shed.drop_reads", "false");
  props.Set("shed.queue_delay_us", "2500");
  props.Set("shed.windows", "0");  // clamped to 1
  BrownoutOptions o = BrownoutOptions::FromProperties(props);
  EXPECT_TRUE(o.enabled);
  EXPECT_EQ(o.max_inflight, 0);
  EXPECT_FALSE(o.drop_read_only);
  EXPECT_DOUBLE_EQ(o.queue_delay_us, 2500.0);
  EXPECT_EQ(o.windows, 1);
  EXPECT_FALSE(BrownoutOptions::FromProperties(Properties()).enabled);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
