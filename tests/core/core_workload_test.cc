#include "core/core_workload.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "db/basic_db.h"
#include "db/field_codec.h"
#include "db/kvstore_db.h"

namespace ycsbt {
namespace core {
namespace {

Properties Props(std::initializer_list<std::pair<std::string, std::string>> kv) {
  Properties p;
  for (auto& [k, v] : kv) p.Set(k, v);
  return p;
}

TEST(CoreWorkloadTest, InitRejectsBadConfig) {
  CoreWorkload w;
  EXPECT_TRUE(w.Init(Props({{"requestdistribution", "pareto"}})).IsInvalidArgument());
  EXPECT_TRUE(w.Init(Props({{"recordcount", "0"}})).IsInvalidArgument());
  EXPECT_TRUE(
      w.Init(Props({{"readproportion", "0"}, {"updateproportion", "0"}}))
          .IsInvalidArgument());
  EXPECT_TRUE(
      w.Init(Props({{"fieldlengthdistribution", "normal"}})).IsInvalidArgument());
  EXPECT_TRUE(
      w.Init(Props({{"scanlengthdistribution", "normal"}})).IsInvalidArgument());
}

TEST(CoreWorkloadTest, HashedVsOrderedKeys) {
  CoreWorkload hashed;
  ASSERT_TRUE(hashed.Init(Props({{"insertorder", "hashed"}})).ok());
  CoreWorkload ordered;
  ASSERT_TRUE(ordered.Init(Props({{"insertorder", "ordered"}})).ok());
  EXPECT_EQ(ordered.BuildKeyName(7), "user7");
  EXPECT_NE(hashed.BuildKeyName(7), "user7");
  // Deterministic either way.
  EXPECT_EQ(hashed.BuildKeyName(7), hashed.BuildKeyName(7));
}

TEST(CoreWorkloadTest, ZeroPaddingWidensKeys) {
  CoreWorkload w;
  ASSERT_TRUE(
      w.Init(Props({{"insertorder", "ordered"}, {"zeropadding", "8"}})).ok());
  EXPECT_EQ(w.BuildKeyName(42), "user00000042");
}

TEST(CoreWorkloadTest, LoadPhaseInsertsExactlyRecordcountDistinctKeys) {
  CoreWorkload w;
  ASSERT_TRUE(w.Init(Props({{"recordcount", "250"}, {"fieldcount", "2"}})).ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < w.record_count(); ++i) {
    ASSERT_TRUE(w.DoInsert(db, state.get()));
  }
  EXPECT_EQ(store->Count(), 250u);
}

TEST(CoreWorkloadTest, OperationMixMatchesProportions) {
  CoreWorkload w;
  ASSERT_TRUE(w.Init(Props({{"recordcount", "100"},
                            {"readproportion", "0.6"},
                            {"updateproportion", "0.2"},
                            {"scanproportion", "0.1"},
                            {"insertproportion", "0.1"},
                            {"maxscanlength", "10"}}))
                  .ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));

  std::map<std::string, int> ops;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok) << r.op;
    ++ops[r.op];
  }
  EXPECT_NEAR(ops["READ"], kOps * 0.6, kOps * 0.03);
  EXPECT_NEAR(ops["UPDATE"], kOps * 0.2, kOps * 0.03);
  EXPECT_NEAR(ops["SCAN"], kOps * 0.1, kOps * 0.02);
  EXPECT_NEAR(ops["INSERT"], kOps * 0.1, kOps * 0.02);
}

TEST(CoreWorkloadTest, AllOperationTypesSucceedAgainstRealStore) {
  CoreWorkload w;
  ASSERT_TRUE(w.Init(Props({{"recordcount", "50"},
                            {"readproportion", "0.2"},
                            {"updateproportion", "0.2"},
                            {"scanproportion", "0.2"},
                            {"insertproportion", "0.1"},
                            {"readmodifywriteproportion", "0.2"},
                            {"deleteproportion", "0.1"},
                            {"maxscanlength", "5"}}))
                  .ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < 50; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));
  int failures = 0;
  for (int i = 0; i < 2000; ++i) {
    // Deletes may race nothing here (single thread), but reads of previously
    // deleted keys legitimately fail; count rather than assert.
    if (!w.DoTransaction(db, state.get()).ok) ++failures;
  }
  // Reads/updates of deleted keys are the only failure mode and should be a
  // modest fraction under this mix.
  EXPECT_LT(failures, 1000);
}

TEST(CoreWorkloadTest, RequestDistributionsProduceValidKeys) {
  for (const char* dist :
       {"uniform", "zipfian", "latest", "hotspot", "sequential", "exponential"}) {
    CoreWorkload w;
    ASSERT_TRUE(w.Init(Props({{"recordcount", "100"},
                              {"requestdistribution", dist},
                              {"readproportion", "1.0"},
                              {"updateproportion", "0"}}))
                    .ok())
        << dist;
    auto store = std::make_shared<kv::ShardedStore>();
    KvStoreDB db(store);
    auto state = w.InitThread(0, 1);
    for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));
    for (int i = 0; i < 500; ++i) {
      TxnOpResult r = w.DoTransaction(db, state.get());
      EXPECT_TRUE(r.ok) << dist << " read failed (key outside loaded range?)";
    }
  }
}

TEST(CoreWorkloadTest, FieldLengthDistributionsRespectBounds) {
  for (const char* dist : {"constant", "uniform", "zipfian"}) {
    CoreWorkload w;
    ASSERT_TRUE(w.Init(Props({{"recordcount", "10"},
                              {"fieldcount", "3"},
                              {"fieldlength", "64"},
                              {"minfieldlength", "8"},
                              {"fieldlengthdistribution", dist}}))
                    .ok());
    auto store = std::make_shared<kv::ShardedStore>();
    KvStoreDB db(store);
    auto state = w.InitThread(0, 1);
    ASSERT_TRUE(w.DoInsert(db, state.get()));
    std::vector<kv::ScanEntry> entries;
    ASSERT_TRUE(store->Scan("", 10, &entries).ok());
    ASSERT_EQ(entries.size(), 1u);
    FieldMap fields;
    ASSERT_TRUE(DecodeFields(entries[0].value, &fields).ok());
    ASSERT_EQ(fields.size(), 3u);
    for (auto& [name, value] : fields) {
      EXPECT_LE(value.size(), 64u) << dist;
      if (std::string(dist) != "constant") {
        EXPECT_GE(value.size(), 1u);
      }
    }
  }
}

TEST(CoreWorkloadTest, DataIntegrityRequiresConstantFieldLength) {
  CoreWorkload w;
  EXPECT_TRUE(w.Init(Props({{"dataintegrity", "true"},
                            {"fieldlengthdistribution", "uniform"}}))
                  .IsInvalidArgument());
  EXPECT_TRUE(w.Init(Props({{"dataintegrity", "true"}})).ok());
}

TEST(CoreWorkloadTest, DataIntegrityPassesOnCleanStore) {
  CoreWorkload w;
  ASSERT_TRUE(w.Init(Props({{"recordcount", "100"},
                            {"dataintegrity", "true"},
                            {"fieldcount", "3"},
                            {"readproportion", "0.6"},
                            {"updateproportion", "0.2"},
                            {"readmodifywriteproportion", "0.2"}}))
                  .ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));
  for (int i = 0; i < 3000; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok) << r.op << " flagged a clean record";
  }
  EXPECT_EQ(w.data_integrity_errors(), 0u);
}

TEST(CoreWorkloadTest, DataIntegrityDetectsCorruption) {
  CoreWorkload w;
  ASSERT_TRUE(w.Init(Props({{"recordcount", "50"},
                            {"dataintegrity", "true"},
                            {"fieldcount", "2"},
                            {"readproportion", "1.0"},
                            {"updateproportion", "0"}}))
                  .ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < 50; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));

  // Corrupt every record in place (bit rot / buggy store).
  std::vector<kv::ScanEntry> entries;
  ASSERT_TRUE(store->Scan("", 1000, &entries).ok());
  ASSERT_EQ(entries.size(), 50u);
  for (const auto& entry : entries) {
    FieldMap fields;
    ASSERT_TRUE(DecodeFields(entry.value, &fields).ok());
    fields.begin()->second[0] ^= 1;
    ASSERT_TRUE(store->Put(entry.key, EncodeFields(fields)).ok());
  }

  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!w.DoTransaction(db, state.get()).ok) ++failures;
  }
  EXPECT_EQ(failures, 200) << "every read must flag the corruption";
  EXPECT_EQ(w.data_integrity_errors(), 200u);
}

TEST(CoreWorkloadTest, DataIntegritySurvivesUpdatesAndInserts) {
  // Updates and run-phase inserts must write the same deterministic values,
  // or later reads would flag them.
  CoreWorkload w;
  ASSERT_TRUE(w.Init(Props({{"recordcount", "50"},
                            {"dataintegrity", "true"},
                            {"fieldcount", "2"},
                            {"writeallfields", "false"},
                            {"readproportion", "0.4"},
                            {"updateproportion", "0.3"},
                            {"insertproportion", "0.1"},
                            {"readmodifywriteproportion", "0.2"},
                            {"requestdistribution", "uniform"}}))
                  .ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < 50; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));
  for (int i = 0; i < 2000; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok) << r.op;
  }
  EXPECT_EQ(w.data_integrity_errors(), 0u);
}

TEST(CoreWorkloadTest, InsertsDuringRunBecomeReadable) {
  CoreWorkload w;
  ASSERT_TRUE(w.Init(Props({{"recordcount", "20"},
                            {"operationcount", "1000"},
                            {"requestdistribution", "latest"},
                            {"readproportion", "0.5"},
                            {"updateproportion", "0"},
                            {"insertproportion", "0.5"}}))
                  .ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));
  for (int i = 0; i < 1000; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok) << "op " << r.op << " at " << i;
  }
  EXPECT_GT(store->Count(), 20u);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
