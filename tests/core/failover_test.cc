// Failover chaos acceptance: the Closed Economy Workload on the replicated
// cloud binding with a scripted leader crash mid-run.  The headline claims:
// with the retry loop settling ambiguous commits on the new leader, the CEW
// anomaly score stays EXACTLY zero across the failover in `leader` and
// `quorum` read modes — and goes measurably nonzero in `stale` mode on the
// very same seed, because the validation sweep audits a lagging replica
// view.  Count-based election/lag scripting makes every counter replay
// identically for the same seed.

#include <gtest/gtest.h>

#include <string>

#include "core/benchmark.h"
#include "db/db_factory.h"
#include "measurement/exporter.h"

namespace ycsbt {
namespace core {
namespace {

/// CEW over the client-coordinated txn pipeline on the replicated WAS
/// profile, latency scaled down to test speed; everything count-based.
Properties FailoverBase(const std::string& read_mode) {
  Properties p;
  p.Set("db", "txn+was");
  p.Set("workload", "closed_economy");
  p.Set("seed", "42");
  p.Set("threads", "1");
  p.Set("recordcount", "100");
  p.Set("totalcash", "100000");
  p.Set("operationcount", "1200");
  p.Set("requestdistribution", "zipfian");
  p.Set("readproportion", "0.3");
  p.Set("readmodifywriteproportion", "0.4");
  p.Set("updateproportion", "0.1");
  p.Set("deleteproportion", "0.1");
  p.Set("insertproportion", "0.1");
  p.Set("txn.lease_us", "0");  // abandoned locks recoverable immediately
  p.Set("cloud.latency_scale", "0.01");
  p.Set("cloud.rate_limit", "0");  // uncapped: failover, not saturation
  p.Set("cloud.regions", "3");
  p.Set("cloud.read_mode", read_mode);
  p.Set("cloud.replica_lag_ops", "32");
  p.Set("cloud.local_region", "1");
  p.Set("cloud.fault.leader_crash_at", "400");
  p.Set("cloud.fault.election_ops", "24");
  p.Set("cloud.fault.lost_tail", "4");
  p.Set("retry.max_attempts", "40");
  p.Set("retry.backoff_initial_us", "20");
  p.Set("retry.backoff_max_us", "500");
  p.Set("retry.throttle_cooldown_us", "100");
  return p;
}

void RunFailover(const Properties& p, RunResult* result,
                 std::string* report = nullptr) {
  DBFactory factory(p);
  ASSERT_TRUE(factory.Init().ok());
  ASSERT_NE(factory.replicated_store(), nullptr)
      << "cloud.regions > 1 must install the replicated veneer";
  ASSERT_TRUE(RunBenchmarkWithFactory(p, &factory, result, report).ok());
}

TEST(FailoverTest, LeaderModeAnomalyIsExactlyZeroAcrossTheFailover) {
  Properties p = FailoverBase("leader");
  RunResult result;
  std::string report;
  RunFailover(p, &result, &report);

  // The scripted outage actually happened mid-run...
  EXPECT_TRUE(result.replication_enabled);
  EXPECT_EQ(result.failovers, 1u);
  EXPECT_GT(result.not_leader_rejects, 0u);
  EXPECT_GT(result.lost_tail_writes, 0u)
      << "the crashing leader must strand an unacked tail";
  EXPECT_GT(result.replica_applies, 0u);
  EXPECT_GT(result.retries, 0u) << "NotLeader must drive the retry loop";
  EXPECT_GT(result.committed, 0u);
  EXPECT_EQ(result.operations, result.committed + result.failed);

  // ...and still: not a cent missing.  Ambiguous lost-tail commits were
  // settled by TSR re-read on the new leader.
  EXPECT_TRUE(result.validation.performed);
  EXPECT_TRUE(result.validation.passed)
      << "a leader failover must not corrupt the closed economy";
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);

  // The new series and summary lines reach the text exporter...
  EXPECT_NE(report.find("[FAILOVERS], "), std::string::npos) << report;
  EXPECT_NE(report.find("[NOT-LEADER REJECTS], "), std::string::npos);
  EXPECT_NE(report.find("[LOST-TAIL WRITES], "), std::string::npos);
  EXPECT_NE(report.find("[REPLICA APPLIES], "), std::string::npos);
  EXPECT_NE(report.find("[NOT-LEADER], Operations, "), std::string::npos);
  EXPECT_NE(report.find("[FAILOVER-ELECTION], Operations, "), std::string::npos);
  EXPECT_NE(report.find("[FAILOVER-LOST-TAIL], Operations, "), std::string::npos);
  EXPECT_NE(report.find("[REPLICA-LAG], Operations, "), std::string::npos);

  // ...and the JSON exporter.
  std::string json = JsonExporter::Export(result.MakeSummary(), result.op_stats);
  EXPECT_NE(json.find("\"FAILOVERS\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"NOT-LEADER REJECTS\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"NOT-LEADER\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"REPLICA-LAG\""), std::string::npos);
}

TEST(FailoverTest, QuorumModeAnomalyIsExactlyZeroAcrossTheFailover) {
  Properties p = FailoverBase("quorum");
  RunResult result;
  RunFailover(p, &result);

  EXPECT_EQ(result.failovers, 1u);
  EXPECT_GT(result.lost_tail_writes, 0u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_TRUE(result.validation.performed);
  EXPECT_TRUE(result.validation.passed);
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);
}

TEST(FailoverTest, StaleModeAnomalyIsMeasurablyNonzeroOnTheSameSeed) {
  // Identical seed, identical script — only the read routing changes.  The
  // validation sweep now audits region 1's lagging view, where recent
  // transfers are torn per key, so the CEW anomaly must be strictly
  // positive: exactly the paper's point that a metric (not a boolean) lets
  // a benchmark *rank* how badly a consistency mode fails.
  Properties p = FailoverBase("stale");
  RunResult result;
  RunFailover(p, &result);

  EXPECT_EQ(result.failovers, 1u);
  EXPECT_GT(result.stale_reads, 0u) << "reads must be served from the lag view";
  EXPECT_TRUE(result.validation.performed);
  EXPECT_FALSE(result.validation.passed)
      << "a lagging replica view must not audit clean";
  EXPECT_GT(result.validation.anomaly_score, 0.0);
}

TEST(FailoverTest, SameSeedReplaysIdenticalFailoverCounters) {
  Properties p = FailoverBase("leader");
  RunResult a, b;
  RunFailover(p, &a);
  RunFailover(p, &b);

  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.not_leader_rejects, b.not_leader_rejects);
  EXPECT_EQ(a.lost_tail_writes, b.lost_tail_writes);
  EXPECT_EQ(a.stale_reads, b.stale_reads);
  EXPECT_EQ(a.replica_applies, b.replica_applies);
  EXPECT_EQ(a.partition_rejects, b.partition_rejects);
  EXPECT_EQ(a.operations, b.operations);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_GT(a.not_leader_rejects, 0u);
  EXPECT_TRUE(a.validation.passed);
  EXPECT_TRUE(b.validation.passed);
}

TEST(FailoverTest, ElectionPauseIsProgressToTheWatchdog) {
  // The satellite-2 proof: a wall-clock election spanning two full status
  // windows freezes every client thread in the retry loop, waiting out the
  // rejection's retry_after_us hint.  Retry attempts count as watchdog
  // progress, so the pause must produce ZERO stall flags.
  Properties p = FailoverBase("leader");
  p.Set("threads", "4");
  p.Set("operationcount", "2000");
  p.Set("cloud.fault.leader_crash_at", "100");
  p.Set("cloud.fault.election_ops", "0");
  p.Set("cloud.fault.election_us", "250000");  // 2.5 status windows
  p.Set("cloud.fault.lost_tail", "0");
  p.Set("status.interval", "0.1");
  p.Set("status.stall_windows", "2");
  RunResult result;
  RunFailover(p, &result);

  EXPECT_EQ(result.failovers, 1u);
  EXPECT_GT(result.not_leader_rejects, 0u);
  EXPECT_EQ(result.stall_events, 0u)
      << "riding out an election is degradation, not a stall";
  EXPECT_GT(result.committed, 0u);
  EXPECT_TRUE(result.validation.passed);
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
