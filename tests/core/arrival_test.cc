#include "core/arrival.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/latency_model.h"
#include "common/property_registry.h"
#include "core/runner.h"
#include "core/suite.h"
#include "db/db_factory.h"

namespace ycsbt {
namespace core {
namespace {

Properties Props(std::initializer_list<std::pair<std::string, std::string>> kv) {
  Properties p;
  for (auto& [k, v] : kv) p.Set(k, v);
  return p;
}

ArrivalOptions RateOnly(double rate) {
  ArrivalOptions options;
  options.rate = rate;
  return options;
}

std::vector<uint64_t> FirstArrivals(ArrivalSchedule* schedule, size_t n) {
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(schedule->PeekNs());
    schedule->Pop();
  }
  return out;
}

// --- options parsing ---

TEST(ArrivalOptionsTest, DefaultsAreClosedLoop) {
  ArrivalOptions options;
  ASSERT_TRUE(ArrivalOptions::FromProperties(Properties(), &options).ok());
  EXPECT_FALSE(options.open_loop());
  EXPECT_EQ(options.process, ArrivalOptions::Process::kExponential);
  EXPECT_EQ(options.shape, ArrivalOptions::Shape::kConstant);
  EXPECT_EQ(options.max_backlog, 1024u);
}

TEST(ArrivalOptionsTest, ParsesTheFullNamespace) {
  ArrivalOptions options;
  Properties props = Props({{"arrival.rate", "500"},
                            {"arrival.process", "fixed"},
                            {"arrival.max_backlog", "16"},
                            {"arrival.shape", "flash_crowd"},
                            {"arrival.flash.at_s", "0.5"},
                            {"arrival.flash.duration_s", "0.25"},
                            {"arrival.flash.multiplier", "8"}});
  ASSERT_TRUE(ArrivalOptions::FromProperties(props, &options).ok());
  EXPECT_TRUE(options.open_loop());
  EXPECT_DOUBLE_EQ(options.rate, 500.0);
  EXPECT_EQ(options.process, ArrivalOptions::Process::kFixed);
  EXPECT_EQ(options.max_backlog, 16u);
  EXPECT_EQ(options.shape, ArrivalOptions::Shape::kFlashCrowd);
  EXPECT_DOUBLE_EQ(options.flash_at_s, 0.5);
  EXPECT_DOUBLE_EQ(options.flash_duration_s, 0.25);
  EXPECT_DOUBLE_EQ(options.flash_multiplier, 8.0);
}

TEST(ArrivalOptionsTest, RejectsInvalidValues) {
  ArrivalOptions options;
  EXPECT_TRUE(ArrivalOptions::FromProperties(Props({{"arrival.rate", "-1"}}),
                                             &options)
                  .IsInvalidArgument());
  EXPECT_TRUE(ArrivalOptions::FromProperties(
                  Props({{"arrival.process", "uniform"}}), &options)
                  .IsInvalidArgument());
  EXPECT_TRUE(ArrivalOptions::FromProperties(
                  Props({{"arrival.shape", "sawtooth"}}), &options)
                  .IsInvalidArgument());
  EXPECT_TRUE(ArrivalOptions::FromProperties(
                  Props({{"arrival.max_backlog", "0"}}), &options)
                  .IsInvalidArgument());
  EXPECT_TRUE(ArrivalOptions::FromProperties(
                  Props({{"arrival.diurnal.low_frac", "1.5"}}), &options)
                  .IsInvalidArgument());
}

TEST(ArrivalOptionsTest, EveryArrivalKeyIsRegistered) {
  for (const char* key :
       {"arrival.rate", "arrival.process", "arrival.max_backlog",
        "arrival.shape", "arrival.diurnal.period_s", "arrival.diurnal.low_frac",
        "arrival.flash.at_s", "arrival.flash.duration_s",
        "arrival.flash.multiplier", "arrival.hotspot_shift.at_s",
        "arrival.hotspot_shift.multiplier"}) {
    EXPECT_TRUE(IsKnownPropertyKey(key)) << key;
    EXPECT_TRUE(IsKnownPropertyKey(std::string("sweep.") + key)) << key;
  }
}

// --- traffic shapes ---

TEST(ArrivalRateAtTest, ConstantShapeIsFlat) {
  ArrivalOptions options = RateOnly(100.0);
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 42.0), 100.0);
}

TEST(ArrivalRateAtTest, DiurnalStartsAtTroughPeaksAtHalfPeriod) {
  ArrivalOptions options = RateOnly(100.0);
  options.shape = ArrivalOptions::Shape::kDiurnal;
  options.diurnal_period_s = 10.0;
  options.diurnal_low_frac = 0.25;
  EXPECT_NEAR(ArrivalRateAt(options, 0.0), 25.0, 1e-9);
  EXPECT_NEAR(ArrivalRateAt(options, 5.0), 100.0, 1e-9);
  EXPECT_NEAR(ArrivalRateAt(options, 10.0), 25.0, 1e-9);
  // Monotone rise over the first half period.
  EXPECT_LT(ArrivalRateAt(options, 1.0), ArrivalRateAt(options, 2.5));
  EXPECT_LT(ArrivalRateAt(options, 2.5), ArrivalRateAt(options, 4.0));
}

TEST(ArrivalRateAtTest, FlashCrowdIsATransientWindow) {
  ArrivalOptions options = RateOnly(100.0);
  options.shape = ArrivalOptions::Shape::kFlashCrowd;
  options.flash_at_s = 2.0;
  options.flash_duration_s = 1.0;
  options.flash_multiplier = 4.0;
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 1.9), 100.0);
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 2.0), 400.0);
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 2.9), 400.0);
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 3.0), 100.0);
}

TEST(ArrivalRateAtTest, HotspotShiftIsASustainedStep) {
  ArrivalOptions options = RateOnly(100.0);
  options.shape = ArrivalOptions::Shape::kHotspotShift;
  options.shift_at_s = 1.5;
  options.shift_multiplier = 2.0;
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 1.5), 200.0);
  EXPECT_DOUBLE_EQ(ArrivalRateAt(options, 100.0), 200.0);
}

TEST(ArrivalRateAtTest, RateIsClampedAwayFromZero) {
  ArrivalOptions options = RateOnly(100.0);
  options.shape = ArrivalOptions::Shape::kDiurnal;
  options.diurnal_low_frac = 0.0;  // trough would be rate zero
  EXPECT_GT(ArrivalRateAt(options, 0.0), 0.0);
}

// --- schedules ---

TEST(ArrivalScheduleTest, SameSeedReplaysTheSameSchedule) {
  ArrivalOptions options = RateOnly(1000.0);
  ArrivalSchedule a(options, 42, 0, 2);
  ArrivalSchedule b(options, 42, 0, 2);
  EXPECT_EQ(FirstArrivals(&a, 200), FirstArrivals(&b, 200));
}

TEST(ArrivalScheduleTest, ThreadsAndSeedsDrawDistinctSchedules) {
  ArrivalOptions options = RateOnly(1000.0);
  ArrivalSchedule thread0(options, 42, 0, 2);
  ArrivalSchedule thread1(options, 42, 1, 2);
  ArrivalSchedule other_seed(options, 43, 0, 2);
  std::vector<uint64_t> base = FirstArrivals(&thread0, 50);
  EXPECT_NE(base, FirstArrivals(&thread1, 50));
  EXPECT_NE(base, FirstArrivals(&other_seed, 50));
}

TEST(ArrivalScheduleTest, ArrivalsAreStrictlyIncreasing) {
  ArrivalOptions options = RateOnly(5000.0);
  ArrivalSchedule schedule(options, 7, 0, 1);
  uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t next = schedule.PeekNs();
    EXPECT_GT(next, prev);
    prev = next;
    schedule.Pop();
  }
}

TEST(ArrivalScheduleTest, ExponentialMeanGapMatchesTheRate) {
  ArrivalOptions options = RateOnly(1000.0);  // mean gap 1 ms
  ArrivalSchedule schedule(options, 42, 0, 1);
  const int kDraws = 20000;
  std::vector<uint64_t> arrivals = FirstArrivals(&schedule, kDraws);
  double mean_gap_ns =
      static_cast<double>(arrivals.back()) / static_cast<double>(kDraws);
  EXPECT_NEAR(mean_gap_ns, 1e6, 1e5);  // within 10% of 1 ms
}

TEST(ArrivalScheduleTest, FixedProcessIsEvenlySpaced) {
  ArrivalOptions options = RateOnly(1000.0);
  options.process = ArrivalOptions::Process::kFixed;
  ArrivalSchedule schedule(options, 42, 0, 1);
  std::vector<uint64_t> arrivals = FirstArrivals(&schedule, 10);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(arrivals[i] - arrivals[i - 1]), 1e6, 10.0);
  }
}

TEST(ArrivalScheduleTest, FixedProcessStaggersThreads) {
  ArrivalOptions options = RateOnly(1000.0);
  options.process = ArrivalOptions::Process::kFixed;
  // Aggregate 1000/s over 4 threads: thread t's stream starts offset by
  // t/1000 s, so the merged stream is evenly spaced, not 4-wide bursts.
  ArrivalSchedule t0(options, 42, 0, 4);
  ArrivalSchedule t1(options, 42, 1, 4);
  uint64_t first0 = t0.PeekNs();
  uint64_t first1 = t1.PeekNs();
  EXPECT_NEAR(static_cast<double>(first1 - first0), 1e6, 10.0);
}

TEST(ArrivalScheduleTest, FlashCrowdCompressesGapsDuringTheFlash) {
  ArrivalOptions options = RateOnly(200.0);
  options.process = ArrivalOptions::Process::kFixed;
  options.shape = ArrivalOptions::Shape::kFlashCrowd;
  options.flash_at_s = 1.0;
  options.flash_duration_s = 1.0;
  options.flash_multiplier = 4.0;
  ArrivalSchedule schedule(options, 42, 0, 1);
  uint64_t in_base = 0, in_flash = 0;
  uint64_t prev = 0;
  for (int i = 0; i < 2000 && schedule.PeekNs() < 3'000'000'000ull; ++i) {
    uint64_t at = schedule.PeekNs();
    if (prev != 0) {
      if (at < 1'000'000'000ull) {
        ++in_base;
      } else if (at < 2'000'000'000ull) {
        ++in_flash;
      }
    }
    prev = at;
    schedule.Pop();
  }
  // 200/s for the first second, 800/s during the flash second.
  EXPECT_NEAR(static_cast<double>(in_base), 200.0, 5.0);
  EXPECT_NEAR(static_cast<double>(in_flash), 800.0, 5.0);
}

// --- runner integration ---

/// Workload whose every transaction takes a configurable service time; the
/// knob that makes the offered arrival rate exceed capacity on demand.
class SlowWorkload : public Workload {
 public:
  Status Init(const Properties&) override { return Status::OK(); }

  bool DoInsert(DB&, ThreadState*) override { return true; }

  TxnOpResult DoTransaction(DB&, ThreadState*) override {
    transactions.fetch_add(1, std::memory_order_relaxed);
    if (service_us > 0) SleepMicros(service_us);
    return TxnOpResult{true, "SLOW"};
  }

  uint64_t record_count() const override { return 1; }

  uint64_t service_us = 0;
  std::atomic<uint64_t> transactions{0};
};

class ArrivalRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    factory_ = std::make_unique<DBFactory>(Props({{"db", "memkv"}}));
    ASSERT_TRUE(factory_->Init().ok());
  }

  std::unique_ptr<DBFactory> factory_;
  Measurements measurements_;
};

TEST_F(ArrivalRunnerTest, IntendedStartLatencyExposesCoordinatedOmission) {
  SlowWorkload w;
  w.service_us = 4000;  // 250/s capacity against a 1000/s offered rate
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 1;
  run.operation_count = 60;
  run.arrival.rate = 1000.0;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());

  ASSERT_TRUE(result.arrival_enabled);
  OpStats actual = measurements_.SnapshotOp("TX-SLOW");
  OpStats intended = measurements_.SnapshotOp("TX-SLOW-INTENDED");
  ASSERT_EQ(actual.operations, 60u);
  ASSERT_EQ(intended.operations, 60u);
  // The backlog grows for the whole run, so latency measured from the
  // *intended* start must sit strictly above the actual-start series — the
  // coordinated-omission gap the closed-loop stopwatch cannot see.
  EXPECT_GT(intended.average_latency_us, actual.average_latency_us);
  EXPECT_GT(intended.p99_latency_us, actual.p99_latency_us);
  EXPECT_GT(result.sched_lag_max_us, 0u);
  EXPECT_GT(result.backlog_peak, 0u);
  // The scheduler-lag series recorded one sample per executed transaction.
  EXPECT_EQ(measurements_.SnapshotOp("SCHED-LAG").operations, 60u);
}

TEST_F(ArrivalRunnerTest, KeepingUpMeansNoLagAndNoDrops) {
  SlowWorkload w;  // instant service
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 2;
  run.operation_count = 100;
  run.arrival.rate = 2000.0;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_EQ(result.operations, 100u);
  EXPECT_EQ(result.arrival_drops, 0u);
  // ~50 arrivals per thread at 1000/s each: the run should take ~50 ms.
  EXPECT_GT(result.runtime_ms, 25.0);
}

TEST_F(ArrivalRunnerTest, BacklogOverflowDropsConsumeQuota) {
  SlowWorkload w;
  w.service_us = 3000;  // ~333/s capacity against 4000/s offered
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 1;
  run.operation_count = 120;
  run.arrival.rate = 4000.0;
  run.arrival.max_backlog = 4;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());

  // Every quota slot was either executed or dropped — overload cannot make
  // the run overshoot its budget or spin forever.
  EXPECT_GT(result.arrival_drops, 0u);
  EXPECT_EQ(result.operations + result.arrival_drops, 120u);
  EXPECT_EQ(w.transactions.load(), result.operations);
  EXPECT_EQ(measurements_.SnapshotOp("ARRIVAL-DROP").operations,
            result.arrival_drops);
  EXPECT_LE(result.backlog_peak, 4u);
  // The drops surface in the exported summary.
  RunSummary summary = result.MakeSummary();
  EXPECT_TRUE(summary.open_loop);
  bool saw_drops = false;
  for (const auto& [key, value] : summary.extra) {
    if (key == "ARRIVAL DROPS") {
      saw_drops = true;
      EXPECT_EQ(value, std::to_string(result.arrival_drops));
    }
  }
  EXPECT_TRUE(saw_drops);
}

TEST_F(ArrivalRunnerTest, FullBacklogFlipsTheBrownoutShedPath) {
  SlowWorkload w;
  w.service_us = 3000;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 1;
  run.operation_count = 120;
  run.arrival.rate = 4000.0;
  run.arrival.max_backlog = 4;
  run.shed.enabled = true;
  run.shed.drop_read_only = false;
  run.shed.max_inflight = 0;  // only the backlog trigger sheds here
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  // Once the backlog fills, admission flips to the shed path: some quota
  // slots are shed instead of executed (plus the drops from overflow).
  EXPECT_TRUE(result.shed_enabled);
  EXPECT_GT(result.shed_txns + result.arrival_drops, 0u);
  EXPECT_EQ(w.transactions.load(), result.operations);
}

TEST_F(ArrivalRunnerTest, OpenLoopIntervalsCarryArrivalColumns) {
  SlowWorkload w;
  w.service_us = 2000;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 1;
  run.operation_count = 80;
  run.arrival.rate = 2000.0;
  run.status_interval_seconds = 0.05;
  run.status_callback = [](double, uint64_t, double) {};
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  ASSERT_FALSE(result.intervals.empty());
  double max_lag = 0.0;
  for (const auto& window : result.intervals) {
    max_lag = std::max(max_lag, window.sched_lag_avg_us);
  }
  EXPECT_GT(max_lag, 0.0);  // the scheduler fell behind and the series saw it
}

TEST_F(ArrivalRunnerTest, SameSeedRunsReplayTheDropAccounting) {
  RunResult first, second;
  for (RunResult* result : {&first, &second}) {
    SlowWorkload w;
    w.service_us = 2000;
    Measurements measurements;
    WorkloadRunner runner(factory_.get(), &w, &measurements);
    RunOptions run;
    run.threads = 1;
    run.operation_count = 80;
    run.arrival.rate = 4000.0;
    run.arrival.max_backlog = 8;
    ASSERT_TRUE(runner.Run(run, result).ok());
  }
  // The arrival schedule is seeded, so the executed/dropped split of two
  // same-seed overload runs matches (service time is wall-clock, so exact
  // per-op timing may differ, but the quota accounting must hold in both).
  EXPECT_EQ(first.operations + first.arrival_drops, 80u);
  EXPECT_EQ(second.operations + second.arrival_drops, 80u);
}

// --- suite integration ---

TEST(ArrivalSuiteTest, SweepArrivalRateExpandsIntoOpenLoopRuns) {
  Properties file;
  file.Set("suite.name", "openloop");
  file.Set("base.db", "memkv");
  file.Set("base.recordcount", "10");
  file.Set("base.operationcount", "50");
  file.Set("sweep.arrival.rate", "100,200,400");
  SuiteSpec spec;
  ASSERT_TRUE(SuiteSpec::Parse(file, &spec).ok());
  std::vector<SuiteRun> runs = spec.Expand();
  ASSERT_EQ(runs.size(), 3u);
  std::vector<std::string> expected = {"100", "200", "400"};
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].props.Get("arrival.rate", ""), expected[i]);
    // Each point parses into an open-loop options block.
    ArrivalOptions options;
    ASSERT_TRUE(ArrivalOptions::FromProperties(runs[i].props, &options).ok());
    EXPECT_TRUE(options.open_loop());
    // The sweep leaf names the run, so result directories stay unique.
    EXPECT_NE(runs[i].name.find("rate" + expected[i]), std::string::npos)
        << runs[i].name;
  }
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
