#include "core/write_skew_workload.h"

#include <gtest/gtest.h>

#include "core/benchmark.h"
#include "db/kvstore_db.h"
#include "db/txn_db.h"
#include "txn/client_txn_store.h"

namespace ycsbt {
namespace core {
namespace {

Properties SkewProps(uint64_t pairs) {
  Properties p;
  p.Set("workload", "write_skew");
  p.Set("recordcount", std::to_string(pairs * 2));
  return p;
}

TEST(WriteSkewWorkloadTest, InitValidatesConfig) {
  WriteSkewWorkload w;
  Properties odd;
  odd.Set("recordcount", "7");
  EXPECT_TRUE(w.Init(odd).IsInvalidArgument());
  Properties zero;
  zero.Set("recordcount", "0");
  EXPECT_TRUE(w.Init(zero).IsInvalidArgument());
  Properties bad_dist = SkewProps(10);
  bad_dist.Set("requestdistribution", "latest");
  EXPECT_TRUE(w.Init(bad_dist).IsInvalidArgument());
  Properties negative = SkewProps(10);
  negative.Set("writeskew.initial", "-5");
  EXPECT_TRUE(w.Init(negative).IsInvalidArgument());
  EXPECT_TRUE(w.Init(SkewProps(10)).ok());
  EXPECT_EQ(w.pair_count(), 10u);
  EXPECT_EQ(w.record_count(), 20u);
}

TEST(WriteSkewWorkloadTest, PairKeysAreAdjacentAndOrdered) {
  WriteSkewWorkload w;
  ASSERT_TRUE(w.Init(SkewProps(3)).ok());
  EXPECT_LT(w.PairKey(0, 0), w.PairKey(0, 1));
  EXPECT_LT(w.PairKey(0, 1), w.PairKey(1, 0));
  EXPECT_LT(w.PairKey(9, 1), w.PairKey(10, 0));  // padding keeps order at width changes
}

TEST(WriteSkewWorkloadTest, LoadCreatesAllPairs) {
  WriteSkewWorkload w;
  ASSERT_TRUE(w.Init(SkewProps(25)).ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < w.record_count(); ++i) {
    ASSERT_TRUE(w.DoInsert(db, state.get()));
  }
  EXPECT_EQ(store->Count(), 50u);
  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, 0, &result).ok());
  EXPECT_TRUE(result.passed);
  EXPECT_DOUBLE_EQ(result.anomaly_score, 0.0);
}

TEST(WriteSkewWorkloadTest, SerialWithdrawalsNeverViolate) {
  WriteSkewWorkload w;
  Properties p = SkewProps(20);
  p.Set("readproportion", "0.2");
  ASSERT_TRUE(w.Init(p).ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < w.record_count(); ++i) {
    ASSERT_TRUE(w.DoInsert(db, state.get()));
  }
  for (int i = 0; i < 3000; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok) << r.op;
  }
  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, 3000, &result).ok());
  EXPECT_TRUE(result.passed)
      << "every withdrawal checked the constraint; serial execution is safe";
}

TEST(WriteSkewWorkloadTest, ValidationDetectsPlantedViolation) {
  WriteSkewWorkload w;
  ASSERT_TRUE(w.Init(SkewProps(5)).ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < w.record_count(); ++i) {
    ASSERT_TRUE(w.DoInsert(db, state.get()));
  }
  // Force pair 2 negative behind the workload's back.
  FieldMap fields;
  fields["balance"] = "-500";
  ASSERT_TRUE(db.Insert("skewtable", w.PairKey(2, 0), fields).ok());

  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, 100, &result).ok());
  EXPECT_FALSE(result.passed);
  EXPECT_DOUBLE_EQ(result.anomaly_score, 1.0 / 100.0);
  bool found_overdraft = false;
  for (auto& [key, value] : result.report) {
    if (key == "TOTAL OVERDRAFT") {
      EXPECT_EQ(value, "400");  // -500 + 100 partner = -400
      found_overdraft = true;
    }
  }
  EXPECT_TRUE(found_overdraft);
}

TEST(WriteSkewWorkloadTest, SnapshotIsolationAdmitsSkewDeterministically) {
  // The anomaly, forced: two SI transactions read the same pair and debit
  // different sides.  Disjoint write sets -> both commit -> pair negative.
  WriteSkewWorkload w;
  ASSERT_TRUE(w.Init(SkewProps(1)).ok());
  auto base = std::make_shared<kv::ShardedStore>();
  auto store = std::make_shared<txn::ClientTxnStore>(
      base, std::make_shared<txn::HlcTimestampSource>());
  TxnDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < 2; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));

  TxnDB db1(store), db2(store);
  std::string kx = w.PairKey(0, 0), ky = w.PairKey(0, 1);
  FieldMap rx, ry, wx, wy;
  wx["balance"] = "-100";  // withdraws the full combined balance (200) from x
  wy["balance"] = "-100";  // and the other from y
  ASSERT_TRUE(db1.Start().ok());
  ASSERT_TRUE(db2.Start().ok());
  ASSERT_TRUE(db1.Read("skewtable", kx, nullptr, &rx).ok());
  ASSERT_TRUE(db1.Read("skewtable", ky, nullptr, &ry).ok());
  ASSERT_TRUE(db2.Read("skewtable", kx, nullptr, &rx).ok());
  ASSERT_TRUE(db2.Read("skewtable", ky, nullptr, &ry).ok());
  ASSERT_TRUE(db1.Insert("skewtable", kx, wx).ok());
  ASSERT_TRUE(db2.Insert("skewtable", ky, wy).ok());
  EXPECT_TRUE(db1.Commit().ok());
  EXPECT_TRUE(db2.Commit().ok()) << "disjoint write sets: SI admits both";

  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, 2, &result).ok());
  EXPECT_FALSE(result.passed) << "write skew must be visible to Tier 6";
}

TEST(WriteSkewWorkloadTest, SerializableRejectsTheSameInterleaving) {
  WriteSkewWorkload w;
  ASSERT_TRUE(w.Init(SkewProps(1)).ok());
  auto base = std::make_shared<kv::ShardedStore>();
  txn::TxnOptions options;
  options.isolation = txn::Isolation::kSerializable;
  auto store = std::make_shared<txn::ClientTxnStore>(
      base, std::make_shared<txn::HlcTimestampSource>(), options);
  TxnDB db(store);
  auto state = w.InitThread(0, 1);
  for (uint64_t i = 0; i < 2; ++i) ASSERT_TRUE(w.DoInsert(db, state.get()));

  TxnDB db1(store), db2(store);
  std::string kx = w.PairKey(0, 0), ky = w.PairKey(0, 1);
  FieldMap r, neg;
  neg["balance"] = "-100";
  ASSERT_TRUE(db1.Start().ok());
  ASSERT_TRUE(db2.Start().ok());
  ASSERT_TRUE(db1.Read("skewtable", kx, nullptr, &r).ok());
  ASSERT_TRUE(db1.Read("skewtable", ky, nullptr, &r).ok());
  ASSERT_TRUE(db2.Read("skewtable", kx, nullptr, &r).ok());
  ASSERT_TRUE(db2.Read("skewtable", ky, nullptr, &r).ok());
  ASSERT_TRUE(db1.Insert("skewtable", kx, neg).ok());
  ASSERT_TRUE(db2.Insert("skewtable", ky, neg).ok());
  EXPECT_TRUE(db1.Commit().ok());
  EXPECT_FALSE(db2.Commit().ok()) << "read-set validation must reject t2";

  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, 2, &result).ok());
  EXPECT_TRUE(result.passed);
}

TEST(WriteSkewWorkloadTest, EndToEndUnder2PLStaysClean) {
  Properties p = SkewProps(25);
  p.Set("db", "2pl+memkv");
  p.Set("operationcount", "2000");
  p.Set("threads", "6");
  p.Set("requestdistribution", "zipfian");
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok());
  EXPECT_TRUE(result.validation.passed);
}

TEST(WriteSkewWorkloadTest, EndToEndSerializableStaysClean) {
  Properties p = SkewProps(25);
  p.Set("db", "txn+memkv");
  p.Set("txn.isolation", "serializable");
  p.Set("operationcount", "2000");
  p.Set("threads", "6");
  p.Set("requestdistribution", "zipfian");
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok());
  EXPECT_TRUE(result.validation.passed);
  EXPECT_EQ(result.operations, result.committed + result.failed);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
