// Suite orchestrator: spec parsing, matrix expansion, and an end-to-end
// miniature suite executed against the in-process memkv binding with the
// results tree checked on disk.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/properties.h"
#include "core/suite.h"

namespace ycsbt {
namespace core {
namespace {

Properties FileFrom(const std::vector<std::pair<std::string, std::string>>& kvs) {
  Properties props;
  for (const auto& [k, v] : kvs) props.Set(k, v);
  return props;
}

TEST(SuiteSpecTest, ParsesControlKeysAndAxes) {
  Properties file = FileFrom({
      {"suite.name", "mini"},
      {"suite.load", "per_run"},
      {"suite.repeats", "2"},
      {"suite.output_dir", "out/mini"},
      {"suite.operations_per_thread", "100"},
      {"base.db", "memkv"},
      {"config.fast.cloud.latency_scale", "0.1"},
      {"mix.scans.scanproportion", "0.95"},
      {"sweep.threads", "1, 2, 4"},
  });
  SuiteSpec spec;
  ASSERT_TRUE(SuiteSpec::Parse(file, &spec).ok());
  EXPECT_EQ(spec.name, "mini");
  EXPECT_FALSE(spec.load_once);
  EXPECT_EQ(spec.repeats, 2);
  EXPECT_EQ(spec.output_dir, "out/mini");
  EXPECT_EQ(spec.operations_per_thread, 100u);
  EXPECT_EQ(spec.base.Get("db", ""), "memkv");
  ASSERT_EQ(spec.configs.size(), 1u);
  EXPECT_EQ(spec.configs[0].first, "fast");
  EXPECT_EQ(spec.configs[0].second.Get("cloud.latency_scale", ""), "0.1");
  ASSERT_EQ(spec.mixes.size(), 1u);
  EXPECT_EQ(spec.mixes[0].first, "scans");
  ASSERT_EQ(spec.sweeps.size(), 1u);
  EXPECT_EQ(spec.sweeps[0].first, "threads");
  EXPECT_EQ(spec.sweeps[0].second,
            (std::vector<std::string>{"1", "2", "4"}));
}

TEST(SuiteSpecTest, RejectsKeysOutsideTheSuiteGrammar) {
  SuiteSpec spec;
  Status s = SuiteSpec::Parse(FileFrom({{"threads", "4"}}), &spec);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  s = SuiteSpec::Parse(FileFrom({{"suite.unknown_control", "x"}}), &spec);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  s = SuiteSpec::Parse(FileFrom({{"config.noproperty", "x"}}), &spec);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(SuiteSpecTest, ExpandsFullCrossProduct) {
  Properties file = FileFrom({
      {"suite.name", "grid"},
      {"suite.repeats", "2"},
      {"base.db", "memkv"},
      {"config.a.db", "memkv"},
      {"config.b.db", "2pl+memkv"},
      {"mix.reads.readproportion", "1.0"},
      {"mix.scans.scanproportion", "1.0"},
      {"sweep.threads", "1,2,4"},
  });
  SuiteSpec spec;
  ASSERT_TRUE(SuiteSpec::Parse(file, &spec).ok());
  std::vector<SuiteRun> runs = spec.Expand();
  // 2 configs x 2 repeats x 2 mixes x 3 sweep points.
  ASSERT_EQ(runs.size(), 24u);
  // Ordering groups substrate first (config, then repeat) so load=once can
  // reuse one loaded store per group.
  EXPECT_EQ(runs[0].config, "a");
  EXPECT_EQ(runs[0].repeat, 1);
  EXPECT_EQ(runs[11].config, "a");
  EXPECT_EQ(runs[12].config, "b");
  // Names are unique and directory-safe.
  std::vector<std::string> names;
  for (const auto& run : runs) {
    names.push_back(run.name);
    EXPECT_EQ(run.name.find('/'), std::string::npos) << run.name;
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  // Axis properties land merged in each run's property set.
  EXPECT_EQ(runs[0].props.Get("db", ""), "memkv");
  EXPECT_EQ(runs[12].props.Get("db", ""), "2pl+memkv");
}

TEST(SuiteSpecTest, OperationsPerThreadScalesWithSweptThreads) {
  Properties file = FileFrom({
      {"suite.name", "scale"},
      {"suite.operations_per_thread", "250"},
      {"base.db", "memkv"},
      {"sweep.threads", "2,8"},
  });
  SuiteSpec spec;
  ASSERT_TRUE(SuiteSpec::Parse(file, &spec).ok());
  std::vector<SuiteRun> runs = spec.Expand();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].props.Get("operationcount", ""), "500");
  EXPECT_EQ(runs[1].props.Get("operationcount", ""), "2000");
}

TEST(SuiteOrchestratorTest, ExecutesMiniatureSuiteAndWritesResultsTree) {
  std::string out = ::testing::TempDir() + "/suite_mini";
  Properties file = FileFrom({
      {"suite.name", "mini"},
      {"suite.load", "once"},
      {"suite.output_dir", out},
      {"base.db", "memkv"},
      {"base.recordcount", "50"},
      {"base.operationcount", "100"},
      {"base.threads", "2"},
      {"base.status", "false"},
      {"sweep.threads", "1,2"},
  });
  SuiteSpec spec;
  ASSERT_TRUE(SuiteSpec::Parse(file, &spec).ok());
  SuiteOrchestrator orchestrator(std::move(spec));
  std::vector<SuiteRunOutcome> outcomes;
  ASSERT_TRUE(orchestrator.Execute(&outcomes).ok());
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result.operations, 100u);
    for (const char* leaf : {"run.properties", "summary.txt", "summary.json"}) {
      std::ifstream in(out + "/" + outcome.run.name + "/" + leaf);
      EXPECT_TRUE(in.good()) << outcome.run.name << "/" << leaf;
    }
  }
  std::ifstream rollup(out + "/rollup.txt");
  ASSERT_TRUE(rollup.good());
  std::string table((std::istreambuf_iterator<char>(rollup)),
                    std::istreambuf_iterator<char>());
  EXPECT_NE(table.find("threads1"), std::string::npos);
  EXPECT_NE(table.find("threads2"), std::string::npos);
  EXPECT_NE(table.find("ok"), std::string::npos);
}

TEST(SuiteOrchestratorTest, FailingRunIsRecordedAndSuiteContinues) {
  std::string out = ::testing::TempDir() + "/suite_fail";
  Properties file = FileFrom({
      {"suite.name", "fail"},
      {"suite.load", "per_run"},
      {"suite.output_dir", out},
      {"base.recordcount", "10"},
      {"base.operationcount", "10"},
      {"base.status", "false"},
      {"config.bad.db", "no-such-binding"},
      {"config.good.db", "memkv"},
  });
  SuiteSpec spec;
  ASSERT_TRUE(SuiteSpec::Parse(file, &spec).ok());
  SuiteOrchestrator orchestrator(std::move(spec));
  std::vector<SuiteRunOutcome> outcomes;
  Status s = orchestrator.Execute(&outcomes);
  EXPECT_FALSE(s.ok());  // one run failed -> suite reports it
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].status.ok());  // configs sort: bad before good
  EXPECT_TRUE(outcomes[1].status.ok());
  // The failed run's directory still documents what happened.
  std::ifstream summary(out + "/" + outcomes[0].run.name + "/summary.txt");
  ASSERT_TRUE(summary.good());
  std::string text((std::istreambuf_iterator<char>(summary)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("ERROR"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
