// Parameterised Tier-6 sweep: the CEW invariant must hold for EVERY
// transactional binding and isolation configuration under concurrency, and
// for every binding when execution is serial — a matrix the paper's
// "apples-to-apples comparison" claim rests on.

#include <gtest/gtest.h>

#include <string>

#include "core/benchmark.h"

namespace ycsbt {
namespace core {
namespace {

struct BindingCase {
  const char* name;
  const char* db;
  const char* isolation;   // nullptr = not applicable
  const char* timestamps;  // nullptr = default
};

class TransactionalBindingSweep : public ::testing::TestWithParam<BindingCase> {};

Properties CewFor(const BindingCase& binding, int threads) {
  Properties p;
  p.Set("db", binding.db);
  if (binding.isolation != nullptr) p.Set("txn.isolation", binding.isolation);
  if (binding.timestamps != nullptr) p.Set("txn.timestamps", binding.timestamps);
  p.Set("txn.oracle_rtt_us", "5");
  p.Set("workload", "closed_economy");
  p.Set("recordcount", "150");
  p.Set("totalcash", "150000");
  p.Set("operationcount", "3000");
  p.Set("requestdistribution", "zipfian");
  p.Set("readproportion", "0.4");
  p.Set("readmodifywriteproportion", "0.4");
  p.Set("updateproportion", "0.1");
  p.Set("deleteproportion", "0.05");
  p.Set("insertproportion", "0.05");
  p.Set("threads", std::to_string(threads));
  return p;
}

TEST_P(TransactionalBindingSweep, CewInvariantHoldsUnderConcurrency) {
  RunResult result;
  ASSERT_TRUE(RunBenchmark(CewFor(GetParam(), 8), &result).ok());
  EXPECT_TRUE(result.validation.performed);
  EXPECT_TRUE(result.validation.passed)
      << GetParam().name << " leaked money under concurrency";
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);
  EXPECT_EQ(result.operations, result.committed + result.failed);
}

TEST_P(TransactionalBindingSweep, CewInvariantHoldsSerially) {
  RunResult result;
  ASSERT_TRUE(RunBenchmark(CewFor(GetParam(), 1), &result).ok());
  EXPECT_TRUE(result.validation.passed) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTransactionalBindings, TransactionalBindingSweep,
    ::testing::Values(
        BindingCase{"client_txn_snapshot", "txn+memkv", "snapshot", nullptr},
        BindingCase{"client_txn_serializable", "txn+memkv", "serializable",
                    nullptr},
        BindingCase{"client_txn_oracle_ts", "txn+memkv", "snapshot", "oracle"},
        BindingCase{"local_2pl", "2pl+memkv", nullptr, nullptr}),
    [](const ::testing::TestParamInfo<BindingCase>& info) {
      return info.param.name;
    });

// Serial-only sweep: with one thread even non-transactional bindings must
// preserve the invariant (the paper's Fig 4 zero point, for every binding).
class SerialBindingSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SerialBindingSweep, SerialCewIsAlwaysConsistent) {
  BindingCase binding{GetParam(), GetParam(), nullptr, nullptr};
  Properties p = CewFor(binding, 1);
  if (std::string(GetParam()) == "rawhttp") {
    p.Set("rawhttp.latency_median_us", "30");
    p.Set("rawhttp.latency_floor_us", "20");
  }
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok());
  EXPECT_TRUE(result.validation.passed) << GetParam();
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);
}

INSTANTIATE_TEST_SUITE_P(NonTransactionalBindings, SerialBindingSweep,
                         ::testing::Values("memkv", "rawhttp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace core
}  // namespace ycsbt
