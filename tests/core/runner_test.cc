#include "core/runner.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/core_workload.h"
#include "db/measured_db.h"

namespace ycsbt {
namespace core {
namespace {

Properties Props(std::initializer_list<std::pair<std::string, std::string>> kv) {
  Properties p;
  for (auto& [k, v] : kv) p.Set(k, v);
  return p;
}

/// Workload stub that counts calls; lets runner tests assert scheduling
/// behaviour without a real store.
class CountingWorkload : public Workload {
 public:
  Status Init(const Properties&) override { return Status::OK(); }

  bool DoInsert(DB&, ThreadState*) override {
    inserts.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  TxnOpResult DoTransaction(DB&, ThreadState*) override {
    transactions.fetch_add(1, std::memory_order_relaxed);
    return TxnOpResult{!fail_all, "READ"};
  }

  void OnTransactionOutcome(ThreadState*, const TxnOpResult&, bool committed) override {
    (committed ? committed_outcomes : failed_outcomes)
        .fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t record_count() const override { return records; }

  uint64_t records = 100;
  bool fail_all = false;
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> transactions{0};
  std::atomic<uint64_t> committed_outcomes{0};
  std::atomic<uint64_t> failed_outcomes{0};
};

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    factory_ = std::make_unique<DBFactory>(Props({{"db", "memkv"}}));
    ASSERT_TRUE(factory_->Init().ok());
  }

  std::unique_ptr<DBFactory> factory_;
  Measurements measurements_;
};

TEST_F(RunnerTest, LoadInsertsExactlyRecordCountAcrossThreads) {
  CountingWorkload w;
  w.records = 103;  // not divisible by thread count
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  LoadOptions load;
  load.threads = 4;
  ASSERT_TRUE(runner.Load(load).ok());
  EXPECT_EQ(w.inserts.load(), 103u);
}

TEST_F(RunnerTest, LoadSurfacesInitFailureAndSkippedQuota) {
  CountingWorkload w;
  w.records = 40;
  DBFactory uninitialized(Props({{"db", "memkv"}}));  // Init() never called
  WorkloadRunner runner(&uninitialized, &w, &measurements_);
  LoadOptions load;
  load.threads = 4;
  Status s = runner.Load(load);
  ASSERT_TRUE(s.IsInternal());
  // The cause and the un-inserted quota both appear, instead of the seed's
  // silent return with a bare "client init failed".
  EXPECT_NE(s.message().find("factory returned no client"), std::string::npos);
  EXPECT_NE(s.message().find("skipped 40 inserts"), std::string::npos);
  EXPECT_EQ(w.inserts.load(), 0u);
}

TEST_F(RunnerTest, RunExecutesExactOperationBudget) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 3;
  run.operation_count = 1000;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_EQ(result.operations, 1000u);
  EXPECT_EQ(w.transactions.load(), 1000u);
  EXPECT_EQ(result.committed, 1000u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.throughput_ops_sec, 0.0);
}

TEST_F(RunnerTest, RunWithoutBoundsIsRejected) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunResult result;
  EXPECT_TRUE(runner.Run(RunOptions{}, &result).IsInvalidArgument());
}

TEST_F(RunnerTest, TimeBoundStopsUnboundedRun) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 2;
  run.operation_count = 0;  // unbounded
  run.max_execution_seconds = 0.3;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_GT(result.operations, 0u);
  EXPECT_GE(result.runtime_ms, 250.0);
  EXPECT_LT(result.runtime_ms, 5000.0);
}

TEST_F(RunnerTest, FailedTransactionsAreAborted) {
  CountingWorkload w;
  w.fail_all = true;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.operation_count = 50;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_EQ(result.failed, 50u);
  EXPECT_EQ(result.committed, 0u);
  EXPECT_EQ(w.failed_outcomes.load(), 50u);
  // With wrapping on, every failed workload op must have called Abort.
  EXPECT_EQ(measurements_.SnapshotOp(opname::kAbort).operations, 50u);
  EXPECT_EQ(measurements_.SnapshotOp(opname::kCommit).operations, 0u);
}

TEST_F(RunnerTest, WrappingEmitsStartAndCommitSeries) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.operation_count = 20;
  run.wrap_in_transactions = true;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_EQ(measurements_.SnapshotOp(opname::kStart).operations, 20u);
  EXPECT_EQ(measurements_.SnapshotOp(opname::kCommit).operations, 20u);
  EXPECT_EQ(measurements_.SnapshotOp("TX-READ").operations, 20u);
}

TEST_F(RunnerTest, UnwrappedRunEmitsNoTransactionSeries) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.operation_count = 20;
  run.wrap_in_transactions = false;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_EQ(measurements_.SnapshotOp(opname::kStart).operations, 0u);
  EXPECT_EQ(measurements_.SnapshotOp(opname::kCommit).operations, 0u);
  // The whole-op series still exists (it measures the workload op itself).
  EXPECT_EQ(measurements_.SnapshotOp("TX-READ").operations, 20u);
}

TEST_F(RunnerTest, TargetThroughputIsRoughlyHonoured) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 2;
  run.operation_count = 200;
  run.target_ops_per_sec = 1000.0;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  // 200 ops at 1000/s should take ~0.2 s; allow generous slack.
  EXPECT_GT(result.runtime_ms, 120.0);
  EXPECT_LT(result.throughput_ops_sec, 2000.0);
}

TEST_F(RunnerTest, OutcomeHookSeesCommitVerdict) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.operation_count = 30;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_EQ(w.committed_outcomes.load(), 30u);
  EXPECT_EQ(w.failed_outcomes.load(), 0u);
}

TEST_F(RunnerTest, StatusCallbackSamplesProgress) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 2;
  run.operation_count = 0;
  run.max_execution_seconds = 0.35;
  run.status_interval_seconds = 0.1;
  std::atomic<int> samples{0};
  std::atomic<uint64_t> last_ops{0};
  run.status_callback = [&](double elapsed, uint64_t ops, double rate) {
    EXPECT_GT(elapsed, 0.0);
    EXPECT_GE(ops, last_ops.load());
    EXPECT_GE(rate, 0.0);
    last_ops.store(ops);
    samples.fetch_add(1);
  };
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_GE(samples.load(), 2);
  EXPECT_LE(samples.load(), 6);
}

TEST_F(RunnerTest, IntervalSeriesPartitionsTheRun) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 2;
  run.operation_count = 0;
  run.max_execution_seconds = 0.45;
  run.status_interval_seconds = 0.1;
  run.status_callback = [](double, uint64_t, double) {};
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());

  ASSERT_FALSE(result.intervals.empty());
  double prev_end = 0.0;
  uint64_t window_sum = 0;
  for (const auto& window : result.intervals) {
    EXPECT_GT(window.end_seconds, prev_end);  // monotone in elapsed time
    EXPECT_GE(window.ops_per_sec, 0.0);
    EXPECT_GE(window.avg_latency_us, 0.0);
    prev_end = window.end_seconds;
    window_sum += window.operations;
  }
  // The windows partition the run: no sample is dropped or double-counted.
  EXPECT_EQ(window_sum, result.operations);
  // The series also lands in the summary for the exporters.
  EXPECT_EQ(result.MakeSummary().intervals.size(), result.intervals.size());
}

TEST_F(RunnerTest, ThrottledThreadIsNotMistakenForAStall) {
  // Regression: the pacing sleep used to be one unsliced nap, so a low-rate
  // throttled thread never ticked its wait-progress channel and the watchdog
  // flagged it as stalled.  At 5 ops/s each 200 ms pacing gap spans several
  // 50 ms status windows.
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 1;
  run.operation_count = 4;
  run.target_ops_per_sec = 5.0;
  run.status_interval_seconds = 0.05;
  run.stall_windows = 2;
  run.status_callback = [](double, uint64_t, double) {};
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_EQ(result.operations, 4u);
  EXPECT_EQ(result.stall_events, 0u);
}

TEST_F(RunnerTest, PacingNeverOvershootsTheTarget) {
  // Regression: the pacing sleep truncated the sub-microsecond remainder of
  // each gap, waking early and letting the achieved rate creep above the
  // target.  The sliced wait rounds up and re-checks the deadline instead.
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 1;
  run.operation_count = 250;
  run.target_ops_per_sec = 2500.0;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  // 250 ops at 2500/s is >= ~99.6 ms of pacing (the first op is unpaced).
  EXPECT_GE(result.runtime_ms, 99.0);
  EXPECT_LE(result.throughput_ops_sec, 2500.0 * 1.05);
}

TEST_F(RunnerTest, ClosingWindowAlwaysReachesTheRuntime) {
  // Regression: a tail window with zero completed transactions was silently
  // dropped, so the interval series could stop short of the run's end.  The
  // closing window is now emitted whenever time advanced past the last tick.
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.threads = 2;
  run.operation_count = 0;
  run.max_execution_seconds = 0.3;
  run.status_interval_seconds = 0.1;
  run.status_callback = [](double, uint64_t, double) {};
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  ASSERT_FALSE(result.intervals.empty());
  EXPECT_DOUBLE_EQ(result.intervals.back().end_seconds,
                   result.runtime_ms / 1000.0);
  uint64_t window_sum = 0;
  for (const auto& window : result.intervals) window_sum += window.operations;
  EXPECT_EQ(window_sum, result.operations);
}

TEST_F(RunnerTest, NoStatusIntervalMeansNoSeries) {
  CountingWorkload w;
  WorkloadRunner runner(factory_.get(), &w, &measurements_);
  RunOptions run;
  run.operation_count = 50;
  RunResult result;
  ASSERT_TRUE(runner.Run(run, &result).ok());
  EXPECT_TRUE(result.intervals.empty());
}

TEST_F(RunnerTest, MakeSummaryCarriesValidation) {
  RunResult result;
  result.runtime_ms = 1000;
  result.throughput_ops_sec = 42;
  result.operations = 42;
  result.validation.performed = true;
  result.validation.passed = false;
  result.validation.report = {{"ANOMALY SCORE", "0.5"}};
  RunSummary summary = result.MakeSummary();
  EXPECT_TRUE(summary.has_validation);
  EXPECT_FALSE(summary.validation_passed);
  ASSERT_EQ(summary.extra.size(), 1u);
  EXPECT_EQ(summary.extra[0].first, "ANOMALY SCORE");
}

TEST_F(RunnerTest, AbortRateComputed) {
  RunResult result;
  result.operations = 100;
  result.failed = 25;
  EXPECT_DOUBLE_EQ(result.abort_rate(), 0.25);
  RunResult empty;
  EXPECT_DOUBLE_EQ(empty.abort_rate(), 0.0);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
