#include "core/closed_economy_workload.h"

#include <gtest/gtest.h>

#include <memory>

#include "db/field_codec.h"
#include "db/kvstore_db.h"
#include "db/txn_db.h"
#include "txn/client_txn_store.h"

namespace ycsbt {
namespace core {
namespace {

Properties CewProps(int64_t records, int64_t cash) {
  Properties p;
  p.Set("recordcount", std::to_string(records));
  p.Set("totalcash", std::to_string(cash));
  p.Set("requestdistribution", "zipfian");
  return p;
}

class ClosedEconomyTest : public ::testing::Test {
 protected:
  void LoadAll(ClosedEconomyWorkload& w, DB& db) {
    auto state = w.InitThread(0, 1);
    for (uint64_t i = 0; i < w.record_count(); ++i) {
      ASSERT_TRUE(w.DoInsert(db, state.get()));
    }
  }

  int64_t CountedCash(ClosedEconomyWorkload& w, DB& db) {
    ValidationResult result;
    EXPECT_TRUE(w.Validate(db, 1, &result).ok());
    for (auto& [k, v] : result.report) {
      if (k == "COUNTED CASH") return std::stoll(v);
    }
    return -1;
  }
};

TEST_F(ClosedEconomyTest, InitDefaultsMatchThePaper) {
  ClosedEconomyWorkload w;
  Properties p = CewProps(100, 100000);
  ASSERT_TRUE(w.Init(p).ok());
  EXPECT_EQ(w.total_cash(), 100000);
  EXPECT_EQ(w.capture_bank(), 0);
  // Default totalcash gives every account the $1000 of the paper's text.
  ClosedEconomyWorkload w2;
  Properties p2;
  p2.Set("recordcount", "50");
  ASSERT_TRUE(w2.Init(p2).ok());
  EXPECT_EQ(w2.total_cash(), 50 * 1000);
}

TEST_F(ClosedEconomyTest, RejectsInsufficientCash) {
  ClosedEconomyWorkload w;
  EXPECT_TRUE(w.Init(CewProps(100, 50)).IsInvalidArgument());
}

TEST_F(ClosedEconomyTest, LoadDistributesExactlyTotalCash) {
  ClosedEconomyWorkload w;
  // 1003 does not divide 100000: the remainder must not be lost.
  ASSERT_TRUE(w.Init(CewProps(1003, 100000)).ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  LoadAll(w, db);
  EXPECT_EQ(CountedCash(w, db), 100000);
}

TEST_F(ClosedEconomyTest, SerialExecutionHasZeroAnomalyScore) {
  ClosedEconomyWorkload w;
  Properties p = CewProps(200, 200000);
  p.Set("readproportion", "0.5");
  p.Set("updateproportion", "0.1");
  p.Set("insertproportion", "0.1");
  p.Set("deleteproportion", "0.1");
  p.Set("scanproportion", "0.05");
  p.Set("readmodifywriteproportion", "0.15");
  p.Set("maxscanlength", "10");
  ASSERT_TRUE(w.Init(p).ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  LoadAll(w, db);

  auto state = w.InitThread(0, 1);
  constexpr int kOps = 5000;
  for (int i = 0; i < kOps; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    w.OnTransactionOutcome(state.get(), r, r.ok);
  }
  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, kOps, &result).ok());
  EXPECT_TRUE(result.performed);
  EXPECT_TRUE(result.passed)
      << "single-threaded execution must preserve the invariant";
  EXPECT_DOUBLE_EQ(result.anomaly_score, 0.0);
}

TEST_F(ClosedEconomyTest, TransfersMoveMoneyButPreserveSum) {
  ClosedEconomyWorkload w;
  Properties p = CewProps(100, 100000);
  p.Set("readproportion", "0");
  p.Set("readmodifywriteproportion", "1.0");
  ASSERT_TRUE(w.Init(p).ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  LoadAll(w, db);
  auto state = w.InitThread(0, 1);
  for (int i = 0; i < 2000; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok);
    ASSERT_STREQ(r.op, "READMODIFYWRITE");
    w.OnTransactionOutcome(state.get(), r, true);
  }
  EXPECT_EQ(CountedCash(w, db), 100000);
}

TEST_F(ClosedEconomyTest, DeleteBanksMoneyAndInsertWithdrawsIt) {
  ClosedEconomyWorkload w;
  Properties p = CewProps(50, 50000);
  p.Set("readproportion", "0");
  p.Set("deleteproportion", "1.0");
  ASSERT_TRUE(w.Init(p).ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  LoadAll(w, db);
  auto state = w.InitThread(0, 1);

  // Run deletes until the bank holds something.
  for (int i = 0; i < 20 && w.capture_bank() == 0; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok);
    w.OnTransactionOutcome(state.get(), r, true);
  }
  EXPECT_GT(w.capture_bank(), 0);
  // accounts + bank still == totalcash
  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, 20, &result).ok());
  EXPECT_TRUE(result.passed);
}

TEST_F(ClosedEconomyTest, AbortedTransactionRefundsTheBank) {
  // Mixed delete/update workload: deletes fill the capture bank, updates
  // withdraw from it.  An update whose commit "fails" must refund its
  // withdrawal — otherwise money would leak out of the economy on aborts.
  ClosedEconomyWorkload w;
  Properties p = CewProps(50, 50000);
  p.Set("readproportion", "0");
  p.Set("deleteproportion", "0.5");
  p.Set("updateproportion", "0.5");
  ASSERT_TRUE(w.Init(p).ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  LoadAll(w, db);
  auto state = w.InitThread(0, 1);

  // Commit deletes until the bank holds money.
  int guard = 0;
  while (w.capture_bank() == 0 && guard++ < 200) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok);
    w.OnTransactionOutcome(state.get(), r, true);
  }
  ASSERT_GT(w.capture_bank(), 0);

  // Drive ops until an UPDATE runs, and report its commit as failed.
  for (int i = 0; i < 200; ++i) {
    int64_t bank_before = w.capture_bank();
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok);
    if (std::string(r.op) == "UPDATE") {
      w.OnTransactionOutcome(state.get(), r, /*committed=*/false);
      EXPECT_EQ(w.capture_bank(), bank_before)
          << "aborted update must refund its withdrawal";
      return;
    }
    w.OnTransactionOutcome(state.get(), r, true);
  }
  FAIL() << "no UPDATE operation drawn in 200 tries";
}

TEST_F(ClosedEconomyTest, ValidationDetectsTampering) {
  ClosedEconomyWorkload w;
  ASSERT_TRUE(w.Init(CewProps(100, 100000)).ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  LoadAll(w, db);

  // Steal $7 from some account behind the workload's back.
  std::vector<kv::ScanEntry> entries;
  ASSERT_TRUE(store->Scan("", 1, &entries).ok());
  ASSERT_EQ(entries.size(), 1u);
  FieldMap fields;
  ASSERT_TRUE(DecodeFields(entries[0].value, &fields).ok());
  int64_t balance = std::stoll(fields["field0"]);
  fields["field0"] = std::to_string(balance - 7);
  ASSERT_TRUE(store->Put(entries[0].key, EncodeFields(fields)).ok());

  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, 1000, &result).ok());
  EXPECT_TRUE(result.performed);
  EXPECT_FALSE(result.passed);
  EXPECT_DOUBLE_EQ(result.anomaly_score, 7.0 / 1000.0);
}

TEST_F(ClosedEconomyTest, AnomalyScoreUsesOperationDenominator) {
  ClosedEconomyWorkload w;
  ASSERT_TRUE(w.Init(CewProps(10, 10000)).ok());
  auto store = std::make_shared<kv::ShardedStore>();
  KvStoreDB db(store);
  LoadAll(w, db);
  ValidationResult r1, r2;
  ASSERT_TRUE(w.Validate(db, 100, &r1).ok());
  ASSERT_TRUE(w.Validate(db, 10000, &r2).ok());
  EXPECT_DOUBLE_EQ(r1.anomaly_score, 0.0);
  EXPECT_DOUBLE_EQ(r2.anomaly_score, 0.0);
}

TEST_F(ClosedEconomyTest, RejectsFewerThanTwoTransferAccounts) {
  ClosedEconomyWorkload w;
  Properties p = CewProps(100, 100000);
  p.Set("cew.transfer_accounts", "1");
  EXPECT_TRUE(w.Init(p).IsInvalidArgument());
}

TEST_F(ClosedEconomyTest, BatchedTransfersPreserveSumExactly) {
  // cew.transfer_accounts > 2 switches READMODIFYWRITE to the batched
  // variant (one payer sends $1 to W-1 payees in a single MultiRead +
  // BatchInsert).  The per-commit delta is still exactly zero, so serial
  // execution must keep the anomaly score at 0.
  ClosedEconomyWorkload w;
  Properties p = CewProps(100, 100000);
  p.Set("readproportion", "0");
  p.Set("readmodifywriteproportion", "1.0");
  p.Set("cew.transfer_accounts", "5");
  ASSERT_TRUE(w.Init(p).ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  LoadAll(w, db);
  auto state = w.InitThread(0, 1);
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok);
    ASSERT_STREQ(r.op, "READMODIFYWRITE");
    w.OnTransactionOutcome(state.get(), r, true);
  }
  EXPECT_EQ(CountedCash(w, db), 100000);
  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, kOps, &result).ok());
  EXPECT_TRUE(result.passed);
  EXPECT_DOUBLE_EQ(result.anomaly_score, 0.0);
}

TEST_F(ClosedEconomyTest, BatchOpsKeepTheEconomyClosed) {
  // Deletes bank money, BATCH_INSERT withdraws it to open funded accounts,
  // BATCH_READ sweeps snapshots — accounts + bank stays totalcash.
  ClosedEconomyWorkload w;
  Properties p = CewProps(100, 100000);
  p.Set("readproportion", "0");
  p.Set("readmodifywriteproportion", "0");
  p.Set("deleteproportion", "0.3");
  p.Set("batchreadproportion", "0.4");
  p.Set("batchinsertproportion", "0.3");
  p.Set("batch.size", "8");
  ASSERT_TRUE(w.Init(p).ok());
  KvStoreDB db(std::make_shared<kv::ShardedStore>());
  LoadAll(w, db);
  auto state = w.InitThread(0, 1);
  bool saw_batch_read = false, saw_batch_insert = false;
  constexpr int kOps = 1000;
  for (int i = 0; i < kOps; ++i) {
    TxnOpResult r = w.DoTransaction(db, state.get());
    ASSERT_TRUE(r.ok) << r.op;
    if (std::string(r.op) == "BATCH_READ") saw_batch_read = true;
    if (std::string(r.op) == "BATCH_INSERT") saw_batch_insert = true;
    w.OnTransactionOutcome(state.get(), r, true);
  }
  EXPECT_TRUE(saw_batch_read);
  EXPECT_TRUE(saw_batch_insert);
  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, kOps, &result).ok());
  EXPECT_TRUE(result.passed);
  EXPECT_DOUBLE_EQ(result.anomaly_score, 0.0);
}

TEST_F(ClosedEconomyTest, WholeWorkloadOverTransactionalStoreStaysConsistent) {
  ClosedEconomyWorkload w;
  Properties p = CewProps(100, 100000);
  p.Set("readproportion", "0.5");
  p.Set("readmodifywriteproportion", "0.3");
  p.Set("updateproportion", "0.1");
  p.Set("deleteproportion", "0.05");
  p.Set("insertproportion", "0.05");
  ASSERT_TRUE(w.Init(p).ok());
  auto base = std::make_shared<kv::ShardedStore>();
  auto txn_store = std::make_shared<txn::ClientTxnStore>(
      base, std::make_shared<txn::HlcTimestampSource>());
  TxnDB db(txn_store);
  LoadAll(w, db);

  auto state = w.InitThread(0, 1);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db.Start().ok());
    TxnOpResult r = w.DoTransaction(db, state.get());
    bool committed = r.ok && db.Commit().ok();
    if (!r.ok) db.Abort();
    w.OnTransactionOutcome(state.get(), r, committed);
  }
  ValidationResult result;
  ASSERT_TRUE(w.Validate(db, 2000, &result).ok());
  EXPECT_TRUE(result.passed);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
