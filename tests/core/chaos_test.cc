// Chaos acceptance tests: the Closed Economy Workload under the seeded
// fault-injection layer, with the transaction retry loop switched on.  These
// are the end-to-end proofs of the robustness substrate — transient errors,
// throttle bursts, lost replies and mid-commit crash points must all be
// survivable without losing a cent of the economy, and the new abort/recovery
// metrics must surface in both exporters.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/benchmark.h"
#include "db/db_factory.h"
#include "kv/fault_injecting_store.h"
#include "measurement/exporter.h"

namespace ycsbt {
namespace core {
namespace {

/// CEW over the client-coordinated txn store at test scale, with a short
/// lock lease so abandoned locks become recoverable within the run.
Properties ChaosBase() {
  Properties p;
  p.Set("db", "txn+memkv");
  p.Set("workload", "closed_economy");
  p.Set("seed", "42");
  p.Set("recordcount", "100");
  p.Set("totalcash", "100000");
  p.Set("operationcount", "1200");
  p.Set("requestdistribution", "zipfian");
  p.Set("readproportion", "0.3");
  p.Set("readmodifywriteproportion", "0.4");
  p.Set("updateproportion", "0.1");
  p.Set("deleteproportion", "0.1");
  p.Set("insertproportion", "0.1");
  p.Set("txn.lease_us", "5000");
  return p;
}

void EnableRetries(Properties& p) {
  p.Set("retry.max_attempts", "8");
  p.Set("retry.backoff_initial_us", "50");
  p.Set("retry.backoff_max_us", "2000");
}

void EnableAllFaults(Properties& p) {
  p.Set("fault.seed", "777");
  p.Set("fault.error_rate", "0.03");
  p.Set("fault.throttle_rate", "0.01");
  p.Set("fault.throttle_burst", "3");
  p.Set("fault.latency_spike_rate", "0.01");
  p.Set("fault.latency_spike_us", "200");
  p.Set("fault.lost_reply_rate", "0.01");
  p.Set("fault.crash_rate", "0.2");
  p.Set("fault.crash_points", "all");
}

TEST(ChaosTest, FaultyRunWithRetriesKeepsTheEconomyConsistent) {
  Properties p = ChaosBase();
  p.Set("threads", "4");
  EnableAllFaults(p);
  EnableRetries(p);

  DBFactory factory(p);
  ASSERT_TRUE(factory.Init().ok());
  ASSERT_NE(factory.fault_store(), nullptr)
      << "fault.* rates must install the fault-injection decorator";

  RunResult result;
  std::string report;
  ASSERT_TRUE(RunBenchmarkWithFactory(p, &factory, &result, &report).ok());

  // The substrate actually fired: injected faults and commit-pipeline
  // crashes happened during the measured window.
  kv::FaultStats faults = factory.fault_store()->stats();
  EXPECT_GT(faults.TotalInjected(), 0u);
  EXPECT_GT(faults.crashes, 0u);
  EXPECT_GT(result.injected_crashes, 0u);
  EXPECT_GT(result.retries, 0u) << "retryable faults must drive the loop";
  EXPECT_GT(result.committed, 0u);
  EXPECT_EQ(result.operations, result.committed + result.failed);

  // ... and still: not a cent missing.
  EXPECT_TRUE(result.validation.performed);
  EXPECT_TRUE(result.validation.passed)
      << "faults + retries must not corrupt the closed economy";
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);

  // The new series reach the text exporter...
  EXPECT_NE(report.find("[TX-RETRIES], "), std::string::npos) << report;
  EXPECT_NE(report.find("[TX-GIVEUPS], "), std::string::npos);
  EXPECT_NE(report.find("[INJECTED CRASHES], "), std::string::npos);
  EXPECT_NE(report.find("[TX-RETRY], Operations, "), std::string::npos);

  // ... and the JSON exporter.
  std::string json = JsonExporter::Export(result.MakeSummary(), result.op_stats);
  EXPECT_NE(json.find("\"TX-RETRIES\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"INJECTED CRASHES\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"TX-RETRY\""), std::string::npos);
}

TEST(ChaosTest, CrashedCommitsAreRolledForwardByLaterTransactions) {
  // Every commit "crashes" right after the TSR write — the atomic commit
  // point — abandoning all its locks.  With an instantly-expiring lease,
  // later transactions touching those keys must repair them by rolling the
  // pending writes forward (paper §III-C), and the run stays consistent.
  Properties p = ChaosBase();
  p.Set("threads", "1");
  p.Set("operationcount", "300");
  p.Set("recordcount", "50");
  p.Set("totalcash", "50000");
  p.Set("readproportion", "0");
  p.Set("readmodifywriteproportion", "1.0");
  p.Set("updateproportion", "0");
  p.Set("deleteproportion", "0");
  p.Set("insertproportion", "0");
  p.Set("txn.lease_us", "1");
  p.Set("fault.crash_rate", "1.0");
  p.Set("fault.crash_points", "after_tsr_put");
  EnableRetries(p);

  RunResult result;
  std::string report;
  ASSERT_TRUE(RunBenchmark(p, &result, &report).ok());
  EXPECT_GT(result.injected_crashes, 0u);
  EXPECT_GT(result.roll_forwards, 0u)
      << "abandoned committed transactions must be repaired under load";
  EXPECT_TRUE(result.validation.passed);
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);
  EXPECT_NE(report.find("[RECOVERY ROLLFORWARDS], "), std::string::npos);
}

TEST(ChaosTest, WithoutRetriesTheSameFaultsFailMoreTransactions) {
  Properties base = ChaosBase();
  base.Set("threads", "1");
  base.Set("operationcount", "800");
  EnableAllFaults(base);

  Properties with_retries = base;
  EnableRetries(with_retries);
  RunResult retried;
  ASSERT_TRUE(RunBenchmark(with_retries, &retried).ok());

  RunResult unretried;  // base leaves retry.max_attempts at its default of 1
  ASSERT_TRUE(RunBenchmark(base, &unretried).ok());

  EXPECT_FALSE(unretried.retries_enabled);
  EXPECT_EQ(unretried.retries, 0u);
  EXPECT_GT(unretried.failed, retried.failed)
      << "the retry loop must absorb transient faults the bare run eats";
  // Both stay consistent: failed transactions refund, they don't corrupt.
  EXPECT_TRUE(retried.validation.passed);
  EXPECT_TRUE(unretried.validation.passed);
}

TEST(ChaosTest, SyncWalGroupCommitSurvivesChaos) {
  // The full stack at once: CEW over the txn library, every fault class
  // firing, the retry loop on, and the local engine running a durable
  // (sync_wal) group-commit WAL.  The economy must balance, and the WAL's
  // durability series must surface through both exporters.
  std::string wal_path = ::testing::TempDir() + "chaos_group_commit.wal";
  std::remove(wal_path.c_str());

  Properties p = ChaosBase();
  p.Set("threads", "4");
  p.Set("memkv.wal_path", wal_path);
  p.Set("memkv.sync_wal", "true");
  p.Set("memkv.wal_group_commit", "true");
  p.Set("memkv.wal_group_max_batch", "32");
  EnableAllFaults(p);
  EnableRetries(p);

  DBFactory factory(p);
  ASSERT_TRUE(factory.Init().ok());
  ASSERT_NE(factory.local_engine(), nullptr);
  ASSERT_TRUE(factory.local_engine()->wal_enabled());

  RunResult result;
  std::string report;
  ASSERT_TRUE(RunBenchmarkWithFactory(p, &factory, &result, &report).ok());

  EXPECT_TRUE(result.validation.performed);
  EXPECT_TRUE(result.validation.passed)
      << "faults + durable group commit must not corrupt the closed economy";
  EXPECT_GT(result.wal_appends, 0u);
  EXPECT_GT(result.wal_syncs, 0u);
  EXPECT_LE(result.wal_syncs, result.wal_appends);
  EXPECT_GE(result.wal_max_batch, 1);

  // Summary lines and percentile series in the text exporter...
  EXPECT_NE(report.find("[WAL APPENDS], "), std::string::npos) << report;
  EXPECT_NE(report.find("[WAL SYNCS], "), std::string::npos);
  EXPECT_NE(report.find("[WAL-SYNC], Operations, "), std::string::npos);
  EXPECT_NE(report.find("[WAL-BATCH], Operations, "), std::string::npos);

  // ... and the JSON exporter.
  std::string json = JsonExporter::Export(result.MakeSummary(), result.op_stats);
  EXPECT_NE(json.find("\"WAL APPENDS\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"WAL-SYNC\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"WAL-BATCH\""), std::string::npos);

  std::remove(wal_path.c_str());
}

TEST(ChaosTest, FaultInjectionIsDeterministicUnderAFixedSeed) {
  // Single-threaded, no crash points, and a zero lease (an abandoned lock is
  // recoverable the instant it is seen, so repair never depends on the wall
  // clock): the injected-fault schedule is a pure function of fault.seed,
  // and two identical runs inject identical fault counts.
  auto run_stats = [] {
    Properties p = ChaosBase();
    p.Set("threads", "1");
    p.Set("operationcount", "600");
    p.Set("txn.lease_us", "0");
    p.Set("fault.seed", "31337");
    p.Set("fault.error_rate", "0.05");
    p.Set("fault.throttle_rate", "0.02");
    p.Set("fault.latency_spike_rate", "0.02");
    p.Set("fault.latency_spike_us", "50");
    p.Set("fault.lost_reply_rate", "0.02");
    EnableRetries(p);
    DBFactory factory(p);
    EXPECT_TRUE(factory.Init().ok());
    RunResult result;
    EXPECT_TRUE(RunBenchmarkWithFactory(p, &factory, &result).ok());
    EXPECT_TRUE(result.validation.passed);
    return factory.fault_store()->stats();
  };

  kv::FaultStats a = run_stats();
  kv::FaultStats b = run_stats();
  EXPECT_GT(a.TotalInjected(), 0u);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.throttles, b.throttles);
  EXPECT_EQ(a.latency_spikes, b.latency_spikes);
  EXPECT_EQ(a.lost_replies, b.lost_replies);
  EXPECT_EQ(a.crashes, b.crashes);
}

TEST(ChaosTest, BreakerLifecycleIsDeterministicUnderSustainedThrottle) {
  // Sustained injected throttle bursts against the breaker with its
  // *count-based* cooldown: the whole Open -> Half-Open -> (probe fails,
  // re-open | probes succeed, re-close) lifecycle is a pure function of the
  // seeded fault schedule, so two identical runs replay identical
  // BREAKER-*/SHED counters — and the economy never loses a cent.
  auto run = [](RunResult* result, std::string* report) {
    Properties p = ChaosBase();
    p.Set("threads", "1");
    p.Set("operationcount", "800");
    p.Set("txn.lease_us", "0");
    p.Set("fault.seed", "31337");
    p.Set("fault.throttle_rate", "0.01");
    p.Set("fault.throttle_burst", "6");
    EnableRetries(p);
    p.Set("retry.throttle_cooldown_us", "200");  // fast cooldown at test scale
    p.Set("breaker.enabled", "true");
    p.Set("breaker.window", "8");
    p.Set("breaker.min_samples", "4");
    p.Set("breaker.failure_ratio", "0.5");
    p.Set("breaker.cooldown_us", "10000000");  // clock out of the picture:
    p.Set("breaker.cooldown_rejects", "4");    // the reject count cools down
    p.Set("breaker.probes", "2");
    p.Set("shed.enabled", "true");
    p.Set("shed.max_inflight", "1");  // a trickle still reaches the breaker
    p.Set("shed.drop_reads", "true");
    ASSERT_TRUE(RunBenchmark(p, result, report).ok());
  };

  RunResult a;
  std::string report;
  run(&a, &report);

  // The full lifecycle actually happened under sustained throttle...
  EXPECT_TRUE(a.resilience_enabled);
  EXPECT_GT(a.breaker_opens, 0u) << "sustained throttle must trip the breaker";
  EXPECT_GT(a.breaker_fast_fails, 0u);
  EXPECT_GT(a.breaker_probes, 0u) << "the count-based cooldown must probe";
  EXPECT_GT(a.breaker_recloses, 0u)
      << "once the burst drains, probes must re-close the breaker";
  EXPECT_TRUE(a.shed_enabled);
  EXPECT_GT(a.shed_txns, 0u) << "brownout must shed while the breaker is open";
  EXPECT_GT(a.shed_reads, 0u) << "read-only transactions are dropped first";
  EXPECT_EQ(a.hedges_sent, 0u);  // hedging stayed off

  // ...without breaking the run's accounting or the economy.
  EXPECT_EQ(a.operations, a.committed + a.failed);
  EXPECT_GT(a.committed, 0u);
  EXPECT_TRUE(a.validation.performed);
  EXPECT_TRUE(a.validation.passed);
  EXPECT_DOUBLE_EQ(a.validation.anomaly_score, 0.0);

  // Summary lines and count series in the text exporter...
  EXPECT_NE(report.find("[BREAKER OPENS], "), std::string::npos) << report;
  EXPECT_NE(report.find("[BREAKER FAST-FAILS], "), std::string::npos);
  EXPECT_NE(report.find("[BREAKER PROBES], "), std::string::npos);
  EXPECT_NE(report.find("[BREAKER RECLOSES], "), std::string::npos);
  EXPECT_NE(report.find("[SHED TXNS], "), std::string::npos);
  EXPECT_NE(report.find("[BREAKER-OPEN], Operations, "), std::string::npos);
  EXPECT_NE(report.find("[SHED], Operations, "), std::string::npos);

  // ... and the JSON exporter.
  std::string json = JsonExporter::Export(a.MakeSummary(), a.op_stats);
  EXPECT_NE(json.find("\"BREAKER OPENS\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"SHED TXNS\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"BREAKER-OPEN\""), std::string::npos);

  // Same seed, same lifecycle: every overload-tolerance counter replays.
  RunResult b;
  run(&b, nullptr);
  EXPECT_EQ(a.breaker_opens, b.breaker_opens);
  EXPECT_EQ(a.breaker_fast_fails, b.breaker_fast_fails);
  EXPECT_EQ(a.breaker_probes, b.breaker_probes);
  EXPECT_EQ(a.breaker_recloses, b.breaker_recloses);
  EXPECT_EQ(a.shed_txns, b.shed_txns);
  EXPECT_EQ(a.shed_reads, b.shed_reads);
  EXPECT_EQ(a.operations, b.operations);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_TRUE(b.validation.passed);
}

TEST(ChaosTest, HedgedReadsAbsorbLatencySpikesDeterministically) {
  // Latency spikes (which stall but never fail) against hedged reads with a
  // fixed delay far below the spike: every spiked primary read loses to its
  // hedge, the run's tail detaches from the spikes, and — because spikes do
  // not alter control flow — two same-seed runs replay identical HEDGE-*
  // counters with an untouched economy.
  auto run = [](RunResult* result, std::string* report) {
    Properties p = ChaosBase();
    p.Set("threads", "1");
    p.Set("operationcount", "400");
    p.Set("txn.lease_us", "0");
    p.Set("fault.seed", "31337");
    p.Set("fault.latency_spike_rate", "0.02");
    p.Set("fault.latency_spike_us", "10000");  // 10ms spike vs 2ms hedge delay
    p.Set("hedge.enabled", "true");
    p.Set("hedge.delay_us", "2000");
    p.Set("hedge.workers", "8");
    ASSERT_TRUE(RunBenchmark(p, result, report).ok());
  };

  RunResult a;
  std::string report;
  run(&a, &report);

  EXPECT_TRUE(a.resilience_enabled);
  EXPECT_GT(a.hedges_sent, 0u) << "spiked primaries must trigger hedges";
  EXPECT_GT(a.hedges_won, 0u)
      << "with spike >> delay, hedges must beat stalled primaries";
  EXPECT_EQ(a.breaker_opens, 0u);  // spikes are slowness, not failure

  EXPECT_EQ(a.operations, a.committed + a.failed);
  EXPECT_TRUE(a.validation.performed);
  EXPECT_TRUE(a.validation.passed)
      << "a won hedge must be indistinguishable from a fast primary";
  EXPECT_DOUBLE_EQ(a.validation.anomaly_score, 0.0);

  EXPECT_NE(report.find("[HEDGES SENT], "), std::string::npos) << report;
  EXPECT_NE(report.find("[HEDGES WON], "), std::string::npos);
  EXPECT_NE(report.find("[HEDGE-SENT], Operations, "), std::string::npos);
  std::string json = JsonExporter::Export(a.MakeSummary(), a.op_stats);
  EXPECT_NE(json.find("\"HEDGES SENT\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"HEDGE-SENT\""), std::string::npos);

  RunResult b;
  run(&b, nullptr);
  EXPECT_EQ(a.hedges_sent, b.hedges_sent);
  EXPECT_EQ(a.hedges_won, b.hedges_won);
  EXPECT_EQ(a.hedges_wasted, b.hedges_wasted);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_TRUE(b.validation.passed);
}

TEST(ChaosTest, BrownoutShedsInsteadOfStallingOnASaturatedCloud) {
  // The CI brownout scenario: CEW against the WAS profile with the
  // container rate limit cut hard, so the cloud store itself rejects queue
  // waits as RateLimited.  The breaker must trip, the brownout layer must
  // shed load (reads first) instead of letting threads grind, the watchdog
  // must see progress (no stall flags), and validation must still balance.
  Properties p = ChaosBase();
  p.Set("db", "txn+was");
  p.Set("threads", "8");
  p.Set("operationcount", "600");
  p.Set("cloud.latency_scale", "0.01");
  p.Set("cloud.rate_limit", "300");
  p.Set("cloud.max_queue_delay_us", "10000");  // saturation rejects fast
  EnableRetries(p);
  p.Set("retry.throttle_cooldown_us", "500");
  p.Set("breaker.enabled", "true");
  p.Set("breaker.window", "16");
  p.Set("breaker.min_samples", "8");
  p.Set("breaker.failure_ratio", "0.5");
  p.Set("breaker.cooldown_us", "5000");
  p.Set("breaker.probes", "2");
  p.Set("shed.enabled", "true");
  p.Set("shed.max_inflight", "2");
  p.Set("status.interval", "0.1");
  p.Set("status.stall_windows", "3");

  RunResult result;
  std::string report;
  ASSERT_TRUE(RunBenchmark(p, &result, &report).ok());

  EXPECT_TRUE(result.resilience_enabled);
  EXPECT_GT(result.breaker_opens, 0u)
      << "a rate-limited container must trip its breaker";
  EXPECT_TRUE(result.shed_enabled);
  EXPECT_GT(result.shed_txns, 0u) << "overload must shed, not queue";
  EXPECT_EQ(result.stall_events, 0u)
      << "graceful degradation must look like progress to the watchdog";
  EXPECT_EQ(result.operations, result.committed + result.failed);
  EXPECT_GT(result.committed, 0u);
  EXPECT_TRUE(result.validation.performed);
  EXPECT_TRUE(result.validation.passed)
      << "shedding and fast-failing must never corrupt the economy";
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);
  EXPECT_NE(report.find("[BREAKER OPENS], "), std::string::npos) << report;
  EXPECT_NE(report.find("[SHED TXNS], "), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
