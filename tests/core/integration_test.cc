// End-to-end integration tests through the high-level RunBenchmark driver:
// full load/run/validate cycles against every binding family, reproducing
// the paper's headline behaviours at test scale.

#include <gtest/gtest.h>

#include "core/benchmark.h"

namespace ycsbt {
namespace core {
namespace {

Properties CewBase() {
  Properties p;
  p.Set("workload", "closed_economy");
  p.Set("recordcount", "300");
  p.Set("totalcash", "300000");
  p.Set("operationcount", "4000");
  p.Set("requestdistribution", "zipfian");
  p.Set("readproportion", "0.5");
  p.Set("readmodifywriteproportion", "0.5");
  return p;
}

TEST(IntegrationTest, CewOnMemkvSerialIsConsistent) {
  Properties p = CewBase();
  p.Set("db", "memkv");
  p.Set("threads", "1");
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok());
  EXPECT_EQ(result.operations, 4000u);
  EXPECT_TRUE(result.validation.performed);
  EXPECT_TRUE(result.validation.passed)
      << "no concurrency -> no anomalies (paper Fig 4, 1 thread)";
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);
}

TEST(IntegrationTest, CewOnRawHttpConcurrentProducesAnomalies) {
  // The paper's Tier-6 headline (Fig 4): a non-transactional store under
  // concurrent CEW develops a non-zero anomaly score.  The latency-injected
  // rawhttp binding plus heavy contention makes a zero score astronomically
  // unlikely; retry a few times to keep the test deterministic in practice.
  double score = 0.0;
  for (int attempt = 0; attempt < 5 && score == 0.0; ++attempt) {
    Properties p = CewBase();
    p.Set("db", "rawhttp");
    p.Set("rawhttp.latency_median_us", "400");
    p.Set("rawhttp.latency_floor_us", "300");
    p.Set("recordcount", "100");
    p.Set("totalcash", "100000");
    p.Set("operationcount", "3000");
    p.Set("threads", "8");
    RunResult result;
    ASSERT_TRUE(RunBenchmark(p, &result).ok());
    score = result.validation.anomaly_score;
  }
  EXPECT_GT(score, 0.0) << "lost updates must corrupt the closed economy";
}

TEST(IntegrationTest, CewOnClientTxnStoreConcurrentStaysConsistent) {
  Properties p = CewBase();
  p.Set("db", "txn+memkv");
  p.Set("threads", "8");
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok());
  EXPECT_TRUE(result.validation.passed)
      << "transactional execution must preserve the invariant";
  EXPECT_DOUBLE_EQ(result.validation.anomaly_score, 0.0);
  // Under contention some transactions abort; they must be counted.
  EXPECT_EQ(result.operations, result.committed + result.failed);
}

TEST(IntegrationTest, CewOn2PLEngineConcurrentStaysConsistent) {
  Properties p = CewBase();
  p.Set("db", "2pl+memkv");
  p.Set("threads", "6");
  p.Set("operationcount", "3000");
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok());
  EXPECT_TRUE(result.validation.passed);
}

TEST(IntegrationTest, BackwardCompatibleCoreWorkloadRuns) {
  // Plain-YCSB mode: CoreWorkload, no transactions, no validation stage.
  Properties p;
  p.Set("db", "memkv");
  p.Set("workload", "core");
  p.Set("recordcount", "200");
  p.Set("operationcount", "2000");
  p.Set("threads", "4");
  p.Set("dotransactions", "false");
  RunResult result;
  std::string report;
  ASSERT_TRUE(RunBenchmark(p, &result, &report).ok());
  EXPECT_EQ(result.operations, 2000u);
  EXPECT_FALSE(result.validation.performed) << "CoreWorkload has no validation";
  EXPECT_EQ(report.find("[START]"), std::string::npos);
}

TEST(IntegrationTest, CoreWorkloadWrappedOnNonTransactionalDbIsHarmless) {
  // YCSB+T backward compatibility (paper §IV-A): wrapping calls reach the
  // no-op defaults and the run behaves exactly like plain YCSB.
  Properties p;
  p.Set("db", "memkv");
  p.Set("workload", "core");
  p.Set("recordcount", "100");
  p.Set("operationcount", "500");
  p.Set("dotransactions", "true");
  RunResult result;
  std::string report;
  ASSERT_TRUE(RunBenchmark(p, &result, &report).ok());
  EXPECT_EQ(result.committed, 500u);
  EXPECT_NE(report.find("[START]"), std::string::npos);
  EXPECT_NE(report.find("[COMMIT]"), std::string::npos);
}

TEST(IntegrationTest, ReportHasListing3Structure) {
  Properties p = CewBase();
  p.Set("db", "memkv");
  p.Set("threads", "2");
  p.Set("operationcount", "1000");
  RunResult result;
  std::string report;
  ASSERT_TRUE(RunBenchmark(p, &result, &report).ok());
  EXPECT_NE(report.find("[TOTAL CASH], "), std::string::npos);
  EXPECT_NE(report.find("[COUNTED CASH], "), std::string::npos);
  EXPECT_NE(report.find("[ACTUAL OPERATIONS], 1000"), std::string::npos);
  EXPECT_NE(report.find("[ANOMALY SCORE], "), std::string::npos);
  EXPECT_NE(report.find("[OVERALL], Throughput(ops/sec), "), std::string::npos);
  EXPECT_NE(report.find("[TX-READ], Operations, "), std::string::npos);
  EXPECT_NE(report.find("[READ], AverageLatency(us), "), std::string::npos);
}

TEST(IntegrationTest, Tier5TransactionalOverheadIsMeasurable) {
  // The Fig 3 mechanism at test scale: the same workload on the same cloud
  // profile, wrapped vs raw.  The transactional run must commit writes with
  // extra round trips, so its throughput is strictly lower.
  Properties base;
  base.Set("workload", "core");
  base.Set("recordcount", "60");
  base.Set("operationcount", "600");
  base.Set("threads", "4");
  base.Set("readproportion", "0.5");
  base.Set("updateproportion", "0.5");
  base.Set("cloud.latency_scale", "0.02");  // scaled-down WAS latencies

  Properties non_tx = base;
  non_tx.Set("db", "was");
  non_tx.Set("dotransactions", "false");
  RunResult raw;
  ASSERT_TRUE(RunBenchmark(non_tx, &raw).ok());

  Properties tx = base;
  tx.Set("db", "txn+was");
  tx.Set("dotransactions", "true");
  RunResult wrapped;
  ASSERT_TRUE(RunBenchmark(tx, &wrapped).ok());

  EXPECT_GT(raw.throughput_ops_sec, 0.0);
  EXPECT_GT(wrapped.throughput_ops_sec, 0.0);
  EXPECT_LT(wrapped.throughput_ops_sec, raw.throughput_ops_sec)
      << "transactions cost round trips (paper Fig 3)";
}

TEST(IntegrationTest, SkipLoadReusesExistingData) {
  Properties p = CewBase();
  p.Set("db", "memkv");
  p.Set("operationcount", "500");
  DBFactory factory(p);
  ASSERT_TRUE(factory.Init().ok());
  RunResult first;
  ASSERT_TRUE(RunBenchmarkWithFactory(p, &factory, &first).ok());
  // Second run against the same factory, without reloading.
  p.Set("skipload", "true");
  RunResult second;
  ASSERT_TRUE(RunBenchmarkWithFactory(p, &factory, &second).ok());
  EXPECT_EQ(second.operations, 500u);
}

TEST(IntegrationTest, SeedMakesRunsReplayable) {
  auto run_counts = [](const char* seed) {
    Properties p;
    p.Set("db", "memkv");
    p.Set("workload", "core");
    p.Set("seed", seed);
    p.Set("recordcount", "100");
    p.Set("operationcount", "2000");
    p.Set("threads", "1");
    p.Set("readproportion", "0.5");
    p.Set("updateproportion", "0.3");
    p.Set("scanproportion", "0.1");
    p.Set("readmodifywriteproportion", "0.1");
    p.Set("maxscanlength", "10");
    RunResult result;
    EXPECT_TRUE(RunBenchmark(p, &result).ok());
    std::map<std::string, uint64_t> counts;
    for (const auto& op : result.op_stats) counts[op.name] = op.operations;
    return counts;
  };
  auto a = run_counts("42");
  auto b = run_counts("42");
  auto c = run_counts("43");
  EXPECT_EQ(a, b) << "identical seeds must replay identical op streams";
  EXPECT_NE(a, c) << "different seeds must diverge";
}

TEST(IntegrationTest, UnknownWorkloadOrDbFailsCleanly) {
  Properties p;
  p.Set("db", "memkv");
  p.Set("workload", "mystery");
  RunResult result;
  EXPECT_TRUE(RunBenchmark(p, &result).IsInvalidArgument());
  Properties p2;
  p2.Set("db", "mystery");
  EXPECT_TRUE(RunBenchmark(p2, &result).IsInvalidArgument());
}

TEST(IntegrationTest, OracleTimestampedTxnRunWorks) {
  Properties p = CewBase();
  p.Set("db", "txn+memkv");
  p.Set("txn.timestamps", "oracle");
  p.Set("txn.oracle_rtt_us", "10");
  p.Set("threads", "4");
  p.Set("operationcount", "1000");
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok());
  EXPECT_TRUE(result.validation.passed);
}

TEST(IntegrationTest, SerializableIsolationAlsoConsistent) {
  Properties p = CewBase();
  p.Set("db", "txn+memkv");
  p.Set("txn.isolation", "serializable");
  p.Set("threads", "4");
  p.Set("operationcount", "1500");
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok());
  EXPECT_TRUE(result.validation.passed);
}

}  // namespace
}  // namespace core
}  // namespace ycsbt
