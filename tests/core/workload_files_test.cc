// Compatibility sweep over the shipped properties files: every workload in
// workloads/ must parse, load, run and (where defined) validate against both
// a plain binding and the transactional one — the paper's backward
// compatibility and migration story, end to end.

#include <gtest/gtest.h>

#include <string>

#include "core/benchmark.h"

#ifndef YCSBT_WORKLOADS_DIR
#define YCSBT_WORKLOADS_DIR "workloads"
#endif

namespace ycsbt {
namespace core {
namespace {

class WorkloadFileTest : public ::testing::TestWithParam<const char*> {};

Properties LoadFile(const std::string& name) {
  Properties p;
  EXPECT_TRUE(
      p.LoadFromFile(std::string(YCSBT_WORKLOADS_DIR) + "/" + name).ok())
      << name;
  // Shrink for test speed; the files themselves stay paper-sized.
  p.Set("recordcount", p.Get("workload") == "write_skew" ? "100" : "200");
  p.Set("operationcount", "500");
  p.Set("maxscanlength", "20");
  p.Set("threads", "2");
  return p;
}

TEST_P(WorkloadFileTest, RunsOnPlainBinding) {
  Properties p = LoadFile(GetParam());
  p.Set("db", "memkv");
  p.Set("dotransactions", "false");  // plain-YCSB mode
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok()) << GetParam();
  EXPECT_EQ(result.operations, 500u);
}

TEST_P(WorkloadFileTest, RunsWrappedOnTransactionalBinding) {
  Properties p = LoadFile(GetParam());
  p.Set("db", "txn+memkv");
  p.Set("dotransactions", "true");
  // write_skew exists to *exhibit* skew under snapshot isolation, so its
  // validation may legitimately fail there; only the serializable run is
  // guaranteed clean.  (The anomaly-vs-isolation matrix has its own test.)
  if (p.Get("workload") == "write_skew") p.Set("txn.isolation", "serializable");
  RunResult result;
  ASSERT_TRUE(RunBenchmark(p, &result).ok()) << GetParam();
  EXPECT_EQ(result.operations, result.committed + result.failed);
  if (result.validation.performed) {
    EXPECT_TRUE(result.validation.passed)
        << GetParam() << ": transactional run must validate clean";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShippedFiles, WorkloadFileTest,
    ::testing::Values("workloada.properties", "workloadb.properties",
                      "workloadc.properties", "workloadd.properties",
                      "workloade.properties", "workloadf.properties",
                      "closed_economy.properties", "write_skew.properties"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      return name.substr(0, name.find('.'));
    });

}  // namespace
}  // namespace core
}  // namespace ycsbt
