#include "measurement/exporter.h"

#include <gtest/gtest.h>

namespace ycsbt {
namespace {

RunSummary CewSummary() {
  RunSummary s;
  s.runtime_ms = 124619.0;
  s.throughput_ops_sec = 8024.46;
  s.operations = 1000000;
  s.has_validation = true;
  s.validation_passed = false;
  s.extra = {{"TOTAL CASH", "1000000"},
             {"COUNTED CASH", "999971"},
             {"ACTUAL OPERATIONS", "1000000"},
             {"ANOMALY SCORE", "2.9e-05"}};
  return s;
}

std::vector<OpStats> SampleOps() {
  OpStats read;
  read.name = "READ";
  read.operations = 1110103;
  read.average_latency_us = 1522.26;
  read.min_latency_us = 1174;
  read.max_latency_us = 165508;
  read.p50_latency_us = 1500;
  read.p95_latency_us = 2100;
  read.p99_latency_us = 4000;
  read.p999_latency_us = 21000;
  read.return_counts["OK"] = 1110103;
  OpStats idle;
  idle.name = "NEVER-RAN";
  return {read, idle};
}

TEST(TextExporterTest, MatchesListing3Shape) {
  std::string out = TextExporter::Export(CewSummary(), SampleOps());
  EXPECT_NE(out.find("Validation failed"), std::string::npos);
  EXPECT_NE(out.find("[TOTAL CASH], 1000000"), std::string::npos);
  EXPECT_NE(out.find("[COUNTED CASH], 999971"), std::string::npos);
  EXPECT_NE(out.find("[ANOMALY SCORE], 2.9e-05"), std::string::npos);
  EXPECT_NE(out.find("Database validation failed"), std::string::npos);
  EXPECT_NE(out.find("[OVERALL], RunTime(ms), 124619"), std::string::npos);
  EXPECT_NE(out.find("[OVERALL], Throughput(ops/sec), 8024.46"), std::string::npos);
  EXPECT_NE(out.find("[READ], Operations, 1110103"), std::string::npos);
  EXPECT_NE(out.find("[READ], AverageLatency(us), 1522.26"), std::string::npos);
  EXPECT_NE(out.find("[READ], MinLatency(us), 1174"), std::string::npos);
  EXPECT_NE(out.find("[READ], MaxLatency(us), 165508"), std::string::npos);
  EXPECT_NE(out.find("[READ], 99.9thPercentileLatency(us), 21000"),
            std::string::npos);
  EXPECT_NE(out.find("[READ], Return=OK, 1110103"), std::string::npos);
}

TEST(TextExporterTest, SkipsEmptySeries) {
  std::string out = TextExporter::Export(CewSummary(), SampleOps());
  EXPECT_EQ(out.find("NEVER-RAN"), std::string::npos);
}

TEST(TextExporterTest, PassedValidationHeader) {
  RunSummary s = CewSummary();
  s.validation_passed = true;
  std::string out = TextExporter::Export(s, {});
  EXPECT_NE(out.find("Database validation passed"), std::string::npos);
  EXPECT_EQ(out.find("Database validation failed"), std::string::npos);
}

TEST(TextExporterTest, NoValidationNoHeader) {
  RunSummary s;
  s.runtime_ms = 10;
  s.throughput_ops_sec = 100;
  std::string out = TextExporter::Export(s, {});
  EXPECT_EQ(out.find("validation"), std::string::npos);
  EXPECT_NE(out.find("[OVERALL], RunTime(ms), 10"), std::string::npos);
}

TEST(JsonExporterTest, WellFormedAndComplete) {
  std::string out = JsonExporter::Export(CewSummary(), SampleOps());
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  EXPECT_NE(out.find("\"runtime_ms\":124619"), std::string::npos);
  EXPECT_NE(out.find("\"validation_passed\":false"), std::string::npos);
  EXPECT_NE(out.find("\"TOTAL CASH\":\"1000000\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"READ\""), std::string::npos);
  EXPECT_NE(out.find("\"returns\":{\"OK\":1110103}"), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < out.size(); ++i) {
    char c = out[i];
    if (c == '"' && (i == 0 || out[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TextExporterTest, EmitsIntervalTrajectory) {
  RunSummary s = CewSummary();
  s.intervals = {{1.0, 8123, 8123.0, 117.2}, {2.0, 8200, 8200.0, 115.9}};
  std::string out = TextExporter::Export(s, {});
  EXPECT_NE(out.find("[INTERVAL], EndTime(s), Operations, Throughput(ops/sec), "
                     "AverageLatency(us)"),
            std::string::npos);
  EXPECT_NE(out.find("[INTERVAL], 1, 8123, 8123, 117.2"), std::string::npos);
  EXPECT_NE(out.find("[INTERVAL], 2, 8200, 8200, 115.9"), std::string::npos);
}

TEST(TextExporterTest, NoIntervalsNoTrajectoryBlock) {
  std::string out = TextExporter::Export(CewSummary(), SampleOps());
  EXPECT_EQ(out.find("[INTERVAL]"), std::string::npos);
}

TEST(JsonExporterTest, EmitsIntervalArray) {
  RunSummary s = CewSummary();
  s.intervals = {{0.5, 100, 200.0, 50.0}};
  std::string out = JsonExporter::Export(s, {});
  EXPECT_NE(out.find("\"intervals\":[{\"end_s\":0.5,\"ops\":100,"
                     "\"ops_per_sec\":200,\"avg_us\":50}]"),
            std::string::npos);
  std::string without = JsonExporter::Export(CewSummary(), {});
  EXPECT_EQ(without.find("intervals"), std::string::npos);
}

TEST(TextExporterTest, OpenLoopExtendsIntervalColumns) {
  RunSummary s = CewSummary();
  s.open_loop = true;
  IntervalSample w;
  w.end_seconds = 1.0;
  w.operations = 8123;
  w.ops_per_sec = 8123.0;
  w.avg_latency_us = 117.2;
  w.sched_lag_avg_us = 950.5;
  w.backlog = 12;
  w.arrival_drops = 3;
  s.intervals = {w};
  std::string out = TextExporter::Export(s, {});
  EXPECT_NE(out.find("AverageLatency(us), SchedLag(us), Backlog, ArrivalDrops"),
            std::string::npos);
  EXPECT_NE(out.find("[INTERVAL], 1, 8123, 8123, 117.2, 950.5, 12, 3"),
            std::string::npos);
  // Closed-loop output never grows the columns, whatever the sample holds.
  s.open_loop = false;
  out = TextExporter::Export(s, {});
  EXPECT_EQ(out.find("SchedLag"), std::string::npos);
  EXPECT_NE(out.find("[INTERVAL], 1, 8123, 8123, 117.2\n"), std::string::npos);
}

TEST(JsonExporterTest, OpenLoopExtendsIntervalObjects) {
  RunSummary s = CewSummary();
  s.open_loop = true;
  IntervalSample w;
  w.end_seconds = 0.5;
  w.operations = 100;
  w.ops_per_sec = 200.0;
  w.avg_latency_us = 50.0;
  w.sched_lag_avg_us = 75.25;
  w.backlog = 7;
  w.arrival_drops = 2;
  s.intervals = {w};
  std::string out = JsonExporter::Export(s, {});
  EXPECT_NE(out.find("\"avg_us\":50,\"sched_lag_us\":75.25,\"backlog\":7,"
                     "\"arrival_drops\":2}"),
            std::string::npos);
  s.open_loop = false;
  out = JsonExporter::Export(s, {});
  EXPECT_EQ(out.find("sched_lag_us"), std::string::npos);
}

TEST(JsonExporterTest, EscapesSpecialCharacters) {
  RunSummary s;
  s.extra = {{"KEY \"quoted\"", "line\nbreak\\slash"}};
  std::string out = JsonExporter::Export(s, {});
  EXPECT_NE(out.find("KEY \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.find("line\\nbreak\\\\slash"), std::string::npos);
}

}  // namespace
}  // namespace ycsbt
