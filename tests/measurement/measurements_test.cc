#include "measurement/measurements.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ycsbt {
namespace {

TEST(MeasurementsTest, EmptyRegistrySnapshots) {
  Measurements m;
  EXPECT_TRUE(m.Snapshot().empty());
  OpStats s = m.SnapshotOp("READ");
  EXPECT_EQ(s.operations, 0u);
  EXPECT_EQ(s.name, "READ");
}

TEST(MeasurementsTest, MeasureAccumulates) {
  Measurements m;
  m.Measure("READ", 100);
  m.Measure("READ", 200);
  m.Measure("READ", 300);
  OpStats s = m.SnapshotOp("READ");
  EXPECT_EQ(s.operations, 3u);
  EXPECT_DOUBLE_EQ(s.average_latency_us, 200.0);
  EXPECT_EQ(s.min_latency_us, 100);
  EXPECT_EQ(s.max_latency_us, 300);
}

TEST(MeasurementsTest, ReturnCodesCounted) {
  Measurements m;
  m.ReportStatus("UPDATE", Status::OK());
  m.ReportStatus("UPDATE", Status::OK());
  m.ReportStatus("UPDATE", Status::Conflict());
  OpStats s = m.SnapshotOp("UPDATE");
  EXPECT_EQ(s.return_counts["OK"], 2u);
  EXPECT_EQ(s.return_counts["Conflict"], 1u);
}

TEST(MeasurementsTest, SeriesAreIndependent) {
  Measurements m;
  m.Measure("READ", 10);
  m.Measure("COMMIT", 1000);
  EXPECT_EQ(m.SnapshotOp("READ").max_latency_us, 10);
  EXPECT_EQ(m.SnapshotOp("COMMIT").max_latency_us, 1000);
}

TEST(MeasurementsTest, SnapshotSortedByName) {
  Measurements m;
  m.Measure("UPDATE", 1);
  m.Measure("COMMIT", 1);
  m.Measure("READ", 1);
  auto all = m.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "COMMIT");
  EXPECT_EQ(all[1].name, "READ");
  EXPECT_EQ(all[2].name, "UPDATE");
}

TEST(MeasurementsTest, TotalOperationsSumsNamedSeries) {
  Measurements m;
  for (int i = 0; i < 5; ++i) m.Measure("READ", 1);
  for (int i = 0; i < 3; ++i) m.Measure("UPDATE", 1);
  m.Measure("COMMIT", 1);
  EXPECT_EQ(m.TotalOperations({"READ", "UPDATE"}), 8u);
  EXPECT_EQ(m.TotalOperations({"ABSENT"}), 0u);
}

TEST(MeasurementsTest, ResetDropsEverything) {
  Measurements m;
  m.Measure("READ", 1);
  m.Reset();
  EXPECT_TRUE(m.Snapshot().empty());
}

TEST(MeasurementsTest, ConcurrentMeasureIsLossless) {
  Measurements m;
  constexpr int kThreads = 8, kPer = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        m.Measure("READ", i % 100);
        m.ReportStatus("READ", Status::OK());
      }
    });
  }
  for (auto& th : pool) th.join();
  OpStats s = m.SnapshotOp("READ");
  EXPECT_EQ(s.operations, static_cast<uint64_t>(kThreads) * kPer);
  EXPECT_EQ(s.return_counts["OK"], static_cast<uint64_t>(kThreads) * kPer);
}

TEST(MeasurementsTest, ConcurrentDistinctSeriesCreation) {
  Measurements m;
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        m.Measure("OP" + std::to_string((t * 200 + i) % 37), 1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(m.Snapshot().size(), 37u);
}

TEST(MeasurementsTest, PercentilesOrdered) {
  Measurements m;
  for (int i = 1; i <= 1000; ++i) m.Measure("SCAN", i);
  OpStats s = m.SnapshotOp("SCAN");
  EXPECT_LE(s.p50_latency_us, s.p95_latency_us);
  EXPECT_LE(s.p95_latency_us, s.p99_latency_us);
  EXPECT_LE(s.p99_latency_us, s.max_latency_us);
  EXPECT_NEAR(static_cast<double>(s.p50_latency_us), 500.0, 20.0);
}

}  // namespace
}  // namespace ycsbt
