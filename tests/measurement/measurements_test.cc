#include "measurement/measurements.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ycsbt {
namespace {

TEST(MeasurementsTest, EmptyRegistrySnapshots) {
  Measurements m;
  EXPECT_TRUE(m.Snapshot().empty());
  OpStats s = m.SnapshotOp("READ");
  EXPECT_EQ(s.operations, 0u);
  EXPECT_EQ(s.name, "READ");
}

TEST(MeasurementsTest, MeasureAccumulates) {
  Measurements m;
  m.Measure("READ", 100);
  m.Measure("READ", 200);
  m.Measure("READ", 300);
  OpStats s = m.SnapshotOp("READ");
  EXPECT_EQ(s.operations, 3u);
  EXPECT_DOUBLE_EQ(s.average_latency_us, 200.0);
  EXPECT_EQ(s.min_latency_us, 100);
  EXPECT_EQ(s.max_latency_us, 300);
}

TEST(MeasurementsTest, ReturnCodesCounted) {
  Measurements m;
  m.ReportStatus("UPDATE", Status::OK());
  m.ReportStatus("UPDATE", Status::OK());
  m.ReportStatus("UPDATE", Status::Conflict());
  OpStats s = m.SnapshotOp("UPDATE");
  EXPECT_EQ(s.return_counts["OK"], 2u);
  EXPECT_EQ(s.return_counts["Conflict"], 1u);
}

TEST(MeasurementsTest, SeriesAreIndependent) {
  Measurements m;
  m.Measure("READ", 10);
  m.Measure("COMMIT", 1000);
  EXPECT_EQ(m.SnapshotOp("READ").max_latency_us, 10);
  EXPECT_EQ(m.SnapshotOp("COMMIT").max_latency_us, 1000);
}

TEST(MeasurementsTest, SnapshotSortedByName) {
  Measurements m;
  m.Measure("UPDATE", 1);
  m.Measure("COMMIT", 1);
  m.Measure("READ", 1);
  auto all = m.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "COMMIT");
  EXPECT_EQ(all[1].name, "READ");
  EXPECT_EQ(all[2].name, "UPDATE");
}

TEST(MeasurementsTest, TotalOperationsSumsNamedSeries) {
  Measurements m;
  for (int i = 0; i < 5; ++i) m.Measure("READ", 1);
  for (int i = 0; i < 3; ++i) m.Measure("UPDATE", 1);
  m.Measure("COMMIT", 1);
  EXPECT_EQ(m.TotalOperations({"READ", "UPDATE"}), 8u);
  EXPECT_EQ(m.TotalOperations({"ABSENT"}), 0u);
}

TEST(MeasurementsTest, ResetDropsEverything) {
  Measurements m;
  m.Measure("READ", 1);
  m.Reset();
  EXPECT_TRUE(m.Snapshot().empty());
}

TEST(MeasurementsTest, ConcurrentMeasureIsLossless) {
  Measurements m;
  constexpr int kThreads = 8, kPer = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        m.Measure("READ", i % 100);
        m.ReportStatus("READ", Status::OK());
      }
    });
  }
  for (auto& th : pool) th.join();
  OpStats s = m.SnapshotOp("READ");
  EXPECT_EQ(s.operations, static_cast<uint64_t>(kThreads) * kPer);
  EXPECT_EQ(s.return_counts["OK"], static_cast<uint64_t>(kThreads) * kPer);
}

TEST(MeasurementsTest, ConcurrentDistinctSeriesCreation) {
  Measurements m;
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        m.Measure("OP" + std::to_string((t * 200 + i) % 37), 1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(m.Snapshot().size(), 37u);
}

TEST(OpRegistryTest, InternIsDenseAndIdempotent) {
  OpRegistry r;
  OpId read = r.Intern("READ");
  OpId commit = r.Intern("COMMIT");
  EXPECT_EQ(read.index, 0u);
  EXPECT_EQ(commit.index, 1u);
  EXPECT_EQ(r.Intern("READ"), read);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Name(read), "READ");
  EXPECT_EQ(r.Find("COMMIT"), commit);
  EXPECT_FALSE(r.Find("ABSENT").valid());
  EXPECT_EQ(r.Name(OpId{}), "");
}

TEST(MeasurementsTest, RegisteredButIdleOpsAreInvisible) {
  Measurements m;
  OpId read = m.RegisterOp("READ");
  m.RegisterOp("COMMIT");
  EXPECT_TRUE(m.Snapshot().empty());  // nothing recorded yet
  m.Measure(read, 42);
  auto all = m.Snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "READ");
}

TEST(MeasurementsTest, InternedRecordMatchesStringShim) {
  Measurements m;
  OpId update = m.RegisterOp("UPDATE");
  m.Record(update, 100, Status::Code::kOk);
  m.Record(update, 300, Status::Code::kConflict);
  m.Measure("UPDATE", 200);  // string shim lands in the same series
  OpStats s = m.SnapshotOp("UPDATE");
  EXPECT_EQ(s.operations, 3u);
  EXPECT_DOUBLE_EQ(s.average_latency_us, 200.0);
  EXPECT_EQ(s.return_counts["OK"], 1u);
  EXPECT_EQ(s.return_counts["Conflict"], 1u);
}

TEST(ThreadSinkTest, SamplesInvisibleUntilFlush) {
  Measurements m;
  OpId read = m.RegisterOp("READ");
  ThreadSink* sink = m.CreateSink();
  sink->Record(read, 10, Status::Code::kOk);
  sink->Record(read, 30, Status::Code::kNotFound);
  EXPECT_EQ(m.SnapshotOp("READ").operations, 0u);
  sink->Flush();
  OpStats s = m.SnapshotOp("READ");
  EXPECT_EQ(s.operations, 2u);
  EXPECT_DOUBLE_EQ(s.average_latency_us, 20.0);
  EXPECT_EQ(s.return_counts["OK"], 1u);
  EXPECT_EQ(s.return_counts["NotFound"], 1u);
}

TEST(ThreadSinkTest, RepeatedFlushDoesNotDoubleCount) {
  Measurements m;
  OpId read = m.RegisterOp("READ");
  ThreadSink* sink = m.CreateSink();
  sink->Record(read, 10, Status::Code::kOk);
  sink->Flush();
  sink->Flush();  // local state was drained; nothing new to merge
  EXPECT_EQ(m.SnapshotOp("READ").operations, 1u);
  sink->Record(read, 20, Status::Code::kOk);
  sink->Flush();
  EXPECT_EQ(m.SnapshotOp("READ").operations, 2u);
}

TEST(ThreadSinkTest, HandlesOpsRegisteredAfterCreation) {
  Measurements m;
  ThreadSink* sink = m.CreateSink();
  OpId late = m.RegisterOp("TX-READ");  // registered after the sink existed
  sink->Record(late, 5, Status::Code::kOk);
  sink->Flush();
  EXPECT_EQ(m.SnapshotOp("TX-READ").operations, 1u);
}

TEST(MeasurementsTest, IntervalSeriesRoundTrips) {
  Measurements m;
  m.RecordInterval({0.5, 100, 200.0, 50.0});
  m.RecordInterval({1.0, 150, 300.0, 40.0});
  auto windows = m.Intervals();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].end_seconds, 0.5);
  EXPECT_EQ(windows[1].operations, 150u);
  m.Reset();
  EXPECT_TRUE(m.Intervals().empty());
}

TEST(MeasurementsTest, PercentilesOrdered) {
  Measurements m;
  for (int i = 1; i <= 1000; ++i) m.Measure("SCAN", i);
  OpStats s = m.SnapshotOp("SCAN");
  EXPECT_LE(s.p50_latency_us, s.p95_latency_us);
  EXPECT_LE(s.p95_latency_us, s.p99_latency_us);
  EXPECT_LE(s.p99_latency_us, s.p999_latency_us);
  EXPECT_LE(s.p999_latency_us, s.max_latency_us);
  EXPECT_NEAR(static_cast<double>(s.p50_latency_us), 500.0, 20.0);
}

}  // namespace
}  // namespace ycsbt
