#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "measurement/measurements.h"

namespace ycsbt {
namespace {

// N threads × M ops across K op names, recorded through per-thread sinks
// (the runner's hot path), must merge with zero lost samples and exact
// return-code counts.  This is the test the sanitizer CI job runs under
// TSan: any data race between recording, flushing and snapshotting threads
// fails the build.

constexpr int kThreads = 8;
constexpr int kOpNames = 7;
// Per-thread op count: a multiple of kOpNames (so the rotation hits every
// series equally often) and even (so OK/Aborted split exactly in half).
constexpr int kOpsPerThread = 49000;

std::string OpName(int k) { return "OP-" + std::to_string(k); }

TEST(MeasurementsStressTest, SinkMergeIsLossless) {
  Measurements m;
  // Register all series up front (what MeasuredDB does in its constructor).
  std::vector<OpId> ids;
  for (int k = 0; k < kOpNames; ++k) ids.push_back(m.RegisterOp(OpName(k)));

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&m, &ids, t] {
      ThreadSink* sink = m.CreateSink();
      for (int i = 0; i < kOpsPerThread; ++i) {
        int k = (t + i) % kOpNames;
        // Alternate OK / Aborted deterministically so exact per-code counts
        // are checkable after the merge.
        Status::Code code =
            i % 2 == 0 ? Status::Code::kOk : Status::Code::kAborted;
        sink->Record(ids[static_cast<size_t>(k)], i % 1000, code);
        // Flush mid-run occasionally: merges must compose, not replace.
        if (i % 20000 == 19999) sink->Flush();
      }
      sink->Flush();
    });
  }
  for (auto& th : pool) th.join();

  uint64_t total = 0, ok_total = 0, aborted_total = 0;
  for (int k = 0; k < kOpNames; ++k) {
    OpStats s = m.SnapshotOp(OpName(k));
    total += s.operations;
    ok_total += s.return_counts["OK"];
    aborted_total += s.return_counts["Aborted"];
  }
  constexpr uint64_t kExpected =
      static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(total, kExpected);
  EXPECT_EQ(ok_total, kExpected / 2);
  EXPECT_EQ(aborted_total, kExpected / 2);
  // Every thread touches every series the same number of times modulo the
  // rotation, so each series holds threads*ops/names samples exactly.
  for (int k = 0; k < kOpNames; ++k) {
    EXPECT_EQ(m.SnapshotOp(OpName(k)).operations, kExpected / kOpNames)
        << OpName(k);
  }
}

TEST(MeasurementsStressTest, SinksAndStringShimCompose) {
  Measurements m;
  OpId shared = m.RegisterOp("SHARED");
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&m, shared, t] {
      if (t % 2 == 0) {
        // Sink path (lock-free thread-local).
        ThreadSink* sink = m.CreateSink();
        for (int i = 0; i < kOpsPerThread; ++i) {
          sink->Record(shared, i % 100, Status::Code::kOk);
        }
        sink->Flush();
      } else {
        // Seed-style string shim (locked shared series).
        for (int i = 0; i < kOpsPerThread; ++i) {
          m.Measure("SHARED", i % 100);
          m.ReportStatus("SHARED", Status::OK());
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  OpStats s = m.SnapshotOp("SHARED");
  constexpr uint64_t kExpected =
      static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(s.operations, kExpected);
  EXPECT_EQ(s.return_counts["OK"], kExpected);
}

TEST(MeasurementsStressTest, ConcurrentSnapshotsSeeConsistentFlushes) {
  Measurements m;
  OpId op = m.RegisterOp("READ");
  std::atomic<bool> done{false};
  // A reader thread snapshots continuously while writers record and flush;
  // under TSan this proves snapshot/merge never races with the hot path.
  std::thread reader([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_relaxed)) {
      uint64_t now = m.SnapshotOp("READ").operations;
      EXPECT_GE(now, last);  // merged counts only ever grow
      last = now;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      ThreadSink* sink = m.CreateSink();
      for (int i = 0; i < kOpsPerThread; ++i) {
        sink->Record(op, i % 50, Status::Code::kOk);
        if (i % 1000 == 999) sink->Flush();
      }
      sink->Flush();
    });
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(m.SnapshotOp("READ").operations, 4u * kOpsPerThread);
}

}  // namespace
}  // namespace ycsbt
