#include "kv/fault_env.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "common/properties.h"
#include "kv/env.h"

namespace ycsbt {
namespace kv {
namespace {

class FaultEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    path_ = ::testing::TempDir() + "fault_env_" +
            std::to_string(counter.fetch_add(1)) + ".dat";
    (void)Env::Default()->RemoveFile(path_);
  }
  void TearDown() override { (void)Env::Default()->RemoveFile(path_); }

  std::string ReadBack(const std::string& path) {
    std::string data;
    EXPECT_TRUE(Env::Default()->ReadFileToString(path, &data).ok());
    return data;
  }

  std::string path_;
};

TEST_F(FaultEnvTest, DisarmedPassesEverythingThrough) {
  StorageFaultOptions opts;
  opts.torn_write_at = 1;
  opts.write_error_rate = 1.0;
  opts.sync_fail_at = 1;
  FaultInjectingEnv env(Env::Default(), opts);  // never armed

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path_, true, &file).ok());
  EXPECT_TRUE(file->Append("hello").ok());
  EXPECT_TRUE(file->Sync().ok());
  EXPECT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadBack(path_), "hello");
  EXPECT_EQ(env.stats().TotalInjected(), 0u);
  EXPECT_EQ(env.stats().appends, 0u);  // disarmed ops aren't even counted
}

TEST_F(FaultEnvTest, TornWriteLandsHalfTheBuffer) {
  StorageFaultOptions opts;
  opts.torn_write_at = 2;
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path_, true, &file).ok());
  ASSERT_TRUE(file->Append("aaaa").ok());
  Status s = file->Append("bbbbbb");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadBack(path_), "aaaabbb");  // exactly half of the second buffer
  EXPECT_EQ(env.stats().torn_writes, 1u);
}

TEST_F(FaultEnvTest, WriteErrorLeavesNoBytes) {
  StorageFaultOptions opts;
  opts.write_error_rate = 1.0;
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path_, true, &file).ok());
  EXPECT_TRUE(file->Append("doomed").IsIOError());
  EXPECT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadBack(path_), "");
  EXPECT_EQ(env.stats().write_errors, 1u);
}

TEST_F(FaultEnvTest, FsyncgateDropsDirtyBytesAndRecovers) {
  StorageFaultOptions opts;
  opts.sync_fail_at = 2;
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path_, true, &file).ok());
  ASSERT_TRUE(file->Append("durable|").ok());
  ASSERT_TRUE(file->Sync().ok());  // sync #1: watermark = 8 bytes
  ASSERT_TRUE(file->Append("dirty").ok());
  EXPECT_TRUE(file->Sync().IsIOError());  // sync #2 fails, dirty pages GONE
  // fsyncgate: the fd is not poisoned forever — later writes and syncs work,
  // but the dropped bytes never come back.
  EXPECT_TRUE(file->Append("after").ok());
  EXPECT_TRUE(file->Sync().ok());
  EXPECT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadBack(path_), "durable|after");
  EXPECT_EQ(env.stats().sync_failures, 1u);
}

TEST_F(FaultEnvTest, EnospcCutsTheCrossingAppendShort) {
  StorageFaultOptions opts;
  opts.enospc_after_bytes = 6;
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path_, true, &file).ok());
  ASSERT_TRUE(file->Append("1234").ok());     // 4 of 6 budget bytes
  EXPECT_TRUE(file->Append("5678").IsIOError());  // crosses: 2 bytes land
  EXPECT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadBack(path_), "123456");
  EXPECT_EQ(env.stats().enospc_failures, 1u);
}

TEST_F(FaultEnvTest, ReadFlipCorruptsTheViewNotTheDisk) {
  std::string other = path_ + ".other";
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(path_, true, &file).ok());
    ASSERT_TRUE(file->Append("payload").ok());
    ASSERT_TRUE(file->Close().ok());
    ASSERT_TRUE(Env::Default()->NewWritableFile(other, true, &file).ok());
    ASSERT_TRUE(file->Append("payload").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  StorageFaultOptions opts;
  opts.read_flip_offset = 2;
  opts.read_flip_file = ".other";  // substring filter: only `other` flips
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  std::string clean, flipped;
  ASSERT_TRUE(env.ReadFileToString(path_, &clean).ok());
  ASSERT_TRUE(env.ReadFileToString(other, &flipped).ok());
  EXPECT_EQ(clean, "payload");
  EXPECT_NE(flipped, "payload");
  EXPECT_EQ(flipped.size(), 7u);
  EXPECT_EQ(ReadBack(other), "payload");  // the disk bytes are untouched
  EXPECT_EQ(env.stats().read_flips, 1u);
  (void)Env::Default()->RemoveFile(other);
}

TEST_F(FaultEnvTest, NamedCrashPointFreezesOnTheRequestedPass) {
  StorageFaultOptions opts;
  opts.crash_point = "wal_pre_sync";
  opts.crash_point_pass = 3;
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  EXPECT_TRUE(env.MaybeCrashPoint("wal_pre_sync").ok());   // pass 1
  EXPECT_TRUE(env.MaybeCrashPoint("ckpt_pre_rename").ok()); // other point
  EXPECT_TRUE(env.MaybeCrashPoint("wal_pre_sync").ok());   // pass 2
  EXPECT_TRUE(env.MaybeCrashPoint("wal_pre_sync").IsIOError());  // pass 3
  EXPECT_TRUE(env.crashed());
  // The frozen env fails everything but close/exists.
  std::unique_ptr<WritableFile> file;
  EXPECT_TRUE(env.NewWritableFile(path_, true, &file).IsIOError());
  std::string data;
  EXPECT_TRUE(env.ReadFileToString(path_, &data).IsIOError());
  EXPECT_EQ(env.stats().crash_fired_at, "wal_pre_sync");
}

TEST_F(FaultEnvTest, CrashWriteOffsetFreezesMidAppend) {
  StorageFaultOptions opts;
  opts.crash_write_offset = 6;
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path_, true, &file).ok());
  ASSERT_TRUE(file->Append("1234").ok());
  EXPECT_TRUE(file->Append("5678").IsIOError());  // dies at byte 6: "56" lands
  EXPECT_TRUE(env.crashed());
  EXPECT_TRUE(file->Close().ok());  // close never mutates bytes
  EXPECT_EQ(ReadBack(path_), "123456");
}

TEST_F(FaultEnvTest, CrashDropsUnsyncedBytesWhenAsked) {
  StorageFaultOptions opts;
  opts.crash_point = "wal_pre_sync";
  opts.drop_unsynced_on_crash = true;
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path_, true, &file).ok());
  ASSERT_TRUE(file->Append("synced").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("lost").ok());
  EXPECT_TRUE(env.MaybeCrashPoint("wal_pre_sync").IsIOError());
  EXPECT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadBack(path_), "synced");  // the page cache never hit media
}

TEST_F(FaultEnvTest, CrashRollsBackRenamesNotMadeDurable) {
  std::string tmp = path_ + ".tmp";
  auto write_file = [&](const std::string& p, const std::string& bytes) {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(Env::Default()->NewWritableFile(p, true, &f).ok());
    ASSERT_TRUE(f->Append(bytes).ok());
    ASSERT_TRUE(f->Close().ok());
  };
  write_file(path_, "old snapshot");
  write_file(tmp, "new snapshot");

  StorageFaultOptions opts;
  opts.crash_point = "ckpt_post_rename_pre_trunc";
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  ASSERT_TRUE(env.RenameFile(tmp, path_).ok());
  EXPECT_EQ(ReadBack(path_), "new snapshot");  // visible pre-crash
  EXPECT_TRUE(env.MaybeCrashPoint("ckpt_post_rename_pre_trunc").IsIOError());
  // No directory fsync happened, so the crash resurrected the old dirents:
  // the destination holds its previous content again and the source is back.
  EXPECT_EQ(ReadBack(path_), "old snapshot");
  EXPECT_EQ(ReadBack(tmp), "new snapshot");
  (void)Env::Default()->RemoveFile(tmp);
}

TEST_F(FaultEnvTest, DirFsyncMakesRenamesCrashDurable) {
  std::string tmp = path_ + ".tmp";
  auto write_file = [&](const std::string& p, const std::string& bytes) {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(Env::Default()->NewWritableFile(p, true, &f).ok());
    ASSERT_TRUE(f->Append(bytes).ok());
    ASSERT_TRUE(f->Close().ok());
  };
  write_file(path_, "old snapshot");
  write_file(tmp, "new snapshot");

  StorageFaultOptions opts;
  opts.crash_point = "ckpt_post_trunc";
  FaultInjectingEnv env(Env::Default(), opts);
  env.set_enabled(true);

  ASSERT_TRUE(env.RenameFile(tmp, path_).ok());
  ASSERT_TRUE(env.SyncDirOf(path_).ok());  // the durability point
  EXPECT_TRUE(env.MaybeCrashPoint("ckpt_post_trunc").IsIOError());
  EXPECT_EQ(ReadBack(path_), "new snapshot");  // rename survived the crash
  EXPECT_FALSE(Env::Default()->FileExists(tmp));
}

TEST_F(FaultEnvTest, SameSeedSameStreamSameSchedule) {
  auto run = [this](uint64_t seed) {
    StorageFaultOptions opts;
    opts.seed = seed;
    opts.write_error_rate = 0.3;
    opts.sync_fail_rate = 0.2;
    FaultInjectingEnv env(Env::Default(), opts);
    env.set_enabled(true);
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env.NewWritableFile(path_, true, &file).ok());
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += file->Append("x").ok() ? 'a' : 'A';
      pattern += file->Sync().ok() ? 's' : 'S';
    }
    EXPECT_TRUE(file->Close().ok());
    return pattern;
  };
  std::string first = run(42);
  std::string second = run(42);
  std::string different = run(43);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, different);
  EXPECT_NE(first.find('A'), std::string::npos);  // faults actually fired
  EXPECT_NE(first.find('a'), std::string::npos);
}

TEST_F(FaultEnvTest, FromPropertiesReadsTheNamespace) {
  Properties props;
  props.Set("storage.fault.seed", "99");
  props.Set("storage.fault.torn_write_at", "7");
  props.Set("storage.fault.write_error_rate", "0.25");
  props.Set("storage.fault.sync_fail_at", "3");
  props.Set("storage.fault.enospc_after_bytes", "4096");
  props.Set("storage.fault.read_flip_offset", "12");
  props.Set("storage.fault.crash_point", "ckpt_pre_rename");
  props.Set("storage.fault.crash_point_pass", "0");  // floored to 1
  props.Set("storage.fault.crash_file", "wal");
  props.Set("storage.fault.drop_unsynced_on_crash", "true");
  StorageFaultOptions opts = StorageFaultOptions::FromProperties(props);
  EXPECT_EQ(opts.seed, 99u);
  EXPECT_EQ(opts.torn_write_at, 7u);
  EXPECT_DOUBLE_EQ(opts.write_error_rate, 0.25);
  EXPECT_EQ(opts.sync_fail_at, 3u);
  EXPECT_EQ(opts.enospc_after_bytes, 4096u);
  EXPECT_EQ(opts.read_flip_offset, 12);
  EXPECT_EQ(opts.crash_point, "ckpt_pre_rename");
  EXPECT_EQ(opts.crash_point_pass, 1u);
  EXPECT_EQ(opts.crash_file, "wal");
  EXPECT_TRUE(opts.drop_unsynced_on_crash);
  EXPECT_TRUE(opts.Any());
  EXPECT_FALSE(StorageFaultOptions{}.Any());
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
