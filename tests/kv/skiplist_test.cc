#include "kv/skiplist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace ycsbt {
namespace kv {
namespace {

TEST(SkipListTest, EmptyList) {
  SkipList<int> list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Find("anything"), nullptr);
  SkipList<int>::Iterator it(&list);
  it.SeekToFirst();
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, InsertFindErase) {
  SkipList<int> list;
  EXPECT_TRUE(list.Upsert("b", 2));
  EXPECT_TRUE(list.Upsert("a", 1));
  EXPECT_TRUE(list.Upsert("c", 3));
  EXPECT_EQ(list.size(), 3u);
  ASSERT_NE(list.Find("b"), nullptr);
  EXPECT_EQ(*list.Find("b"), 2);
  EXPECT_TRUE(list.Erase("b"));
  EXPECT_EQ(list.Find("b"), nullptr);
  EXPECT_FALSE(list.Erase("b"));
  EXPECT_EQ(list.size(), 2u);
}

TEST(SkipListTest, UpsertOverwrites) {
  SkipList<int> list;
  EXPECT_TRUE(list.Upsert("k", 1));
  EXPECT_FALSE(list.Upsert("k", 2));  // not newly inserted
  EXPECT_EQ(*list.Find("k"), 2);
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, IterationIsSorted) {
  SkipList<int> list;
  std::vector<std::string> keys = {"delta", "alpha", "echo", "charlie", "bravo"};
  for (size_t i = 0; i < keys.size(); ++i) {
    list.Upsert(keys[i], static_cast<int>(i));
  }
  SkipList<int>::Iterator it(&list);
  std::vector<std::string> seen;
  for (it.SeekToFirst(); it.Valid(); it.Next()) seen.push_back(it.key());
  std::vector<std::string> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected);
}

TEST(SkipListTest, SeekFindsLowerBound) {
  SkipList<int> list;
  list.Upsert("b", 1);
  list.Upsert("d", 2);
  list.Upsert("f", 3);
  SkipList<int>::Iterator it(&list);
  it.Seek("c");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");
  it.Seek("d");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");
  it.Seek("g");
  EXPECT_FALSE(it.Valid());
  it.Seek("");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "b");
}

TEST(SkipListTest, MatchesReferenceMapUnderRandomOps) {
  // Property test: a long random op sequence must agree with std::map.
  SkipList<uint64_t> list;
  std::map<std::string, uint64_t> reference;
  Random64 rng(2024);
  for (int i = 0; i < 20000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(500));
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {  // upsert
        uint64_t v = rng.Next();
        list.Upsert(key, v);
        reference[key] = v;
        break;
      }
      case 2: {  // erase
        bool a = list.Erase(key);
        bool b = reference.erase(key) > 0;
        ASSERT_EQ(a, b);
        break;
      }
      case 3: {  // lookup
        auto* found = list.Find(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          ASSERT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(list.size(), reference.size());
  // Final full-order comparison.
  SkipList<uint64_t>::Iterator it(&list);
  auto rit = reference.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++rit) {
    ASSERT_NE(rit, reference.end());
    EXPECT_EQ(it.key(), rit->first);
    EXPECT_EQ(it.value(), rit->second);
  }
  EXPECT_EQ(rit, reference.end());
}

TEST(SkipListTest, LargeSequentialInsert) {
  SkipList<int> list;
  for (int i = 0; i < 10000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%06d", i);
    list.Upsert(buf, i);
  }
  EXPECT_EQ(list.size(), 10000u);
  EXPECT_EQ(*list.Find("005000"), 5000);
  SkipList<int>::Iterator it(&list);
  it.Seek("009999");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.value(), 9999);
  it.Next();
  EXPECT_FALSE(it.Valid());
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
