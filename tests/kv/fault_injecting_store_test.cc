#include "kv/fault_injecting_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace ycsbt {
namespace kv {
namespace {

FaultOptions ErrorOnlyOptions(double rate, uint64_t seed = 0xFA117C0DEull) {
  FaultOptions o;
  o.seed = seed;
  o.error_rate = rate;
  return o;
}

std::unique_ptr<FaultInjectingStore> MakeStore(const FaultOptions& options) {
  auto store =
      std::make_unique<FaultInjectingStore>(std::make_shared<ShardedStore>(), options);
  store->set_enabled(true);
  return store;
}

TEST(FaultOptionsTest, FromProperties) {
  Properties props;
  props.Set("fault.seed", "99");
  props.Set("fault.error_rate", "0.25");
  props.Set("fault.throttle_rate", "0.1");
  props.Set("fault.throttle_burst", "7");
  props.Set("fault.latency_spike_rate", "0.05");
  props.Set("fault.latency_spike_us", "500");
  props.Set("fault.lost_reply_rate", "0.02");
  props.Set("fault.crash_rate", "0.5");
  props.Set("fault.crash_points", "after_lock_puts, before_tsr_delete");
  FaultOptions o = FaultOptions::FromProperties(props);
  EXPECT_EQ(o.seed, 99u);
  EXPECT_DOUBLE_EQ(o.error_rate, 0.25);
  EXPECT_DOUBLE_EQ(o.throttle_rate, 0.1);
  EXPECT_EQ(o.throttle_burst, 7);
  EXPECT_DOUBLE_EQ(o.latency_spike_rate, 0.05);
  EXPECT_EQ(o.latency_spike_us, 500u);
  EXPECT_DOUBLE_EQ(o.lost_reply_rate, 0.02);
  EXPECT_DOUBLE_EQ(o.crash_rate, 0.5);
  EXPECT_EQ(o.crash_points, CrashPointBit(CrashPoint::kAfterLockPuts) |
                                CrashPointBit(CrashPoint::kBeforeTsrDelete));
  EXPECT_TRUE(o.Any());
}

TEST(FaultOptionsTest, AllCrashPointsToken) {
  Properties props;
  props.Set("fault.crash_points", "all");
  FaultOptions o = FaultOptions::FromProperties(props);
  for (CrashPoint p :
       {CrashPoint::kAfterLockPuts, CrashPoint::kAfterTsrPut,
        CrashPoint::kMidRollForward, CrashPoint::kBeforeTsrDelete}) {
    EXPECT_NE(o.crash_points & CrashPointBit(p), 0u) << CrashPointName(p);
  }
}

TEST(FaultOptionsTest, DefaultIsInert) {
  EXPECT_FALSE(FaultOptions::FromProperties(Properties()).Any());
}

TEST(FaultInjectingStoreTest, DisarmedStoreInjectsNothing) {
  FaultOptions o = ErrorOnlyOptions(1.0);  // every request would fail
  FaultInjectingStore store(std::make_shared<ShardedStore>(), o);
  ASSERT_FALSE(store.enabled());  // constructed disarmed
  ASSERT_TRUE(store.Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_EQ(store.stats().TotalInjected(), 0u);
  EXPECT_EQ(store.stats().requests, 0u);
}

TEST(FaultInjectingStoreTest, InjectedErrorsAreTransientRejections) {
  auto store = MakeStore(ErrorOnlyOptions(1.0));
  Status s = store->Put("k", "v");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTimeout() || s.IsIOError()) << s.ToString();
  // The base op must NOT have applied.
  store->set_enabled(false);
  std::string value;
  EXPECT_TRUE(store->Get("k", &value).IsNotFound());
}

TEST(FaultInjectingStoreTest, SameSeedSameSequenceIsIdentical) {
  auto run = [](uint64_t seed) {
    FaultOptions o;
    o.seed = seed;
    o.error_rate = 0.3;
    o.throttle_rate = 0.05;
    o.lost_reply_rate = 0.1;
    auto store = MakeStore(o);
    std::vector<Status::Code> outcomes;
    for (int i = 0; i < 400; ++i) {
      std::string key = "k" + std::to_string(i % 32);
      Status s = (i % 3 == 0) ? store->Get(key, nullptr)
                              : store->Put(key, "v" + std::to_string(i));
      outcomes.push_back(s.code());
    }
    return std::make_pair(outcomes, store->stats());
  };

  auto [outcomes_a, stats_a] = run(1234);
  auto [outcomes_b, stats_b] = run(1234);
  EXPECT_EQ(outcomes_a, outcomes_b);  // full schedule replay
  EXPECT_EQ(stats_a.errors, stats_b.errors);
  EXPECT_EQ(stats_a.timeouts, stats_b.timeouts);
  EXPECT_EQ(stats_a.throttles, stats_b.throttles);
  EXPECT_EQ(stats_a.lost_replies, stats_b.lost_replies);
  EXPECT_GT(stats_a.TotalInjected(), 0u);

  auto [outcomes_c, stats_c] = run(9999);
  EXPECT_NE(outcomes_a, outcomes_c);  // a different seed is a different world
}

TEST(FaultInjectingStoreTest, LostReplyAppliesTheMutation) {
  FaultOptions o;
  o.lost_reply_rate = 1.0;  // every mutation applies but reports Timeout
  auto store = MakeStore(o);
  Status s = store->Put("k", "v");
  EXPECT_TRUE(s.IsTimeout()) << s.ToString();
  EXPECT_EQ(store->stats().lost_replies, 1u);
  // The write IS there — the ambiguity the txn layer must arbitrate.
  std::string value;
  ASSERT_TRUE(store->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
}

TEST(FaultInjectingStoreTest, ThrottleBurstRejectsFollowingRequests) {
  FaultOptions o;
  o.throttle_rate = 1.0;  // first draw starts a burst immediately
  o.throttle_burst = 4;
  auto store = MakeStore(o);
  for (int i = 0; i < 4; ++i) {
    Status s = store->Get("k", nullptr);
    EXPECT_TRUE(s.IsRateLimited()) << i << ": " << s.ToString();
  }
  EXPECT_EQ(store->stats().throttles, 4u);
}

TEST(FaultInjectingStoreTest, CrashPointsRespectTheMask) {
  FaultOptions o;
  o.crash_rate = 1.0;
  o.crash_points = CrashPointBit(CrashPoint::kAfterTsrPut);
  auto store = MakeStore(o);
  EXPECT_FALSE(store->ShouldCrash(CrashPoint::kAfterLockPuts));
  EXPECT_TRUE(store->ShouldCrash(CrashPoint::kAfterTsrPut));
  EXPECT_FALSE(store->ShouldCrash(CrashPoint::kBeforeTsrDelete));
  EXPECT_EQ(store->stats().crashes, 1u);
}

TEST(FaultInjectingStoreTest, ParseCrashPointTokens) {
  EXPECT_EQ(ParseCrashPointToken("after_lock_puts"),
            CrashPointBit(CrashPoint::kAfterLockPuts));
  EXPECT_EQ(ParseCrashPointToken("after_tsr_put"),
            CrashPointBit(CrashPoint::kAfterTsrPut));
  // The paper-facing alias: the commit point IS the TSR put.
  EXPECT_EQ(ParseCrashPointToken("before_roll_forward"),
            CrashPointBit(CrashPoint::kAfterTsrPut));
  EXPECT_EQ(ParseCrashPointToken("mid_roll_forward"),
            CrashPointBit(CrashPoint::kMidRollForward));
  EXPECT_EQ(ParseCrashPointToken("before_tsr_delete"),
            CrashPointBit(CrashPoint::kBeforeTsrDelete));
  EXPECT_EQ(ParseCrashPointToken("nonsense"), 0u);
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
