#include "kv/store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

namespace ycsbt {
namespace kv {
namespace {

TEST(ShardedStoreTest, GetMissingIsNotFound) {
  ShardedStore store;
  std::string value;
  EXPECT_TRUE(store.Get("nope", &value).IsNotFound());
}

TEST(ShardedStoreTest, PutGetDelete) {
  ShardedStore store;
  uint64_t etag = 0;
  ASSERT_TRUE(store.Put("k", "v", &etag).ok());
  EXPECT_GT(etag, kEtagAbsent);
  std::string value;
  uint64_t read_etag = 0;
  ASSERT_TRUE(store.Get("k", &value, &read_etag).ok());
  EXPECT_EQ(value, "v");
  EXPECT_EQ(read_etag, etag);
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_TRUE(store.Get("k", &value).IsNotFound());
  EXPECT_TRUE(store.Delete("k").IsNotFound());
}

TEST(ShardedStoreTest, EtagsAdvanceOnEveryWrite) {
  ShardedStore store;
  uint64_t e1, e2;
  ASSERT_TRUE(store.Put("k", "v1", &e1).ok());
  ASSERT_TRUE(store.Put("k", "v2", &e2).ok());
  EXPECT_GT(e2, e1);
}

TEST(ShardedStoreTest, ConditionalPutIfAbsent) {
  ShardedStore store;
  uint64_t etag = 0;
  ASSERT_TRUE(store.ConditionalPut("k", "v", kEtagAbsent, &etag).ok());
  // Second if-absent put must lose.
  EXPECT_TRUE(store.ConditionalPut("k", "w", kEtagAbsent).IsConflict());
  std::string value;
  store.Get("k", &value);
  EXPECT_EQ(value, "v");
}

TEST(ShardedStoreTest, ConditionalPutIfMatch) {
  ShardedStore store;
  uint64_t etag = 0;
  ASSERT_TRUE(store.Put("k", "v1", &etag).ok());
  uint64_t etag2 = 0;
  ASSERT_TRUE(store.ConditionalPut("k", "v2", etag, &etag2).ok());
  EXPECT_GT(etag2, etag);
  // Stale etag loses.
  EXPECT_TRUE(store.ConditionalPut("k", "v3", etag).IsConflict());
  // Missing key with an if-match expectation is a conflict, not NotFound.
  EXPECT_TRUE(store.ConditionalPut("missing", "v", 42).IsConflict());
}

TEST(ShardedStoreTest, ConditionalDelete) {
  ShardedStore store;
  uint64_t etag = 0;
  ASSERT_TRUE(store.Put("k", "v", &etag).ok());
  EXPECT_TRUE(store.ConditionalDelete("k", etag + 99).IsConflict());
  ASSERT_TRUE(store.ConditionalDelete("k", etag).ok());
  EXPECT_TRUE(store.ConditionalDelete("k", etag).IsConflict());  // gone
}

TEST(ShardedStoreTest, ScanOrderedAcrossShards) {
  StoreOptions options;
  options.num_shards = 8;  // force cross-shard merge
  ShardedStore store(options);
  for (int i = 99; i >= 0; --i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%03d", i);
    ASSERT_TRUE(store.Put(buf, std::to_string(i)).ok());
  }
  std::vector<ScanEntry> out;
  ASSERT_TRUE(store.Scan("key010", 20, &out).ok());
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(out.front().key, "key010");
  EXPECT_EQ(out.back().key, "key029");
  for (size_t i = 1; i < out.size(); ++i) ASSERT_LT(out[i - 1].key, out[i].key);
}

TEST(ShardedStoreTest, ScanHonoursLimitAndExhaustion) {
  ShardedStore store;
  store.Put("a", "1");
  store.Put("b", "2");
  std::vector<ScanEntry> out;
  ASSERT_TRUE(store.Scan("", 10, &out).ok());
  EXPECT_EQ(out.size(), 2u);
  ASSERT_TRUE(store.Scan("", 0, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(store.Scan("zzz", 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ShardedStoreTest, CountTracksLiveKeys) {
  ShardedStore store;
  EXPECT_EQ(store.Count(), 0u);
  store.Put("a", "1");
  store.Put("b", "2");
  store.Put("a", "3");  // overwrite, not a new key
  EXPECT_EQ(store.Count(), 2u);
  store.Delete("a");
  EXPECT_EQ(store.Count(), 1u);
}

TEST(ShardedStoreTest, SingleKeyCasIsAtomicUnderContention) {
  // N threads CAS-increment one counter key; every increment must land.
  ShardedStore store;
  store.Put("counter", "0");
  constexpr int kThreads = 4, kIncrements = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {
          std::string value;
          uint64_t etag;
          ASSERT_TRUE(store.Get("counter", &value, &etag).ok());
          int64_t next = std::stoll(value) + 1;
          if (store.ConditionalPut("counter", std::to_string(next), etag).ok()) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  std::string value;
  store.Get("counter", &value);
  EXPECT_EQ(value, std::to_string(kThreads * kIncrements));
}

TEST(ShardedStoreTest, BlindPutsLoseUpdatesUnderContention) {
  // The non-transactional anomaly mechanism: read-modify-write with blind
  // puts drops increments under concurrency.  (Not a strict guarantee per
  // run, but with this much contention a loss is effectively certain.)
  ShardedStore store;
  store.Put("counter", "0");
  constexpr int kThreads = 8, kIncrements = 4000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        std::string value;
        ASSERT_TRUE(store.Get("counter", &value).ok());
        ASSERT_TRUE(store.Put("counter", std::to_string(std::stoll(value) + 1)).ok());
      }
    });
  }
  for (auto& th : pool) th.join();
  std::string value;
  store.Get("counter", &value);
  EXPECT_LE(std::stoll(value), static_cast<int64_t>(kThreads) * kIncrements);
}

class PersistentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ = ::testing::TempDir() + "store_wal_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(wal_path_.c_str());
  }
  void TearDown() override { std::remove(wal_path_.c_str()); }

  StoreOptions PersistentOptions() {
    StoreOptions options;
    options.wal_path = wal_path_;
    return options;
  }

  std::string wal_path_;
};

TEST_F(PersistentStoreTest, OpsBeforeOpenFail) {
  ShardedStore store(PersistentOptions());
  EXPECT_TRUE(store.Put("k", "v").IsIOError());
}

TEST_F(PersistentStoreTest, RecoversAfterRestart) {
  {
    ShardedStore store(PersistentOptions());
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Put("a", "1").ok());
    ASSERT_TRUE(store.Put("b", "2").ok());
    ASSERT_TRUE(store.Put("a", "updated").ok());
    ASSERT_TRUE(store.Delete("b").ok());
  }
  ShardedStore revived(PersistentOptions());
  ASSERT_TRUE(revived.Open().ok());
  std::string value;
  ASSERT_TRUE(revived.Get("a", &value).ok());
  EXPECT_EQ(value, "updated");
  EXPECT_TRUE(revived.Get("b", &value).IsNotFound());
  EXPECT_EQ(revived.Count(), 1u);
}

TEST_F(PersistentStoreTest, ReopensWritableAfterTornTail) {
  {
    ShardedStore store(PersistentOptions());
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Put("a", "1").ok());
    ASSERT_TRUE(store.Put("b", "2").ok());
  }
  // Crash mid-append: chop bytes off the final record.
  {
    std::ifstream in(wal_path_, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(wal_path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() - 3));
  }
  {
    ShardedStore revived(PersistentOptions());
    ASSERT_TRUE(revived.Open().ok());  // recovery stops at the last good record
    std::string value;
    ASSERT_TRUE(revived.Get("a", &value).ok());
    EXPECT_EQ(value, "1");
    EXPECT_TRUE(revived.Get("b", &value).IsNotFound());
    // The store must stay writable after the repair...
    ASSERT_TRUE(revived.Put("c", "3").ok());
  }
  // ...and the new write must itself be durable.
  ShardedStore again(PersistentOptions());
  ASSERT_TRUE(again.Open().ok());
  std::string value;
  ASSERT_TRUE(again.Get("c", &value).ok());
  EXPECT_EQ(value, "3");
}

TEST_F(PersistentStoreTest, ReopensWritableAfterCorruptLastRecord) {
  {
    ShardedStore store(PersistentOptions());
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Put("a", "1").ok());
    ASSERT_TRUE(store.Put("b", "2").ok());
  }
  // Flip the final byte (inside the last record's payload): the CRC check
  // treats a corrupt FINAL frame as a torn tail, not fatal corruption.
  {
    std::fstream f(wal_path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    long last = static_cast<long>(f.tellg()) - 1;
    char c;
    f.seekg(last);
    f.get(c);
    f.seekp(last);
    f.put(static_cast<char>(c ^ 0xFF));
  }
  ShardedStore revived(PersistentOptions());
  ASSERT_TRUE(revived.Open().ok());
  std::string value;
  ASSERT_TRUE(revived.Get("a", &value).ok());
  EXPECT_TRUE(revived.Get("b", &value).IsNotFound());
  EXPECT_TRUE(revived.Put("c", "3").ok());
}

class CheckpointStoreTest : public PersistentStoreTest {
 protected:
  void SetUp() override {
    PersistentStoreTest::SetUp();
    checkpoint_path_ = wal_path_ + ".ckpt";
    std::remove(checkpoint_path_.c_str());
  }
  void TearDown() override {
    std::remove(checkpoint_path_.c_str());
    PersistentStoreTest::TearDown();
  }

  StoreOptions CheckpointOptions() {
    StoreOptions options = PersistentOptions();
    options.checkpoint_path = checkpoint_path_;
    return options;
  }

  size_t FileSize(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return 0;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    return size < 0 ? 0 : static_cast<size_t>(size);
  }

  std::string checkpoint_path_;
};

TEST_F(CheckpointStoreTest, RequiresBothPaths) {
  ShardedStore volatile_store;
  EXPECT_TRUE(volatile_store.Checkpoint().IsInvalidArgument());
}

TEST_F(CheckpointStoreTest, CheckpointTruncatesWalAndSurvivesRestart) {
  {
    ShardedStore store(CheckpointOptions());
    ASSERT_TRUE(store.Open().ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(store.Put("k" + std::to_string(i), std::to_string(i)).ok());
    }
    ASSERT_TRUE(store.Delete("k50").ok());
    size_t wal_before = FileSize(wal_path_);
    ASSERT_GT(wal_before, 0u);
    ASSERT_TRUE(store.Checkpoint().ok());
    EXPECT_EQ(FileSize(wal_path_), 0u) << "WAL must be compacted away";
    EXPECT_GT(FileSize(checkpoint_path_), 0u);
    // Post-checkpoint writes land in the fresh WAL.
    ASSERT_TRUE(store.Put("after", "1").ok());
    EXPECT_GT(FileSize(wal_path_), 0u);
  }
  ShardedStore revived(CheckpointOptions());
  ASSERT_TRUE(revived.Open().ok());
  EXPECT_EQ(revived.Count(), 100u);  // 100 - deleted + after
  std::string value;
  ASSERT_TRUE(revived.Get("k99", &value).ok());
  EXPECT_EQ(value, "99");
  EXPECT_TRUE(revived.Get("k50", &value).IsNotFound());
  ASSERT_TRUE(revived.Get("after", &value).ok());
}

TEST_F(CheckpointStoreTest, StaleWalRecordsAreFilteredByWatermark) {
  // Crash window: checkpoint renamed but WAL not yet truncated -> on reopen
  // the WAL still holds records the snapshot already contains, including a
  // PUT of a key that was later deleted.  The watermark must filter them.
  uint64_t deleted_put_etag;
  {
    ShardedStore store(CheckpointOptions());
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Put("keep", "v1").ok());
    ASSERT_TRUE(store.Put("gone", "x", &deleted_put_etag).ok());
    ASSERT_TRUE(store.Delete("gone").ok());
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  // Simulate the un-truncated WAL: re-append the pre-checkpoint history.
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(wal_path_).ok());
    ASSERT_TRUE(
        wal.Append({WalRecord::Kind::kPut, deleted_put_etag, "gone", "x"}, false)
            .ok());
    ASSERT_TRUE(
        wal.Append({WalRecord::Kind::kPut, deleted_put_etag - 1, "keep", "v1"},
                   false)
            .ok());
  }
  ShardedStore revived(CheckpointOptions());
  ASSERT_TRUE(revived.Open().ok());
  std::string value;
  EXPECT_TRUE(revived.Get("gone", &value).IsNotFound())
      << "stale pre-checkpoint PUT must not resurrect a deleted key";
  ASSERT_TRUE(revived.Get("keep", &value).ok());
  EXPECT_EQ(value, "v1");
}

TEST_F(CheckpointStoreTest, RepeatedCheckpointsCompose) {
  ShardedStore store(CheckpointOptions());
  ASSERT_TRUE(store.Open().ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          store.Put("r" + std::to_string(round) + "k" + std::to_string(i), "v")
              .ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  ShardedStore revived(CheckpointOptions());
  ASSERT_TRUE(revived.Open().ok());
  EXPECT_EQ(revived.Count(), 60u);
}

TEST_F(CheckpointStoreTest, EtagsContinueAfterCheckpointRecovery) {
  uint64_t last_etag = 0;
  {
    ShardedStore store(CheckpointOptions());
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Put("k", "v", &last_etag).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  ShardedStore revived(CheckpointOptions());
  ASSERT_TRUE(revived.Open().ok());
  uint64_t fresh = 0;
  ASSERT_TRUE(revived.Put("k2", "v2", &fresh).ok());
  EXPECT_GT(fresh, last_etag);
  // CAS on the checkpoint-recovered record still works.
  uint64_t recovered_etag = 0;
  std::string value;
  ASSERT_TRUE(revived.Get("k", &value, &recovered_etag).ok());
  EXPECT_EQ(recovered_etag, last_etag);
  EXPECT_TRUE(revived.ConditionalPut("k", "v2", recovered_etag).ok());
}

TEST_F(CheckpointStoreTest, EmptyKeysAreReserved) {
  ShardedStore store;
  EXPECT_TRUE(store.Put("", "v").IsInvalidArgument());
  EXPECT_TRUE(store.ConditionalPut("", "v", kEtagAbsent).IsInvalidArgument());
}

TEST_F(PersistentStoreTest, EtagSourceSurvivesRestart) {
  uint64_t etag_before = 0;
  {
    ShardedStore store(PersistentOptions());
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Put("k", "v", &etag_before).ok());
  }
  ShardedStore revived(PersistentOptions());
  ASSERT_TRUE(revived.Open().ok());
  uint64_t etag_after = 0;
  ASSERT_TRUE(revived.Put("k2", "v2", &etag_after).ok());
  EXPECT_GT(etag_after, etag_before) << "etags must not repeat after recovery";
  // And the recovered record's etag still matches for CAS.
  uint64_t stored = 0;
  std::string value;
  ASSERT_TRUE(revived.Get("k", &value, &stored).ok());
  EXPECT_EQ(stored, etag_before);
  EXPECT_TRUE(revived.ConditionalPut("k", "v2", stored).ok());
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
