#include "kv/instrumented_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "common/sync.h"

namespace ycsbt {
namespace kv {
namespace {

std::shared_ptr<InstrumentedStore> MakeStore() {
  return std::make_shared<InstrumentedStore>(std::make_shared<ShardedStore>());
}

TEST(InstrumentedStoreTest, PassesThroughAllOps) {
  auto store = MakeStore();
  uint64_t etag = 0;
  ASSERT_TRUE(store->Put("k", "v", &etag).ok());
  std::string value;
  ASSERT_TRUE(store->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE(store->ConditionalPut("k", "v2", etag).ok());
  std::vector<ScanEntry> rows;
  ASSERT_TRUE(store->Scan("", 10, &rows).ok());
  EXPECT_EQ(rows.size(), 1u);
  ASSERT_TRUE(store->Delete("k").ok());
  EXPECT_EQ(store->Count(), 0u);
}

TEST(InstrumentedStoreTest, LatencyModelDelaysOps) {
  auto store = MakeStore();
  store->set_latency_model(LatencyModel(3000.0, 0.0));  // fixed 3 ms
  store->Put("k", "v");
  Stopwatch watch;
  std::string value;
  store->Get("k", &value);
  EXPECT_GE(watch.ElapsedMicros(), 2500u);
}

TEST(InstrumentedStoreTest, HookSeesBeforeAndAfter) {
  auto store = MakeStore();
  int before = 0, after = 0;
  store->set_hook([&](InstrumentedStore::Op op, const std::string& key, bool is_after) {
    EXPECT_EQ(op, InstrumentedStore::Op::kPut);
    EXPECT_EQ(key, "k");
    (is_after ? after : before)++;
  });
  store->Put("k", "v");
  EXPECT_EQ(before, 1);
  EXPECT_EQ(after, 1);
}

TEST(InstrumentedStoreTest, DeterministicLostUpdate) {
  // Forces the classic lost-update interleaving the Tier-6 consistency
  // experiments rely on:
  //   T1 reads balance=100          T2 reads balance=100
  //   T1 writes 101                 T2 writes 101   <- T1's update lost
  // The hook holds T1 between its read and its write until T2 has read.
  auto store = MakeStore();
  store->Put("acct", "100");

  CountDownLatch t1_read(1);   // T1 has finished its read
  CountDownLatch t2_read(1);   // T2 has finished its read
  std::atomic<int> reads_seen{0};

  store->set_hook([&](InstrumentedStore::Op op, const std::string&, bool is_after) {
    if (op == InstrumentedStore::Op::kGet && is_after) {
      int order = reads_seen.fetch_add(1) + 1;
      if (order == 1) {
        t1_read.CountDown();
        t2_read.Wait();  // first reader stalls until the second one has read
      } else {
        t2_read.CountDown();
      }
    }
  });

  auto increment = [&] {
    std::string value;
    ASSERT_TRUE(store->Get("acct", &value).ok());
    ASSERT_TRUE(store->Put("acct", std::to_string(std::stoll(value) + 1)).ok());
  };
  std::thread t1(increment);
  t1_read.Wait();
  std::thread t2(increment);
  t1.join();
  t2.join();

  std::string final_value;
  store->set_hook(nullptr);
  ASSERT_TRUE(store->Get("acct", &final_value).ok());
  // Two increments, but exactly one survives: the anomaly is deterministic.
  EXPECT_EQ(final_value, "101");
}

TEST(InstrumentedStoreTest, ConditionalPutDefeatsTheSameInterleaving) {
  // Same forced interleaving, but the writers use CAS with retry: both
  // increments must land.  This is why the txn library builds on
  // conditional put.
  auto store = MakeStore();
  store->Put("acct", "100");

  CountDownLatch t1_read(1);
  CountDownLatch t2_read(1);
  std::atomic<int> reads_seen{0};
  std::atomic<bool> interleave_armed{true};

  store->set_hook([&](InstrumentedStore::Op op, const std::string&, bool is_after) {
    if (!interleave_armed.load()) return;
    if (op == InstrumentedStore::Op::kGet && is_after) {
      int order = reads_seen.fetch_add(1) + 1;
      if (order == 1) {
        t1_read.CountDown();
        t2_read.Wait();
      } else if (order == 2) {
        t2_read.CountDown();
        interleave_armed.store(false);  // let CAS retries run freely
      }
    }
  });

  auto cas_increment = [&] {
    for (;;) {
      std::string value;
      uint64_t etag;
      ASSERT_TRUE(store->Get("acct", &value, &etag).ok());
      if (store->ConditionalPut("acct", std::to_string(std::stoll(value) + 1), etag)
              .ok()) {
        return;
      }
    }
  };
  std::thread t1(cas_increment);
  t1_read.Wait();
  std::thread t2(cas_increment);
  t1.join();
  t2.join();

  std::string final_value;
  store->set_hook(nullptr);
  ASSERT_TRUE(store->Get("acct", &final_value).ok());
  EXPECT_EQ(final_value, "102");
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
