#include "kv/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace ycsbt {
namespace kv {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  std::string data = "the quick brown fox";
  uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 1);
    EXPECT_NE(Crc32c(mutated), base) << "byte " << i;
  }
}

TEST(Crc32cTest, SeedChaining) {
  // CRC of a seeded continuation differs from unseeded.
  uint32_t a = Crc32c(std::string_view("abc"));
  uint32_t b = Crc32c(std::string_view("abc"), a);
  EXPECT_NE(a, b);
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu, 0xE3069283u}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

TEST(Crc32cTest, StringViewOverloadAgrees) {
  std::string s = "hello world";
  EXPECT_EQ(Crc32c(s), Crc32c(s.data(), s.size()));
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
