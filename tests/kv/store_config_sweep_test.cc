// Parameterised configuration sweep over the storage engine: the functional
// contract (CRUD, CAS, ordered scans, counting) must be identical for every
// shard count and durability configuration.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "kv/store.h"

namespace ycsbt {
namespace kv {
namespace {

struct StoreConfig {
  const char* name;
  int shards;
  bool wal;
  bool sync;
};

class StoreConfigSweep : public ::testing::TestWithParam<StoreConfig> {
 protected:
  void SetUp() override {
    const auto& config = GetParam();
    wal_path_ = ::testing::TempDir() + "sweep_" + config.name + "_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(wal_path_.c_str());
    StoreOptions options;
    options.num_shards = config.shards;
    if (config.wal) {
      options.wal_path = wal_path_;
      options.sync_wal = config.sync;
    }
    store_ = std::make_unique<ShardedStore>(options);
    ASSERT_TRUE(store_->Open().ok());
  }

  void TearDown() override { std::remove(wal_path_.c_str()); }

  std::string wal_path_;
  std::unique_ptr<ShardedStore> store_;
};

TEST_P(StoreConfigSweep, CrudContract) {
  uint64_t etag = 0;
  ASSERT_TRUE(store_->Put("k", "v1", &etag).ok());
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "v1");
  EXPECT_TRUE(store_->ConditionalPut("k", "v2", etag + 7).IsConflict());
  ASSERT_TRUE(store_->ConditionalPut("k", "v2", etag).ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_TRUE(store_->Get("k", &value).IsNotFound());
}

TEST_P(StoreConfigSweep, ScanIsTotallyOrdered) {
  for (int i = 0; i < 64; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%03d", (i * 37) % 64);  // shuffled inserts
    ASSERT_TRUE(store_->Put(buf, "v").ok());
  }
  std::vector<ScanEntry> rows;
  ASSERT_TRUE(store_->Scan("", 100, &rows).ok());
  ASSERT_EQ(rows.size(), 64u);
  for (size_t i = 1; i < rows.size(); ++i) {
    ASSERT_LT(rows[i - 1].key, rows[i].key);
  }
  // Mid-range scans agree with the full order.
  std::vector<ScanEntry> mid;
  ASSERT_TRUE(store_->Scan("key032", 5, &mid).ok());
  ASSERT_EQ(mid.size(), 5u);
  EXPECT_EQ(mid.front().key, "key032");
  EXPECT_EQ(mid.back().key, "key036");
}

TEST_P(StoreConfigSweep, CountMatchesScan) {
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(store_->Put("n" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_->Delete("n" + std::to_string(i * 3)).ok());
  }
  std::vector<ScanEntry> rows;
  ASSERT_TRUE(store_->Scan("", 1000, &rows).ok());
  EXPECT_EQ(store_->Count(), rows.size());
  EXPECT_EQ(store_->Count(), 20u);
}

TEST_P(StoreConfigSweep, EtagsUniqueAcrossShards) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    uint64_t etag = 0;
    ASSERT_TRUE(store_->Put("e" + std::to_string(i), "v", &etag).ok());
    EXPECT_TRUE(seen.insert(etag).second) << "etag reused";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, StoreConfigSweep,
    ::testing::Values(StoreConfig{"single_shard", 1, false, false},
                      StoreConfig{"default_shards", 16, false, false},
                      StoreConfig{"many_shards", 64, false, false},
                      StoreConfig{"walled", 16, true, false},
                      StoreConfig{"walled_sync", 4, true, true}),
    [](const ::testing::TestParamInfo<StoreConfig>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace kv
}  // namespace ycsbt
