// BulkLoad fast path: sorted-run validation, etag continuity with per-key
// writes, interleaving with pre-existing keys, WAL replay, and the
// SortedInserter cursor it is built on — including a fresh cursor opened
// against an already-populated list (once an O(n) restart; see skiplist.h).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "kv/skiplist.h"
#include "kv/store.h"

namespace ycsbt {
namespace kv {
namespace {

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%05d", i);
  return buf;
}

std::vector<std::pair<std::string, std::string>> SortedRun(int from, int to) {
  std::vector<std::pair<std::string, std::string>> records;
  for (int i = from; i < to; ++i) records.emplace_back(Key(i), "v" + Key(i));
  return records;
}

TEST(BulkLoadTest, LoadsSortedRunAcrossShards) {
  StoreOptions options;
  options.num_shards = 8;  // hash-scatters the run over every shard
  ShardedStore store(options);
  ASSERT_TRUE(store.BulkLoad(SortedRun(0, 500)).ok());
  EXPECT_EQ(store.Count(), 500u);
  std::string value;
  for (int i = 0; i < 500; i += 37) {
    ASSERT_TRUE(store.Get(Key(i), &value).ok());
    EXPECT_EQ(value, "v" + Key(i));
  }
  // The merged scan must come back globally ordered despite sharding.
  std::vector<ScanEntry> out;
  ASSERT_TRUE(store.Scan(Key(100), 300, &out).ok());
  ASSERT_EQ(out.size(), 300u);
  EXPECT_EQ(out.front().key, Key(100));
  EXPECT_EQ(out.back().key, Key(399));
  for (size_t i = 1; i < out.size(); ++i) ASSERT_LT(out[i - 1].key, out[i].key);
}

TEST(BulkLoadTest, EmptyRunIsANoOp) {
  ShardedStore store;
  ASSERT_TRUE(store.BulkLoad({}).ok());
  EXPECT_EQ(store.Count(), 0u);
}

TEST(BulkLoadTest, RejectsUnsortedAndDuplicateRuns) {
  ShardedStore store;
  Status s = store.BulkLoad({{"b", "1"}, {"a", "2"}});
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  s = store.BulkLoad({{"a", "1"}, {"a", "2"}});  // equal keys are not ascending
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  s = store.BulkLoad({{"a", "1"}, {"", "2"}});
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(store.Count(), 0u);
}

TEST(BulkLoadTest, EtagsStayContiguousWithPerKeyWrites) {
  ShardedStore store;
  uint64_t before = 0;
  ASSERT_TRUE(store.Put("aaa", "x", &before).ok());
  ASSERT_TRUE(store.BulkLoad(SortedRun(0, 100)).ok());
  uint64_t after = 0;
  ASSERT_TRUE(store.Put("zzz", "y", &after).ok());
  // The run reserves exactly one etag per record between the two puts.
  EXPECT_EQ(after, before + 101);
  uint64_t etag = 0;
  std::string value;
  ASSERT_TRUE(store.Get(Key(0), &value, &etag).ok());
  EXPECT_EQ(etag, before + 1);
  ASSERT_TRUE(store.Get(Key(99), &value, &etag).ok());
  EXPECT_EQ(etag, before + 100);
}

TEST(BulkLoadTest, OverwritesAndInterleavesWithExistingKeys) {
  ShardedStore store;
  ASSERT_TRUE(store.Put(Key(5), "old").ok());
  ASSERT_TRUE(store.Put(Key(250), "kept").ok());
  ASSERT_TRUE(store.BulkLoad(SortedRun(0, 10)).ok());
  std::string value;
  ASSERT_TRUE(store.Get(Key(5), &value).ok());
  EXPECT_EQ(value, "v" + Key(5));  // run overwrites the equal key
  ASSERT_TRUE(store.Get(Key(250), &value).ok());
  EXPECT_EQ(value, "kept");  // keys outside the run are untouched
  EXPECT_EQ(store.Count(), 11u);
}

TEST(BulkLoadTest, SequentialRunsCompose) {
  // The orchestrator feeds the store one sorted batch at a time; each batch
  // opens fresh cursors against the data the previous batches left behind.
  ShardedStore store;
  for (int from = 0; from < 1000; from += 100) {
    ASSERT_TRUE(store.BulkLoad(SortedRun(from, from + 100)).ok());
  }
  EXPECT_EQ(store.Count(), 1000u);
  std::vector<ScanEntry> out;
  ASSERT_TRUE(store.Scan("", 1000, &out).ok());
  ASSERT_EQ(out.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(out[i].key, Key(i));
}

TEST(BulkLoadTest, ReplaysFromWalAfterRestart) {
  std::string wal = ::testing::TempDir() + "/bulk_replay.wal";
  std::remove(wal.c_str());
  StoreOptions options;
  options.wal_path = wal;
  uint64_t tail_etag = 0;
  {
    ShardedStore store(options);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.BulkLoad(SortedRun(0, 300)).ok());
    ASSERT_TRUE(store.Put("tail", "t", &tail_etag).ok());
  }
  ShardedStore store(options);
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(store.Count(), 301u);
  std::string value;
  uint64_t etag = 0;
  ASSERT_TRUE(store.Get(Key(299), &value, &etag).ok());
  EXPECT_EQ(value, "v" + Key(299));
  EXPECT_EQ(etag, tail_etag - 1);  // per-record etags survive replay
  // The etag source resumes past everything the log produced.
  uint64_t next = 0;
  ASSERT_TRUE(store.Put("after", "a", &next).ok());
  EXPECT_GT(next, tail_etag);
  std::remove(wal.c_str());
}

TEST(MultiGetTest, ReportsMissingKeysPerRow) {
  StoreOptions options;
  options.num_shards = 4;
  ShardedStore store(options);
  ASSERT_TRUE(store.BulkLoad(SortedRun(0, 10)).ok());
  // Missing keys interleave with present ones; each row gets its own status.
  std::vector<std::string> keys = {Key(3), "missing-a", Key(7), "missing-b",
                                   Key(0)};
  std::vector<MultiGetResult> results;
  store.MultiGet(keys, &results);
  ASSERT_EQ(results.size(), keys.size());
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].value, "v" + Key(3));
  EXPECT_GT(results[0].etag, 0u);
  EXPECT_TRUE(results[1].status.IsNotFound());
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_EQ(results[2].value, "v" + Key(7));
  EXPECT_TRUE(results[3].status.IsNotFound());
  EXPECT_TRUE(results[4].status.ok());
  EXPECT_EQ(results[4].value, "v" + Key(0));
}

TEST(SortedInserterTest, FreshCursorOverPopulatedListStartsMidRange) {
  // Regression: a cursor opened against existing data must position itself
  // with a top-down descent, not by walking level 0 from the head.
  SkipList<int> list;
  for (int i = 0; i < 2000; i += 2) list.Upsert(Key(i), i);
  SkipList<int>::SortedInserter cursor(&list);
  for (int i = 1001; i < 1200; i += 2) EXPECT_TRUE(cursor.Insert(Key(i), i));
  EXPECT_EQ(list.size(), 1000u + 100u);
  for (int i = 1001; i < 1200; i += 2) {
    auto* found = list.Find(Key(i));
    ASSERT_NE(found, nullptr) << Key(i);
    EXPECT_EQ(*found, i);
  }
  // Order is intact across the splice region.
  SkipList<int>::Iterator it(&list);
  std::string prev;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    ASSERT_LT(prev, it.key());
    prev = it.key();
  }
}

TEST(SortedInserterTest, OverwritesEqualPreExistingKey) {
  SkipList<int> list;
  list.Upsert(Key(10), -1);
  SkipList<int>::SortedInserter cursor(&list);
  EXPECT_TRUE(cursor.Insert(Key(9), 9));
  EXPECT_FALSE(cursor.Insert(Key(10), 10));  // overwrite, not a fresh node
  EXPECT_TRUE(cursor.Insert(Key(11), 11));
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(*list.Find(Key(10)), 10);
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
