// The overload-tolerance decorator: deadline fail-fast, per-backend breaker
// fencing, hedged reads (win/waste/never-for-mutations), the exempt escape
// hatch, and the adaptive hedge delay — all against a scripted fake store
// that counts exactly which requests reach the backend.

#include "kv/resilient_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/latency_model.h"
#include "common/op_context.h"
#include "common/retry_policy.h"
#include "txn/client_txn_store.h"

namespace ycsbt {
namespace {

/// Scripted backend: counts arrivals per op class, optionally stalls the
/// first Get/Scan (the hedging tests' "latency spike"), optionally fails
/// calls with a fixed status.  Gets answer "primary" on the first call and
/// "hedge" afterwards so tests can tell whose result won.
class ScriptedStore : public kv::Store {
 public:
  std::atomic<int> gets{0}, puts{0}, cputs{0}, dels{0}, cdels{0}, scans{0};
  Status fail_with = Status::OK();        // every op fails with this when set
  Status second_get_status = Status::OK();  // gets after the first fail so
  uint64_t first_read_sleep_us = 0;         // get/scan #0 stalls this long

  Status Get(const std::string&, std::string* value, uint64_t* etag) override {
    int n = gets.fetch_add(1);
    if (n == 0 && first_read_sleep_us > 0) SleepMicros(first_read_sleep_us);
    if (!fail_with.ok()) return fail_with;
    if (n > 0 && !second_get_status.ok()) return second_get_status;
    if (value != nullptr) *value = n == 0 ? "primary" : "hedge";
    if (etag != nullptr) *etag = static_cast<uint64_t>(n) + 1;
    return Status::OK();
  }
  Status Put(const std::string&, std::string_view, uint64_t* etag_out) override {
    puts.fetch_add(1);
    if (!fail_with.ok()) return fail_with;
    if (etag_out != nullptr) *etag_out = 1;
    return Status::OK();
  }
  Status ConditionalPut(const std::string&, std::string_view, uint64_t,
                        uint64_t* etag_out) override {
    cputs.fetch_add(1);
    if (!fail_with.ok()) return fail_with;
    if (etag_out != nullptr) *etag_out = 1;
    return Status::OK();
  }
  Status Delete(const std::string&) override {
    dels.fetch_add(1);
    return fail_with;
  }
  Status ConditionalDelete(const std::string&, uint64_t) override {
    cdels.fetch_add(1);
    return fail_with;
  }
  Status Scan(const std::string&, size_t,
              std::vector<kv::ScanEntry>* out) override {
    int n = scans.fetch_add(1);
    if (n == 0 && first_read_sleep_us > 0) SleepMicros(first_read_sleep_us);
    if (!fail_with.ok()) return fail_with;
    if (out != nullptr) {
      out->clear();
      out->push_back({"k", n == 0 ? "primary" : "hedge", 1});
    }
    return Status::OK();
  }
  size_t Count() const override { return 0; }
};

kv::ResilienceOptions BreakerOnlyOptions() {
  kv::ResilienceOptions o;
  o.breaker.enabled = true;
  o.breaker.window = 4;
  o.breaker.min_samples = 2;
  o.breaker.failure_ratio = 0.5;
  o.breaker.cooldown_us = 10'000'000;  // wall clock out of the picture
  o.breaker.cooldown_rejects = 2;
  o.breaker.probes = 1;
  return o;
}

kv::ResilienceOptions HedgeOptions(int64_t delay_us) {
  kv::ResilienceOptions o;
  o.hedge_enabled = true;
  o.hedge_delay_us = delay_us;
  o.hedge_workers = 2;
  return o;
}

TEST(ResilientStoreTest, ExpiredDeadlineFailsFastWithoutAnRpc) {
  auto base = std::make_shared<ScriptedStore>();
  kv::ResilientStore store(base, kv::ResilienceOptions{}, 1);
  OpDeadlineScope deadline(1);
  SleepMicros(2000);
  std::string value;
  EXPECT_TRUE(store.Get("k", &value).IsTimeout());
  EXPECT_TRUE(store.Put("k", "v").IsTimeout());
  EXPECT_TRUE(store.ConditionalPut("k", "v", kv::kEtagAbsent).IsTimeout());
  EXPECT_TRUE(store.Delete("k").IsTimeout());
  std::vector<kv::ScanEntry> rows;
  EXPECT_TRUE(store.Scan("", 10, &rows).IsTimeout());
  // Not one request reached the backend.
  EXPECT_EQ(base->gets.load(), 0);
  EXPECT_EQ(base->puts.load(), 0);
  EXPECT_EQ(base->cputs.load(), 0);
  EXPECT_EQ(base->dels.load(), 0);
  EXPECT_EQ(base->scans.load(), 0);
  EXPECT_EQ(store.stats().deadline_rejects, 5u);
}

TEST(ResilientStoreTest, LiveDeadlinePassesThrough) {
  auto base = std::make_shared<ScriptedStore>();
  kv::ResilientStore store(base, kv::ResilienceOptions{}, 1);
  OpDeadlineScope deadline(10'000'000);  // 10s: nowhere near expiry
  std::string value;
  EXPECT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(base->gets.load(), 1);
  EXPECT_EQ(store.stats().deadline_rejects, 0u);
}

TEST(ResilientStoreTest, ExemptScopeBypassesTheDeadline) {
  // Post-commit-point cleanup must keep flowing even past the deadline.
  auto base = std::make_shared<ScriptedStore>();
  kv::ResilientStore store(base, kv::ResilienceOptions{}, 1);
  OpDeadlineScope deadline(1);
  SleepMicros(2000);
  OpExemptScope exempt;
  std::string value;
  EXPECT_TRUE(store.Get("k", &value).ok());
  EXPECT_TRUE(store.Delete("k").ok());
  EXPECT_EQ(base->gets.load(), 1);
  EXPECT_EQ(base->dels.load(), 1);
  EXPECT_EQ(store.stats().deadline_rejects, 0u);
}

TEST(ResilientStoreTest, BreakerFencesAFailingBackendThenRecovers) {
  auto base = std::make_shared<ScriptedStore>();
  base->fail_with = Status::RateLimited("container busy");
  kv::ResilientStore store(base, BreakerOnlyOptions(), 1);
  std::string value;

  // Two failures reach min_samples at 100% failure: the breaker trips.
  EXPECT_TRUE(store.Get("a", &value).IsRateLimited());
  EXPECT_TRUE(store.Get("b", &value).IsRateLimited());
  EXPECT_EQ(store.stats().breaker.opens, 1u);
  EXPECT_TRUE(store.AnyBreakerOpen());

  // Open: arrivals fail fast with Unavailable, and the backend is left
  // alone.  (No retry_after hint here: this breaker cools down by arrival
  // count, so the retry loop should come back quickly, not sleep.)
  int before = base->gets.load();
  Status fast = store.Get("c", &value);
  EXPECT_TRUE(fast.IsUnavailable());
  EXPECT_EQ(RetryAfterUsHint(fast), 0u);
  EXPECT_TRUE(store.Put("c", "v").IsUnavailable());
  EXPECT_EQ(base->gets.load(), before);
  EXPECT_EQ(base->puts.load(), 0);
  EXPECT_EQ(store.stats().breaker.fast_fails, 2u);

  // The count-based cooldown is burned (2 rejects): the backend heals, the
  // next arrival probes, and one probe success re-closes.
  base->fail_with = Status::OK();
  EXPECT_TRUE(store.Get("d", &value).ok());
  EXPECT_EQ(store.stats().breaker.probes_sent, 1u);
  EXPECT_EQ(store.stats().breaker.recloses, 1u);
  EXPECT_FALSE(store.AnyBreakerOpen());
  EXPECT_TRUE(store.Get("e", &value).ok());
}

TEST(ResilientStoreTest, WallClockCooldownAdvertisesItsRetryAfterHint) {
  // With a purely wall-clock cooldown the fail-fast tells the retry loop
  // exactly how long the breaker will stay shut.
  auto base = std::make_shared<ScriptedStore>();
  base->fail_with = Status::RateLimited("busy");
  kv::ResilienceOptions o = BreakerOnlyOptions();
  o.breaker.cooldown_us = 30'000;
  o.breaker.cooldown_rejects = 0;  // clock only
  kv::ResilientStore store(base, o, 1);
  std::string value;
  store.Get("a", &value);
  store.Get("b", &value);
  ASSERT_TRUE(store.AnyBreakerOpen());
  Status fast = store.Get("c", &value);
  ASSERT_TRUE(fast.IsUnavailable());
  EXPECT_EQ(RetryAfterUsHint(fast), 30'000u);
}

TEST(ResilientStoreTest, ApplicationOutcomesNeverTripTheBreaker) {
  auto base = std::make_shared<ScriptedStore>();
  base->fail_with = Status::Conflict("etag mismatch");
  kv::ResilientStore store(base, BreakerOnlyOptions(), 1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(store.ConditionalPut("k", "v", 1).IsConflict());
  }
  EXPECT_FALSE(store.AnyBreakerOpen());
  EXPECT_EQ(store.stats().breaker.opens, 0u);
  EXPECT_EQ(base->cputs.load(), 20);
}

TEST(ResilientStoreTest, ExemptScopeBypassesAnOpenBreaker) {
  auto base = std::make_shared<ScriptedStore>();
  base->fail_with = Status::RateLimited("busy");
  kv::ResilientStore store(base, BreakerOnlyOptions(), 1);
  std::string value;
  store.Get("a", &value);
  store.Get("b", &value);
  ASSERT_TRUE(store.AnyBreakerOpen());
  base->fail_with = Status::OK();
  OpExemptScope exempt;
  int before = base->gets.load();
  EXPECT_TRUE(store.Get("c", &value).ok());
  EXPECT_EQ(base->gets.load(), before + 1);
  // Exempt traffic is invisible to the breaker: it stays open.
  EXPECT_TRUE(store.AnyBreakerOpen());
}

TEST(ResilientStoreTest, HedgeWinsWhenThePrimaryStalls) {
  auto base = std::make_shared<ScriptedStore>();
  base->first_read_sleep_us = 100'000;  // primary stuck behind a spike
  kv::ResilientStore store(base, HedgeOptions(2000), 1);
  Stopwatch watch;
  std::string value;
  ASSERT_TRUE(store.Get("k", &value).ok());
  // The caller took the hedge's answer and did not wait out the spike.
  EXPECT_EQ(value, "hedge");
  EXPECT_LT(watch.ElapsedMicros(), 100'000u);
  kv::ResilienceStats stats = store.stats();
  EXPECT_EQ(stats.hedges_sent, 1u);
  EXPECT_EQ(stats.hedges_won, 1u);
  EXPECT_EQ(stats.hedges_wasted, 0u);
}

TEST(ResilientStoreTest, HedgedScanWinsToo) {
  auto base = std::make_shared<ScriptedStore>();
  base->first_read_sleep_us = 100'000;
  kv::ResilientStore store(base, HedgeOptions(2000), 1);
  std::vector<kv::ScanEntry> rows;
  ASSERT_TRUE(store.Scan("", 10, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].value, "hedge");
  EXPECT_EQ(store.stats().hedges_won, 1u);
}

TEST(ResilientStoreTest, FailedHedgeIsWastedAndThePrimaryAnswers) {
  auto base = std::make_shared<ScriptedStore>();
  base->first_read_sleep_us = 20'000;
  base->second_get_status = Status::RateLimited("hedge throttled");
  kv::ResilientStore store(base, HedgeOptions(1000), 1);
  std::string value;
  ASSERT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(value, "primary");  // the hedge's throttle was not adopted
  kv::ResilienceStats stats = store.stats();
  EXPECT_EQ(stats.hedges_sent, 1u);
  EXPECT_EQ(stats.hedges_won, 0u);
  EXPECT_EQ(stats.hedges_wasted, 1u);
}

TEST(ResilientStoreTest, FastPrimaryNeverTriggersAHedge) {
  auto base = std::make_shared<ScriptedStore>();
  kv::ResilientStore store(base, HedgeOptions(50'000), 1);
  std::string value;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(store.stats().hedges_sent, 0u);
  EXPECT_EQ(base->gets.load(), 10);
}

TEST(ResilientStoreTest, MutationsAreNeverHedgedEvenWhenSlow) {
  // Hedge delay 0 makes every op hedge-eligible by latency; the mutation
  // paths must still issue exactly one backend request each.
  auto base = std::make_shared<ScriptedStore>();
  kv::ResilientStore store(base, HedgeOptions(0), 1);
  ASSERT_TRUE(store.Put("k", "v").ok());
  ASSERT_TRUE(store.ConditionalPut("k", "v", kv::kEtagAbsent).ok());
  ASSERT_TRUE(store.Delete("k").ok());
  ASSERT_TRUE(store.ConditionalDelete("k", 1).ok());
  EXPECT_EQ(base->puts.load(), 1);
  EXPECT_EQ(base->cputs.load(), 1);
  EXPECT_EQ(base->dels.load(), 1);
  EXPECT_EQ(base->cdels.load(), 1);
  EXPECT_EQ(store.stats().hedges_sent, 0u);
  // Sanity: the same configuration does hedge a read whose primary stalls.
  base->first_read_sleep_us = 20'000;
  std::string value;
  ASSERT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(store.stats().hedges_sent, 1u);
}

TEST(ResilientStoreTest, ExemptReadsSkipTheHedgingPath) {
  auto base = std::make_shared<ScriptedStore>();
  base->first_read_sleep_us = 5000;
  kv::ResilientStore store(base, HedgeOptions(0), 1);
  OpExemptScope exempt;
  std::string value;
  ASSERT_TRUE(store.Get("k", &value).ok());
  EXPECT_EQ(value, "primary");
  EXPECT_EQ(store.stats().hedges_sent, 0u);
  EXPECT_EQ(base->gets.load(), 1);
}

TEST(ResilientStoreTest, AdaptiveDelayStartsHighThenTracksFastReads) {
  auto base = std::make_shared<ScriptedStore>();
  kv::ResilienceOptions o = HedgeOptions(-1);  // adaptive
  kv::ResilientStore store(base, o, 1);
  // Under 16 samples: hedge late (the max) rather than flood a cold store.
  EXPECT_EQ(store.CurrentHedgeDelayUs(), o.hedge_delay_max_us);
  std::string value;
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(store.Get("k", &value).ok());
  // Microsecond-fast reads: the p95 clamps up to the configured floor.
  EXPECT_EQ(store.CurrentHedgeDelayUs(), o.hedge_delay_min_us);
}

/// Delegating decorator that makes every mutation slow — far beyond the
/// hedge delay — while reads stay fast.  If mutations could enter the
/// hedging path at all, every lock put / TSR put / cleanup delete of a
/// commit would be hedged under this store.
class SlowMutationStore : public kv::Store {
 public:
  explicit SlowMutationStore(std::shared_ptr<kv::Store> base)
      : base_(std::move(base)) {}

  Status Get(const std::string& key, std::string* value,
             uint64_t* etag) override {
    return base_->Get(key, value, etag);
  }
  Status Put(const std::string& key, std::string_view value,
             uint64_t* etag_out) override {
    SleepMicros(kMutationUs);
    return base_->Put(key, value, etag_out);
  }
  Status ConditionalPut(const std::string& key, std::string_view value,
                        uint64_t expected_etag, uint64_t* etag_out) override {
    SleepMicros(kMutationUs);
    return base_->ConditionalPut(key, value, expected_etag, etag_out);
  }
  Status Delete(const std::string& key) override {
    SleepMicros(kMutationUs);
    return base_->Delete(key);
  }
  Status ConditionalDelete(const std::string& key,
                           uint64_t expected_etag) override {
    SleepMicros(kMutationUs);
    return base_->ConditionalDelete(key, expected_etag);
  }
  Status Scan(const std::string& start_key, size_t limit,
              std::vector<kv::ScanEntry>* out) override {
    return base_->Scan(start_key, limit, out);
  }
  size_t Count() const override { return base_->Count(); }

  static constexpr uint64_t kMutationUs = 5000;

 private:
  std::shared_ptr<kv::Store> base_;
};

TEST(ResilientStoreTest, TransactionCommitPipelineIsNeverHedged) {
  // The satellite guarantee: the protocol's lock puts, TSR put and cleanup
  // deletes run through a hedging-enabled resilient store while taking 5ms
  // each — five times the 1ms hedge delay, maximally hedge-eligible by
  // latency — yet zero hedges fire, because only Get/Scan can ever reach
  // the hedging path.  (Reads stay microsecond-fast here, so a nonzero
  // hedges_sent could only come from a duplicated mutation.)
  auto slow = std::make_shared<SlowMutationStore>(
      std::make_shared<kv::ShardedStore>());
  auto resilient =
      std::make_shared<kv::ResilientStore>(slow, HedgeOptions(1000), 1);
  auto ts = std::make_shared<txn::HlcTimestampSource>();
  txn::ClientTxnStore store(resilient, ts);
  store.LoadPut("a", "1");

  auto txn = store.Begin();
  std::string value;
  ASSERT_TRUE(txn->Read("a", &value).ok());
  ASSERT_TRUE(txn->Write("a", "2").ok());
  ASSERT_TRUE(txn->Write("b", "3").ok());
  ASSERT_TRUE(txn->Commit().ok());
  ASSERT_TRUE(store.ReadCommitted("a", &value).ok());
  EXPECT_EQ(value, "2");
  ASSERT_TRUE(store.ReadCommitted("b", &value).ok());
  EXPECT_EQ(value, "3");

  EXPECT_EQ(resilient->stats().hedges_sent, 0u);
  EXPECT_EQ(store.stats().commits, 1u);
}

}  // namespace
}  // namespace ycsbt
