#include "kv/torture.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "kv/env.h"
#include "kv/fault_env.h"
#include "kv/store.h"

namespace ycsbt {
namespace kv {
namespace {

/// Seed override hook for CI's randomized-seed job: TORTURE_SEED=<n> reruns
/// the whole suite on a different deterministic schedule.  The chosen seed is
/// echoed so a failure can be replayed exactly.
uint64_t TortureSeed() {
  uint64_t seed = 0xC0FFEEull;
  if (const char* s = std::getenv("TORTURE_SEED")) {
    seed = std::strtoull(s, nullptr, 0);
  }
  return seed;
}

std::string FreshDir(const char* tag) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "crash_torture_" + tag + "_" +
         std::to_string(counter.fetch_add(1));
}

TEST(CrashTortureTest, EveryCrashStateRecoversExactly) {
  TortureOptions opts;
  opts.seed = TortureSeed();
  opts.dir = FreshDir("main");
  std::cout << "[torture] seed=0x" << std::hex << opts.seed << std::dec
            << " dir=" << opts.dir << "\n";

  TortureReport report = RunCrashTorture(opts);
  std::cout << FormatTortureReport(report);

  // The acceptance floor: a real sweep, not a smoke test.
  EXPECT_GE(report.crash_states, 200u);
  EXPECT_EQ(report.failures, 0u) << FormatTortureReport(report);
  EXPECT_GE(report.epochs, 2u);          // checkpoints actually happened
  EXPECT_GT(report.scrubbed_checkpoints, 0u);  // scrub fallback exercised
  EXPECT_GT(report.truncated_bytes_total, 0u); // torn tails exercised
  EXPECT_GE(report.live_cases, 8u);
}

TEST(CrashTortureTest, SameSeedYieldsByteIdenticalSchedule) {
  TortureOptions a;
  a.seed = TortureSeed() ^ 0x5EEDull;
  a.dir = FreshDir("det_a");
  // Smaller run: determinism is a property of the schedule derivation, not
  // of scale, and this keeps the double execution cheap.
  a.ops = 120;
  a.checkpoint_every = 50;
  a.mid_frame_samples = 16;
  a.ckpt_scrub_samples = 6;
  TortureOptions b = a;
  b.dir = FreshDir("det_b");

  TortureReport ra = RunCrashTorture(a);
  TortureReport rb = RunCrashTorture(b);
  EXPECT_EQ(ra.failures, 0u) << FormatTortureReport(ra);
  EXPECT_EQ(rb.failures, 0u) << FormatTortureReport(rb);
  // Equal seeds => byte-identical fault schedules and recovered states,
  // hence equal digests; and a different seed must diverge.
  EXPECT_EQ(ra.schedule_digest, rb.schedule_digest);
  EXPECT_EQ(ra.crash_states, rb.crash_states);
  EXPECT_EQ(ra.wal_bytes_total, rb.wal_bytes_total);

  TortureOptions c = a;
  c.dir = FreshDir("det_c");
  c.seed = a.seed + 1;
  TortureReport rc = RunCrashTorture(c);
  EXPECT_NE(ra.schedule_digest, rc.schedule_digest);
}

TEST(CrashTortureTest, MissingDirFsyncLosesAckedCommits) {
  // The failing-before / passing-after demonstration of the hardening: a
  // crash after WAL truncation resurrects the old checkpoint dirent when the
  // rename was never made durable with a directory fsync.
  uint64_t seed = TortureSeed() ^ 0xD1Full;
  EXPECT_TRUE(DemonstrateDirSyncLoss(FreshDir("dirsync_off"), seed,
                                     /*dir_sync=*/false))
      << "pre-hardening behaviour should lose acked commits";
  EXPECT_FALSE(DemonstrateDirSyncLoss(FreshDir("dirsync_on"), seed,
                                      /*dir_sync=*/true))
      << "hardened checkpoint must survive the same crash";
}

/// Satellite #3: Checkpoint() racing live CEW traffic while the storage
/// layer injects faults.  Exact per-op oracles are impossible under free
/// concurrency, so the assertions are the CEW invariants themselves: after
/// a clean reopen the account balance total is conserved (every transfer
/// committed wholly or not at all) and no scratch key is half-applied.
class CheckpointUnderChaosTest : public ::testing::Test {
 protected:
  static constexpr int kAccounts = 16;
  static constexpr long long kInitialBalance = 1000;

  struct ChaosOutcome {
    bool poisoned = false;
    bool crashed = false;
    uint64_t checkpoints_ok = 0;
    uint64_t writer_errors = 0;  ///< ops rejected with an error (never silent)
    StorageFaultStats stats;
  };

  static void PrepareDir(const std::string& dir) {
    ::mkdir(dir.c_str(), 0755);  // leftovers from a prior run are fine...
    for (const char* name : {"/wal.log", "/ckpt.snap", "/ckpt.snap.tmp"}) {
      (void)Env::Default()->RemoveFile(dir + name);  // ...their files aren't
    }
  }

  static std::string AccountKey(int i) {
    return "acct_" + std::to_string(100 + i);  // fixed-width, sorted
  }

  ChaosOutcome RunChaos(const std::string& dir,
                        const StorageFaultOptions& faults) {
    Env* base = Env::Default();
    ChaosOutcome outcome;
    FaultInjectingEnv env(base, faults);
    StoreOptions so;
    so.num_shards = 4;
    so.wal_path = dir + "/wal.log";
    so.checkpoint_path = dir + "/ckpt.snap";
    so.sync_wal = true;
    so.wal_group_commit = true;
    so.env = &env;
    ShardedStore store(so);
    if (!store.Open().ok()) return outcome;
    for (int i = 0; i < kAccounts; ++i) {
      EXPECT_TRUE(
          store.Put(AccountKey(i), std::to_string(kInitialBalance)).ok());
    }
    env.set_enabled(true);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> writer_errors{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < 3; ++t) {
      writers.emplace_back([&, t] {
        uint64_t x = 0x9E3779B97F4A7C15ull * (t + 1);
        while (!stop.load(std::memory_order_relaxed)) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          // Each thread owns the disjoint slice of accounts with index % 3
          // == t, and transfers only within it: the read-modify-write pairs
          // never race across threads, so any crash-recovered prefix of the
          // per-thread commit orders conserves the total exactly.
          int a = static_cast<int>(x % kAccounts);
          int b = static_cast<int>((x >> 8) % kAccounts);
          if (a % 3 != t || b % 3 != t || a == b) continue;
          long long amount = 1 + static_cast<long long>((x >> 16) % 5);
          std::string va, vb;
          if (!store.Get(AccountKey(a), &va).ok() ||
              !store.Get(AccountKey(b), &vb).ok()) {
            break;  // store poisoned/crashed mid-run: fail-stop is fine
          }
          Status s = store.MultiPut(
              {{AccountKey(a), std::to_string(std::stoll(va) - amount)},
               {AccountKey(b), std::to_string(std::stoll(vb) + amount)}});
          if (!s.ok()) {
            writer_errors.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      });
    }
    for (int c = 0; c < 6; ++c) {
      if (store.Checkpoint().ok()) {
        outcome.checkpoints_ok++;
      } else {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true);
    for (auto& th : writers) th.join();
    env.set_enabled(false);
    outcome.poisoned = store.IsPoisoned();
    outcome.crashed = env.crashed();
    outcome.writer_errors = writer_errors.load();
    outcome.stats = env.stats();
    return outcome;
  }

  void VerifyReopenInvariants(const std::string& dir) {
    StoreOptions so;
    so.num_shards = 4;
    so.wal_path = dir + "/wal.log";
    so.checkpoint_path = dir + "/ckpt.snap";
    so.env = nullptr;  // clean reopen: the process-restart view
    ShardedStore store(so);
    ASSERT_TRUE(store.Open().ok());
    std::vector<ScanEntry> entries;
    ASSERT_TRUE(store.Scan("", 1 << 20, &entries).ok());
    long long total = 0;
    int accounts_seen = 0;
    for (const ScanEntry& e : entries) {
      if (e.key.rfind("acct_", 0) == 0) {
        total += std::stoll(e.value);
        accounts_seen++;
      }
      EXPECT_GT(e.etag, 0u);
    }
    // Every transfer is one atomic kTxnPut frame: recovery may land on any
    // prefix of the commit order but can never expose half a transfer, so
    // the balance total is exactly conserved.
    EXPECT_EQ(accounts_seen, kAccounts);
    EXPECT_EQ(total, static_cast<long long>(kAccounts) * kInitialBalance);
  }
};

TEST_F(CheckpointUnderChaosTest, ConcurrentCheckpointsNoFaults) {
  std::string dir = FreshDir("chaos_clean");
  PrepareDir(dir);
  StorageFaultOptions faults;  // armed but inert: pure concurrency check
  ChaosOutcome outcome = RunChaos(dir, faults);
  EXPECT_FALSE(outcome.poisoned);
  EXPECT_GE(outcome.checkpoints_ok, 6u);
  VerifyReopenInvariants(dir);
}

TEST_F(CheckpointUnderChaosTest, SyncFailurePoisonsNotCorrupts) {
  std::string dir = FreshDir("chaos_fsync");
  PrepareDir(dir);
  StorageFaultOptions faults;
  faults.seed = TortureSeed();
  faults.sync_fail_at = 40;  // fsyncgate mid-traffic
  ChaosOutcome outcome = RunChaos(dir, faults);
  EXPECT_GE(outcome.stats.sync_failures, 1u);
  // The failure surfaced loudly somewhere: either the sync landed on a WAL
  // frame (the batch's writers got errors; a later checkpoint may then heal
  // the poisoned log by snapshotting the acked in-memory state — exactly the
  // fail-stop contract) or it landed on a checkpoint's snapshot sync (that
  // checkpoint aborted cleanly).  Silent success is the only wrong answer.
  // The deterministic poison probes live in the torture suite's fsyncgate
  // case.
  EXPECT_TRUE(outcome.writer_errors >= 1u || outcome.checkpoints_ok < 6u);
  VerifyReopenInvariants(dir);
}

TEST_F(CheckpointUnderChaosTest, CheckpointCrashUnderTraffic) {
  std::string dir = FreshDir("chaos_ckptcrash");
  PrepareDir(dir);
  StorageFaultOptions faults;
  faults.seed = TortureSeed();
  faults.crash_point = "ckpt_post_rename_pre_trunc";
  faults.crash_point_pass = 2;
  ChaosOutcome outcome = RunChaos(dir, faults);
  EXPECT_TRUE(outcome.crashed);
  VerifyReopenInvariants(dir);
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
