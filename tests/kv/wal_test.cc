#include "kv/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

namespace ycsbt {
namespace kv {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wal_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<WalRecord> ReplayAll(Status* status = nullptr) {
    std::vector<WalRecord> records;
    Status s = WriteAheadLog::Replay(
        path_, [&](const WalRecord& r) { records.push_back(r); });
    if (status != nullptr) *status = s;
    return records;
  }

  std::string path_;
};

TEST_F(WalTest, ReplayOfMissingFileIsEmpty) {
  Status s;
  auto records = ReplayAll(&s);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, AppendReplayRoundTrip) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_).ok());
  WalRecord put{WalRecord::Kind::kPut, 7, "user1", "value1"};
  WalRecord del{WalRecord::Kind::kDelete, 0, "user2", ""};
  ASSERT_TRUE(wal.Append(put, false).ok());
  ASSERT_TRUE(wal.Append(del, true).ok());
  wal.Close();

  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, WalRecord::Kind::kPut);
  EXPECT_EQ(records[0].etag, 7u);
  EXPECT_EQ(records[0].key, "user1");
  EXPECT_EQ(records[0].value, "value1");
  EXPECT_EQ(records[1].kind, WalRecord::Kind::kDelete);
  EXPECT_EQ(records[1].key, "user2");
}

TEST_F(WalTest, BinaryKeysAndValuesSurvive) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_).ok());
  std::string bin_key("\x00\xFF\x01", 3);
  std::string bin_val(1024, '\xAB');
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 1, bin_key, bin_val}, false).ok());
  wal.Close();
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, bin_key);
  EXPECT_EQ(records[0].value, bin_val);
}

TEST_F(WalTest, TornTailIsIgnored) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 1, "a", "1"}, false).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 2, "b", "2"}, false).ok());
  wal.Close();

  // Truncate mid-record: crash during the final append.
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() - 3));
  out.close();

  Status s;
  auto records = ReplayAll(&s);
  EXPECT_TRUE(s.ok());  // clean stop at the torn tail
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "a");
}

TEST_F(WalTest, CrcFlipInLastRecordIsTornTail) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 1, "a", "1"}, false).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 2, "b", "2"}, false).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 3, "c", "3"}, false).ok());
  wal.Close();

  // Flip a byte of the FINAL record's stored CRC: a crash that tore the last
  // frame's checksum, not its length.  Each frame here is 4 (crc) + 17
  // (header) + 1 (key) + 1 (value) = 23 bytes.
  const long last_frame = 2 * 23;
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  char c;
  f.seekg(last_frame);
  f.get(c);
  f.seekp(last_frame);
  f.put(static_cast<char>(c ^ 0xFF));
  f.close();

  Status s;
  auto records = ReplayAll(&s);
  EXPECT_TRUE(s.ok()) << s.ToString();  // clean stop at the last good record
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[1].key, "b");
}

TEST_F(WalTest, CorruptionInTheMiddleIsReported) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 1, "a", "1"}, false).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 2, "b", "2"}, false).ok());
  wal.Close();

  // Flip a byte inside the FIRST record's payload.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(10);
  char c;
  f.seekg(10);
  f.get(c);
  f.seekp(10);
  f.put(static_cast<char>(c ^ 0xFF));
  f.close();

  Status s;
  ReplayAll(&s);
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(WalTest, AppendAfterCloseFails) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_).ok());
  wal.Close();
  EXPECT_TRUE(wal.Append({WalRecord::Kind::kPut, 1, "k", "v"}, false).IsIOError());
}

TEST_F(WalTest, DoubleOpenRejected) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_).ok());
  EXPECT_TRUE(wal.Open(path_).IsInvalidArgument());
}

TEST_F(WalTest, ReopenAppends) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_).ok());
    ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 1, "a", "1"}, false).ok());
  }
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_).ok());
    ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 2, "b", "2"}, false).ok());
  }
  EXPECT_EQ(ReplayAll().size(), 2u);
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
