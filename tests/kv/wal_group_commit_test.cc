#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "kv/fault_env.h"
#include "kv/store.h"
#include "kv/wal.h"

namespace ycsbt {
namespace kv {
namespace {

class WalGroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wal_gc_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".snap").c_str());
  }

  std::vector<WalRecord> ReplayAll(const std::string& path,
                                   Status* status = nullptr,
                                   size_t* valid_bytes = nullptr) {
    std::vector<WalRecord> records;
    Status s = WriteAheadLog::Replay(
        path, [&](const WalRecord& r) { records.push_back(r); }, valid_bytes);
    if (status != nullptr) *status = s;
    return records;
  }

  static size_t FileSize(const std::string& path) {
    struct ::stat st;
    return ::stat(path.c_str(), &st) == 0 ? static_cast<size_t>(st.st_size) : 0;
  }

  std::string path_;
};

WalOptions GroupOptions(int max_batch = 64, uint32_t window_us = 0) {
  WalOptions o;
  o.group_commit = true;
  o.group_max_batch = max_batch;
  o.group_window_us = window_us;
  return o;
}

TEST_F(WalGroupCommitTest, ConcurrentSyncAppendsAllReplay) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, GroupOptions()).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WalRecord r{WalRecord::Kind::kPut,
                    static_cast<uint64_t>(t * kPerThread + i + 1),
                    "k" + std::to_string(t) + "_" + std::to_string(i), "v"};
        uint64_t lsn = 0;
        if (!wal.Append(r, /*sync=*/true, &lsn).ok() || lsn == 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal.durable_lsn(), static_cast<uint64_t>(kThreads * kPerThread));

  WalStats stats = wal.DrainStats();
  EXPECT_EQ(stats.appends, static_cast<uint64_t>(kThreads * kPerThread));
  // Group commit's whole point: far fewer syncs than appends (each batch of
  // blocked writers shares one fdatasync).  With 8 writers this is massively
  // true; assert a conservative bound so slow CI machines still pass.
  EXPECT_LE(stats.syncs, stats.appends);
  EXPECT_EQ(stats.batches, stats.batch_records.Count());

  wal.Close();
  auto records = ReplayAll(path_);
  ASSERT_EQ(records.size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<uint64_t> etags;
  for (const auto& r : records) etags.insert(r.etag);
  EXPECT_EQ(etags.size(), records.size());  // no duplicates, nothing lost
}

TEST_F(WalGroupCommitTest, SmallMaxBatchForcesLeaderHandoff) {
  // group_max_batch=2 with 6 writers: leaders routinely drain batches that
  // do not include their own frame and must loop (lead again or follow).
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, GroupOptions(/*max_batch=*/2)).ok());

  constexpr int kThreads = 6;
  constexpr int kPerThread = 100;
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WalRecord r{WalRecord::Kind::kPut,
                    static_cast<uint64_t>(t * kPerThread + i + 1), "k", "v"};
        if (!wal.Append(r, /*sync=*/false).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);
  WalStats stats = wal.DrainStats();
  EXPECT_EQ(stats.appends, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_LE(stats.batch_records.Max(), 2);
  wal.Close();
  EXPECT_EQ(ReplayAll(path_).size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(WalGroupCommitTest, AccumulationWindowStillCompletes) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, GroupOptions(64, /*window_us=*/200)).ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WalRecord r{WalRecord::Kind::kPut,
                    static_cast<uint64_t>(t * kPerThread + i + 1), "k", "v"};
        if (!wal.Append(r, /*sync=*/true).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);
  wal.Close();
  EXPECT_EQ(ReplayAll(path_).size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(WalGroupCommitTest, AckedAppendsSurviveCrashSnapshot) {
  // Simulates a crash mid-run: while 4 threads append with sync=true, the
  // main thread snapshots the live WAL file at an arbitrary instant (what a
  // kill -9 would leave on disk) and appends garbage to model a torn tail.
  // Every append acknowledged *before* the snapshot began was fdatasync'd at
  // bytes the copy must include, so it must replay from the snapshot.
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, GroupOptions()).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::vector<std::atomic<int>> acked(kThreads);
  for (auto& a : acked) a.store(0);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WalRecord r{WalRecord::Kind::kPut,
                    static_cast<uint64_t>(t * 1000 + i + 1), "k", "v"};
        if (wal.Append(r, /*sync=*/true).ok()) {
          acked[static_cast<size_t>(t)].store(i + 1, std::memory_order_release);
        }
      }
    });
  }

  // Wait until every thread has acked something, then "crash".
  for (int t = 0; t < kThreads; ++t) {
    while (acked[static_cast<size_t>(t)].load(std::memory_order_acquire) < 10) {
      std::this_thread::yield();
    }
  }
  std::vector<int> acked_before(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    acked_before[static_cast<size_t>(t)] =
        acked[static_cast<size_t>(t)].load(std::memory_order_acquire);
  }
  std::string snap = path_ + ".snap";
  {
    std::ifstream in(path_, std::ios::binary);
    std::ofstream out(snap, std::ios::binary);
    out << in.rdbuf();
    // A torn frame at the crash point: half a plausible header of garbage.
    out.write("\x13\x37\xBE\xEF\x01", 5);
  }
  for (auto& th : pool) th.join();
  wal.Close();

  std::vector<WalRecord> records;
  Status s = WriteAheadLog::Replay(
      snap, [&](const WalRecord& r) { records.push_back(r); });
  EXPECT_TRUE(s.ok()) << s.ToString();  // torn tail must not block recovery
  std::set<uint64_t> replayed;
  for (const auto& r : records) replayed.insert(r.etag);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < acked_before[static_cast<size_t>(t)]; ++i) {
      EXPECT_TRUE(replayed.count(static_cast<uint64_t>(t * 1000 + i + 1)))
          << "acked record t=" << t << " i=" << i << " lost by crash";
    }
  }
}

TEST_F(WalGroupCommitTest, TornBatchWritePoisonsAndTruncates) {
  // The torn write comes from the Env seam now: the production write path
  // has a single Append call, and the fault env tears the first armed one.
  StorageFaultOptions faults;
  faults.torn_write_at = 1;
  FaultInjectingEnv env(Env::Default(), faults);
  WalOptions options = GroupOptions();
  options.env = &env;
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, options).ok());
  WalRecord good{WalRecord::Kind::kPut, 1, "intact", "v"};
  ASSERT_TRUE(wal.Append(good, /*sync=*/true).ok());
  size_t intact_size = FileSize(path_);

  env.set_enabled(true);
  WalRecord torn{WalRecord::Kind::kPut, 2, "torn", "v"};
  Status s = wal.Append(torn, /*sync=*/true);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(wal.IsPoisoned());
  EXPECT_EQ(env.stats().torn_writes, 1u);

  // Fail-stop: later appends are rejected outright, nothing else lands.
  WalRecord after{WalRecord::Kind::kPut, 3, "after", "v"};
  EXPECT_TRUE(wal.Append(after, /*sync=*/false).IsIOError());
  EXPECT_EQ(wal.durable_lsn(), 1u);

  // The torn frame was truncated away: the file ends at the last intact
  // offset and replays cleanly with only the acknowledged record.
  EXPECT_EQ(FileSize(path_), intact_size);
  wal.Close();
  Status replay_status;
  size_t valid_bytes = 0;
  auto records = ReplayAll(path_, &replay_status, &valid_bytes);
  EXPECT_TRUE(replay_status.ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "intact");
  EXPECT_EQ(valid_bytes, intact_size);
}

TEST_F(WalGroupCommitTest, TornDirectWritePoisonsAndTruncates) {
  // The fail-stop contract holds in the non-grouped path too.
  StorageFaultOptions faults;
  faults.torn_write_at = 1;
  FaultInjectingEnv env(Env::Default(), faults);
  WalOptions options;
  options.env = &env;
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, options).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Kind::kPut, 1, "a", "v"}, false).ok());
  size_t intact_size = FileSize(path_);

  env.set_enabled(true);
  EXPECT_TRUE(wal.Append({WalRecord::Kind::kPut, 2, "b", "v"}, false).IsIOError());
  EXPECT_TRUE(wal.IsPoisoned());
  EXPECT_TRUE(wal.Append({WalRecord::Kind::kPut, 3, "c", "v"}, false).IsIOError());
  EXPECT_EQ(FileSize(path_), intact_size);
  wal.Close();
  EXPECT_EQ(ReplayAll(path_).size(), 1u);
}

TEST_F(WalGroupCommitTest, PoisonWakesEveryWaiterInTheBatch) {
  // When a batch's write tears, every waiter blocked on that batch must wake
  // and see the poison status — none may hang or report success.
  StorageFaultOptions faults;
  faults.write_error_rate = 1.0;  // every armed write fails cleanly
  FaultInjectingEnv env(Env::Default(), faults);
  env.set_enabled(true);
  WalOptions options = GroupOptions();
  options.env = &env;
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, options).ok());

  constexpr int kThreads = 6;
  std::vector<std::thread> pool;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      WalRecord r{WalRecord::Kind::kPut, static_cast<uint64_t>(t + 1), "k", "v"};
      if (wal.Append(r, /*sync=*/true).IsIOError()) errors.fetch_add(1);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(errors.load(), kThreads);
  EXPECT_TRUE(wal.IsPoisoned());
  EXPECT_EQ(wal.durable_lsn(), 0u);
  wal.Close();
  EXPECT_TRUE(ReplayAll(path_).empty());
}

TEST_F(WalGroupCommitTest, StoreGroupCommitRoundTripAndReopen) {
  // End to end through StoreOptions: concurrent Puts with sync_wal + group
  // commit, then reopen (crash-recovery path) and verify every write.
  StoreOptions options;
  options.wal_path = path_;
  options.sync_wal = true;
  options.wal_group_commit = true;
  options.wal_group_max_batch = 32;

  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  {
    ShardedStore store(options);
    ASSERT_TRUE(store.Open().ok());
    std::vector<std::thread> pool;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string key = "u" + std::to_string(t) + "_" + std::to_string(i);
          if (!store.Put(key, "val" + key).ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& th : pool) th.join();
    ASSERT_EQ(failures.load(), 0);
    WalStats stats = store.DrainWalStats();
    EXPECT_EQ(stats.appends, static_cast<uint64_t>(kThreads * kPerThread));
  }
  ShardedStore reopened(options);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.Count(), static_cast<size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::string key = "u" + std::to_string(t) + "_" + std::to_string(i);
      std::string value;
      ASSERT_TRUE(reopened.Get(key, &value).ok()) << key;
      EXPECT_EQ(value, "val" + key);
    }
  }
}

}  // namespace
}  // namespace kv
}  // namespace ycsbt
